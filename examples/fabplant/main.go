// Fab plant: the IC-fabrication scenario that motivates the paper's "24x7"
// requirements (§1-§2).
//
//   - Equipment telemetry streams over the fab LAN under hierarchical
//     subjects ("fab5.cc.<station>.temp").
//
//   - Lot moves are published with GUARANTEED delivery: logged to a
//     write-ahead ledger before transmission, retransmitted until the
//     consuming system acknowledges — even across a network partition.
//
//   - The consuming system is a legacy Cobol-era WIP tracker reachable
//     only through its terminal screens; a terminal adapter "acts as a
//     virtual user" on its screens (§4, R3).
//
//   - An information router bridges the fab LAN to the office LAN,
//     forwarding only subjects the office actually subscribes to, with a
//     subject-prefix rewrite (§3.1).
//
//     go run ./examples/fabplant
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"infobus"
	"infobus/internal/adapter"
	"infobus/internal/mop"
	"infobus/internal/netsim"
	"infobus/internal/router"
	"infobus/internal/subject"
)

func main() {
	netCfg := infobus.DefaultNetConfig()
	netCfg.Speedup = 100
	fabLAN := infobus.NewSimSegment(netCfg)
	defer fabLAN.Close()
	officeLAN := infobus.NewSimSegment(netCfg)
	defer officeLAN.Close()

	// Information router bridging the two LANs, rewriting fab subjects
	// into the office's plant-wide namespace.
	r, err := infobus.NewRouter(infobus.RouterOptions{Name: "fab-office"},
		infobus.RouterAttachment{Segment: fabLAN, Name: "fab"},
		infobus.RouterAttachment{Segment: officeLAN, Name: "office", Rules: []router.Rule{{
			Match:      subject.MustParsePattern("fab5.>"),
			FromPrefix: "fab5",
			ToPrefix:   "plants.east.fab5",
		}}},
	)
	if err != nil {
		log.Fatal(err)
	}
	defer r.Close()

	// --- Fab LAN hosts ----------------------------------------------------
	ledgerDir, err := os.MkdirTemp("", "fabplant")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(ledgerDir)

	ccHost, err := infobus.NewHost(fabLAN, "cell-controller", infobus.HostConfig{
		LedgerPath:    filepath.Join(ledgerDir, "cc.ledger"),
		RetryInterval: 20 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer ccHost.Close()
	ccBus, err := ccHost.NewBus("cell-controller")
	if err != nil {
		log.Fatal(err)
	}

	wipHost, err := infobus.NewHost(fabLAN, "wip-gateway", infobus.HostConfig{})
	if err != nil {
		log.Fatal(err)
	}
	defer wipHost.Close()
	wipBus, err := wipHost.NewBus("wip-adapter")
	if err != nil {
		log.Fatal(err)
	}

	// The legacy WIP system and its terminal adapter.
	legacy := adapter.NewLegacyWIP()
	wa, err := adapter.NewWIPAdapter(wipBus, legacy)
	if err != nil {
		log.Fatal(err)
	}
	defer wa.Close()

	// --- Office LAN: plant dashboard ---------------------------------------
	officeHost, err := infobus.NewHost(officeLAN, "plant-office", infobus.HostConfig{})
	if err != nil {
		log.Fatal(err)
	}
	defer officeHost.Close()
	officeBus, err := officeHost.NewBus("dashboard")
	if err != nil {
		log.Fatal(err)
	}
	officeSub, err := officeBus.Subscribe("plants.east.fab5.wip.status.>")
	if err != nil {
		log.Fatal(err)
	}

	// Telemetry type, defined at run time.
	temp := mop.MustNewClass("StationTemp", nil, []mop.Attr{
		{Name: "station", Type: mop.String},
		{Name: "celsius", Type: mop.Float},
	}, nil)

	// A fab-side monitor for telemetry.
	monBus, err := ccHost.NewBus("fab-monitor")
	if err != nil {
		log.Fatal(err)
	}
	tempSub, err := monBus.Subscribe("fab5.cc.*.temp")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== telemetry on the fab LAN ===")
	for i, station := range []string{"litho8", "etch2", "diffusion3"} {
		obj := mop.MustNew(temp).
			MustSet("station", station).
			MustSet("celsius", 21.5+float64(i))
		if err := ccBus.Publish("fab5.cc."+station+".temp", obj); err != nil {
			log.Fatal(err)
		}
		ev := <-tempSub.C
		o := ev.Value.(*mop.Object)
		fmt.Printf("  [%s] %s = %.1fC\n", ev.Subject, o.MustGet("station"), o.MustGet("celsius"))
	}

	// Wait for the office's subscription interest to propagate to the
	// router before anything worth forwarding is published.
	interestDeadline := time.After(10 * time.Second)
	for !r.WantsOn("office", subject.MustParse("fab5.wip.status.l42")) {
		select {
		case <-interestDeadline:
			log.Fatal("office interest never reached the router")
		case <-time.After(5 * time.Millisecond):
		}
	}

	// --- Guaranteed lot moves through the legacy WIP system ---------------
	fmt.Println("\n=== guaranteed lot move -> legacy WIP terminal adapter ===")
	move := mop.MustNew(adapter.WIPMoveType).
		MustSet("lot", "L42").
		MustSet("station", "litho8")
	id, err := ccBus.PublishGuaranteed(adapter.WIPMoveSubject, move)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  logged to ledger as #%d, publishing until acknowledged\n", id)

	// The office dashboard sees the status ONLY via the router, under the
	// rewritten subject.
	select {
	case ev := <-officeSub.C:
		st := ev.Value.(*mop.Object)
		fmt.Printf("  office dashboard: [%s] lot %v at %v (moves %v)\n",
			ev.Subject, st.MustGet("lot"), st.MustGet("station"), st.MustGet("moves"))
	case <-time.After(30 * time.Second):
		log.Fatal("status never reached the office LAN")
	}

	// The ledger drains once the WIP adapter's daemon acknowledged.
	deadline := time.After(10 * time.Second)
	for len(ccHost.PendingGuaranteed()) > 0 {
		select {
		case <-deadline:
			log.Fatal("guaranteed publication never acknowledged")
		case <-time.After(5 * time.Millisecond):
		}
	}
	fmt.Println("  ledger drained: the move is durably acknowledged")

	// --- Partition: guaranteed delivery rides it out ----------------------
	fmt.Println("\n=== partition: WIP gateway isolated mid-move ===")
	var wipID int
	if _, err := fmt.Sscanf(wipHost.Addr(), "sim:%d", &wipID); err != nil {
		log.Fatal(err)
	}
	fabLAN.Network().Partition(netsim.NodeID(wipID))
	move2 := mop.MustNew(adapter.WIPMoveType).
		MustSet("lot", "L42").
		MustSet("station", "etch2")
	if _, err := ccBus.PublishGuaranteed(adapter.WIPMoveSubject, move2); err != nil {
		log.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	fmt.Printf("  during partition: %d publication(s) pending in the ledger\n",
		len(ccHost.PendingGuaranteed()))
	fabLAN.Network().Heal()
	// Guaranteed delivery is at-least-once: the retrier may have delivered
	// duplicates, so drain status events until the lot reaches etch2.
	deadline2 := time.After(30 * time.Second)
	for {
		select {
		case ev := <-officeSub.C:
			st := ev.Value.(*mop.Object)
			fmt.Printf("  office: [%s] lot %v at %v (moves %v)\n",
				ev.Subject, st.MustGet("lot"), st.MustGet("station"), st.MustGet("moves"))
			if st.MustGet("station") == "ETCH2" {
				goto done
			}
		case <-deadline2:
			log.Fatal("post-heal status never arrived")
		}
	}
done:
	fmt.Printf("\nrouter stats: %+v\n", r.Stats())
	fmt.Printf("legacy moves applied through the terminal: %d\n", wa.Moves())
}
