// Quickstart: the smallest complete Information Bus program.
//
// Two hosts on a simulated 10 Mb/s Ethernet. One defines a class at run
// time and publishes instances under hierarchical subjects; the other
// subscribes with a wildcard and receives self-describing objects it can
// introspect without ever having linked against the type.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"infobus"
)

func main() {
	// The network: the paper's testbed, sped up 100x.
	netCfg := infobus.DefaultNetConfig()
	netCfg.Speedup = 100
	seg := infobus.NewSimSegment(netCfg)
	defer seg.Close()

	// Two workstations, each with its own daemon and type registry.
	sensorHost, err := infobus.NewHost(seg, "fab5-cell-controller", infobus.HostConfig{})
	if err != nil {
		log.Fatal(err)
	}
	defer sensorHost.Close()
	deskHost, err := infobus.NewHost(seg, "operator-desk", infobus.HostConfig{})
	if err != nil {
		log.Fatal(err)
	}
	defer deskHost.Close()

	// The consumer subscribes by subject pattern. It knows nothing about
	// producers (P4) or the types they will publish (P2).
	deskBus, err := deskHost.NewBus("dashboard")
	if err != nil {
		log.Fatal(err)
	}
	sub, err := deskBus.Subscribe("fab5.cc.*.thick")
	if err != nil {
		log.Fatal(err)
	}

	// The producer defines a class — at run time, P3 — and publishes.
	thickness, err := infobus.NewClass("WaferThickness", nil, []infobus.Attr{
		{Name: "station", Type: infobus.String},
		{Name: "microns", Type: infobus.Float},
		{Name: "sampled", Type: infobus.Time},
	}, nil)
	if err != nil {
		log.Fatal(err)
	}
	sensorBus, err := sensorHost.NewBus("litho-sensor")
	if err != nil {
		log.Fatal(err)
	}
	for i, station := range []string{"litho8", "litho9"} {
		obj, err := infobus.NewObject(thickness)
		if err != nil {
			log.Fatal(err)
		}
		obj.MustSet("station", station).
			MustSet("microns", 12.5+float64(i)).
			MustSet("sampled", time.Now().UTC())
		subject := "fab5.cc." + station + ".thick"
		if err := sensorBus.Publish(subject, obj); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("published on %s\n", subject)
	}

	// The desk receives both objects; their class arrived on the wire.
	for i := 0; i < 2; i++ {
		select {
		case ev := <-sub.C:
			fmt.Printf("\nreceived on %s:\n%s\n", ev.Subject, infobus.Print(ev.Value))
		case <-time.After(10 * time.Second):
			log.Fatal("timed out waiting for publication")
		}
	}
	// The reconstructed type is introspectable on the desk host.
	t, err := deskHost.Registry().Lookup("WaferThickness")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntype as reconstructed on the subscriber host:\n%s", infobus.Describe(t))
}
