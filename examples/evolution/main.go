// Dynamic system evolution: the paper's two headline demonstrations of R1
// (continuous operation) and R2 (dynamic evolution), live in one process.
//
//  1. A NEW TYPE enters the running system through TDL (P3): a class
//     defined from source text at run time is instantiated and published;
//     an already-running generic consumer prints it through introspection
//     (P2) — no recompilation, no relinking, anywhere.
//
//  2. A LIVE SOFTWARE UPGRADE (R1): a v2 server starts as a hot standby
//     for the same service subject, is promoted, and the v1 server
//     retires after serving its outstanding requests. A client that
//     redials binds to v2 transparently (P4: subjects, not addresses),
//     while v1's existing client keeps working until it disconnects.
//
//     go run ./examples/evolution
package main

import (
	"fmt"
	"log"
	"time"

	"infobus"
	"infobus/internal/mop"
)

func main() {
	netCfg := infobus.DefaultNetConfig()
	netCfg.Speedup = 100
	seg := infobus.NewSimSegment(netCfg)
	defer seg.Close()

	newBus := func(hostname string) *infobus.Bus {
		h, err := infobus.NewHost(seg, hostname, infobus.HostConfig{})
		if err != nil {
			log.Fatal(err)
		}
		b, err := h.NewBus(hostname)
		if err != nil {
			log.Fatal(err)
		}
		return b
	}

	// ---- Part 1: a new type enters the running system (P2 + P3) ----------
	fmt.Println("=== part 1: a new TDL-defined type enters the running system ===")
	consumerBus := newBus("old-consumer")
	sub, err := consumerBus.Subscribe("fab5.alerts")
	if err != nil {
		log.Fatal(err)
	}

	producerBus := newBus("new-producer")
	interp := infobus.NewTDL(producerBus.Registry())
	// Dynamic classing from source text, at run time.
	if _, err := interp.EvalString(`
	  (defclass EquipmentAlert ()
	    ((station string)
	     (severity int)
	     (message string)))

	  (defmethod headline ((a EquipmentAlert))
	    (concat "[" (slot-value a 'station) "] " (slot-value a 'message)))

	  (define alert (make-instance 'EquipmentAlert
	                  'station "litho8"
	                  'severity 3
	                  'message "focus drift beyond tolerance"))
	`); err != nil {
		log.Fatal(err)
	}
	alertV, err := interp.Call("headline", mustEval(interp, "alert"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("producer-side TDL method: %v\n", alertV)

	if err := producerBus.Publish("fab5.alerts", mustEval(interp, "alert")); err != nil {
		log.Fatal(err)
	}
	select {
	case ev := <-sub.C:
		fmt.Printf("\nold consumer received an instance of a type it never knew:\n%s\n",
			infobus.Print(ev.Value))
		t := ev.Value.(*mop.Object).Type()
		fmt.Printf("reconstructed on the consumer host:\n%s", infobus.Describe(t))
	case <-time.After(10 * time.Second):
		log.Fatal("alert never arrived")
	}

	// ---- Part 2: live server upgrade (R1) ---------------------------------
	fmt.Println("\n=== part 2: live software upgrade of the quote service ===")
	iface := mop.MustNewClass("QuoteService", nil, nil, []mop.Operation{
		{Name: "quote", Params: []mop.Param{{Name: "ticker", Type: mop.String}}, Result: mop.String},
	})
	v1Bus := newBus("quote-v1")
	v1, err := infobus.NewRMIServer(v1Bus, seg, "svc.quotes", iface,
		func(op string, args []infobus.Value) (infobus.Value, error) {
			return args[0].(string) + " = 101 (v1)", nil
		}, infobus.RMIServerOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer v1.Close()

	dialOpts := infobus.RMIDialOptions{
		DiscoveryWindow: 100 * time.Millisecond,
		Timeout:         time.Second,
		Retries:         3,
	}
	clientBus := newBus("trading-app")
	c1, err := infobus.DialRMI(clientBus, seg, "svc.quotes", dialOpts)
	if err != nil {
		log.Fatal(err)
	}
	defer c1.Close()
	res, err := c1.Invoke("quote", "GMC")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("client via v1: %v\n", res)

	// v2 comes up as a hot standby (it does NOT answer discovery yet).
	v2Bus := newBus("quote-v2")
	v2, err := infobus.NewRMIServer(v2Bus, seg, "svc.quotes", iface,
		func(op string, args []infobus.Value) (infobus.Value, error) {
			return args[0].(string) + " = 103 (v2, improved model)", nil
		}, infobus.RMIServerOptions{Standby: true})
	if err != nil {
		log.Fatal(err)
	}
	defer v2.Close()

	// The upgrade moment: promote v2, retire v1. Nothing restarts; the
	// subject "svc.quotes" simply rebinds (more general than late binding).
	if err := v2.Promote(); err != nil {
		log.Fatal(err)
	}
	v1.Retire()
	fmt.Println("upgrade: v2 promoted, v1 retired (still serving old clients)")

	// The old client still works against retired v1...
	res, err = c1.Invoke("quote", "GMC")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("old client, still on v1: %v\n", res)

	// ...while any new binding lands on v2.
	c2, err := infobus.DialRMI(clientBus, seg, "svc.quotes", dialOpts)
	if err != nil {
		log.Fatal(err)
	}
	defer c2.Close()
	res, err = c2.Invoke("quote", "GMC")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("new client, on v2:     %v\n", res)
	fmt.Println("\nthe service subject never changed; no client was told anything (P4)")
}

func mustEval(interp *infobus.TDL, src string) infobus.Value {
	v, err := interp.EvalString(src)
	if err != nil {
		log.Fatal(err)
	}
	return v
}
