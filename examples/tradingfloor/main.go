// Trading floor: the full §5 example (Figures 3 and 4) in one runnable
// program.
//
// Two news adapters parse distinct vendor wire formats (Dow-Jones-like and
// Reuters-like) into subtypes of a common Story supertype and publish them
// under topic subjects. A trader's News Monitor builds a headline summary
// list through a view and renders full stories by introspection. The
// Object Repository captures every story into relational tables generated
// from the types' meta-data. Then — §5.2, dynamic system evolution — the
// Keyword Generator comes on-line mid-run, and the already-running monitor
// starts showing keyword properties without any restart.
//
//	go run ./examples/tradingfloor
package main

import (
	"fmt"
	"log"
	"time"

	"infobus"
	"infobus/internal/adapter"
	"infobus/internal/feeds"
	"infobus/internal/keyword"
	"infobus/internal/monitor"
	"infobus/internal/relstore"
	"infobus/internal/repository"
)

func main() {
	netCfg := infobus.DefaultNetConfig()
	netCfg.Speedup = 100
	seg := infobus.NewSimSegment(netCfg)
	defer seg.Close()

	newBus := func(hostname, app string) *infobus.Bus {
		h, err := infobus.NewHost(seg, hostname, infobus.HostConfig{})
		if err != nil {
			log.Fatal(err)
		}
		b, err := h.NewBus(app)
		if err != nil {
			log.Fatal(err)
		}
		return b
	}

	// --- Figure 3: adapters, monitor, repository -------------------------
	djBus := newBus("dj-feed-host", "dj-adapter")
	reBus := newBus("reuters-feed-host", "reuters-adapter")
	deskBus := newBus("trader-desk", "news-monitor")
	repoBus := newBus("db-host", "object-repository")

	djTypes, err := adapter.DefineNewsTypes(djBus.Registry())
	if err != nil {
		log.Fatal(err)
	}
	reTypes, err := adapter.DefineNewsTypes(reBus.Registry())
	if err != nil {
		log.Fatal(err)
	}

	mon, err := monitor.New(deskBus, "news.>", monitor.DefaultView())
	if err != nil {
		log.Fatal(err)
	}
	defer mon.Close()

	repo := repository.New(relstore.NewDB(), repoBus.Registry())
	capture, err := repository.NewCaptureServer(repo, repoBus, "news.>")
	if err != nil {
		log.Fatal(err)
	}
	defer capture.Close()

	djIn := make(chan string, 16)
	reIn := make(chan string, 16)
	djAdapter := adapter.NewFeedAdapter("dow-jones", djBus, djTypes, adapter.ParseDJ, djIn)
	defer djAdapter.Close()
	reAdapter := adapter.NewFeedAdapter("reuters", reBus, reTypes, adapter.ParseReuters, reIn)
	defer reAdapter.Close()

	gen := feeds.NewGenerator(1993)
	fmt.Println("=== wire feeds begin ===")
	for i := 0; i < 3; i++ {
		djIn <- feeds.DJRaw(gen.Next())
		reIn <- feeds.ReutersRaw(gen.Next())
	}
	waitFor(func() bool { return mon.Len() == 6 && capture.Captured() == 6 })

	fmt.Println("\n=== trader's headline summary list (view-rendered) ===")
	for _, h := range mon.Headlines() {
		fmt.Println(" ", h)
	}

	fmt.Println("\n=== trader selects story 0 (introspective full display) ===")
	full, err := mon.Select(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(full)

	fmt.Println("=== repository state (schema generated from meta-data) ===")
	fmt.Println("tables:", repo.DB().Tables())
	storyType, err := repoBus.Registry().Lookup("Story")
	if err != nil {
		log.Fatal(err)
	}
	n, err := repo.Count(storyType)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stories stored (hierarchy query over Story): %d\n", n)

	// --- Figure 4: the Keyword Generator comes on-line mid-run ----------
	fmt.Println("\n=== keyword generator comes on-line (nothing restarts) ===")
	kwBus := newBus("kw-host", "keyword-generator")
	kw, err := keyword.New(kwBus, seg, keyword.DefaultCategories(), keyword.Options{NoBrowse: true})
	if err != nil {
		log.Fatal(err)
	}
	defer kw.Close()

	before := mon.Len()
	djIn <- feeds.DJRaw(gen.Next())
	waitFor(func() bool {
		return mon.Len() == before+1 && mon.PropertyCount(before) > 0
	})
	fmt.Println("\n=== the same monitor now shows keyword properties ===")
	full, err = mon.Select(before)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(full)
	fmt.Printf("keyword generator: processed=%d annotated=%d\n", kw.Processed(), kw.Published())
}

func waitFor(cond func() bool) {
	deadline := time.After(30 * time.Second)
	for !cond() {
		select {
		case <-deadline:
			log.Fatal("timed out waiting for pipeline")
		case <-time.After(5 * time.Millisecond):
		}
	}
}
