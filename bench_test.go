// Benchmarks regenerating the paper's evaluation (Appendix Figures 5-8 and
// its two invariants) plus the ablation studies listed in DESIGN.md §3.
//
// Figure benchmarks run on the simulated 10 Mb/s Ethernet at Speedup 20,
// reporting modelled-network-time metrics (model-ms/op, model-msgs/sec,
// model-bytes/sec) that are independent of the speedup factor. Absolute
// 1993 numbers are not the target; the shapes are (see EXPERIMENTS.md).
// For slower, higher-fidelity sweeps use cmd/ibbench.
package infobus

import (
	"fmt"
	"io"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"infobus/internal/baseline"
	"infobus/internal/bench"
	"infobus/internal/core"
	"infobus/internal/daemon"
	"infobus/internal/mop"
	"infobus/internal/netsim"
	"infobus/internal/reliable"
	"infobus/internal/subject"
	"infobus/internal/telemetry"
	"infobus/internal/transport"
	"infobus/internal/wire"
)

// benchConfig is the paper topology at test-friendly speedup.
func benchConfig(consumers int) bench.Config {
	cfg := bench.DefaultConfig()
	cfg.Consumers = consumers
	cfg.Net.Speedup = 20
	cfg.Reliable.NakInterval = 2 * time.Millisecond
	cfg.Reliable.RetransmitInterval = 3 * time.Millisecond
	cfg.Reliable.HeartbeatInterval = 10 * time.Millisecond
	cfg.Reliable.BatchDelay = time.Millisecond
	return cfg
}

var figureSizes = []int{64, 512, 1024, 4096, 10240}

// BenchmarkFigure5Latency reproduces Figure 5: latency vs message size,
// batching off, 1 publisher and 14 consumers on 15 nodes.
func BenchmarkFigure5Latency(b *testing.B) {
	for _, size := range figureSizes {
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			n := b.N
			if n > 200 {
				n = 200 // cap the per-iteration message count; stats converge long before
			}
			r, err := bench.MeasureLatency(benchConfig(14), size, n)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(r.MeanMs, "model-ms/msg")
			b.ReportMetric(r.CI99Ms, "model-ms-ci99")
		})
	}
}

// BenchmarkFigure6ThroughputMsgs reproduces Figure 6: messages per second
// vs message size, batching on.
func BenchmarkFigure6ThroughputMsgs(b *testing.B) {
	for _, size := range figureSizes {
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			n := b.N
			if n < 50 {
				n = 50
			}
			if n > 2000 {
				n = 2000
			}
			r, err := bench.MeasureThroughput(benchConfig(14), size, n, 1)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(r.MsgsPerSec, "model-msgs/sec")
		})
	}
}

// BenchmarkFigure7ThroughputBytes reproduces Figure 7: bytes per second vs
// message size (same experiment as Figure 6, byte-rate view), including
// the device-bandwidth saturation above ~5 KB.
func BenchmarkFigure7ThroughputBytes(b *testing.B) {
	for _, size := range figureSizes {
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			n := b.N
			if n < 50 {
				n = 50
			}
			if n > 2000 {
				n = 2000
			}
			r, err := bench.MeasureThroughput(benchConfig(14), size, n, 1)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(r.BytesPerSec, "model-bytes/sec")
			b.ReportMetric(r.CumulativeBytesPerSec, "model-cum-bytes/sec")
		})
	}
}

// BenchmarkFigure8Subjects reproduces Figure 8: the effect of the number
// of subjects on throughput (it should be insignificant — subject matching
// is a trie walk, not a scan).
func BenchmarkFigure8Subjects(b *testing.B) {
	for _, nSubjects := range []int{1, 100, 2000} {
		b.Run(fmt.Sprintf("subjects=%d", nSubjects), func(b *testing.B) {
			n := b.N
			if n < 50 {
				n = 50
			}
			if n > 1000 {
				n = 1000
			}
			r, err := bench.MeasureThroughput(benchConfig(4), 512, n, nSubjects)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(r.BytesPerSec, "model-bytes/sec")
		})
	}
}

// BenchmarkInvariantLatencyVsConsumers measures the appendix claim that
// latency is independent of the number of consumers (broadcast medium).
func BenchmarkInvariantLatencyVsConsumers(b *testing.B) {
	for _, consumers := range []int{1, 7, 14} {
		b.Run(fmt.Sprintf("consumers=%d", consumers), func(b *testing.B) {
			n := b.N
			if n > 150 {
				n = 150
			}
			r, err := bench.MeasureLatency(benchConfig(consumers), 1024, n)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(r.MeanMs, "model-ms/msg")
		})
	}
}

// BenchmarkInvariantThroughputVsSubscribers measures the appendix claim
// that the publication rate is independent of the number of subscribers,
// so cumulative throughput is proportional to subscriber count.
func BenchmarkInvariantThroughputVsSubscribers(b *testing.B) {
	for _, consumers := range []int{1, 7, 14} {
		b.Run(fmt.Sprintf("subscribers=%d", consumers), func(b *testing.B) {
			n := b.N
			if n < 50 {
				n = 50
			}
			if n > 1500 {
				n = 1500
			}
			r, err := bench.MeasureThroughput(benchConfig(consumers), 1024, n, 1)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(r.MsgsPerSec, "model-msgs/sec")
			b.ReportMetric(r.CumulativeBytesPerSec, "model-cum-bytes/sec")
		})
	}
}

// ---------------------------------------------------------------------------
// Ablations (DESIGN.md §3)

// BenchmarkAblationTrieVsLinear (A1): subject matching cost with the trie
// vs a linear scan over all subscriptions — why Figure 8 comes out flat.
func BenchmarkAblationTrieVsLinear(b *testing.B) {
	for _, nSubs := range []int{100, 10000} {
		patterns := make([]subject.Pattern, nSubs)
		tr := subject.NewTrie[int]()
		for i := 0; i < nSubs; i++ {
			p := subject.MustParsePattern(fmt.Sprintf("bench.s%d.data", i))
			patterns[i] = p
			tr.Add(p, i)
		}
		s := subject.MustParse(fmt.Sprintf("bench.s%d.data", nSubs/2))
		b.Run(fmt.Sprintf("trie/subs=%d", nSubs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if got := tr.Match(s); len(got) != 1 {
					b.Fatal("miss")
				}
			}
		})
		b.Run(fmt.Sprintf("linear/subs=%d", nSubs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				hits := 0
				for _, p := range patterns {
					if p.Matches(s) {
						hits++
					}
				}
				if hits != 1 {
					b.Fatal("miss")
				}
			}
		})
	}
}

// BenchmarkAblationBroadcastVsBroker (A2): fan-out to N subscribers via
// one Ethernet broadcast (the bus) vs N unicasts from a central broker
// (the Zephyr-style baseline).
func BenchmarkAblationBroadcastVsBroker(b *testing.B) {
	const consumers = 8
	netCfg := netsim.DefaultConfig()
	netCfg.Speedup = 500
	rcfg := reliable.Config{
		NakInterval:        2 * time.Millisecond,
		RetransmitInterval: 3 * time.Millisecond,
		HeartbeatInterval:  10 * time.Millisecond,
	}

	b.Run("bus-broadcast", func(b *testing.B) {
		seg := transport.NewSimSegment(netCfg)
		defer seg.Close()
		pubHost, err := core.NewHost(seg, "pub", core.HostConfig{Reliable: rcfg})
		if err != nil {
			b.Fatal(err)
		}
		defer pubHost.Close()
		pub, _ := pubHost.NewBus("p")
		var subs []*core.Subscription
		for i := 0; i < consumers; i++ {
			h, err := core.NewHost(seg, fmt.Sprintf("c%d", i), core.HostConfig{Reliable: rcfg})
			if err != nil {
				b.Fatal(err)
			}
			defer h.Close()
			bus, _ := h.NewBus("c")
			sub, _ := bus.Subscribe("fan.out")
			subs = append(subs, sub)
		}
		payload := make([]byte, 512)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := pub.Publish("fan.out", payload); err != nil {
				b.Fatal(err)
			}
			for _, s := range subs {
				<-s.C
			}
		}
		b.StopTimer()
		st := seg.Network().Stats()
		b.ReportMetric(float64(st.Sent)/float64(b.N), "datagrams/msg")
	})

	b.Run("central-broker", func(b *testing.B) {
		seg := transport.NewSimSegment(netCfg)
		defer seg.Close()
		broker, err := baseline.NewBroker(seg)
		if err != nil {
			b.Fatal(err)
		}
		defer broker.Close()
		var clients []*baseline.BrokerClient
		for i := 0; i < consumers; i++ {
			c, err := baseline.NewBrokerClient(seg, broker.Addr())
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			if err := c.Subscribe("fan.out"); err != nil {
				b.Fatal(err)
			}
			clients = append(clients, c)
		}
		for broker.Stats().Subscribes < consumers {
			time.Sleep(time.Millisecond)
		}
		pub, err := baseline.NewBrokerClient(seg, broker.Addr())
		if err != nil {
			b.Fatal(err)
		}
		defer pub.Close()
		payload := make([]byte, 512)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := pub.Publish("fan.out", payload); err != nil {
				b.Fatal(err)
			}
			for _, c := range clients {
				if _, _, ok := c.Recv(); !ok {
					b.Fatal("client closed")
				}
			}
		}
		b.StopTimer()
		st := seg.Network().Stats()
		b.ReportMetric(float64(st.Sent)/float64(b.N), "datagrams/msg")
	})
}

// BenchmarkAblationSubjectVsTuple (A3): routing one publication by subject
// (trie) vs Linda attribute qualification (template scan), at growing
// population sizes — §6's scaling argument.
func BenchmarkAblationSubjectVsTuple(b *testing.B) {
	for _, n := range []int{100, 10000} {
		b.Run(fmt.Sprintf("subject/population=%d", n), func(b *testing.B) {
			tr := subject.NewTrie[int]()
			for i := 0; i < n; i++ {
				tr.Add(subject.MustParsePattern(fmt.Sprintf("quotes.t%d", i)), i)
			}
			s := subject.MustParse(fmt.Sprintf("quotes.t%d", n-1))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if len(tr.Match(s)) != 1 {
					b.Fatal("miss")
				}
			}
		})
		b.Run(fmt.Sprintf("tuple/population=%d", n), func(b *testing.B) {
			ts := baseline.NewTupleSpace()
			defer ts.Close()
			for i := 0; i < n; i++ {
				if err := ts.Out(baseline.Tuple{"quote", fmt.Sprintf("t%d", i), int64(i)}); err != nil {
					b.Fatal(err)
				}
			}
			template := baseline.Tuple{"quote", fmt.Sprintf("t%d", n-1), baseline.Wildcard{Kind: "int"}}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, ok := ts.RdP(template); !ok {
					b.Fatal("miss")
				}
			}
		})
	}
}

// BenchmarkAblationBatching (A4): throughput of small messages with the
// appendix's batch parameter on vs off.
func BenchmarkAblationBatching(b *testing.B) {
	for _, batching := range []bool{false, true} {
		name := "off"
		if batching {
			name = "on"
		}
		b.Run("batching="+name, func(b *testing.B) {
			n := b.N
			if n < 50 {
				n = 50
			}
			if n > 2000 {
				n = 2000
			}
			cfg := benchConfig(4)
			var r bench.ThroughputResult
			var err error
			if batching {
				r, err = bench.MeasureThroughput(cfg, 64, n, 1)
			} else {
				// MeasureLatency runs with batching off but measures
				// latency; for throughput-without-batching reuse the
				// throughput harness with batching disabled via a
				// zero-delay batch (flushed per message).
				cfg.Reliable.BatchMaxBytes = 1 // forces per-message flush
				r, err = bench.MeasureThroughput(cfg, 64, n, 1)
			}
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(r.MsgsPerSec, "model-msgs/sec")
		})
	}
}

// BenchmarkAblationWireFormat (A5): the cost of self-description — every
// datagram carries type metadata (bus broadcasts) vs a stream dictionary
// that sends each class once (RMI connections).
func BenchmarkAblationWireFormat(b *testing.B) {
	group := mop.MustNewClass("BenchGroup", nil, []mop.Attr{
		{Name: "code", Type: mop.String},
		{Name: "weight", Type: mop.Float},
	}, nil)
	story := mop.MustNewClass("BenchStory", nil, []mop.Attr{
		{Name: "headline", Type: mop.String},
		{Name: "body", Type: mop.String},
		{Name: "groups", Type: mop.ListOf(group)},
	}, nil)
	obj := mop.MustNew(story).
		MustSet("headline", "GMC surges").
		MustSet("body", "Analysts said the move had been widely anticipated.").
		MustSet("groups", mop.List{
			mop.MustNew(group).MustSet("code", "AUTO").MustSet("weight", 0.7),
		})

	b.Run("self-describing", func(b *testing.B) {
		b.ReportAllocs()
		var bytesOut int
		for i := 0; i < b.N; i++ {
			data, err := wire.Marshal(obj)
			if err != nil {
				b.Fatal(err)
			}
			bytesOut = len(data)
		}
		b.ReportMetric(float64(bytesOut), "bytes/msg")
	})
	b.Run("stream-dictionary", func(b *testing.B) {
		b.ReportAllocs()
		counter := &countingWriter{}
		enc := wire.NewEncoder(counter)
		if err := enc.Encode(obj); err != nil { // warm the dictionary
			b.Fatal(err)
		}
		counter.n = 0
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := enc.Encode(obj); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(counter.n)/float64(b.N), "bytes/msg")
	})
}

// BenchmarkAblationQoS (A6): publish-side cost of reliable vs guaranteed
// delivery (the ledger write and acknowledgement handshake).
func BenchmarkAblationQoS(b *testing.B) {
	netCfg := netsim.DefaultConfig()
	netCfg.Speedup = 2000
	rcfg := reliable.Config{
		NakInterval:        2 * time.Millisecond,
		RetransmitInterval: 3 * time.Millisecond,
		HeartbeatInterval:  10 * time.Millisecond,
	}
	run := func(b *testing.B, guaranteed bool) {
		seg := transport.NewSimSegment(netCfg)
		defer seg.Close()
		cfg := core.HostConfig{Reliable: rcfg, RetryInterval: 50 * time.Millisecond}
		if guaranteed {
			cfg.LedgerPath = filepath.Join(b.TempDir(), "bench.ledger")
		}
		host, err := core.NewHost(seg, "pub", cfg)
		if err != nil {
			b.Fatal(err)
		}
		defer host.Close()
		bus, _ := host.NewBus("p")
		// A local subscriber consumes (and, for guaranteed, acks).
		conBus, _ := host.NewBus("c")
		sub, _ := conBus.Subscribe("qos.data")
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range sub.C {
			}
		}()
		payload := make([]byte, 256)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if guaranteed {
				if _, err := bus.PublishGuaranteed("qos.data", payload); err != nil {
					b.Fatal(err)
				}
			} else {
				if err := bus.Publish("qos.data", payload); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.StopTimer()
		sub.Cancel()
		wg.Wait()
	}
	b.Run("reliable", func(b *testing.B) { run(b, false) })
	b.Run("guaranteed", func(b *testing.B) { run(b, true) })
}

// BenchmarkGuaranteedPublish (A10, end-to-end): the guaranteed QoS path —
// group-committed ledger append, publish, local consumer ack — under
// parallel publishers, with and without Sync, group commit vs the
// per-append-fsync baseline. With Sync on, concurrent publishers share
// one fsync per committed batch, so "sync/pubs=8/group" must beat
// "sync/pubs=8/per-append" by a wide margin with fsyncs/msg well under 1
// (scripts/check.sh asserts the same property via the ledger-level gate).
// Real disk, real time: the fsync is the quantity under test.
func BenchmarkGuaranteedPublish(b *testing.B) {
	netCfg := netsim.DefaultConfig()
	netCfg.Speedup = 2000
	rcfg := reliable.Config{
		NakInterval:        2 * time.Millisecond,
		RetransmitInterval: 3 * time.Millisecond,
		HeartbeatInterval:  10 * time.Millisecond,
	}
	run := func(b *testing.B, pubs int, syncOn, group bool) {
		seg := transport.NewSimSegment(netCfg)
		defer seg.Close()
		host, err := core.NewHost(seg, "pub", core.HostConfig{
			Reliable:                 rcfg,
			LedgerPath:               filepath.Join(b.TempDir(), "bench.ledger"),
			LedgerSync:               syncOn,
			LedgerDisableGroupCommit: !group,
			RetryInterval:            500 * time.Millisecond,
		})
		if err != nil {
			b.Fatal(err)
		}
		defer host.Close()
		bus, _ := host.NewBus("p")
		// A local subscriber consumes and acks, draining the ledger.
		conBus, _ := host.NewBus("c")
		sub, _ := conBus.Subscribe("qos.data")
		var drained sync.WaitGroup
		drained.Add(1)
		go func() {
			defer drained.Done()
			for range sub.C {
			}
		}()
		payload := make([]byte, 256)
		b.ResetTimer()
		var wg sync.WaitGroup
		for g := 0; g < pubs; g++ {
			n := b.N / pubs
			if g < b.N%pubs {
				n++
			}
			wg.Add(1)
			go func(n int) {
				defer wg.Done()
				for i := 0; i < n; i++ {
					if _, err := bus.PublishGuaranteed("qos.data", payload); err != nil {
						b.Error(err)
						return
					}
				}
			}(n)
		}
		wg.Wait()
		b.StopTimer()
		fsyncs := host.Metrics().Counter("ledger.fsyncs").Load()
		b.ReportMetric(float64(fsyncs)/float64(b.N), "fsyncs/msg")
		sub.Cancel()
		drained.Wait()
	}
	for _, syncOn := range []bool{false, true} {
		for _, pubs := range []int{1, 8} {
			for _, group := range []bool{false, true} {
				mode := "per-append"
				if group {
					mode = "group"
				}
				b.Run(fmt.Sprintf("sync=%v/pubs=%d/%s", syncOn, pubs, mode), func(b *testing.B) {
					run(b, pubs, syncOn, group)
				})
			}
		}
	}
}

// BenchmarkFanout measures the publish→deliver hot path in isolation: one
// daemon, one publisher, N local subscribers, the same subject every
// iteration. Local fan-out happens synchronously inside Publish, so each
// iteration is one full envelope-encode → reliable-publish → subject-match
// → N-enqueue round plus N dequeues. The simulated medium runs at Speedup
// 2000 so the wire never throttles the measurement (this benchmark is about
// CPU and allocation cost, not modelled network time — see the Figure
// benchmarks for those). allocs/op is the headline number: the steady-state
// hot path should stay allocation-free apart from the simulated network's
// own per-datagram bookkeeping (EXPERIMENTS.md records before/after).
func BenchmarkFanout(b *testing.B) {
	for _, nSubs := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("subs=%d", nSubs), func(b *testing.B) {
			netCfg := netsim.DefaultConfig()
			netCfg.Speedup = 2000
			seg := transport.NewSimSegment(netCfg)
			defer seg.Close()
			ep, err := seg.NewEndpoint("fanout")
			if err != nil {
				b.Fatal(err)
			}
			d := daemon.New(ep, reliable.Config{
				Batching:           true,
				NakInterval:        2 * time.Millisecond,
				RetransmitInterval: 3 * time.Millisecond,
				HeartbeatInterval:  10 * time.Millisecond,
			}, daemon.Options{})
			defer d.Close()
			pat := subject.MustParsePattern("fan.bench.data")
			clients := make([]*daemon.Client, nSubs)
			for i := range clients {
				c, err := d.NewClient(fmt.Sprintf("sub%d", i))
				if err != nil {
					b.Fatal(err)
				}
				if err := c.Subscribe(pat); err != nil {
					b.Fatal(err)
				}
				clients[i] = c
			}
			subj := subject.MustParse("fan.bench.data")
			payload := make([]byte, 256)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := d.Publish(subj, payload); err != nil {
					b.Fatal(err)
				}
				for _, c := range clients {
					if _, ok := c.TryNext(); !ok {
						b.Fatal("missing local delivery")
					}
				}
			}
		})
	}
}

// BenchmarkFanoutLanes (A12) measures the sharded delivery engine: one
// daemon with 64-512 local subscriber clients fed by four independent
// senders, DeliveryLanes=1 vs a full lane pool. The metric is aggregate
// wall-clock deliveries/sec across all subscribers; on a multicore host
// the lane pool must win (scripts/check.sh gates >= 3x at 8 cores via
// TestLaneScalingGate), while on a single core the two configurations
// should tie — the lanes add no serial overhead worth seeing.
func BenchmarkFanoutLanes(b *testing.B) {
	pool := 8
	if p := runtime.GOMAXPROCS(0); p < pool {
		pool = p
	}
	laneCounts := []int{1}
	if pool > 1 {
		laneCounts = append(laneCounts, pool)
	}
	for _, nSubs := range []int{64, 512} {
		for _, lanes := range laneCounts {
			b.Run(fmt.Sprintf("subs=%d/lanes=%d", nSubs, lanes), func(b *testing.B) {
				n := b.N
				if n < 320 {
					n = 320
				}
				if n > 4000 {
					n = 4000
				}
				r, err := bench.MeasureFanoutLanes(benchConfig(0), lanes, nSubs, n)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(r.DeliveriesPerSec, "deliveries/sec")
			})
		}
	}
}

// BenchmarkDictCompression (A9) measures type-dictionary compression: the
// self-describing codec against the compact steady state for each A9
// object shape, reporting wire bytes per message alongside encode and
// decode cost. The compact decode resolves classes through the receiver's
// fingerprint cache, skipping the per-message type-table parse entirely.
func BenchmarkDictCompression(b *testing.B) {
	for _, shape := range bench.DictShapes() {
		legacy, err := wire.Marshal(shape.Value)
		if err != nil {
			b.Fatal(err)
		}
		dict := wire.NewSendDict(1 << 30)
		first, err := dict.Marshal(shape.Value)
		if err != nil {
			b.Fatal(err)
		}
		steady, err := dict.Marshal(shape.Value)
		if err != nil {
			b.Fatal(err)
		}
		buf := make([]byte, 0, 2*len(legacy))

		b.Run(shape.Name+"/encode/legacy", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := wire.AppendMarshal(buf[:0], shape.Value); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(legacy)), "bytes/msg")
		})
		b.Run(shape.Name+"/encode/compact", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := dict.AppendMarshal(buf[:0], shape.Value); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(steady)), "bytes/msg")
		})

		reg := mop.NewRegistry()
		cache := wire.NewTypeCache(0)
		if _, err := wire.UnmarshalWith(first, reg, cache); err != nil {
			b.Fatal(err)
		}
		b.Run(shape.Name+"/decode/legacy", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := wire.Unmarshal(legacy, reg); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(shape.Name+"/decode/compact", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := wire.UnmarshalWith(steady, reg, cache); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTelemetryOverhead measures what the observability subsystem
// costs on the Figure 6 workload (small messages, batching on, full
// 15-node topology): telemetry off entirely, metrics only (counters are
// always on — this is the PR's baseline), and metrics plus per-hop tracing
// at the 1% default sampling and at 100%. The acceptance bar is <5%
// model-msgs/sec regression at 1% sampling versus off.
func BenchmarkTelemetryOverhead(b *testing.B) {
	cases := []struct {
		name     string
		sampling float64
	}{
		{"off", 0},
		{"trace=1pct", 0.01},
		{"trace=100pct", 1},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			n := b.N
			if n < 50 {
				n = 50
			}
			if n > 2000 {
				n = 2000
			}
			cfg := benchConfig(14)
			cfg.Telemetry = core.TelemetryConfig{TraceSampling: tc.sampling}
			r, err := bench.MeasureThroughput(cfg, 64, n, 1)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(r.MsgsPerSec, "model-msgs/sec")
		})
	}
}

// BenchmarkHealthOverhead (A8) measures what the health tier costs on the
// Figure 6 workload when no alarms fire — the common case: every host runs
// the alarm engine (slow-consumer, dedup-pressure, retransmit-storm, and
// ledger-backlog watches sampling at 5 ms) and a flight recorder, but all
// signals stay below their watermarks so the engine only ever reads
// atomics. The acceptance bar is overhead within run-to-run noise versus
// off (EXPERIMENTS.md A8 records the measured numbers at Speedup 10 via
// cmd/ibbench).
func BenchmarkHealthOverhead(b *testing.B) {
	cases := []struct {
		name   string
		health core.TelemetryConfig
	}{
		{"off", core.TelemetryConfig{}},
		{"on", core.TelemetryConfig{Health: telemetry.HealthConfig{Interval: 5 * time.Millisecond}}},
	}
	for _, tc := range cases {
		b.Run("health="+tc.name, func(b *testing.B) {
			n := b.N
			if n < 50 {
				n = 50
			}
			if n > 2000 {
				n = 2000
			}
			cfg := benchConfig(14)
			cfg.Telemetry = tc.health
			r, err := bench.MeasureThroughput(cfg, 64, n, 1)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(r.MsgsPerSec, "model-msgs/sec")
		})
	}
}

// BenchmarkHistoryOverhead (A13) measures what the flight-data tier costs
// on the Figure 6 workload: every host samples its standing rate, level,
// and percentile series into the history rings (at a 5 ms interval, far
// busier than the 250 ms production default) while the messages flow. The
// sampler only reads atomics and writes preallocated seqlock slots, so
// the acceptance bar is overhead within run-to-run noise versus off —
// the same bar the health tier met (EXPERIMENTS.md A13 records the
// measured numbers at Speedup 10 via cmd/ibbench).
func BenchmarkHistoryOverhead(b *testing.B) {
	cases := []struct {
		name string
		tc   core.TelemetryConfig
	}{
		{"off", core.TelemetryConfig{}},
		{"on", core.TelemetryConfig{HistoryInterval: 5 * time.Millisecond}},
	}
	for _, tc := range cases {
		b.Run("history="+tc.name, func(b *testing.B) {
			n := b.N
			if n < 50 {
				n = 50
			}
			if n > 2000 {
				n = 2000
			}
			cfg := benchConfig(14)
			cfg.Telemetry = tc.tc
			r, err := bench.MeasureThroughput(cfg, 64, n, 1)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(r.MsgsPerSec, "model-msgs/sec")
		})
	}
}

type countingWriter struct{ n int }

func (w *countingWriter) Write(p []byte) (int, error) { w.n += len(p); return len(p), nil }

var _ io.Writer = (*countingWriter)(nil)
