module infobus

go 1.22
