package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"infobus/internal/busproto"
)

// Trace assembly: the sampled per-hop records that ride traced envelopes
// (busproto.TraceHop) arrive at a monitor one delivery at a time; the
// assembler groups them by route — the exact stage path
// publisher→ledger→quorum→router…→consumer — and accumulates per-hop
// latency histograms, so "this publication took 40 ms because it sat in
// the group-commit batch" is readable straight off the per-route table.
//
// Intra-node stage hops (lane enqueue/pop, ledger stage/commit/fsync,
// replica chunk) ride the envelope itself; the quorum-ack stamp of a
// replicated publish is only known after the envelope has left, so it
// arrives out-of-band as a SysTrace sidecar on "_sys.trace.<node>" and is
// merged here by trace id before the route is assembled.

// maxPendingTraces bounds both the deliveries parked awaiting a sidecar
// and the sidecars parked awaiting a delivery. On overflow the oldest
// parked delivery is assembled without its sidecar (the route simply
// lacks the quorum hop) and the oldest sidecar is dropped.
const maxPendingTraces = 256

// TraceAssembler collects hop traces into per-route latency breakdowns.
// Safe for concurrent use.
type TraceAssembler struct {
	mu     sync.Mutex
	routes map[string]*traceRoute

	// Deliveries whose trace shows a replica chunk but no quorum ack yet:
	// parked until the sidecar arrives (or eviction). FIFO by arrival.
	pendDeliv  map[uint64][]busproto.TraceHop
	pendDOrder []uint64
	// Sidecars that arrived before (or after) their delivery. A sidecar is
	// kept until evicted, not consumed on merge: one traced publish fans
	// out to several consumers, each delivery merging the same stamps.
	sidecars map[uint64][]busproto.TraceHop
	scOrder  []uint64
}

type traceRoute struct {
	labels []string
	hops   []*Histogram // hops[i]: latency from labels[i] to labels[i+1]
	e2e    *Histogram   // first hop to last hop; its count is the route count
}

// NewTraceAssembler creates an empty assembler.
func NewTraceAssembler() *TraceAssembler {
	return &TraceAssembler{
		routes:    make(map[string]*traceRoute),
		pendDeliv: make(map[uint64][]busproto.TraceHop),
		sidecars:  make(map[uint64][]busproto.TraceHop),
	}
}

// hopLabel renders one hop for route keys and tables: bare node name for
// the classic inter-node hop, "node/stage" for intra-node stage hops.
func hopLabel(h busproto.TraceHop) string {
	if h.Kind == busproto.HopNode {
		return h.Node
	}
	return h.Node + "/" + busproto.HopKindName(h.Kind)
}

// Add feeds one delivery's hop trace with no trace id: it is assembled
// immediately, never parked for a sidecar merge. Traces with fewer than
// two hops (nothing to measure) are ignored.
func (a *TraceAssembler) Add(trace []busproto.TraceHop) {
	a.AddTraced(0, trace)
}

// AddTraced feeds one delivery's hop trace. If the trace shows a replica
// chunk without its quorum ack and no sidecar for id has arrived yet, the
// trace is parked until AddSidecar supplies the missing stamp (bounded;
// evicted traces assemble without it). Negative hop deltas (distinct
// clocks on a real network) are clamped to zero by the histogram.
func (a *TraceAssembler) AddTraced(id uint64, trace []busproto.TraceHop) {
	if len(trace) < 2 {
		return
	}
	if id != 0 && wantsSidecar(trace) {
		a.mu.Lock()
		if sc, ok := a.sidecars[id]; ok {
			trace = mergeSidecar(trace, sc)
			a.mu.Unlock()
			a.ingest(trace)
			return
		}
		if _, dup := a.pendDeliv[id]; !dup {
			if len(a.pendDOrder) >= maxPendingTraces {
				old := a.pendDOrder[0]
				a.pendDOrder = a.pendDOrder[1:]
				evicted := a.pendDeliv[old]
				delete(a.pendDeliv, old)
				a.mu.Unlock()
				a.ingest(evicted) // assemble without its sidecar
				a.mu.Lock()
			}
			a.pendDeliv[id] = append([]busproto.TraceHop(nil), trace...)
			a.pendDOrder = append(a.pendDOrder, id)
			a.mu.Unlock()
			return
		}
		a.mu.Unlock()
		// A second delivery of the same traced publish while the first is
		// parked: assemble it as-is rather than double-parking.
	}
	a.ingest(trace)
}

// AddSidecar feeds an out-of-band SysTrace: stage hops for trace id that
// were published after the envelope departed. A parked delivery merges
// and assembles immediately; otherwise the sidecar is kept for deliveries
// still in flight.
func (a *TraceAssembler) AddSidecar(id uint64, hops []busproto.TraceHop) {
	if id == 0 || len(hops) == 0 {
		return
	}
	a.mu.Lock()
	if _, ok := a.sidecars[id]; !ok {
		if len(a.scOrder) >= maxPendingTraces {
			old := a.scOrder[0]
			a.scOrder = a.scOrder[1:]
			delete(a.sidecars, old)
		}
		a.sidecars[id] = append([]busproto.TraceHop(nil), hops...)
		a.scOrder = append(a.scOrder, id)
	}
	deliv, ok := a.pendDeliv[id]
	if ok {
		delete(a.pendDeliv, id)
		for i, pid := range a.pendDOrder {
			if pid == id {
				a.pendDOrder = append(a.pendDOrder[:i], a.pendDOrder[i+1:]...)
				break
			}
		}
	}
	a.mu.Unlock()
	if ok {
		a.ingest(mergeSidecar(deliv, hops))
	}
}

// wantsSidecar reports whether the trace shows a replica chunk whose
// quorum ack has not been merged yet.
func wantsSidecar(trace []busproto.TraceHop) bool {
	chunk := false
	for _, h := range trace {
		switch h.Kind {
		case busproto.HopReplicaChunk:
			chunk = true
		case busproto.HopQuorumAck:
			return false
		}
	}
	return chunk
}

// mergeSidecar inserts the sidecar hops right after the replica-chunk hop
// — a deterministic position, so every delivery of the same publish keys
// the same route regardless of clock skew between the stamps.
func mergeSidecar(trace, sidecar []busproto.TraceHop) []busproto.TraceHop {
	at := len(trace)
	for i, h := range trace {
		if h.Kind == busproto.HopReplicaChunk {
			at = i + 1
			break
		}
	}
	out := make([]busproto.TraceHop, 0, len(trace)+len(sidecar))
	out = append(out, trace[:at]...)
	out = append(out, sidecar...)
	out = append(out, trace[at:]...)
	return out
}

// ingest assembles one completed trace into its route's histograms.
func (a *TraceAssembler) ingest(trace []busproto.TraceHop) {
	if len(trace) < 2 {
		return
	}
	var key strings.Builder
	for i, h := range trace {
		if i > 0 {
			key.WriteByte('\x00')
		}
		key.WriteString(hopLabel(h))
	}
	a.mu.Lock()
	r, ok := a.routes[key.String()]
	if !ok {
		r = &traceRoute{
			labels: make([]string, len(trace)),
			hops:   make([]*Histogram, len(trace)-1),
			e2e:    &Histogram{},
		}
		for i, h := range trace {
			r.labels[i] = hopLabel(h)
		}
		for i := range r.hops {
			r.hops[i] = &Histogram{}
		}
		a.routes[key.String()] = r
	}
	a.mu.Unlock()
	// Histogram operations are atomic; only the map needs the lock.
	for i := 0; i < len(trace)-1; i++ {
		r.hops[i].Observe(time.Duration(trace[i+1].At - trace[i].At))
	}
	r.e2e.Observe(time.Duration(trace[len(trace)-1].At - trace[0].At))
}

// HopSummary is one hop's latency digest within a route.
type HopSummary struct {
	From, To string
	HistogramSummary
}

// RouteSummary is one assembled route.
type RouteSummary struct {
	Path  []string // hop labels (node, or node/stage) in order
	Count uint64   // deliveries assembled (e2e histogram count)
	Hops  []HopSummary
	E2E   HistogramSummary
}

// Routes returns every assembled route, most-traveled first.
func (a *TraceAssembler) Routes() []RouteSummary {
	a.mu.Lock()
	routes := make([]*traceRoute, 0, len(a.routes))
	for _, r := range a.routes {
		routes = append(routes, r)
	}
	a.mu.Unlock()
	out := make([]RouteSummary, 0, len(routes))
	for _, r := range routes {
		s := RouteSummary{
			Path: append([]string(nil), r.labels...),
			E2E:  r.e2e.Summary(),
		}
		s.Count = s.E2E.Count
		for i, h := range r.hops {
			s.Hops = append(s.Hops, HopSummary{
				From: r.labels[i], To: r.labels[i+1], HistogramSummary: h.Summary(),
			})
		}
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return strings.Join(out[i].Path, "→") < strings.Join(out[j].Path, "→")
	})
	return out
}

// Render prints the per-route hop latency breakdown as a text table.
func (a *TraceAssembler) Render() string {
	routes := a.Routes()
	var b strings.Builder
	if len(routes) == 0 {
		b.WriteString("trace assembly: no complete routes yet\n")
		return b.String()
	}
	fmt.Fprintf(&b, "trace assembly: %d route(s)\n", len(routes))
	for _, r := range routes {
		fmt.Fprintf(&b, "route %s  (%d sampled deliveries)\n",
			strings.Join(r.Path, " → "), r.Count)
		fmt.Fprintf(&b, "  %-58s %10s %10s %10s %10s\n", "hop", "mean", "p50", "p95", "p99")
		for _, h := range r.Hops {
			fmt.Fprintf(&b, "  %-58s %10s %10s %10s %10s\n",
				h.From+" → "+h.To,
				fmtNs(h.MeanNs), fmtNs(h.P50Ns), fmtNs(h.P95Ns), fmtNs(h.P99Ns))
		}
		fmt.Fprintf(&b, "  %-58s %10s %10s %10s %10s\n", "end-to-end",
			fmtNs(r.E2E.MeanNs), fmtNs(r.E2E.P50Ns), fmtNs(r.E2E.P95Ns), fmtNs(r.E2E.P99Ns))
	}
	return b.String()
}

func fmtNs(ns float64) string {
	return time.Duration(ns).Round(time.Microsecond).String()
}
