package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"infobus/internal/busproto"
)

// Trace assembly: the sampled per-hop records that ride traced envelopes
// (busproto.TraceHop) arrive at a monitor one delivery at a time; the
// assembler groups them by route — the exact node path
// publisher→router…→consumer — and accumulates per-hop latency
// histograms, so "this publication took 40 ms because it sat in
// router-2's queue" is readable straight off the per-route table.

// TraceAssembler collects hop traces into per-route latency breakdowns.
// Safe for concurrent use.
type TraceAssembler struct {
	mu     sync.Mutex
	routes map[string]*traceRoute
}

type traceRoute struct {
	nodes []string
	hops  []*Histogram // hops[i]: latency from nodes[i] to nodes[i+1]
	e2e   *Histogram   // first hop to last hop; its count is the route count
}

// NewTraceAssembler creates an empty assembler.
func NewTraceAssembler() *TraceAssembler {
	return &TraceAssembler{routes: make(map[string]*traceRoute)}
}

// Add feeds one delivery's hop trace. Traces with fewer than two hops
// (nothing to measure) are ignored. Negative hop deltas (distinct clocks
// on a real network) are clamped to zero by the histogram.
func (a *TraceAssembler) Add(trace []busproto.TraceHop) {
	if len(trace) < 2 {
		return
	}
	var key strings.Builder
	for i, h := range trace {
		if i > 0 {
			key.WriteByte('\x00')
		}
		key.WriteString(h.Node)
	}
	a.mu.Lock()
	r, ok := a.routes[key.String()]
	if !ok {
		r = &traceRoute{
			nodes: make([]string, len(trace)),
			hops:  make([]*Histogram, len(trace)-1),
			e2e:   &Histogram{},
		}
		for i, h := range trace {
			r.nodes[i] = h.Node
		}
		for i := range r.hops {
			r.hops[i] = &Histogram{}
		}
		a.routes[key.String()] = r
	}
	a.mu.Unlock()
	// Histogram operations are atomic; only the map needs the lock.
	for i := 0; i < len(trace)-1; i++ {
		r.hops[i].Observe(time.Duration(trace[i+1].At - trace[i].At))
	}
	r.e2e.Observe(time.Duration(trace[len(trace)-1].At - trace[0].At))
}

// HopSummary is one hop's latency digest within a route.
type HopSummary struct {
	From, To string
	HistogramSummary
}

// RouteSummary is one assembled route.
type RouteSummary struct {
	Path  []string // node names in hop order
	Count uint64   // deliveries assembled (e2e histogram count)
	Hops  []HopSummary
	E2E   HistogramSummary
}

// Routes returns every assembled route, most-traveled first.
func (a *TraceAssembler) Routes() []RouteSummary {
	a.mu.Lock()
	routes := make([]*traceRoute, 0, len(a.routes))
	for _, r := range a.routes {
		routes = append(routes, r)
	}
	a.mu.Unlock()
	out := make([]RouteSummary, 0, len(routes))
	for _, r := range routes {
		s := RouteSummary{
			Path: append([]string(nil), r.nodes...),
			E2E:  r.e2e.Summary(),
		}
		s.Count = s.E2E.Count
		for i, h := range r.hops {
			s.Hops = append(s.Hops, HopSummary{
				From: r.nodes[i], To: r.nodes[i+1], HistogramSummary: h.Summary(),
			})
		}
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return strings.Join(out[i].Path, "→") < strings.Join(out[j].Path, "→")
	})
	return out
}

// Render prints the per-route hop latency breakdown as a text table.
func (a *TraceAssembler) Render() string {
	routes := a.Routes()
	var b strings.Builder
	if len(routes) == 0 {
		b.WriteString("trace assembly: no complete routes yet\n")
		return b.String()
	}
	fmt.Fprintf(&b, "trace assembly: %d route(s)\n", len(routes))
	for _, r := range routes {
		fmt.Fprintf(&b, "route %s  (%d sampled deliveries)\n",
			strings.Join(r.Path, " → "), r.Count)
		fmt.Fprintf(&b, "  %-44s %10s %10s %10s %10s\n", "hop", "mean", "p50", "p95", "p99")
		for _, h := range r.Hops {
			fmt.Fprintf(&b, "  %-44s %10s %10s %10s %10s\n",
				h.From+" → "+h.To,
				fmtNs(h.MeanNs), fmtNs(h.P50Ns), fmtNs(h.P95Ns), fmtNs(h.P99Ns))
		}
		fmt.Fprintf(&b, "  %-44s %10s %10s %10s %10s\n", "end-to-end",
			fmtNs(r.E2E.MeanNs), fmtNs(r.E2E.P50Ns), fmtNs(r.E2E.P95Ns), fmtNs(r.E2E.P99Ns))
	}
	return b.String()
}

func fmtNs(ns float64) string {
	return time.Duration(ns).Round(time.Microsecond).String()
}
