package telemetry

import (
	"strings"
	"testing"
	"time"

	"infobus/internal/busproto"
)

func hop(node string, at time.Duration) busproto.TraceHop {
	return busproto.TraceHop{Node: node, At: int64(at)}
}

func TestTraceAssembly(t *testing.T) {
	a := NewTraceAssembler()
	// Two deliveries over the same 3-node route, one over a direct route.
	a.Add([]busproto.TraceHop{
		hop("pub", 0), hop("router:r", 2*time.Millisecond), hop("con", 5*time.Millisecond),
	})
	a.Add([]busproto.TraceHop{
		hop("pub", 0), hop("router:r", 4*time.Millisecond), hop("con", 9*time.Millisecond),
	})
	a.Add([]busproto.TraceHop{hop("pub", 0), hop("con", time.Millisecond)})
	a.Add([]busproto.TraceHop{hop("lonely", 0)}) // < 2 hops: ignored
	a.Add(nil)

	routes := a.Routes()
	if len(routes) != 2 {
		t.Fatalf("routes = %d, want 2", len(routes))
	}
	// Most-traveled first.
	r := routes[0]
	if r.Count != 2 || strings.Join(r.Path, ",") != "pub,router:r,con" {
		t.Fatalf("route 0 = %+v", r)
	}
	if len(r.Hops) != 2 {
		t.Fatalf("hops = %d, want 2", len(r.Hops))
	}
	if r.Hops[0].From != "pub" || r.Hops[0].To != "router:r" ||
		r.Hops[1].From != "router:r" || r.Hops[1].To != "con" {
		t.Fatalf("hop endpoints = %+v", r.Hops)
	}
	// Hop means: (2ms+4ms)/2 = 3ms, (3ms+5ms)/2 = 4ms; e2e (5ms+9ms)/2 = 7ms.
	if got := time.Duration(r.Hops[0].MeanNs); got != 3*time.Millisecond {
		t.Errorf("hop 0 mean = %v, want 3ms", got)
	}
	if got := time.Duration(r.Hops[1].MeanNs); got != 4*time.Millisecond {
		t.Errorf("hop 1 mean = %v, want 4ms", got)
	}
	if got := time.Duration(r.E2E.MeanNs); got != 7*time.Millisecond {
		t.Errorf("e2e mean = %v, want 7ms", got)
	}
	if routes[1].Count != 1 || len(routes[1].Hops) != 1 {
		t.Fatalf("route 1 = %+v", routes[1])
	}
}

func TestTraceAssemblyNegativeDelta(t *testing.T) {
	a := NewTraceAssembler()
	// Clock skew on a real network: the second hop's stamp is earlier.
	a.Add([]busproto.TraceHop{hop("pub", 2*time.Millisecond), hop("con", time.Millisecond)})
	r := a.Routes()[0]
	if r.Hops[0].MeanNs != 0 {
		t.Fatalf("negative delta must clamp to 0, got %v", r.Hops[0].MeanNs)
	}
}

func TestTraceRender(t *testing.T) {
	a := NewTraceAssembler()
	if got := a.Render(); !strings.Contains(got, "no complete routes") {
		t.Fatalf("empty render = %q", got)
	}
	a.Add([]busproto.TraceHop{
		hop("pub", 0), hop("router:r", 2*time.Millisecond), hop("con", 5*time.Millisecond),
	})
	got := a.Render()
	for _, want := range []string{
		"trace assembly: 1 route(s)",
		"route pub → router:r → con  (1 sampled deliveries)",
		"pub → router:r",
		"router:r → con",
		"end-to-end",
		"p95",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("render missing %q:\n%s", want, got)
		}
	}
}
