package telemetry

import (
	"strings"
	"testing"
	"time"

	"infobus/internal/busproto"
)

func hop(node string, at time.Duration) busproto.TraceHop {
	return busproto.TraceHop{Node: node, At: int64(at)}
}

func TestTraceAssembly(t *testing.T) {
	a := NewTraceAssembler()
	// Two deliveries over the same 3-node route, one over a direct route.
	a.Add([]busproto.TraceHop{
		hop("pub", 0), hop("router:r", 2*time.Millisecond), hop("con", 5*time.Millisecond),
	})
	a.Add([]busproto.TraceHop{
		hop("pub", 0), hop("router:r", 4*time.Millisecond), hop("con", 9*time.Millisecond),
	})
	a.Add([]busproto.TraceHop{hop("pub", 0), hop("con", time.Millisecond)})
	a.Add([]busproto.TraceHop{hop("lonely", 0)}) // < 2 hops: ignored
	a.Add(nil)

	routes := a.Routes()
	if len(routes) != 2 {
		t.Fatalf("routes = %d, want 2", len(routes))
	}
	// Most-traveled first.
	r := routes[0]
	if r.Count != 2 || strings.Join(r.Path, ",") != "pub,router:r,con" {
		t.Fatalf("route 0 = %+v", r)
	}
	if len(r.Hops) != 2 {
		t.Fatalf("hops = %d, want 2", len(r.Hops))
	}
	if r.Hops[0].From != "pub" || r.Hops[0].To != "router:r" ||
		r.Hops[1].From != "router:r" || r.Hops[1].To != "con" {
		t.Fatalf("hop endpoints = %+v", r.Hops)
	}
	// Hop means: (2ms+4ms)/2 = 3ms, (3ms+5ms)/2 = 4ms; e2e (5ms+9ms)/2 = 7ms.
	if got := time.Duration(r.Hops[0].MeanNs); got != 3*time.Millisecond {
		t.Errorf("hop 0 mean = %v, want 3ms", got)
	}
	if got := time.Duration(r.Hops[1].MeanNs); got != 4*time.Millisecond {
		t.Errorf("hop 1 mean = %v, want 4ms", got)
	}
	if got := time.Duration(r.E2E.MeanNs); got != 7*time.Millisecond {
		t.Errorf("e2e mean = %v, want 7ms", got)
	}
	if routes[1].Count != 1 || len(routes[1].Hops) != 1 {
		t.Fatalf("route 1 = %+v", routes[1])
	}
}

func TestTraceAssemblyNegativeDelta(t *testing.T) {
	a := NewTraceAssembler()
	// Clock skew on a real network: the second hop's stamp is earlier.
	a.Add([]busproto.TraceHop{hop("pub", 2*time.Millisecond), hop("con", time.Millisecond)})
	r := a.Routes()[0]
	if r.Hops[0].MeanNs != 0 {
		t.Fatalf("negative delta must clamp to 0, got %v", r.Hops[0].MeanNs)
	}
}

func stageHop(node string, kind byte, at time.Duration) busproto.TraceHop {
	return busproto.TraceHop{Node: node, Kind: kind, At: int64(at)}
}

// replicatedTrace is a factor-N guaranteed publish as the consumer sees
// it: stage pre-hops, the publisher daemon, then the delivery-lane hops.
func replicatedTrace(base time.Duration) []busproto.TraceHop {
	return []busproto.TraceHop{
		stageHop("pub", busproto.HopLedgerStage, base),
		stageHop("pub", busproto.HopGroupCommit, base+time.Millisecond),
		stageHop("pub", busproto.HopReplicaChunk, base+2*time.Millisecond),
		hop("pub", base+3*time.Millisecond),
		hop("con", base+5*time.Millisecond),
		stageHop("con", busproto.HopLaneEnqueue, base+6*time.Millisecond),
		stageHop("con", busproto.HopLanePop, base+7*time.Millisecond),
	}
}

// TestTraceSidecarMerge covers both arrival orders of the out-of-band
// quorum-ack stamp: sidecar first (delivery merges on arrival) and
// delivery first (parked until the sidecar lands). Either way the merged
// route is identical — the quorum hop sits right after the replica chunk
// regardless of its timestamp — and the sidecar survives to serve later
// deliveries of the same fanned-out publish.
func TestTraceSidecarMerge(t *testing.T) {
	a := NewTraceAssembler()
	quorum := []busproto.TraceHop{stageHop("pub", busproto.HopQuorumAck, 9*time.Millisecond)}

	// Order 1: sidecar before its delivery.
	a.AddSidecar(1, quorum)
	a.AddTraced(1, replicatedTrace(0))
	// Order 2: delivery first — parked, no route yet for id 2.
	a.AddTraced(2, replicatedTrace(time.Millisecond))
	if n := len(a.Routes()); n != 1 {
		t.Fatalf("routes before sidecar 2 = %d, want 1 (delivery must park)", n)
	}
	a.AddSidecar(2, []busproto.TraceHop{stageHop("pub", busproto.HopQuorumAck, 10*time.Millisecond)})
	// A second consumer's delivery of publish 1: the kept sidecar merges again.
	a.AddTraced(1, replicatedTrace(2*time.Millisecond))

	routes := a.Routes()
	if len(routes) != 1 {
		t.Fatalf("routes = %d, want 1 merged stage chain (%+v)", len(routes), routes)
	}
	r := routes[0]
	want := "pub/ledger-stage,pub/group-commit,pub/repl-chunk,pub/quorum-ack,pub,con,con/lane-enq,con/lane-pop"
	if got := strings.Join(r.Path, ","); got != want {
		t.Fatalf("path = %q, want %q", got, want)
	}
	if r.Count != 3 {
		t.Fatalf("count = %d, want 3", r.Count)
	}

	// A trace with no replica chunk never parks, id or not.
	a.AddTraced(7, []busproto.TraceHop{hop("pub", 0), hop("con", time.Millisecond)})
	if n := len(a.Routes()); n != 2 {
		t.Fatalf("unreplicated trace must assemble immediately (routes = %d)", n)
	}
}

// TestTraceSidecarEviction pins the bounded-parking behavior: once more
// than maxPendingTraces deliveries wait for sidecars, the oldest is
// assembled without its quorum hop instead of leaking.
func TestTraceSidecarEviction(t *testing.T) {
	a := NewTraceAssembler()
	for id := uint64(1); id <= maxPendingTraces+1; id++ {
		a.AddTraced(id, replicatedTrace(0))
	}
	routes := a.Routes()
	if len(routes) != 1 || routes[0].Count != 1 {
		t.Fatalf("eviction should assemble exactly the oldest parked trace: %+v", routes)
	}
	if strings.Contains(strings.Join(routes[0].Path, ","), "quorum-ack") {
		t.Fatalf("evicted trace has a quorum hop it never received: %v", routes[0].Path)
	}
}

func TestTraceRender(t *testing.T) {
	a := NewTraceAssembler()
	if got := a.Render(); !strings.Contains(got, "no complete routes") {
		t.Fatalf("empty render = %q", got)
	}
	a.Add([]busproto.TraceHop{
		hop("pub", 0), hop("router:r", 2*time.Millisecond), hop("con", 5*time.Millisecond),
	})
	got := a.Render()
	for _, want := range []string{
		"trace assembly: 1 route(s)",
		"route pub → router:r → con  (1 sampled deliveries)",
		"pub → router:r",
		"router:r → con",
		"end-to-end",
		"p95",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("render missing %q:\n%s", want, got)
		}
	}
}
