package telemetry

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"infobus/internal/mop"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x.events")
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("x.depth")
	g.Set(7)
	g.Add(-3)
	if got := g.Load(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Fatal("same name must return the same counter")
	}
	if r.Histogram("h") != r.Histogram("h") {
		t.Fatal("same name must return the same histogram")
	}
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2", r.Len())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind clash must panic")
		}
	}()
	r.Gauge("a") // registered as a counter above
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 1000 observations spread 1..1000 µs: p50 ≈ 500µs, p99 ≈ 990µs.
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	s := h.Summary()
	if s.Count != 1000 {
		t.Fatalf("count = %d", s.Count)
	}
	mean := time.Duration(s.MeanNs)
	if mean < 400*time.Microsecond || mean > 600*time.Microsecond {
		t.Errorf("mean = %v, want ~500µs", mean)
	}
	// Power-of-two buckets: estimates must land within one bucket (2x) of
	// the true quantile.
	checks := []struct {
		got  float64
		want time.Duration
	}{
		{s.P50Ns, 500 * time.Microsecond},
		{s.P95Ns, 950 * time.Microsecond},
		{s.P99Ns, 990 * time.Microsecond},
	}
	for i, c := range checks {
		lo, hi := float64(c.want)/2, float64(c.want)*2
		if c.got < lo || c.got > hi {
			t.Errorf("quantile %d = %v, want within [%v, %v]",
				i, time.Duration(c.got), time.Duration(lo), time.Duration(hi))
		}
	}
	if s.P50Ns > s.P95Ns || s.P95Ns > s.P99Ns {
		t.Errorf("quantiles not monotone: %+v", s)
	}
}

func TestHistogramEdges(t *testing.T) {
	var h Histogram
	if s := h.Summary(); s.Count != 0 || s.P99Ns != 0 {
		t.Fatalf("empty histogram summary = %+v", s)
	}
	h.Observe(0)
	h.Observe(-time.Second) // clamped, must not corrupt buckets
	s := h.Summary()
	if s.Count != 2 || s.P99Ns != 0 {
		t.Fatalf("zero-valued summary = %+v", s)
	}
}

func TestHistogramSingleSample(t *testing.T) {
	var h Histogram
	h.Observe(time.Millisecond)
	s := h.Summary()
	if s.Count != 1 {
		t.Fatalf("count = %d", s.Count)
	}
	if time.Duration(s.MeanNs) != time.Millisecond {
		t.Errorf("mean = %v, want exactly 1ms (exact sum)", time.Duration(s.MeanNs))
	}
	// All quantiles fall in the single occupied bucket [2^19ns, 2^20ns).
	for i, q := range []float64{s.P50Ns, s.P95Ns, s.P99Ns} {
		if q < float64(int64(1)<<19) || q > float64(int64(1)<<20) {
			t.Errorf("quantile %d = %v outside the sample's bucket", i, time.Duration(q))
		}
	}
}

func TestHistogramAllOneBucket(t *testing.T) {
	var h Histogram
	// 100 identical observations: every quantile interpolates within the
	// same bucket, so p50 < p95 < p99 but all within a 2x band of the value.
	for i := 0; i < 100; i++ {
		h.Observe(700 * time.Nanosecond) // bucket [512ns, 1024ns)
	}
	s := h.Summary()
	if s.Count != 100 || s.MeanNs != 700 {
		t.Fatalf("summary = %+v", s)
	}
	for i, q := range []float64{s.P50Ns, s.P95Ns, s.P99Ns} {
		if q < 512 || q > 1024 {
			t.Errorf("quantile %d = %.0fns outside bucket [512,1024)", i, q)
		}
	}
	if !(s.P50Ns <= s.P95Ns && s.P95Ns <= s.P99Ns) {
		t.Errorf("quantiles not monotone within bucket: %+v", s)
	}
}

func TestSnapshotSortedAndComplete(t *testing.T) {
	r := NewRegistry()
	r.Counter("z.last").Add(3)
	r.Gauge("a.first").Set(-2)
	r.Histogram("m.mid").Observe(time.Millisecond)
	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot has %d metrics", len(snap))
	}
	if snap[0].Name != "a.first" || snap[1].Name != "m.mid" || snap[2].Name != "z.last" {
		t.Fatalf("snapshot not sorted: %+v", snap)
	}
	if snap[0].Kind != KindGauge || snap[0].Value != -2 {
		t.Errorf("gauge metric = %+v", snap[0])
	}
	if snap[1].Kind != KindHistogram || snap[1].Count != 1 {
		t.Errorf("histogram metric = %+v", snap[1])
	}
	if snap[2].Kind != KindCounter || snap[2].Value != 3 {
		t.Errorf("counter metric = %+v", snap[2])
	}
}

// TestRegistryConcurrent proves the registry race-clean under `go test
// -race`: concurrent instrument creation, updates, and snapshots.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("shared.count")
			h := r.Histogram("shared.lat")
			g := r.Gauge(fmt.Sprintf("worker.%d", w))
			for i := 0; i < perWorker; i++ {
				c.Inc()
				h.Observe(time.Duration(i))
				g.Set(int64(i))
				if i%500 == 0 {
					r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("shared.count").Load(); got != workers*perWorker {
		t.Fatalf("shared counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Histogram("shared.lat").Count(); got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
}

func TestSysStatsObjectRoundTrip(t *testing.T) {
	reg := mop.NewRegistry()
	st, err := DefineSysTypes(reg)
	if err != nil {
		t.Fatal(err)
	}
	// Idempotent re-definition (shared registries in tests).
	st2, err := DefineSysTypes(reg)
	if err != nil || st2.Stats != st.Stats {
		t.Fatalf("re-define: %v (%v vs %v)", err, st2.Stats, st.Stats)
	}
	r := NewRegistry()
	r.Counter("daemon.inbound").Add(42)
	r.Histogram("daemon.lat").Observe(3 * time.Millisecond)
	at := time.Unix(100, 0)
	obj := st.StatsObject("node-1", at, 5*time.Second, r.Snapshot())
	if got := obj.MustGet("node"); got != "node-1" {
		t.Errorf("node = %v", got)
	}
	metrics := obj.MustGet("metrics").(mop.List)
	if len(metrics) != 2 {
		t.Fatalf("metrics = %d entries", len(metrics))
	}
	m0 := metrics[0].(*mop.Object)
	if m0.MustGet("name") != "daemon.inbound" || m0.MustGet("value") != int64(42) {
		t.Errorf("metric 0 = %v", m0)
	}
	// The generic print utility must render it (what ibmon -sys shows).
	if s := mop.Sprint(obj); len(s) == 0 {
		t.Error("Sprint produced nothing")
	}
	pong := st.PongObject("node-1", at, 7)
	if pong.MustGet("nonce") != int64(7) {
		t.Errorf("pong = %v", pong)
	}
}
