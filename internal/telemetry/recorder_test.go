package telemetry

import (
	"strings"
	"testing"
)

func TestRecorderRingWrap(t *testing.T) {
	r := NewRecorder(4)
	for i := int64(0); i < 6; i++ {
		r.Record(EventDrop, "peer", i, 0)
	}
	if got := r.Total(); got != 6 {
		t.Fatalf("Total = %d, want 6", got)
	}
	events := r.Events()
	if len(events) != 4 {
		t.Fatalf("retained %d, want 4", len(events))
	}
	// Oldest first: events 2..5 survive, 0 and 1 were overwritten.
	for i, ev := range events {
		if ev.A != int64(i+2) {
			t.Fatalf("events[%d].A = %d, want %d (oldest-first order)", i, ev.A, i+2)
		}
	}
}

func TestRecorderPartialFill(t *testing.T) {
	r := NewRecorder(8)
	r.Record(EventRestart, "h2", 3, 1)
	r.Record(EventRetransmit, "h3", 12, 0)
	events := r.Events()
	if len(events) != 2 || events[0].Kind != EventRestart || events[1].Kind != EventRetransmit {
		t.Fatalf("events = %+v", events)
	}
	if events[0].Target != "h2" || events[0].A != 3 || events[0].B != 1 {
		t.Fatalf("event 0 = %+v", events[0])
	}
}

// TestRecordAllocs pins the contract the hot paths rely on: Record never
// allocates, neither while the ring is filling nor once it wraps.
func TestRecordAllocs(t *testing.T) {
	r := NewRecorder(32)
	allocs := testing.AllocsPerRun(100, func() {
		r.Record(EventRetransmit, "peer", 1, 0)
	})
	if allocs != 0 {
		t.Fatalf("Record allocates %.1f/op, want 0", allocs)
	}
}

func TestRecorderDump(t *testing.T) {
	r := NewRecorder(8)
	text := r.Dump()
	if !strings.Contains(text, "flight recorder: 0 events retained, 0 recorded") {
		t.Fatalf("empty dump = %q", text)
	}
	r.Record(EventAlarmRaise, "slow-consumer:app1", 2048, 1024)
	r.Record(EventTrace, "h1", 1500000, 3)
	r.Record(EventDrop, "peer", 7, 0)
	text = r.Dump()
	for _, want := range []string{
		"3 events retained, 3 recorded",
		"alarm-raise",
		"slow-consumer:app1 value=2048 threshold=1024",
		"trace",
		"e2e=1.5ms hops=3",
		"drop",
		"n=7",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("dump missing %q:\n%s", want, text)
		}
	}
}

func TestRecorderDefaultSize(t *testing.T) {
	r := NewRecorder(0)
	for i := 0; i < 300; i++ {
		r.Record(EventDrop, "", 0, 0)
	}
	if got := len(r.Events()); got != 256 {
		t.Fatalf("default ring retains %d, want 256", got)
	}
}
