package telemetry

import (
	"strings"
	"time"

	"infobus/internal/mop"
)

// System subject conventions. The "_sys." prefix is reserved by the bus
// (internal/subject, internal/core): user publications under it are
// rejected, so an anonymous subscriber can trust that "_sys.stats.<node>"
// objects really came from that node's bus machinery.
const (
	// StatsSubjectPrefix is the subject prefix under which every node
	// periodically publishes its SysStats object; the final element is the
	// sanitised node name.
	StatsSubjectPrefix = "_sys.stats"
	// PingSubject is the probe subject: any application may publish here
	// (the one user-publishable system subject), and every exporting node
	// answers with a SysPong on PongSubjectPrefix.<node> plus a fresh
	// stats publication.
	PingSubject = "_sys.ping"
	// PongSubjectPrefix is the subject prefix for ping answers.
	PongSubjectPrefix = "_sys.pong"
)

// SanitizeNode turns an arbitrary node name into a single valid subject
// element: separator, wildcard, and unprintable characters become '-'.
// Host names like "127.0.0.1:7001" must be publishable as the final
// element of "_sys.stats.<node>".
func SanitizeNode(name string) string {
	var b strings.Builder
	for _, r := range name {
		if r < 0x21 || r == 0x7f || r == '.' || r == '*' || r == '>' {
			b.WriteByte('-')
			continue
		}
		b.WriteRune(r)
	}
	if b.Len() == 0 {
		return "node"
	}
	return b.String()
}

// StatsSubject returns the stats subject for a (sanitised) node name.
func StatsSubject(node string) string { return StatsSubjectPrefix + "." + node }

// PongSubject returns the ping-answer subject for a (sanitised) node name.
func PongSubject(node string) string { return PongSubjectPrefix + "." + node }

// SysTypes is the registered system-telemetry class family.
type SysTypes struct {
	Metric *mop.Type // SysMetric: one metric value
	Stats  *mop.Type // SysStats: one node's snapshot
	Pong   *mop.Type // SysPong: answer to a _sys.ping probe
}

// DefineSysTypes builds and registers the system-telemetry classes in a
// registry. Calling it twice with the same registry returns the registered
// types. Monitors never need to call it: the classes travel self-
// describing with every "_sys.>" publication (P2).
func DefineSysTypes(reg *mop.Registry) (SysTypes, error) {
	if reg.Has("SysStats") {
		metric, err := reg.Lookup("SysMetric")
		if err != nil {
			return SysTypes{}, err
		}
		stats, err := reg.Lookup("SysStats")
		if err != nil {
			return SysTypes{}, err
		}
		pong, err := reg.Lookup("SysPong")
		if err != nil {
			return SysTypes{}, err
		}
		return SysTypes{Metric: metric, Stats: stats, Pong: pong}, nil
	}
	metric := mop.MustNewClass("SysMetric", nil, []mop.Attr{
		{Name: "name", Type: mop.String},
		{Name: "kind", Type: mop.String},
		{Name: "value", Type: mop.Int},
		{Name: "count", Type: mop.Int},
		{Name: "mean_ns", Type: mop.Float},
		{Name: "p50_ns", Type: mop.Float},
		{Name: "p95_ns", Type: mop.Float},
		{Name: "p99_ns", Type: mop.Float},
	}, nil)
	stats := mop.MustNewClass("SysStats", nil, []mop.Attr{
		{Name: "node", Type: mop.String},
		{Name: "at", Type: mop.Time},
		{Name: "uptime_ns", Type: mop.Int},
		{Name: "metrics", Type: mop.ListOf(metric)},
	}, nil)
	pong := mop.MustNewClass("SysPong", nil, []mop.Attr{
		{Name: "node", Type: mop.String},
		{Name: "at", Type: mop.Time},
		{Name: "nonce", Type: mop.Int},
	}, nil)
	for _, t := range []*mop.Type{metric, stats, pong} {
		if err := reg.Register(t); err != nil {
			return SysTypes{}, err
		}
	}
	return SysTypes{Metric: metric, Stats: stats, Pong: pong}, nil
}

// StatsObject renders a registry snapshot as a self-describing SysStats
// object, ready for wire.Marshal and publication on
// StatsSubjectPrefix.<node>.
func (st SysTypes) StatsObject(node string, at time.Time, uptime time.Duration, snap []Metric) *mop.Object {
	metrics := make(mop.List, 0, len(snap))
	for _, m := range snap {
		o := mop.MustNew(st.Metric).
			MustSet("name", m.Name).
			MustSet("kind", m.Kind.String()).
			MustSet("value", m.Value).
			MustSet("count", int64(m.Count)).
			MustSet("mean_ns", m.MeanNs).
			MustSet("p50_ns", m.P50Ns).
			MustSet("p95_ns", m.P95Ns).
			MustSet("p99_ns", m.P99Ns)
		metrics = append(metrics, o)
	}
	return mop.MustNew(st.Stats).
		MustSet("node", node).
		MustSet("at", at).
		MustSet("uptime_ns", int64(uptime)).
		MustSet("metrics", metrics)
}

// PongObject renders a ping answer.
func (st SysTypes) PongObject(node string, at time.Time, nonce int64) *mop.Object {
	return mop.MustNew(st.Pong).
		MustSet("node", node).
		MustSet("at", at).
		MustSet("nonce", nonce)
}
