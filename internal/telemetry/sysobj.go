package telemetry

import (
	"strings"
	"time"

	"infobus/internal/mop"
)

// System subject conventions. The "_sys." prefix is reserved by the bus
// (internal/subject, internal/core): user publications under it are
// rejected, so an anonymous subscriber can trust that "_sys.stats.<node>"
// objects really came from that node's bus machinery.
const (
	// StatsSubjectPrefix is the subject prefix under which every node
	// periodically publishes its SysStats object; the final element is the
	// sanitised node name.
	StatsSubjectPrefix = "_sys.stats"
	// PingSubject is the probe subject: any application may publish here
	// (the one user-publishable system subject), and every exporting node
	// answers with a SysPong on PongSubjectPrefix.<node> plus a fresh
	// stats publication.
	PingSubject = "_sys.ping"
	// PongSubjectPrefix is the subject prefix for ping answers.
	PongSubjectPrefix = "_sys.pong"
	// AlarmSubjectPrefix is the subject prefix for health alarm edges:
	// a raise or clear is published on "_sys.alarm.<node>.<kind>", so a
	// monitor can subscribe to one node ("_sys.alarm.host3.>"), one kind
	// ("_sys.alarm.*.slow-consumer"), or everything ("_sys.alarm.>").
	AlarmSubjectPrefix = "_sys.alarm"
	// DumpSubject is the flight-recorder probe: any application may
	// publish here (like PingSubject, it is user-publishable), and every
	// health-enabled node answers with a SysDump on DumpedSubjectPrefix.<node>.
	DumpSubject = "_sys.dump"
	// DumpedSubjectPrefix is the subject prefix for flight-recorder dumps.
	DumpedSubjectPrefix = "_sys.dumped"
	// ClassReqSubject is the class-definition NAK subject of the compact
	// dictionary format: a receiver holding a compact publication whose
	// class fingerprints it cannot resolve publishes the fingerprint list
	// here, and any holder of the definitions (the origin host, or a
	// router that saw them cross its segment) answers on ClassDefSubject.
	ClassReqSubject = "_sys.class.req"
	// ClassDefSubject carries class-definition replies: a compact
	// wire message whose def table holds the requested definitions
	// (wire.MarshalDefs). Replies are broadcast — definitions are
	// content-addressed, so every listener may harvest them.
	ClassDefSubject = "_sys.class.def"
)

// SanitizeNode turns an arbitrary node name into a single valid subject
// element: separator, wildcard, and unprintable characters become '-'.
// Host names like "127.0.0.1:7001" must be publishable as the final
// element of "_sys.stats.<node>".
func SanitizeNode(name string) string {
	var b strings.Builder
	for _, r := range name {
		if r < 0x21 || r == 0x7f || r == '.' || r == '*' || r == '>' {
			b.WriteByte('-')
			continue
		}
		b.WriteRune(r)
	}
	if b.Len() == 0 {
		return "node"
	}
	return b.String()
}

// StatsSubject returns the stats subject for a (sanitised) node name.
func StatsSubject(node string) string { return StatsSubjectPrefix + "." + node }

// PongSubject returns the ping-answer subject for a (sanitised) node name.
func PongSubject(node string) string { return PongSubjectPrefix + "." + node }

// AlarmSubject returns the alarm subject for a (sanitised) node name and
// an alarm kind ("slow-consumer"). Kinds contain only hyphen-separated
// lowercase words, which are valid subject elements.
func AlarmSubject(node, kind string) string {
	return AlarmSubjectPrefix + "." + node + "." + kind
}

// DumpedSubject returns the flight-recorder dump subject for a
// (sanitised) node name.
func DumpedSubject(node string) string { return DumpedSubjectPrefix + "." + node }

// SysTypes is the registered system-telemetry class family.
type SysTypes struct {
	Metric *mop.Type // SysMetric: one metric value
	Stats  *mop.Type // SysStats: one node's snapshot
	Pong   *mop.Type // SysPong: answer to a _sys.ping probe
	Alarm  *mop.Type // SysAlarm: one health alarm raise/clear edge
	Dump   *mop.Type // SysDump: answer to a _sys.dump probe
}

// DefineSysTypes builds and registers the system-telemetry classes in a
// registry. Calling it twice with the same registry returns the registered
// types. Monitors never need to call it: the classes travel self-
// describing with every "_sys.>" publication (P2).
func DefineSysTypes(reg *mop.Registry) (SysTypes, error) {
	if reg.Has("SysStats") {
		metric, err := reg.Lookup("SysMetric")
		if err != nil {
			return SysTypes{}, err
		}
		stats, err := reg.Lookup("SysStats")
		if err != nil {
			return SysTypes{}, err
		}
		pong, err := reg.Lookup("SysPong")
		if err != nil {
			return SysTypes{}, err
		}
		alarm, err := reg.Lookup("SysAlarm")
		if err != nil {
			return SysTypes{}, err
		}
		dump, err := reg.Lookup("SysDump")
		if err != nil {
			return SysTypes{}, err
		}
		return SysTypes{Metric: metric, Stats: stats, Pong: pong, Alarm: alarm, Dump: dump}, nil
	}
	metric := mop.MustNewClass("SysMetric", nil, []mop.Attr{
		{Name: "name", Type: mop.String},
		{Name: "kind", Type: mop.String},
		{Name: "value", Type: mop.Int},
		{Name: "count", Type: mop.Int},
		{Name: "mean_ns", Type: mop.Float},
		{Name: "p50_ns", Type: mop.Float},
		{Name: "p95_ns", Type: mop.Float},
		{Name: "p99_ns", Type: mop.Float},
	}, nil)
	stats := mop.MustNewClass("SysStats", nil, []mop.Attr{
		{Name: "node", Type: mop.String},
		{Name: "at", Type: mop.Time},
		{Name: "uptime_ns", Type: mop.Int},
		{Name: "metrics", Type: mop.ListOf(metric)},
	}, nil)
	pong := mop.MustNewClass("SysPong", nil, []mop.Attr{
		{Name: "node", Type: mop.String},
		{Name: "at", Type: mop.Time},
		{Name: "nonce", Type: mop.Int},
	}, nil)
	alarm := mop.MustNewClass("SysAlarm", nil, []mop.Attr{
		{Name: "node", Type: mop.String},
		{Name: "kind", Type: mop.String},
		{Name: "target", Type: mop.String},
		{Name: "raised", Type: mop.Bool},
		{Name: "value", Type: mop.Int},
		{Name: "threshold", Type: mop.Int},
		{Name: "at", Type: mop.Time},
	}, nil)
	dump := mop.MustNewClass("SysDump", nil, []mop.Attr{
		{Name: "node", Type: mop.String},
		{Name: "at", Type: mop.Time},
		{Name: "events", Type: mop.Int},
		{Name: "text", Type: mop.String},
	}, nil)
	for _, t := range []*mop.Type{metric, stats, pong, alarm, dump} {
		if err := reg.Register(t); err != nil {
			return SysTypes{}, err
		}
	}
	return SysTypes{Metric: metric, Stats: stats, Pong: pong, Alarm: alarm, Dump: dump}, nil
}

// StatsObject renders a registry snapshot as a self-describing SysStats
// object, ready for wire.Marshal and publication on
// StatsSubjectPrefix.<node>.
func (st SysTypes) StatsObject(node string, at time.Time, uptime time.Duration, snap []Metric) *mop.Object {
	metrics := make(mop.List, 0, len(snap))
	for _, m := range snap {
		o := mop.MustNew(st.Metric).
			MustSet("name", m.Name).
			MustSet("kind", m.Kind.String()).
			MustSet("value", m.Value).
			MustSet("count", int64(m.Count)).
			MustSet("mean_ns", m.MeanNs).
			MustSet("p50_ns", m.P50Ns).
			MustSet("p95_ns", m.P95Ns).
			MustSet("p99_ns", m.P99Ns)
		metrics = append(metrics, o)
	}
	return mop.MustNew(st.Stats).
		MustSet("node", node).
		MustSet("at", at).
		MustSet("uptime_ns", int64(uptime)).
		MustSet("metrics", metrics)
}

// PongObject renders a ping answer.
func (st SysTypes) PongObject(node string, at time.Time, nonce int64) *mop.Object {
	return mop.MustNew(st.Pong).
		MustSet("node", node).
		MustSet("at", at).
		MustSet("nonce", nonce)
}

// AlarmObject renders one alarm edge as a self-describing SysAlarm
// object, ready for publication on AlarmSubject(ev.Node, ev.Kind).
func (st SysTypes) AlarmObject(ev AlarmEvent) *mop.Object {
	return mop.MustNew(st.Alarm).
		MustSet("node", ev.Node).
		MustSet("kind", ev.Kind).
		MustSet("target", ev.Target).
		MustSet("raised", ev.Raised).
		MustSet("value", ev.Value).
		MustSet("threshold", ev.Threshold).
		MustSet("at", ev.At)
}

// DumpObject renders a flight-recorder dump answer.
func (st SysTypes) DumpObject(node string, at time.Time, events int64, text string) *mop.Object {
	return mop.MustNew(st.Dump).
		MustSet("node", node).
		MustSet("at", at).
		MustSet("events", events).
		MustSet("text", text)
}
