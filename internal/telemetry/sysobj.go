package telemetry

import (
	"strings"
	"time"

	"infobus/internal/busproto"
	"infobus/internal/mop"
)

// System subject conventions. The "_sys." prefix is reserved by the bus
// (internal/subject, internal/core): user publications under it are
// rejected, so an anonymous subscriber can trust that "_sys.stats.<node>"
// objects really came from that node's bus machinery.
const (
	// StatsSubjectPrefix is the subject prefix under which every node
	// periodically publishes its SysStats object; the final element is the
	// sanitised node name.
	StatsSubjectPrefix = "_sys.stats"
	// PingSubject is the probe subject: any application may publish here
	// (the one user-publishable system subject), and every exporting node
	// answers with a SysPong on PongSubjectPrefix.<node> plus a fresh
	// stats publication.
	PingSubject = "_sys.ping"
	// PongSubjectPrefix is the subject prefix for ping answers.
	PongSubjectPrefix = "_sys.pong"
	// AlarmSubjectPrefix is the subject prefix for health alarm edges:
	// a raise or clear is published on "_sys.alarm.<node>.<kind>", so a
	// monitor can subscribe to one node ("_sys.alarm.host3.>"), one kind
	// ("_sys.alarm.*.slow-consumer"), or everything ("_sys.alarm.>").
	AlarmSubjectPrefix = "_sys.alarm"
	// DumpSubject is the flight-recorder probe: any application may
	// publish here (like PingSubject, it is user-publishable), and every
	// health-enabled node answers with a SysDump on DumpedSubjectPrefix.<node>.
	DumpSubject = "_sys.dump"
	// DumpedSubjectPrefix is the subject prefix for flight-recorder dumps.
	DumpedSubjectPrefix = "_sys.dumped"
	// ClassReqSubject is the class-definition NAK subject of the compact
	// dictionary format: a receiver holding a compact publication whose
	// class fingerprints it cannot resolve publishes the fingerprint list
	// here, and any holder of the definitions (the origin host, or a
	// router that saw them cross its segment) answers on ClassDefSubject.
	ClassReqSubject = "_sys.class.req"
	// ClassDefSubject carries class-definition replies: a compact
	// wire message whose def table holds the requested definitions
	// (wire.MarshalDefs). Replies are broadcast — definitions are
	// content-addressed, so every listener may harvest them.
	ClassDefSubject = "_sys.class.def"
	// TraceSubjectPrefix carries trace sidecars: per-hop records that are
	// known only after the traced envelope already left the node (the
	// quorum-ack stamp of a replicated guaranteed publish) are published
	// as a SysTrace on "_sys.trace.<node>", and monitors merge them into
	// the assembled route by trace id.
	TraceSubjectPrefix = "_sys.trace"
	// HistorySubject is the flight-data probe subject: any application may
	// publish here (user-publishable, like PingSubject and DumpSubject),
	// and every history-enabled node answers with its full SysHistory
	// window on HistoryNodeSubject. Periodic digests (a short tail of the
	// same series) are published on the same per-node subject unprompted.
	HistorySubject = "_sys.history"
	// HistorySubjectPrefix prefixes the per-node history subjects:
	// "_sys.history.<node>" carries both probe answers and periodic
	// digests. Subscribe "_sys.history.>" for all nodes' flight data.
	HistorySubjectPrefix = "_sys.history"
)

// SanitizeNode turns an arbitrary node name into a single valid subject
// element: separator, wildcard, and unprintable characters become '-'.
// Host names like "127.0.0.1:7001" must be publishable as the final
// element of "_sys.stats.<node>".
func SanitizeNode(name string) string {
	var b strings.Builder
	for _, r := range name {
		if r < 0x21 || r == 0x7f || r == '.' || r == '*' || r == '>' {
			b.WriteByte('-')
			continue
		}
		b.WriteRune(r)
	}
	if b.Len() == 0 {
		return "node"
	}
	return b.String()
}

// StatsSubject returns the stats subject for a (sanitised) node name.
func StatsSubject(node string) string { return StatsSubjectPrefix + "." + node }

// PongSubject returns the ping-answer subject for a (sanitised) node name.
func PongSubject(node string) string { return PongSubjectPrefix + "." + node }

// AlarmSubject returns the alarm subject for a (sanitised) node name and
// an alarm kind ("slow-consumer"). Kinds contain only hyphen-separated
// lowercase words, which are valid subject elements.
func AlarmSubject(node, kind string) string {
	return AlarmSubjectPrefix + "." + node + "." + kind
}

// DumpedSubject returns the flight-recorder dump subject for a
// (sanitised) node name.
func DumpedSubject(node string) string { return DumpedSubjectPrefix + "." + node }

// TraceSubject returns the trace-sidecar subject for a (sanitised) node
// name.
func TraceSubject(node string) string { return TraceSubjectPrefix + "." + node }

// HistoryNodeSubject returns the flight-data subject for a (sanitised)
// node name.
func HistoryNodeSubject(node string) string { return HistorySubjectPrefix + "." + node }

// SysTypes is the registered system-telemetry class family.
type SysTypes struct {
	Metric   *mop.Type // SysMetric: one metric value
	Stats    *mop.Type // SysStats: one node's snapshot
	Pong     *mop.Type // SysPong: answer to a _sys.ping probe
	Alarm    *mop.Type // SysAlarm: one health alarm raise/clear edge
	Dump     *mop.Type // SysDump: answer to a _sys.dump probe
	TraceHop *mop.Type // SysTraceHop: one stage hop of a trace sidecar
	Trace    *mop.Type // SysTrace: trace sidecar (out-of-band hops by id)
	Sample   *mop.Type // SysSample: one history tick of one series
	Series   *mop.Type // SysSeries: one history series window
	Family   *mop.Type // SysFamily: one subject-family accounting row
	History  *mop.Type // SysHistory: answer to a _sys.history probe / digest
}

// DefineSysTypes builds and registers the system-telemetry classes in a
// registry. Calling it twice with the same registry returns the registered
// types; a registry holding an older subset of the family (from a peer's
// self-describing publication, say) gains only the missing classes.
// Monitors never need to call it: the classes travel self-describing with
// every "_sys.>" publication (P2).
func DefineSysTypes(reg *mop.Registry) (SysTypes, error) {
	var firstErr error
	ensure := func(name string, build func() *mop.Type) *mop.Type {
		if firstErr != nil {
			return nil
		}
		if reg.Has(name) {
			t, err := reg.Lookup(name)
			if err != nil {
				firstErr = err
				return nil
			}
			return t
		}
		t := build()
		if err := reg.Register(t); err != nil {
			firstErr = err
			return nil
		}
		return t
	}
	var st SysTypes
	st.Metric = ensure("SysMetric", func() *mop.Type {
		return mop.MustNewClass("SysMetric", nil, []mop.Attr{
			{Name: "name", Type: mop.String},
			{Name: "kind", Type: mop.String},
			{Name: "value", Type: mop.Int},
			{Name: "count", Type: mop.Int},
			{Name: "mean_ns", Type: mop.Float},
			{Name: "p50_ns", Type: mop.Float},
			{Name: "p95_ns", Type: mop.Float},
			{Name: "p99_ns", Type: mop.Float},
		}, nil)
	})
	st.Stats = ensure("SysStats", func() *mop.Type {
		return mop.MustNewClass("SysStats", nil, []mop.Attr{
			{Name: "node", Type: mop.String},
			{Name: "at", Type: mop.Time},
			{Name: "uptime_ns", Type: mop.Int},
			{Name: "metrics", Type: mop.ListOf(st.Metric)},
		}, nil)
	})
	st.Pong = ensure("SysPong", func() *mop.Type {
		return mop.MustNewClass("SysPong", nil, []mop.Attr{
			{Name: "node", Type: mop.String},
			{Name: "at", Type: mop.Time},
			{Name: "nonce", Type: mop.Int},
		}, nil)
	})
	st.Alarm = ensure("SysAlarm", func() *mop.Type {
		return mop.MustNewClass("SysAlarm", nil, []mop.Attr{
			{Name: "node", Type: mop.String},
			{Name: "kind", Type: mop.String},
			{Name: "target", Type: mop.String},
			{Name: "raised", Type: mop.Bool},
			{Name: "value", Type: mop.Int},
			{Name: "threshold", Type: mop.Int},
			{Name: "at", Type: mop.Time},
		}, nil)
	})
	st.Dump = ensure("SysDump", func() *mop.Type {
		return mop.MustNewClass("SysDump", nil, []mop.Attr{
			{Name: "node", Type: mop.String},
			{Name: "at", Type: mop.Time},
			{Name: "events", Type: mop.Int},
			{Name: "text", Type: mop.String},
		}, nil)
	})
	st.TraceHop = ensure("SysTraceHop", func() *mop.Type {
		return mop.MustNewClass("SysTraceHop", nil, []mop.Attr{
			{Name: "kind", Type: mop.String},
			{Name: "node", Type: mop.String},
			{Name: "at", Type: mop.Int},
		}, nil)
	})
	st.Trace = ensure("SysTrace", func() *mop.Type {
		return mop.MustNewClass("SysTrace", nil, []mop.Attr{
			{Name: "node", Type: mop.String},
			{Name: "trace_id", Type: mop.Int}, // uint64 trace id, bit-cast
			{Name: "hops", Type: mop.ListOf(st.TraceHop)},
		}, nil)
	})
	st.Sample = ensure("SysSample", func() *mop.Type {
		return mop.MustNewClass("SysSample", nil, []mop.Attr{
			{Name: "tick", Type: mop.Int},
			{Name: "at", Type: mop.Int}, // unix nanoseconds
			{Name: "value", Type: mop.Int},
			{Name: "p50", Type: mop.Int},
			{Name: "p95", Type: mop.Int},
			{Name: "p99", Type: mop.Int},
		}, nil)
	})
	st.Series = ensure("SysSeries", func() *mop.Type {
		return mop.MustNewClass("SysSeries", nil, []mop.Attr{
			{Name: "name", Type: mop.String},
			{Name: "kind", Type: mop.String},
			{Name: "samples", Type: mop.ListOf(st.Sample)},
		}, nil)
	})
	st.Family = ensure("SysFamily", func() *mop.Type {
		return mop.MustNewClass("SysFamily", nil, []mop.Attr{
			{Name: "family", Type: mop.String},
			{Name: "msgs", Type: mop.Int},
			{Name: "bytes", Type: mop.Int},
			{Name: "drops", Type: mop.Int},
			{Name: "err", Type: mop.Int}, // space-saving overestimate bound
		}, nil)
	})
	st.History = ensure("SysHistory", func() *mop.Type {
		return mop.MustNewClass("SysHistory", nil, []mop.Attr{
			{Name: "node", Type: mop.String},
			{Name: "at", Type: mop.Time},
			{Name: "interval_ns", Type: mop.Int},
			{Name: "ticks", Type: mop.Int},
			{Name: "series", Type: mop.ListOf(st.Series)},
			{Name: "alarms", Type: mop.ListOf(st.Alarm)},
			{Name: "alarm_total", Type: mop.Int},
			{Name: "families", Type: mop.ListOf(st.Family)},
		}, nil)
	})
	if firstErr != nil {
		return SysTypes{}, firstErr
	}
	return st, nil
}

// StatsObject renders a registry snapshot as a self-describing SysStats
// object, ready for wire.Marshal and publication on
// StatsSubjectPrefix.<node>.
func (st SysTypes) StatsObject(node string, at time.Time, uptime time.Duration, snap []Metric) *mop.Object {
	metrics := make(mop.List, 0, len(snap))
	for _, m := range snap {
		o := mop.MustNew(st.Metric).
			MustSet("name", m.Name).
			MustSet("kind", m.Kind.String()).
			MustSet("value", m.Value).
			MustSet("count", int64(m.Count)).
			MustSet("mean_ns", m.MeanNs).
			MustSet("p50_ns", m.P50Ns).
			MustSet("p95_ns", m.P95Ns).
			MustSet("p99_ns", m.P99Ns)
		metrics = append(metrics, o)
	}
	return mop.MustNew(st.Stats).
		MustSet("node", node).
		MustSet("at", at).
		MustSet("uptime_ns", int64(uptime)).
		MustSet("metrics", metrics)
}

// PongObject renders a ping answer.
func (st SysTypes) PongObject(node string, at time.Time, nonce int64) *mop.Object {
	return mop.MustNew(st.Pong).
		MustSet("node", node).
		MustSet("at", at).
		MustSet("nonce", nonce)
}

// AlarmObject renders one alarm edge as a self-describing SysAlarm
// object, ready for publication on AlarmSubject(ev.Node, ev.Kind).
func (st SysTypes) AlarmObject(ev AlarmEvent) *mop.Object {
	return mop.MustNew(st.Alarm).
		MustSet("node", ev.Node).
		MustSet("kind", ev.Kind).
		MustSet("target", ev.Target).
		MustSet("raised", ev.Raised).
		MustSet("value", ev.Value).
		MustSet("threshold", ev.Threshold).
		MustSet("at", ev.At)
}

// DumpObject renders a flight-recorder dump answer.
func (st SysTypes) DumpObject(node string, at time.Time, events int64, text string) *mop.Object {
	return mop.MustNew(st.Dump).
		MustSet("node", node).
		MustSet("at", at).
		MustSet("events", events).
		MustSet("text", text)
}

// TraceObject renders a trace sidecar: stage hops of an already-departed
// traced envelope (the quorum-ack stamp, typically), keyed by the trace id
// so monitors can merge them into the delivered trace. The uint64 id is
// bit-cast through mop's int64.
func (st SysTypes) TraceObject(node string, traceID uint64, hops []busproto.TraceHop) *mop.Object {
	list := make(mop.List, 0, len(hops))
	for _, h := range hops {
		list = append(list, mop.MustNew(st.TraceHop).
			MustSet("kind", busproto.HopKindName(h.Kind)).
			MustSet("node", h.Node).
			MustSet("at", h.At))
	}
	return mop.MustNew(st.Trace).
		MustSet("node", node).
		MustSet("trace_id", int64(traceID)).
		MustSet("hops", list)
}

// ParseTraceObject decodes a SysTrace sidecar back into busproto hops.
// Unknown kind names fold to HopNode (forward compatibility: a newer
// node's stage kinds still merge positionally).
func ParseTraceObject(o *mop.Object) (node string, traceID uint64, hops []busproto.TraceHop, ok bool) {
	if o == nil || o.Type().Name() != "SysTrace" {
		return "", 0, nil, false
	}
	node, _ = objString(o, "node")
	id, idOK := objInt(o, "trace_id")
	lv, err := o.Get("hops")
	if !idOK || err != nil {
		return "", 0, nil, false
	}
	list, _ := lv.(mop.List)
	hops = make([]busproto.TraceHop, 0, len(list))
	for _, hv := range list {
		ho, isObj := hv.(*mop.Object)
		if !isObj {
			continue
		}
		kind, _ := objString(ho, "kind")
		hnode, _ := objString(ho, "node")
		at, _ := objInt(ho, "at")
		hops = append(hops, busproto.TraceHop{Kind: hopKindByName(kind), Node: hnode, At: at})
	}
	return node, uint64(id), hops, true
}

// hopKindByName inverts busproto.HopKindName; unknown names become
// HopNode.
func hopKindByName(name string) byte {
	for k := byte(0); k <= busproto.HopRecoveryReplay; k++ {
		if busproto.HopKindName(k) == name {
			return k
		}
	}
	return busproto.HopNode
}

// HistoryObject renders a flight-data window — a HistorySnapshot plus the
// merged subject-family table — as a self-describing SysHistory object,
// ready for publication on HistoryNodeSubject(node).
func (st SysTypes) HistoryObject(node string, at time.Time, snap HistorySnapshot, families []TopKEntry) *mop.Object {
	series := make(mop.List, 0, len(snap.Series))
	for _, s := range snap.Series {
		samples := make(mop.List, 0, len(s.Samples))
		for _, smp := range s.Samples {
			samples = append(samples, mop.MustNew(st.Sample).
				MustSet("tick", smp.Tick).
				MustSet("at", smp.At).
				MustSet("value", smp.V).
				MustSet("p50", smp.P50).
				MustSet("p95", smp.P95).
				MustSet("p99", smp.P99))
		}
		series = append(series, mop.MustNew(st.Series).
			MustSet("name", s.Name).
			MustSet("kind", s.Kind.String()).
			MustSet("samples", samples))
	}
	alarms := make(mop.List, 0, len(snap.Alarms))
	for _, e := range snap.Alarms {
		alarms = append(alarms, mop.MustNew(st.Alarm).
			MustSet("node", node).
			MustSet("kind", e.Kind).
			MustSet("target", e.Target).
			MustSet("raised", e.Raised).
			MustSet("value", e.Value).
			MustSet("threshold", int64(0)).
			MustSet("at", time.Unix(0, e.At)))
	}
	fams := make(mop.List, 0, len(families))
	for _, f := range families {
		fams = append(fams, mop.MustNew(st.Family).
			MustSet("family", f.Family).
			MustSet("msgs", int64(f.Msgs)).
			MustSet("bytes", int64(f.Bytes)).
			MustSet("drops", int64(f.Drops)).
			MustSet("err", int64(f.Err)))
	}
	return mop.MustNew(st.History).
		MustSet("node", node).
		MustSet("at", at).
		MustSet("interval_ns", snap.IntervalNs).
		MustSet("ticks", int64(snap.Ticks)).
		MustSet("series", series).
		MustSet("alarms", alarms).
		MustSet("alarm_total", int64(snap.AlarmTotal)).
		MustSet("families", fams)
}

// HistoryDigest is the monitor-side decoding of a SysHistory object.
type HistoryDigest struct {
	Node       string
	At         time.Time
	Snapshot   HistorySnapshot
	Families   []TopKEntry
	AlarmNodes []string // per snapshot alarm, the publishing node (all equal)
}

// ParseHistoryObject decodes a SysHistory publication. Monitors use it to
// render rate/percentile columns without linking the sampler itself.
func ParseHistoryObject(o *mop.Object) (HistoryDigest, bool) {
	if o == nil || o.Type().Name() != "SysHistory" {
		return HistoryDigest{}, false
	}
	var d HistoryDigest
	d.Node, _ = objString(o, "node")
	if v, err := o.Get("at"); err == nil {
		d.At, _ = v.(time.Time)
	}
	d.Snapshot.IntervalNs, _ = objInt(o, "interval_ns")
	ticks, _ := objInt(o, "ticks")
	d.Snapshot.Ticks = uint64(ticks)
	alarmTotal, _ := objInt(o, "alarm_total")
	d.Snapshot.AlarmTotal = uint64(alarmTotal)
	if lv, err := o.Get("series"); err == nil {
		list, _ := lv.(mop.List)
		for _, sv := range list {
			so, isObj := sv.(*mop.Object)
			if !isObj {
				continue
			}
			ss := SeriesSnapshot{}
			ss.Name, _ = objString(so, "name")
			kind, _ := objString(so, "kind")
			switch kind {
			case "rate":
				ss.Kind = SeriesRate
			case "level":
				ss.Kind = SeriesLevel
			case "percentile":
				ss.Kind = SeriesPercentile
			}
			if sl, err := so.Get("samples"); err == nil {
				samples, _ := sl.(mop.List)
				for _, smv := range samples {
					smo, isObj := smv.(*mop.Object)
					if !isObj {
						continue
					}
					var smp Sample
					smp.Tick, _ = objInt(smo, "tick")
					smp.At, _ = objInt(smo, "at")
					smp.V, _ = objInt(smo, "value")
					smp.P50, _ = objInt(smo, "p50")
					smp.P95, _ = objInt(smo, "p95")
					smp.P99, _ = objInt(smo, "p99")
					ss.Samples = append(ss.Samples, smp)
				}
			}
			d.Snapshot.Series = append(d.Snapshot.Series, ss)
		}
	}
	if lv, err := o.Get("alarms"); err == nil {
		list, _ := lv.(mop.List)
		for _, av := range list {
			ao, isObj := av.(*mop.Object)
			if !isObj {
				continue
			}
			var e AlarmEdge
			e.Kind, _ = objString(ao, "kind")
			e.Target, _ = objString(ao, "target")
			if rv, err := ao.Get("raised"); err == nil {
				e.Raised, _ = rv.(bool)
			}
			e.Value, _ = objInt(ao, "value")
			if tv, err := ao.Get("at"); err == nil {
				if t, isTime := tv.(time.Time); isTime {
					e.At = t.UnixNano()
				}
			}
			node, _ := objString(ao, "node")
			d.AlarmNodes = append(d.AlarmNodes, node)
			d.Snapshot.Alarms = append(d.Snapshot.Alarms, e)
		}
	}
	if lv, err := o.Get("families"); err == nil {
		list, _ := lv.(mop.List)
		for _, fv := range list {
			fo, isObj := fv.(*mop.Object)
			if !isObj {
				continue
			}
			var e TopKEntry
			e.Family, _ = objString(fo, "family")
			msgs, _ := objInt(fo, "msgs")
			bytes, _ := objInt(fo, "bytes")
			drops, _ := objInt(fo, "drops")
			errv, _ := objInt(fo, "err")
			e.Msgs, e.Bytes, e.Drops, e.Err = uint64(msgs), uint64(bytes), uint64(drops), uint64(errv)
			d.Families = append(d.Families, e)
		}
	}
	return d, true
}

func objString(o *mop.Object, name string) (string, bool) {
	v, err := o.Get(name)
	if err != nil {
		return "", false
	}
	s, ok := v.(string)
	return s, ok
}

func objInt(o *mop.Object, name string) (int64, bool) {
	v, err := o.Get(name)
	if err != nil {
		return 0, false
	}
	n, ok := v.(int64)
	return n, ok
}
