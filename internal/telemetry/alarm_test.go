package telemetry

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// tickEngine drives an engine through deterministic ticks one second
// apart, collecting sink edges.
type tickEngine struct {
	*Engine
	now    time.Time
	events []AlarmEvent
}

func newTickEngine(t *testing.T) *tickEngine {
	t.Helper()
	te := &tickEngine{
		Engine: NewEngine("n1", NewRegistry(), NewRecorder(16)),
		now:    time.Unix(100, 0),
	}
	te.SetSink(func(ev AlarmEvent) { te.events = append(te.events, ev) })
	return te
}

func (te *tickEngine) tick() {
	te.now = te.now.Add(time.Second)
	te.Tick(te.now)
}

func TestAlarmHysteresis(t *testing.T) {
	te := newTickEngine(t)
	var level atomic.Int64
	te.Watch(WatchConfig{Kind: "slow-consumer", Target: "app1", Raise: 10}, level.Load)

	level.Store(9)
	te.tick()
	if len(te.events) != 0 {
		t.Fatalf("below Raise must not fire: %+v", te.events)
	}
	level.Store(10)
	te.tick()
	if len(te.events) != 1 || !te.events[0].Raised {
		t.Fatalf("at Raise must fire one raise edge: %+v", te.events)
	}
	ev := te.events[0]
	if ev.Node != "n1" || ev.Kind != "slow-consumer" || ev.Target != "app1" ||
		ev.Value != 10 || ev.Threshold != 10 {
		t.Fatalf("raise edge = %+v", ev)
	}
	level.Store(50)
	te.tick()
	if len(te.events) != 1 {
		t.Fatalf("raised alarm must not re-raise: %+v", te.events)
	}
	if got := te.Active(); len(got) != 1 || !got[0].Raised {
		t.Fatalf("Active while raised = %+v", got)
	}

	// Hover between Clear (default Raise/2 = 5) and Raise: no edge, and the
	// clear hold must reset.
	level.Store(7)
	te.tick()
	level.Store(5)
	te.tick() // below hold 1 of 2
	level.Store(7)
	te.tick() // hold resets
	level.Store(5)
	te.tick() // below hold 1
	if len(te.events) != 1 {
		t.Fatalf("clear fired before ClearHold: %+v", te.events)
	}
	level.Store(4)
	te.tick() // below hold 2 -> clear
	if len(te.events) != 2 || te.events[1].Raised {
		t.Fatalf("want one clear edge: %+v", te.events)
	}
	if te.events[1].Value != 4 || te.events[1].Threshold != 5 {
		t.Fatalf("clear edge = %+v", te.events[1])
	}
	if got := te.Active(); len(got) != 0 {
		t.Fatalf("Active after clear = %+v", got)
	}

	// Engine metrics and flight recorder saw both edges.
	recEvents := te.Recorder().Events()
	if len(recEvents) != 2 || recEvents[0].Kind != EventAlarmRaise || recEvents[1].Kind != EventAlarmClear {
		t.Fatalf("recorder = %+v", recEvents)
	}
	if recEvents[0].Target != "slow-consumer:app1" {
		t.Fatalf("recorded label = %q", recEvents[0].Target)
	}
}

func TestAlarmRaiseHold(t *testing.T) {
	te := newTickEngine(t)
	var level atomic.Int64
	te.Watch(WatchConfig{Kind: "k", Raise: 10, RaiseHold: 3}, level.Load)
	level.Store(10)
	te.tick()
	te.tick()
	if len(te.events) != 0 {
		t.Fatalf("fired before RaiseHold: %+v", te.events)
	}
	te.tick()
	if len(te.events) != 1 || !te.events[0].Raised {
		t.Fatalf("want raise on third consecutive tick: %+v", te.events)
	}
	// A dip below Raise resets the hold.
	level.Store(3)
	te.tick()
	te.tick() // clear (ClearHold default 2)
	level.Store(10)
	te.tick()
	te.tick()
	level.Store(9)
	te.tick()
	level.Store(10)
	te.tick()
	te.tick()
	if len(te.events) != 2 {
		t.Fatalf("hold must reset on dip: %+v", te.events)
	}
}

func TestAlarmRateWatch(t *testing.T) {
	te := newTickEngine(t)
	c := &Counter{}
	te.WatchRate(WatchConfig{Kind: "retransmit-storm", Raise: 500}, c)
	te.tick() // baseline sample, no rate yet
	c.Add(600)
	te.tick() // 600 events over 1s >= 500/s
	if len(te.events) != 1 || !te.events[0].Raised {
		t.Fatalf("want storm raise: %+v", te.events)
	}
	if te.events[0].Value < 550 || te.events[0].Value > 650 {
		t.Fatalf("rate value = %d, want ~600", te.events[0].Value)
	}
	// Counter stops moving: rate 0 for two ticks clears.
	te.tick()
	te.tick()
	if len(te.events) != 2 || te.events[1].Raised {
		t.Fatalf("want storm clear: %+v", te.events)
	}
}

func TestUnwatchEmitsClear(t *testing.T) {
	te := newTickEngine(t)
	var level atomic.Int64
	w := te.Watch(WatchConfig{Kind: "slow-consumer", Target: "gone", Raise: 1}, level.Load)
	level.Store(5)
	te.tick()
	if len(te.events) != 1 {
		t.Fatalf("setup raise: %+v", te.events)
	}
	te.Unwatch(w)
	if len(te.events) != 2 || te.events[1].Raised || te.events[1].Target != "gone" {
		t.Fatalf("Unwatch must emit a clear edge: %+v", te.events)
	}
	if got := te.Active(); len(got) != 0 {
		t.Fatalf("Active after Unwatch = %+v", got)
	}
	te.tick() // removed watch must not be sampled again
	if len(te.events) != 2 {
		t.Fatalf("removed watch fired: %+v", te.events)
	}
	te.Unwatch(w)   // double Unwatch is a no-op
	te.Unwatch(nil) // nil is a no-op
}

// TestTickSteadyStateAllocs pins the engine's background cost: a tick
// where no edge fires must not allocate (the engine runs inside every
// health-enabled host and must stay invisible to the alloc budget).
func TestTickSteadyStateAllocs(t *testing.T) {
	e := NewEngine("n1", NewRegistry(), NewRecorder(16))
	var level atomic.Int64
	e.Watch(WatchConfig{Kind: "slow-consumer", Raise: 1000}, level.Load)
	c := &Counter{}
	e.WatchRate(WatchConfig{Kind: "retransmit-storm", Raise: 500}, c)
	now := time.Unix(100, 0)
	e.Tick(now) // rate baseline
	allocs := testing.AllocsPerRun(100, func() {
		now = now.Add(time.Second)
		e.Tick(now)
	})
	if allocs != 0 {
		t.Fatalf("steady-state Tick allocates %.1f/op, want 0", allocs)
	}
}

func TestEngineDumpText(t *testing.T) {
	te := newTickEngine(t)
	var level atomic.Int64
	te.Watch(WatchConfig{Kind: "slow-consumer", Target: "app1", Raise: 10}, level.Load)
	text := te.DumpText()
	if !strings.Contains(text, "active alarms: none") {
		t.Fatalf("quiet dump = %q", text)
	}
	level.Store(11)
	te.tick()
	text = te.DumpText()
	if !strings.Contains(text, "slow-consumer:app1 value=11 threshold=10") {
		t.Fatalf("raised dump = %q", text)
	}
	if !strings.Contains(text, "flight recorder:") || !strings.Contains(text, "alarm-raise") {
		t.Fatalf("dump missing recorder section: %q", text)
	}
}

func TestEngineStartStop(t *testing.T) {
	e := NewEngine("n1", nil, nil)
	var level atomic.Int64
	var fired atomic.Int64
	e.SetSink(func(AlarmEvent) { fired.Add(1) })
	e.Watch(WatchConfig{Kind: "k", Raise: 1}, level.Load)
	level.Store(5)
	e.Start(time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for fired.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	e.Stop()
	e.Stop() // idempotent
	if fired.Load() != 1 {
		t.Fatalf("tick loop fired %d edges, want 1", fired.Load())
	}
}

func TestSanitizedNodeAndAlarmSubject(t *testing.T) {
	e := NewEngine("127.0.0.1:7001", nil, nil)
	if strings.ContainsAny(e.Node(), ".*>") {
		t.Fatalf("node not sanitised: %q", e.Node())
	}
	subj := AlarmSubject(e.Node(), "slow-consumer")
	if !strings.HasPrefix(subj, "_sys.alarm.") || !strings.HasSuffix(subj, ".slow-consumer") {
		t.Fatalf("alarm subject = %q", subj)
	}
}
