package telemetry

import (
	"sort"
	"sync"
)

// TopK is a bounded space-saving sketch of the heaviest subject families:
// when the table is full, a new family evicts the current minimum and
// inherits its count (the classic Metwally et al. overestimate, recorded
// per entry as Err so monitors can show accuracy). The daemon keeps one
// table per delivery lane — a lane's subjects all share its table, so
// Note contends only with the lane's own deliveries — and the history
// digest merges the per-lane tables.
//
// Note's steady state (family already tabled) is a map probe plus three
// adds under a short mutex: no allocation, no sorting. Eviction scans the
// K entries linearly; with K ≤ a few hundred that is cheaper and simpler
// than a heap it would have to re-sift on every count bump.
type TopK struct {
	mu    sync.Mutex
	k     int
	items map[string]*topKItem
}

type topKItem struct {
	family string
	msgs   uint64
	bytes  uint64
	drops  uint64
	err    uint64 // inherited overestimate at insertion
}

// TopKEntry is one family's accounting in a snapshot.
type TopKEntry struct {
	Family string
	Msgs   uint64 // delivery count (overestimate bounded by Err)
	Bytes  uint64
	Drops  uint64 // deliveries dropped (slow consumer)
	Err    uint64 // max overcount inherited from the evicted minimum
}

// NewTopK creates a table bounded to k families (minimum 1).
func NewTopK(k int) *TopK {
	if k < 1 {
		k = 1
	}
	return &TopK{k: k, items: make(map[string]*topKItem, k)}
}

// Note records one delivery of a message in family (bytes payload bytes;
// dropped when the consumer queue refused it). family may be a substring
// of a longer subject string; the table keys on its content.
func (t *TopK) Note(family string, bytes int, dropped bool) {
	t.mu.Lock()
	it := t.items[family]
	if it == nil {
		if len(t.items) < t.k {
			it = &topKItem{family: family}
			t.items[family] = it
		} else {
			// Space-saving eviction: the minimum-count entry makes room and
			// the newcomer inherits its count as the overestimate bound.
			var min *topKItem
			for _, cand := range t.items {
				if min == nil || cand.msgs < min.msgs {
					min = cand
				}
			}
			delete(t.items, min.family)
			it = min // recycle the struct: no allocation on churn
			it.family = family
			it.err = it.msgs
			it.bytes, it.drops = 0, 0
			t.items[family] = it
		}
	}
	it.msgs++
	it.bytes += uint64(bytes)
	if dropped {
		it.drops++
	}
	t.mu.Unlock()
}

// Snapshot returns the table's entries sorted by msgs descending.
func (t *TopK) Snapshot() []TopKEntry {
	t.mu.Lock()
	out := make([]TopKEntry, 0, len(t.items))
	for _, it := range t.items {
		out = append(out, TopKEntry{Family: it.family, Msgs: it.msgs,
			Bytes: it.bytes, Drops: it.drops, Err: it.err})
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Msgs != out[j].Msgs {
			return out[i].Msgs > out[j].Msgs
		}
		return out[i].Family < out[j].Family
	})
	return out
}

// MergeTopK combines per-lane snapshots (same family summed across lanes,
// Err kept as the max) and returns the heaviest k entries.
func MergeTopK(k int, tables ...[]TopKEntry) []TopKEntry {
	merged := make(map[string]TopKEntry)
	for _, tb := range tables {
		for _, e := range tb {
			m := merged[e.Family]
			m.Family = e.Family
			m.Msgs += e.Msgs
			m.Bytes += e.Bytes
			m.Drops += e.Drops
			if e.Err > m.Err {
				m.Err = e.Err
			}
			merged[e.Family] = m
		}
	}
	out := make([]TopKEntry, 0, len(merged))
	for _, e := range merged {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Msgs != out[j].Msgs {
			return out[i].Msgs > out[j].Msgs
		}
		return out[i].Family < out[j].Family
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}
