package telemetry

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// Flight recorder: a fixed-size ring of recent notable events (alarm
// edges, drops, retransmit bursts, peer restarts, sampled trace
// completions). The ring is preallocated and Record never allocates, so
// the instrumented paths — some of them failure paths that fire exactly
// when the process is under pressure — pay one short mutex hold and a few
// stores. The ring is dumped as text on demand (the "_sys.dump" probe,
// busd's debug console) so a post-mortem works after the interesting
// window has scrolled out of any log.

// EventKind classifies flight-recorder events.
type EventKind uint8

// Flight-recorder event kinds.
const (
	EventAlarmRaise EventKind = iota + 1 // an alarm raise edge; A=value B=threshold
	EventAlarmClear                      // an alarm clear edge; A=value B=threshold
	EventDrop                            // messages given up on (gap skip, corrupt frame); A=count
	EventRetransmit                      // a retransmission burst served; A=messages
	EventRestart                         // a peer came back with a new epoch
	EventRecover                         // ledger recovery at open; A=entries replayed
	EventTrace                           // a sampled traced delivery completed; A=end-to-end ns, B=hops
	EventDump                            // a _sys.dump probe was answered
	EventRepl                            // a replication-tier event (quorum timeout, recovery); A=context
	EventMesh                            // a mesh topology change (re-election, port flip); A=cumulative count
)

func (k EventKind) String() string {
	switch k {
	case EventAlarmRaise:
		return "alarm-raise"
	case EventAlarmClear:
		return "alarm-clear"
	case EventDrop:
		return "drop"
	case EventRetransmit:
		return "retransmit"
	case EventRestart:
		return "peer-restart"
	case EventRecover:
		return "recover"
	case EventTrace:
		return "trace"
	case EventDump:
		return "dump"
	case EventRepl:
		return "repl"
	case EventMesh:
		return "mesh"
	default:
		return "event"
	}
}

// Event is one recorded occurrence. Target must be a string that already
// exists at the call site (a peer address, a precomputed watch label):
// Record stores the header only, so passing a freshly concatenated string
// would defeat the no-allocation contract.
type Event struct {
	At     int64 // unix nanoseconds
	Kind   EventKind
	Target string
	A, B   int64 // kind-specific values (see the kind constants)
}

// Recorder is the per-process flight recorder. Safe for concurrent use.
type Recorder struct {
	mu    sync.Mutex
	ring  []Event
	total uint64 // events ever recorded; total-len(ring) have been overwritten
}

// NewRecorder creates a recorder holding the last size events (default
// 256 if size <= 0).
func NewRecorder(size int) *Recorder {
	if size <= 0 {
		size = 256
	}
	return &Recorder{ring: make([]Event, 0, size)}
}

// Record appends one event, overwriting the oldest once the ring is full.
// It never allocates.
func (r *Recorder) Record(kind EventKind, target string, a, b int64) {
	at := time.Now().UnixNano()
	r.mu.Lock()
	if len(r.ring) < cap(r.ring) {
		r.ring = r.ring[:len(r.ring)+1]
	}
	r.ring[r.total%uint64(cap(r.ring))] = Event{At: at, Kind: kind, Target: target, A: a, B: b}
	r.total++
	r.mu.Unlock()
}

// Total returns the number of events ever recorded (including ones the
// ring has since overwritten).
func (r *Recorder) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Events returns the retained events, oldest first.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := len(r.ring)
	out := make([]Event, 0, n)
	start := r.total - uint64(n)
	for i := 0; i < n; i++ {
		out = append(out, r.ring[(start+uint64(i))%uint64(cap(r.ring))])
	}
	return out
}

// Dump renders the retained events as text, oldest first, one line per
// event. The header states how many events have been lost to overwrite so
// a reader knows whether the window is complete.
func (r *Recorder) Dump() string {
	events := r.Events()
	total := r.Total()
	var b strings.Builder
	fmt.Fprintf(&b, "flight recorder: %d events retained, %d recorded\n",
		len(events), total)
	for _, ev := range events {
		at := time.Unix(0, ev.At).UTC().Format("15:04:05.000000")
		fmt.Fprintf(&b, "  %s %-11s %s", at, ev.Kind, ev.Target)
		switch ev.Kind {
		case EventAlarmRaise, EventAlarmClear:
			fmt.Fprintf(&b, " value=%d threshold=%d", ev.A, ev.B)
		case EventTrace:
			fmt.Fprintf(&b, " e2e=%s hops=%d", time.Duration(ev.A), ev.B)
		case EventDrop, EventRetransmit, EventRecover:
			fmt.Fprintf(&b, " n=%d", ev.A)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
