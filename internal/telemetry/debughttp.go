package telemetry

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
)

// DebugHandler serves the local debug surface busd exposes behind
// -debug-addr: the stdlib pprof profiles under /debug/pprof/, a JSON
// snapshot of the metrics registry at /metrics, and the flight-recorder
// text dump at /dump. There is no authentication — the listener must stay
// loopback-bound (the busd flag documentation says so); this handler is a
// diagnostics port, not an API.
//
// rec may be nil (health tier disabled); /dump then reports that.
func DebugHandler(reg *Registry, rec *Recorder) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		type jsonMetric struct {
			Name   string  `json:"name"`
			Kind   string  `json:"kind"`
			Value  int64   `json:"value,omitempty"`
			Count  uint64  `json:"count,omitempty"`
			MeanNs float64 `json:"mean_ns,omitempty"`
			P50Ns  float64 `json:"p50_ns,omitempty"`
			P95Ns  float64 `json:"p95_ns,omitempty"`
			P99Ns  float64 `json:"p99_ns,omitempty"`
		}
		snap := reg.Snapshot()
		out := make([]jsonMetric, 0, len(snap))
		for _, m := range snap {
			out = append(out, jsonMetric{
				Name: m.Name, Kind: m.Kind.String(), Value: m.Value,
				Count: m.Count, MeanNs: m.MeanNs,
				P50Ns: m.P50Ns, P95Ns: m.P95Ns, P99Ns: m.P99Ns,
			})
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(out)
	})
	mux.HandleFunc("/dump", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if rec == nil {
			_, _ = w.Write([]byte("flight recorder disabled (health tier off)\n"))
			return
		}
		_, _ = w.Write([]byte(rec.Dump()))
	})
	return mux
}
