package telemetry

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"strconv"
)

// DebugHandler serves the local debug surface busd exposes behind
// -debug-addr: the stdlib pprof profiles under /debug/pprof/, a JSON
// snapshot of the metrics registry at /metrics, the flight-recorder text
// dump at /dump, and the flight-data time-series window at /history.
// There is no authentication — the listener must stay loopback-bound (the
// busd flag documentation says so); this handler is a diagnostics port,
// not an API.
//
// rec may be nil (health tier disabled); /dump then reports that. hist
// may be nil (history tier disabled); /history then reports that.
func DebugHandler(reg *Registry, rec *Recorder, hist *History) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		type jsonMetric struct {
			Name   string  `json:"name"`
			Kind   string  `json:"kind"`
			Value  int64   `json:"value,omitempty"`
			Count  uint64  `json:"count,omitempty"`
			MeanNs float64 `json:"mean_ns,omitempty"`
			P50Ns  float64 `json:"p50_ns,omitempty"`
			P95Ns  float64 `json:"p95_ns,omitempty"`
			P99Ns  float64 `json:"p99_ns,omitempty"`
		}
		snap := reg.Snapshot()
		out := make([]jsonMetric, 0, len(snap))
		for _, m := range snap {
			out = append(out, jsonMetric{
				Name: m.Name, Kind: m.Kind.String(), Value: m.Value,
				Count: m.Count, MeanNs: m.MeanNs,
				P50Ns: m.P50Ns, P95Ns: m.P95Ns, P99Ns: m.P99Ns,
			})
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(out)
	})
	mux.HandleFunc("/dump", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if rec == nil {
			_, _ = w.Write([]byte("flight recorder disabled (health tier off)\n"))
			return
		}
		_, _ = w.Write([]byte(rec.Dump()))
	})
	mux.HandleFunc("/history", func(w http.ResponseWriter, r *http.Request) {
		if hist == nil {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			_, _ = w.Write([]byte("history tier disabled (start with -history <interval>)\n"))
			return
		}
		// ?samples=N limits each series to its most recent N ticks.
		maxSamples := 0
		if q := r.URL.Query().Get("samples"); q != "" {
			if n, err := strconv.Atoi(q); err == nil && n > 0 {
				maxSamples = n
			}
		}
		type jsonSample struct {
			Tick int64 `json:"tick"`
			At   int64 `json:"at"`
			V    int64 `json:"v"`
			P50  int64 `json:"p50,omitempty"`
			P95  int64 `json:"p95,omitempty"`
			P99  int64 `json:"p99,omitempty"`
		}
		type jsonSeries struct {
			Name    string       `json:"name"`
			Kind    string       `json:"kind"`
			Samples []jsonSample `json:"samples"`
		}
		type jsonAlarm struct {
			At     int64  `json:"at"`
			Kind   string `json:"kind"`
			Target string `json:"target,omitempty"`
			Raised bool   `json:"raised"`
			Value  int64  `json:"value"`
		}
		type jsonHistory struct {
			IntervalNs int64        `json:"interval_ns"`
			Ticks      uint64       `json:"ticks"`
			Series     []jsonSeries `json:"series"`
			Alarms     []jsonAlarm  `json:"alarms"`
			AlarmTotal uint64       `json:"alarm_total"`
		}
		snap := hist.Snapshot(maxSamples)
		out := jsonHistory{
			IntervalNs: snap.IntervalNs,
			Ticks:      snap.Ticks,
			Series:     make([]jsonSeries, 0, len(snap.Series)),
			Alarms:     make([]jsonAlarm, 0, len(snap.Alarms)),
			AlarmTotal: snap.AlarmTotal,
		}
		for _, s := range snap.Series {
			js := jsonSeries{Name: s.Name, Kind: s.Kind.String(),
				Samples: make([]jsonSample, 0, len(s.Samples))}
			for _, smp := range s.Samples {
				js.Samples = append(js.Samples, jsonSample{
					Tick: smp.Tick, At: smp.At, V: smp.V,
					P50: smp.P50, P95: smp.P95, P99: smp.P99,
				})
			}
			out.Series = append(out.Series, js)
		}
		for _, a := range snap.Alarms {
			out.Alarms = append(out.Alarms, jsonAlarm{
				At: a.At, Kind: a.Kind, Target: a.Target,
				Raised: a.Raised, Value: a.Value,
			})
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(out)
	})
	return mux
}
