package telemetry

import (
	"sync"
	"testing"
	"time"
)

func TestHistoryRateLevelPercentile(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("msgs")
	g := reg.Gauge("depth")
	hi := reg.Histogram("lat")
	h := NewHistory(HistoryConfig{Interval: 100 * time.Millisecond, Slots: 8})
	h.TrackRate("msgs", c)
	h.TrackLevel("depth", g)
	h.TrackHist("lat", hi)

	now := time.Unix(100, 0)
	c.Add(10)
	g.Set(3)
	hi.Observe(1000 * time.Nanosecond)
	hi.Observe(1000 * time.Nanosecond)
	h.Tick(now)
	c.Add(5)
	g.Set(-2)
	h.Tick(now.Add(100 * time.Millisecond))

	snap := h.Snapshot(0)
	if snap.Ticks != 2 || len(snap.Series) != 3 {
		t.Fatalf("snapshot: ticks=%d series=%d", snap.Ticks, len(snap.Series))
	}
	byName := map[string]SeriesSnapshot{}
	for _, s := range snap.Series {
		byName[s.Name] = s
	}
	rate := byName["msgs"]
	if rate.Kind != SeriesRate || len(rate.Samples) != 2 ||
		rate.Samples[0].V != 10 || rate.Samples[1].V != 5 {
		t.Fatalf("rate series: %+v", rate)
	}
	if got := snap.RatePerSec(rate.Samples[1].V); got != 50 {
		t.Fatalf("RatePerSec(5) at 100ms = %v, want 50", got)
	}
	level := byName["depth"]
	if level.Samples[0].V != 3 || level.Samples[1].V != -2 {
		t.Fatalf("level series: %+v", level)
	}
	lat := byName["lat"]
	if lat.Samples[0].V != 2 || lat.Samples[1].V != 0 {
		t.Fatalf("lat counts: %+v", lat)
	}
	// Two 1000ns observations land in bucket [512,1024); the interpolated
	// p50 must sit inside it. The second (empty) window reports zeros.
	if p := lat.Samples[0].P50; p < 512 || p > 1024 {
		t.Fatalf("windowed p50 = %d, want within [512,1024]", p)
	}
	if lat.Samples[1].P50 != 0 || lat.Samples[1].P99 != 0 {
		t.Fatalf("empty window percentiles: %+v", lat.Samples[1])
	}
	if rate.Samples[0].At != now.UnixNano() {
		t.Fatalf("tick timestamp: %d vs %d", rate.Samples[0].At, now.UnixNano())
	}
}

func TestHistoryWraparound(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("n")
	h := NewHistory(HistoryConfig{Interval: time.Millisecond, Slots: 4})
	h.TrackRate("n", c)
	now := time.Unix(0, 0)
	for i := 0; i < 10; i++ {
		c.Inc()
		h.Tick(now.Add(time.Duration(i) * time.Millisecond))
	}
	snap := h.Snapshot(0)
	s := snap.Series[0]
	// Only the last 4 ticks (7,8,9,10) survive, oldest first.
	if snap.Ticks != 10 || len(s.Samples) != 4 {
		t.Fatalf("wraparound: ticks=%d samples=%d", snap.Ticks, len(s.Samples))
	}
	for i, smp := range s.Samples {
		if want := int64(7 + i); smp.Tick != want {
			t.Fatalf("sample %d tick=%d want %d", i, smp.Tick, want)
		}
		if smp.V != 1 {
			t.Fatalf("sample %d delta=%d want 1", i, smp.V)
		}
	}
	// maxSamples clamps the window further.
	if got := h.Snapshot(2).Series[0].Samples; len(got) != 2 || got[0].Tick != 9 {
		t.Fatalf("maxSamples window: %+v", got)
	}
}

// TestHistoryConcurrentSnapshot races a fast sampler against readers; the
// seq-validated slots must never yield a torn sample (run under -race).
func TestHistoryConcurrentSnapshot(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("n")
	g := reg.Gauge("g")
	hi := reg.Histogram("h")
	h := NewHistory(HistoryConfig{Interval: time.Millisecond, Slots: 4})
	h.TrackRate("n", c)
	h.TrackLevel("g", g)
	h.TrackHist("h", hi)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // load generator
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			c.Inc()
			g.Set(int64(i))
			hi.Observe(time.Duration(i%1000) * time.Microsecond)
		}
	}()
	go func() { // sampler at full speed to force laps under the readers
		defer wg.Done()
		now := time.Unix(0, 0)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			h.Tick(now.Add(time.Duration(i) * time.Millisecond))
		}
	}()
	deadline := time.Now().Add(200 * time.Millisecond)
	for time.Now().Before(deadline) {
		snap := h.Snapshot(0)
		for _, s := range snap.Series {
			last := int64(0)
			for _, smp := range s.Samples {
				if smp.Tick <= last {
					t.Fatalf("series %s: non-monotonic ticks %d after %d", s.Name, smp.Tick, last)
				}
				last = smp.Tick
				if smp.V < 0 && s.Kind != SeriesLevel {
					t.Fatalf("series %s: negative windowed value %d", s.Name, smp.V)
				}
			}
		}
		h.NoteAlarm(AlarmEvent{Kind: "k", Target: "t", Raised: true, At: time.Now()})
	}
	close(stop)
	wg.Wait()
}

func TestHistoryAlarmRing(t *testing.T) {
	h := NewHistory(HistoryConfig{Interval: time.Millisecond, Slots: 4, AlarmSlots: 3})
	at := time.Unix(50, 0)
	for i := 0; i < 5; i++ {
		h.NoteAlarm(AlarmEvent{Kind: "slow-consumer", Target: "c", Raised: i%2 == 0,
			Value: int64(i), At: at.Add(time.Duration(i) * time.Second)})
	}
	snap := h.Snapshot(0)
	if snap.AlarmTotal != 5 || len(snap.Alarms) != 3 {
		t.Fatalf("alarm ring: total=%d len=%d", snap.AlarmTotal, len(snap.Alarms))
	}
	// Oldest-first and the ring kept the last three (values 2,3,4).
	for i, e := range snap.Alarms {
		if e.Value != int64(2+i) {
			t.Fatalf("alarm %d: %+v", i, e)
		}
	}
	if !snap.Alarms[0].Raised || snap.Alarms[1].Raised {
		t.Fatalf("alarm edges: %+v", snap.Alarms)
	}
}

func TestHistoryStartStop(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("n")
	h := NewHistory(HistoryConfig{Interval: 2 * time.Millisecond, Slots: 16})
	h.TrackRate("n", c)
	h.Start()
	h.Start() // idempotent
	deadline := time.Now().Add(2 * time.Second)
	for h.Snapshot(0).Ticks < 3 {
		if time.Now().After(deadline) {
			t.Fatal("sampler did not tick")
		}
		time.Sleep(time.Millisecond)
	}
	h.Stop()
	h.Stop() // idempotent
	ticks := h.Snapshot(0).Ticks
	time.Sleep(10 * time.Millisecond)
	if got := h.Snapshot(0).Ticks; got != ticks {
		t.Fatalf("sampler still ticking after Stop: %d -> %d", ticks, got)
	}
}

// BenchmarkHistoryTick measures one sampling pass over a realistic series
// population; the steady-state tick must not allocate.
func BenchmarkHistoryTick(b *testing.B) {
	reg := NewRegistry()
	h := NewHistory(HistoryConfig{})
	for i := 0; i < 8; i++ {
		name := "ctr" + string(rune('a'+i))
		h.TrackRate(name, reg.Counter(name))
	}
	for i := 0; i < 4; i++ {
		name := "g" + string(rune('a'+i))
		h.TrackLevel(name, reg.Gauge(name))
	}
	for i := 0; i < 4; i++ {
		name := "h" + string(rune('a'+i))
		h.TrackHist(name, reg.Histogram(name))
	}
	now := time.Unix(0, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Tick(now.Add(time.Duration(i) * time.Millisecond))
	}
}
