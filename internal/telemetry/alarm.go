package telemetry

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// Alarm engine: turns the registry's levels (gauges, counter rates) into
// *edges* a monitor can trust. Each Watch samples one signal on every
// engine tick and compares it against a raise threshold and a (lower)
// clear threshold; an alarm is raised only after the signal has held at or
// above Raise for RaiseHold consecutive ticks, and clears only after it
// has held at or below Clear for ClearHold consecutive ticks. The
// raise/clear asymmetry (hysteresis) is the point: a consumer hovering
// around the watermark produces one raise and one clear, not a square
// wave of alarm traffic on the medium.
//
// Sample functions run with the engine lock held and must therefore be
// lock-free — in practice they are atomic loads of the gauges the hot
// paths already maintain, so watching costs the watched code nothing.
// Edge callbacks (the sink) run after the lock is released and may
// publish on the bus.

// HealthConfig tunes the health tier a Host or router runs. The zero
// value disables it entirely (Interval == 0); any enabled field left zero
// gets the stated default.
type HealthConfig struct {
	// Interval is the alarm-engine sampling period. Zero disables the
	// health tier (no engine, no recorder, no _sys.alarm publications).
	Interval time.Duration
	// SlowConsumerDepth raises "slow-consumer" when a client's undelivered
	// queue depth reaches it. Default 1024 messages.
	SlowConsumerDepth int64
	// RetransmitStormRate raises "retransmit-storm" when the node's
	// retransmission rate reaches it (messages/second). Default 500.
	RetransmitStormRate int64
	// LedgerBacklog raises "ledger-backlog" when the guaranteed-delivery
	// ledger's pending count reaches it. Default 4096 entries.
	LedgerBacklog int64
	// RecorderSize is the flight-recorder ring capacity. Default 256.
	RecorderSize int
	// MeshFlapRate raises "mesh-flap" on a mesh-enabled router when its
	// interest re-advertisement rate reaches it (ads/second): a healthy
	// mesh is quiet in steady state, so sustained churn means a flapping
	// subscriber, link, or election fight occupying every segment on the
	// tree path. Default 50.
	MeshFlapRate int64
}

// Enabled reports whether the health tier is on.
func (c HealthConfig) Enabled() bool { return c.Interval > 0 }

// WithDefaults fills zero fields with the documented defaults. Interval
// is left alone: zero means disabled, and callers that enable the tier
// have already chosen a period.
func (c HealthConfig) WithDefaults() HealthConfig {
	if c.SlowConsumerDepth <= 0 {
		c.SlowConsumerDepth = 1024
	}
	if c.RetransmitStormRate <= 0 {
		c.RetransmitStormRate = 500
	}
	if c.LedgerBacklog <= 0 {
		c.LedgerBacklog = 4096
	}
	if c.RecorderSize <= 0 {
		c.RecorderSize = 256
	}
	if c.MeshFlapRate <= 0 {
		c.MeshFlapRate = 50
	}
	return c
}

// AlarmEvent is one raise or clear edge.
type AlarmEvent struct {
	Node      string // sanitised node name of the detecting process
	Kind      string // alarm kind: "slow-consumer", "retransmit-storm", ...
	Target    string // the specific entity (client name, peer address); may be ""
	Raised    bool   // true = raise edge, false = clear edge
	Value     int64  // the sampled value at the edge
	Threshold int64  // the threshold that was crossed (Raise or Clear)
	At        time.Time
}

// WatchConfig describes one watched signal.
type WatchConfig struct {
	// Kind names the alarm ("slow-consumer"); it must be a valid subject
	// element since it becomes the last element of "_sys.alarm.<node>.<kind>".
	Kind string
	// Target identifies the watched entity within the kind.
	Target string
	// Raise is the level at or above which the alarm raises. Required.
	Raise int64
	// Clear is the level at or below which a raised alarm clears.
	// Default Raise/2.
	Clear int64
	// RaiseHold is how many consecutive ticks the signal must hold at or
	// above Raise before the raise edge fires. Default 1 (raise on first
	// sight; depth watermarks are already integrated signals).
	RaiseHold int
	// ClearHold is how many consecutive ticks the signal must hold at or
	// below Clear before the clear edge fires. Default 2.
	ClearHold int
}

func (c WatchConfig) withDefaults() WatchConfig {
	if c.Clear <= 0 || c.Clear > c.Raise {
		c.Clear = c.Raise / 2
	}
	if c.RaiseHold <= 0 {
		c.RaiseHold = 1
	}
	if c.ClearHold <= 0 {
		c.ClearHold = 2
	}
	return c
}

// Watch is one registered signal. Its state belongs to the engine.
type Watch struct {
	cfg    WatchConfig
	label  string // "<kind>:<target>" precomputed so edge recording is alloc-free
	sample func() int64

	// Rate mode: sample() reads a cumulative counter and the engine
	// differentiates it against the previous tick.
	rate     bool
	havePrev bool
	prev     int64
	prevAt   time.Time

	raised bool
	above  int // consecutive ticks at/above Raise
	below  int // consecutive ticks at/below Clear
	value  int64

	// raiseValue and raiseAt freeze the raise edge so Active can report
	// the event that actually tripped the alarm. While an alarm is held
	// raised by hysteresis, the latest tick's sample can legitimately sit
	// below the threshold (a rate watch catching a quiet window); the
	// synthetic raise event must not inherit that transient.
	raiseValue int64
	raiseAt    time.Time
}

// Engine evaluates a set of Watches on a fixed tick. Tick may be driven
// by the embedded Start loop or called directly (tests).
type Engine struct {
	node string
	rec  *Recorder
	sink func(AlarmEvent)

	active *Gauge
	raises *Counter
	clears *Counter

	mu      sync.Mutex
	watches []*Watch

	stop chan struct{}
	wg   sync.WaitGroup
}

// NewEngine creates an engine for a node. reg and rec may be nil (no
// engine metrics / no flight recording).
func NewEngine(node string, reg *Registry, rec *Recorder) *Engine {
	e := &Engine{node: SanitizeNode(node), rec: rec}
	if reg != nil {
		e.active = reg.Gauge("health.alarms_active")
		e.raises = reg.Counter("health.alarms_raised")
		e.clears = reg.Counter("health.alarms_cleared")
	}
	return e
}

// Node returns the engine's sanitised node name.
func (e *Engine) Node() string { return e.node }

// Recorder returns the flight recorder wired at construction (may be nil).
func (e *Engine) Recorder() *Recorder { return e.rec }

// SetSink installs the edge callback. It is invoked outside the engine
// lock, from the tick goroutine, once per raise/clear edge. Set it before
// Start.
func (e *Engine) SetSink(f func(AlarmEvent)) { e.sink = f }

// Watch registers a level watch. sample must be lock-free (an atomic
// load): it runs with the engine lock held on every tick.
func (e *Engine) Watch(cfg WatchConfig, sample func() int64) *Watch {
	return e.register(cfg, sample, false)
}

// WatchRate registers a rate watch over a cumulative counter: the watched
// value is the counter's per-second increase between ticks. Thresholds
// are in events/second.
func (e *Engine) WatchRate(cfg WatchConfig, c *Counter) *Watch {
	return e.register(cfg, func() int64 { return int64(c.Load()) }, true)
}

// WatchRateFunc is WatchRate over an arbitrary cumulative sample — e.g.
// the sum of several counters feeding one alarm. Like every sample
// function it runs with the engine lock held and must be lock-free.
func (e *Engine) WatchRateFunc(cfg WatchConfig, sample func() int64) *Watch {
	return e.register(cfg, sample, true)
}

func (e *Engine) register(cfg WatchConfig, sample func() int64, rate bool) *Watch {
	cfg = cfg.withDefaults()
	w := &Watch{cfg: cfg, sample: sample, rate: rate, label: cfg.Kind}
	if cfg.Target != "" {
		w.label = cfg.Kind + ":" + cfg.Target
	}
	e.mu.Lock()
	e.watches = append(e.watches, w)
	e.mu.Unlock()
	return w
}

// Unwatch removes a watch. If the watch is currently raised, a clear edge
// is emitted so monitors are not left holding a stuck alarm (a slow
// consumer that disconnects has, from the bus's point of view, stopped
// being slow).
func (e *Engine) Unwatch(w *Watch) {
	if w == nil {
		return
	}
	var ev AlarmEvent
	fire := false
	e.mu.Lock()
	for i, got := range e.watches {
		if got == w {
			e.watches = append(e.watches[:i], e.watches[i+1:]...)
			if w.raised {
				w.raised = false
				fire = true
				ev = AlarmEvent{
					Node: e.node, Kind: w.cfg.Kind, Target: w.cfg.Target,
					Raised: false, Value: w.value, Threshold: w.cfg.Clear,
					At: time.Now(),
				}
			}
			break
		}
	}
	e.mu.Unlock()
	if fire {
		e.noteEdge(w, ev)
	}
}

// Tick samples every watch once and fires any resulting edges. now is
// passed in so tests can drive deterministic sequences.
func (e *Engine) Tick(now time.Time) {
	// Steady state (no edges) must not allocate: the engine runs at
	// 10+ Hz inside every host and must stay invisible to the alloc
	// benchmarks. Edge slices are only built when an edge actually fires.
	var fired []*Watch
	var events []AlarmEvent
	e.mu.Lock()
	for _, w := range e.watches {
		v := w.sample()
		if w.rate {
			cur := v
			if !w.havePrev {
				w.havePrev, w.prev, w.prevAt = true, cur, now
				continue
			}
			dt := now.Sub(w.prevAt).Seconds()
			if dt <= 0 {
				continue
			}
			v = int64(float64(cur-w.prev) / dt)
			w.prev, w.prevAt = cur, now
		}
		w.value = v
		switch {
		case v >= w.cfg.Raise:
			w.above++
			w.below = 0
		case v <= w.cfg.Clear:
			w.below++
			w.above = 0
		default:
			w.above, w.below = 0, 0
		}
		if !w.raised && w.above >= w.cfg.RaiseHold {
			w.raised = true
			w.raiseValue, w.raiseAt = v, now
			fired = append(fired, w)
			events = append(events, AlarmEvent{
				Node: e.node, Kind: w.cfg.Kind, Target: w.cfg.Target,
				Raised: true, Value: v, Threshold: w.cfg.Raise, At: now,
			})
		} else if w.raised && w.below >= w.cfg.ClearHold {
			w.raised = false
			fired = append(fired, w)
			events = append(events, AlarmEvent{
				Node: e.node, Kind: w.cfg.Kind, Target: w.cfg.Target,
				Raised: false, Value: v, Threshold: w.cfg.Clear, At: now,
			})
		}
	}
	e.mu.Unlock()
	for i, w := range fired {
		e.noteEdge(w, events[i])
	}
}

func (e *Engine) noteEdge(w *Watch, ev AlarmEvent) {
	if ev.Raised {
		if e.raises != nil {
			e.raises.Inc()
			e.active.Add(1)
		}
		if e.rec != nil {
			e.rec.Record(EventAlarmRaise, w.label, ev.Value, ev.Threshold)
		}
	} else {
		if e.clears != nil {
			e.clears.Inc()
			e.active.Add(-1)
		}
		if e.rec != nil {
			e.rec.Record(EventAlarmClear, w.label, ev.Value, ev.Threshold)
		}
	}
	if e.sink != nil {
		e.sink(ev)
	}
}

// Active returns the currently raised alarms as (synthetic) raise events,
// sorted by registration order.
func (e *Engine) Active() []AlarmEvent {
	e.mu.Lock()
	defer e.mu.Unlock()
	var out []AlarmEvent
	for _, w := range e.watches {
		if w.raised {
			out = append(out, AlarmEvent{
				Node: e.node, Kind: w.cfg.Kind, Target: w.cfg.Target,
				Raised: true, Value: w.raiseValue, Threshold: w.cfg.Raise,
				At: w.raiseAt,
			})
		}
	}
	return out
}

// DumpText renders the engine's active alarms followed by the flight
// recorder's ring — the text a "_sys.dump" probe is answered with.
func (e *Engine) DumpText() string {
	var b strings.Builder
	active := e.Active()
	if len(active) == 0 {
		b.WriteString("active alarms: none\n")
	} else {
		b.WriteString("active alarms:\n")
		for _, ev := range active {
			b.WriteString("  ")
			b.WriteString(ev.Kind)
			if ev.Target != "" {
				b.WriteByte(':')
				b.WriteString(ev.Target)
			}
			fmt.Fprintf(&b, " value=%d threshold=%d\n", ev.Value, ev.Threshold)
		}
	}
	if e.rec != nil {
		b.WriteString(e.rec.Dump())
	}
	return b.String()
}

// Start runs the tick loop at the given interval until Stop.
func (e *Engine) Start(interval time.Duration) {
	if interval <= 0 || e.stop != nil {
		return
	}
	e.stop = make(chan struct{})
	e.wg.Add(1)
	go func() {
		defer e.wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case now := <-t.C:
				e.Tick(now)
			case <-e.stop:
				return
			}
		}
	}()
}

// Stop halts the tick loop started by Start.
func (e *Engine) Stop() {
	if e.stop == nil {
		return
	}
	close(e.stop)
	e.wg.Wait()
	e.stop = nil
}
