// Package telemetry is the bus's self-observation substrate: a lock-cheap
// metrics registry (atomic counters, gauges, and bounded latency
// histograms) adopted by the delivery-semantics layers in place of their
// formerly scattered ad-hoc counters, plus the builders that turn a
// registry snapshot into a self-describing mop object for publication on
// the reserved "_sys.>" subjects.
//
// The design follows the paper's own principles applied to the bus itself:
// the bus can describe *itself* over itself. Runtime meta-data (counters,
// latency quantiles) is exposed through the system's regular object model
// (P2), so any anonymous subscriber — a monitor that has never linked
// against this package — can decode and render it (P4).
//
// Hot-path cost: one atomic add per counter event, two atomic adds per
// histogram observation. Registration (name lookup) is amortised away by
// holding *Counter/*Gauge/*Histogram handles; components resolve their
// instruments once at construction time.
package telemetry

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Kind discriminates metric kinds in snapshots.
type Kind uint8

// Metric kinds.
const (
	KindCounter Kind = iota + 1
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return "unknown"
	}
}

// Counter is a monotonically increasing event count. The zero value is
// unusable; obtain counters from a Registry.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current count.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is an instantaneous signed level (queue depth, pending entries).
type Gauge struct {
	v atomic.Int64
}

// Set stores the level.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the level by delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Load returns the current level.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Registry is a named set of metrics. Instruments are get-or-create by
// name: two components asking for the same name share the instrument (the
// host-level aggregate), which is what the "_sys.stats.<host>" export
// publishes. Safe for concurrent use; instrument operations never take the
// registry lock.
type Registry struct {
	mu    sync.Mutex
	order []string // registration order, for stable snapshots
	items map[string]any
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{items: make(map[string]any)}
}

// Counter returns the named counter, creating it on first use. A name
// already registered as a different kind panics: metric names are a
// process-wide contract and a kind clash is a programming error.
func (r *Registry) Counter(name string) *Counter {
	return lookup(r, name, func() *Counter { return &Counter{} })
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	return lookup(r, name, func() *Gauge { return &Gauge{} })
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	return lookup(r, name, func() *Histogram { return &Histogram{} })
}

func lookup[T any](r *Registry, name string, mk func() T) T {
	r.mu.Lock()
	defer r.mu.Unlock()
	if got, ok := r.items[name]; ok {
		t, ok := got.(T)
		if !ok {
			panic("telemetry: metric " + name + " re-registered with a different kind")
		}
		return t
	}
	t := mk()
	r.items[name] = t
	r.order = append(r.order, name)
	return t
}

// Metric is one metric's value in a snapshot.
type Metric struct {
	Name  string
	Kind  Kind
	Value int64 // counter count (as int64) or gauge level
	// Histogram summary; zero for counters and gauges.
	Count               uint64
	MeanNs              float64
	P50Ns, P95Ns, P99Ns float64
}

// String renders one metric as a console line.
func (m Metric) String() string {
	if m.Kind == KindHistogram {
		return fmt.Sprintf("%s (%s): count=%d mean=%.0fns p50=%.0fns p95=%.0fns p99=%.0fns",
			m.Name, m.Kind, m.Count, m.MeanNs, m.P50Ns, m.P95Ns, m.P99Ns)
	}
	return fmt.Sprintf("%s (%s): %d", m.Name, m.Kind, m.Value)
}

// Snapshot returns every metric's current value, sorted by name.
//
// Consistency: counters and gauges are read with single atomic loads in
// one pass. Because counters are monotone, the snapshot is a consistent
// cut bounded by the registry's state at the start and end of the call —
// related counters can differ only by events that were in flight during
// the read, never by reordering. (Histograms snapshot count/sum/buckets
// per instrument with the same property.)
func (r *Registry) Snapshot() []Metric {
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	items := make([]any, len(names))
	for i, n := range names {
		items[i] = r.items[n]
	}
	r.mu.Unlock()
	out := make([]Metric, 0, len(names))
	for i, name := range names {
		switch m := items[i].(type) {
		case *Counter:
			out = append(out, Metric{Name: name, Kind: KindCounter, Value: int64(m.Load())})
		case *Gauge:
			out = append(out, Metric{Name: name, Kind: KindGauge, Value: m.Load()})
		case *Histogram:
			s := m.Summary()
			out = append(out, Metric{
				Name: name, Kind: KindHistogram,
				Count: s.Count, MeanNs: s.MeanNs,
				P50Ns: s.P50Ns, P95Ns: s.P95Ns, P99Ns: s.P99Ns,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Len returns the number of registered metrics.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.items)
}
