package telemetry

import (
	"sync"
	"sync/atomic"
	"time"
)

// The flight-data tier: fixed-window time-series history over the live
// registry instruments. A single sampler goroutine ticks every Interval
// and snapshots each tracked counter/gauge/histogram into a per-series
// ring of Slots samples (the defaults, 250 ms × 256 slots, keep ≈64 s of
// history per series). Rings are single-writer and read lock-free: every
// slot carries the tick sequence that wrote it, so readers detect and
// skip slots the sampler is concurrently recycling instead of locking it
// out. The steady-state tick performs no allocation — all ring and
// scratch storage is laid out at Track time — so an idle bus with history
// enabled stays within the PR 3 idle-overhead budget.
//
// Alarm raise/clear edges (satellite of the same PR) are noted into a
// separate bounded ring, timestamped on the same clock as the samples, so
// a monitor reading "_sys.history" sees the edge aligned with the metric
// window that tripped it.

// Series kinds.
type SeriesKind uint8

const (
	// SeriesRate samples a counter: each slot's V is the count delta over
	// that tick window (rate = V / Interval).
	SeriesRate SeriesKind = iota + 1
	// SeriesLevel samples a gauge: each slot's V is the level at tick time.
	SeriesLevel
	// SeriesPercentile samples a histogram: each slot holds the windowed
	// observation count (V) and interpolated P50/P95/P99 of observations
	// that arrived during that tick window (bucket-snapshot diffing).
	SeriesPercentile
)

func (k SeriesKind) String() string {
	switch k {
	case SeriesRate:
		return "rate"
	case SeriesLevel:
		return "level"
	case SeriesPercentile:
		return "percentile"
	default:
		return "unknown"
	}
}

// HistoryConfig sizes the flight-data tier.
type HistoryConfig struct {
	// Interval is the sampling tick. Default 250 ms.
	Interval time.Duration
	// Slots is the ring length per series. Default 256 (≈64 s at 250 ms).
	Slots int
	// AlarmSlots bounds the alarm-edge ring. Default 64.
	AlarmSlots int
}

// WithDefaults fills zero fields.
func (c HistoryConfig) WithDefaults() HistoryConfig {
	if c.Interval <= 0 {
		c.Interval = 250 * time.Millisecond
	}
	if c.Slots <= 0 {
		c.Slots = 256
	}
	if c.AlarmSlots <= 0 {
		c.AlarmSlots = 64
	}
	return c
}

// histSlot is one ring sample. seq is the 1-based tick that wrote it;
// readers reload seq after reading the values and discard the slot when it
// moved (the sampler lapped them mid-read).
type histSlot struct {
	seq        atomic.Uint64
	v          atomic.Int64
	p50        atomic.Int64
	p95        atomic.Int64
	p99        atomic.Int64
	settledSeq atomic.Uint64 // seq re-stamped after the values: both match ⇒ consistent
}

// series is one tracked instrument's ring. Only the sampler writes ring
// slots and the prev* scratch.
type series struct {
	name string
	kind SeriesKind
	ctr  *Counter
	ctrF func() int64 // SeriesRate alternative source (aggregates)
	gag  *Gauge
	gagF func() int64 // SeriesLevel alternative source
	hist *Histogram

	ring []histSlot
	// Sampler scratch: previous cumulative state for windowed deltas.
	prevCount uint64
	prevBkt   [histBuckets]uint64
}

// AlarmEdge is one alarm raise/clear event as kept by the history ring.
type AlarmEdge struct {
	At     int64 // unix nanoseconds
	Kind   string
	Target string
	Raised bool
	Value  int64
}

// History is the flight-data recorder: call Track* once per signal at
// wiring time, then Start (or drive Tick directly in tests).
type History struct {
	cfg HistoryConfig

	mu     sync.Mutex // guards series registration and the alarm ring
	series []*series

	ticks  atomic.Uint64 // completed ticks; slot index = (tick-1) % Slots
	tickAt []atomic.Int64

	alarms     []AlarmEdge
	alarmNext  int
	alarmTotal uint64

	stop chan struct{}
	done chan struct{}
}

// NewHistory creates an idle history tier (no sampler running).
func NewHistory(cfg HistoryConfig) *History {
	cfg = cfg.WithDefaults()
	return &History{
		cfg:    cfg,
		tickAt: make([]atomic.Int64, cfg.Slots),
		alarms: make([]AlarmEdge, 0, cfg.AlarmSlots),
	}
}

// Interval returns the sampling tick.
func (h *History) Interval() time.Duration { return h.cfg.Interval }

// Slots returns the ring length.
func (h *History) Slots() int { return h.cfg.Slots }

// TrackRate samples c's per-tick delta into a SeriesRate ring.
func (h *History) TrackRate(name string, c *Counter) {
	h.add(&series{name: name, kind: SeriesRate, ctr: c})
}

// TrackRateFunc samples a cumulative count supplied by f (an aggregate
// over several counters). f must be safe to call from the sampler
// goroutine and should not allocate.
func (h *History) TrackRateFunc(name string, f func() int64) {
	h.add(&series{name: name, kind: SeriesRate, ctrF: f})
}

// TrackLevel samples g's level into a SeriesLevel ring.
func (h *History) TrackLevel(name string, g *Gauge) {
	h.add(&series{name: name, kind: SeriesLevel, gag: g})
}

// TrackLevelFunc samples a level supplied by f.
func (h *History) TrackLevelFunc(name string, f func() int64) {
	h.add(&series{name: name, kind: SeriesLevel, gagF: f})
}

// TrackHist samples hist's windowed count and P50/P95/P99 into a
// SeriesPercentile ring.
func (h *History) TrackHist(name string, hist *Histogram) {
	h.add(&series{name: name, kind: SeriesPercentile, hist: hist})
}

func (h *History) add(s *series) {
	s.ring = make([]histSlot, h.cfg.Slots)
	h.mu.Lock()
	h.series = append(h.series, s)
	h.mu.Unlock()
}

// NoteAlarm records an alarm edge into the bounded edge ring. Safe from
// any goroutine; allocation-free (the strings are the engine's own).
func (h *History) NoteAlarm(ev AlarmEvent) {
	h.mu.Lock()
	e := AlarmEdge{At: ev.At.UnixNano(), Kind: ev.Kind, Target: ev.Target,
		Raised: ev.Raised, Value: ev.Value}
	if len(h.alarms) < cap(h.alarms) {
		h.alarms = append(h.alarms, e)
	} else {
		h.alarms[h.alarmNext] = e
		h.alarmNext = (h.alarmNext + 1) % cap(h.alarms)
	}
	h.alarmTotal++
	h.mu.Unlock()
}

// Tick performs one sampling pass at the given time. Normally driven by
// the Start goroutine; exposed so tests and external tickers can step the
// clock deterministically. Not safe for concurrent Tick calls (single
// writer), but safe against concurrent readers and Track/NoteAlarm.
func (h *History) Tick(now time.Time) {
	tick := h.ticks.Load() + 1
	slot := int((tick - 1) % uint64(h.cfg.Slots))
	h.tickAt[slot].Store(now.UnixNano())
	h.mu.Lock()
	ss := h.series
	h.mu.Unlock()
	for _, s := range ss {
		sl := &s.ring[slot]
		sl.seq.Store(tick)
		switch s.kind {
		case SeriesRate:
			var cur uint64
			if s.ctr != nil {
				cur = s.ctr.Load()
			} else {
				cur = uint64(s.ctrF())
			}
			sl.v.Store(int64(cur - s.prevCount))
			s.prevCount = cur
		case SeriesLevel:
			if s.gag != nil {
				sl.v.Store(s.gag.Load())
			} else {
				sl.v.Store(s.gagF())
			}
		case SeriesPercentile:
			var win [histBuckets]uint64
			var total uint64
			for i := range s.hist.bkt {
				c := s.hist.bkt[i].Load()
				win[i] = c - s.prevBkt[i]
				s.prevBkt[i] = c
				total += win[i]
			}
			sl.v.Store(int64(total))
			if total == 0 {
				sl.p50.Store(0)
				sl.p95.Store(0)
				sl.p99.Store(0)
			} else {
				sl.p50.Store(int64(quantile(&win, total, 0.50)))
				sl.p95.Store(int64(quantile(&win, total, 0.95)))
				sl.p99.Store(int64(quantile(&win, total, 0.99)))
			}
		}
		sl.settledSeq.Store(tick)
	}
	h.ticks.Store(tick)
}

// Start launches the sampler goroutine. Stop tears it down.
func (h *History) Start() {
	h.mu.Lock()
	if h.stop != nil {
		h.mu.Unlock()
		return
	}
	h.stop = make(chan struct{})
	h.done = make(chan struct{})
	stop, done := h.stop, h.done
	h.mu.Unlock()
	go func() {
		defer close(done)
		t := time.NewTicker(h.cfg.Interval)
		defer t.Stop()
		for {
			select {
			case now := <-t.C:
				h.Tick(now)
			case <-stop:
				return
			}
		}
	}()
}

// Stop halts the sampler. Idempotent.
func (h *History) Stop() {
	h.mu.Lock()
	stop, done := h.stop, h.done
	h.stop, h.done = nil, nil
	h.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

// Sample is one tick's values for a series; field meaning depends on the
// series kind (see SeriesKind).
type Sample struct {
	Tick int64 // tick sequence, 1-based
	At   int64 // unix nanoseconds of the tick
	V    int64
	P50  int64
	P95  int64
	P99  int64
}

// SeriesSnapshot is one series' readable window.
type SeriesSnapshot struct {
	Name    string
	Kind    SeriesKind
	Samples []Sample // oldest first
}

// HistorySnapshot is a consistent-enough view of the whole tier: each
// sample is individually consistent (seq-validated), the window is the
// last ≤Slots ticks at the time of the call.
type HistorySnapshot struct {
	IntervalNs int64
	Ticks      uint64
	Series     []SeriesSnapshot
	Alarms     []AlarmEdge // oldest first
	AlarmTotal uint64      // lifetime edge count (ring may have dropped some)
}

// Snapshot copies the readable window of every series plus the alarm-edge
// ring. maxSamples>0 limits each series to its most recent maxSamples
// ticks (0 = full window).
func (h *History) Snapshot(maxSamples int) HistorySnapshot {
	h.mu.Lock()
	ss := make([]*series, len(h.series))
	copy(ss, h.series)
	alarms := append([]AlarmEdge(nil), h.alarms[h.alarmNext:]...)
	alarms = append(alarms, h.alarms[:h.alarmNext]...)
	alarmTotal := h.alarmTotal
	h.mu.Unlock()

	out := HistorySnapshot{
		IntervalNs: int64(h.cfg.Interval),
		Ticks:      h.ticks.Load(),
		Alarms:     alarms,
		AlarmTotal: alarmTotal,
	}
	n := int(out.Ticks)
	if n > h.cfg.Slots {
		n = h.cfg.Slots
	}
	if maxSamples > 0 && n > maxSamples {
		n = maxSamples
	}
	first := out.Ticks - uint64(n) + 1 // oldest tick still expected live
	out.Series = make([]SeriesSnapshot, 0, len(ss))
	for _, s := range ss {
		snap := SeriesSnapshot{Name: s.name, Kind: s.kind, Samples: make([]Sample, 0, n)}
		for tick := first; tick <= out.Ticks; tick++ {
			slot := &s.ring[(tick-1)%uint64(h.cfg.Slots)]
			// Seqlock read: settledSeq==tick means tick's write finished;
			// re-checking seq==tick afterwards means no later lap began
			// before the value loads, so the sample is untorn.
			if slot.settledSeq.Load() != tick {
				continue // series registered after this tick, or mid-write
			}
			smp := Sample{
				Tick: int64(tick),
				At:   h.tickAt[(tick-1)%uint64(h.cfg.Slots)].Load(),
				V:    slot.v.Load(),
				P50:  slot.p50.Load(),
				P95:  slot.p95.Load(),
				P99:  slot.p99.Load(),
			}
			if slot.seq.Load() != tick {
				continue // sampler lapped this slot while we read it
			}
			snap.Samples = append(snap.Samples, smp)
		}
		out.Series = append(out.Series, snap)
	}
	return out
}

// ratePerSec converts a per-tick delta to an events/second rate.
func (s HistorySnapshot) RatePerSec(v int64) float64 {
	if s.IntervalNs <= 0 {
		return 0
	}
	return float64(v) * float64(time.Second) / float64(s.IntervalNs)
}
