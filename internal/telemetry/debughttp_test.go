package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestDebugHandlerMetrics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("daemon.inbound").Add(42)
	reg.Gauge("ledger.pending").Set(-1)
	reg.Histogram("daemon.lat").Observe(time.Millisecond)
	srv := httptest.NewServer(DebugHandler(reg, nil, nil))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type = %q", ct)
	}
	var metrics []struct {
		Name  string `json:"name"`
		Kind  string `json:"kind"`
		Value int64  `json:"value"`
		Count uint64 `json:"count"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&metrics); err != nil {
		t.Fatal(err)
	}
	byName := make(map[string]int)
	for i, m := range metrics {
		byName[m.Name] = i
	}
	if i, ok := byName["daemon.inbound"]; !ok || metrics[i].Kind != "counter" || metrics[i].Value != 42 {
		t.Fatalf("daemon.inbound = %+v", metrics)
	}
	if i, ok := byName["ledger.pending"]; !ok || metrics[i].Value != -1 {
		t.Fatalf("ledger.pending = %+v", metrics)
	}
	if i, ok := byName["daemon.lat"]; !ok || metrics[i].Kind != "histogram" || metrics[i].Count != 1 {
		t.Fatalf("daemon.lat = %+v", metrics)
	}
}

func TestDebugHandlerDump(t *testing.T) {
	reg := NewRegistry()
	rec := NewRecorder(8)
	rec.Record(EventRestart, "h2", 5, 4)
	srv := httptest.NewServer(DebugHandler(reg, rec, nil))
	defer srv.Close()

	body := get(t, srv.URL+"/dump")
	if !strings.Contains(body, "flight recorder: 1 events retained") ||
		!strings.Contains(body, "peer-restart") {
		t.Fatalf("dump = %q", body)
	}

	// nil recorder (health tier off) reports that rather than 404ing.
	off := httptest.NewServer(DebugHandler(reg, nil, nil))
	defer off.Close()
	if body := get(t, off.URL+"/dump"); !strings.Contains(body, "disabled") {
		t.Fatalf("disabled dump = %q", body)
	}
}

func TestDebugHandlerHistory(t *testing.T) {
	reg := NewRegistry()
	hist := NewHistory(HistoryConfig{Interval: time.Hour})
	ctr := reg.Counter("daemon.inbound")
	hist.TrackRate("daemon.inbound", ctr)
	hist.TrackLevelFunc("daemon.lane_depth", func() int64 { return 7 })
	base := time.Unix(1000, 0)
	for i := 1; i <= 5; i++ {
		ctr.Add(10)
		hist.Tick(base.Add(time.Duration(i) * time.Hour))
	}
	hist.NoteAlarm(AlarmEvent{
		Kind: "slow-consumer", Target: "lagging", Raised: true, Value: 99,
		At: base.Add(5 * time.Hour),
	})
	srv := httptest.NewServer(DebugHandler(reg, nil, hist))
	defer srv.Close()

	var out struct {
		IntervalNs int64 `json:"interval_ns"`
		Ticks      int64 `json:"ticks"`
		Series     []struct {
			Name    string `json:"name"`
			Kind    string `json:"kind"`
			Samples []struct {
				Tick int64 `json:"tick"`
				V    int64 `json:"v"`
			} `json:"samples"`
		} `json:"series"`
		Alarms []struct {
			Kind   string `json:"kind"`
			Target string `json:"target"`
			Raised bool   `json:"raised"`
			Value  int64  `json:"value"`
		} `json:"alarms"`
		AlarmTotal uint64 `json:"alarm_total"`
	}
	if err := json.Unmarshal([]byte(get(t, srv.URL+"/history")), &out); err != nil {
		t.Fatal(err)
	}
	if out.IntervalNs != time.Hour.Nanoseconds() || out.Ticks != 5 {
		t.Fatalf("interval_ns=%d ticks=%d", out.IntervalNs, out.Ticks)
	}
	byName := map[string]int{}
	for i, s := range out.Series {
		byName[s.Name] = i
	}
	rate := out.Series[byName["daemon.inbound"]]
	if rate.Kind != "rate" || len(rate.Samples) != 5 {
		t.Fatalf("daemon.inbound series = %+v", rate)
	}
	for _, smp := range rate.Samples {
		if smp.V != 10 {
			t.Fatalf("rate sample = %+v, want per-tick delta 10", smp)
		}
	}
	level := out.Series[byName["daemon.lane_depth"]]
	if level.Kind != "level" || len(level.Samples) != 5 || level.Samples[4].V != 7 {
		t.Fatalf("daemon.lane_depth series = %+v", level)
	}
	if out.AlarmTotal != 1 || len(out.Alarms) != 1 ||
		out.Alarms[0].Kind != "slow-consumer" || !out.Alarms[0].Raised ||
		out.Alarms[0].Value != 99 || out.Alarms[0].Target != "lagging" {
		t.Fatalf("alarms = %+v (total %d)", out.Alarms, out.AlarmTotal)
	}

	// ?samples=N trims each series to its most recent N ticks.
	if err := json.Unmarshal([]byte(get(t, srv.URL+"/history?samples=2")), &out); err != nil {
		t.Fatal(err)
	}
	for _, s := range out.Series {
		if len(s.Samples) != 2 {
			t.Fatalf("trimmed series %s has %d samples, want 2", s.Name, len(s.Samples))
		}
		if s.Samples[1].Tick != 5 {
			t.Fatalf("trimmed series %s ends at tick %d, want 5", s.Name, s.Samples[1].Tick)
		}
	}

	// nil history (tier off) reports that rather than 404ing.
	off := httptest.NewServer(DebugHandler(reg, nil, nil))
	defer off.Close()
	if body := get(t, off.URL+"/history"); !strings.Contains(body, "disabled") {
		t.Fatalf("disabled history = %q", body)
	}
}

func TestDebugHandlerPprof(t *testing.T) {
	srv := httptest.NewServer(DebugHandler(NewRegistry(), nil, nil))
	defer srv.Close()
	body := get(t, srv.URL+"/debug/pprof/")
	if !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof index = %q", body)
	}
}

func get(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
