package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestDebugHandlerMetrics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("daemon.inbound").Add(42)
	reg.Gauge("ledger.pending").Set(-1)
	reg.Histogram("daemon.lat").Observe(time.Millisecond)
	srv := httptest.NewServer(DebugHandler(reg, nil))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type = %q", ct)
	}
	var metrics []struct {
		Name  string `json:"name"`
		Kind  string `json:"kind"`
		Value int64  `json:"value"`
		Count uint64 `json:"count"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&metrics); err != nil {
		t.Fatal(err)
	}
	byName := make(map[string]int)
	for i, m := range metrics {
		byName[m.Name] = i
	}
	if i, ok := byName["daemon.inbound"]; !ok || metrics[i].Kind != "counter" || metrics[i].Value != 42 {
		t.Fatalf("daemon.inbound = %+v", metrics)
	}
	if i, ok := byName["ledger.pending"]; !ok || metrics[i].Value != -1 {
		t.Fatalf("ledger.pending = %+v", metrics)
	}
	if i, ok := byName["daemon.lat"]; !ok || metrics[i].Kind != "histogram" || metrics[i].Count != 1 {
		t.Fatalf("daemon.lat = %+v", metrics)
	}
}

func TestDebugHandlerDump(t *testing.T) {
	reg := NewRegistry()
	rec := NewRecorder(8)
	rec.Record(EventRestart, "h2", 5, 4)
	srv := httptest.NewServer(DebugHandler(reg, rec))
	defer srv.Close()

	body := get(t, srv.URL+"/dump")
	if !strings.Contains(body, "flight recorder: 1 events retained") ||
		!strings.Contains(body, "peer-restart") {
		t.Fatalf("dump = %q", body)
	}

	// nil recorder (health tier off) reports that rather than 404ing.
	off := httptest.NewServer(DebugHandler(reg, nil))
	defer off.Close()
	if body := get(t, off.URL+"/dump"); !strings.Contains(body, "disabled") {
		t.Fatalf("disabled dump = %q", body)
	}
}

func TestDebugHandlerPprof(t *testing.T) {
	srv := httptest.NewServer(DebugHandler(NewRegistry(), nil))
	defer srv.Close()
	body := get(t, srv.URL+"/debug/pprof/")
	if !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof index = %q", body)
	}
}

func get(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
