package telemetry

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is the fixed bucket count: bucket i holds observations whose
// nanosecond value has bit-length i, i.e. the range [2^(i-1), 2^i). 64
// buckets cover every possible int64 duration, so the histogram's memory
// is bounded (one cache line's worth of counters per few buckets) no
// matter how many observations arrive.
const histBuckets = 64

// Histogram is a bounded, lock-free latency histogram with power-of-two
// buckets. Observation costs two atomic adds; quantiles are estimated by
// log-linear interpolation inside the winning bucket, which is within
// ~±35% of the true value — ample for the p50/p95/p99 monitoring the
// "_sys.stats" export serves. The zero value is unusable; obtain
// histograms from a Registry.
type Histogram struct {
	count atomic.Uint64
	sum   atomic.Int64 // nanoseconds; monotone for non-negative observations
	bkt   [histBuckets]atomic.Uint64
}

// Observe records one non-negative duration. Negative durations (clock
// steps) are clamped to zero rather than corrupting the distribution.
func (h *Histogram) Observe(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	h.bkt[bits.Len64(uint64(ns))%histBuckets].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// HistogramSummary is a point-in-time digest of a histogram.
type HistogramSummary struct {
	Count  uint64
	MeanNs float64
	P50Ns  float64
	P95Ns  float64
	P99Ns  float64
}

// Summary digests the histogram: count, mean, and estimated quantiles.
func (h *Histogram) Summary() HistogramSummary {
	var counts [histBuckets]uint64
	var total uint64
	for i := range h.bkt {
		counts[i] = h.bkt[i].Load()
		total += counts[i]
	}
	s := HistogramSummary{Count: total}
	if total == 0 {
		return s
	}
	// Mean from the exact sum (sum/count race only with in-flight
	// observations; both are monotone so the mean stays in range).
	s.MeanNs = float64(h.sum.Load()) / float64(total)
	s.P50Ns = quantile(&counts, total, 0.50)
	s.P95Ns = quantile(&counts, total, 0.95)
	s.P99Ns = quantile(&counts, total, 0.99)
	return s
}

// quantile estimates the q-quantile from bucket counts: find the bucket
// holding the q*total-th observation and interpolate linearly between its
// bounds by the observation's rank within the bucket.
func quantile(counts *[histBuckets]uint64, total uint64, q float64) float64 {
	rank := q * float64(total)
	var cum float64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next >= rank {
			lo, hi := bucketBounds(i)
			frac := (rank - cum) / float64(c)
			return lo + frac*(hi-lo)
		}
		cum = next
	}
	_, hi := bucketBounds(histBuckets - 1)
	return hi
}

// bucketBounds returns bucket i's value range [lo, hi) in nanoseconds.
// Bucket 0 holds the exact value 0; bucket i>0 holds [2^(i-1), 2^i).
func bucketBounds(i int) (lo, hi float64) {
	if i == 0 {
		return 0, 0
	}
	return float64(uint64(1) << (i - 1)), float64(uint64(1) << i)
}
