package telemetry

import (
	"fmt"
	"math/rand"
	"testing"
)

func TestTopKBasic(t *testing.T) {
	tk := NewTopK(2)
	tk.Note("a.x", 10, false)
	tk.Note("a.x", 10, true)
	tk.Note("b.y", 5, false)
	snap := tk.Snapshot()
	if len(snap) != 2 || snap[0].Family != "a.x" || snap[0].Msgs != 2 ||
		snap[0].Bytes != 20 || snap[0].Drops != 1 || snap[0].Err != 0 {
		t.Fatalf("snapshot: %+v", snap)
	}
	// Third family evicts the minimum (b.y) and inherits its count.
	tk.Note("c.z", 1, false)
	snap = tk.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("table grew past k: %+v", snap)
	}
	var cz *TopKEntry
	for i := range snap {
		if snap[i].Family == "c.z" {
			cz = &snap[i]
		}
		if snap[i].Family == "b.y" {
			t.Fatalf("minimum not evicted: %+v", snap)
		}
	}
	if cz == nil || cz.Msgs != 2 || cz.Err != 1 {
		t.Fatalf("space-saving inheritance: %+v", snap)
	}
}

// TestTopKZipfAccuracy drives a K=64 table with Zipf-distributed families
// and checks the true heavy hitters all survive with small relative error.
func TestTopKZipfAccuracy(t *testing.T) {
	const k = 64
	tk := NewTopK(k)
	rng := rand.New(rand.NewSource(7))
	zipf := rand.NewZipf(rng, 1.2, 1, 4096)
	truth := make(map[string]uint64)
	for i := 0; i < 200000; i++ {
		fam := fmt.Sprintf("fam%d.sub", zipf.Uint64())
		truth[fam]++
		tk.Note(fam, 64, false)
	}
	snap := tk.Snapshot()
	if len(snap) != k {
		t.Fatalf("table size %d, want %d", len(snap), k)
	}
	tabled := make(map[string]TopKEntry, len(snap))
	for _, e := range snap {
		tabled[e.Family] = e
	}
	// The true top-16 families must all be present with ≤10% overcount
	// (space-saving never undercounts).
	type fc struct {
		fam string
		n   uint64
	}
	var ranked []fc
	for f, n := range truth {
		ranked = append(ranked, fc{f, n})
	}
	for i := 0; i < len(ranked); i++ {
		for j := i + 1; j < len(ranked); j++ {
			if ranked[j].n > ranked[i].n {
				ranked[i], ranked[j] = ranked[j], ranked[i]
			}
		}
	}
	for _, want := range ranked[:16] {
		got, ok := tabled[want.fam]
		if !ok {
			t.Fatalf("heavy hitter %s (%d msgs) missing from table", want.fam, want.n)
		}
		if got.Msgs < want.n {
			t.Fatalf("%s undercounted: %d < %d", want.fam, got.Msgs, want.n)
		}
		if got.Msgs-got.Err > want.n {
			t.Fatalf("%s overcount exceeds Err bound: %d-%d > %d",
				want.fam, got.Msgs, got.Err, want.n)
		}
		if float64(got.Msgs-want.n) > 0.10*float64(want.n)+float64(got.Err) {
			t.Fatalf("%s overcount too large: got %d want %d err %d",
				want.fam, got.Msgs, want.n, got.Err)
		}
	}
}

func TestMergeTopK(t *testing.T) {
	a := []TopKEntry{{Family: "x", Msgs: 5, Bytes: 50, Err: 1}, {Family: "y", Msgs: 2}}
	b := []TopKEntry{{Family: "x", Msgs: 3, Bytes: 30, Drops: 1, Err: 2}, {Family: "z", Msgs: 9}}
	got := MergeTopK(2, a, b)
	if len(got) != 2 || got[0].Family != "z" || got[1].Family != "x" {
		t.Fatalf("merge: %+v", got)
	}
	if got[1].Msgs != 8 || got[1].Bytes != 80 || got[1].Drops != 1 || got[1].Err != 2 {
		t.Fatalf("merged x: %+v", got[1])
	}
	if all := MergeTopK(0, a, b); len(all) != 3 {
		t.Fatalf("k=0 keeps all: %+v", all)
	}
}
