package reliable

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"infobus/internal/netsim"
	"infobus/internal/transport"
)

// rig is a test harness: one simulated segment plus n reliable conns.
type rig struct {
	seg   *transport.SimSegment
	conns []*Conn
}

func newRig(t *testing.T, n int, netCfg netsim.Config, connCfg Config) *rig {
	t.Helper()
	seg := transport.NewSimSegment(netCfg)
	r := &rig{seg: seg}
	for i := 0; i < n; i++ {
		ep, err := seg.NewEndpoint(fmt.Sprintf("host%d", i))
		if err != nil {
			t.Fatal(err)
		}
		r.conns = append(r.conns, New(ep, connCfg))
	}
	t.Cleanup(func() {
		for _, c := range r.conns {
			_ = c.Close()
		}
		_ = seg.Close()
	})
	return r
}

func fastNet() netsim.Config {
	cfg := netsim.DefaultConfig()
	cfg.Speedup = 5000
	return cfg
}

// fastProto shrinks protocol timers so lossy tests converge quickly.
func fastProto() Config {
	return Config{
		NakInterval:        2 * time.Millisecond,
		GapTimeout:         300 * time.Millisecond,
		RetransmitInterval: 3 * time.Millisecond,
		HeartbeatInterval:  5 * time.Millisecond,
	}
}

func collect(t *testing.T, c *Conn, n int, within time.Duration) []Message {
	t.Helper()
	var out []Message
	deadline := time.After(within)
	for len(out) < n {
		select {
		case m, ok := <-c.Recv():
			if !ok {
				t.Fatalf("recv closed after %d of %d messages", len(out), n)
			}
			out = append(out, m)
		case <-deadline:
			t.Fatalf("timed out with %d of %d messages", len(out), n)
		}
	}
	return out
}

func TestPublishDeliversInOrder(t *testing.T) {
	r := newRig(t, 3, fastNet(), fastProto())
	pub, sub1, sub2 := r.conns[0], r.conns[1], r.conns[2]
	const n = 50
	for i := 0; i < n; i++ {
		if err := pub.Publish([]byte(fmt.Sprintf("m%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for _, sub := range []*Conn{sub1, sub2} {
		msgs := collect(t, sub, n, 5*time.Second)
		for i, m := range msgs {
			if want := fmt.Sprintf("m%03d", i); string(m.Payload) != want {
				t.Fatalf("message %d = %q, want %q", i, m.Payload, want)
			}
			if m.From != pub.Addr() {
				t.Fatalf("message from %q, want %q", m.From, pub.Addr())
			}
		}
	}
}

func TestLossRecoveryViaNak(t *testing.T) {
	netCfg := fastNet()
	netCfg.LossProb = 0.25
	netCfg.Seed = 99
	r := newRig(t, 2, netCfg, fastProto())
	pub, sub := r.conns[0], r.conns[1]
	const n = 200
	for i := 0; i < n; i++ {
		if err := pub.Publish([]byte(fmt.Sprintf("m%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	msgs := collect(t, sub, n, 20*time.Second)
	for i, m := range msgs {
		if want := fmt.Sprintf("m%04d", i); string(m.Payload) != want {
			t.Fatalf("message %d = %q, want %q (order broken under loss)", i, m.Payload, want)
		}
	}
	st := sub.Stats()
	if st.NaksSent == 0 {
		t.Error("expected NAKs under 25% loss")
	}
	if st.Skipped != 0 {
		t.Errorf("no message should be skipped, got %d", st.Skipped)
	}
	if ps := pub.Stats(); ps.Retransmits == 0 {
		t.Error("publisher should have retransmitted")
	}
}

func TestDuplicateSuppression(t *testing.T) {
	netCfg := fastNet()
	netCfg.DupProb = 0.5
	r := newRig(t, 2, netCfg, fastProto())
	pub, sub := r.conns[0], r.conns[1]
	const n = 100
	for i := 0; i < n; i++ {
		if err := pub.Publish([]byte(fmt.Sprintf("%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	msgs := collect(t, sub, n, 10*time.Second)
	seen := map[string]bool{}
	for _, m := range msgs {
		if seen[string(m.Payload)] {
			t.Fatalf("duplicate delivered: %q", m.Payload)
		}
		seen[string(m.Payload)] = true
	}
	// No extra deliveries arrive afterwards.
	select {
	case m := <-sub.Recv():
		t.Fatalf("extra delivery: %q", m.Payload)
	case <-time.After(50 * time.Millisecond):
	}
	if sub.Stats().Duplicates == 0 {
		t.Error("expected suppressed duplicates in stats")
	}
}

func TestReorderingRepaired(t *testing.T) {
	netCfg := fastNet()
	netCfg.ReorderProb = 0.3
	r := newRig(t, 2, netCfg, fastProto())
	pub, sub := r.conns[0], r.conns[1]
	const n = 150
	for i := 0; i < n; i++ {
		if err := pub.Publish([]byte(fmt.Sprintf("%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	msgs := collect(t, sub, n, 10*time.Second)
	for i, m := range msgs {
		if want := fmt.Sprintf("%04d", i); string(m.Payload) != want {
			t.Fatalf("message %d = %q, want %q", i, m.Payload, want)
		}
	}
}

func TestGapSkipAfterTimeout(t *testing.T) {
	// A message whose every copy is lost and that has left the publisher's
	// window is eventually skipped: at-most-once, but progress resumes.
	netCfg := fastNet()
	r := newRig(t, 2, netCfg, Config{
		Window:             4, // tiny window: lost messages leave it quickly
		NakInterval:        2 * time.Millisecond,
		GapTimeout:         50 * time.Millisecond,
		RetransmitInterval: 3 * time.Millisecond,
	})
	pub, sub := r.conns[0], r.conns[1]

	// Deliver one message normally to establish the stream.
	if err := pub.Publish([]byte("first")); err != nil {
		t.Fatal(err)
	}
	first := collect(t, sub, 1, 5*time.Second)
	if string(first[0].Payload) != "first" {
		t.Fatalf("first = %q", first[0].Payload)
	}
	// Lose everything while we publish a burst that overflows the window.
	r.seg.Network().Partition(simID(t, sub.Addr()))
	for i := 0; i < 10; i++ {
		if err := pub.Publish([]byte(fmt.Sprintf("lost%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(20 * time.Millisecond)
	r.seg.Network().Heal()
	if err := pub.Publish([]byte("after")); err != nil {
		t.Fatal(err)
	}
	// The receiver must eventually deliver "after" despite the permanent
	// hole (skipping the lost messages).
	deadline := time.After(10 * time.Second)
	for {
		select {
		case m := <-sub.Recv():
			if string(m.Payload) == "after" {
				if sub.Stats().Skipped == 0 {
					t.Error("expected skipped messages in stats")
				}
				return
			}
		case <-deadline:
			t.Fatalf("'after' never delivered; stats=%+v", sub.Stats())
		}
	}
}

func TestSenderRestartEpochReset(t *testing.T) {
	seg := transport.NewSimSegment(fastNet())
	defer seg.Close()
	subEp, _ := seg.NewEndpoint("sub")
	sub := New(subEp, fastProto())
	defer sub.Close()

	pubEp1, _ := seg.NewEndpoint("pub")
	pub1 := New(pubEp1, fastProto())
	if err := pub1.Publish([]byte("before-crash")); err != nil {
		t.Fatal(err)
	}
	msgs := collect(t, sub, 1, 5*time.Second)
	if string(msgs[0].Payload) != "before-crash" {
		t.Fatalf("got %q", msgs[0].Payload)
	}
	_ = pub1.Close() // crash

	// Restarted publisher: new endpoint, new epoch, sequence numbers reset.
	pubEp2, _ := seg.NewEndpoint("pub")
	pub2 := New(pubEp2, fastProto())
	defer pub2.Close()
	if err := pub2.Publish([]byte("after-restart")); err != nil {
		t.Fatal(err)
	}
	msgs = collect(t, sub, 1, 5*time.Second)
	if string(msgs[0].Payload) != "after-restart" {
		t.Fatalf("got %q", msgs[0].Payload)
	}
}

func TestBatchingGathersMessages(t *testing.T) {
	cfg := fastProto()
	cfg.Batching = true
	cfg.BatchDelay = 5 * time.Millisecond
	r := newRig(t, 2, fastNet(), cfg)
	pub, sub := r.conns[0], r.conns[1]
	const n = 20
	for i := 0; i < n; i++ {
		if err := pub.Publish([]byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	collect(t, sub, n, 5*time.Second)
	st := pub.Stats()
	netStats := r.seg.Network().Stats()
	if st.BatchesFlushed == 0 {
		t.Error("no batches flushed")
	}
	// 20 tiny messages must ride in far fewer datagrams.
	if netStats.Sent >= n {
		t.Errorf("batching sent %d datagrams for %d messages", netStats.Sent, n)
	}
}

func TestBatchFlushOnSizeAndExplicit(t *testing.T) {
	cfg := fastProto()
	cfg.Batching = true
	cfg.BatchDelay = time.Hour // only size or explicit flush can trigger
	cfg.BatchMaxBytes = 100
	r := newRig(t, 2, fastNet(), cfg)
	pub, sub := r.conns[0], r.conns[1]
	// Size-based flush.
	for i := 0; i < 3; i++ {
		if err := pub.Publish(make([]byte, 40)); err != nil {
			t.Fatal(err)
		}
	}
	collect(t, sub, 3, 5*time.Second)
	// Explicit flush.
	if err := pub.Publish([]byte("tail")); err != nil {
		t.Fatal(err)
	}
	if err := pub.Flush(); err != nil {
		t.Fatal(err)
	}
	msgs := collect(t, sub, 1, 5*time.Second)
	if string(msgs[0].Payload) != "tail" {
		t.Errorf("flushed message = %q", msgs[0].Payload)
	}
}

func TestUnicastReliable(t *testing.T) {
	netCfg := fastNet()
	netCfg.LossProb = 0.3
	netCfg.Seed = 5
	r := newRig(t, 2, netCfg, fastProto())
	a, b := r.conns[0], r.conns[1]
	const n = 50
	for i := 0; i < n; i++ {
		if err := a.SendTo(b.Addr(), []byte(fmt.Sprintf("u%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	msgs := collect(t, b, n, 20*time.Second)
	for i, m := range msgs {
		if want := fmt.Sprintf("u%03d", i); string(m.Payload) != want {
			t.Fatalf("unicast %d = %q, want %q", i, m.Payload, want)
		}
	}
	// Eventually every message is acked and the unacked set drains.
	deadline := time.After(5 * time.Second)
	for {
		a.mu.Lock()
		pendingCount := len(a.uSend[b.Addr()].unacked)
		a.mu.Unlock()
		if pendingCount == 0 {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("unacked never drained: %d left", pendingCount)
		case <-time.After(5 * time.Millisecond):
		}
	}
}

func TestUnicastBackpressure(t *testing.T) {
	cfg := fastProto()
	cfg.Window = 4
	// Receiver is partitioned so nothing is ever acked.
	r := newRig(t, 2, fastNet(), cfg)
	a, b := r.conns[0], r.conns[1]
	r.seg.Network().Partition(simID(t, b.Addr()))
	var lastErr error
	for i := 0; i < 10; i++ {
		lastErr = a.SendTo(b.Addr(), []byte("x"))
	}
	if !errors.Is(lastErr, ErrBackpressure) {
		t.Errorf("error = %v, want ErrBackpressure", lastErr)
	}
}

func TestClosedConnErrors(t *testing.T) {
	r := newRig(t, 2, fastNet(), fastProto())
	c := r.conns[0]
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
	if err := c.Publish([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Errorf("Publish after close = %v", err)
	}
	if err := c.SendTo(r.conns[1].Addr(), []byte("x")); !errors.Is(err, ErrClosed) {
		t.Errorf("SendTo after close = %v", err)
	}
	if _, ok := <-c.Recv(); ok {
		t.Error("Recv channel should be closed")
	}
}

func TestInterleavedSendersIndependentFIFO(t *testing.T) {
	r := newRig(t, 3, fastNet(), fastProto())
	p1, p2, sub := r.conns[0], r.conns[1], r.conns[2]
	const n = 30
	for i := 0; i < n; i++ {
		if err := p1.Publish([]byte(fmt.Sprintf("a%03d", i))); err != nil {
			t.Fatal(err)
		}
		if err := p2.Publish([]byte(fmt.Sprintf("b%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	msgs := collect(t, sub, 2*n, 10*time.Second)
	var aSeq, bSeq int
	for _, m := range msgs {
		switch m.From {
		case p1.Addr():
			if want := fmt.Sprintf("a%03d", aSeq); string(m.Payload) != want {
				t.Fatalf("p1 stream: got %q want %q", m.Payload, want)
			}
			aSeq++
		case p2.Addr():
			if want := fmt.Sprintf("b%03d", bSeq); string(m.Payload) != want {
				t.Fatalf("p2 stream: got %q want %q", m.Payload, want)
			}
			bSeq++
		default:
			t.Fatalf("unknown sender %q", m.From)
		}
	}
	if aSeq != n || bSeq != n {
		t.Fatalf("per-sender counts: a=%d b=%d", aSeq, bSeq)
	}
}

func TestFrameDecodeRobustness(t *testing.T) {
	good := encodeData(dataFrame{typ: frameData, epoch: 7, msgs: []msg{{seq: 1, payload: []byte("x")}}})
	for i := 0; i < len(good); i++ {
		if _, err := decodeFrame(good[:i]); err == nil {
			t.Errorf("truncated frame of %d bytes decoded", i)
		}
	}
	if _, err := decodeFrame([]byte{99, 1, 2}); !errors.Is(err, ErrFrameType) {
		t.Errorf("unknown type error = %v", err)
	}
	if _, err := decodeFrame(append(good, 0xEE)); !errors.Is(err, ErrFrameCorrupt) {
		t.Errorf("trailing bytes error = %v", err)
	}
	// NAK round trip.
	f, err := decodeFrame(encodeNak(nakFrame{epoch: 3, from: 10, to: 12}))
	if err != nil || f.nak == nil || f.nak.from != 10 || f.nak.to != 12 || f.nak.epoch != 3 {
		t.Errorf("nak round trip = %+v, %v", f.nak, err)
	}
	// ACK round trip.
	f, err = decodeFrame(encodeAck(ackFrame{epoch: 9, cum: 42}))
	if err != nil || f.ack == nil || f.ack.cum != 42 || f.ack.epoch != 9 {
		t.Errorf("ack round trip = %+v, %v", f.ack, err)
	}
	// Heartbeat round trip.
	f, err = decodeFrame(encodeHeart(heartFrame{epoch: 4, maxSeq: 77}))
	if err != nil || f.heart == nil || f.heart.maxSeq != 77 || f.heart.epoch != 4 {
		t.Errorf("heartbeat round trip = %+v, %v", f.heart, err)
	}
}

func simID(t *testing.T, addr string) netsim.NodeID {
	t.Helper()
	var id int
	if _, err := fmt.Sscanf(addr, "sim:%d", &id); err != nil {
		t.Fatalf("bad sim addr %q", addr)
	}
	return netsim.NodeID(id)
}

// TestEpochSeeding covers the per-Conn epoch source: reproducible for a
// fixed seed, distinct for distinct seeds, and never zero (zero would
// collide with "no epoch" in frames).
func TestEpochSeeding(t *testing.T) {
	if newEpoch(42) != newEpoch(42) {
		t.Error("same seed produced different epochs")
	}
	if newEpoch(1) == newEpoch(2) {
		t.Error("distinct seeds collided")
	}
	for _, seed := range []uint64{0, 1, 42, ^uint64(0)} {
		if e := newEpoch(seed); e == 0 {
			t.Errorf("newEpoch(%d) = 0", seed)
		}
	}
	// Auto-seeded (Seed == 0) epochs must differ across rapid successive
	// Conns — the salt counter disambiguates within one clock tick.
	if newEpoch(0) == newEpoch(0) {
		t.Error("auto-seeded epochs collided")
	}
}

// TestConfigSeedPlumbed checks that Config.Seed reaches the connection
// epoch, so tests can pin protocol runs.
func TestConfigSeedPlumbed(t *testing.T) {
	seg := transport.NewSimSegment(fastNet())
	t.Cleanup(func() { _ = seg.Close() })
	ep1, err := seg.NewEndpoint("s1")
	if err != nil {
		t.Fatal(err)
	}
	ep2, err := seg.NewEndpoint("s2")
	if err != nil {
		t.Fatal(err)
	}
	c1 := New(ep1, Config{Seed: 7})
	defer c1.Close()
	c2 := New(ep2, Config{Seed: 7})
	defer c2.Close()
	if c1.epoch != c2.epoch {
		t.Error("equal seeds must give equal epochs")
	}
	if c1.epoch != newEpoch(7) {
		t.Error("Config.Seed not plumbed through to newEpoch")
	}
}
