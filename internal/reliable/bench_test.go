package reliable

import (
	"fmt"
	"testing"

	"infobus/internal/netsim"
	"infobus/internal/transport"
)

// BenchmarkPublishDeliver measures the full reliable pipeline — publish,
// simulated wire, sequencing, delivery — per message, at several payload
// sizes, on an effectively instantaneous network (Speedup 1e6) so the
// protocol stack's own cost dominates.
func BenchmarkPublishDeliver(b *testing.B) {
	for _, size := range []int{64, 1024, 8192} {
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			cfg := netsim.DefaultConfig()
			cfg.Speedup = 1e6
			seg := transport.NewSimSegment(cfg)
			defer seg.Close()
			pubEp, err := seg.NewEndpoint("pub")
			if err != nil {
				b.Fatal(err)
			}
			subEp, err := seg.NewEndpoint("sub")
			if err != nil {
				b.Fatal(err)
			}
			pub := New(pubEp, Config{})
			defer pub.Close()
			sub := New(subEp, Config{})
			defer sub.Close()
			payload := make([]byte, size)
			// Warm up: the first message pays the one-time stream
			// synchronisation grace period.
			if err := pub.Publish(payload); err != nil {
				b.Fatal(err)
			}
			<-sub.Recv()
			b.SetBytes(int64(size))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := pub.Publish(payload); err != nil {
					b.Fatal(err)
				}
				if _, ok := <-sub.Recv(); !ok {
					b.Fatal("recv closed")
				}
			}
		})
	}
}

func BenchmarkFrameEncodeDecode(b *testing.B) {
	msgs := make([]msg, 16)
	for i := range msgs {
		msgs[i] = msg{seq: uint64(i + 1), payload: make([]byte, 128)}
	}
	f := dataFrame{typ: frameData, epoch: 7, msgs: msgs}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		enc := encodeData(f)
		if _, err := decodeFrame(enc); err != nil {
			b.Fatal(err)
		}
	}
}
