// Package reliable implements the Information Bus reliable delivery
// protocol over unreliable datagrams (§3.1): "UDP packets in combination
// with a retransmission protocol".
//
// Semantics, matching the paper:
//
//   - Under normal operation (no crash, no long partition) messages are
//     delivered exactly once, in the order sent by the same sender;
//     messages from different senders are not ordered.
//   - If the sender or receiver crashes, or the network partitions for
//     longer than the gap timeout, messages are delivered at most once.
//
// Broadcast streams use per-sender sequence numbers with NAK-triggered
// retransmission: a receiver that observes a gap asks the sender (unicast)
// to retransmit the missing range; after GapTimeout the receiver gives up
// and skips, which is where "at most once" comes from. Unicast streams use
// positive cumulative ACKs with sender-side retransmission. Sender restarts
// are detected by a per-connection epoch.
//
// The appendix's "batch parameter" lives here too: with batching on, small
// publications are gathered for up to BatchDelay (or until BatchMaxBytes)
// and sent as one datagram, trading latency for throughput (Figures 5-7).
package reliable

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Frame types.
const (
	frameData  = 1 // batch of broadcast-stream messages
	frameNak   = 2 // broadcast-stream gap report (unicast to sender)
	frameUData = 3 // batch of unicast-stream messages
	frameUAck  = 4 // unicast-stream cumulative ack
	frameHeart = 5 // broadcast-stream heartbeat advertising the max seq
)

// Frame-level errors.
var (
	ErrFrameTruncated = errors.New("reliable: truncated frame")
	ErrFrameCorrupt   = errors.New("reliable: corrupt frame")
	ErrFrameType      = errors.New("reliable: unknown frame type")
)

// msg is one sequenced message within a data frame.
type msg struct {
	seq     uint64
	payload []byte
}

// dataFrame is a batch of sequenced messages from one sender stream.
type dataFrame struct {
	typ   byte // frameData or frameUData
	epoch uint64
	msgs  []msg
}

// nakFrame asks the sender to retransmit [from, to] of its broadcast
// stream.
type nakFrame struct {
	epoch    uint64
	from, to uint64
}

// ackFrame acknowledges every unicast-stream message with seq <= cum.
type ackFrame struct {
	epoch uint64
	cum   uint64
}

// heartFrame advertises the sender's highest published broadcast seq so
// receivers can detect tail loss (a lost final message reveals no gap on
// its own).
type heartFrame struct {
	epoch  uint64
	maxSeq uint64
}

const maxFrameMsgs = 1 << 16

func appendUvarint(b []byte, v uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	return append(b, tmp[:n]...)
}

func encodeData(f dataFrame) []byte {
	return appendData(nil, f)
}

// appendData appends the frame's encoding to dst and returns the extended
// slice. The send path reuses one scratch buffer per Conn through it, so
// steady-state framing allocates nothing.
func appendData(dst []byte, f dataFrame) []byte {
	b := append(dst, f.typ)
	b = appendUvarint(b, f.epoch)
	b = appendUvarint(b, uint64(len(f.msgs)))
	for _, m := range f.msgs {
		b = appendUvarint(b, m.seq)
		b = appendUvarint(b, uint64(len(m.payload)))
		b = append(b, m.payload...)
	}
	return b
}

func encodeNak(f nakFrame) []byte {
	b := []byte{frameNak}
	b = appendUvarint(b, f.epoch)
	b = appendUvarint(b, f.from)
	b = appendUvarint(b, f.to)
	return b
}

func encodeAck(f ackFrame) []byte {
	b := []byte{frameUAck}
	b = appendUvarint(b, f.epoch)
	b = appendUvarint(b, f.cum)
	return b
}

func encodeHeart(f heartFrame) []byte {
	b := []byte{frameHeart}
	b = appendUvarint(b, f.epoch)
	b = appendUvarint(b, f.maxSeq)
	return b
}

// DecodeDataPayloads extracts the message payloads from one encoded data
// frame (broadcast or unicast stream), in order. Non-data frames and
// corrupt input return nil. Wire-capture tooling and tests use it to see
// the published payload bytes without running a full Conn; the returned
// slices alias data.
func DecodeDataPayloads(data []byte) [][]byte {
	f, err := decodeFrame(data)
	if err != nil || f.data == nil {
		return nil
	}
	out := make([][]byte, len(f.data.msgs))
	for i, m := range f.data.msgs {
		out[i] = m.payload
	}
	return out
}

type frameReader struct {
	data []byte
	pos  int
}

func (r *frameReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.data[r.pos:])
	if n <= 0 {
		return 0, ErrFrameTruncated
	}
	r.pos += n
	return v, nil
}

func (r *frameReader) bytes(n int) ([]byte, error) {
	if n < 0 || r.pos+n > len(r.data) {
		return nil, ErrFrameTruncated
	}
	out := r.data[r.pos : r.pos+n]
	r.pos += n
	return out, nil
}

// frame is the sum of all decodable frame kinds; exactly one field is
// non-nil after a successful decode.
type frame struct {
	data  *dataFrame
	nak   *nakFrame
	ack   *ackFrame
	heart *heartFrame
}

// decodeFrame parses any frame.
func decodeFrame(data []byte) (frame, error) {
	if len(data) == 0 {
		return frame{}, ErrFrameTruncated
	}
	r := &frameReader{data: data, pos: 1}
	switch data[0] {
	case frameData, frameUData:
		f := &dataFrame{typ: data[0]}
		var err error
		if f.epoch, err = r.uvarint(); err != nil {
			return frame{}, err
		}
		count, err := r.uvarint()
		if err != nil {
			return frame{}, err
		}
		if count > maxFrameMsgs {
			return frame{}, fmt.Errorf("%d messages: %w", count, ErrFrameCorrupt)
		}
		for i := uint64(0); i < count; i++ {
			var m msg
			if m.seq, err = r.uvarint(); err != nil {
				return frame{}, err
			}
			plen, err := r.uvarint()
			if err != nil {
				return frame{}, err
			}
			if m.payload, err = r.bytes(int(plen)); err != nil {
				return frame{}, err
			}
			f.msgs = append(f.msgs, m)
		}
		if r.pos != len(data) {
			return frame{}, ErrFrameCorrupt
		}
		return frame{data: f}, nil
	case frameNak:
		f := &nakFrame{}
		var err error
		if f.epoch, err = r.uvarint(); err != nil {
			return frame{}, err
		}
		if f.from, err = r.uvarint(); err != nil {
			return frame{}, err
		}
		if f.to, err = r.uvarint(); err != nil {
			return frame{}, err
		}
		if f.to < f.from {
			return frame{}, ErrFrameCorrupt
		}
		return frame{nak: f}, nil
	case frameUAck:
		f := &ackFrame{}
		var err error
		if f.epoch, err = r.uvarint(); err != nil {
			return frame{}, err
		}
		if f.cum, err = r.uvarint(); err != nil {
			return frame{}, err
		}
		return frame{ack: f}, nil
	case frameHeart:
		f := &heartFrame{}
		var err error
		if f.epoch, err = r.uvarint(); err != nil {
			return frame{}, err
		}
		if f.maxSeq, err = r.uvarint(); err != nil {
			return frame{}, err
		}
		return frame{heart: f}, nil
	default:
		return frame{}, fmt.Errorf("type %d: %w", data[0], ErrFrameType)
	}
}
