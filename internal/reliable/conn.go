package reliable

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"infobus/internal/bufpool"
	"infobus/internal/telemetry"
	"infobus/internal/transport"
)

// Config tunes the reliable delivery protocol. Zero values select the
// defaults noted on each field.
type Config struct {
	// Window is the number of recently sent messages retained for
	// retransmission per stream. A NAK for a message that has left the
	// window cannot be served; the receiver will eventually skip it.
	// Default 1024.
	Window int
	// Batching enables the appendix's batch parameter: small publications
	// are gathered and sent as one datagram.
	Batching bool
	// BatchDelay bounds how long a small publication may wait for
	// companions. Default 2ms.
	BatchDelay time.Duration
	// BatchMaxBytes flushes the batch when its payload bytes reach this
	// size. Default 32 KB.
	BatchMaxBytes int
	// NakInterval is the cadence for re-sending gap reports. Default 20ms.
	NakInterval time.Duration
	// GapTimeout is how long a receiver waits for a missing message before
	// skipping it (the at-most-once escape hatch). Default 500ms.
	GapTimeout time.Duration
	// RetransmitInterval is the cadence for re-sending unacked unicast
	// messages. Default 30ms.
	RetransmitInterval time.Duration
	// HeartbeatInterval is the cadence at which an idle publisher
	// re-advertises its highest sequence number, so receivers detect loss
	// of the final messages of a burst. Default 25ms.
	HeartbeatInterval time.Duration
	// JoinGrace is how long a receiver buffers messages from a sender it
	// has not seen before, so that network reordering around the first
	// observed message cannot misorder the stream. Default: NakInterval.
	JoinGrace time.Duration
	// Metrics is the telemetry registry the connection's counters live in;
	// nil gives the connection a private registry (Stats still works, the
	// counters just are not exported anywhere). The daemon shares its
	// host's registry here so protocol counters appear in the host's
	// "_sys.stats.<node>" publications.
	Metrics *telemetry.Registry
	// MetricsPrefix namespaces the counter names within Metrics; default
	// "reliable". Routers give each attachment its own prefix so that
	// per-attachment streams stay distinguishable in one registry.
	MetricsPrefix string
	// Recorder is the process flight recorder; the connection records
	// notable protocol events into it (gap skips, retransmission bursts,
	// peer restarts). Nil disables recording. These are failure-path
	// events: the steady state records nothing.
	Recorder *telemetry.Recorder
	// Seed seeds the connection's epoch (the restart-detection token carried
	// in every frame). Zero, the default, derives a unique epoch from the
	// clock plus a process-wide counter. Tests that need reproducible epochs
	// set distinct nonzero seeds per Conn: the same seed always yields the
	// same epoch, and two live Conns must never share one.
	Seed uint64
}

func (c Config) withDefaults() Config {
	if c.Window <= 0 {
		c.Window = 1024
	}
	if c.BatchDelay <= 0 {
		c.BatchDelay = 2 * time.Millisecond
	}
	if c.BatchMaxBytes <= 0 {
		c.BatchMaxBytes = 32 << 10
	}
	if c.NakInterval <= 0 {
		c.NakInterval = 20 * time.Millisecond
	}
	if c.GapTimeout <= 0 {
		c.GapTimeout = 500 * time.Millisecond
	}
	if c.RetransmitInterval <= 0 {
		c.RetransmitInterval = 30 * time.Millisecond
	}
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = 25 * time.Millisecond
	}
	if c.JoinGrace <= 0 {
		c.JoinGrace = c.NakInterval
	}
	if c.Metrics == nil {
		c.Metrics = telemetry.NewRegistry()
	}
	if c.MetricsPrefix == "" {
		c.MetricsPrefix = "reliable"
	}
	return c
}

// Message is one reliably delivered payload.
type Message struct {
	// From is the transport address of the sending Conn.
	From string
	// Payload is the message body; the receiver owns it.
	Payload []byte
}

// Stats counts protocol events.
type Stats struct {
	Published      uint64 // broadcast messages submitted
	Sent           uint64 // broadcast messages put on the wire (first copy)
	Delivered      uint64 // messages handed to the application
	Retransmits    uint64 // messages re-sent in response to NAKs or timers
	NaksSent       uint64
	NaksReceived   uint64
	Duplicates     uint64 // inbound duplicates suppressed
	Skipped        uint64 // messages abandoned after GapTimeout
	BatchesFlushed uint64
	AcksSent       uint64
}

// counters holds the connection's telemetry handles, resolved once at
// construction so the hot path never touches the registry lock.
type counters struct {
	published, sent, delivered, retransmits *telemetry.Counter
	naksSent, naksReceived                  *telemetry.Counter
	duplicates, skipped                     *telemetry.Counter
	batchesFlushed, acksSent                *telemetry.Counter
	publishedBytes, deliveredBytes          *telemetry.Counter
}

func newCounters(reg *telemetry.Registry, prefix string) counters {
	return counters{
		published:      reg.Counter(prefix + ".published"),
		sent:           reg.Counter(prefix + ".sent"),
		delivered:      reg.Counter(prefix + ".delivered"),
		retransmits:    reg.Counter(prefix + ".retransmits"),
		naksSent:       reg.Counter(prefix + ".naks_sent"),
		naksReceived:   reg.Counter(prefix + ".naks_received"),
		duplicates:     reg.Counter(prefix + ".duplicates"),
		skipped:        reg.Counter(prefix + ".skipped"),
		batchesFlushed: reg.Counter(prefix + ".batches_flushed"),
		acksSent:       reg.Counter(prefix + ".acks_sent"),
		// Byte counters let a monitor turn successive snapshots into
		// bytes/second without decoding any payload.
		publishedBytes: reg.Counter(prefix + ".published_bytes"),
		deliveredBytes: reg.Counter(prefix + ".delivered_bytes"),
	}
}

// Conn errors.
var (
	ErrClosed       = errors.New("reliable: connection closed")
	ErrBackpressure = errors.New("reliable: too many unacknowledged messages")
)

// Conn layers the reliable protocol over one transport endpoint. A Conn
// carries one outbound broadcast stream (Publish), any number of outbound
// unicast streams (SendTo), and delivers all reliably received messages —
// broadcast and unicast — on Recv in per-sender FIFO order.
type Conn struct {
	ep    transport.Endpoint
	cfg   Config
	epoch uint64
	out   chan Message
	done  chan struct{}
	wg    sync.WaitGroup

	mu sync.Mutex
	// Outbound broadcast stream. Window entries are pooled copies
	// (bufpool.CopyOf) returned to the pool on eviction, so every frame that
	// references them — batch sends, NAK retransmissions — must be encoded
	// while mu is held; only the encoded frame (which the transport does not
	// retain) may cross the unlock.
	nextSeq uint64
	// window is a ring of the last cfg.Window sent messages, indexed
	// seq % len(window): sequence numbers are dense and monotone, so the
	// ring gives retain/lookup in O(1) with no hashing — the map this
	// replaces was ~18% of the router fast path's forwarding cost.
	window     []*[]byte
	windowMin  uint64 // smallest seq still retained
	batch      []msg  // entries alias window buffers; flushed before eviction can reach them
	batchBytes int
	batchSince time.Time
	sentSeq    uint64 // highest seq actually broadcast (batching may lag nextSeq)
	// Heartbeat idle detection: the housekeeping tick compares sentSeq
	// against the value it saw last time (hbSeq) instead of the send path
	// stamping time.Now() per broadcast — a clock read per send was ~14%
	// of the router fast path.
	hbSeq   uint64
	hbAt    time.Time
	sendBuf []byte // scratch for frame encoding under mu; transport copies on send
	oneMsg  [1]msg // scratch for unbatched single-message sends
	// Inbound state per remote sender.
	bPeers map[string]*bcastRecv
	uPeers map[string]*ucastRecv
	// Outbound unicast per destination.
	uSend map[string]*ucastSend

	closed bool
	ctr    counters
	rec    *telemetry.Recorder
}

// bcastRecv is inbound broadcast-stream state for one sender.
type bcastRecv struct {
	epoch     uint64
	next      uint64            // next expected seq (0 while syncing)
	pending   map[uint64][]byte // out-of-order buffer
	maxSeen   uint64            // highest seq observed (data or heartbeat)
	syncUntil time.Time         // join-grace deadline; zero once synced
	gapSince  time.Time
	lastNak   time.Time
}

func (pr *bcastRecv) syncing() bool { return !pr.syncUntil.IsZero() }

// ucastRecv is inbound unicast-stream state for one sender.
type ucastRecv struct {
	epoch   uint64
	next    uint64
	pending map[uint64][]byte
}

// ucastSend is outbound unicast-stream state for one destination. unacked
// holds pooled copies returned to the pool when acknowledged.
type ucastSend struct {
	nextSeq  uint64
	unacked  map[uint64]*[]byte
	lastSend time.Time
}

// epochSalt disambiguates auto-seeded Conns created within one clock tick.
var epochSalt atomic.Uint64

// newEpoch derives the connection epoch from seed (splitmix64 finalizer),
// or from the clock plus a process-wide counter when seed is zero. The
// result is always odd, hence nonzero.
func newEpoch(seed uint64) uint64 {
	if seed == 0 {
		seed = uint64(time.Now().UnixNano()) + epochSalt.Add(1)<<32
	}
	z := seed + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return z | 1
}

// New layers a reliable connection over ep. The endpoint must not be used
// directly afterwards.
func New(ep transport.Endpoint, cfg Config) *Conn {
	cfg = cfg.withDefaults()
	c := &Conn{
		ep:     ep,
		cfg:    cfg,
		epoch:  newEpoch(cfg.Seed),
		out:    make(chan Message, 1024),
		done:   make(chan struct{}),
		window: make([]*[]byte, cfg.Window),
		bPeers: make(map[string]*bcastRecv),
		uPeers: make(map[string]*ucastRecv),
		uSend:  make(map[string]*ucastSend),
	}
	c.ctr = newCounters(c.cfg.Metrics, c.cfg.MetricsPrefix)
	c.rec = cfg.Recorder
	c.windowMin = 1
	c.wg.Add(2)
	go c.recvLoop()
	go c.housekeeping()
	return c
}

// Addr returns the underlying endpoint's address.
func (c *Conn) Addr() string { return c.ep.Addr() }

// Recv returns the channel of reliably delivered messages. It is closed
// when the connection closes.
func (c *Conn) Recv() <-chan Message { return c.out }

// Stats returns a snapshot of the protocol counters. The counters are
// monotone atomics read in one pass, so the snapshot is a consistent cut:
// related counters can disagree only by events in flight during the call.
func (c *Conn) Stats() Stats {
	return Stats{
		Published:      c.ctr.published.Load(),
		Sent:           c.ctr.sent.Load(),
		Delivered:      c.ctr.delivered.Load(),
		Retransmits:    c.ctr.retransmits.Load(),
		NaksSent:       c.ctr.naksSent.Load(),
		NaksReceived:   c.ctr.naksReceived.Load(),
		Duplicates:     c.ctr.duplicates.Load(),
		Skipped:        c.ctr.skipped.Load(),
		BatchesFlushed: c.ctr.batchesFlushed.Load(),
		AcksSent:       c.ctr.acksSent.Load(),
	}
}

// Close tears the connection down. Pending batched messages are flushed
// best-effort.
func (c *Conn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.flushBatchLocked()
	c.closed = true
	close(c.done)
	c.mu.Unlock()
	_ = c.ep.Close()
	c.wg.Wait()
	close(c.out)
	return nil
}

// Publish sends one message on the connection's broadcast stream.
func (c *Conn) Publish(payload []byte) error {
	// Copy into the pooled window buffer before taking c.mu: the memcpy is
	// the bulk of the publish cost, and with delivery lanes several local
	// publishers hit this lock concurrently.
	wp := bufpool.CopyOf(payload)
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		bufpool.Put(wp)
		return ErrClosed
	}
	c.ctr.published.Inc()
	c.ctr.publishedBytes.Add(uint64(len(payload)))
	c.nextSeq++
	seq := c.nextSeq
	c.retain(seq, wp)
	cp := *wp

	if !c.cfg.Batching {
		c.oneMsg[0] = msg{seq: seq, payload: cp}
		return c.sendDataLocked(c.oneMsg[:])
	}
	if len(c.batch) == 0 {
		c.batchSince = time.Now()
	}
	c.batch = append(c.batch, msg{seq: seq, payload: cp})
	c.batchBytes += len(cp)
	// Flush on size, and unconditionally before the batch could outlive its
	// window entries: batch payloads alias window buffers, and an eviction
	// Put while the batch is pending would recycle bytes still queued.
	if c.batchBytes >= c.cfg.BatchMaxBytes || len(c.batch) >= c.cfg.Window {
		return c.flushBatchLocked()
	}
	return nil
}

// Flush forces any batched publications onto the wire immediately.
func (c *Conn) Flush() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.flushBatchLocked()
}

func (c *Conn) flushBatchLocked() error {
	if len(c.batch) == 0 {
		return nil
	}
	c.batchBytes = 0
	c.ctr.batchesFlushed.Inc()
	err := c.sendDataLocked(c.batch)
	// The send is synchronous (the frame bytes are copied or written before
	// Broadcast returns), so the slice can be reused for the next batch.
	c.batch = c.batch[:0]
	return err
}

// sendDataLocked encodes msgs into the connection's scratch buffer and
// broadcasts the frame. Callers hold c.mu; the payloads may alias pooled
// window buffers, which is safe exactly because encoding happens under the
// same lock that serializes eviction.
func (c *Conn) sendDataLocked(msgs []msg) error {
	c.sendBuf = appendData(c.sendBuf[:0], dataFrame{typ: frameData, epoch: c.epoch, msgs: msgs})
	c.ctr.sent.Add(uint64(len(msgs)))
	if last := msgs[len(msgs)-1].seq; last > c.sentSeq {
		c.sentSeq = last
	}
	return c.ep.Broadcast(c.sendBuf)
}

// retain stores a sent broadcast message for NAK-triggered retransmission,
// evicting (and pooling) the oldest entries beyond the window.
func (c *Conn) retain(seq uint64, payload *[]byte) {
	slot := seq % uint64(len(c.window))
	if old := c.window[slot]; old != nil {
		bufpool.Put(old)
	}
	c.window[slot] = payload
	if seq >= uint64(len(c.window)) {
		c.windowMin = seq - uint64(len(c.window)) + 1
	}
}

// retained returns the window entry for seq, nil if it has been evicted
// (or never sent).
func (c *Conn) retained(seq uint64) *[]byte {
	if seq < c.windowMin || seq > c.nextSeq {
		return nil
	}
	return c.window[seq%uint64(len(c.window))]
}

// SendTo sends one message on the reliable unicast stream to addr. The
// message is retransmitted until acknowledged. SendTo fails with
// ErrBackpressure when Window messages to addr are in flight.
func (c *Conn) SendTo(addr string, payload []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	us := c.uSend[addr]
	if us == nil {
		us = &ucastSend{unacked: make(map[uint64]*[]byte)}
		c.uSend[addr] = us
	}
	if len(us.unacked) >= c.cfg.Window {
		return fmt.Errorf("to %s: %w", addr, ErrBackpressure)
	}
	us.nextSeq++
	seq := us.nextSeq
	wp := bufpool.CopyOf(payload)
	us.unacked[seq] = wp
	us.lastSend = time.Now()
	c.oneMsg[0] = msg{seq: seq, payload: *wp}
	c.sendBuf = appendData(c.sendBuf[:0], dataFrame{typ: frameUData, epoch: c.epoch, msgs: c.oneMsg[:]})
	return c.ep.Send(addr, c.sendBuf)
}

// ---------------------------------------------------------------------------
// Receive path

func (c *Conn) recvLoop() {
	defer c.wg.Done()
	for {
		select {
		case <-c.done:
			return
		case dg, ok := <-c.ep.Recv():
			if !ok {
				return
			}
			c.handleDatagram(dg)
		}
	}
}

func (c *Conn) handleDatagram(dg transport.Datagram) {
	f, err := decodeFrame(dg.Payload)
	if err != nil {
		return // corrupt datagram: the unreliable layer may hand us garbage
	}
	switch {
	case f.data != nil && f.data.typ == frameData:
		c.handleBroadcastData(dg.From, f.data)
	case f.data != nil && f.data.typ == frameUData:
		c.handleUnicastData(dg.From, f.data)
	case f.nak != nil:
		c.handleNak(dg.From, f.nak)
	case f.ack != nil:
		c.handleAck(dg.From, f.ack)
	case f.heart != nil:
		c.handleHeart(dg.From, f.heart)
	}
}

func (c *Conn) handleBroadcastData(from string, f *dataFrame) {
	var deliver []Message
	c.mu.Lock()
	pr := c.bPeers[from]
	if pr == nil || pr.epoch != f.epoch {
		// New sender, or sender restarted: reset the stream (at-most-once
		// across failures). The stream starts in the syncing state: we
		// buffer briefly so network reordering around our first sighting
		// cannot make us skip the true earliest message.
		if pr != nil && c.rec != nil {
			c.rec.Record(telemetry.EventRestart, from, int64(f.epoch), int64(pr.epoch))
		}
		pr = &bcastRecv{
			epoch:     f.epoch,
			pending:   make(map[uint64][]byte),
			syncUntil: time.Now().Add(c.cfg.JoinGrace),
		}
		c.bPeers[from] = pr
	}
	for _, m := range f.msgs {
		if m.seq > pr.maxSeen {
			pr.maxSeen = m.seq
		}
		if pr.syncing() {
			if _, dup := pr.pending[m.seq]; dup {
				c.ctr.duplicates.Inc()
			} else {
				pr.pending[m.seq] = m.payload
			}
			continue
		}
		switch {
		case m.seq < pr.next:
			c.ctr.duplicates.Inc()
		case m.seq == pr.next:
			deliver = append(deliver, Message{From: from, Payload: m.payload})
			pr.next++
			// Drain any now-in-order pending messages.
			for {
				p, ok := pr.pending[pr.next]
				if !ok {
					break
				}
				delete(pr.pending, pr.next)
				deliver = append(deliver, Message{From: from, Payload: p})
				pr.next++
			}
			if len(pr.pending) == 0 && pr.next > pr.maxSeen {
				pr.gapSince = time.Time{}
			}
		default: // gap
			if _, dup := pr.pending[m.seq]; dup {
				c.ctr.duplicates.Inc()
				break
			}
			pr.pending[m.seq] = m.payload
			if pr.gapSince.IsZero() {
				pr.gapSince = time.Now()
			}
		}
	}
	c.ctr.delivered.Add(uint64(len(deliver)))
	c.mu.Unlock()
	c.emit(deliver)
}

// handleHeart processes a publisher's max-sequence advertisement.
func (c *Conn) handleHeart(from string, f *heartFrame) {
	c.mu.Lock()
	defer c.mu.Unlock()
	pr := c.bPeers[from]
	if pr == nil || pr.epoch != f.epoch {
		// First contact via heartbeat: a late joiner. Expect only future
		// messages (P4: a new subscriber receives new publications, not
		// history).
		c.bPeers[from] = &bcastRecv{
			epoch:   f.epoch,
			next:    f.maxSeq + 1,
			maxSeen: f.maxSeq,
			pending: make(map[uint64][]byte),
		}
		return
	}
	if f.maxSeq > pr.maxSeen {
		pr.maxSeen = f.maxSeq
	}
	if !pr.syncing() && pr.next <= pr.maxSeen && pr.gapSince.IsZero() {
		// Tail loss: the heartbeat reveals messages we never saw.
		pr.gapSince = time.Now()
	}
}

func (c *Conn) handleUnicastData(from string, f *dataFrame) {
	var deliver []Message
	acks := ackFrame{epoch: f.epoch}
	c.mu.Lock()
	ur := c.uPeers[from]
	if ur == nil || ur.epoch != f.epoch {
		ur = &ucastRecv{epoch: f.epoch, next: 1, pending: make(map[uint64][]byte)}
		c.uPeers[from] = ur
	}
	for _, m := range f.msgs {
		switch {
		case m.seq < ur.next:
			c.ctr.duplicates.Inc()
		case m.seq == ur.next:
			deliver = append(deliver, Message{From: from, Payload: m.payload})
			ur.next++
			for {
				p, ok := ur.pending[ur.next]
				if !ok {
					break
				}
				delete(ur.pending, ur.next)
				deliver = append(deliver, Message{From: from, Payload: p})
				ur.next++
			}
		default:
			if _, dup := ur.pending[m.seq]; !dup {
				ur.pending[m.seq] = m.payload
			} else {
				c.ctr.duplicates.Inc()
			}
		}
	}
	acks.cum = ur.next - 1
	c.ctr.delivered.Add(uint64(len(deliver)))
	c.ctr.acksSent.Inc()
	c.mu.Unlock()
	_ = c.ep.Send(from, encodeAck(acks))
	c.emit(deliver)
}

func (c *Conn) handleNak(from string, f *nakFrame) {
	c.mu.Lock()
	c.ctr.naksReceived.Inc()
	if f.epoch != c.epoch {
		c.mu.Unlock()
		return
	}
	var msgs []msg
	for seq := f.from; seq <= f.to; seq++ {
		if p := c.retained(seq); p != nil {
			msgs = append(msgs, msg{seq: seq, payload: *p})
		}
	}
	c.ctr.retransmits.Add(uint64(len(msgs)))
	if c.rec != nil && len(msgs) > 0 {
		c.rec.Record(telemetry.EventRetransmit, from, int64(len(msgs)), 0)
	}
	// Encode and send before unlocking: the payloads are pooled window
	// buffers that a concurrent Publish could evict (and recycle) the moment
	// mu is free, and the scratch sendBuf is likewise guarded by mu. The
	// transport copies (or writes) the frame before Send returns, so nothing
	// escapes the lock. Retransmission is unicast to the requester only;
	// other receivers either have the messages or will NAK on their own.
	if len(msgs) > 0 {
		c.sendBuf = appendData(c.sendBuf[:0], dataFrame{typ: frameData, epoch: c.epoch, msgs: msgs})
		_ = c.ep.Send(from, c.sendBuf)
	}
	c.mu.Unlock()
}

func (c *Conn) handleAck(from string, f *ackFrame) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if f.epoch != c.epoch {
		return
	}
	us := c.uSend[from]
	if us == nil {
		return
	}
	for seq, p := range us.unacked {
		if seq <= f.cum {
			bufpool.Put(p)
			delete(us.unacked, seq)
		}
	}
}

// emit hands messages to the application channel, blocking if the consumer
// is slow (delivery order must be preserved). Delivered-byte accounting
// lives here because every delivery path funnels through emit.
func (c *Conn) emit(msgs []Message) {
	var bytes uint64
	for _, m := range msgs {
		select {
		case c.out <- m:
			bytes += uint64(len(m.Payload))
		case <-c.done:
			if bytes > 0 {
				c.ctr.deliveredBytes.Add(bytes)
			}
			return
		}
	}
	if bytes > 0 {
		c.ctr.deliveredBytes.Add(bytes)
	}
}

// ---------------------------------------------------------------------------
// Housekeeping: batch flush, NAK scheduling, gap skipping, unicast
// retransmission.

func (c *Conn) housekeeping() {
	defer c.wg.Done()
	interval := c.cfg.NakInterval / 4
	if bd := c.cfg.BatchDelay / 2; c.cfg.Batching && bd < interval {
		interval = bd
	}
	if interval < 200*time.Microsecond {
		interval = 200 * time.Microsecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-c.done:
			return
		case now := <-ticker.C:
			c.tick(now)
		}
	}
}

func (c *Conn) tick(now time.Time) {
	type nakOut struct {
		addr  string
		frame []byte
	}
	type retrOut struct {
		addr  string
		frame []byte
	}
	var naks []nakOut
	var retrs []retrOut
	var deliver []Message
	var heartbeat []byte

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	// Batch flush on delay expiry.
	if c.cfg.Batching && len(c.batch) > 0 && now.Sub(c.batchSince) >= c.cfg.BatchDelay {
		_ = c.flushBatchLocked()
	}
	// Heartbeat: an idle publisher re-advertises its max seq so receivers
	// can detect tail loss. Idleness is observed here — the broadcast
	// stream made no seq progress for a full HeartbeatInterval — instead
	// of the send path stamping a clock per broadcast.
	if c.sentSeq > 0 {
		if c.sentSeq != c.hbSeq {
			c.hbSeq = c.sentSeq
			c.hbAt = now
		} else if now.Sub(c.hbAt) >= c.cfg.HeartbeatInterval {
			c.hbAt = now
			heartbeat = encodeHeart(heartFrame{epoch: c.epoch, maxSeq: c.sentSeq})
		}
	}
	// Broadcast stream maintenance per sender.
	for addr, pr := range c.bPeers {
		// Complete the join-grace sync: adopt the smallest buffered seq as
		// the stream start and deliver in order from there.
		if pr.syncing() {
			if now.Before(pr.syncUntil) || len(pr.pending) == 0 {
				continue
			}
			pr.syncUntil = time.Time{}
			pr.next = minKey(pr.pending)
			for {
				p, ok := pr.pending[pr.next]
				if !ok {
					break
				}
				delete(pr.pending, pr.next)
				deliver = append(deliver, Message{From: addr, Payload: p})
				c.ctr.delivered.Inc()
				pr.next++
			}
			if len(pr.pending) > 0 || pr.next <= pr.maxSeen {
				pr.gapSince = now
			}
		}
		// A gap exists if buffered messages wait behind a hole, or a
		// heartbeat advertised messages we never received.
		if len(pr.pending) == 0 && pr.next > pr.maxSeen {
			pr.gapSince = time.Time{}
			continue
		}
		gapEnd := pr.maxSeen // last seq known to exist
		if len(pr.pending) > 0 {
			if mp := minKey(pr.pending); mp-1 < gapEnd {
				gapEnd = mp - 1
			}
		}
		if pr.gapSince.IsZero() {
			pr.gapSince = now
		}
		if now.Sub(pr.gapSince) >= c.cfg.GapTimeout {
			// Give up on the missing range: skip and deliver what we have
			// (the at-most-once escape hatch).
			target := pr.maxSeen + 1
			if len(pr.pending) > 0 {
				target = minKey(pr.pending)
			}
			c.ctr.skipped.Add(target - pr.next)
			if c.rec != nil {
				c.rec.Record(telemetry.EventDrop, addr, int64(target-pr.next), 0)
			}
			pr.next = target
			for {
				p, ok := pr.pending[pr.next]
				if !ok {
					break
				}
				delete(pr.pending, pr.next)
				deliver = append(deliver, Message{From: addr, Payload: p})
				c.ctr.delivered.Inc()
				pr.next++
			}
			if len(pr.pending) == 0 && pr.next > pr.maxSeen {
				pr.gapSince = time.Time{}
			} else {
				pr.gapSince = now
			}
			continue
		}
		if now.Sub(pr.lastNak) >= c.cfg.NakInterval && gapEnd >= pr.next {
			pr.lastNak = now
			c.ctr.naksSent.Inc()
			naks = append(naks, nakOut{
				addr:  addr,
				frame: encodeNak(nakFrame{epoch: pr.epoch, from: pr.next, to: gapEnd}),
			})
		}
	}
	// Unicast retransmission.
	for addr, us := range c.uSend {
		if len(us.unacked) == 0 {
			continue
		}
		if now.Sub(us.lastSend) < c.cfg.RetransmitInterval {
			continue
		}
		us.lastSend = now
		var msgs []msg
		for seq, p := range us.unacked {
			// *p is a pooled buffer; the frame is encoded below, still under
			// mu, before an ack could recycle it.
			msgs = append(msgs, msg{seq: seq, payload: *p})
		}
		sortMsgs(msgs)
		c.ctr.retransmits.Add(uint64(len(msgs)))
		if c.rec != nil {
			c.rec.Record(telemetry.EventRetransmit, addr, int64(len(msgs)), 0)
		}
		retrs = append(retrs, retrOut{
			addr:  addr,
			frame: encodeData(dataFrame{typ: frameUData, epoch: c.epoch, msgs: msgs}),
		})
	}
	c.mu.Unlock()

	if heartbeat != nil {
		_ = c.ep.Broadcast(heartbeat)
	}
	for _, n := range naks {
		_ = c.ep.Send(n.addr, n.frame)
	}
	for _, r := range retrs {
		_ = c.ep.Send(r.addr, r.frame)
	}
	c.emit(deliver)
}

func minKey(m map[uint64][]byte) uint64 {
	min := ^uint64(0)
	for k := range m {
		if k < min {
			min = k
		}
	}
	return min
}

func sortMsgs(ms []msg) {
	// Insertion sort: retransmission sets are small.
	for i := 1; i < len(ms); i++ {
		for j := i; j > 0 && ms[j].seq < ms[j-1].seq; j-- {
			ms[j], ms[j-1] = ms[j-1], ms[j]
		}
	}
}
