package relstore

import (
	"fmt"
	"strings"
	"time"
)

// Predicate selects rows. Build with Eq, Cmp, And, Or, Not, All.
type Predicate interface {
	pred()
}

type allPred struct{}

type eqPred struct {
	col string
	val any
}

// CmpOp is a comparison operator for Cmp predicates.
type CmpOp uint8

const (
	OpLT CmpOp = iota
	OpLE
	OpGT
	OpGE
	OpNE
)

type cmpPred struct {
	col string
	op  CmpOp
	val any
}

type andPred struct{ ps []Predicate }
type orPred struct{ ps []Predicate }
type notPred struct{ p Predicate }
type nullPred struct{ col string }

func (allPred) pred()  {}
func (eqPred) pred()   {}
func (cmpPred) pred()  {}
func (andPred) pred()  {}
func (orPred) pred()   {}
func (notPred) pred()  {}
func (nullPred) pred() {}

// All matches every row (like SELECT without WHERE).
func All() Predicate { return allPred{} }

// Eq matches rows whose column equals val. Uses an index when one exists.
func Eq(col string, val any) Predicate { return eqPred{col: col, val: val} }

// Cmp matches rows by ordered comparison on int, float, string, or time
// columns. NULL never matches.
func Cmp(col string, op CmpOp, val any) Predicate { return cmpPred{col: col, op: op, val: val} }

// IsNull matches rows whose column is NULL.
func IsNull(col string) Predicate { return nullPred{col: col} }

// And matches rows matching every sub-predicate.
func And(ps ...Predicate) Predicate { return andPred{ps: ps} }

// Or matches rows matching at least one sub-predicate.
func Or(ps ...Predicate) Predicate { return orPred{ps: ps} }

// Not inverts a predicate.
func Not(p Predicate) Predicate { return notPred{p: p} }

func evalPred(t *Table, p Predicate, r Row) (bool, error) {
	switch q := p.(type) {
	case nil:
		return true, nil
	case allPred:
		return true, nil
	case eqPred:
		i, err := t.ColIndex(q.col)
		if err != nil {
			return false, err
		}
		return valuesEqual(r[i], q.val), nil
	case nullPred:
		i, err := t.ColIndex(q.col)
		if err != nil {
			return false, err
		}
		return r[i] == nil, nil
	case cmpPred:
		i, err := t.ColIndex(q.col)
		if err != nil {
			return false, err
		}
		if r[i] == nil || q.val == nil {
			return false, nil
		}
		c, err := compareValues(r[i], q.val)
		if err != nil {
			return false, err
		}
		switch q.op {
		case OpLT:
			return c < 0, nil
		case OpLE:
			return c <= 0, nil
		case OpGT:
			return c > 0, nil
		case OpGE:
			return c >= 0, nil
		case OpNE:
			return c != 0, nil
		default:
			return false, fmt.Errorf("relstore: unknown comparison op %d", q.op)
		}
	case andPred:
		for _, sp := range q.ps {
			ok, err := evalPred(t, sp, r)
			if err != nil || !ok {
				return false, err
			}
		}
		return true, nil
	case orPred:
		for _, sp := range q.ps {
			ok, err := evalPred(t, sp, r)
			if err != nil {
				return false, err
			}
			if ok {
				return true, nil
			}
		}
		return false, nil
	case notPred:
		ok, err := evalPred(t, q.p, r)
		return !ok, err
	default:
		return false, fmt.Errorf("relstore: unknown predicate %T", p)
	}
}

func valuesEqual(a, b any) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	switch x := a.(type) {
	case []byte:
		y, ok := b.([]byte)
		if !ok || len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	case time.Time:
		y, ok := b.(time.Time)
		return ok && x.Equal(y)
	default:
		return a == b
	}
}

func compareValues(a, b any) (int, error) {
	switch x := a.(type) {
	case int64:
		y, ok := b.(int64)
		if !ok {
			return 0, mismatch(a, b)
		}
		return cmpOrdered(x, y), nil
	case float64:
		y, ok := b.(float64)
		if !ok {
			return 0, mismatch(a, b)
		}
		return cmpOrdered(x, y), nil
	case string:
		y, ok := b.(string)
		if !ok {
			return 0, mismatch(a, b)
		}
		return strings.Compare(x, y), nil
	case time.Time:
		y, ok := b.(time.Time)
		if !ok {
			return 0, mismatch(a, b)
		}
		return x.Compare(y), nil
	default:
		return 0, fmt.Errorf("%T: %w", a, ErrNotComparable)
	}
}

func cmpOrdered[T int64 | float64](a, b T) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func mismatch(a, b any) error {
	return fmt.Errorf("comparing %T with %T: %w", a, b, ErrTypeMismatch)
}
