package relstore

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func storySchema() Schema {
	return Schema{
		Name: "Story",
		Columns: []Column{
			{Name: "headline", Type: ColString},
			{Name: "words", Type: ColInt},
			{Name: "score", Type: ColFloat},
			{Name: "breaking", Type: ColBool},
			{Name: "raw", Type: ColBytes},
			{Name: "published", Type: ColTime},
		},
	}
}

func newStoryTable(t *testing.T) (*DB, *Table) {
	t.Helper()
	db := NewDB()
	tbl, err := db.CreateTable(storySchema())
	if err != nil {
		t.Fatal(err)
	}
	return db, tbl
}

func TestCreateTableValidation(t *testing.T) {
	db := NewDB()
	cases := []struct {
		s    Schema
		want error
	}{
		{Schema{Name: "", Columns: []Column{{Name: "a", Type: ColInt}}}, ErrBadSchema},
		{Schema{Name: "t"}, ErrBadSchema},
		{Schema{Name: "t", Columns: []Column{{Name: "", Type: ColInt}}}, ErrBadSchema},
		{Schema{Name: "t", Columns: []Column{{Name: "a", Type: ColInvalid}}}, ErrBadSchema},
		{Schema{Name: "t", Columns: []Column{{Name: "a", Type: ColInt}, {Name: "a", Type: ColInt}}}, ErrBadSchema},
	}
	for _, c := range cases {
		if _, err := db.CreateTable(c.s); !errors.Is(err, c.want) {
			t.Errorf("CreateTable(%+v) = %v, want %v", c.s, err, c.want)
		}
	}
	if _, err := db.CreateTable(storySchema()); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable(storySchema()); !errors.Is(err, ErrTableExists) {
		t.Errorf("duplicate table error = %v", err)
	}
	if !db.Has("Story") || db.Has("Nope") {
		t.Error("Has misbehaves")
	}
	if got := db.Tables(); len(got) != 1 || got[0] != "Story" {
		t.Errorf("Tables = %v", got)
	}
}

func TestInsertTypeChecking(t *testing.T) {
	_, tbl := newStoryTable(t)
	good := Row{"GM up", int64(120), 0.9, true, []byte{1}, time.Unix(1, 0)}
	if _, err := tbl.Insert(good); err != nil {
		t.Fatal(err)
	}
	// NULLs allowed everywhere.
	if _, err := tbl.Insert(Row{nil, nil, nil, nil, nil, nil}); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Insert(Row{"short"}); !errors.Is(err, ErrWrongArity) {
		t.Errorf("arity error = %v", err)
	}
	bad := Row{int64(5), int64(1), 0.5, false, nil, time.Unix(1, 0)}
	if _, err := tbl.Insert(bad); !errors.Is(err, ErrTypeMismatch) {
		t.Errorf("type error = %v", err)
	}
	if tbl.Len() != 2 {
		t.Errorf("Len = %d", tbl.Len())
	}
}

func TestInsertMapAndGet(t *testing.T) {
	_, tbl := newStoryTable(t)
	id, err := tbl.InsertMap(map[string]any{"headline": "h", "words": int64(7)})
	if err != nil {
		t.Fatal(err)
	}
	r, ok := tbl.Get(id)
	if !ok || r[0] != "h" || r[1] != int64(7) || r[2] != nil {
		t.Fatalf("Get = %v, %v", r, ok)
	}
	if _, err := tbl.InsertMap(map[string]any{"nosuch": 1}); !errors.Is(err, ErrNoColumn) {
		t.Errorf("unknown column error = %v", err)
	}
	if _, ok := tbl.Get(9999); ok {
		t.Error("Get of absent rowid succeeded")
	}
}

func fillStories(t *testing.T, tbl *Table, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		_, err := tbl.Insert(Row{
			fmt.Sprintf("headline-%02d", i),
			int64(i * 10),
			float64(i) / 10,
			i%2 == 0,
			[]byte{byte(i)},
			time.Unix(int64(i*100), 0),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestSelectPredicates(t *testing.T) {
	_, tbl := newStoryTable(t)
	fillStories(t, tbl, 10)
	cases := []struct {
		name string
		p    Predicate
		want int
	}{
		{"all", All(), 10},
		{"nil", nil, 10},
		{"eq", Eq("headline", "headline-03"), 1},
		{"eq-miss", Eq("headline", "nope"), 0},
		{"lt", Cmp("words", OpLT, int64(30)), 3},
		{"le", Cmp("words", OpLE, int64(30)), 4},
		{"gt", Cmp("score", OpGT, 0.75), 2},
		{"ge-time", Cmp("published", OpGE, time.Unix(800, 0)), 2},
		{"ne", Cmp("words", OpNE, int64(0)), 9},
		{"and", And(Eq("breaking", true), Cmp("words", OpGT, int64(40))), 2},
		{"or", Or(Eq("words", int64(0)), Eq("words", int64(90))), 2},
		{"not", Not(Eq("breaking", true)), 5},
		{"str-cmp", Cmp("headline", OpLT, "headline-02"), 2},
	}
	for _, c := range cases {
		ids, rows, err := tbl.Select(c.p)
		if err != nil {
			t.Errorf("%s: %v", c.name, err)
			continue
		}
		if len(rows) != c.want || len(ids) != c.want {
			t.Errorf("%s: got %d rows, want %d", c.name, len(rows), c.want)
		}
	}
	// Insertion order preserved.
	_, rows, _ := tbl.Select(All())
	for i, r := range rows {
		if r[0] != fmt.Sprintf("headline-%02d", i) {
			t.Fatalf("row %d out of order: %v", i, r[0])
		}
	}
	// Unknown column errors.
	if _, _, err := tbl.Select(Eq("ghost", 1)); !errors.Is(err, ErrNoColumn) {
		t.Errorf("unknown column select = %v", err)
	}
	// Mismatched comparison errors.
	if _, _, err := tbl.Select(Cmp("words", OpLT, "str")); !errors.Is(err, ErrTypeMismatch) {
		t.Errorf("cmp type error = %v", err)
	}
}

func TestIsNull(t *testing.T) {
	_, tbl := newStoryTable(t)
	fillStories(t, tbl, 3)
	if _, err := tbl.InsertMap(map[string]any{"headline": "null-words"}); err != nil {
		t.Fatal(err)
	}
	_, rows, err := tbl.Select(IsNull("words"))
	if err != nil || len(rows) != 1 || rows[0][0] != "null-words" {
		t.Fatalf("IsNull = %v, %v", rows, err)
	}
	_, rows, _ = tbl.Select(Not(IsNull("words")))
	if len(rows) != 3 {
		t.Fatalf("Not IsNull = %d rows", len(rows))
	}
	// NULL never matches comparisons.
	_, rows, _ = tbl.Select(Cmp("words", OpGE, int64(0)))
	if len(rows) != 3 {
		t.Fatalf("cmp over NULL = %d rows", len(rows))
	}
}

func TestDeleteAndUpdate(t *testing.T) {
	_, tbl := newStoryTable(t)
	fillStories(t, tbl, 10)
	n, err := tbl.Delete(Cmp("words", OpGE, int64(50)))
	if err != nil || n != 5 {
		t.Fatalf("Delete = %d, %v", n, err)
	}
	if tbl.Len() != 5 {
		t.Fatalf("Len after delete = %d", tbl.Len())
	}
	n, err = tbl.Update(Eq("headline", "headline-02"), func(r Row) Row {
		r[0] = "updated"
		return r
	})
	if err != nil || n != 1 {
		t.Fatalf("Update = %d, %v", n, err)
	}
	_, rows, _ := tbl.Select(Eq("headline", "updated"))
	if len(rows) != 1 {
		t.Fatal("updated row not found")
	}
	// Update that breaks the type fails.
	if _, err := tbl.Update(All(), func(r Row) Row { r[1] = "bad"; return r }); !errors.Is(err, ErrTypeMismatch) {
		t.Errorf("bad update error = %v", err)
	}
}

func TestIndexAcceleratedSelect(t *testing.T) {
	_, tbl := newStoryTable(t)
	fillStories(t, tbl, 50)
	if err := tbl.CreateIndex("headline"); err != nil {
		t.Fatal(err)
	}
	if err := tbl.CreateIndex("headline"); !errors.Is(err, ErrIndexExists) {
		t.Errorf("duplicate index error = %v", err)
	}
	if err := tbl.CreateIndex("ghost"); !errors.Is(err, ErrNoColumn) {
		t.Errorf("index unknown column error = %v", err)
	}
	ids, rows, err := tbl.Select(Eq("headline", "headline-25"))
	if err != nil || len(rows) != 1 || rows[0][1] != int64(250) {
		t.Fatalf("indexed select = %v %v %v", ids, rows, err)
	}
	// Index stays correct across insert, update, delete.
	if _, err := tbl.InsertMap(map[string]any{"headline": "headline-25"}); err != nil {
		t.Fatal(err)
	}
	_, rows, _ = tbl.Select(Eq("headline", "headline-25"))
	if len(rows) != 2 {
		t.Fatalf("after insert: %d rows", len(rows))
	}
	if _, err := tbl.Update(Eq("words", int64(250)), func(r Row) Row { r[0] = "renamed"; return r }); err != nil {
		t.Fatal(err)
	}
	_, rows, _ = tbl.Select(Eq("headline", "headline-25"))
	if len(rows) != 1 {
		t.Fatalf("after update: %d rows", len(rows))
	}
	if _, err := tbl.Delete(Eq("headline", "headline-25")); err != nil {
		t.Fatal(err)
	}
	_, rows, _ = tbl.Select(Eq("headline", "headline-25"))
	if len(rows) != 0 {
		t.Fatalf("after delete: %d rows", len(rows))
	}
	_, rows, _ = tbl.Select(Eq("headline", "renamed"))
	if len(rows) != 1 {
		t.Fatalf("renamed row missing from index")
	}
}

func TestBytesAndTimeEquality(t *testing.T) {
	_, tbl := newStoryTable(t)
	fillStories(t, tbl, 3)
	_, rows, err := tbl.Select(Eq("raw", []byte{2}))
	if err != nil || len(rows) != 1 {
		t.Fatalf("bytes eq = %v, %v", rows, err)
	}
	_, rows, err = tbl.Select(Eq("published", time.Unix(100, 0).UTC()))
	if err != nil || len(rows) != 1 {
		t.Fatalf("time eq (different location) = %v, %v", rows, err)
	}
	// Index over bytes works via the string key.
	if err := tbl.CreateIndex("raw"); err != nil {
		t.Fatal(err)
	}
	_, rows, err = tbl.Select(Eq("raw", []byte{1}))
	if err != nil || len(rows) != 1 {
		t.Fatalf("indexed bytes eq = %v, %v", rows, err)
	}
}

func TestRowIsolation(t *testing.T) {
	_, tbl := newStoryTable(t)
	src := Row{"h", int64(1), 0.5, true, []byte{9}, time.Unix(0, 0)}
	id, err := tbl.Insert(src)
	if err != nil {
		t.Fatal(err)
	}
	src[0] = "mutated-after-insert"
	r, _ := tbl.Get(id)
	if r[0] != "h" {
		t.Error("Insert did not copy the row")
	}
	r[0] = "mutated-after-get"
	r2, _ := tbl.Get(id)
	if r2[0] != "h" {
		t.Error("Get did not copy the row")
	}
}

func TestDropTable(t *testing.T) {
	db, _ := newStoryTable(t)
	if err := db.Drop("Story"); err != nil {
		t.Fatal(err)
	}
	if err := db.Drop("Story"); !errors.Is(err, ErrNoTable) {
		t.Errorf("double drop error = %v", err)
	}
	if _, err := db.Table("Story"); !errors.Is(err, ErrNoTable) {
		t.Errorf("Table after drop = %v", err)
	}
}

func TestConcurrentAccess(t *testing.T) {
	_, tbl := newStoryTable(t)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if _, err := tbl.InsertMap(map[string]any{
					"headline": fmt.Sprintf("w%d-%d", w, i),
					"words":    int64(i),
				}); err != nil {
					t.Errorf("insert: %v", err)
					return
				}
				if _, _, err := tbl.Select(Cmp("words", OpLT, int64(10))); err != nil {
					t.Errorf("select: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if tbl.Len() != 400 {
		t.Errorf("Len = %d, want 400", tbl.Len())
	}
}

// Property: every inserted row is retrievable by an Eq select on a unique
// key column, with and without an index, yielding identical results.
func TestQuickIndexConsistency(t *testing.T) {
	f := func(keys []int64) bool {
		db := NewDB()
		plain, _ := db.CreateTable(Schema{Name: "p", Columns: []Column{{Name: "k", Type: ColInt}}})
		indexed, _ := db.CreateTable(Schema{Name: "i", Columns: []Column{{Name: "k", Type: ColInt}}})
		_ = indexed.CreateIndex("k")
		for _, k := range keys {
			if _, err := plain.Insert(Row{k}); err != nil {
				return false
			}
			if _, err := indexed.Insert(Row{k}); err != nil {
				return false
			}
		}
		for _, k := range keys {
			_, a, err1 := plain.Select(Eq("k", k))
			_, b, err2 := indexed.Select(Eq("k", k))
			if err1 != nil || err2 != nil || len(a) != len(b) || len(a) == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
