// Package relstore is a miniature in-process relational database engine:
// typed tables, rows, predicates, secondary hash indexes, and dynamic
// table creation. It stands in for the commercial relational database the
// paper's Object Repository adapter (§4) maps objects into — "a database
// table is a flat structure composed of simple data types" — so the
// repository's schema generation, object decomposition, and
// hierarchy-aware queries exercise the same code paths they would against
// a real RDBMS.
package relstore

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// ColType enumerates the flat column types a relational table may hold.
type ColType uint8

const (
	ColInvalid ColType = iota
	ColBool
	ColInt
	ColFloat
	ColString
	ColBytes
	ColTime
)

var colTypeNames = [...]string{
	ColInvalid: "invalid",
	ColBool:    "bool",
	ColInt:     "int",
	ColFloat:   "float",
	ColString:  "string",
	ColBytes:   "bytes",
	ColTime:    "time",
}

func (t ColType) String() string {
	if int(t) < len(colTypeNames) {
		return colTypeNames[t]
	}
	return fmt.Sprintf("coltype(%d)", uint8(t))
}

// Column describes one table column. Every column is nullable (the
// repository stores absent object attributes as NULL).
type Column struct {
	Name string
	Type ColType
}

// Schema describes a table.
type Schema struct {
	Name    string
	Columns []Column
}

// Row is one tuple, values aligned with the table's columns. nil is NULL.
type Row []any

// Errors.
var (
	ErrTableExists   = errors.New("relstore: table already exists")
	ErrNoTable       = errors.New("relstore: no such table")
	ErrNoColumn      = errors.New("relstore: no such column")
	ErrBadSchema     = errors.New("relstore: invalid schema")
	ErrTypeMismatch  = errors.New("relstore: value does not match column type")
	ErrWrongArity    = errors.New("relstore: row length does not match column count")
	ErrIndexExists   = errors.New("relstore: index already exists")
	ErrNotComparable = errors.New("relstore: type not comparable")
)

// DB is a database instance: a set of named tables. Safe for concurrent
// use.
type DB struct {
	mu     sync.RWMutex
	tables map[string]*Table
}

// NewDB creates an empty database.
func NewDB() *DB {
	return &DB{tables: make(map[string]*Table)}
}

// CreateTable creates a table from a schema.
func (db *DB) CreateTable(s Schema) (*Table, error) {
	if s.Name == "" || len(s.Columns) == 0 {
		return nil, fmt.Errorf("table %q: %w", s.Name, ErrBadSchema)
	}
	seen := make(map[string]bool)
	for _, c := range s.Columns {
		if c.Name == "" || c.Type == ColInvalid || c.Type > ColTime {
			return nil, fmt.Errorf("table %q column %q: %w", s.Name, c.Name, ErrBadSchema)
		}
		if seen[c.Name] {
			return nil, fmt.Errorf("table %q duplicate column %q: %w", s.Name, c.Name, ErrBadSchema)
		}
		seen[c.Name] = true
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.tables[s.Name]; ok {
		return nil, fmt.Errorf("%q: %w", s.Name, ErrTableExists)
	}
	t := &Table{
		schema:  Schema{Name: s.Name, Columns: append([]Column(nil), s.Columns...)},
		colIdx:  make(map[string]int),
		indexes: make(map[string]map[any][]int64),
		rows:    make(map[int64]Row),
	}
	for i, c := range t.schema.Columns {
		t.colIdx[c.Name] = i
	}
	db.tables[s.Name] = t
	return t, nil
}

// Table returns a table by name.
func (db *DB) Table(name string) (*Table, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[name]
	if !ok {
		return nil, fmt.Errorf("%q: %w", name, ErrNoTable)
	}
	return t, nil
}

// Has reports whether a table exists.
func (db *DB) Has(name string) bool {
	db.mu.RLock()
	defer db.mu.RUnlock()
	_, ok := db.tables[name]
	return ok
}

// Drop removes a table.
func (db *DB) Drop(name string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.tables[name]; !ok {
		return fmt.Errorf("%q: %w", name, ErrNoTable)
	}
	delete(db.tables, name)
	return nil
}

// Tables returns all table names, sorted.
func (db *DB) Tables() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.tables))
	for n := range db.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Table is one relational table. Safe for concurrent use.
type Table struct {
	mu      sync.RWMutex
	schema  Schema
	colIdx  map[string]int
	rows    map[int64]Row
	order   []int64 // insertion order of live rowids
	nextID  int64
	indexes map[string]map[any][]int64 // column -> value -> rowids
}

// Schema returns a copy of the table's schema.
func (t *Table) Schema() Schema {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return Schema{Name: t.schema.Name, Columns: append([]Column(nil), t.schema.Columns...)}
}

// Name returns the table name.
func (t *Table) Name() string { return t.schema.Name }

// Len returns the number of rows.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.rows)
}

// ColIndex returns the position of a column.
func (t *Table) ColIndex(name string) (int, error) {
	i, ok := t.colIdx[name]
	if !ok {
		return 0, fmt.Errorf("%s.%s: %w", t.schema.Name, name, ErrNoColumn)
	}
	return i, nil
}

// checkValue verifies one value against a column type; nil is NULL and
// always permitted.
func checkValue(c Column, v any) error {
	if v == nil {
		return nil
	}
	ok := false
	switch c.Type {
	case ColBool:
		_, ok = v.(bool)
	case ColInt:
		_, ok = v.(int64)
	case ColFloat:
		_, ok = v.(float64)
	case ColString:
		_, ok = v.(string)
	case ColBytes:
		_, ok = v.([]byte)
	case ColTime:
		_, ok = v.(time.Time)
	}
	if !ok {
		return fmt.Errorf("column %q (%s) <- %T: %w", c.Name, c.Type, v, ErrTypeMismatch)
	}
	return nil
}

// Insert appends a row and returns its rowid.
func (t *Table) Insert(r Row) (int64, error) {
	if len(r) != len(t.schema.Columns) {
		return 0, fmt.Errorf("%s: got %d values for %d columns: %w",
			t.schema.Name, len(r), len(t.schema.Columns), ErrWrongArity)
	}
	for i, c := range t.schema.Columns {
		if err := checkValue(c, r[i]); err != nil {
			return 0, fmt.Errorf("%s: %w", t.schema.Name, err)
		}
	}
	cp := append(Row(nil), r...)
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nextID++
	id := t.nextID
	t.rows[id] = cp
	t.order = append(t.order, id)
	for col, idx := range t.indexes {
		i := t.colIdx[col]
		key := indexKey(cp[i])
		idx[key] = append(idx[key], id)
	}
	return id, nil
}

// InsertMap inserts a row given as a column->value map; omitted columns
// are NULL.
func (t *Table) InsertMap(vals map[string]any) (int64, error) {
	r := make(Row, len(t.schema.Columns))
	for col, v := range vals {
		i, err := t.ColIndex(col)
		if err != nil {
			return 0, err
		}
		r[i] = v
	}
	return t.Insert(r)
}

// Get returns the row with the given rowid.
func (t *Table) Get(id int64) (Row, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	r, ok := t.rows[id]
	if !ok {
		return nil, false
	}
	return append(Row(nil), r...), true
}

// Select returns the rowids and rows matching the predicate, in insertion
// order. A nil predicate matches everything. Equality predicates on
// indexed columns use the index.
func (t *Table) Select(p Predicate) ([]int64, []Row, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if eq, ok := p.(eqPred); ok {
		if idx, indexed := t.indexes[eq.col]; indexed {
			ids := append([]int64(nil), idx[indexKey(eq.val)]...)
			sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
			rows := make([]Row, 0, len(ids))
			live := ids[:0]
			for _, id := range ids {
				if r, ok := t.rows[id]; ok {
					live = append(live, id)
					rows = append(rows, append(Row(nil), r...))
				}
			}
			return live, rows, nil
		}
	}
	var ids []int64
	var rows []Row
	for _, id := range t.order {
		r, ok := t.rows[id]
		if !ok {
			continue
		}
		match, err := evalPred(t, p, r)
		if err != nil {
			return nil, nil, err
		}
		if match {
			ids = append(ids, id)
			rows = append(rows, append(Row(nil), r...))
		}
	}
	return ids, rows, nil
}

// Delete removes matching rows and returns how many were removed.
func (t *Table) Delete(p Predicate) (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	removed := 0
	for id, r := range t.rows {
		match, err := evalPred(t, p, r)
		if err != nil {
			return removed, err
		}
		if !match {
			continue
		}
		for col, idx := range t.indexes {
			i := t.colIdx[col]
			key := indexKey(r[i])
			idx[key] = removeID(idx[key], id)
		}
		delete(t.rows, id)
		removed++
	}
	if removed > 0 {
		live := t.order[:0]
		for _, id := range t.order {
			if _, ok := t.rows[id]; ok {
				live = append(live, id)
			}
		}
		t.order = live
	}
	return removed, nil
}

// Update applies fn to every matching row; fn returns the replacement row.
func (t *Table) Update(p Predicate, fn func(Row) Row) (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	updated := 0
	for _, id := range t.order {
		r, ok := t.rows[id]
		if !ok {
			continue
		}
		match, err := evalPred(t, p, r)
		if err != nil {
			return updated, err
		}
		if !match {
			continue
		}
		nr := fn(append(Row(nil), r...))
		if len(nr) != len(t.schema.Columns) {
			return updated, fmt.Errorf("%s: %w", t.schema.Name, ErrWrongArity)
		}
		for i, c := range t.schema.Columns {
			if err := checkValue(c, nr[i]); err != nil {
				return updated, err
			}
		}
		for col, idx := range t.indexes {
			i := t.colIdx[col]
			oldKey, newKey := indexKey(r[i]), indexKey(nr[i])
			if oldKey != newKey {
				idx[oldKey] = removeID(idx[oldKey], id)
				idx[newKey] = append(idx[newKey], id)
			}
		}
		t.rows[id] = nr
		updated++
	}
	return updated, nil
}

// CreateIndex builds a hash index over a column, accelerating Eq selects.
func (t *Table) CreateIndex(col string) error {
	i, err := t.ColIndex(col)
	if err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.indexes[col]; ok {
		return fmt.Errorf("%s.%s: %w", t.schema.Name, col, ErrIndexExists)
	}
	idx := make(map[any][]int64)
	for id, r := range t.rows {
		key := indexKey(r[i])
		idx[key] = append(idx[key], id)
	}
	t.indexes[col] = idx
	return nil
}

// indexKey converts a value into a hashable index key. Bytes become
// strings; times normalise to UTC nanoseconds.
func indexKey(v any) any {
	switch x := v.(type) {
	case []byte:
		return "b:" + string(x)
	case time.Time:
		return x.UnixNano()
	default:
		return v
	}
}

func removeID(ids []int64, id int64) []int64 {
	for i, x := range ids {
		if x == id {
			return append(ids[:i], ids[i+1:]...)
		}
	}
	return ids
}
