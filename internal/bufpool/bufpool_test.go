package bufpool

import (
	"bytes"
	"testing"
)

func TestGetCapacity(t *testing.T) {
	for _, hint := range []int{0, 1, 255, 256, 257, 1024, 4096, 65536, 100000} {
		p := Get(hint)
		if len(*p) != 0 {
			t.Fatalf("Get(%d): len = %d, want 0", hint, len(*p))
		}
		if cap(*p) < hint {
			t.Fatalf("Get(%d): cap = %d, want >= hint", hint, cap(*p))
		}
		Put(p)
	}
}

func TestClassFor(t *testing.T) {
	cases := []struct{ n, want int }{
		{0, 0}, {1, 0}, {256, 0}, {257, 1}, {512, 1}, {513, 2},
		{1 << 16, maxClassBits - minClassBits}, {1<<16 + 1, -1},
	}
	for _, c := range cases {
		if got := classFor(c.n); got != c.want {
			t.Errorf("classFor(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestCopyOf(t *testing.T) {
	src := []byte("hello, bus")
	p := CopyOf(src)
	if !bytes.Equal(*p, src) {
		t.Fatalf("CopyOf = %q, want %q", *p, src)
	}
	// Mutating the copy must not touch the source.
	(*p)[0] = 'X'
	if src[0] != 'h' {
		t.Fatal("CopyOf aliases its source")
	}
	Put(p)
}

func TestPutGetRoundTrip(t *testing.T) {
	p := Get(1024)
	*p = append(*p, make([]byte, 700)...)
	Put(p)
	// A subsequent Get of the same class must yield a zero-length buffer
	// big enough for the request, whether or not it is the recycled one.
	q := Get(1000)
	if len(*q) != 0 || cap(*q) < 1000 {
		t.Fatalf("after round trip: len=%d cap=%d", len(*q), cap(*q))
	}
	Put(q)
	Put(nil) // must not panic
}

func TestPutOversizedDropped(t *testing.T) {
	big := make([]byte, 0, 1<<20)
	p := &big
	Put(p) // outside the pooled range: dropped, not corrupted
	small := make([]byte, 0, 16)
	Put(&small)
}

// TestGetAfterGrowth exercises the "caller re-points the container at the
// grown slice" pattern used by the daemon's envelope encoding.
func TestGetAfterGrowth(t *testing.T) {
	p := Get(256)
	b := *p
	for i := 0; i < 5000; i++ {
		b = append(b, byte(i))
	}
	*p = b // hand the grown backing array to the pool
	Put(p)
	q := Get(5000)
	if cap(*q) < 5000 {
		t.Fatalf("cap = %d, want >= 5000", cap(*q))
	}
	Put(q)
}
