// Package bufpool provides size-classed, sync.Pool-backed byte buffers for
// the publish→deliver hot path. Every publication used to pay several heap
// allocations per hop — the envelope encoding, the reliable layer's
// retransmit-window copy, the frame encoding — all of which have a short,
// well-defined lifetime. Pooling them keeps the steady-state hot path
// allocation-free.
//
// Ownership discipline (see DESIGN.md "Hot path & buffer ownership" for the
// full hand-off map): a buffer obtained with Get or CopyOf has exactly one
// owner at a time. The owner may hand the buffer's contents to a callee
// that does not retain them (the transport's Send/Broadcast, Conn.Publish,
// Conn.SendTo) and then Put it back; a buffer whose contents escape to an
// unknown-lifetime holder (a subscriber, a receive queue) must never be
// pooled — let the garbage collector have it.
//
// Buffers are grouped in power-of-two size classes between 256 B and
// 64 KB. Requests outside that range are served with plain allocations and
// silently dropped on Put, so misuse degrades to the garbage collector,
// never to corruption.
package bufpool

import (
	"math/bits"
	"sync"
)

const (
	minClassBits = 8  // 256 B: smallest pooled capacity
	maxClassBits = 16 // 64 KB: largest pooled capacity (one reliable batch)
	numClasses   = maxClassBits - minClassBits + 1
)

var pools [numClasses]sync.Pool

func init() {
	for i := range pools {
		size := 1 << (minClassBits + i)
		pools[i].New = func() any {
			b := make([]byte, 0, size)
			return &b
		}
	}
}

// classFor returns the smallest class whose buffers hold n bytes, or -1 if
// n exceeds the largest pooled class.
func classFor(n int) int {
	if n <= 1<<minClassBits {
		return 0
	}
	if n > 1<<maxClassBits {
		return -1
	}
	return bits.Len(uint(n-1)) - minClassBits
}

// Get returns a zero-length buffer with capacity at least hint. The caller
// owns it until Put; the pointer itself is the pooled object, so keep it
// around for the matching Put.
func Get(hint int) *[]byte {
	cls := classFor(hint)
	if cls < 0 {
		b := make([]byte, 0, hint)
		return &b
	}
	p := pools[cls].Get().(*[]byte)
	*p = (*p)[:0]
	return p
}

// CopyOf returns a pooled buffer holding a copy of b.
func CopyOf(b []byte) *[]byte {
	p := Get(len(b))
	*p = append(*p, b...)
	return p
}

// Put returns a buffer to its size class. The caller must not touch *p (or
// any slice aliasing it) afterwards. Buffers outside the pooled size range
// are dropped for the garbage collector.
func Put(p *[]byte) {
	if p == nil {
		return
	}
	c := cap(*p)
	if c < 1<<minClassBits || c > 1<<maxClassBits {
		return
	}
	// Floor class: every buffer in class i has capacity >= 1<<(minClassBits+i),
	// which is exactly what Get promises.
	cls := bits.Len(uint(c)) - 1 - minClassBits
	if cls >= numClasses {
		cls = numClasses - 1
	}
	pools[cls].Put(p)
}
