package wire

import (
	"testing"

	"infobus/internal/mop"
)

// FuzzUnmarshal: arbitrary bytes must never panic the decoder, and
// anything that decodes must re-encode.
func FuzzUnmarshal(f *testing.F) {
	_, dj, group := newsTypes(f)
	seed, err := Marshal(sampleStory(f, dj, group))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte{Magic0, Magic1, Version, 0, 0})
	f.Add([]byte{})
	f.Add([]byte{Magic0, Magic1, Version, 0, tagList, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F})
	f.Fuzz(func(t *testing.T, data []byte) {
		reg := mop.NewRegistry()
		v, err := Unmarshal(data, reg)
		if err != nil {
			return
		}
		if _, err := Marshal(v); err != nil {
			t.Fatalf("decoded value failed to re-encode: %v", err)
		}
	})
}
