package wire

import (
	"bytes"
	"testing"

	"infobus/internal/mop"
)

// FuzzUnmarshal: arbitrary bytes must never panic the decoder, and
// anything that decodes must re-encode.
func FuzzUnmarshal(f *testing.F) {
	_, dj, group := newsTypes(f)
	seed, err := Marshal(sampleStory(f, dj, group))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte{Magic0, Magic1, Version, 0, 0})
	f.Add([]byte{})
	f.Add([]byte{Magic0, Magic1, Version, 0, tagList, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F})
	f.Fuzz(func(t *testing.T, data []byte) {
		reg := mop.NewRegistry()
		v, err := Unmarshal(data, reg)
		if err != nil {
			return
		}
		if _, err := Marshal(v); err != nil {
			t.Fatalf("decoded value failed to re-encode: %v", err)
		}
	})
}

// FuzzUnmarshalCompact: the compact dictionary decoder must survive
// arbitrary bytes — including crafted def/ref counts (length caps) and
// class indices — with or without a warm TypeCache, and anything that fully
// decodes must re-encode through a SendDict.
func FuzzUnmarshalCompact(f *testing.F) {
	_, dj, group := newsTypes(f)
	story := sampleStory(f, dj, group)
	first, err := NewSendDict(0).Marshal(story) // all defs inline
	if err != nil {
		f.Fatal(err)
	}
	warm := NewSendDict(0)
	if _, err := warm.Marshal(story); err != nil {
		f.Fatal(err)
	}
	steady, err := warm.Marshal(story) // refs only
	if err != nil {
		f.Fatal(err)
	}
	defsOnly, err := MarshalDefs([]*mop.Type{dj})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(first)
	f.Add(steady)
	f.Add(defsOnly)
	f.Add([]byte{Magic0, Magic1, VersionCompact, 0, 0, tagNil})
	// Huge def/ref counts must hit the maxDictClasses cap, not allocate.
	f.Add([]byte{Magic0, Magic1, VersionCompact, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F})
	f.Add([]byte{Magic0, Magic1, VersionCompact, 0, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F})
	// Out-of-range class index.
	f.Add([]byte{Magic0, Magic1, VersionCompact, 0, 0, tagObject, 0x05})
	f.Fuzz(func(t *testing.T, data []byte) {
		reg := mop.NewRegistry()
		cache := NewTypeCache(0)
		v, err := UnmarshalWith(data, reg, cache)
		if err != nil {
			return
		}
		if _, err := NewSendDict(0).Marshal(v); err != nil {
			t.Fatalf("decoded value failed to re-encode: %v", err)
		}
	})
}

// FuzzStreamDecoder: the frame-stream decoder holds dictionary state across
// frames; arbitrary byte streams — however they split into frames — must
// never panic it, corrupt its cross-frame state, or bypass the frame length
// cap, and every cleanly decoded frame must re-encode.
func FuzzStreamDecoder(f *testing.F) {
	_, dj, group := newsTypes(f)
	story := sampleStory(f, dj, group)
	var stream bytes.Buffer
	enc := NewEncoder(&stream)
	for i := 0; i < 3; i++ { // frame 1 carries defs, 2-3 ride the dictionary
		if err := enc.Encode(story); err != nil {
			f.Fatal(err)
		}
	}
	f.Add(stream.Bytes())
	f.Add([]byte{})
	// Frame-length field far beyond the payload.
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0x7F, Magic0, Magic1, Version})
	// One good frame followed by a re-definition of the same class name
	// (stream.Bytes() truncated mid-second-frame).
	f.Add(stream.Bytes()[:stream.Len()/2])
	f.Fuzz(func(t *testing.T, data []byte) {
		dec := NewDecoder(bytes.NewReader(data), mop.NewRegistry())
		for i := 0; i < 64; i++ {
			v, err := dec.Decode()
			if err != nil {
				return
			}
			if _, err := Marshal(v); err != nil {
				t.Fatalf("frame %d decoded but failed to re-encode: %v", i, err)
			}
		}
	})
}
