package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"infobus/internal/mop"
)

// Encoder writes a stream of self-describing values with type-dictionary
// compression: each class description crosses the stream at most once, in
// the first frame that references it. RMI connections use this so that
// steady-state requests carry only value bytes.
//
// Frame layout: uvarint frame length, then the same body layout as Marshal
// (magic, version, type table, value) except the type table omits classes
// already sent on this stream.
//
// An Encoder is not safe for concurrent use.
type Encoder struct {
	w    *bufio.Writer
	sent map[*mop.Type]bool
	buf  []byte // reused frame scratch
}

// NewEncoder returns an Encoder writing frames to w.
func NewEncoder(w io.Writer) *Encoder {
	return &Encoder{w: bufio.NewWriter(w), sent: make(map[*mop.Type]bool)}
}

// Encode writes one value frame, including descriptions of any classes the
// stream has not seen yet, and flushes.
func (e *Encoder) Encode(v mop.Value) error {
	b := buffer{bytes: e.buf[:0]}
	b.writeByte(Magic0)
	b.writeByte(Magic1)
	b.writeByte(Version)

	var fresh []*mop.Type
	for _, t := range collectTypes(v) {
		if !e.sent[t] {
			fresh = append(fresh, t)
		}
	}
	b.writeUvarint(uint64(len(fresh)))
	for _, t := range fresh {
		writeTypeDef(&b, t)
	}
	if err := writeValue(&b, v, nil); err != nil {
		return err
	}
	e.buf = b.bytes
	// Only mark types as sent once the frame is fully assembled, so an
	// encoding error does not poison the dictionary.
	for _, t := range fresh {
		e.sent[t] = true
	}

	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(b.bytes)))
	if _, err := e.w.Write(hdr[:n]); err != nil {
		return err
	}
	if _, err := e.w.Write(b.bytes); err != nil {
		return err
	}
	return e.w.Flush()
}

// Decoder reads the frame stream produced by Encoder, accumulating the type
// dictionary across frames.
//
// A Decoder is not safe for concurrent use.
type Decoder struct {
	r   *bufio.Reader
	res resolver // persists defs and resolved classes across frames
	buf []byte   // reused frame buffer
}

// NewDecoder returns a Decoder reading frames from r and resolving classes
// against reg.
func NewDecoder(r io.Reader, reg *mop.Registry) *Decoder {
	return &Decoder{
		r:   bufio.NewReader(r),
		res: resolver{reg: reg, defs: make(map[string]*typeDef)},
	}
}

// Decode reads the next value frame. It returns io.EOF at a clean end of
// stream and io.ErrUnexpectedEOF for a frame cut short.
func (d *Decoder) Decode() (mop.Value, error) {
	frameLen, err := binary.ReadUvarint(d.r)
	if err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("reading frame length: %w", err)
	}
	if frameLen > maxLen {
		return nil, fmt.Errorf("frame of %d bytes: %w", frameLen, ErrTooLarge)
	}
	// Reuse the frame buffer across Decode calls: everything readValue
	// returns is copied out of the frame (readBytes/readString), so nothing
	// aliases it once Decode returns.
	if uint64(cap(d.buf)) < frameLen {
		d.buf = make([]byte, frameLen)
	}
	frame := d.buf[:frameLen]
	if _, err := io.ReadFull(d.r, frame); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	r := &reader{data: frame}
	if err := readHeader(r); err != nil {
		return nil, err
	}
	table, err := readTypeTable(r)
	if err != nil {
		return nil, err
	}
	for name, def := range table {
		// A well-behaved Encoder sends each class once; if a stream re-sends
		// a name, drop the cached resolution so the def is re-checked against
		// the registry instead of silently reusing a possibly-stale class.
		if _, again := d.res.defs[name]; again {
			delete(d.res.built, name)
		}
		d.res.defs[name] = def
	}
	v, err := readValue(r, &d.res, nil, 0)
	if err != nil {
		return nil, err
	}
	if r.pos != len(r.data) {
		return nil, fmt.Errorf("%d trailing bytes in frame: %w", len(r.data)-r.pos, ErrCorrupt)
	}
	return v, nil
}
