package wire

import (
	"fmt"
	"sync"

	"infobus/internal/mop"
)

// This file implements type-dictionary compression for the anonymous
// broadcast path. The stream Encoder/Decoder (stream.go) already amortizes
// class descriptions over a point-to-point connection; a broadcast medium
// has no connection to hang that state on, so the compact format makes the
// dictionary content-addressed instead:
//
//   - a SendDict on the publishing side tracks which class definitions it
//     has already put on the medium and thereafter sends only their
//     fingerprints (fingerprint.go);
//   - a TypeCache on every receiving side maps fingerprints back to
//     resolved *mop.Type, so a steady-state message decodes without
//     touching readTypeTable or the resolver at all;
//   - a receiver missing a fingerprint (late joiner, dropped datagram,
//     router segment boundary) reports MissingFingerprintsError and the bus
//     layer NAKs via the reserved _sys.class.req subject; any holder
//     answers with a MarshalDefs blob. The SendDict additionally re-sends
//     full definitions every ResendEvery messages, so progress never
//     depends on the NAK path.
//
// Compact message layout (VersionCompact):
//
//	'I' 'B' 0x02
//	uvarint ndefs, then ndefs × (8-byte fingerprint, typeDef)
//	uvarint nrefs, then nrefs × 8-byte fingerprint
//	value
//
// The defs followed by the refs form the message's class table; object
// values reference their class by uvarint index into that table rather than
// by name string, which is where most of the per-object overhead of the
// self-describing format lives.

// VersionCompact is the wire version byte of the compact dictionary format.
const VersionCompact = 2

// maxDictClasses bounds the def and ref counts of a compact message. A real
// publication references at most a handful of classes; the cap keeps a
// crafted count from provoking a huge allocation.
const maxDictClasses = 1 << 16

// DefaultResendEvery is the inline-fallback period: a class that has been
// sent as a fingerprint reference for this many consecutive messages gets
// its full definition re-sent.
const DefaultResendEvery = 64

// MissingFingerprintsError reports a compact message that references class
// fingerprints the receiver has not resolved yet. Definitions the message
// did carry inline have already been installed into the TypeCache; the
// caller should request the missing ones (the bus NAKs on _sys.class.req)
// and retry the decode once they arrive.
type MissingFingerprintsError struct {
	FPs []uint64
}

func (e *MissingFingerprintsError) Error() string {
	return fmt.Sprintf("wire: %d unresolved class fingerprints", len(e.FPs))
}

// IsCompact reports whether data begins with a compact-format header.
func IsCompact(data []byte) bool {
	return len(data) >= 3 && data[0] == Magic0 && data[1] == Magic1 && data[2] == VersionCompact
}

// CompactCarriesDefs reports whether a compact message carries at least one
// inline class definition (false for pure-reference steady-state messages,
// and for anything that is not compact).
func CompactCarriesDefs(data []byte) bool {
	if !IsCompact(data) {
		return false
	}
	r := &reader{data: data, pos: 3}
	n, err := r.readUvarint()
	return err == nil && n > 0
}

// ---------------------------------------------------------------------------
// Receive side: fingerprint → resolved type

// TypeCache maps class fingerprints to resolved class descriptors. It is
// content-addressed — a fingerprint names a structural definition, not a
// sender — so one cache serves every publisher on the bus, and a TDL
// redefinition (new structure ⇒ new fingerprint) can never hit a stale
// entry. Safe for concurrent use. A nil *TypeCache behaves as an always-miss,
// never-install cache.
type TypeCache struct {
	mu  sync.RWMutex
	m   map[uint64]*mop.Type
	max int
}

// DefaultTypeCacheSize bounds a TypeCache constructed with size <= 0.
const DefaultTypeCacheSize = 4096

// NewTypeCache returns a cache holding at most size entries (size <= 0
// selects DefaultTypeCacheSize). When full, new installs are skipped — the
// inline-fallback resend keeps overflowing classes decodable, matching the
// skip-on-full policy of the bus's other bounded caches.
func NewTypeCache(size int) *TypeCache {
	if size <= 0 {
		size = DefaultTypeCacheSize
	}
	return &TypeCache{m: make(map[uint64]*mop.Type), max: size}
}

// Lookup returns the resolved class for fp, if cached.
func (c *TypeCache) Lookup(fp uint64) (*mop.Type, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.RLock()
	t, ok := c.m[fp]
	c.mu.RUnlock()
	return t, ok
}

// Install records a resolved class under fp. Skipped when the cache is full
// and fp is not already present.
func (c *TypeCache) Install(fp uint64, t *mop.Type) {
	if c == nil || t == nil {
		return
	}
	c.mu.Lock()
	if _, ok := c.m[fp]; ok || len(c.m) < c.max {
		c.m[fp] = t
	}
	c.mu.Unlock()
}

// Len returns the number of cached classes.
func (c *TypeCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m)
}

// ---------------------------------------------------------------------------
// Send side: per-sender dictionary state

type sentEntry struct {
	fp       uint64
	lastFull uint64 // seq of the last message that carried the full def
}

// SendDict tracks which class definitions a publisher has already put on
// the medium, so AppendMarshal can emit fingerprints instead. Safe for
// concurrent use.
type SendDict struct {
	mu          sync.Mutex
	resendEvery uint64
	seq         uint64
	sent        map[*mop.Type]sentEntry
	byFP        map[uint64]*mop.Type
	// per-call scratch, reused under mu
	col  collector
	defs []*mop.Type
	refs []*mop.Type
	cidx map[*mop.Type]int
}

// NewSendDict returns a dictionary that re-sends a class's full definition
// after resendEvery consecutive reference-only messages (<= 0 selects
// DefaultResendEvery).
func NewSendDict(resendEvery int) *SendDict {
	if resendEvery <= 0 {
		resendEvery = DefaultResendEvery
	}
	return &SendDict{
		resendEvery: uint64(resendEvery),
		sent:        make(map[*mop.Type]sentEntry),
		byFP:        make(map[uint64]*mop.Type),
		col:         collector{seen: make(map[*mop.Type]bool)},
		cidx:        make(map[*mop.Type]int),
	}
}

// Marshal encodes v in the compact dictionary format, carrying full
// definitions only for classes this dictionary has not yet broadcast (or
// whose inline-fallback period has elapsed) and fingerprints for the rest.
func (s *SendDict) Marshal(v mop.Value) ([]byte, error) {
	return s.AppendMarshal(nil, v)
}

// AppendMarshal appends the compact encoding of v to dst.
func (s *SendDict) AppendMarshal(dst []byte, v mop.Value) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++

	// Collect the class closure in dependency order (reusing the scratch
	// collector) and split it into fresh defs vs already-broadcast refs.
	clear(s.col.seen)
	s.col.out = s.col.out[:0]
	s.col.value(v)
	s.defs, s.refs = s.defs[:0], s.refs[:0]
	clear(s.cidx)
	for _, t := range s.col.out {
		if e, ok := s.sent[t]; ok && s.seq-e.lastFull < s.resendEvery {
			s.refs = append(s.refs, t)
		} else {
			s.defs = append(s.defs, t)
		}
	}
	for i, t := range s.defs {
		s.cidx[t] = i
	}
	for i, t := range s.refs {
		s.cidx[t] = len(s.defs) + i
	}

	b := buffer{bytes: dst}
	b.writeByte(Magic0)
	b.writeByte(Magic1)
	b.writeByte(VersionCompact)
	b.writeUvarint(uint64(len(s.defs)))
	for _, t := range s.defs {
		b.writeUint64(Fingerprint(t))
		writeTypeDef(&b, t)
	}
	b.writeUvarint(uint64(len(s.refs)))
	for _, t := range s.refs {
		b.writeUint64(Fingerprint(t))
	}
	if err := writeValue(&b, v, s.cidx); err != nil {
		return nil, err
	}
	// Commit dictionary state only once the message is fully assembled, so
	// an encoding error does not leave classes marked as broadcast.
	for _, t := range s.defs {
		fp := Fingerprint(t)
		s.sent[t] = sentEntry{fp: fp, lastFull: s.seq}
		s.byFP[fp] = t
	}
	return b.bytes, nil
}

// LookupFP returns the class this dictionary has broadcast under fp, if
// any. The bus uses it to answer _sys.class.req NAKs at the origin.
func (s *SendDict) LookupFP(fp uint64) (*mop.Type, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.byFP[fp]
	return t, ok
}

// ---------------------------------------------------------------------------
// Compact decode

// UnmarshalWith decodes a self-describing message in either wire version,
// resolving class descriptions against reg and, for compact messages,
// against cache. Inline definitions are installed into cache as they
// resolve — even when the message cannot fully decode — so every
// def-carrying message a node sees warms its dictionary. A compact message
// referencing fingerprints absent from cache returns
// *MissingFingerprintsError.
func UnmarshalWith(data []byte, reg *mop.Registry, cache *TypeCache) (mop.Value, error) {
	r := &reader{data: data}
	ver, err := readHeaderVer(r)
	if err != nil {
		return nil, err
	}
	switch ver {
	case Version:
		return unmarshalLegacy(r, reg)
	case VersionCompact:
		res, table, missing, err := readCompactTable(r, reg, cache)
		if err != nil {
			return nil, err
		}
		if len(missing) > 0 {
			return nil, &MissingFingerprintsError{FPs: missing}
		}
		v, err := readValue(r, res, table, 0)
		if err != nil {
			return nil, err
		}
		if r.pos != len(r.data) {
			return nil, fmt.Errorf("%d trailing bytes: %w", len(r.data)-r.pos, ErrCorrupt)
		}
		return v, nil
	default:
		return nil, fmt.Errorf("version %d: %w", ver, ErrBadVersion)
	}
}

// readCompactTable parses and resolves the def and ref tables of a compact
// message, leaving r positioned at the value. The returned table is the
// message's class table (defs then refs) for index-based object decoding;
// missing lists referenced fingerprints the cache could not resolve. Defs
// that resolve are installed into cache regardless of missing refs; defs
// whose resolution depends on a missing ref are skipped (and their table
// slots left nil) — harmless because the caller does not decode the value
// when missing is non-empty.
func readCompactTable(r *reader, reg *mop.Registry, cache *TypeCache) (*resolver, []*mop.Type, []uint64, error) {
	ndefs, err := r.readUvarint()
	if err != nil {
		return nil, nil, nil, err
	}
	if ndefs > maxDictClasses {
		return nil, nil, nil, fmt.Errorf("def table of %d: %w", ndefs, ErrTooLarge)
	}
	type fpDef struct {
		fp  uint64
		def *typeDef
	}
	defs := make([]fpDef, 0, min(int(ndefs), 256))
	res := &resolver{reg: reg, strict: true}
	for i := uint64(0); i < ndefs; i++ {
		fp, err := r.readUint64()
		if err != nil {
			return nil, nil, nil, err
		}
		def, err := readTypeDef(r)
		if err != nil {
			return nil, nil, nil, err
		}
		defs = append(defs, fpDef{fp: fp, def: def})
		if res.defs == nil {
			res.defs = make(map[string]*typeDef, min(int(ndefs), 256))
		}
		res.defs[def.name] = def
	}
	nrefs, err := r.readUvarint()
	if err != nil {
		return nil, nil, nil, err
	}
	if nrefs > maxDictClasses {
		return nil, nil, nil, fmt.Errorf("ref table of %d: %w", nrefs, ErrTooLarge)
	}
	refs := make([]*mop.Type, 0, min(int(nrefs), 256))
	var missing []uint64
	for i := uint64(0); i < nrefs; i++ {
		fp, err := r.readUint64()
		if err != nil {
			return nil, nil, nil, err
		}
		if t, ok := cache.Lookup(fp); ok {
			refs = append(refs, t)
			// Seed the resolver so defs referencing this class by name bind
			// to the sender-fingerprinted descriptor, never to a same-named
			// (possibly older) local registration.
			res.remember(t.Name(), t)
		} else {
			refs = append(refs, nil)
			missing = append(missing, fp)
		}
	}
	table := make([]*mop.Type, 0, len(defs)+len(refs))
	for _, d := range defs {
		t, err := res.class(d.def.name)
		if err != nil {
			// With refs missing, a dependent def legitimately cannot
			// resolve; install what we can and let the NAK path fill the
			// rest. With the full closure present, failure is a real error.
			if len(missing) == 0 {
				return nil, nil, nil, err
			}
			table = append(table, nil)
			continue
		}
		cache.Install(d.fp, t)
		table = append(table, t)
	}
	table = append(table, refs...)
	return res, table, missing, nil
}

// MarshalDefs encodes the full definitions (closures included) of the given
// classes as a compact message with a nil value — the payload of a
// _sys.class.def reply. Decoding it with UnmarshalWith (or HarvestDefs)
// installs every definition into the receiver's TypeCache.
func MarshalDefs(types []*mop.Type) ([]byte, error) {
	var b buffer
	b.writeByte(Magic0)
	b.writeByte(Magic1)
	b.writeByte(VersionCompact)
	c := &collector{seen: make(map[*mop.Type]bool)}
	for _, t := range types {
		if t != nil && t.Kind() == mop.KindClass {
			c.class(t)
		}
	}
	b.writeUvarint(uint64(len(c.out)))
	for _, t := range c.out {
		b.writeUint64(Fingerprint(t))
		writeTypeDef(&b, t)
	}
	b.writeUvarint(0) // no refs
	if err := writeValue(&b, nil, nil); err != nil {
		return nil, err
	}
	return b.bytes, nil
}

// HarvestDefs installs whatever inline class definitions a compact message
// carries into reg and cache without decoding its value. Routers use it to
// become _sys.class.req answerers for definitions that crossed their
// segment; daemons use it on _sys.class.def replies. Messages that carry no
// definitions (or are not compact) are ignored. Unresolvable references are
// not an error — harvesting is best-effort by design.
func HarvestDefs(data []byte, reg *mop.Registry, cache *TypeCache) error {
	if !IsCompact(data) {
		return nil
	}
	r := &reader{data: data, pos: 3}
	_, _, _, err := readCompactTable(r, reg, cache)
	return err
}

// RequestedFPs extracts the fingerprint list from a _sys.class.req payload
// (a marshalled mop.List of int64 fingerprints).
func RequestedFPs(v mop.Value) []uint64 {
	list, ok := v.(mop.List)
	if !ok {
		return nil
	}
	fps := make([]uint64, 0, len(list))
	for _, e := range list {
		if n, ok := e.(int64); ok {
			fps = append(fps, uint64(n))
		}
	}
	return fps
}

// FPsValue builds the _sys.class.req payload for a set of fingerprints.
func FPsValue(fps []uint64) mop.Value {
	list := make(mop.List, 0, len(fps))
	for _, fp := range fps {
		list = append(list, int64(fp))
	}
	return list
}
