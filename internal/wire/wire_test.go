package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"
	"time"

	"infobus/internal/mop"
)

// newsTypes builds the Story hierarchy from §5 of the paper.
func newsTypes(t testing.TB) (story, dj, group *mop.Type) {
	t.Helper()
	group = mop.MustNewClass("IndustryGroup", nil, []mop.Attr{
		{Name: "code", Type: mop.String},
		{Name: "weight", Type: mop.Float},
	}, nil)
	story = mop.MustNewClass("Story", nil, []mop.Attr{
		{Name: "headline", Type: mop.String},
		{Name: "body", Type: mop.String},
		{Name: "sources", Type: mop.ListOf(mop.String)},
		{Name: "groups", Type: mop.ListOf(group)},
		{Name: "published", Type: mop.Time},
	}, []mop.Operation{
		{Name: "summary", Params: []mop.Param{{Name: "maxLen", Type: mop.Int}}, Result: mop.String},
	})
	dj = mop.MustNewClass("DowJonesStory", []*mop.Type{story}, []mop.Attr{
		{Name: "djCode", Type: mop.String},
	}, nil)
	return story, dj, group
}

func sampleStory(t testing.TB, dj, group *mop.Type) *mop.Object {
	t.Helper()
	g := mop.MustNew(group).MustSet("code", "AUTO").MustSet("weight", 0.75)
	return mop.MustNew(dj).
		MustSet("headline", "GM announces record earnings").
		MustSet("body", "Detroit — General Motors today ...").
		MustSet("sources", mop.List{"DJ", "wire-7"}).
		MustSet("groups", mop.List{g}).
		MustSet("published", time.Unix(749571200, 123).UTC()).
		MustSet("djCode", "GMC")
}

func TestRoundTripScalars(t *testing.T) {
	reg := mop.NewRegistry()
	values := []mop.Value{
		nil,
		true,
		false,
		int64(0),
		int64(-1),
		int64(1<<62 - 1),
		float64(3.14159),
		float64(-0.0),
		"",
		"hello, 世界",
		[]byte{},
		[]byte{0, 1, 2, 255},
		time.Unix(1, 999).UTC(),
		mop.List{},
		mop.List{int64(1), "two", 3.0, mop.List{true}},
	}
	for _, v := range values {
		data, err := Marshal(v)
		if err != nil {
			t.Fatalf("Marshal(%v): %v", v, err)
		}
		got, err := Unmarshal(data, reg)
		if err != nil {
			t.Fatalf("Unmarshal(%v): %v", v, err)
		}
		if !mop.EqualValues(v, got) {
			t.Errorf("round trip %#v -> %#v", v, got)
		}
	}
}

func TestRoundTripObjectIntoEmptyRegistry(t *testing.T) {
	_, dj, group := newsTypes(t)
	o := sampleStory(t, dj, group)
	data, err := Marshal(o)
	if err != nil {
		t.Fatal(err)
	}

	// The receiver has never seen any of these types.
	reg := mop.NewRegistry()
	got, err := Unmarshal(data, reg)
	if err != nil {
		t.Fatal(err)
	}
	obj := got.(*mop.Object)
	if obj.Type().Name() != "DowJonesStory" {
		t.Fatalf("decoded type = %q", obj.Type().Name())
	}
	// The full hierarchy was reconstructed and registered.
	for _, name := range []string{"Story", "DowJonesStory", "IndustryGroup"} {
		if !reg.Has(name) {
			t.Errorf("registry missing reconstructed class %q", name)
		}
	}
	st, _ := reg.Lookup("Story")
	if !obj.Type().IsSubtypeOf(st) {
		t.Error("reconstructed subtype relation missing")
	}
	// Operations travelled too (P2: signatures are introspectable remotely).
	if op, ok := obj.Type().Operation("summary"); !ok || op.Signature() != "summary(maxLen int) -> string" {
		t.Errorf("reconstructed operation = %+v", op)
	}
	if obj.MustGet("headline") != "GM announces record earnings" {
		t.Errorf("headline = %v", obj.MustGet("headline"))
	}
	groups := obj.MustGet("groups").(mop.List)
	if len(groups) != 1 || groups[0].(*mop.Object).MustGet("code") != "AUTO" {
		t.Errorf("groups = %v", groups)
	}
	if tm := obj.MustGet("published").(time.Time); !tm.Equal(time.Unix(749571200, 123)) {
		t.Errorf("published = %v", tm)
	}
}

func TestRoundTripPrefersLocalTypes(t *testing.T) {
	story, dj, group := newsTypes(t)
	o := sampleStory(t, dj, group)
	data, err := Marshal(o)
	if err != nil {
		t.Fatal(err)
	}
	reg := mop.NewRegistry()
	for _, c := range []*mop.Type{group, story, dj} {
		if err := reg.Register(c); err != nil {
			t.Fatal(err)
		}
	}
	got, err := Unmarshal(data, reg)
	if err != nil {
		t.Fatal(err)
	}
	obj := got.(*mop.Object)
	if obj.Type() != dj {
		t.Error("decoder should reuse the locally registered class descriptor")
	}
	if !obj.Equal(o) {
		t.Errorf("decoded object differs:\n%s\n%s", mop.Sprint(o), mop.Sprint(obj))
	}
}

func TestConflictingLocalType(t *testing.T) {
	_, dj, group := newsTypes(t)
	o := sampleStory(t, dj, group)
	data, err := Marshal(o)
	if err != nil {
		t.Fatal(err)
	}
	reg := mop.NewRegistry()
	// Local "Story" with an incompatible layout.
	imposter := mop.MustNewClass("Story", nil, []mop.Attr{{Name: "totally", Type: mop.Int}}, nil)
	if err := reg.Register(imposter); err != nil {
		t.Fatal(err)
	}
	if _, err := Unmarshal(data, reg); !errors.Is(err, ErrTypeConflict) {
		t.Errorf("Unmarshal with conflicting local type error = %v", err)
	}
}

func TestNilAndNestedNilObject(t *testing.T) {
	story, dj, group := newsTypes(t)
	holder := mop.MustNewClass("Holder", nil, []mop.Attr{
		{Name: "s", Type: story},
		{Name: "anything", Type: mop.Any},
	}, nil)
	h := mop.MustNew(holder) // s stays nil
	data, err := Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	reg := mop.NewRegistry()
	got, err := Unmarshal(data, reg)
	if err != nil {
		t.Fatal(err)
	}
	obj := got.(*mop.Object)
	if obj.MustGet("s") != nil {
		t.Errorf("nil class attr round trip = %v", obj.MustGet("s"))
	}
	// The declared attribute type Story must have been described even though
	// no instance travelled, so a later Set of a decoded Story works.
	if !reg.Has("Story") {
		t.Error("declared-but-nil class type was not described on the wire")
	}
	_ = dj
	_ = group
}

func TestAnySlotCarriesObject(t *testing.T) {
	_, dj, group := newsTypes(t)
	prop := mop.MustNewClass("Property", nil, []mop.Attr{
		{Name: "name", Type: mop.String},
		{Name: "value", Type: mop.Any},
	}, nil)
	p := mop.MustNew(prop).
		MustSet("name", "keywords").
		MustSet("value", mop.List{"gm", "earnings", sampleStory(t, dj, group)})
	data, err := Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(data, mop.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	val := got.(*mop.Object).MustGet("value").(mop.List)
	if len(val) != 3 {
		t.Fatalf("value = %v", val)
	}
	if val[2].(*mop.Object).MustGet("djCode") != "GMC" {
		t.Error("object inside Any slot did not round trip")
	}
}

func TestCorruptInputs(t *testing.T) {
	_, dj, group := newsTypes(t)
	data, err := Marshal(sampleStory(t, dj, group))
	if err != nil {
		t.Fatal(err)
	}
	reg := mop.NewRegistry()

	if _, err := Unmarshal(nil, reg); !errors.Is(err, ErrTruncated) {
		t.Errorf("empty input error = %v", err)
	}
	bad := append([]byte(nil), data...)
	bad[0] = 'X'
	if _, err := Unmarshal(bad, reg); !errors.Is(err, ErrBadMagic) {
		t.Errorf("bad magic error = %v", err)
	}
	bad = append([]byte(nil), data...)
	bad[2] = 99
	if _, err := Unmarshal(bad, reg); !errors.Is(err, ErrBadVersion) {
		t.Errorf("bad version error = %v", err)
	}
	// Truncation at every prefix must error, never panic or succeed.
	for i := 0; i < len(data)-1; i++ {
		if _, err := Unmarshal(data[:i], mop.NewRegistry()); err == nil {
			t.Fatalf("truncated prefix of %d bytes decoded successfully", i)
		}
	}
	// Trailing garbage detected.
	if _, err := Unmarshal(append(append([]byte(nil), data...), 0xFF), mop.NewRegistry()); !errors.Is(err, ErrCorrupt) {
		t.Errorf("trailing bytes error = %v", err)
	}
}

func TestUnmarshalableValue(t *testing.T) {
	if _, err := Marshal(mop.List{struct{}{}}); !errors.Is(err, ErrUnmarshalable) {
		t.Errorf("Marshal unsupported error = %v", err)
	}
}

func TestMarshalDeterministic(t *testing.T) {
	_, dj, group := newsTypes(t)
	o := sampleStory(t, dj, group)
	a, err := Marshal(o)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Marshal(o)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("Marshal is not deterministic")
	}
}

// Property: scalar lists of arbitrary content round trip.
func TestQuickListRoundTrip(t *testing.T) {
	reg := mop.NewRegistry()
	f := func(is []int64, ss []string, fs []float64, bs []byte, b bool) bool {
		l := mop.List{b}
		for _, i := range is {
			l = append(l, i)
		}
		for _, s := range ss {
			l = append(l, s)
		}
		for _, fl := range fs {
			l = append(l, fl)
		}
		l = append(l, append([]byte(nil), bs...))
		data, err := Marshal(l)
		if err != nil {
			return false
		}
		got, err := Unmarshal(data, reg)
		if err != nil {
			return false
		}
		return mop.EqualValues(l, got)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: random byte strings never panic the decoder.
func TestQuickDecoderRobust(t *testing.T) {
	reg := mop.NewRegistry()
	f := func(data []byte) bool {
		_, _ = Unmarshal(data, reg) // must not panic
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStreamDictionaryCompression(t *testing.T) {
	_, dj, group := newsTypes(t)
	var buf bytes.Buffer
	enc := NewEncoder(&buf)

	o := sampleStory(t, dj, group)
	if err := enc.Encode(o); err != nil {
		t.Fatal(err)
	}
	firstLen := buf.Len()
	if err := enc.Encode(o); err != nil {
		t.Fatal(err)
	}
	secondLen := buf.Len() - firstLen
	if secondLen >= firstLen {
		t.Errorf("second frame (%dB) should be smaller than first (%dB): dictionary not working", secondLen, firstLen)
	}

	dec := NewDecoder(&buf, mop.NewRegistry())
	for i := 0; i < 2; i++ {
		got, err := dec.Decode()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		obj := got.(*mop.Object)
		if obj.MustGet("djCode") != "GMC" {
			t.Errorf("frame %d djCode = %v", i, obj.MustGet("djCode"))
		}
	}
	if _, err := dec.Decode(); err != io.EOF {
		t.Errorf("end of stream error = %v, want io.EOF", err)
	}
}

func TestStreamScalarsAndTruncation(t *testing.T) {
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	for _, v := range []mop.Value{int64(7), "x", nil} {
		if err := enc.Encode(v); err != nil {
			t.Fatal(err)
		}
	}
	full := buf.Bytes()
	dec := NewDecoder(bytes.NewReader(full), mop.NewRegistry())
	for _, want := range []mop.Value{int64(7), "x", nil} {
		got, err := dec.Decode()
		if err != nil {
			t.Fatal(err)
		}
		if !mop.EqualValues(want, got) {
			t.Errorf("stream round trip %v -> %v", want, got)
		}
	}
	// A frame cut mid-body yields ErrUnexpectedEOF, not a hang or panic.
	dec = NewDecoder(bytes.NewReader(full[:len(full)-1]), mop.NewRegistry())
	_, _ = dec.Decode()
	_, _ = dec.Decode()
	if _, err := dec.Decode(); err == nil {
		t.Error("truncated final frame decoded successfully")
	}
}

func BenchmarkMarshalStory(b *testing.B) {
	_, dj, group := newsTypes(b)
	o := sampleStory(b, dj, group)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Marshal(o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUnmarshalStory(b *testing.B) {
	_, dj, group := newsTypes(b)
	data, err := Marshal(sampleStory(b, dj, group))
	if err != nil {
		b.Fatal(err)
	}
	reg := mop.NewRegistry()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Unmarshal(data, reg); err != nil {
			b.Fatal(err)
		}
	}
}

func TestDeepNestingRejected(t *testing.T) {
	// A crafted message of nested list tags must be rejected, not blow the
	// stack. Build header + N x (tagList, count=1) + a final nil.
	var b []byte
	b = append(b, Magic0, Magic1, Version, 0) // no type table
	for i := 0; i < 100_000; i++ {
		b = append(b, tagList, 1)
	}
	b = append(b, tagNil)
	if _, err := Unmarshal(b, mop.NewRegistry()); !errors.Is(err, ErrTooDeep) {
		t.Errorf("deep value error = %v, want ErrTooDeep", err)
	}
	// Legitimate nesting well under the limit still decodes.
	v := mop.Value(int64(1))
	for i := 0; i < 50; i++ {
		v = mop.List{v}
	}
	data, err := Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Unmarshal(data, mop.NewRegistry()); err != nil {
		t.Errorf("50-deep list rejected: %v", err)
	}
}
