package wire

import (
	"crypto/sha256"
	"encoding/binary"
	"sync"

	"infobus/internal/mop"
)

// Class fingerprints identify a class's structural definition — the exact
// bytes writeTypeDef would put on the wire for the class and everything it
// transitively references — with a 64-bit content hash. Two classes built
// independently from the same definition hash identically; any structural
// change (an attribute added by dynamic classing, a supertype swapped, an
// operation signature changed) produces a new fingerprint. The dictionary
// compression of the broadcast path (dict.go) keys its caches on these
// fingerprints, so a redefined class can never hit a stale cache entry: a
// different definition *is* a different fingerprint.
//
// The hash walks the class closure in the same deterministic order the
// encoder emits type tables (supertypes and referenced classes before their
// dependents), so it is cycle-safe for the same reason the encoder is:
// classes reference each other by name inside writeTypeDef, and the closure
// walk visits each class exactly once.

// fpCache memoizes Fingerprint per class descriptor. mop.Types are
// immutable, so a pointer's fingerprint never changes.
var fpCache sync.Map // *mop.Type -> uint64

// Fingerprint returns the structural content hash of a class type.
// Fingerprints only make sense for class definitions (fundamentals and
// lists are structural and never travel as defs); a non-class input
// returns 0, which no class hashes to in practice and which the dictionary
// machinery never emits.
func Fingerprint(t *mop.Type) uint64 {
	if t == nil || t.Kind() != mop.KindClass {
		return 0
	}
	if v, ok := fpCache.Load(t); ok {
		return v.(uint64)
	}
	c := &collector{seen: make(map[*mop.Type]bool)}
	c.class(t)
	var b buffer
	for _, ct := range c.out {
		writeTypeDef(&b, ct)
	}
	sum := sha256.Sum256(b.bytes)
	fp := binary.BigEndian.Uint64(sum[:8])
	fpCache.Store(t, fp)
	return fp
}
