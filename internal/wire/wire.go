// Package wire implements the self-describing wire format of the
// Information Bus. A marshalled message carries, ahead of the value itself,
// the structural description of every class the value references, so that a
// receiving node that has never seen the type can still decode, introspect,
// print, and store the object (principles P2 and P3: receivers adapt to new
// types at run time without re-programming or re-linking).
//
// Two modes are provided:
//
//   - Marshal/Unmarshal: one self-contained datagram, used by the bus's
//     connectionless broadcast publications.
//   - Encoder/Decoder: a stream with a type dictionary, used over RMI
//     connections; each class description crosses the stream once.
//
// Unmarshal resolves incoming class descriptions against a mop.Registry:
// already-known classes are reused (preserving local subtype relations);
// unknown classes are reconstructed and registered on the fly.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"time"

	"infobus/internal/mop"
)

// Version is the wire-format version carried in every message header.
const Version = 1

// The two magic bytes that open every wire message ("IB").
const (
	Magic0 = 'I'
	Magic1 = 'B'
)

// Value tags.
const (
	tagNil    = 0
	tagBool   = 1
	tagInt    = 2
	tagFloat  = 3
	tagString = 4
	tagBytes  = 5
	tagTime   = 6
	tagList   = 7
	tagObject = 8
)

// Type-reference tags (used inside class descriptions).
const (
	refBool   = 1
	refInt    = 2
	refFloat  = 3
	refString = 4
	refBytes  = 5
	refTime   = 6
	refAny    = 7
	refList   = 8
	refClass  = 9
)

// Wire format errors.
var (
	ErrBadMagic      = errors.New("wire: bad magic")
	ErrBadVersion    = errors.New("wire: unsupported version")
	ErrTruncated     = errors.New("wire: truncated message")
	ErrCorrupt       = errors.New("wire: corrupt message")
	ErrTypeConflict  = errors.New("wire: incoming type conflicts with registered type")
	ErrUnknownTag    = errors.New("wire: unknown value tag")
	ErrUnmarshalable = errors.New("wire: value cannot be marshalled")
	ErrTooLarge      = errors.New("wire: length field exceeds limit")
)

// maxLen bounds any single length field (string, bytes, list, table counts)
// to keep a corrupt or malicious message from provoking huge allocations.
const maxLen = 64 << 20

// maxValueDepth bounds value nesting on decode, so a crafted message of
// nested list tags cannot overflow the goroutine stack.
const maxValueDepth = 1000

// maxRefDepth bounds type-reference nesting (list<list<...>>).
const maxRefDepth = 100

// ErrTooDeep reports a message nested beyond the decoder's limits.
var ErrTooDeep = errors.New("wire: value or type nested too deeply")

// Marshal encodes a value as a self-contained, self-describing message.
func Marshal(v mop.Value) ([]byte, error) {
	return AppendMarshal(nil, v)
}

// AppendMarshal appends the marshalled encoding of v to dst and returns the
// extended slice. It lets hot-path callers reuse a scratch buffer; the bytes
// appended are identical to Marshal's output.
func AppendMarshal(dst []byte, v mop.Value) ([]byte, error) {
	b := buffer{bytes: dst}
	b.writeByte(Magic0)
	b.writeByte(Magic1)
	b.writeByte(Version)

	types := collectTypes(v)
	b.writeUvarint(uint64(len(types)))
	for _, t := range types {
		writeTypeDef(&b, t)
	}
	if err := writeValue(&b, v, nil); err != nil {
		return nil, err
	}
	return b.bytes, nil
}

// Unmarshal decodes a self-describing message, resolving or registering
// class descriptions in reg. It accepts both the self-contained format and
// the compact dictionary format (dict.go), but without a TypeCache a
// compact message can only decode if it carries all of its definitions
// inline; use UnmarshalWith on paths that receive steady-state compact
// traffic.
func Unmarshal(data []byte, reg *mop.Registry) (mop.Value, error) {
	return UnmarshalWith(data, reg, nil)
}

// unmarshalLegacy decodes the body of a Version-1 message (r is positioned
// just past the header).
func unmarshalLegacy(r *reader, reg *mop.Registry) (mop.Value, error) {
	table, err := readTypeTable(r)
	if err != nil {
		return nil, err
	}
	res := &resolver{reg: reg, defs: table}
	v, err := readValue(r, res, nil, 0)
	if err != nil {
		return nil, err
	}
	if r.pos != len(r.data) {
		return nil, fmt.Errorf("%d trailing bytes: %w", len(r.data)-r.pos, ErrCorrupt)
	}
	return v, nil
}

// readHeaderVer validates the magic bytes and returns the version byte,
// which the caller dispatches on.
func readHeaderVer(r *reader) (byte, error) {
	m0, err0 := r.readByte()
	m1, err1 := r.readByte()
	ver, err2 := r.readByte()
	if err0 != nil || err1 != nil || err2 != nil {
		return 0, ErrTruncated
	}
	if m0 != Magic0 || m1 != Magic1 {
		return 0, ErrBadMagic
	}
	return ver, nil
}

func readHeader(r *reader) error {
	ver, err := readHeaderVer(r)
	if err != nil {
		return err
	}
	if ver != Version {
		return fmt.Errorf("version %d: %w", ver, ErrBadVersion)
	}
	return nil
}

// ---------------------------------------------------------------------------
// Type collection (encoder side)

// collectTypes gathers every class type reachable from v — through dynamic
// object values, their declared attribute types, and supertypes — in an
// order where every class precedes the classes that reference it, so the
// decoder can build them in one pass.
func collectTypes(v mop.Value) []*mop.Type {
	c := &collector{seen: make(map[*mop.Type]bool)}
	c.value(v)
	return c.out
}

type collector struct {
	seen map[*mop.Type]bool
	out  []*mop.Type
}

func (c *collector) value(v mop.Value) {
	switch x := v.(type) {
	case mop.List:
		for _, e := range x {
			c.value(e)
		}
	case *mop.Object:
		if x != nil {
			c.class(x.Type())
			for i := range x.Type().Attrs() {
				c.value(x.GetAt(i))
			}
		}
	}
}

func (c *collector) typ(t *mop.Type) {
	switch t.Kind() {
	case mop.KindList:
		c.typ(t.Elem())
	case mop.KindClass:
		c.class(t)
	}
}

func (c *collector) class(t *mop.Type) {
	if c.seen[t] {
		return
	}
	c.seen[t] = true
	for _, s := range t.Supertypes() {
		c.class(s)
	}
	for _, a := range t.OwnAttrs() {
		c.typ(a.Type)
	}
	for _, op := range t.Operations() {
		for _, p := range op.Params {
			c.typ(p.Type)
		}
		if op.Result != nil {
			c.typ(op.Result)
		}
	}
	c.out = append(c.out, t)
}

// ---------------------------------------------------------------------------
// Type descriptions

func writeTypeDef(b *buffer, t *mop.Type) {
	b.writeString(t.Name())
	supers := t.Supertypes()
	b.writeUvarint(uint64(len(supers)))
	for _, s := range supers {
		b.writeString(s.Name())
	}
	own := t.OwnAttrs()
	b.writeUvarint(uint64(len(own)))
	for _, a := range own {
		b.writeString(a.Name)
		writeTypeRef(b, a.Type)
	}
	ops := t.Operations()
	b.writeUvarint(uint64(len(ops)))
	for _, op := range ops {
		b.writeString(op.Name)
		b.writeUvarint(uint64(len(op.Params)))
		for _, p := range op.Params {
			b.writeString(p.Name)
			writeTypeRef(b, p.Type)
		}
		if op.Result != nil {
			b.writeByte(1)
			writeTypeRef(b, op.Result)
		} else {
			b.writeByte(0)
		}
	}
}

func writeTypeRef(b *buffer, t *mop.Type) {
	switch t.Kind() {
	case mop.KindBool:
		b.writeByte(refBool)
	case mop.KindInt:
		b.writeByte(refInt)
	case mop.KindFloat:
		b.writeByte(refFloat)
	case mop.KindString:
		b.writeByte(refString)
	case mop.KindBytes:
		b.writeByte(refBytes)
	case mop.KindTime:
		b.writeByte(refTime)
	case mop.KindAny:
		b.writeByte(refAny)
	case mop.KindList:
		b.writeByte(refList)
		writeTypeRef(b, t.Elem())
	case mop.KindClass:
		b.writeByte(refClass)
		b.writeString(t.Name())
	default:
		panic(fmt.Sprintf("wire: type %q has invalid kind", t.Name()))
	}
}

// typeDef is the decoded structural description of one class.
type typeDef struct {
	name   string
	supers []string
	attrs  []attrDef
	ops    []opDef
}

type attrDef struct {
	name string
	ref  typeRef
}

type opDef struct {
	name      string
	params    []attrDef
	hasResult bool
	result    typeRef
}

// typeRef is a decoded type reference.
type typeRef struct {
	tag  byte
	elem *typeRef // refList
	name string   // refClass
}

func readTypeTable(r *reader) (map[string]*typeDef, error) {
	n, err := r.readUvarint()
	if err != nil {
		return nil, err
	}
	if n > maxLen {
		return nil, fmt.Errorf("type table of %d: %w", n, ErrTooLarge)
	}
	table := make(map[string]*typeDef, min(int(n), 1024))
	for i := uint64(0); i < n; i++ {
		def, err := readTypeDef(r)
		if err != nil {
			return nil, err
		}
		table[def.name] = def
	}
	return table, nil
}

func readTypeDef(r *reader) (*typeDef, error) {
	name, err := r.readString()
	if err != nil {
		return nil, err
	}
	def := &typeDef{name: name}
	ns, err := r.readUvarint()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < ns; i++ {
		s, err := r.readString()
		if err != nil {
			return nil, err
		}
		def.supers = append(def.supers, s)
	}
	na, err := r.readUvarint()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < na; i++ {
		a, err := readAttrDef(r)
		if err != nil {
			return nil, err
		}
		def.attrs = append(def.attrs, a)
	}
	no, err := r.readUvarint()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < no; i++ {
		var op opDef
		if op.name, err = r.readString(); err != nil {
			return nil, err
		}
		np, err := r.readUvarint()
		if err != nil {
			return nil, err
		}
		for j := uint64(0); j < np; j++ {
			p, err := readAttrDef(r)
			if err != nil {
				return nil, err
			}
			op.params = append(op.params, p)
		}
		has, err := r.readByte()
		if err != nil {
			return nil, err
		}
		if has != 0 {
			op.hasResult = true
			if op.result, err = readTypeRef(r); err != nil {
				return nil, err
			}
		}
		def.ops = append(def.ops, op)
	}
	return def, nil
}

func readAttrDef(r *reader) (attrDef, error) {
	name, err := r.readString()
	if err != nil {
		return attrDef{}, err
	}
	ref, err := readTypeRef(r)
	if err != nil {
		return attrDef{}, err
	}
	return attrDef{name: name, ref: ref}, nil
}

func readTypeRef(r *reader) (typeRef, error) {
	return readTypeRefDepth(r, 0)
}

func readTypeRefDepth(r *reader, depth int) (typeRef, error) {
	if depth > maxRefDepth {
		return typeRef{}, ErrTooDeep
	}
	tag, err := r.readByte()
	if err != nil {
		return typeRef{}, err
	}
	ref := typeRef{tag: tag}
	switch tag {
	case refBool, refInt, refFloat, refString, refBytes, refTime, refAny:
	case refList:
		elem, err := readTypeRefDepth(r, depth+1)
		if err != nil {
			return typeRef{}, err
		}
		ref.elem = &elem
	case refClass:
		if ref.name, err = r.readString(); err != nil {
			return typeRef{}, err
		}
	default:
		return typeRef{}, fmt.Errorf("type ref tag %d: %w", tag, ErrCorrupt)
	}
	return ref, nil
}

// ---------------------------------------------------------------------------
// Type resolution (decoder side)

// resolver turns typeDefs into *mop.Type, preferring classes already in the
// registry and registering newly built ones. built is allocated lazily so a
// message that carries no classes (the common broadcast payload) resolves
// nothing and allocates nothing.
type resolver struct {
	reg   *mop.Registry
	defs  map[string]*typeDef
	built map[string]*mop.Type
	depth int
	// strict refuses to bind a class name to a registry entry unless the
	// message carries a def for it (so the binding is compatibility-checked)
	// or the name was pre-seeded into built (fingerprint-matched). Compact
	// dictionary messages (dict.go) always carry their whole class closure
	// as defs+fingerprints, so under strict mode an unmatched name is a
	// missing-fingerprint condition — never a silent bind to a local class
	// that may predate a TDL redefinition.
	strict bool
}

// remember records a resolved class, allocating the memo on first use.
func (res *resolver) remember(name string, t *mop.Type) {
	if res.built == nil {
		res.built = make(map[string]*mop.Type, 4)
	}
	res.built[name] = t
}

// maxClassDepth bounds supertype-chain recursion while rebuilding classes
// from a (possibly crafted) message.
const maxClassDepth = 200

func (res *resolver) class(name string) (*mop.Type, error) {
	if t, ok := res.built[name]; ok {
		return t, nil
	}
	res.depth++
	defer func() { res.depth-- }()
	if res.depth > maxClassDepth {
		return nil, fmt.Errorf("class %q: %w", name, ErrTooDeep)
	}
	if res.reg != nil {
		if t, err := res.reg.Lookup(name); err == nil {
			if t.Kind() != mop.KindClass {
				return nil, fmt.Errorf("%q is not a class: %w", name, ErrTypeConflict)
			}
			if def, ok := res.defs[name]; ok {
				if err := res.checkCompatible(t, def); err != nil {
					return nil, err
				}
			} else if res.strict {
				return nil, fmt.Errorf("class %q not carried by compact message: %w", name, ErrCorrupt)
			}
			res.remember(name, t)
			return t, nil
		}
	}
	def, ok := res.defs[name]
	if !ok {
		return nil, fmt.Errorf("class %q not described in message: %w", name, ErrCorrupt)
	}
	// Placeholder to break cycles: a class that (transitively) references
	// itself through an attribute type is legal; the paper's Story objects
	// contain lists of structured objects. Build supers first, then attrs.
	supers := make([]*mop.Type, 0, len(def.supers))
	for _, s := range def.supers {
		st, err := res.class(s)
		if err != nil {
			return nil, err
		}
		supers = append(supers, st)
	}
	attrs := make([]mop.Attr, 0, len(def.attrs))
	for _, a := range def.attrs {
		at, err := res.typeOf(a.ref)
		if err != nil {
			return nil, err
		}
		attrs = append(attrs, mop.Attr{Name: a.name, Type: at})
	}
	ops := make([]mop.Operation, 0, len(def.ops))
	for _, od := range def.ops {
		op := mop.Operation{Name: od.name}
		for _, p := range od.params {
			pt, err := res.typeOf(p.ref)
			if err != nil {
				return nil, err
			}
			op.Params = append(op.Params, mop.Param{Name: p.name, Type: pt})
		}
		if od.hasResult {
			rt, err := res.typeOf(od.result)
			if err != nil {
				return nil, err
			}
			op.Result = rt
		}
		ops = append(ops, op)
	}
	t, err := mop.NewClass(name, supers, attrs, ops)
	if err != nil {
		return nil, fmt.Errorf("rebuilding class %q: %w", name, err)
	}
	res.remember(name, t)
	if res.reg != nil {
		if err := res.reg.Register(t); err != nil {
			// A concurrent decode may have registered the same name first;
			// fall back to the registered descriptor.
			if regd, lerr := res.reg.Lookup(name); lerr == nil {
				if cerr := res.checkCompatible(regd, def); cerr != nil {
					return nil, cerr
				}
				res.remember(name, regd)
				return regd, nil
			}
			return nil, err
		}
	}
	return t, nil
}

func (res *resolver) typeOf(ref typeRef) (*mop.Type, error) {
	switch ref.tag {
	case refBool:
		return mop.Bool, nil
	case refInt:
		return mop.Int, nil
	case refFloat:
		return mop.Float, nil
	case refString:
		return mop.String, nil
	case refBytes:
		return mop.Bytes, nil
	case refTime:
		return mop.Time, nil
	case refAny:
		return mop.Any, nil
	case refList:
		elem, err := res.typeOf(*ref.elem)
		if err != nil {
			return nil, err
		}
		return mop.ListOf(elem), nil
	case refClass:
		return res.class(ref.name)
	default:
		return nil, fmt.Errorf("type ref tag %d: %w", ref.tag, ErrCorrupt)
	}
}

// checkCompatible verifies that a locally registered class matches an
// incoming description closely enough to decode instances: identical
// flattened attribute names in the same slot order with identical type
// references. (Operations do not affect data layout and are not compared.)
func (res *resolver) checkCompatible(local *mop.Type, def *typeDef) error {
	flat, err := res.flatten(def, make(map[string]bool))
	if err != nil {
		return err
	}
	attrs := local.Attrs()
	if len(attrs) != len(flat) {
		return fmt.Errorf("class %q: local has %d attributes, message describes %d: %w",
			def.name, len(attrs), len(flat), ErrTypeConflict)
	}
	for i, a := range attrs {
		if a.Name != flat[i].name {
			return fmt.Errorf("class %q slot %d: local %q vs message %q: %w",
				def.name, i, a.Name, flat[i].name, ErrTypeConflict)
		}
		if !refMatches(a.Type, flat[i].ref) {
			return fmt.Errorf("class %q attribute %q: type mismatch: %w",
				def.name, a.Name, ErrTypeConflict)
		}
	}
	return nil
}

// flatten reproduces mop's attribute flattening over raw typeDefs so that a
// local class can be compared slot-by-slot with an incoming description.
// Classes referenced as supertypes may be known locally rather than carried
// in the message.
func (res *resolver) flatten(def *typeDef, inProgress map[string]bool) ([]attrDef, error) {
	if inProgress[def.name] {
		return nil, fmt.Errorf("class %q: cyclic supertypes: %w", def.name, ErrCorrupt)
	}
	inProgress[def.name] = true
	defer delete(inProgress, def.name)

	var out []attrDef
	seen := make(map[string]bool)
	add := func(a attrDef) {
		if !seen[a.name] {
			seen[a.name] = true
			out = append(out, a)
		}
	}
	for _, s := range def.supers {
		if sdef, ok := res.defs[s]; ok {
			flat, err := res.flatten(sdef, inProgress)
			if err != nil {
				return nil, err
			}
			for _, a := range flat {
				add(a)
			}
			continue
		}
		// Supertype known only locally: trust the registry's layout.
		st, err := res.class(s)
		if err != nil {
			return nil, err
		}
		for _, a := range st.Attrs() {
			add(attrDef{name: a.Name, ref: refOf(a.Type)})
		}
	}
	for _, a := range def.attrs {
		add(a)
	}
	return out, nil
}

func refOf(t *mop.Type) typeRef {
	switch t.Kind() {
	case mop.KindBool:
		return typeRef{tag: refBool}
	case mop.KindInt:
		return typeRef{tag: refInt}
	case mop.KindFloat:
		return typeRef{tag: refFloat}
	case mop.KindString:
		return typeRef{tag: refString}
	case mop.KindBytes:
		return typeRef{tag: refBytes}
	case mop.KindTime:
		return typeRef{tag: refTime}
	case mop.KindAny:
		return typeRef{tag: refAny}
	case mop.KindList:
		e := refOf(t.Elem())
		return typeRef{tag: refList, elem: &e}
	case mop.KindClass:
		return typeRef{tag: refClass, name: t.Name()}
	default:
		return typeRef{}
	}
}

func refMatches(t *mop.Type, ref typeRef) bool {
	got := refOf(t)
	return refEqual(got, ref)
}

func refEqual(a, b typeRef) bool {
	if a.tag != b.tag || a.name != b.name {
		return false
	}
	if a.elem == nil || b.elem == nil {
		return a.elem == b.elem
	}
	return refEqual(*a.elem, *b.elem)
}

// ---------------------------------------------------------------------------
// Values

// writeValue encodes a tagged value. When cidx is non-nil (compact
// dictionary mode, dict.go) objects reference their class by index into the
// message's class table instead of by name string, which is where most of
// the per-object overhead of the self-describing format goes.
func writeValue(b *buffer, v mop.Value, cidx map[*mop.Type]int) error {
	switch x := v.(type) {
	case nil:
		b.writeByte(tagNil)
	case bool:
		b.writeByte(tagBool)
		if x {
			b.writeByte(1)
		} else {
			b.writeByte(0)
		}
	case int64:
		b.writeByte(tagInt)
		b.writeVarint(x)
	case float64:
		b.writeByte(tagFloat)
		b.writeUint64(math.Float64bits(x))
	case string:
		b.writeByte(tagString)
		b.writeString(x)
	case []byte:
		b.writeByte(tagBytes)
		b.writeUvarint(uint64(len(x)))
		b.bytes = append(b.bytes, x...)
	case time.Time:
		b.writeByte(tagTime)
		b.writeVarint(x.UnixNano())
	case mop.List:
		b.writeByte(tagList)
		b.writeUvarint(uint64(len(x)))
		for _, e := range x {
			if err := writeValue(b, e, cidx); err != nil {
				return err
			}
		}
	case *mop.Object:
		if x == nil {
			b.writeByte(tagNil)
			return nil
		}
		b.writeByte(tagObject)
		if cidx != nil {
			i, ok := cidx[x.Type()]
			if !ok {
				return fmt.Errorf("class %q not in message class table: %w",
					x.Type().Name(), ErrUnmarshalable)
			}
			b.writeUvarint(uint64(i))
		} else {
			b.writeString(x.Type().Name())
		}
		for i := range x.Type().Attrs() {
			if err := writeValue(b, x.GetAt(i), cidx); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("dynamic type %T: %w", v, ErrUnmarshalable)
	}
	return nil
}

// readValue decodes a tagged value. When table is non-nil (compact
// dictionary mode) objects name their class by index into table; otherwise
// by name, resolved through res.
func readValue(r *reader, res *resolver, table []*mop.Type, depth int) (mop.Value, error) {
	if depth > maxValueDepth {
		return nil, ErrTooDeep
	}
	tag, err := r.readByte()
	if err != nil {
		return nil, err
	}
	switch tag {
	case tagNil:
		return nil, nil
	case tagBool:
		bb, err := r.readByte()
		if err != nil {
			return nil, err
		}
		return bb != 0, nil
	case tagInt:
		return r.readVarint()
	case tagFloat:
		u, err := r.readUint64()
		if err != nil {
			return nil, err
		}
		return math.Float64frombits(u), nil
	case tagString:
		return r.readString()
	case tagBytes:
		n, err := r.readUvarint()
		if err != nil {
			return nil, err
		}
		return r.readBytes(int(n))
	case tagTime:
		ns, err := r.readVarint()
		if err != nil {
			return nil, err
		}
		return time.Unix(0, ns).UTC(), nil
	case tagList:
		n, err := r.readUvarint()
		if err != nil {
			return nil, err
		}
		if n > maxLen {
			return nil, fmt.Errorf("list of %d: %w", n, ErrTooLarge)
		}
		out := make(mop.List, 0, min(int(n), 4096))
		for i := uint64(0); i < n; i++ {
			e, err := readValue(r, res, table, depth+1)
			if err != nil {
				return nil, err
			}
			out = append(out, e)
		}
		return out, nil
	case tagObject:
		var t *mop.Type
		if table != nil {
			idx, err := r.readUvarint()
			if err != nil {
				return nil, err
			}
			if idx >= uint64(len(table)) {
				return nil, fmt.Errorf("class index %d of %d: %w", idx, len(table), ErrCorrupt)
			}
			t = table[idx]
		} else {
			name, err := r.readString()
			if err != nil {
				return nil, err
			}
			t, err = res.class(name)
			if err != nil {
				return nil, err
			}
		}
		o, err := mop.New(t)
		if err != nil {
			return nil, err
		}
		for i := 0; i < t.NumAttrs(); i++ {
			v, err := readValue(r, res, table, depth+1)
			if err != nil {
				return nil, err
			}
			if err := o.SetAt(i, v); err != nil {
				return nil, fmt.Errorf("decoding %q: %w", t.Name(), err)
			}
		}
		return o, nil
	default:
		return nil, fmt.Errorf("value tag %d: %w", tag, ErrUnknownTag)
	}
}

// ---------------------------------------------------------------------------
// Low-level buffer and reader

type buffer struct {
	bytes   []byte
	scratch [binary.MaxVarintLen64]byte
}

func (b *buffer) writeByte(c byte) { b.bytes = append(b.bytes, c) }

func (b *buffer) writeUvarint(u uint64) {
	n := binary.PutUvarint(b.scratch[:], u)
	b.bytes = append(b.bytes, b.scratch[:n]...)
}

func (b *buffer) writeVarint(i int64) {
	n := binary.PutVarint(b.scratch[:], i)
	b.bytes = append(b.bytes, b.scratch[:n]...)
}

func (b *buffer) writeUint64(u uint64) {
	var tmp [8]byte
	binary.BigEndian.PutUint64(tmp[:], u)
	b.bytes = append(b.bytes, tmp[:]...)
}

func (b *buffer) writeString(s string) {
	b.writeUvarint(uint64(len(s)))
	b.bytes = append(b.bytes, s...)
}

type reader struct {
	data []byte
	pos  int
}

func (r *reader) readByte() (byte, error) {
	if r.pos >= len(r.data) {
		return 0, ErrTruncated
	}
	c := r.data[r.pos]
	r.pos++
	return c, nil
}

func (r *reader) readUvarint() (uint64, error) {
	u, n := binary.Uvarint(r.data[r.pos:])
	if n <= 0 {
		return 0, ErrTruncated
	}
	r.pos += n
	return u, nil
}

func (r *reader) readVarint() (int64, error) {
	i, n := binary.Varint(r.data[r.pos:])
	if n <= 0 {
		return 0, ErrTruncated
	}
	r.pos += n
	return i, nil
}

func (r *reader) readUint64() (uint64, error) {
	if r.pos+8 > len(r.data) {
		return 0, ErrTruncated
	}
	u := binary.BigEndian.Uint64(r.data[r.pos:])
	r.pos += 8
	return u, nil
}

func (r *reader) readBytes(n int) ([]byte, error) {
	if n < 0 || n > maxLen {
		return nil, ErrTooLarge
	}
	if r.pos+n > len(r.data) {
		return nil, ErrTruncated
	}
	out := append([]byte(nil), r.data[r.pos:r.pos+n]...)
	r.pos += n
	return out, nil
}

func (r *reader) readString() (string, error) {
	n, err := r.readUvarint()
	if err != nil {
		return "", err
	}
	if n > maxLen {
		return "", ErrTooLarge
	}
	if r.pos+int(n) > len(r.data) {
		return "", ErrTruncated
	}
	s := string(r.data[r.pos : r.pos+int(n)])
	r.pos += int(n)
	return s, nil
}
