package wire

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"infobus/internal/mop"
)

// marshalLegacy is the reference encoding used to compare decoded values:
// the self-contained v1 format is deterministic, so two values are equal
// iff their legacy encodings are byte-identical.
func marshalLegacy(t *testing.T, v mop.Value) []byte {
	t.Helper()
	data, err := Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestFingerprintContentAddressed(t *testing.T) {
	_, dj1, _ := newsTypes(t)
	_, dj2, _ := newsTypes(t) // same structure, distinct *mop.Type values
	if dj1 == dj2 {
		t.Fatal("helper returned identical pointers")
	}
	if Fingerprint(dj1) == 0 {
		t.Fatal("class fingerprint must be non-zero")
	}
	if Fingerprint(dj1) != Fingerprint(dj2) {
		t.Fatal("same structure must fingerprint identically")
	}
	// A structural change — one extra attribute — must change the print.
	other := mop.MustNewClass("DowJonesStory", nil, []mop.Attr{
		{Name: "djCode", Type: mop.String},
		{Name: "desk", Type: mop.String},
	}, nil)
	if Fingerprint(other) == Fingerprint(dj1) {
		t.Fatal("different structure must fingerprint differently")
	}
	if Fingerprint(nil) != 0 || Fingerprint(mop.Int) != 0 {
		t.Fatal("nil and non-class types must fingerprint to zero")
	}
}

func TestCompactRoundTrip(t *testing.T) {
	_, dj, group := newsTypes(t)
	obj := sampleStory(t, dj, group)
	want := marshalLegacy(t, obj)

	dict := NewSendDict(0)
	cache := NewTypeCache(0)
	reg := mop.NewRegistry()

	// First message carries the full class closure inline.
	first, err := dict.Marshal(obj)
	if err != nil {
		t.Fatal(err)
	}
	if !IsCompact(first) {
		t.Fatal("SendDict output must carry the compact header")
	}
	if !CompactCarriesDefs(first) {
		t.Fatal("first message must carry inline definitions")
	}
	v, err := UnmarshalWith(first, reg, cache)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(marshalLegacy(t, v), want) {
		t.Fatal("first compact message decoded to a different value")
	}
	if cache.Len() == 0 {
		t.Fatal("decoding a defs-carrying message must warm the cache")
	}

	// Steady state: fingerprints only, decoded through the cache.
	steady, err := dict.Marshal(obj)
	if err != nil {
		t.Fatal(err)
	}
	if CompactCarriesDefs(steady) {
		t.Fatal("second message must be reference-only")
	}
	v, err = UnmarshalWith(steady, reg, cache)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(marshalLegacy(t, v), want) {
		t.Fatal("steady-state compact message decoded to a different value")
	}
}

// TestCompactDefReferencingCachedClass covers the mixed table: a class
// first broadcast later appears as a *reference* while a new class whose
// definition mentions it by name arrives as a *def*. The resolver must
// bind that name to the fingerprint-cached descriptor.
func TestCompactDefReferencingCachedClass(t *testing.T) {
	_, dj, group := newsTypes(t)
	dict := NewSendDict(0)
	cache := NewTypeCache(0)
	reg := mop.NewRegistry()

	g := mop.MustNew(group).MustSet("code", "AUTO").MustSet("weight", 0.5)
	first, err := dict.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalWith(first, reg, cache); err != nil {
		t.Fatal(err)
	}

	// Story/DowJonesStory defs reference IndustryGroup, which now rides as
	// a bare fingerprint.
	second, err := dict.Marshal(sampleStory(t, dj, group))
	if err != nil {
		t.Fatal(err)
	}
	if !CompactCarriesDefs(second) {
		t.Fatal("new classes must be sent as defs")
	}
	if _, err := UnmarshalWith(second, reg, cache); err != nil {
		t.Fatalf("def referencing a cached class failed to resolve: %v", err)
	}
}

func TestCompactMissingFingerprintsAndRecovery(t *testing.T) {
	_, dj, group := newsTypes(t)
	obj := sampleStory(t, dj, group)
	dict := NewSendDict(0)
	if _, err := dict.Marshal(obj); err != nil { // defs consumed by nobody
		t.Fatal(err)
	}
	steady, err := dict.Marshal(obj)
	if err != nil {
		t.Fatal(err)
	}

	cache := NewTypeCache(0)
	reg := mop.NewRegistry()
	_, err = UnmarshalWith(steady, reg, cache)
	var missing *MissingFingerprintsError
	if !errors.As(err, &missing) {
		t.Fatalf("cold-cache decode: got %v, want MissingFingerprintsError", err)
	}
	if len(missing.FPs) == 0 {
		t.Fatal("error must list the unresolved fingerprints")
	}

	// The origin answers a NAK with MarshalDefs; harvesting the reply makes
	// the stashed message decodable.
	var held []*mop.Type
	for _, fp := range missing.FPs {
		typ, ok := dict.LookupFP(fp)
		if !ok {
			t.Fatalf("origin dictionary does not hold fp %#x", fp)
		}
		held = append(held, typ)
	}
	reply, err := MarshalDefs(held)
	if err != nil {
		t.Fatal(err)
	}
	if !CompactCarriesDefs(reply) {
		t.Fatal("MarshalDefs reply must carry definitions")
	}
	if err := HarvestDefs(reply, reg, cache); err != nil {
		t.Fatal(err)
	}
	v, err := UnmarshalWith(steady, reg, cache)
	if err != nil {
		t.Fatalf("decode after harvest: %v", err)
	}
	if !bytes.Equal(marshalLegacy(t, v), marshalLegacy(t, obj)) {
		t.Fatal("recovered decode produced a different value")
	}
}

func TestHarvestDefsIgnoresNonCompact(t *testing.T) {
	_, dj, group := newsTypes(t)
	legacy := marshalLegacy(t, sampleStory(t, dj, group))
	cache := NewTypeCache(0)
	if err := HarvestDefs(legacy, mop.NewRegistry(), cache); err != nil {
		t.Fatal(err)
	}
	if cache.Len() != 0 {
		t.Fatal("legacy messages must not install cache entries")
	}
}

// TestCompactRedefinitionNeverStale is the acceptance test for the TDL
// invalidation rule: after a publisher redefines a class (same name, new
// structure), no receiver may decode against the old descriptor. The new
// structure has a new fingerprint, so the redefined class arrives as an
// inline def; a host whose registry holds the old class must surface
// ErrTypeConflict rather than silently using either layout.
func TestCompactRedefinitionNeverStale(t *testing.T) {
	old := mop.MustNewClass("Reading", nil, []mop.Attr{
		{Name: "value", Type: mop.Float},
	}, nil)
	redefined := mop.MustNewClass("Reading", nil, []mop.Attr{
		{Name: "value", Type: mop.Float},
		{Name: "unit", Type: mop.String},
	}, nil)
	if Fingerprint(old) == Fingerprint(redefined) {
		t.Fatal("redefinition must change the fingerprint")
	}

	reg := mop.NewRegistry()
	cache := NewTypeCache(0)
	// The receiver learned the old class from an earlier publisher.
	oldDict := NewSendDict(0)
	firstGen, err := oldDict.Marshal(mop.MustNew(old).MustSet("value", 1.5))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalWith(firstGen, reg, cache); err != nil {
		t.Fatal(err)
	}

	// A publisher restart redefines the class and broadcasts under the new
	// structure.
	newDict := NewSendDict(0)
	obj := mop.MustNew(redefined).MustSet("value", 2.5).MustSet("unit", "mm")
	secondGen, err := newDict.Marshal(obj)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalWith(secondGen, reg, cache); !errors.Is(err, ErrTypeConflict) {
		t.Fatalf("redefined class against stale registry: got %v, want ErrTypeConflict", err)
	}

	// A fresh host (no stale registration) decodes the new generation
	// correctly — the fingerprint cache cannot serve the old layout because
	// the fingerprint differs.
	freshReg, freshCache := mop.NewRegistry(), NewTypeCache(0)
	v, err := UnmarshalWith(secondGen, freshReg, freshCache)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := v.(*mop.Object)
	if !ok {
		t.Fatalf("decoded %T, want *mop.Object", v)
	}
	if u, err := got.Get("unit"); err != nil || u != "mm" {
		t.Fatalf("new-generation decode lost data: unit=%v err=%v", u, err)
	}
}

func TestSendDictResendEvery(t *testing.T) {
	_, dj, group := newsTypes(t)
	obj := sampleStory(t, dj, group)
	dict := NewSendDict(3)
	carries := make([]bool, 0, 5)
	for i := 0; i < 5; i++ {
		data, err := dict.Marshal(obj)
		if err != nil {
			t.Fatal(err)
		}
		carries = append(carries, CompactCarriesDefs(data))
	}
	want := []bool{true, false, false, true, false}
	for i := range want {
		if carries[i] != want[i] {
			t.Fatalf("message %d: carriesDefs=%v, want %v (inline fallback every 3)", i+1, carries[i], want[i])
		}
	}
}

func TestTypeCacheBounds(t *testing.T) {
	var nilCache *TypeCache
	if _, ok := nilCache.Lookup(1); ok {
		t.Fatal("nil cache must miss")
	}
	nilCache.Install(1, mop.MustNewClass("X", nil, nil, nil)) // must not panic
	if nilCache.Len() != 0 {
		t.Fatal("nil cache must stay empty")
	}

	c := NewTypeCache(1)
	a := mop.MustNewClass("A", nil, nil, nil)
	b := mop.MustNewClass("B", nil, nil, nil)
	c.Install(1, a)
	c.Install(2, b) // full: skipped
	c.Install(1, a) // present: refresh allowed
	if c.Len() != 1 {
		t.Fatalf("cache size %d, want 1 (skip-on-full)", c.Len())
	}
	if _, ok := c.Lookup(2); ok {
		t.Fatal("overflowing install must be skipped")
	}
}

// TestCompactGoldenBytes pins the steady-state wire size of a small
// (≈64-byte payload) publication — the acceptance gate for the dictionary
// format (scripts/check.sh runs this test by name). The encodings are
// deterministic, so any drift in these numbers is a deliberate format
// change and must be re-pinned together with EXPERIMENTS.md table A9.
func TestCompactGoldenBytes(t *testing.T) {
	tick := mop.MustNewClass("EquityTick", nil, []mop.Attr{
		{Name: "symbol", Type: mop.String},
		{Name: "exchange", Type: mop.String},
		{Name: "price", Type: mop.Float},
		{Name: "size", Type: mop.Int},
		{Name: "at", Type: mop.Time},
	}, nil)
	obj := mop.MustNew(tick).
		MustSet("symbol", "GM").
		MustSet("exchange", "NYSE").
		MustSet("price", 42.125).
		MustSet("size", int64(1200)).
		MustSet("at", time.Unix(749571200, 0).UTC())

	legacy := marshalLegacy(t, obj)
	dict := NewSendDict(0)
	if _, err := dict.Marshal(obj); err != nil {
		t.Fatal(err)
	}
	steady, err := dict.Marshal(obj)
	if err != nil {
		t.Fatal(err)
	}
	const wantLegacy, wantSteady = 97, 47
	if len(legacy) != wantLegacy {
		t.Fatalf("legacy encoding is %d bytes, pinned at %d", len(legacy), wantLegacy)
	}
	if len(steady) != wantSteady {
		t.Fatalf("steady-state compact encoding is %d bytes, pinned at %d", len(steady), wantSteady)
	}
	if r := 1 - float64(len(steady))/float64(len(legacy)); r < 0.40 {
		t.Fatalf("steady-state reduction %.1f%%, acceptance floor is 40%%", 100*r)
	}
}

// TestSendDictSteadyStateAllocs holds the send-side budget: once a class
// closure has been broadcast, re-encoding into a reused buffer must not
// allocate (the scratch collector, class-index map, and fingerprint memo
// are all reused).
func TestSendDictSteadyStateAllocs(t *testing.T) {
	_, dj, group := newsTypes(t)
	obj := sampleStory(t, dj, group)
	dict := NewSendDict(1 << 30) // no inline fallback during the run
	first, err := dict.Marshal(obj)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 0, 2*len(first))
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := dict.AppendMarshal(buf[:0], obj); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("steady-state AppendMarshal allocates %.1f times/op, want 0", allocs)
	}
}

func TestRequestedFPsRoundTrip(t *testing.T) {
	fps := []uint64{3, 0xdeadbeefcafef00d, 1 << 63}
	data, err := Marshal(FPsValue(fps))
	if err != nil {
		t.Fatal(err)
	}
	v, err := Unmarshal(data, mop.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	got := RequestedFPs(v)
	if len(got) != len(fps) {
		t.Fatalf("round-tripped %d fingerprints, want %d", len(got), len(fps))
	}
	for i := range fps {
		if got[i] != fps[i] {
			t.Fatalf("fp %d: %#x, want %#x", i, got[i], fps[i])
		}
	}
	if RequestedFPs("bogus") != nil {
		t.Fatal("non-list payload must yield no fingerprints")
	}
}
