// Package discovery implements the Information Bus discovery protocol
// (§3.2): "One participant publishes 'Who's out there?' under a subject.
// The other participants publish 'I am' and other information describing
// their state, if they serve the subject in question."
//
// Discovery is itself built purely from publish/subscribe, preserving P4:
// no name service, no bootstrap — "we are effectively using the network
// itself as a name service. A subject is mapped to a specific set of
// servers by allowing the servers to choose themselves."
//
// Subject conventions: for a service subject S, queries travel on
// "_disc.q.S" and replies on "_disc.r.S". The query carries a token that
// replies echo, so concurrent discoveries do not confuse each other.
package discovery

import (
	"fmt"
	"sync"
	"time"

	"infobus/internal/core"
	"infobus/internal/mop"
)

// Subject prefixes for the discovery conversation.
const (
	queryPrefix = "_disc.q."
	replyPrefix = "_disc.r."
)

// Discovery message classes. They travel self-describing like any other
// object, so even these protocol types need no pre-arranged schema.
var (
	// QueryType is "Who's out there?": a token identifying the asker's
	// collection round.
	QueryType = mop.MustNewClass("DiscoveryQuery", nil, []mop.Attr{
		{Name: "token", Type: mop.String},
	}, nil)
	// ReplyType is "I am": the echoed token, a participant identity, and
	// service-specific state.
	ReplyType = mop.MustNewClass("DiscoveryReply", nil, []mop.Attr{
		{Name: "token", Type: mop.String},
		{Name: "who", Type: mop.String},
		{Name: "info", Type: mop.Any},
	}, nil)
)

// Found is one discovered participant.
type Found struct {
	// Who is the participant's unique identity (distinct even for two
	// participants on the same host).
	Who string
	// Info is the service-specific state the participant published.
	Info mop.Value
	// From is the transport address the reply arrived from.
	From string
}

// Announcer answers discovery queries for one service subject.
type Announcer struct {
	bus     *core.Bus
	who     string
	service string
	sub     *core.Subscription
	info    func() mop.Value
	done    chan struct{}
	wg      sync.WaitGroup

	mu      sync.Mutex
	replies uint64
	closed  bool
}

// Announce registers a participant that serves the given service subject.
// info is called per query to produce the "I am" state (it may be nil for
// a bare presence announcement).
func Announce(bus *core.Bus, service string, info func() mop.Value) (*Announcer, error) {
	sub, err := bus.Subscribe(queryPrefix + service)
	if err != nil {
		return nil, fmt.Errorf("discovery: subscribing to queries for %q: %w", service, err)
	}
	a := &Announcer{
		bus:     bus,
		who:     fmt.Sprintf("%s#%d", bus.Host().Addr(), bus.Host().Token()),
		service: service,
		sub:     sub,
		info:    info,
		done:    make(chan struct{}),
	}
	a.wg.Add(1)
	go a.serve()
	return a, nil
}

// Replies returns how many queries this announcer has answered.
func (a *Announcer) Replies() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.replies
}

// Close stops answering queries.
func (a *Announcer) Close() {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return
	}
	a.closed = true
	a.mu.Unlock()
	close(a.done)
	a.sub.Cancel()
	a.wg.Wait()
}

func (a *Announcer) serve() {
	defer a.wg.Done()
	for {
		select {
		case <-a.done:
			return
		case ev, ok := <-a.sub.C:
			if !ok {
				return
			}
			q, ok := ev.Value.(*mop.Object)
			if !ok || q.Type().Name() != QueryType.Name() {
				continue
			}
			token, _ := q.Get("token")
			tok, ok := token.(string)
			if !ok {
				continue
			}
			var info mop.Value
			if a.info != nil {
				info = a.info()
			}
			reply := mop.MustNew(ReplyType).
				MustSet("token", tok).
				MustSet("who", a.who).
				MustSet("info", info)
			if err := a.bus.Publish(replyPrefix+a.service, reply); err != nil {
				continue
			}
			a.mu.Lock()
			a.replies++
			a.mu.Unlock()
		}
	}
}

// Options tune a discovery round.
type Options struct {
	// Window is how long to collect replies. Default 50ms.
	Window time.Duration
	// Max stops collection early once this many participants replied.
	// Zero means no cap.
	Max int
}

// Discover performs one "Who's out there?" round for a service subject and
// returns the participants that answered within the window.
func Discover(bus *core.Bus, service string, opts Options) ([]Found, error) {
	if opts.Window <= 0 {
		opts.Window = 50 * time.Millisecond
	}
	// Subscribe to replies before asking, so no reply can be missed.
	sub, err := bus.Subscribe(replyPrefix + service)
	if err != nil {
		return nil, fmt.Errorf("discovery: subscribing to replies for %q: %w", service, err)
	}
	defer sub.Cancel()

	token := fmt.Sprintf("%s-%d", bus.Host().Addr(), bus.Host().Token())
	query := mop.MustNew(QueryType).MustSet("token", token)
	if err := bus.Publish(queryPrefix+service, query); err != nil {
		return nil, fmt.Errorf("discovery: publishing query for %q: %w", service, err)
	}
	_ = bus.Flush()

	var found []Found
	seen := make(map[string]bool) // dedupe by participant identity
	deadline := time.NewTimer(opts.Window)
	defer deadline.Stop()
	// Re-ask a few times within the window: a lossy network can drop the
	// very first frame a fresh participant ever broadcasts, and replies
	// are deduplicated by identity anyway.
	reask := time.NewTicker(opts.Window/4 + time.Millisecond)
	defer reask.Stop()
	for {
		select {
		case <-reask.C:
			// The select picks randomly among ready cases: a stale re-ask
			// tick can win over an expired deadline, and re-publishing the
			// query after the window closed would solicit replies nobody
			// collects. Check the deadline first.
			select {
			case <-deadline.C:
				return found, nil
			default:
			}
			_ = bus.Publish(queryPrefix+service, query)
			_ = bus.Flush()
		case <-deadline.C:
			return found, nil
		case ev, ok := <-sub.C:
			if !ok {
				return found, nil
			}
			r, ok := ev.Value.(*mop.Object)
			if !ok || r.Type().Name() != ReplyType.Name() {
				continue
			}
			if tok, _ := r.Get("token"); tok != token {
				continue // reply to someone else's round
			}
			whoV, _ := r.Get("who")
			who, ok := whoV.(string)
			if !ok || seen[who] {
				continue
			}
			seen[who] = true
			info, _ := r.Get("info")
			found = append(found, Found{Who: who, Info: info, From: ev.From})
			if opts.Max > 0 && len(found) >= opts.Max {
				return found, nil
			}
		}
	}
}
