// Package discovery implements the Information Bus discovery protocol
// (§3.2): "One participant publishes 'Who's out there?' under a subject.
// The other participants publish 'I am' and other information describing
// their state, if they serve the subject in question."
//
// Discovery is itself built purely from publish/subscribe, preserving P4:
// no name service, no bootstrap — "we are effectively using the network
// itself as a name service. A subject is mapped to a specific set of
// servers by allowing the servers to choose themselves."
//
// Subject conventions: for a service subject S under prefix P (default
// "_disc"), queries travel on "P.q.S" and replies on "P.r.S". The query
// carries a token that replies echo, so concurrent discoveries do not
// confuse each other.
//
// The protocol runs over any publish/subscribe surface (the PubSub
// interface), not just a core.Bus: information routers speak it on their
// raw segment attachments under the "_sys.mesh" prefix to bootstrap the
// router mesh, where no daemon or bus exists at all.
package discovery

import (
	"fmt"
	"sync"
	"time"

	"infobus/internal/core"
	"infobus/internal/mop"
)

// DefaultPrefix is the subject prefix of the application discovery
// conversation.
const DefaultPrefix = "_disc"

// Event is one publication delivered through a PubSub subscription.
type Event struct {
	// Value is the decoded self-describing object.
	Value mop.Value
	// From is the transport address the publication arrived from.
	From string
}

// PubSub is the minimal conversation surface discovery needs. core.Bus
// satisfies it via FromBus; the router mesh satisfies it per attachment.
type PubSub interface {
	// Identity returns a globally unique participant identity.
	Identity() string
	// Publish broadcasts a self-describing object on a subject.
	Publish(subject string, v mop.Value) error
	// Flush pushes buffered publications onto the wire.
	Flush() error
	// Subscribe registers interest in a pattern, returning the delivery
	// channel and a cancel function. The channel closes after cancel.
	Subscribe(pattern string) (<-chan Event, func(), error)
}

// Discovery message classes. They travel self-describing like any other
// object, so even these protocol types need no pre-arranged schema.
var (
	// QueryType is "Who's out there?": a token identifying the asker's
	// collection round.
	QueryType = mop.MustNewClass("DiscoveryQuery", nil, []mop.Attr{
		{Name: "token", Type: mop.String},
	}, nil)
	// ReplyType is "I am": the echoed token, a participant identity, and
	// service-specific state.
	ReplyType = mop.MustNewClass("DiscoveryReply", nil, []mop.Attr{
		{Name: "token", Type: mop.String},
		{Name: "who", Type: mop.String},
		{Name: "info", Type: mop.Any},
	}, nil)
)

func querySubject(prefix, service string) string { return prefix + ".q." + service }
func replySubject(prefix, service string) string { return prefix + ".r." + service }

// Found is one discovered participant.
type Found struct {
	// Who is the participant's unique identity (distinct even for two
	// participants on the same host).
	Who string
	// Info is the service-specific state the participant published.
	Info mop.Value
	// From is the transport address the reply arrived from.
	From string
}

// Announcer answers discovery queries for one service subject.
type Announcer struct {
	ps      PubSub
	who     string
	subject string // reply subject
	events  <-chan Event
	cancel  func()
	info    func() mop.Value
	done    chan struct{}
	wg      sync.WaitGroup

	mu      sync.Mutex
	replies uint64
	closed  bool
}

// Announce registers a participant that serves the given service subject
// on a bus, under the default prefix. info is called per query to produce
// the "I am" state (it may be nil for a bare presence announcement).
func Announce(bus *core.Bus, service string, info func() mop.Value) (*Announcer, error) {
	return AnnounceOn(FromBus(bus), DefaultPrefix, service, info)
}

// AnnounceOn is Announce over any PubSub surface and subject prefix.
func AnnounceOn(ps PubSub, prefix, service string, info func() mop.Value) (*Announcer, error) {
	if prefix == "" {
		prefix = DefaultPrefix
	}
	events, cancel, err := ps.Subscribe(querySubject(prefix, service))
	if err != nil {
		return nil, fmt.Errorf("discovery: subscribing to queries for %q: %w", service, err)
	}
	a := &Announcer{
		ps:      ps,
		who:     ps.Identity(),
		subject: replySubject(prefix, service),
		events:  events,
		cancel:  cancel,
		info:    info,
		done:    make(chan struct{}),
	}
	a.wg.Add(1)
	go a.serve()
	return a, nil
}

// Replies returns how many queries this announcer has answered.
func (a *Announcer) Replies() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.replies
}

// Close stops answering queries.
func (a *Announcer) Close() {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return
	}
	a.closed = true
	a.mu.Unlock()
	close(a.done)
	a.cancel()
	a.wg.Wait()
}

func (a *Announcer) serve() {
	defer a.wg.Done()
	for {
		select {
		case <-a.done:
			return
		case ev, ok := <-a.events:
			if !ok {
				return
			}
			q, ok := ev.Value.(*mop.Object)
			if !ok || q.Type().Name() != QueryType.Name() {
				continue
			}
			token, _ := q.Get("token")
			tok, ok := token.(string)
			if !ok {
				continue
			}
			var info mop.Value
			if a.info != nil {
				info = a.info()
			}
			reply := mop.MustNew(ReplyType).
				MustSet("token", tok).
				MustSet("who", a.who).
				MustSet("info", info)
			if err := a.ps.Publish(a.subject, reply); err != nil {
				continue
			}
			_ = a.ps.Flush()
			a.mu.Lock()
			a.replies++
			a.mu.Unlock()
		}
	}
}

// Options tune a discovery round.
type Options struct {
	// Window is how long to collect replies. Default 50ms.
	Window time.Duration
	// Max stops collection early once this many participants replied.
	// Zero means no cap.
	Max int
	// Prefix is the subject prefix of the conversation. Default "_disc";
	// the router mesh uses "_sys.mesh".
	Prefix string
}

// Discover performs one "Who's out there?" round for a service subject on
// a bus and returns the participants that answered within the window.
func Discover(bus *core.Bus, service string, opts Options) ([]Found, error) {
	return DiscoverOn(FromBus(bus), service, opts)
}

// DiscoverOn is Discover over any PubSub surface.
func DiscoverOn(ps PubSub, service string, opts Options) ([]Found, error) {
	if opts.Window <= 0 {
		opts.Window = 50 * time.Millisecond
	}
	if opts.Prefix == "" {
		opts.Prefix = DefaultPrefix
	}
	// Subscribe to replies before asking, so no reply can be missed.
	events, cancel, err := ps.Subscribe(replySubject(opts.Prefix, service))
	if err != nil {
		return nil, fmt.Errorf("discovery: subscribing to replies for %q: %w", service, err)
	}
	defer cancel()

	token := ps.Identity()
	query := mop.MustNew(QueryType).MustSet("token", token)
	qsubj := querySubject(opts.Prefix, service)
	if err := ps.Publish(qsubj, query); err != nil {
		return nil, fmt.Errorf("discovery: publishing query for %q: %w", service, err)
	}
	_ = ps.Flush()

	var found []Found
	seen := make(map[string]bool) // dedupe by participant identity
	deadline := time.NewTimer(opts.Window)
	defer deadline.Stop()
	// Re-ask a few times within the window: a lossy network can drop the
	// very first frame a fresh participant ever broadcasts, and replies
	// are deduplicated by identity anyway.
	reask := time.NewTicker(opts.Window/4 + time.Millisecond)
	defer reask.Stop()
	for {
		select {
		case <-reask.C:
			// The select picks randomly among ready cases: a stale re-ask
			// tick can win over an expired deadline, and re-publishing the
			// query after the window closed would solicit replies nobody
			// collects. Check the deadline first.
			select {
			case <-deadline.C:
				return found, nil
			default:
			}
			_ = ps.Publish(qsubj, query)
			_ = ps.Flush()
		case <-deadline.C:
			return found, nil
		case ev, ok := <-events:
			if !ok {
				return found, nil
			}
			r, ok := ev.Value.(*mop.Object)
			if !ok || r.Type().Name() != ReplyType.Name() {
				continue
			}
			if tok, _ := r.Get("token"); tok != token {
				continue // reply to someone else's round
			}
			whoV, _ := r.Get("who")
			who, ok := whoV.(string)
			if !ok || seen[who] {
				continue
			}
			seen[who] = true
			info, _ := r.Get("info")
			found = append(found, Found{Who: who, Info: info, From: ev.From})
			if opts.Max > 0 && len(found) >= opts.Max {
				return found, nil
			}
		}
	}
}

// busPubSub adapts a core.Bus to the PubSub interface.
type busPubSub struct{ bus *core.Bus }

// FromBus wraps a core.Bus as a discovery PubSub.
func FromBus(bus *core.Bus) PubSub { return busPubSub{bus: bus} }

func (b busPubSub) Identity() string {
	return fmt.Sprintf("%s#%d", b.bus.Host().Addr(), b.bus.Host().Token())
}

func (b busPubSub) Publish(subject string, v mop.Value) error {
	return b.bus.Publish(subject, v)
}

func (b busPubSub) Flush() error { return b.bus.Flush() }

func (b busPubSub) Subscribe(pattern string) (<-chan Event, func(), error) {
	sub, err := b.bus.Subscribe(pattern)
	if err != nil {
		return nil, nil, err
	}
	ch := make(chan Event, 64)
	quit := make(chan struct{})
	var once sync.Once
	cancel := func() {
		once.Do(func() {
			sub.Cancel()
			close(quit)
		})
	}
	go func() {
		defer close(ch)
		for {
			select {
			case ev, ok := <-sub.C:
				if !ok {
					return
				}
				select {
				case ch <- Event{Value: ev.Value, From: ev.From}:
				case <-quit:
					return
				}
			case <-quit:
				return
			}
		}
	}()
	return ch, cancel, nil
}
