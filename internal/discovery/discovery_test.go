package discovery

import (
	"fmt"
	"sort"
	"testing"
	"time"

	"infobus/internal/core"
	"infobus/internal/mop"
	"infobus/internal/netsim"
	"infobus/internal/reliable"
	"infobus/internal/transport"
)

func newBus(t *testing.T, seg transport.Segment, host string) *core.Bus {
	t.Helper()
	h, err := core.NewHost(seg, host, core.HostConfig{Reliable: reliable.Config{
		NakInterval:        2 * time.Millisecond,
		GapTimeout:         300 * time.Millisecond,
		RetransmitInterval: 3 * time.Millisecond,
		HeartbeatInterval:  5 * time.Millisecond,
	}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = h.Close() })
	b, err := h.NewBus("app")
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func fastSeg() *transport.SimSegment {
	cfg := netsim.DefaultConfig()
	cfg.Speedup = 5000
	return transport.NewSimSegment(cfg)
}

func TestDiscoverFindsAllAnnouncers(t *testing.T) {
	seg := fastSeg()
	defer seg.Close()
	var names []string
	for i := 0; i < 3; i++ {
		b := newBus(t, seg, fmt.Sprintf("server%d", i))
		name := fmt.Sprintf("srv-%d", i)
		names = append(names, name)
		a, err := Announce(b, "quotes.service", func() mop.Value { return name })
		if err != nil {
			t.Fatal(err)
		}
		defer a.Close()
	}
	client := newBus(t, seg, "client")
	found, err := Discover(client, "quotes.service", Options{Window: 300 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if len(found) != 3 {
		t.Fatalf("found %d participants, want 3: %+v", len(found), found)
	}
	var got []string
	for _, f := range found {
		got = append(got, f.Info.(string))
	}
	sort.Strings(got)
	sort.Strings(names)
	if fmt.Sprint(got) != fmt.Sprint(names) {
		t.Errorf("infos = %v, want %v", got, names)
	}
}

func TestDiscoverServiceScoping(t *testing.T) {
	seg := fastSeg()
	defer seg.Close()
	bQuotes := newBus(t, seg, "q-server")
	aq, _ := Announce(bQuotes, "svc.quotes", func() mop.Value { return "quotes" })
	defer aq.Close()
	bNews := newBus(t, seg, "n-server")
	an, _ := Announce(bNews, "svc.news", func() mop.Value { return "news" })
	defer an.Close()

	client := newBus(t, seg, "client")
	found, err := Discover(client, "svc.quotes", Options{Window: 300 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if len(found) != 1 || found[0].Info != "quotes" {
		t.Fatalf("found = %+v", found)
	}
}

func TestDiscoverNobodyOutThere(t *testing.T) {
	seg := fastSeg()
	defer seg.Close()
	client := newBus(t, seg, "client")
	found, err := Discover(client, "svc.ghost", Options{Window: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if len(found) != 0 {
		t.Fatalf("found = %+v, want none", found)
	}
}

func TestDiscoverMaxStopsEarly(t *testing.T) {
	seg := fastSeg()
	defer seg.Close()
	for i := 0; i < 4; i++ {
		b := newBus(t, seg, fmt.Sprintf("s%d", i))
		a, _ := Announce(b, "svc.many", nil)
		defer a.Close()
	}
	client := newBus(t, seg, "client")
	start := time.Now()
	found, err := Discover(client, "svc.many", Options{Window: 5 * time.Second, Max: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(found) != 2 {
		t.Fatalf("found = %d, want 2", len(found))
	}
	if time.Since(start) >= 5*time.Second {
		t.Error("Max did not stop collection early")
	}
	// nil info announcements surface as nil Info.
	if found[0].Info != nil {
		t.Errorf("info = %v, want nil", found[0].Info)
	}
}

func TestAnnouncerCloseStopsReplies(t *testing.T) {
	seg := fastSeg()
	defer seg.Close()
	server := newBus(t, seg, "server")
	a, err := Announce(server, "svc.x", func() mop.Value { return "up" })
	if err != nil {
		t.Fatal(err)
	}
	client := newBus(t, seg, "client")
	found, _ := Discover(client, "svc.x", Options{Window: 300 * time.Millisecond})
	if len(found) != 1 {
		t.Fatalf("before close: found = %+v", found)
	}
	if a.Replies() == 0 {
		t.Errorf("Replies = %d, want at least one (re-asked queries may add more)", a.Replies())
	}
	a.Close()
	a.Close() // idempotent
	found, _ = Discover(client, "svc.x", Options{Window: 100 * time.Millisecond})
	if len(found) != 0 {
		t.Fatalf("after close: found = %+v", found)
	}
}

func TestConcurrentDiscoveriesDoNotCross(t *testing.T) {
	seg := fastSeg()
	defer seg.Close()
	server := newBus(t, seg, "server")
	a, _ := Announce(server, "svc.shared", func() mop.Value { return "one" })
	defer a.Close()

	c1 := newBus(t, seg, "client1")
	c2 := newBus(t, seg, "client2")
	type res struct {
		found []Found
		err   error
	}
	ch := make(chan res, 2)
	for _, c := range []*core.Bus{c1, c2} {
		go func(b *core.Bus) {
			f, err := Discover(b, "svc.shared", Options{Window: 300 * time.Millisecond})
			ch <- res{f, err}
		}(c)
	}
	for i := 0; i < 2; i++ {
		r := <-ch
		if r.err != nil {
			t.Fatal(r.err)
		}
		if len(r.found) != 1 {
			t.Errorf("round %d found %d", i, len(r.found))
		}
	}
}

func TestTwoAnnouncersSameHostBothFound(t *testing.T) {
	seg := fastSeg()
	defer seg.Close()
	b := newBus(t, seg, "multi")
	a1, _ := Announce(b, "svc.m", func() mop.Value { return "first" })
	defer a1.Close()
	a2, _ := Announce(b, "svc.m", func() mop.Value { return "second" })
	defer a2.Close()
	client := newBus(t, seg, "client")
	found, err := Discover(client, "svc.m", Options{Window: 300 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if len(found) != 2 {
		t.Fatalf("found = %+v, want both announcers on one host", found)
	}
}

// TestDiscoverWindowRespected checks the deadline/re-ask interplay: the
// round must end promptly once the window closes, even though the re-ask
// ticker (Window/4 cadence) keeps firing — a stale tick winning the select
// over an expired deadline must not send another query or stretch the
// round.
func TestDiscoverWindowRespected(t *testing.T) {
	seg := fastSeg()
	defer seg.Close()
	client := newBus(t, seg, "client")
	const window = 80 * time.Millisecond
	start := time.Now()
	found, err := Discover(client, "svc.window", Options{Window: window})
	if err != nil {
		t.Fatal(err)
	}
	if len(found) != 0 {
		t.Fatalf("found = %+v, want none", found)
	}
	if elapsed := time.Since(start); elapsed > 4*window {
		t.Errorf("Discover took %v for a %v window", elapsed, window)
	}
}
