package subject

import "sync"

// MatchCache is one externally owned shard of a trie's match cache. A
// daemon running several delivery lanes gives each lane its own shard, so
// publications on unrelated subjects (different lanes) never contend on
// one cache mutex — the built-in Trie cache is a single serializer by
// design, which is fine for a router but caps a multicore daemon.
//
// Invalidation is lazy: the shard never registers with the trie. Every
// lookup compares the shard's generation against Trie.Gen(); a mutation
// since the last fill clears the shard on its next use. Fills that raced a
// mutation are discarded by the same generation check, exactly like the
// built-in cache.
//
// A shard is safe for concurrent use, but the intended discipline is one
// shard per lane with all lookups for a subject going through the lane the
// subject hashes to (Subject.LaneIndex) — that is what makes the sharding
// contention-free.
type MatchCache[V comparable] struct {
	mu  sync.Mutex
	gen uint64
	max int
	m   map[string][]V
}

// NewMatchCache returns a shard holding at most max subjects (0 selects
// the trie's built-in cap). When full, new subjects re-walk the trie
// rather than evicting (see maxMatchCache).
func NewMatchCache[V comparable](max int) *MatchCache[V] {
	if max <= 0 {
		max = maxMatchCache
	}
	return &MatchCache[V]{max: max}
}

// Match returns every distinct value of t whose pattern matches the
// subject, serving repeats from the shard. The returned slice is an
// immutable snapshot with the same ownership rules as Trie.Match.
func (c *MatchCache[V]) Match(t *Trie[V], s Subject) []V {
	cur := t.Gen()
	c.mu.Lock()
	if c.gen == cur {
		if vs, ok := c.m[s.raw]; ok {
			c.mu.Unlock()
			return vs
		}
	}
	c.mu.Unlock()

	out, gen := t.MatchUncached(s)

	c.mu.Lock()
	switch {
	case gen > c.gen:
		// First fill at a newer generation: everything cached is stale.
		clear(c.m)
		c.gen = gen
		fallthrough
	case gen == c.gen:
		if len(c.m) < c.max {
			if c.m == nil {
				c.m = make(map[string][]V)
			}
			c.m[s.raw] = out
		}
	}
	// gen < c.gen: a concurrent fill already advanced the shard past this
	// walk; the stale result must not enter the map (it is still a correct
	// answer for the caller — the walk happened-before the newer mutation).
	c.mu.Unlock()
	return out
}

// Len returns the number of cached subjects (for tests and monitoring).
func (c *MatchCache[V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}
