package subject

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Trie is a concurrent subject-matching trie. It maps subscription patterns
// to opaque subscriber values and answers, for a published subject, the set
// of values whose patterns match.
//
// The structure follows the subject hierarchy: each trie level corresponds
// to one subject element, with distinguished child slots for the "*" and
// ">" wildcards. Matching a subject of depth d visits at most O(2^w · d)
// nodes where w is the number of wildcard levels crossed — in practice a
// handful of nodes — independent of the total number of subscriptions.
// This property is what Figure 8 of the paper measures: throughput must not
// degrade as the number of distinct subjects (and subscriptions) grows.
//
// Values are compared with ==; registering the same (pattern, value) pair
// twice is idempotent. A Trie is safe for concurrent use. The zero value is
// not ready; use NewTrie.
type Trie[V comparable] struct {
	mu   sync.RWMutex
	root *trieNode[V]
	size int // number of (pattern, value) pairs

	// Match cache: subject string → matched value set. Publications repeat
	// subjects far more often than subscriptions change (Figures 6–8 publish
	// thousands of messages per subject), so the daemon's fan-out path
	// services repeats from here without walking the trie or allocating.
	// Entries are immutable snapshots; any Add/Remove bumps gen and clears
	// the map. gen is read outside mu to detect a mutation that raced a
	// fill (the stale fill is then discarded).
	gen     atomic.Uint64
	cacheMu sync.Mutex
	cache   map[string][]V
}

// maxMatchCache bounds the match cache. When full, new subjects are simply
// not cached (they re-walk the trie) rather than evicting: a publisher
// cycling through more subjects than the cap would otherwise defeat the
// cache entirely — clear-on-overflow has a ~0% hit rate under cyclic
// access. Sized above Figure 8's 10 000-subject workload.
const maxMatchCache = 16384

type trieNode[V comparable] struct {
	children map[string]*trieNode[V]
	star     *trieNode[V] // "*" child
	rest     []V          // values subscribed with ">" terminating here
	values   []V          // values whose pattern ends exactly here
}

// NewTrie returns an empty trie.
func NewTrie[V comparable]() *Trie[V] {
	return &Trie[V]{root: &trieNode[V]{}}
}

// Len returns the number of registered (pattern, value) pairs.
func (t *Trie[V]) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.size
}

// Add registers value under pattern. Adding an identical pair again is a
// no-op. It reports whether the pair was newly added.
func (t *Trie[V]) Add(p Pattern, value V) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.root
	for i, e := range p.elements {
		switch e {
		case WildcardRest:
			// ">" is validated to be final by ParsePattern.
			if containsValue(n.rest, value) {
				return false
			}
			n.rest = append(n.rest, value)
			t.size++
			t.invalidate()
			return true
		case WildcardOne:
			if n.star == nil {
				n.star = &trieNode[V]{}
			}
			n = n.star
		default:
			if n.children == nil {
				n.children = make(map[string]*trieNode[V])
			}
			child, ok := n.children[e]
			if !ok {
				child = &trieNode[V]{}
				n.children[e] = child
			}
			n = child
		}
		_ = i
	}
	if containsValue(n.values, value) {
		return false
	}
	n.values = append(n.values, value)
	t.size++
	t.invalidate()
	return true
}

// invalidate discards the match cache after a mutation. Called with t.mu
// held for writing, so no Match fill can be walking the trie concurrently;
// a fill computed before the mutation detects the gen bump and discards
// itself.
func (t *Trie[V]) invalidate() {
	t.gen.Add(1)
	t.cacheMu.Lock()
	clear(t.cache)
	t.cacheMu.Unlock()
}

// Remove unregisters a (pattern, value) pair and reports whether it was
// present. Empty interior nodes are pruned so long-lived buses with churning
// subscriptions do not leak.
func (t *Trie[V]) Remove(p Pattern, value V) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	removed := t.remove(t.root, p.elements, value)
	if removed {
		t.size--
		t.invalidate()
	}
	return removed
}

func (t *Trie[V]) remove(n *trieNode[V], elems []string, value V) bool {
	if len(elems) == 0 {
		var ok bool
		n.values, ok = removeValue(n.values, value)
		return ok
	}
	e := elems[0]
	switch e {
	case WildcardRest:
		var ok bool
		n.rest, ok = removeValue(n.rest, value)
		return ok
	case WildcardOne:
		if n.star == nil {
			return false
		}
		ok := t.remove(n.star, elems[1:], value)
		if ok && n.star.empty() {
			n.star = nil
		}
		return ok
	default:
		child := n.children[e]
		if child == nil {
			return false
		}
		ok := t.remove(child, elems[1:], value)
		if ok && child.empty() {
			delete(n.children, e)
		}
		return ok
	}
}

func (n *trieNode[V]) empty() bool {
	return len(n.children) == 0 && n.star == nil && len(n.rest) == 0 && len(n.values) == 0
}

// Match returns every distinct value whose pattern matches the subject.
// Order is unspecified but deterministic for a fixed trie state.
//
// Ownership: the returned slice is an immutable snapshot shared with the
// trie's match cache — callers may iterate it freely (including
// concurrently) but must not modify it. It stays consistent even if the
// trie mutates afterwards: mutations replace cache entries, they never
// write through old ones.
func (t *Trie[V]) Match(s Subject) []V {
	t.cacheMu.Lock()
	if vs, ok := t.cache[s.raw]; ok {
		t.cacheMu.Unlock()
		return vs
	}
	t.cacheMu.Unlock()

	out, gen := t.MatchUncached(s)

	t.cacheMu.Lock()
	// Discard fills that raced a mutation; skip (don't evict) when full.
	if t.gen.Load() == gen && len(t.cache) < maxMatchCache {
		if t.cache == nil {
			t.cache = make(map[string][]V)
		}
		t.cache[s.raw] = out
	}
	t.cacheMu.Unlock()
	return out
}

// Gen returns the trie's mutation generation. It advances on every Add and
// Remove that changes the set; external caches (MatchCache shards) compare
// it to detect staleness without registering with the trie.
func (t *Trie[V]) Gen() uint64 { return t.gen.Load() }

// MatchUncached walks the trie for the subject's match set without
// consulting or filling the built-in cache, and returns the generation the
// walk was performed at (pinned for the whole walk: mutations take the
// write lock). External caches store the result keyed by that generation.
func (t *Trie[V]) MatchUncached(s Subject) ([]V, uint64) {
	t.mu.RLock()
	gen := t.gen.Load() // mutation holds mu for writing, so this pins the walk's state
	var out []V
	seen := make(map[V]struct{})
	collect := func(vs []V) {
		for _, v := range vs {
			if _, dup := seen[v]; !dup {
				seen[v] = struct{}{}
				out = append(out, v)
			}
		}
	}
	matchWalk(t.root, s.elements, collect)
	t.mu.RUnlock()
	return out, gen
}

// MatchAny reports whether at least one registered pattern matches the
// subject, without collecting values. Routers use it on the forwarding fast
// path ("is anyone over there interested?").
func (t *Trie[V]) MatchAny(s Subject) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	found := false
	matchWalk(t.root, s.elements, func(vs []V) {
		if len(vs) > 0 {
			found = true
		}
	})
	return found
}

// matchWalk visits every trie node whose path matches the subject elements
// and hands its terminal value sets to collect.
func matchWalk[V comparable](n *trieNode[V], elems []string, collect func([]V)) {
	// A ">" registered at this level matches any subject with at least one
	// further element.
	if len(elems) > 0 {
		collect(n.rest)
	}
	if len(elems) == 0 {
		collect(n.values)
		return
	}
	if child, ok := n.children[elems[0]]; ok {
		matchWalk(child, elems[1:], collect)
	}
	if n.star != nil {
		matchWalk(n.star, elems[1:], collect)
	}
}

// Patterns returns the canonical strings of all registered patterns, sorted,
// with duplicates (same pattern, different values) collapsed. Intended for
// introspection and monitoring tools.
func (t *Trie[V]) Patterns() []string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	set := make(map[string]struct{})
	var walk func(n *trieNode[V], prefix []string)
	walk = func(n *trieNode[V], prefix []string) {
		if len(n.values) > 0 {
			set[joinElems(prefix)] = struct{}{}
		}
		if len(n.rest) > 0 {
			set[joinElems(append(prefix, WildcardRest))] = struct{}{}
		}
		for e, child := range n.children {
			walk(child, append(prefix, e))
		}
		if n.star != nil {
			walk(n.star, append(prefix, WildcardOne))
		}
	}
	walk(t.root, nil)
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

func joinElems(elems []string) string {
	out := ""
	for i, e := range elems {
		if i > 0 {
			out += sep
		}
		out += e
	}
	return out
}

func containsValue[V comparable](vs []V, v V) bool {
	for _, x := range vs {
		if x == v {
			return true
		}
	}
	return false
}

func removeValue[V comparable](vs []V, v V) ([]V, bool) {
	for i, x := range vs {
		if x == v {
			copy(vs[i:], vs[i+1:])
			return vs[:len(vs)-1], true
		}
	}
	return vs, false
}
