package subject

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseValid(t *testing.T) {
	cases := []struct {
		in    string
		depth int
	}{
		{"fab5", 1},
		{"fab5.cc", 2},
		{"fab5.cc.litho8.thick", 4},
		{"news.equity.gmc", 3},
		{"a.b.c.d.e.f.g.h", 8},
		{"UPPER.lower.MiXeD", 3},
		{"with-dash.under_score.digits123", 3},
	}
	for _, c := range cases {
		s, err := Parse(c.in)
		if err != nil {
			t.Errorf("Parse(%q): unexpected error %v", c.in, err)
			continue
		}
		if s.String() != c.in {
			t.Errorf("Parse(%q).String() = %q", c.in, s.String())
		}
		if s.Depth() != c.depth {
			t.Errorf("Parse(%q).Depth() = %d, want %d", c.in, s.Depth(), c.depth)
		}
		if s.IsZero() {
			t.Errorf("Parse(%q).IsZero() = true", c.in)
		}
	}
}

func TestIsSys(t *testing.T) {
	cases := []struct {
		in   string
		want bool
	}{
		{"_sys.stats.node-1", true},
		{"_sys.ping", true},
		{"_sys.x", true},
		{"_syst.stats", false}, // element-wise, not a string prefix
		{"news._sys.x", false},
		{"news.equity.gmc", false},
	}
	for _, c := range cases {
		if got := IsSys(MustParse(c.in)); got != c.want {
			t.Errorf("IsSys(%q) = %t, want %t", c.in, got, c.want)
		}
	}
	if IsSys(Subject{}) {
		t.Error("IsSys(zero) must be false")
	}
}

func TestParseInvalid(t *testing.T) {
	cases := []struct {
		in   string
		want error
	}{
		{"", ErrEmpty},
		{".", ErrEmptyElement},
		{"a.", ErrEmptyElement},
		{".a", ErrEmptyElement},
		{"a..b", ErrEmptyElement},
		{"a b", ErrIllegalChar},
		{"a.b\tc", ErrIllegalChar},
		{"a.b\x00", ErrIllegalChar},
		{"a.*", ErrWildcardInName},
		{"*.a", ErrWildcardInName},
		{"a.>", ErrWildcardInName},
		{strings.Repeat("x", MaxLength+1), ErrTooLong},
		{strings.Repeat("a.", MaxElements) + "a", ErrTooDeep},
	}
	for _, c := range cases {
		_, err := Parse(c.in)
		if !errors.Is(err, c.want) {
			t.Errorf("Parse(%q) error = %v, want %v", c.in, err, c.want)
		}
	}
}

func TestParsePatternValid(t *testing.T) {
	for _, in := range []string{
		"a", "a.b", "*", "a.*", "*.b", "a.*.c", ">", "a.>", "a.*.>", "*.*",
	} {
		p, err := ParsePattern(in)
		if err != nil {
			t.Errorf("ParsePattern(%q): %v", in, err)
			continue
		}
		if p.String() != in {
			t.Errorf("ParsePattern(%q).String() = %q", in, p.String())
		}
	}
}

func TestParsePatternInvalid(t *testing.T) {
	cases := []struct {
		in   string
		want error
	}{
		{"", ErrEmpty},
		{">.a", ErrMisplacedRest},
		{"a.>.b", ErrMisplacedRest},
		{"a*", ErrWildcardElement},
		{"a.b*", ErrWildcardElement},
		{"a.*x", ErrWildcardElement},
		{"a.>x", ErrWildcardElement},
		{"a..b", ErrEmptyElement},
	}
	for _, c := range cases {
		_, err := ParsePattern(c.in)
		if !errors.Is(err, c.want) {
			t.Errorf("ParsePattern(%q) error = %v, want %v", c.in, err, c.want)
		}
	}
}

func TestPatternIsLiteral(t *testing.T) {
	if !MustParsePattern("a.b.c").IsLiteral() {
		t.Error("a.b.c should be literal")
	}
	for _, in := range []string{"a.*", "a.>", "*"} {
		if MustParsePattern(in).IsLiteral() {
			t.Errorf("%q should not be literal", in)
		}
	}
}

func TestMatches(t *testing.T) {
	cases := []struct {
		pattern, subj string
		want          bool
	}{
		{"a.b.c", "a.b.c", true},
		{"a.b.c", "a.b.d", false},
		{"a.b.c", "a.b", false},
		{"a.b", "a.b.c", false},
		{"a.*", "a.b", true},
		{"a.*", "a.b.c", false},
		{"a.*", "a", false},
		{"*.b", "a.b", true},
		{"*.b", "b.b", true},
		{"*.b", "a.c", false},
		{"a.*.c", "a.x.c", true},
		{"a.*.c", "a.x.y", false},
		{">", "a", true},
		{">", "a.b.c", true},
		{"a.>", "a.b", true},
		{"a.>", "a.b.c.d", true},
		{"a.>", "a", false}, // '>' requires at least one more element
		{"a.>", "b.c", false},
		{"a.*.>", "a.x.y", true},
		{"a.*.>", "a.x", false},
		{"news.equity.*", "news.equity.gmc", true},
		{"news.>", "news.equity.gmc", true},
	}
	for _, c := range cases {
		p := MustParsePattern(c.pattern)
		s := MustParse(c.subj)
		if got := p.Matches(s); got != c.want {
			t.Errorf("Matches(%q, %q) = %v, want %v", c.pattern, c.subj, got, c.want)
		}
	}
}

func TestOverlaps(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		{"a.b", "a.b", true},
		{"a.b", "a.c", false},
		{"a.*", "a.b", true},
		{"a.*", "*.b", true},
		{"a.*", "b.*", false},
		{"a.>", "a.b.c", true},
		{"a.>", "b.>", false},
		{">", "x.y.z", true},
		{"a.b", "a.b.c", false},
		{"a.*", "a.b.c", false},
		{"a.*.c", "a.x.*", true},
		{"a.>", "a.*", true},
	}
	for _, c := range cases {
		a, b := MustParsePattern(c.a), MustParsePattern(c.b)
		if got := a.Overlaps(b); got != c.want {
			t.Errorf("Overlaps(%q, %q) = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := b.Overlaps(a); got != c.want {
			t.Errorf("Overlaps(%q, %q) = %v, want %v (symmetry)", c.b, c.a, got, c.want)
		}
	}
}

func TestChildAndHasPrefix(t *testing.T) {
	base := MustParse("fab5.cc")
	child, err := base.Child("litho8")
	if err != nil {
		t.Fatal(err)
	}
	if child.String() != "fab5.cc.litho8" {
		t.Fatalf("Child = %q", child.String())
	}
	if !child.HasPrefix(base) {
		t.Error("child should have base as prefix")
	}
	if base.HasPrefix(child) {
		t.Error("base should not have child as prefix")
	}
	if !base.HasPrefix(base) {
		t.Error("subject should be its own prefix")
	}
	if child.HasPrefix(MustParse("fab5.ccx")) {
		t.Error("element-wise prefix must not match string prefix across element boundary")
	}
	if _, err := base.Child("bad element"); err == nil {
		t.Error("Child with illegal element should fail")
	}
}

// Property: a literal pattern matches exactly the identical subject.
func TestQuickLiteralPatternSelfMatch(t *testing.T) {
	f := func(parts []uint8) bool {
		elems := make([]string, 0, len(parts)%8+1)
		for i := 0; i <= len(parts)%8; i++ {
			elems = append(elems, string(rune('a'+int(pick(parts, i))%26)))
		}
		raw := strings.Join(elems, ".")
		s, err := Parse(raw)
		if err != nil {
			return false
		}
		p, err := ParsePattern(raw)
		if err != nil {
			return false
		}
		return p.Matches(s) && p.IsLiteral()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: replacing any single element of a subject with "*" still
// matches, and appending ">" to any strict prefix still matches.
func TestQuickWildcardGeneralization(t *testing.T) {
	f := func(parts []uint8, starAt uint8) bool {
		n := len(parts)%6 + 2
		elems := make([]string, n)
		for i := range elems {
			elems[i] = string(rune('a'+int(pick(parts, i))%26)) + string(rune('a'+i))
		}
		s := MustParse(strings.Join(elems, "."))

		withStar := make([]string, n)
		copy(withStar, elems)
		withStar[int(starAt)%n] = WildcardOne
		if !MustParsePattern(strings.Join(withStar, ".")).Matches(s) {
			return false
		}
		cut := int(starAt)%(n-1) + 1 // strict prefix length in [1, n-1]
		rest := strings.Join(elems[:cut], ".") + ".>"
		return MustParsePattern(rest).Matches(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: if two patterns both match a subject, they overlap.
func TestQuickMatchImpliesOverlap(t *testing.T) {
	pats := []string{"a.b", "a.*", "*.b", "a.>", ">", "a.b.c", "a.*.c", "*.*"}
	subs := []string{"a.b", "a.c", "a.b.c", "x.y", "a.x.c"}
	for _, ps := range pats {
		for _, qs := range pats {
			p, q := MustParsePattern(ps), MustParsePattern(qs)
			for _, ss := range subs {
				s := MustParse(ss)
				if p.Matches(s) && q.Matches(s) && !p.Overlaps(q) {
					t.Errorf("patterns %q and %q both match %q but Overlaps is false", ps, qs, ss)
				}
			}
		}
	}
}

func pick(parts []uint8, i int) uint8 {
	if len(parts) == 0 {
		return uint8(i * 7)
	}
	return parts[i%len(parts)]
}
