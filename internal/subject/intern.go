package subject

import "sync"

// Interner caches Parse results by raw string. Daemons and routers parse
// the subject of every inbound publication; workloads repeat subjects
// heavily (the paper's Figure 6/7 runs publish thousands of messages per
// subject), so interning turns the per-message strings.Split allocation
// into a map hit. Safe for concurrent use.
//
// The cache is bounded: when full, new subjects are parsed but not cached
// (no eviction bookkeeping, and no clear-on-overflow churn — a workload
// cycling through more subjects than the cap would defeat a cleared cache
// entirely). Parse failures are not cached — corrupt subjects are dropped
// by the caller anyway, and caching them would let garbage churn the table.
type Interner struct {
	mu  sync.Mutex
	max int
	m   map[string]Subject
}

// defaultInternerSize bounds an Interner built with NewInterner(0); sized
// above Figure 8's 10 000-subject workload.
const defaultInternerSize = 16384

// NewInterner returns an interner holding at most max subjects (0 selects
// the package default).
func NewInterner(max int) *Interner {
	if max <= 0 {
		max = defaultInternerSize
	}
	return &Interner{max: max, m: make(map[string]Subject)}
}

// Parse is Subject Parse with caching: repeated raws return the identical
// Subject value without re-splitting.
func (in *Interner) Parse(raw string) (Subject, error) {
	in.mu.Lock()
	if s, ok := in.m[raw]; ok {
		in.mu.Unlock()
		return s, nil
	}
	in.mu.Unlock()
	s, err := Parse(raw)
	if err != nil {
		return Subject{}, err
	}
	in.mu.Lock()
	if len(in.m) < in.max {
		in.m[raw] = s
	}
	in.mu.Unlock()
	return s, nil
}

// ParseBytes is Parse for a subject that arrived as a byte slice (a
// busproto.Header view aliasing a wire frame). On a cache hit — the
// steady state of a forwarding engine — it allocates nothing: the map
// probe uses the compiler's zero-copy []byte→string lookup. Only a miss
// pays the string conversion, and the interned key copies the bytes, so
// the cache never aliases the caller's frame.
func (in *Interner) ParseBytes(raw []byte) (Subject, error) {
	in.mu.Lock()
	if s, ok := in.m[string(raw)]; ok {
		in.mu.Unlock()
		return s, nil
	}
	in.mu.Unlock()
	return in.Parse(string(raw))
}
