package subject

import (
	"fmt"
	"testing"
)

func TestLaneIndexDeterministicAndBounded(t *testing.T) {
	for _, raw := range []string{"a", "a.b", "a.b.c", "fab5.cc.litho8.thick"} {
		s := MustParse(raw)
		for _, n := range []int{1, 2, 4, 7, 64} {
			i := s.LaneIndex(n)
			if i < 0 || i >= n {
				t.Fatalf("LaneIndex(%q, %d) = %d out of range", raw, n, i)
			}
			if j := MustParse(raw).LaneIndex(n); j != i {
				t.Fatalf("LaneIndex(%q, %d) not deterministic: %d vs %d", raw, n, i, j)
			}
		}
		if s.LaneIndex(1) != 0 || s.LaneIndex(0) != 0 {
			t.Fatalf("LaneIndex(%q) with <=1 lanes must be 0", raw)
		}
	}
}

// TestLaneIndexPrefixFamily: subjects sharing a two-element prefix land on
// one lane (their match-cache entries stay on one shard); the third
// element does not matter.
func TestLaneIndexPrefixFamily(t *testing.T) {
	base := MustParse("fan.grp.a").LaneIndex(8)
	for _, raw := range []string{"fan.grp.b", "fan.grp.zzz", "fan.grp.a.b.c"} {
		if got := MustParse(raw).LaneIndex(8); got != base {
			t.Errorf("%q lane %d, want %d (shared two-element prefix)", raw, got, base)
		}
	}
}

// TestLaneIndexSpreads: distinct two-element prefixes must not collapse
// onto a single lane — the whole point of the hash is spreading subject
// families across the delivery lanes.
func TestLaneIndexSpreads(t *testing.T) {
	used := make(map[int]bool)
	for i := 0; i < 64; i++ {
		used[MustParse(fmt.Sprintf("fam%d.x.data", i)).LaneIndex(8)] = true
	}
	if len(used) < 4 {
		t.Fatalf("64 prefixes hit only %d of 8 lanes", len(used))
	}
	// Separator is part of the hash: "a.bc" and "ab.c" are different
	// prefixes (they may still collide mod n, so compare the raw keys).
	if laneHash([]string{"a", "bc"}) == laneHash([]string{"ab", "c"}) {
		t.Error(`laneHash("a"."bc") == laneHash("ab"."c")`)
	}
}

func TestMatchCacheServesAndInvalidates(t *testing.T) {
	tr := NewTrie[int]()
	tr.Add(MustParsePattern("a.>"), 1)
	c := NewMatchCache[int](0)
	s := MustParse("a.b")

	got := c.Match(tr, s)
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("first match = %v", got)
	}
	if c.Len() != 1 {
		t.Fatalf("cache len = %d after fill", c.Len())
	}
	// Served from the shard (same snapshot slice).
	again := c.Match(tr, s)
	if len(again) != 1 || &again[0] != &got[0] {
		t.Fatal("second match did not come from the cache")
	}

	// A trie mutation invalidates lazily: the next lookup re-walks.
	tr.Add(MustParsePattern("a.b"), 2)
	got = c.Match(tr, s)
	if len(got) != 2 {
		t.Fatalf("post-mutation match = %v, want 2 values", got)
	}
	tr.Remove(MustParsePattern("a.b"), 2)
	got = c.Match(tr, s)
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("post-remove match = %v", got)
	}
}

// TestMatchCacheCapSkipsNotEvicts: a full shard stops caching new subjects
// but keeps serving (and never evicts) the ones it has — same policy as
// the trie's built-in cache.
func TestMatchCacheCapSkipsNotEvicts(t *testing.T) {
	tr := NewTrie[int]()
	tr.Add(MustParsePattern(">"), 7)
	c := NewMatchCache[int](2)
	c.Match(tr, MustParse("a.one"))
	c.Match(tr, MustParse("a.two"))
	c.Match(tr, MustParse("a.three")) // over cap: not cached
	if c.Len() != 2 {
		t.Fatalf("cache len = %d, want 2 (cap)", c.Len())
	}
	if got := c.Match(tr, MustParse("a.three")); len(got) != 1 || got[0] != 7 {
		t.Fatalf("uncached subject answered %v", got)
	}
}

// TestMatchCacheShardsIndependent: two shards over one trie invalidate
// independently and never see each other's entries.
func TestMatchCacheShardsIndependent(t *testing.T) {
	tr := NewTrie[int]()
	tr.Add(MustParsePattern("x.>"), 1)
	a, b := NewMatchCache[int](0), NewMatchCache[int](0)
	a.Match(tr, MustParse("x.a"))
	if a.Len() != 1 || b.Len() != 0 {
		t.Fatalf("shard lens = %d/%d, want 1/0", a.Len(), b.Len())
	}
	b.Match(tr, MustParse("x.b"))
	tr.Add(MustParsePattern("x.a"), 2)
	if got := a.Match(tr, MustParse("x.a")); len(got) != 2 {
		t.Fatalf("shard a stale after mutation: %v", got)
	}
	if got := b.Match(tr, MustParse("x.b")); len(got) != 1 {
		t.Fatalf("shard b answered %v", got)
	}
}
