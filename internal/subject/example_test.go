package subject_test

import (
	"fmt"
	"sort"

	"infobus/internal/subject"
)

// Subjects are hierarchical and patterns may use "*" (one element) and ">"
// (one or more trailing elements).
func ExamplePattern_Matches() {
	story := subject.MustParse("news.equity.gmc")
	for _, p := range []string{"news.equity.*", "news.>", "news.bond.*", "news.equity.gmc"} {
		fmt.Printf("%-18s matches %s: %v\n", p, story, subject.MustParsePattern(p).Matches(story))
	}
	// Output:
	// news.equity.*      matches news.equity.gmc: true
	// news.>             matches news.equity.gmc: true
	// news.bond.*        matches news.equity.gmc: false
	// news.equity.gmc    matches news.equity.gmc: true
}

// The trie answers "who subscribed to this subject?" in time proportional
// to the subject's depth, not the number of subscriptions.
func ExampleTrie() {
	tr := subject.NewTrie[string]()
	tr.Add(subject.MustParsePattern("fab5.>"), "plant-dashboard")
	tr.Add(subject.MustParsePattern("fab5.cc.*.temp"), "thermal-monitor")
	tr.Add(subject.MustParsePattern("news.>"), "trader-desk")

	got := tr.Match(subject.MustParse("fab5.cc.litho8.temp"))
	sort.Strings(got)
	fmt.Println(got)
	// Output:
	// [plant-dashboard thermal-monitor]
}
