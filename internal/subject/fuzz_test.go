package subject

import "testing"

// FuzzParsePattern: arbitrary strings never panic, and every accepted
// pattern matches consistently with itself when it is also a valid
// concrete subject.
func FuzzParsePattern(f *testing.F) {
	for _, s := range []string{"a.b.c", "a.*.>", ">", "*", "fab5.cc.litho8.thick", "..", "a..b", "a.b*"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		p, err := ParsePattern(s)
		if err != nil {
			return
		}
		if p.String() != s {
			t.Fatalf("pattern round trip: %q -> %q", s, p.String())
		}
		if subj, err := Parse(s); err == nil {
			if !p.Matches(subj) {
				t.Fatalf("literal pattern %q does not match itself", s)
			}
			if !p.Overlaps(p) {
				t.Fatalf("pattern %q does not overlap itself", s)
			}
		}
	})
}
