// Package subject implements hierarchical subject names and wildcard
// matching for Subject-Based Addressing, the naming scheme at the heart of
// the Information Bus (Oki, Pfluegl, Siegel, Skeen; SOSP '93, §3.1).
//
// A subject is a dot-separated sequence of non-empty elements, for example
// "fab5.cc.litho8.thick" (plant, cell controller, lithography station,
// wafer thickness). The bus itself enforces no policy on the interpretation
// of subjects; applications establish conventions.
//
// Subscriptions may use wildcards:
//
//   - "*" matches exactly one element at its position, e.g.
//     "news.equity.*" matches "news.equity.gmc" but not "news.equity" or
//     "news.equity.gmc.earnings".
//   - ">" matches one or more trailing elements and may only appear last,
//     e.g. "fab5.>" matches every subject under "fab5".
//
// Subject comparisons are case-sensitive and byte-wise; the bus never
// interprets element content.
package subject

import (
	"errors"
	"fmt"
	"strings"
)

// MaxElements bounds the number of elements in a subject; deeper subjects
// are rejected at parse time. The bound keeps the trie depth, and therefore
// the matching cost, small and predictable.
const MaxElements = 32

// MaxLength bounds the total byte length of a subject string.
const MaxLength = 500

const (
	sep = "."
	// WildcardOne matches exactly one element.
	WildcardOne = "*"
	// WildcardRest matches one or more trailing elements.
	WildcardRest = ">"
)

// SysPrefix is the first element of the reserved system subject space
// "_sys.>", on which the bus publishes telemetry about itself
// (internal/telemetry): per-node stats objects and ping answers.
// Subscribing under it is open to everyone (that is the point — anonymous
// self-observation, P4); publishing is restricted by the bus layer
// (internal/core) so applications cannot spoof system stats.
const SysPrefix = "_sys"

// IsSys reports whether the subject lies in the reserved "_sys.>" space.
func IsSys(s Subject) bool {
	return len(s.elements) > 0 && s.elements[0] == SysPrefix
}

// Common validation errors. Parse and ParsePattern wrap these with position
// information; use errors.Is to test for a category.
var (
	ErrEmpty           = errors.New("subject: empty subject")
	ErrTooLong         = errors.New("subject: exceeds maximum length")
	ErrTooDeep         = errors.New("subject: exceeds maximum element count")
	ErrEmptyElement    = errors.New("subject: empty element")
	ErrIllegalChar     = errors.New("subject: illegal character in element")
	ErrWildcardInName  = errors.New("subject: wildcard not allowed in a concrete subject")
	ErrMisplacedRest   = errors.New("subject: '>' must be the last element")
	ErrWildcardElement = errors.New("subject: wildcard must be a whole element")
)

// Subject is a parsed, validated, concrete (wildcard-free) subject name.
// The zero value is invalid; construct via Parse or MustParse.
type Subject struct {
	raw      string
	elements []string
	// laneKey is a hash of the subject-prefix (the first two elements),
	// computed once at parse time so delivery-lane selection costs the hot
	// path nothing. Subjects sharing a two-element prefix share a lane,
	// which keeps one subject family's match-cache entries on one shard.
	laneKey uint32
}

// Pattern is a parsed subscription pattern: a subject that may contain
// wildcards. Every concrete Subject is also a valid Pattern.
type Pattern struct {
	raw      string
	elements []string
	hasWild  bool
	hasRest  bool
}

// Parse validates and parses a concrete subject name. Wildcard characters
// are rejected: concrete subjects label published data objects and must
// identify exactly one point in the subject hierarchy.
func Parse(s string) (Subject, error) {
	elems, err := split(s)
	if err != nil {
		return Subject{}, err
	}
	for i, e := range elems {
		if e == WildcardOne || e == WildcardRest {
			return Subject{}, fmt.Errorf("element %d of %q: %w", i, s, ErrWildcardInName)
		}
	}
	return Subject{raw: s, elements: elems, laneKey: laneHash(elems)}, nil
}

// laneHash is FNV-1a over the subject-prefix: the first two elements (or
// the single element of a depth-1 subject), with the separator included so
// ("a.bc", "ab.c") hash differently.
func laneHash(elems []string) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	n := len(elems)
	if n > 2 {
		n = 2
	}
	for i := 0; i < n; i++ {
		if i > 0 {
			h = (h ^ '.') * prime32
		}
		for j := 0; j < len(elems[i]); j++ {
			h = (h ^ uint32(elems[i][j])) * prime32
		}
	}
	return h
}

// LaneIndex maps the subject onto one of n delivery lanes by its
// precomputed prefix hash. Deterministic: the same subject always lands on
// the same lane, and all subjects sharing a two-element prefix share one.
func (s Subject) LaneIndex(n int) int {
	if n <= 1 {
		return 0
	}
	return int(s.laneKey % uint32(n))
}

// MustParse is like Parse but panics on error. It is intended for
// package-level subjects and tests where the literal is known valid.
func MustParse(s string) Subject {
	subj, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return subj
}

// ParsePattern validates and parses a subscription pattern. "*" must occupy
// a whole element; ">" must occupy the final element.
func ParsePattern(s string) (Pattern, error) {
	elems, err := split(s)
	if err != nil {
		return Pattern{}, err
	}
	p := Pattern{raw: s, elements: elems}
	for i, e := range elems {
		switch e {
		case WildcardOne:
			p.hasWild = true
		case WildcardRest:
			if i != len(elems)-1 {
				return Pattern{}, fmt.Errorf("element %d of %q: %w", i, s, ErrMisplacedRest)
			}
			p.hasWild = true
			p.hasRest = true
		default:
			if strings.ContainsAny(e, WildcardOne+WildcardRest) {
				return Pattern{}, fmt.Errorf("element %d of %q: %w", i, s, ErrWildcardElement)
			}
		}
	}
	return p, nil
}

// MustParsePattern is like ParsePattern but panics on error.
func MustParsePattern(s string) Pattern {
	p, err := ParsePattern(s)
	if err != nil {
		panic(err)
	}
	return p
}

// split validates the shared lexical structure of subjects and patterns and
// returns the elements.
func split(s string) ([]string, error) {
	if s == "" {
		return nil, ErrEmpty
	}
	if len(s) > MaxLength {
		return nil, fmt.Errorf("%q (%d bytes): %w", s[:32]+"...", len(s), ErrTooLong)
	}
	elems := strings.Split(s, sep)
	if len(elems) > MaxElements {
		return nil, fmt.Errorf("%q (%d elements): %w", s, len(elems), ErrTooDeep)
	}
	for i, e := range elems {
		if e == "" {
			return nil, fmt.Errorf("element %d of %q: %w", i, s, ErrEmptyElement)
		}
		for _, r := range e {
			// Control characters and whitespace would make subjects
			// unprintable in monitoring tools and ambiguous in logs.
			if r < 0x21 || r == 0x7f {
				return nil, fmt.Errorf("element %d of %q: %w", i, s, ErrIllegalChar)
			}
		}
	}
	return elems, nil
}

// String returns the canonical dotted form.
func (s Subject) String() string { return s.raw }

// Elements returns the subject's elements. The slice must not be modified.
func (s Subject) Elements() []string { return s.elements }

// Depth returns the number of elements.
func (s Subject) Depth() int { return len(s.elements) }

// Family returns the subject's two-element prefix ("fab5.cc" for
// "fab5.cc.litho8.thick"), the same grouping laneHash keys delivery lanes
// by. The result is a substring of the canonical form — no allocation —
// so per-message accounting (telemetry top-K tables) can key on it from
// the delivery hot path.
func (s Subject) Family() string {
	if len(s.elements) <= 2 {
		return s.raw
	}
	return s.raw[:len(s.elements[0])+1+len(s.elements[1])]
}

// IsZero reports whether s is the (invalid) zero Subject.
func (s Subject) IsZero() bool { return len(s.elements) == 0 }

// Child returns the subject extended by one element, e.g.
// MustParse("fab5.cc").Child("litho8") == "fab5.cc.litho8".
func (s Subject) Child(element string) (Subject, error) {
	return Parse(s.raw + sep + element)
}

// HasPrefix reports whether p is an ancestor of (or equal to) s in the
// subject hierarchy, element-wise: "fab5.cc" is a prefix of
// "fab5.cc.litho8" but not of "fab5.ccx".
func (s Subject) HasPrefix(p Subject) bool {
	if len(p.elements) > len(s.elements) {
		return false
	}
	for i, e := range p.elements {
		if s.elements[i] != e {
			return false
		}
	}
	return true
}

// String returns the canonical dotted form of the pattern.
func (p Pattern) String() string { return p.raw }

// Elements returns the pattern's elements. The slice must not be modified.
func (p Pattern) Elements() []string { return p.elements }

// IsZero reports whether p is the (invalid) zero Pattern.
func (p Pattern) IsZero() bool { return len(p.elements) == 0 }

// IsLiteral reports whether the pattern contains no wildcards and therefore
// matches exactly one subject.
func (p Pattern) IsLiteral() bool { return !p.hasWild }

// Matches reports whether the pattern matches the concrete subject.
//
// Matching is element-wise: "*" consumes exactly one element and ">"
// consumes one or more trailing elements. A pattern without wildcards
// matches only the identical subject.
func (p Pattern) Matches(s Subject) bool {
	pe, se := p.elements, s.elements
	for i, e := range pe {
		switch e {
		case WildcardRest:
			// ">" requires at least one remaining subject element.
			return len(se) > i
		case WildcardOne:
			if i >= len(se) {
				return false
			}
		default:
			if i >= len(se) || se[i] != e {
				return false
			}
		}
	}
	return len(pe) == len(se)
}

// Overlaps reports whether two patterns can both match some subject. It is
// used by information routers to decide whether a remote subscription makes
// forwarding a local subscription's traffic necessary.
func (p Pattern) Overlaps(q Pattern) bool {
	i, j := 0, 0
	for i < len(p.elements) && j < len(q.elements) {
		a, b := p.elements[i], q.elements[j]
		if a == WildcardRest || b == WildcardRest {
			return true
		}
		if a != b && a != WildcardOne && b != WildcardOne {
			return false
		}
		i++
		j++
	}
	// Both exhausted simultaneously: a common subject exists. Otherwise the
	// longer pattern needs elements the shorter cannot supply, unless the
	// shorter ends in ">" (handled above).
	return i == len(p.elements) && j == len(q.elements)
}
