package subject

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

func matchStrings(t *Trie[string], subj string) []string {
	out := t.Match(MustParse(subj))
	sort.Strings(out)
	return out
}

func TestTrieExactMatch(t *testing.T) {
	tr := NewTrie[string]()
	tr.Add(MustParsePattern("a.b"), "s1")
	tr.Add(MustParsePattern("a.c"), "s2")
	tr.Add(MustParsePattern("a.b"), "s3")

	got := matchStrings(tr, "a.b")
	want := []string{"s1", "s3"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("Match(a.b) = %v, want %v", got, want)
	}
	if got := matchStrings(tr, "a.d"); len(got) != 0 {
		t.Errorf("Match(a.d) = %v, want empty", got)
	}
	if got := matchStrings(tr, "a"); len(got) != 0 {
		t.Errorf("Match(a) = %v, want empty", got)
	}
}

func TestTrieWildcards(t *testing.T) {
	tr := NewTrie[string]()
	tr.Add(MustParsePattern("news.equity.*"), "star")
	tr.Add(MustParsePattern("news.>"), "rest")
	tr.Add(MustParsePattern("news.equity.gmc"), "exact")
	tr.Add(MustParsePattern(">"), "all")

	cases := []struct {
		subj string
		want []string
	}{
		{"news.equity.gmc", []string{"all", "exact", "rest", "star"}},
		{"news.equity.ibm", []string{"all", "rest", "star"}},
		{"news.bond", []string{"all", "rest"}},
		{"news", []string{"all"}},
		{"sports.scores", []string{"all"}},
		{"news.equity.gmc.earnings", []string{"all", "rest"}},
	}
	for _, c := range cases {
		got := matchStrings(tr, c.subj)
		if fmt.Sprint(got) != fmt.Sprint(c.want) {
			t.Errorf("Match(%q) = %v, want %v", c.subj, got, c.want)
		}
	}
}

func TestTrieDuplicateAdd(t *testing.T) {
	tr := NewTrie[string]()
	if !tr.Add(MustParsePattern("a.b"), "v") {
		t.Error("first Add should report true")
	}
	if tr.Add(MustParsePattern("a.b"), "v") {
		t.Error("duplicate Add should report false")
	}
	if tr.Len() != 1 {
		t.Errorf("Len = %d, want 1", tr.Len())
	}
	if got := tr.Match(MustParse("a.b")); len(got) != 1 {
		t.Errorf("Match returned %v, want one value", got)
	}
}

func TestTrieDistinctValueDedup(t *testing.T) {
	// One subscriber registered under two overlapping patterns must be
	// delivered once per message, not once per pattern.
	tr := NewTrie[string]()
	tr.Add(MustParsePattern("a.>"), "v")
	tr.Add(MustParsePattern("a.b"), "v")
	if got := tr.Match(MustParse("a.b")); len(got) != 1 {
		t.Errorf("Match = %v, want single deduplicated value", got)
	}
}

func TestTrieRemove(t *testing.T) {
	tr := NewTrie[string]()
	pats := []string{"a.b", "a.*", "a.>", "*", ">"}
	for _, p := range pats {
		tr.Add(MustParsePattern(p), "v:"+p)
	}
	if tr.Len() != len(pats) {
		t.Fatalf("Len = %d, want %d", tr.Len(), len(pats))
	}
	for i, p := range pats {
		if !tr.Remove(MustParsePattern(p), "v:"+p) {
			t.Errorf("Remove(%q) = false, want true", p)
		}
		if tr.Remove(MustParsePattern(p), "v:"+p) {
			t.Errorf("second Remove(%q) = true, want false", p)
		}
		if tr.Len() != len(pats)-i-1 {
			t.Errorf("Len after removing %q = %d", p, tr.Len())
		}
	}
	if got := tr.Match(MustParse("a.b")); len(got) != 0 {
		t.Errorf("Match after removal = %v, want empty", got)
	}
	// Interior nodes must have been pruned.
	if len(tr.root.children) != 0 || tr.root.star != nil {
		t.Error("trie not pruned after removing all patterns")
	}
}

func TestTrieRemoveAbsent(t *testing.T) {
	tr := NewTrie[string]()
	tr.Add(MustParsePattern("a.b"), "v")
	if tr.Remove(MustParsePattern("a.c"), "v") {
		t.Error("Remove of absent pattern should report false")
	}
	if tr.Remove(MustParsePattern("a.b"), "other") {
		t.Error("Remove of absent value should report false")
	}
	if tr.Len() != 1 {
		t.Errorf("Len = %d, want 1", tr.Len())
	}
}

func TestTrieMatchAny(t *testing.T) {
	tr := NewTrie[string]()
	tr.Add(MustParsePattern("fab5.>"), "router")
	if !tr.MatchAny(MustParse("fab5.cc.litho8")) {
		t.Error("MatchAny should find fab5.>")
	}
	if tr.MatchAny(MustParse("fab6.cc")) {
		t.Error("MatchAny should not match fab6.cc")
	}
}

func TestTriePatterns(t *testing.T) {
	tr := NewTrie[string]()
	for _, p := range []string{"a.b", "a.*", "x.>", "a.b"} {
		tr.Add(MustParsePattern(p), "v1")
	}
	tr.Add(MustParsePattern("a.b"), "v2")
	got := tr.Patterns()
	want := []string{"a.*", "a.b", "x.>"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("Patterns = %v, want %v", got, want)
	}
}

// The trie must agree with the reference semantics of Pattern.Matches for
// randomly generated pattern/subject populations.
func TestTrieAgainstReferenceMatcher(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	alphabet := []string{"a", "b", "c"}
	randElems := func(n int, allowWild bool) string {
		parts := make([]string, n)
		for i := range parts {
			r := rng.Intn(10)
			switch {
			case allowWild && r == 0:
				parts[i] = "*"
			case allowWild && r == 1 && i == n-1:
				parts[i] = ">"
			default:
				parts[i] = alphabet[rng.Intn(len(alphabet))]
			}
		}
		out := ""
		for i, p := range parts {
			if i > 0 {
				out += "."
			}
			out += p
		}
		return out
	}

	tr := NewTrie[int]()
	patterns := make([]Pattern, 0, 200)
	for i := 0; i < 200; i++ {
		p, err := ParsePattern(randElems(rng.Intn(4)+1, true))
		if err != nil {
			continue
		}
		patterns = append(patterns, p)
		tr.Add(p, len(patterns)-1)
	}
	for trial := 0; trial < 500; trial++ {
		s := MustParse(randElems(rng.Intn(4)+1, false))
		want := make(map[int]struct{})
		for i, p := range patterns {
			if p.Matches(s) {
				want[i] = struct{}{}
			}
		}
		got := tr.Match(s)
		if len(got) != len(want) {
			t.Fatalf("subject %q: trie matched %d values, reference %d", s, len(got), len(want))
		}
		for _, v := range got {
			if _, ok := want[v]; !ok {
				t.Fatalf("subject %q: trie matched pattern %q which does not match", s, patterns[v])
			}
		}
	}
}

func TestTrieConcurrency(t *testing.T) {
	tr := NewTrie[int]()
	var wg sync.WaitGroup
	subj := MustParse("load.test.subject")
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				p := MustParsePattern(fmt.Sprintf("load.test.%c", 'a'+i%26))
				tr.Add(p, w*1000+i)
				tr.Match(subj)
				tr.MatchAny(subj)
				tr.Remove(p, w*1000+i)
			}
		}(w)
	}
	wg.Wait()
}

func BenchmarkTrieMatch(b *testing.B) {
	for _, nsub := range []int{10, 1000, 100000} {
		b.Run(fmt.Sprintf("subs=%d", nsub), func(b *testing.B) {
			tr := NewTrie[int]()
			for i := 0; i < nsub; i++ {
				tr.Add(MustParsePattern(fmt.Sprintf("bench.s%d.data", i)), i)
			}
			s := MustParse(fmt.Sprintf("bench.s%d.data", nsub/2))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if got := tr.Match(s); len(got) != 1 {
					b.Fatalf("Match = %v", got)
				}
			}
		})
	}
}

// TestTrieMatchCacheInvalidation exercises the match cache: repeated
// Match calls on the same subject are served from cache, and any Add or
// Remove must invalidate it so results never go stale.
func TestTrieMatchCacheInvalidation(t *testing.T) {
	tr := NewTrie[string]()
	tr.Add(MustParsePattern("a.>"), "first")
	s := MustParse("a.b")
	for i := 0; i < 3; i++ { // warm and re-hit the cache
		if got := tr.Match(s); len(got) != 1 || got[0] != "first" {
			t.Fatalf("Match #%d = %v", i, got)
		}
	}
	tr.Add(MustParsePattern("a.b"), "second")
	if got := tr.Match(s); len(got) != 2 {
		t.Fatalf("after Add: Match = %v, want 2 values", got)
	}
	tr.Remove(MustParsePattern("a.>"), "first")
	if got := tr.Match(s); len(got) != 1 || got[0] != "second" {
		t.Fatalf("after Remove: Match = %v, want [second]", got)
	}
	// A ">"-terminated add takes the early-return path in Add; it must
	// invalidate too.
	tr.Add(MustParsePattern(">"), "rest")
	if got := tr.Match(s); len(got) != 2 {
		t.Fatalf("after rest-Add: Match = %v, want 2 values", got)
	}
}

// TestTrieMatchCacheConcurrent hammers Match while the subscription set
// churns; run under -race this guards the gen/cacheMu protocol.
func TestTrieMatchCacheConcurrent(t *testing.T) {
	tr := NewTrie[int]()
	tr.Add(MustParsePattern("stable.>"), 0)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 500; i++ {
			tr.Add(MustParsePattern("churn.x"), i)
			tr.Remove(MustParsePattern("churn.x"), i)
		}
	}()
	s := MustParse("stable.subject")
	for {
		select {
		case <-done:
			return
		default:
			if got := tr.Match(s); len(got) != 1 || got[0] != 0 {
				t.Fatalf("Match = %v", got)
			}
		}
	}
}

func TestInterner(t *testing.T) {
	in := NewInterner(2)
	a1, err := in.Parse("x.y")
	if err != nil {
		t.Fatal(err)
	}
	a2, _ := in.Parse("x.y")
	if a1.String() != a2.String() || a1.Depth() != a2.Depth() {
		t.Fatalf("interned parse mismatch: %v vs %v", a1, a2)
	}
	if _, err := in.Parse("..bad"); err == nil {
		t.Fatal("interner accepted an invalid subject")
	}
	// Past the cap, parses stay correct (just uncached).
	for _, raw := range []string{"a.b", "c.d", "e.f", "x.y"} {
		s, err := in.Parse(raw)
		if err != nil || s.String() != raw {
			t.Fatalf("Parse(%q) = %v, %v", raw, s, err)
		}
	}
}

func TestInternerParseBytes(t *testing.T) {
	in := NewInterner(8)
	raw := []byte("wire.frame.subject")
	s1, err := in.ParseBytes(raw)
	if err != nil || s1.String() != "wire.frame.subject" {
		t.Fatalf("ParseBytes = %v, %v", s1, err)
	}
	// The interned key must not alias the caller's frame: scribbling over
	// the byte slice (as frame-buffer reuse would) must not corrupt hits.
	for i := range raw {
		raw[i] = 'z'
	}
	s2, err := in.ParseBytes([]byte("wire.frame.subject"))
	if err != nil || s2.String() != "wire.frame.subject" {
		t.Fatalf("re-lookup after scribble = %v, %v", s2, err)
	}
	if _, err := in.ParseBytes([]byte("..bad")); err == nil {
		t.Fatal("ParseBytes accepted an invalid subject")
	}
	// Cache hits are the forwarding steady state and must not allocate.
	key := []byte("hot.path.subject")
	if _, err := in.ParseBytes(key); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if _, err := in.ParseBytes(key); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("ParseBytes cache hit allocates %.1f, want 0", allocs)
	}
}
