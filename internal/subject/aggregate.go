package subject

import (
	"sort"
	"strings"
)

// AggregatePatterns collapses an oversized interest-pattern set to
// first-element wildcard prefixes ("bench.>"), and to a single ">" if even
// that is too many. Aggregation only widens interest, never narrows it: a
// router acting on the aggregate may over-forward slightly, which is safe,
// instead of the advertisement occupying the shared medium (the Figure 8
// constraint).
//
// The operation is idempotent and transitive-safe: feeding its own output
// (or a union of outputs from several hops) back in yields an equally wide
// or wider set, never a narrower one, so mesh routers can re-aggregate at
// every hop. Sets at or under max are returned unchanged.
func AggregatePatterns(patterns []string, max int) []string {
	if len(patterns) <= max {
		return patterns
	}
	prefixes := make(map[string]struct{})
	for _, p := range patterns {
		first, _, found := strings.Cut(p, ".")
		if !found {
			first = p
		}
		if first == WildcardOne || first == WildcardRest {
			return []string{WildcardRest}
		}
		prefixes[first] = struct{}{}
	}
	if len(prefixes) > max {
		return []string{WildcardRest}
	}
	out := make([]string, 0, len(prefixes))
	for p := range prefixes {
		out = append(out, p+"."+WildcardRest)
	}
	sort.Strings(out)
	return out
}
