// Package netsim simulates the network substrate of the paper's evaluation:
// a shared 10 Mb/s broadcast Ethernet connecting a rack of workstations
// (SPARCstation 2s and IPXs in the original). The Information Bus stack is
// measured on this simulator because the 1993 testbed is unavailable; the
// simulator reproduces the properties the appendix figures depend on:
//
//   - a shared medium: one frame on the wire at a time, so aggregate
//     throughput saturates at the device bandwidth (Figure 7);
//   - true broadcast: delivering a frame to N hosts costs the same as
//     delivering it to one (the "publication rate is independent of the
//     number of subscribers" invariant);
//   - per-fragment overhead mirroring Ethernet/UDP framing, so small
//     messages are overhead-dominated (Figure 6's msgs/sec curve);
//   - collision-style degradation under unrelated load (the dip between
//     5 KB and 10 KB in Figure 7);
//   - unreliable datagram semantics: loss, duplication, reordering, and
//     bounded receive buffers that drop on overflow, exactly the failure
//     model §2 assumes; plus link partitions.
//
// The simulation runs in real time scaled by Config.Speedup, so the bus
// protocol stack above it runs as ordinary concurrent goroutines with no
// special instrumentation. All randomness is drawn from a seeded generator;
// with Speedup kept moderate, runs are statistically reproducible.
package netsim

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"
)

// NodeID identifies a host on the network.
type NodeID int32

// Broadcast is the destination for broadcast sends.
const Broadcast NodeID = -1

// MaxDatagram bounds a single datagram, mirroring the UDP maximum.
const MaxDatagram = 64 << 10

// Ethernet framing constants used for transmission-time accounting.
const (
	mtu           = 1500 // IP MTU on Ethernet
	ipUDPHeader   = 28   // IP (20) + UDP (8)
	frameOverhead = 38   // Ethernet preamble+header+FCS+interframe gap
	fragPayload   = mtu - ipUDPHeader
)

// Config describes the simulated network.
type Config struct {
	// BandwidthBPS is the shared medium's capacity in bits per second.
	// The paper's network: 10 Mb/s Ethernet.
	BandwidthBPS float64
	// BaseLatency is the fixed per-hop propagation plus kernel/daemon cost
	// added to each delivery.
	BaseLatency time.Duration
	// JitterLatency is the maximum uniform random addition to BaseLatency.
	JitterLatency time.Duration
	// LossProb, DupProb, ReorderProb are per-delivery probabilities in
	// [0, 1]. Reordered packets are delayed by up to 4x BaseLatency.
	LossProb, DupProb, ReorderProb float64
	// BackgroundLoad in [0, 1) models unrelated traffic occupying the
	// medium: effective bandwidth shrinks and, above ~30%, collision-style
	// loss and delay variance appear (the Figure 7 dip).
	BackgroundLoad float64
	// RecvBuffer is each node's inbound packet queue length; packets
	// arriving at a full queue are dropped, like a UDP socket buffer.
	RecvBuffer int
	// Speedup divides all simulated durations: 10 means the simulation
	// runs 10x faster than the modelled network. Values <= 0 default to 1.
	Speedup float64
	// Seed for the deterministic random source.
	Seed int64
}

// DefaultConfig returns the paper's testbed: lightly loaded 10 Mb/s
// Ethernet, sub-millisecond base latency.
func DefaultConfig() Config {
	return Config{
		BandwidthBPS:  10e6,
		BaseLatency:   200 * time.Microsecond,
		JitterLatency: 100 * time.Microsecond,
		RecvBuffer:    512,
		Speedup:       1,
		Seed:          1,
	}
}

// Packet is a received datagram.
type Packet struct {
	From    NodeID
	To      NodeID // Broadcast for broadcast frames
	Payload []byte
}

// Stats are cumulative network counters.
type Stats struct {
	Sent            uint64 // datagrams handed to the medium
	Delivered       uint64 // datagram copies placed in receive queues
	LostRandom      uint64 // dropped by the loss model
	LostCollision   uint64 // dropped by collision under background load
	LostOverflow    uint64 // dropped at a full receive buffer
	LostPartition   uint64 // suppressed across a partition
	Duplicated      uint64 // extra copies injected
	Reordered       uint64 // deliveries delayed out of order
	BytesOnWire     uint64 // payload bytes transmitted
	WireTimeNanos   uint64 // cumulative medium occupancy (unscaled model time)
	OversizeRejects uint64 // sends rejected for exceeding MaxDatagram
}

// Network is the shared medium. Create nodes with NewNode, then send.
type Network struct {
	cfg Config

	rngMu sync.Mutex
	rng   *rand.Rand

	mu      sync.Mutex
	nodes   map[NodeID]*Node
	nextID  NodeID
	groups  map[NodeID]int // partition group; default group 0
	closed  bool
	sendQ   chan outgoing
	done    chan struct{}
	stats   Stats
	statsMu sync.Mutex
}

type outgoing struct {
	pkt Packet
}

// Errors.
var (
	ErrClosed   = errors.New("netsim: network closed")
	ErrOversize = errors.New("netsim: datagram exceeds MaxDatagram")
)

// NewNetwork starts a network with the given configuration.
func NewNetwork(cfg Config) *Network {
	if cfg.Speedup <= 0 {
		cfg.Speedup = 1
	}
	if cfg.BandwidthBPS <= 0 {
		cfg.BandwidthBPS = 10e6
	}
	if cfg.RecvBuffer <= 0 {
		cfg.RecvBuffer = 512
	}
	n := &Network{
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		nodes:  make(map[NodeID]*Node),
		groups: make(map[NodeID]int),
		sendQ:  make(chan outgoing, 4096),
		done:   make(chan struct{}),
	}
	go n.wire()
	return n
}

// Close shuts the medium down; pending packets are discarded and all node
// receive channels are closed.
func (n *Network) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	close(n.done)
	nodes := make([]*Node, 0, len(n.nodes))
	for _, nd := range n.nodes {
		nodes = append(nodes, nd)
	}
	n.mu.Unlock()
	for _, nd := range nodes {
		nd.close()
	}
}

// Node is one simulated host's network interface.
type Node struct {
	id    NodeID
	name  string
	net   *Network
	inbox chan Packet

	// deliveryQ models the NIC/kernel receive path: packets to one
	// destination arrive in the order the wire carried them (FIFO), each
	// after its propagation latency. Explicit reordering (ReorderProb)
	// bypasses this queue.
	deliveryQ chan delayedPacket

	closeMu sync.Mutex
	closed  bool
}

type delayedPacket struct {
	pkt      Packet
	arriveAt time.Time
}

// deliveryLoop applies per-packet latency sequentially, preserving
// per-destination FIFO order.
func (nd *Node) deliveryLoop() {
	for {
		select {
		case <-nd.net.done:
			return
		case dp, ok := <-nd.deliveryQ:
			if !ok {
				return
			}
			if wait := time.Until(dp.arriveAt); wait > 0 {
				preciseSleep(wait, nd.net.done)
			}
			if nd.deliver(dp.pkt) {
				nd.net.bump(func(s *Stats) { s.Delivered++ })
			} else {
				nd.net.bump(func(s *Stats) { s.LostOverflow++ })
			}
		}
	}
}

// deliver places a packet in the inbox unless the node is closed or the
// queue is full. The mutex serialises delivery against close so the
// channel is never closed mid-send.
func (nd *Node) deliver(pkt Packet) bool {
	nd.closeMu.Lock()
	defer nd.closeMu.Unlock()
	if nd.closed {
		return false
	}
	select {
	case nd.inbox <- pkt:
		return true
	default:
		return false
	}
}

func (nd *Node) close() {
	nd.closeMu.Lock()
	defer nd.closeMu.Unlock()
	if !nd.closed {
		nd.closed = true
		close(nd.inbox)
	}
}

// NewNode attaches a host to the network.
func (n *Network) NewNode(name string) *Node {
	n.mu.Lock()
	defer n.mu.Unlock()
	id := n.nextID
	n.nextID++
	nd := &Node{
		id: id, name: name, net: n,
		inbox:     make(chan Packet, n.cfg.RecvBuffer),
		deliveryQ: make(chan delayedPacket, 4*n.cfg.RecvBuffer),
	}
	n.nodes[id] = nd
	n.groups[id] = 0
	go nd.deliveryLoop()
	return nd
}

// ID returns the node's network identifier.
func (nd *Node) ID() NodeID { return nd.id }

// Name returns the host name given at creation.
func (nd *Node) Name() string { return nd.name }

// Recv returns the node's receive channel. It is closed when the network
// closes.
func (nd *Node) Recv() <-chan Packet { return nd.inbox }

// Send transmits a unicast datagram. Delivery is unreliable.
func (nd *Node) Send(to NodeID, payload []byte) error {
	return nd.net.enqueue(Packet{From: nd.id, To: to, Payload: payload})
}

// SendBroadcast transmits a broadcast datagram to every node (including
// none; the sender does not receive its own broadcasts, matching a socket
// with loopback disabled).
func (nd *Node) SendBroadcast(payload []byte) error {
	return nd.net.enqueue(Packet{From: nd.id, To: Broadcast, Payload: payload})
}

func (n *Network) enqueue(pkt Packet) error {
	if len(pkt.Payload) > MaxDatagram {
		n.bump(func(s *Stats) { s.OversizeRejects++ })
		return fmt.Errorf("%d bytes: %w", len(pkt.Payload), ErrOversize)
	}
	// Copy the payload: the sender may reuse its buffer immediately.
	cp := append([]byte(nil), pkt.Payload...)
	pkt.Payload = cp
	// Check closure first: a two-way select could otherwise enqueue into
	// the buffered channel even after Close.
	select {
	case <-n.done:
		return ErrClosed
	default:
	}
	select {
	case <-n.done:
		return ErrClosed
	case n.sendQ <- outgoing{pkt: pkt}:
		n.bump(func(s *Stats) { s.Sent++ })
		return nil
	}
}

// wire is the medium: it serialises transmissions, charging each frame its
// transmission time, then fans copies out to receivers.
func (n *Network) wire() {
	for {
		select {
		case <-n.done:
			return
		case out := <-n.sendQ:
			n.transmit(out.pkt)
		}
	}
}

// transmissionTime models the medium occupancy of one datagram, including
// IP fragmentation and Ethernet framing overhead, shrunk by background
// load.
func (n *Network) transmissionTime(size int) time.Duration {
	frags := (size + fragPayload - 1) / fragPayload
	if frags == 0 {
		frags = 1
	}
	bits := float64(size+frags*(ipUDPHeader+frameOverhead)) * 8
	bw := n.cfg.BandwidthBPS * (1 - n.backgroundLoad())
	return time.Duration(bits / bw * float64(time.Second))
}

// backgroundLoad reads the (runtime-adjustable) unrelated-traffic level.
func (n *Network) backgroundLoad() float64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.cfg.BackgroundLoad
}

func (n *Network) transmit(pkt Packet) {
	occupancy := n.transmissionTime(len(pkt.Payload))
	n.bump(func(s *Stats) {
		s.BytesOnWire += uint64(len(pkt.Payload))
		s.WireTimeNanos += uint64(occupancy)
	})
	// Collision model: under background load, some frames are lost and
	// retransmission jitter stretches occupancy. Kicks in softly above
	// ~30% unrelated utilisation.
	collisionP := 0.0
	if bl := n.backgroundLoad(); bl > 0.3 {
		collisionP = (bl - 0.3) * 0.5
	}
	if collisionP > 0 && n.chance(collisionP) {
		occupancy += time.Duration(n.randFloat() * float64(occupancy))
		if n.chance(0.5) {
			n.sleep(occupancy)
			n.bump(func(s *Stats) { s.LostCollision++ })
			return
		}
	}
	n.sleep(occupancy)

	n.mu.Lock()
	srcGroup := n.groups[pkt.From]
	var dests []*Node
	if pkt.To == Broadcast {
		for id, nd := range n.nodes {
			if id != pkt.From && n.groups[id] == srcGroup {
				dests = append(dests, nd)
			}
		}
		// Count cross-partition suppressions for observability.
		for id := range n.nodes {
			if id != pkt.From && n.groups[id] != srcGroup {
				n.statsMu.Lock()
				n.stats.LostPartition++
				n.statsMu.Unlock()
			}
		}
	} else {
		nd, ok := n.nodes[pkt.To]
		if ok && n.groups[pkt.To] == srcGroup {
			dests = append(dests, nd)
		} else if ok {
			n.statsMu.Lock()
			n.stats.LostPartition++
			n.statsMu.Unlock()
		}
	}
	closed := n.closed
	n.mu.Unlock()
	if closed {
		return
	}

	for _, dst := range dests {
		n.deliverModel(pkt, dst)
	}
}

// deliverModel applies the loss/dup/reorder model and schedules delivery.
func (n *Network) deliverModel(pkt Packet, dst *Node) {
	if n.cfg.LossProb > 0 && n.chance(n.cfg.LossProb) {
		n.bump(func(s *Stats) { s.LostRandom++ })
		return
	}
	copies := 1
	if n.cfg.DupProb > 0 && n.chance(n.cfg.DupProb) {
		copies = 2
		n.bump(func(s *Stats) { s.Duplicated++ })
	}
	for c := 0; c < copies; c++ {
		lat := n.cfg.BaseLatency
		if n.cfg.JitterLatency > 0 {
			lat += time.Duration(n.randFloat() * float64(n.cfg.JitterLatency))
		}
		outOfOrder := false
		if n.cfg.ReorderProb > 0 && n.chance(n.cfg.ReorderProb) {
			lat += time.Duration(n.randFloat() * 4 * float64(n.cfg.BaseLatency+n.cfg.JitterLatency))
			n.bump(func(s *Stats) { s.Reordered++ })
			outOfOrder = true
		}
		n.scheduleDelivery(pkt, dst, lat, outOfOrder)
	}
}

func (n *Network) scheduleDelivery(pkt Packet, dst *Node, lat time.Duration, outOfOrder bool) {
	d := n.scale(lat)
	if outOfOrder {
		// Explicit reordering: bypass the FIFO delivery queue.
		go func() {
			preciseSleep(d, n.done)
			select {
			case <-n.done:
				return
			default:
			}
			if dst.deliver(pkt) {
				n.bump(func(s *Stats) { s.Delivered++ })
			} else {
				n.bump(func(s *Stats) { s.LostOverflow++ })
			}
		}()
		return
	}
	select {
	case dst.deliveryQ <- delayedPacket{pkt: pkt, arriveAt: time.Now().Add(d)}:
	default:
		n.bump(func(s *Stats) { s.LostOverflow++ })
	}
}

// preciseSleep waits for d with sub-timer-slack accuracy: a coarse timer
// covers all but the tail, which is spun. It returns early if done closes
// during the coarse phase.
func preciseSleep(d time.Duration, done <-chan struct{}) {
	const slack = time.Millisecond
	start := time.Now()
	if d > slack {
		timer := time.NewTimer(d - slack)
		select {
		case <-timer.C:
		case <-done:
			timer.Stop()
			return
		}
	}
	for time.Since(start) < d {
		runtime.Gosched()
	}
}

// Partition splits the network: every listed node moves to an isolated
// group; all other nodes remain in group 0. Packets do not cross groups.
func (n *Network) Partition(isolated ...NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for id := range n.groups {
		n.groups[id] = 0
	}
	for _, id := range isolated {
		n.groups[id] = 1
	}
}

// Heal removes all partitions.
func (n *Network) Heal() {
	n.mu.Lock()
	defer n.mu.Unlock()
	for id := range n.groups {
		n.groups[id] = 0
	}
}

// SetBackgroundLoad adjusts the unrelated-traffic model at run time, used
// by the Figure 7 collision-dip experiment.
func (n *Network) SetBackgroundLoad(load float64) {
	n.mu.Lock()
	n.cfg.BackgroundLoad = load
	n.mu.Unlock()
}

// Stats returns a snapshot of the cumulative counters.
func (n *Network) Stats() Stats {
	n.statsMu.Lock()
	defer n.statsMu.Unlock()
	return n.stats
}

// WireTime converts the cumulative medium occupancy into a duration of
// modelled (unscaled) network time.
func (s Stats) WireTime() time.Duration { return time.Duration(s.WireTimeNanos) }

func (n *Network) bump(f func(*Stats)) {
	n.statsMu.Lock()
	f(&n.stats)
	n.statsMu.Unlock()
}

func (n *Network) chance(p float64) bool { return n.randFloat() < p }

func (n *Network) randFloat() float64 {
	n.rngMu.Lock()
	defer n.rngMu.Unlock()
	return n.rng.Float64()
}

func (n *Network) scale(d time.Duration) time.Duration {
	return time.Duration(float64(d) / n.cfg.Speedup)
}

func (n *Network) sleep(d time.Duration) {
	d = n.scale(d)
	if d <= 0 {
		return
	}
	preciseSleep(d, n.done)
}
