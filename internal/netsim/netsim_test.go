package netsim

import (
	"errors"
	"testing"
	"time"
)

// fastConfig returns a configuration quick enough for unit tests while
// still exercising the full code path.
func fastConfig() Config {
	cfg := DefaultConfig()
	cfg.Speedup = 2000
	return cfg
}

func recvOne(t *testing.T, nd *Node, within time.Duration) Packet {
	t.Helper()
	select {
	case p, ok := <-nd.Recv():
		if !ok {
			t.Fatal("receive channel closed")
		}
		return p
	case <-time.After(within):
		t.Fatal("timed out waiting for packet")
		return Packet{}
	}
}

func TestUnicastDelivery(t *testing.T) {
	net := NewNetwork(fastConfig())
	defer net.Close()
	a := net.NewNode("a")
	b := net.NewNode("b")
	if err := a.Send(b.ID(), []byte("hello")); err != nil {
		t.Fatal(err)
	}
	p := recvOne(t, b, 2*time.Second)
	if string(p.Payload) != "hello" || p.From != a.ID() || p.To != b.ID() {
		t.Errorf("packet = %+v", p)
	}
	// No stray delivery to the sender.
	select {
	case p := <-a.Recv():
		t.Errorf("sender received %+v", p)
	case <-time.After(20 * time.Millisecond):
	}
}

func TestBroadcastReachesAllButSender(t *testing.T) {
	net := NewNetwork(fastConfig())
	defer net.Close()
	nodes := make([]*Node, 15) // the paper's 15-node subnet
	for i := range nodes {
		nodes[i] = net.NewNode("host")
	}
	if err := nodes[0].SendBroadcast([]byte("pub")); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(nodes); i++ {
		p := recvOne(t, nodes[i], 2*time.Second)
		if string(p.Payload) != "pub" || p.To != Broadcast {
			t.Errorf("node %d packet = %+v", i, p)
		}
	}
	select {
	case p := <-nodes[0].Recv():
		t.Errorf("sender received own broadcast: %+v", p)
	case <-time.After(20 * time.Millisecond):
	}
	st := net.Stats()
	if st.Sent != 1 || st.Delivered != 14 {
		t.Errorf("stats = %+v", st)
	}
}

func TestPayloadCopiedOnSend(t *testing.T) {
	net := NewNetwork(fastConfig())
	defer net.Close()
	a, b := net.NewNode("a"), net.NewNode("b")
	buf := []byte("original")
	if err := a.Send(b.ID(), buf); err != nil {
		t.Fatal(err)
	}
	copy(buf, "XXXXXXXX") // sender reuses its buffer immediately
	p := recvOne(t, b, 2*time.Second)
	if string(p.Payload) != "original" {
		t.Errorf("payload = %q; send must copy", p.Payload)
	}
}

func TestOversizeRejected(t *testing.T) {
	net := NewNetwork(fastConfig())
	defer net.Close()
	a, b := net.NewNode("a"), net.NewNode("b")
	err := a.Send(b.ID(), make([]byte, MaxDatagram+1))
	if !errors.Is(err, ErrOversize) {
		t.Errorf("oversize error = %v", err)
	}
	if net.Stats().OversizeRejects != 1 {
		t.Error("oversize not counted")
	}
}

func TestLossModel(t *testing.T) {
	cfg := fastConfig()
	cfg.LossProb = 1.0
	net := NewNetwork(cfg)
	defer net.Close()
	a, b := net.NewNode("a"), net.NewNode("b")
	for i := 0; i < 10; i++ {
		if err := a.Send(b.ID(), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.After(time.Second)
	for net.Stats().LostRandom < 10 {
		select {
		case <-deadline:
			t.Fatalf("loss not applied: %+v", net.Stats())
		case <-time.After(time.Millisecond):
		}
	}
	select {
	case p := <-b.Recv():
		t.Errorf("packet delivered despite 100%% loss: %+v", p)
	case <-time.After(20 * time.Millisecond):
	}
}

func TestDuplicationModel(t *testing.T) {
	cfg := fastConfig()
	cfg.DupProb = 1.0
	net := NewNetwork(cfg)
	defer net.Close()
	a, b := net.NewNode("a"), net.NewNode("b")
	if err := a.Send(b.ID(), []byte("x")); err != nil {
		t.Fatal(err)
	}
	recvOne(t, b, 2*time.Second)
	recvOne(t, b, 2*time.Second) // the duplicate
	if net.Stats().Duplicated != 1 {
		t.Errorf("stats = %+v", net.Stats())
	}
}

func TestPartitionAndHeal(t *testing.T) {
	net := NewNetwork(fastConfig())
	defer net.Close()
	a, b := net.NewNode("a"), net.NewNode("b")
	net.Partition(b.ID())

	if err := a.Send(b.ID(), []byte("blocked")); err != nil {
		t.Fatal(err)
	}
	if err := a.SendBroadcast([]byte("alsoBlocked")); err != nil {
		t.Fatal(err)
	}
	select {
	case p := <-b.Recv():
		t.Errorf("packet crossed partition: %+v", p)
	case <-time.After(50 * time.Millisecond):
	}
	if net.Stats().LostPartition < 2 {
		t.Errorf("stats = %+v", net.Stats())
	}

	net.Heal()
	if err := a.Send(b.ID(), []byte("after")); err != nil {
		t.Fatal(err)
	}
	p := recvOne(t, b, 2*time.Second)
	if string(p.Payload) != "after" {
		t.Errorf("post-heal payload = %q", p.Payload)
	}
}

func TestReceiveBufferOverflow(t *testing.T) {
	cfg := fastConfig()
	cfg.RecvBuffer = 2
	net := NewNetwork(cfg)
	defer net.Close()
	a, b := net.NewNode("a"), net.NewNode("b")
	for i := 0; i < 20; i++ {
		if err := a.Send(b.ID(), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.After(2 * time.Second)
	for {
		st := net.Stats()
		if st.Delivered+st.LostOverflow == 20 {
			if st.LostOverflow == 0 {
				t.Errorf("expected overflow drops with buffer=2: %+v", st)
			}
			return
		}
		select {
		case <-deadline:
			t.Fatalf("packets unaccounted for: %+v", st)
		case <-time.After(time.Millisecond):
		}
	}
}

func TestTransmissionTimeModel(t *testing.T) {
	net := NewNetwork(Config{BandwidthBPS: 10e6, Speedup: 1e9})
	defer net.Close()
	small := net.transmissionTime(100)
	big := net.transmissionTime(10000)
	if big <= small {
		t.Errorf("transmission time not increasing: %v vs %v", small, big)
	}
	// 10 KB at 10 Mb/s is at least 8 ms of wire time plus framing.
	if big < 8*time.Millisecond {
		t.Errorf("10KB occupancy = %v, want >= 8ms", big)
	}
	// Per-fragment overhead: 7 fragments for 10 KB.
	withOverhead := float64(10000+7*(ipUDPHeader+frameOverhead)) * 8 / 10e6
	want := time.Duration(withOverhead * float64(time.Second))
	if big != want {
		t.Errorf("occupancy = %v, want %v", big, want)
	}
}

func TestBackgroundLoadShrinksBandwidth(t *testing.T) {
	net := NewNetwork(Config{BandwidthBPS: 10e6, Speedup: 1e9})
	defer net.Close()
	idle := net.transmissionTime(5000)
	net.SetBackgroundLoad(0.5)
	loaded := net.transmissionTime(5000)
	if loaded <= idle {
		t.Errorf("background load should stretch occupancy: %v vs %v", loaded, idle)
	}
}

func TestCloseIdempotentAndRejectsSends(t *testing.T) {
	net := NewNetwork(fastConfig())
	a, b := net.NewNode("a"), net.NewNode("b")
	net.Close()
	net.Close()
	if err := a.Send(b.ID(), []byte("x")); !errors.Is(err, ErrClosed) {
		t.Errorf("send after close error = %v", err)
	}
	if _, ok := <-b.Recv(); ok {
		t.Error("receive channel should be closed")
	}
}

func TestSharedMediumSerialises(t *testing.T) {
	// Two senders share the medium: total wire time equals the sum of
	// their occupancy, demonstrating the bandwidth ceiling.
	cfg := Config{BandwidthBPS: 10e6, Speedup: 200, RecvBuffer: 64, Seed: 7}
	net := NewNetwork(cfg)
	defer net.Close()
	a, b, c := net.NewNode("a"), net.NewNode("b"), net.NewNode("c")
	const n = 20
	start := time.Now()
	for i := 0; i < n; i++ {
		if err := a.Send(c.ID(), make([]byte, 1000)); err != nil {
			t.Fatal(err)
		}
		if err := b.Send(c.ID(), make([]byte, 1000)); err != nil {
			t.Fatal(err)
		}
	}
	got := 0
	timeout := time.After(5 * time.Second)
	for got < 2*n {
		select {
		case <-c.Recv():
			got++
		case <-timeout:
			t.Fatalf("received %d of %d", got, 2*n)
		}
	}
	elapsed := time.Since(start)
	// 40 KB at 10 Mb/s is ~34 ms of model time, /200 speedup ≈ 170 µs floor.
	// Mostly this asserts we did not deliver instantly in parallel.
	if elapsed <= 0 {
		t.Error("elapsed time not positive")
	}
	if st := net.Stats(); st.WireTime() < 30*time.Millisecond {
		t.Errorf("wire occupancy = %v, want >= 30ms of model time", st.WireTime())
	}
}

func TestCollisionModelUnderBackgroundLoad(t *testing.T) {
	cfg := Config{BandwidthBPS: 10e6, Speedup: 5000, BackgroundLoad: 0.9, Seed: 3, RecvBuffer: 256}
	net := NewNetwork(cfg)
	defer net.Close()
	a, b := net.NewNode("a"), net.NewNode("b")
	const n = 200
	for i := 0; i < n; i++ {
		if err := a.Send(b.ID(), make([]byte, 500)); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.After(10 * time.Second)
	for {
		st := net.Stats()
		if st.Delivered+st.LostCollision+st.LostOverflow == n {
			if st.LostCollision == 0 {
				t.Errorf("no collision losses at 90%% background load: %+v", st)
			}
			return
		}
		select {
		case <-deadline:
			t.Fatalf("packets unaccounted for: %+v", st)
		case <-time.After(time.Millisecond):
		}
	}
}

func TestPerDestinationFIFO(t *testing.T) {
	// Without explicit reordering, packets to one destination arrive in
	// send order even under heavy goroutine load — the property the
	// reliable protocol's stream sync depends on.
	cfg := DefaultConfig()
	cfg.Speedup = 5000
	cfg.JitterLatency = 300 * time.Microsecond
	net := NewNetwork(cfg)
	defer net.Close()
	a, b := net.NewNode("a"), net.NewNode("b")
	const n = 300
	for i := 0; i < n; i++ {
		if err := a.Send(b.ID(), []byte{byte(i), byte(i >> 8)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		p := recvOne(t, b, 5*time.Second)
		got := int(p.Payload[0]) | int(p.Payload[1])<<8
		if got != i {
			t.Fatalf("packet %d arrived as %d: FIFO violated", i, got)
		}
	}
}

func TestExplicitReorderingBypassesFIFO(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Speedup = 500
	cfg.ReorderProb = 0.5
	cfg.Seed = 77
	net := NewNetwork(cfg)
	defer net.Close()
	a, b := net.NewNode("a"), net.NewNode("b")
	const n = 200
	for i := 0; i < n; i++ {
		if err := a.Send(b.ID(), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	outOfOrder := false
	last := -1
	for i := 0; i < n; i++ {
		p := recvOne(t, b, 5*time.Second)
		got := int(p.Payload[0])
		if got < last {
			outOfOrder = true
		}
		last = got
	}
	if !outOfOrder {
		t.Error("ReorderProb=0.5 produced perfectly ordered delivery")
	}
	if net.Stats().Reordered == 0 {
		t.Error("no reordering counted")
	}
}
