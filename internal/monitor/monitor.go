// Package monitor implements the News Monitor of §5: it "subscribes to and
// displays all stories of interest to its user. Incoming stories are first
// displayed in a 'headline summary list'. This list format is defined by a
// 'view' that specifies a set of named attributes from incoming objects and
// formatting information. When the user selects a story in the summary
// list, the entire story is displayed" — rendered via the meta-object
// protocol, iterating over whatever attributes the object's type declares
// (P2), so stories of types the monitor has never seen display correctly.
//
// Per §5.2, the monitor also accepts Property objects arriving on the same
// subjects, associates them with the stories they reference, and shows
// them alongside the object's own attributes — which is how the Keyword
// Generator's output appears the moment that service comes on-line.
package monitor

import (
	"fmt"
	"strings"
	"sync"

	"infobus/internal/adapter"
	"infobus/internal/core"
	"infobus/internal/mop"
)

// View defines the headline summary list format: a set of named attributes
// and column widths. Attributes missing from an object render blank — the
// view never fails on unknown types.
type View struct {
	Columns []ViewColumn
}

// ViewColumn is one summary column.
type ViewColumn struct {
	Attr  string
	Width int
}

// DefaultView shows headline, ticker, and publication time.
func DefaultView() View {
	return View{Columns: []ViewColumn{
		{Attr: "published", Width: 20},
		{Attr: "ticker", Width: 6},
		{Attr: "headline", Width: 48},
	}}
}

// RenderRow formats one object according to the view, via introspection.
func (v View) RenderRow(o *mop.Object) string {
	parts := make([]string, len(v.Columns))
	for i, col := range v.Columns {
		cell := ""
		if _, ok := o.Type().Attr(col.Attr); ok {
			cell = mop.Sprint(o.MustGet(col.Attr))
			cell = strings.Trim(cell, `"`)
		}
		if len(cell) > col.Width {
			cell = cell[:col.Width-1] + "…"
		}
		parts[i] = fmt.Sprintf("%-*s", col.Width, cell)
	}
	return strings.TrimRight(strings.Join(parts, " "), " ")
}

// entry is one story held by the monitor with its accumulated properties.
type entry struct {
	story *mop.Object
	props []*mop.Object
}

// Monitor is the running news monitor.
type Monitor struct {
	bus  *core.Bus
	view View
	sub  *core.Subscription

	mu      sync.Mutex
	entries []*entry
	byRef   map[string]*entry // headline -> entry
	orphans map[string][]*mop.Object
	closed  bool
	done    chan struct{}
	wg      sync.WaitGroup
}

// New starts a monitor subscribed to the given subject pattern.
func New(bus *core.Bus, pattern string, view View) (*Monitor, error) {
	sub, err := bus.Subscribe(pattern)
	if err != nil {
		return nil, err
	}
	m := &Monitor{
		bus:     bus,
		view:    view,
		sub:     sub,
		byRef:   make(map[string]*entry),
		orphans: make(map[string][]*mop.Object),
		done:    make(chan struct{}),
	}
	m.wg.Add(1)
	go m.loop()
	return m, nil
}

// Close stops the monitor.
func (m *Monitor) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	m.mu.Unlock()
	close(m.done)
	m.sub.Cancel()
	m.wg.Wait()
}

func (m *Monitor) loop() {
	defer m.wg.Done()
	for {
		select {
		case <-m.done:
			return
		case ev, ok := <-m.sub.C:
			if !ok {
				return
			}
			obj, isObj := ev.Value.(*mop.Object)
			if !isObj {
				continue
			}
			if obj.Type().Name() == adapter.PropertyType.Name() {
				m.addProperty(obj)
			} else {
				m.addStory(obj)
			}
		}
	}
}

func (m *Monitor) addStory(o *mop.Object) {
	ref := refOf(o)
	m.mu.Lock()
	defer m.mu.Unlock()
	e := &entry{story: o}
	m.entries = append(m.entries, e)
	if ref != "" {
		m.byRef[ref] = e
		// Properties that arrived before their story attach now.
		if waiting, ok := m.orphans[ref]; ok {
			e.props = append(e.props, waiting...)
			delete(m.orphans, ref)
		}
	}
}

func (m *Monitor) addProperty(p *mop.Object) {
	refV, err := p.Get("ref")
	if err != nil {
		return
	}
	ref, _ := refV.(string)
	if ref == "" {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if e, ok := m.byRef[ref]; ok {
		e.props = append(e.props, p)
		return
	}
	// The property may outrun its story (different publishers): hold it.
	m.orphans[ref] = append(m.orphans[ref], p)
}

// refOf extracts the association key of a story (its headline), via
// introspection so any story-shaped type works.
func refOf(o *mop.Object) string {
	if _, ok := o.Type().Attr("headline"); !ok {
		return ""
	}
	h, _ := o.MustGet("headline").(string)
	return h
}

// SetView swaps the summary list format at run time — "each customer has
// different needs, and they change frequently" (§5.1); nothing restarts.
func (m *Monitor) SetView(v View) {
	m.mu.Lock()
	m.view = v
	m.mu.Unlock()
}

// Len returns the number of stories held.
func (m *Monitor) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.entries)
}

// Headlines renders the summary list through the monitor's view.
func (m *Monitor) Headlines() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, len(m.entries))
	for i, e := range m.entries {
		out[i] = m.view.RenderRow(e.story)
	}
	return out
}

// PropertyCount returns how many properties are attached to story i.
func (m *Monitor) PropertyCount(i int) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	if i < 0 || i >= len(m.entries) {
		return 0
	}
	return len(m.entries[i].props)
}

// Select renders the full display of story i: every attribute of the
// object (recursively, via the generic print utility) followed by any
// associated properties — exactly the §5.2 behaviour.
func (m *Monitor) Select(i int) (string, error) {
	m.mu.Lock()
	if i < 0 || i >= len(m.entries) {
		m.mu.Unlock()
		return "", fmt.Errorf("monitor: no story %d (have %d)", i, len(m.entries))
	}
	e := m.entries[i]
	story := e.story
	props := append([]*mop.Object(nil), e.props...)
	m.mu.Unlock()

	var b strings.Builder
	b.WriteString(mop.Sprint(story))
	b.WriteString("\n")
	for _, p := range props {
		name, _ := p.MustGet("name").(string)
		fmt.Fprintf(&b, "property %s: %s\n", name, mop.Sprint(p.MustGet("value")))
	}
	return b.String(), nil
}
