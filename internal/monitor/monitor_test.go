package monitor

import (
	"strings"
	"testing"
	"time"

	"infobus/internal/adapter"
	"infobus/internal/core"
	"infobus/internal/feeds"
	"infobus/internal/keyword"
	"infobus/internal/mop"
	"infobus/internal/netsim"
	"infobus/internal/reliable"
	"infobus/internal/relstore"
	"infobus/internal/repository"
	"infobus/internal/transport"
)

func fastSeg() *transport.SimSegment {
	cfg := netsim.DefaultConfig()
	cfg.Speedup = 5000
	return transport.NewSimSegment(cfg)
}

func newBus(t *testing.T, seg transport.Segment, host string) *core.Bus {
	t.Helper()
	h, err := core.NewHost(seg, host, core.HostConfig{Reliable: reliable.Config{
		NakInterval:        2 * time.Millisecond,
		GapTimeout:         300 * time.Millisecond,
		RetransmitInterval: 3 * time.Millisecond,
		HeartbeatInterval:  5 * time.Millisecond,
	}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = h.Close() })
	b, err := h.NewBus("app")
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.After(15 * time.Second)
	for !cond() {
		select {
		case <-deadline:
			t.Fatalf("timed out waiting for %s", what)
		case <-time.After(3 * time.Millisecond):
		}
	}
}

func TestViewRendering(t *testing.T) {
	reg := mop.NewRegistry()
	types, err := adapter.DefineNewsTypes(reg)
	if err != nil {
		t.Fatal(err)
	}
	story := mop.MustNew(types.DJ).
		MustSet("headline", "GMC announces record earnings this quarter beating all estimates by far").
		MustSet("ticker", "GMC").
		MustSet("published", time.Date(1993, 12, 6, 9, 30, 0, 0, time.UTC))
	v := DefaultView()
	row := v.RenderRow(story)
	if !strings.Contains(row, "GMC") {
		t.Errorf("row = %q", row)
	}
	if !strings.Contains(row, "…") {
		t.Errorf("long headline not truncated: %q", row)
	}
	// A view over an object missing the attributes renders blanks, not
	// errors (generic tools never break on new types).
	other := mop.MustNew(mop.MustNewClass("Odd", nil, []mop.Attr{
		{Name: "x", Type: mop.Int},
	}, nil))
	row = v.RenderRow(other)
	if strings.TrimSpace(row) != "" {
		t.Errorf("row over unrelated type = %q", row)
	}
}

func TestMonitorCollectsAndDisplays(t *testing.T) {
	seg := fastSeg()
	defer seg.Close()
	pubBus := newBus(t, seg, "feedhost")
	monBus := newBus(t, seg, "deskhost")
	types, err := adapter.DefineNewsTypes(pubBus.Registry())
	if err != nil {
		t.Fatal(err)
	}
	mon, err := New(monBus, "news.>", DefaultView())
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()

	gen := feeds.NewGenerator(5)
	var facts []feeds.StoryFacts
	for i := 0; i < 3; i++ {
		f := gen.Next()
		facts = append(facts, f)
		obj, err := adapter.ParseDJ(feeds.DJRaw(f), types)
		if err != nil {
			t.Fatal(err)
		}
		if err := pubBus.Publish(f.Subject(), obj); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool { return mon.Len() == 3 }, "3 stories")
	heads := mon.Headlines()
	for i, f := range facts {
		if !strings.Contains(heads[i], f.Ticker) {
			t.Errorf("headline %d = %q", i, heads[i])
		}
	}
	// Full display via introspection includes nested structure.
	full, err := mon.Select(0)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"DowJonesStory {", "IndustryGroup {", facts[0].Headline} {
		if !strings.Contains(full, want) {
			t.Errorf("full display missing %q:\n%s", want, full)
		}
	}
	if _, err := mon.Select(99); err == nil {
		t.Error("Select out of range should fail")
	}
}

// TestKeywordGeneratorEnrichesMonitor is the §5.2 dynamic-evolution story
// end to end: monitor running, keyword generator comes on-line later, and
// the monitor starts showing keyword properties with no change anywhere.
func TestKeywordGeneratorEnrichesMonitor(t *testing.T) {
	seg := fastSeg()
	defer seg.Close()
	pubBus := newBus(t, seg, "feedhost")
	monBus := newBus(t, seg, "deskhost")
	kwBus := newBus(t, seg, "kwhost")
	types, err := adapter.DefineNewsTypes(pubBus.Registry())
	if err != nil {
		t.Fatal(err)
	}
	mon, err := New(monBus, "news.>", DefaultView())
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()

	// Story published BEFORE the keyword service exists.
	early := mop.MustNew(types.DJ).
		MustSet("headline", "GMC announces record earnings").
		MustSet("body", "earnings beat estimates; trading volume heavy").
		MustSet("category", "equity").
		MustSet("ticker", "GMC")
	if err := pubBus.Publish("news.equity.gmc", early); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return mon.Len() == 1 }, "early story")
	if mon.PropertyCount(0) != 0 {
		t.Fatal("no properties expected yet")
	}

	// The Keyword Generator comes on-line (new service, nothing restarts).
	kw, err := keyword.New(kwBus, seg, keyword.DefaultCategories(), keyword.Options{NoBrowse: true})
	if err != nil {
		t.Fatal(err)
	}
	defer kw.Close()

	// A new story arrives; the generator annotates it; the monitor
	// associates the Property with the story.
	late := mop.MustNew(types.DJ).
		MustSet("headline", "TKN names new chief executive").
		MustSet("body", "the board said the appointment settles a long dispute").
		MustSet("category", "equity").
		MustSet("ticker", "TKN")
	if err := pubBus.Publish("news.equity.tkn", late); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return mon.Len() == 2 }, "late story")
	waitFor(t, func() bool { return mon.PropertyCount(1) > 0 }, "keyword property")

	full, err := mon.Select(1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(full, "property keywords:") {
		t.Errorf("full display missing property:\n%s", full)
	}
	for _, want := range []string{"chief executive", "board", "dispute"} {
		if !strings.Contains(full, want) {
			t.Errorf("keywords missing %q:\n%s", want, full)
		}
	}
	if kw.Processed() == 0 || kw.Published() == 0 {
		t.Errorf("generator stats: processed=%d published=%d", kw.Processed(), kw.Published())
	}
}

// TestTradingFloorPipeline wires Figure 3 end to end: two vendor feed
// adapters publish stories; the News Monitor displays them; the Object
// Repository capture server stores every one (including subtype-aware
// querying afterwards).
func TestTradingFloorPipeline(t *testing.T) {
	seg := fastSeg()
	defer seg.Close()
	djHost := newBus(t, seg, "dj-adapter")
	reHost := newBus(t, seg, "reuters-adapter")
	deskHost := newBus(t, seg, "trader-desk")
	repoHost := newBus(t, seg, "repository")

	djTypes, err := adapter.DefineNewsTypes(djHost.Registry())
	if err != nil {
		t.Fatal(err)
	}
	reTypes, err := adapter.DefineNewsTypes(reHost.Registry())
	if err != nil {
		t.Fatal(err)
	}

	mon, err := New(deskHost, "news.>", DefaultView())
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()

	repo := repository.New(relstore.NewDB(), repoHost.Registry())
	capture, err := repository.NewCaptureServer(repo, repoHost, "news.>")
	if err != nil {
		t.Fatal(err)
	}
	defer capture.Close()

	djIn := make(chan string, 16)
	reIn := make(chan string, 16)
	djAdapter := adapter.NewFeedAdapter("dj", djHost, djTypes, adapter.ParseDJ, djIn)
	defer djAdapter.Close()
	reAdapter := adapter.NewFeedAdapter("reuters", reHost, reTypes, adapter.ParseReuters, reIn)
	defer reAdapter.Close()

	gen := feeds.NewGenerator(9)
	const perFeed = 4
	for i := 0; i < perFeed; i++ {
		djIn <- feeds.DJRaw(gen.Next())
		reIn <- feeds.ReutersRaw(gen.Next())
	}
	close(djIn)
	close(reIn)

	waitFor(t, func() bool { return mon.Len() == 2*perFeed }, "all stories at the desk")
	waitFor(t, func() bool { return capture.Captured() == 2*perFeed }, "all stories captured")

	// Hierarchy query: the repository returns both vendors' stories for
	// the Story supertype.
	storyType, err := repoHost.Registry().Lookup("Story")
	if err != nil {
		t.Fatal(err)
	}
	objs, err := repo.QueryByType(storyType)
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 2*perFeed {
		t.Fatalf("repository holds %d stories, want %d", len(objs), 2*perFeed)
	}
	classes := map[string]int{}
	for _, o := range objs {
		classes[o.Type().Name()]++
	}
	if classes["DowJonesStory"] != perFeed || classes["ReutersStory"] != perFeed {
		t.Errorf("classes = %v", classes)
	}
}

func TestSetViewSwapsFormatLive(t *testing.T) {
	seg := fastSeg()
	defer seg.Close()
	pubBus := newBus(t, seg, "feedhost")
	monBus := newBus(t, seg, "deskhost")
	types, err := adapter.DefineNewsTypes(pubBus.Registry())
	if err != nil {
		t.Fatal(err)
	}
	mon, err := New(monBus, "news.>", DefaultView())
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()
	story := mop.MustNew(types.DJ).
		MustSet("headline", "GMC surges").
		MustSet("ticker", "GMC").
		MustSet("category", "equity").
		MustSet("djCode", "GMC")
	if err := pubBus.Publish("news.equity.gmc", story); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return mon.Len() == 1 }, "story")
	before := mon.Headlines()[0]
	if !strings.Contains(before, "GMC surges") {
		t.Fatalf("default view row = %q", before)
	}
	// The user reconfigures the summary list to show vendor codes only.
	mon.SetView(View{Columns: []ViewColumn{
		{Attr: "djCode", Width: 6},
		{Attr: "category", Width: 10},
	}})
	after := mon.Headlines()[0]
	if strings.Contains(after, "surges") || !strings.Contains(after, "GMC") || !strings.Contains(after, "equity") {
		t.Errorf("swapped view row = %q", after)
	}
}
