package ledger

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"infobus/internal/telemetry"
)

// TestOnCommitHook: the hook sees every committed batch — its raw bytes
// re-parse to the appended records, its MsgIDs match, Seq is monotonic —
// and it fires before the staging Append returns.
func TestOnCommitHook(t *testing.T) {
	l, _ := openTemp(t)
	var mu sync.Mutex
	var seqs []uint64
	var gotIDs []uint64
	var gotRecs []Rec
	fired := make(map[uint64]bool) // msg id -> hook had fired before Append returned
	l.SetOnCommit(func(cb CommitBatch) {
		mu.Lock()
		defer mu.Unlock()
		seqs = append(seqs, cb.Seq)
		gotIDs = append(gotIDs, cb.MsgIDs...)
		for off := 0; off < len(cb.Records); {
			rec, n, err := NextRecord(cb.Records[off:])
			if err != nil {
				t.Errorf("hook batch does not re-parse: %v", err)
				return
			}
			// Copy: the hook must not retain cb's slices.
			rec.Payload = append([]byte(nil), rec.Payload...)
			gotRecs = append(gotRecs, rec)
			off += n
		}
		for _, id := range cb.MsgIDs {
			fired[id] = true
		}
	})
	var ids []uint64
	for i := 0; i < 3; i++ {
		id, err := l.Append("repl.s", []byte{byte(i)})
		if err != nil {
			t.Fatal(err)
		}
		mu.Lock()
		if !fired[id] {
			t.Errorf("Append(%d) returned before its batch reached the hook", id)
		}
		mu.Unlock()
		ids = append(ids, id)
	}
	if err := l.Ack(ids[0]); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil { // drains the staged ack through the hook
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	for i := 1; i < len(seqs); i++ {
		if seqs[i] <= seqs[i-1] {
			t.Fatalf("hook seqs not monotonic: %v", seqs)
		}
	}
	if len(gotIDs) != 3 {
		t.Fatalf("hook MsgIDs = %v, want the 3 appended ids", gotIDs)
	}
	var msgs, acks int
	for _, r := range gotRecs {
		if r.Ack {
			acks++
			if r.ID != ids[0] {
				t.Errorf("ack record for %d, want %d", r.ID, ids[0])
			}
		} else {
			msgs++
			if r.Subject != "repl.s" {
				t.Errorf("message subject %q", r.Subject)
			}
		}
	}
	if msgs != 3 || acks != 1 {
		t.Fatalf("hook saw %d messages, %d acks; want 3, 1", msgs, acks)
	}
}

// TestAppendBatch: a replica applying exported record runs reaches the
// same pending set as the origin, survives a restart, and absorbs
// retransmitted (duplicate) frames without growing.
func TestAppendBatch(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "replica.log")
	l, err := Open(path, Options{Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	var frame []byte
	frame = AppendMessageRecord(frame, 7, "q.a", []byte("seven"))
	frame = AppendMessageRecord(frame, 8, "q.b", []byte("eight"))
	frame = AppendAckRecord(frame, 7)
	if err := l.AppendBatch(frame); err != nil {
		t.Fatal(err)
	}
	if got := l.Pending(); len(got) != 1 || got[0].ID != 8 || string(got[0].Payload) != "eight" {
		t.Fatalf("pending after batch = %+v", got)
	}
	// A retransmitted frame is idempotent.
	if err := l.AppendBatch(frame); err != nil {
		t.Fatal(err)
	}
	if l.Len() != 1 {
		t.Fatalf("duplicate frame changed pending set: %d", l.Len())
	}
	// Later acks trim earlier batches' entries.
	if err := l.AppendBatch(AppendAckRecord(nil, 8)); err != nil {
		t.Fatal(err)
	}
	if l.Len() != 0 {
		t.Fatalf("pending after ack batch = %d", l.Len())
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Replayable: the replica's log is an ordinary ledger.
	l2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.Len() != 0 {
		t.Fatalf("replayed pending = %+v", l2.Pending())
	}
	// Corrupt frames are rejected whole: nothing is staged.
	bad := AppendMessageRecord(nil, 9, "q.c", []byte("nine"))
	bad[len(bad)-1] ^= 0xff
	if err := l2.AppendBatch(bad); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt frame: err = %v", err)
	}
	if l2.Len() != 0 {
		t.Fatalf("corrupt frame staged records: %+v", l2.Pending())
	}
}

// TestTornTailTruncateFsync is the regression test for recovery-time
// durability: truncating a torn trailing record during replay must itself
// be fsynced (file and directory), like every other on-disk mutation.
func TestTornTailTruncateFsync(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.log")
	l, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append("s", []byte("whole")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	valid, err := os.ReadFile(segPath(path, 1))
	if err != nil {
		t.Fatal(err)
	}
	torn := encodeRecord(record{typ: recMessage, id: 9, subject: "s", payload: []byte("torn")})
	if err := os.WriteFile(segPath(path, 1), append(append([]byte(nil), valid...), torn[:len(torn)/2]...), 0o644); err != nil {
		t.Fatal(err)
	}

	reg := telemetry.NewRegistry()
	l2, err := Open(path, Options{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	// The truncation must have been made durable: before the fix, replay
	// truncated the tear but never fsynced, so this counter stayed 0.
	if got := reg.Counter("ledger.fsyncs").Load(); got == 0 {
		t.Fatal("torn-tail truncation was not fsynced during replay")
	}
	onDisk, err := os.ReadFile(segPath(path, 1))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(onDisk, valid) {
		t.Fatalf("segment not truncated back to valid prefix: %d bytes, want %d", len(onDisk), len(valid))
	}
	// A clean open performs no recovery fsync.
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	reg2 := telemetry.NewRegistry()
	l3, err := Open(path, Options{Metrics: reg2})
	if err != nil {
		t.Fatal(err)
	}
	defer l3.Close()
	if got := reg2.Counter("ledger.fsyncs").Load(); got != 0 {
		t.Fatalf("clean open fsynced %d times; recovery fsync must be tear-only", got)
	}
}
