package ledger

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Record types.
const (
	recMessage = 1
	recAck     = 2
)

// maxRecord bounds one record body so a corrupt length cannot provoke a
// huge allocation.
const maxRecord = 16 << 20

// ---------------------------------------------------------------------------
// Record format: u32 bodyLen | u32 crc(body) | body
// body: u8 type | uvarint id | [uvarint subjLen | subj | uvarint payloadLen | payload]
//
// The format is unchanged from the monolithic ledger: segments are plain
// concatenations of these records, so the record fuzzer and old log files
// both carry over.

type record struct {
	typ     byte
	id      uint64
	subject string
	payload []byte
}

var errTorn = errors.New("ledger: torn record")

// appendRecord encodes r onto dst. The group-commit path stages many
// records into one batch buffer this way, so encoding allocates nothing
// beyond the (amortised) buffer growth.
func appendRecord(dst []byte, r record) []byte {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0)
	dst = append(dst, r.typ)
	dst = binary.AppendUvarint(dst, r.id)
	if r.typ == recMessage {
		dst = binary.AppendUvarint(dst, uint64(len(r.subject)))
		dst = append(dst, r.subject...)
		dst = binary.AppendUvarint(dst, uint64(len(r.payload)))
		dst = append(dst, r.payload...)
	}
	body := dst[start+8:]
	binary.BigEndian.PutUint32(dst[start:start+4], uint32(len(body)))
	binary.BigEndian.PutUint32(dst[start+4:start+8], crc32.ChecksumIEEE(body))
	return dst
}

func encodeRecord(r record) []byte {
	return appendRecord(nil, r)
}

// parseRecord decodes one record from the front of data, returning the
// bytes consumed. errTorn means the data ends mid-record (a crashed
// append); other errors mean real corruption.
func parseRecord(data []byte) (record, int, error) {
	if len(data) < 8 {
		return record{}, 0, errTorn
	}
	bodyLen := binary.BigEndian.Uint32(data[0:4])
	if bodyLen > maxRecord {
		return record{}, 0, fmt.Errorf("body of %d bytes: %w", bodyLen, ErrTooBig)
	}
	if len(data) < 8+int(bodyLen) {
		return record{}, 0, errTorn
	}
	body := data[8 : 8+bodyLen]
	if crc32.ChecksumIEEE(body) != binary.BigEndian.Uint32(data[4:8]) {
		return record{}, 0, fmt.Errorf("crc mismatch: %w", ErrCorrupt)
	}
	if len(body) < 1 {
		return record{}, 0, ErrCorrupt
	}
	r := record{typ: body[0]}
	pos := 1
	id, n := binary.Uvarint(body[pos:])
	if n <= 0 {
		return record{}, 0, ErrCorrupt
	}
	pos += n
	r.id = id
	switch r.typ {
	case recAck:
		if pos != len(body) {
			return record{}, 0, ErrCorrupt
		}
	case recMessage:
		slen, n := binary.Uvarint(body[pos:])
		if n <= 0 || pos+n+int(slen) > len(body) {
			return record{}, 0, ErrCorrupt
		}
		pos += n
		r.subject = string(body[pos : pos+int(slen)])
		pos += int(slen)
		plen, n := binary.Uvarint(body[pos:])
		if n <= 0 || pos+n+int(plen) != len(body) {
			return record{}, 0, ErrCorrupt
		}
		pos += n
		r.payload = append([]byte(nil), body[pos:pos+int(plen)]...)
	default:
		return record{}, 0, fmt.Errorf("type %d: %w", r.typ, ErrCorrupt)
	}
	return r, 8 + int(bodyLen), nil
}
