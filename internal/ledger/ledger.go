// Package ledger implements the non-volatile message log behind the bus's
// guaranteed delivery semantics (§3.1): "the message is logged to
// non-volatile storage before it is sent. The message is guaranteed to be
// delivered at least once, regardless of failures. The publisher will
// retransmit the message at appropriate times until a reply is received."
//
// A Ledger is an append-only file of records, each protected by a CRC.
// Records are either message entries (id, subject, payload) or
// acknowledgement entries (id). On open, the ledger replays the file and
// reports every message that was logged but never acknowledged — exactly
// the set a restarted publisher must retransmit. Compact rewrites the file
// retaining only unacknowledged messages.
package ledger

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
	"sync"
	"time"

	"infobus/internal/telemetry"
)

// Record types.
const (
	recMessage = 1
	recAck     = 2
)

// maxRecord bounds one record body so a corrupt length cannot provoke a
// huge allocation.
const maxRecord = 16 << 20

// Entry is one logged, possibly unacknowledged message.
type Entry struct {
	ID      uint64
	Subject string
	Payload []byte
}

// Ledger errors.
var (
	ErrClosed  = errors.New("ledger: closed")
	ErrCorrupt = errors.New("ledger: corrupt record")
	ErrTooBig  = errors.New("ledger: record exceeds size limit")
)

// Ledger is a crash-safe append-only message log. It is safe for
// concurrent use.
type Ledger struct {
	mu      sync.Mutex
	f       *os.File
	path    string
	nextID  uint64
	pending map[uint64]Entry
	closed  bool
	sync    bool
	ctr     counters
}

// counters holds the ledger's telemetry handles.
type counters struct {
	appends, acks, recovered, compactions *telemetry.Counter
	pending                               *telemetry.Gauge
	appendNs                              *telemetry.Histogram
}

// Options configure Open.
type Options struct {
	// Sync forces an fsync after every append. Durability against machine
	// crashes costs roughly one disk flush per publication; without it the
	// ledger still survives process crashes.
	Sync bool
	// Metrics is the telemetry registry the ledger's counters live in
	// (the host shares its registry here); nil creates a private one.
	Metrics *telemetry.Registry
	// Recorder is the process flight recorder; a non-empty recovery at
	// Open is recorded into it so a post-restart dump shows how much
	// undelivered backlog the process came back with. Nil disables it.
	Recorder *telemetry.Recorder
}

// Open opens or creates a ledger file, replaying any existing records. A
// trailing partial record (from a crash mid-append) is truncated away;
// corruption anywhere earlier is reported as ErrCorrupt.
func Open(path string, opts Options) (*Ledger, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("ledger: opening %s: %w", path, err)
	}
	reg := opts.Metrics
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	l := &Ledger{f: f, path: path, pending: make(map[uint64]Entry), sync: opts.Sync}
	l.ctr = counters{
		appends:     reg.Counter("ledger.appends"),
		acks:        reg.Counter("ledger.acks"),
		recovered:   reg.Counter("ledger.recovered"),
		compactions: reg.Counter("ledger.compactions"),
		pending:     reg.Gauge("ledger.pending"),
		appendNs:    reg.Histogram("ledger.append_ns"),
	}
	if err := l.replay(); err != nil {
		_ = f.Close()
		return nil, err
	}
	l.ctr.recovered.Add(uint64(len(l.pending)))
	l.ctr.pending.Set(int64(len(l.pending)))
	if opts.Recorder != nil && len(l.pending) > 0 {
		opts.Recorder.Record(telemetry.EventRecover, "ledger", int64(len(l.pending)), 0)
	}
	return l, nil
}

// replay scans the file, rebuilding the pending set, and truncates a
// trailing torn record.
func (l *Ledger) replay() error {
	data, err := io.ReadAll(l.f)
	if err != nil {
		return fmt.Errorf("ledger: reading %s: %w", l.path, err)
	}
	off := 0
	validEnd := 0
	for off < len(data) {
		rec, n, err := parseRecord(data[off:])
		if err != nil {
			if errors.Is(err, errTorn) {
				// Crash mid-append: discard the tail.
				break
			}
			return fmt.Errorf("ledger: %s at offset %d: %w", l.path, off, err)
		}
		switch rec.typ {
		case recMessage:
			e := Entry{ID: rec.id, Subject: rec.subject, Payload: rec.payload}
			l.pending[rec.id] = e
			if rec.id >= l.nextID {
				l.nextID = rec.id + 1
			}
		case recAck:
			delete(l.pending, rec.id)
			if rec.id >= l.nextID {
				l.nextID = rec.id + 1
			}
		}
		off += n
		validEnd = off
	}
	if validEnd < len(data) {
		if err := l.f.Truncate(int64(validEnd)); err != nil {
			return fmt.Errorf("ledger: truncating torn tail of %s: %w", l.path, err)
		}
	}
	if _, err := l.f.Seek(0, io.SeekEnd); err != nil {
		return err
	}
	return nil
}

// Append logs a message before transmission and returns its ledger ID.
func (l *Ledger) Append(subject string, payload []byte) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	id := l.nextID
	l.nextID++
	rec := encodeRecord(record{typ: recMessage, id: id, subject: subject, payload: payload})
	start := time.Now()
	if err := l.write(rec); err != nil {
		return 0, err
	}
	l.ctr.appendNs.Observe(time.Since(start))
	l.ctr.appends.Inc()
	l.pending[id] = Entry{ID: id, Subject: subject, Payload: append([]byte(nil), payload...)}
	l.ctr.pending.Set(int64(len(l.pending)))
	return id, nil
}

// Ack records that the message with the given ID was acknowledged; it will
// not be reported as pending after a restart.
func (l *Ledger) Ack(id uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if _, ok := l.pending[id]; !ok {
		return nil // duplicate ack: idempotent
	}
	rec := encodeRecord(record{typ: recAck, id: id})
	if err := l.write(rec); err != nil {
		return err
	}
	l.ctr.acks.Inc()
	delete(l.pending, id)
	l.ctr.pending.Set(int64(len(l.pending)))
	return nil
}

// Pending returns every logged-but-unacknowledged message, oldest first.
func (l *Ledger) Pending() []Entry {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Entry, 0, len(l.pending))
	for _, e := range l.pending {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Compact rewrites the ledger keeping only pending messages, bounding file
// growth on long-running publishers.
func (l *Ledger) Compact() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	tmpPath := l.path + ".compact"
	tmp, err := os.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("ledger: creating %s: %w", tmpPath, err)
	}
	ids := make([]uint64, 0, len(l.pending))
	for id := range l.pending {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		e := l.pending[id]
		rec := encodeRecord(record{typ: recMessage, id: e.ID, subject: e.Subject, payload: e.Payload})
		if _, err := tmp.Write(rec); err != nil {
			_ = tmp.Close()
			return err
		}
	}
	if err := tmp.Sync(); err != nil {
		_ = tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmpPath, l.path); err != nil {
		return fmt.Errorf("ledger: swapping compacted file: %w", err)
	}
	_ = l.f.Close()
	f, err := os.OpenFile(l.path, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("ledger: reopening after compaction: %w", err)
	}
	l.f = f
	l.ctr.compactions.Inc()
	return nil
}

// Len returns the number of pending (unacknowledged) messages.
func (l *Ledger) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.pending)
}

// Close releases the file.
func (l *Ledger) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	return l.f.Close()
}

func (l *Ledger) write(rec []byte) error {
	if _, err := l.f.Write(rec); err != nil {
		return fmt.Errorf("ledger: appending: %w", err)
	}
	if l.sync {
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("ledger: syncing: %w", err)
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Record format: u32 bodyLen | u32 crc(body) | body
// body: u8 type | uvarint id | [uvarint subjLen | subj | uvarint payloadLen | payload]

type record struct {
	typ     byte
	id      uint64
	subject string
	payload []byte
}

var errTorn = errors.New("ledger: torn record")

func encodeRecord(r record) []byte {
	body := []byte{r.typ}
	body = binary.AppendUvarint(body, r.id)
	if r.typ == recMessage {
		body = binary.AppendUvarint(body, uint64(len(r.subject)))
		body = append(body, r.subject...)
		body = binary.AppendUvarint(body, uint64(len(r.payload)))
		body = append(body, r.payload...)
	}
	out := make([]byte, 8, 8+len(body))
	binary.BigEndian.PutUint32(out[0:4], uint32(len(body)))
	binary.BigEndian.PutUint32(out[4:8], crc32.ChecksumIEEE(body))
	return append(out, body...)
}

// parseRecord decodes one record from the front of data, returning the
// bytes consumed. errTorn means the data ends mid-record (a crashed
// append); other errors mean real corruption.
func parseRecord(data []byte) (record, int, error) {
	if len(data) < 8 {
		return record{}, 0, errTorn
	}
	bodyLen := binary.BigEndian.Uint32(data[0:4])
	if bodyLen > maxRecord {
		return record{}, 0, fmt.Errorf("body of %d bytes: %w", bodyLen, ErrTooBig)
	}
	if len(data) < 8+int(bodyLen) {
		return record{}, 0, errTorn
	}
	body := data[8 : 8+bodyLen]
	if crc32.ChecksumIEEE(body) != binary.BigEndian.Uint32(data[4:8]) {
		return record{}, 0, fmt.Errorf("crc mismatch: %w", ErrCorrupt)
	}
	if len(body) < 1 {
		return record{}, 0, ErrCorrupt
	}
	r := record{typ: body[0]}
	pos := 1
	id, n := binary.Uvarint(body[pos:])
	if n <= 0 {
		return record{}, 0, ErrCorrupt
	}
	pos += n
	r.id = id
	switch r.typ {
	case recAck:
		if pos != len(body) {
			return record{}, 0, ErrCorrupt
		}
	case recMessage:
		slen, n := binary.Uvarint(body[pos:])
		if n <= 0 || pos+n+int(slen) > len(body) {
			return record{}, 0, ErrCorrupt
		}
		pos += n
		r.subject = string(body[pos : pos+int(slen)])
		pos += int(slen)
		plen, n := binary.Uvarint(body[pos:])
		if n <= 0 || pos+n+int(plen) != len(body) {
			return record{}, 0, ErrCorrupt
		}
		pos += n
		r.payload = append([]byte(nil), body[pos:pos+int(plen)]...)
	default:
		return record{}, 0, fmt.Errorf("type %d: %w", r.typ, ErrCorrupt)
	}
	return r, 8 + int(bodyLen), nil
}
