// Package ledger implements the non-volatile message log behind the bus's
// guaranteed delivery semantics (§3.1): "the message is logged to
// non-volatile storage before it is sent. The message is guaranteed to be
// delivered at least once, regardless of failures. The publisher will
// retransmit the message at appropriate times until a reply is received."
//
// The log is a sequence of size-rotated segment files, each an append-only
// run of CRC-protected records. Records are either message entries (id,
// subject, payload) or acknowledgement entries (id). On open, the ledger
// replays the segments in order and reports every message that was logged
// but never acknowledged — exactly the set a restarted publisher must
// retransmit.
//
// Durability is group-committed: concurrent Append callers stage records
// into the current batch and block only until a committer goroutine has
// flushed that batch with a single write (and, with Sync, a single fsync).
// Under contention the fsync cost is paid once per batch instead of once
// per message; an uncontended Append commits immediately with no added
// linger. Ack records ride the same pipeline but never block the caller:
// losing an unflushed ack in a crash only means the message is
// retransmitted once more, and consumers' (origin, id) dedup absorbs it.
//
// Compaction is incremental: fully-acknowledged leading segments are
// unlinked as soon as the log rotates past them, and Compact rewrites only
// the oldest partially-acknowledged segment — appends keep flowing to the
// active segment throughout.
package ledger

import (
	"errors"
	"os"
	"path/filepath"
	"slices"
	"sync"
	"time"

	"infobus/internal/telemetry"
)

// DefaultSegmentBytes is the segment rotation threshold when
// Options.SegmentBytes is zero.
const DefaultSegmentBytes = 4 << 20

// DefaultLinger is the bounded group-forming wait when Options.Linger is
// zero. It only ever applies under proven contention; see Options.Linger.
const DefaultLinger = 100 * time.Microsecond

// DefaultAckLinger is the deferred-commit window for batches holding only
// ack records when Options.AckLinger is zero; see Options.AckLinger.
const DefaultAckLinger = 2 * time.Millisecond

// Entry is one logged, possibly unacknowledged message.
type Entry struct {
	ID      uint64
	Subject string
	Payload []byte
}

// Ledger errors.
var (
	ErrClosed  = errors.New("ledger: closed")
	ErrCorrupt = errors.New("ledger: corrupt record")
	ErrTooBig  = errors.New("ledger: record exceeds size limit")
)

// entryState is a pending message plus the segment its record lives in
// (seg == 0 until the record's batch has been committed).
type entryState struct {
	e   Entry
	seg uint64
}

// segment is one log file. segs[len-1] is the active (append) segment;
// live counts the pending messages whose records it holds.
type segment struct {
	seq  uint64
	path string
	size int64
	live int
}

// batch is one group-commit unit: the staged record bytes of every caller
// that arrived while the previous batch was being flushed. done is closed
// once the batch is durable (err set first).
type batch struct {
	buf    []byte
	msgIDs []uint64 // ids of recMessage records staged in this batch
	recs   int
	rotate bool // a Compact waiter asked for rotation after this batch
	err    error
	done   chan struct{}
	// Stage timestamps (unix nanoseconds), written by writeBatch before
	// done closes so AppendTimed waiters read them race-free: commitAt
	// after the segment write, syncAt after the fsync (0 without Sync).
	// They feed the guaranteed-path trace hops (busproto.HopGroupCommit,
	// HopFsync); cost is two clock reads per batch, not per record.
	commitAt int64
	syncAt   int64
}

// Ledger is a crash-safe append-only message log. It is safe for
// concurrent use.
type Ledger struct {
	path      string // segment name prefix: <path>.<seq>.seg
	dir       string
	sync      bool
	group     bool
	linger    time.Duration
	ackLinger time.Duration
	segMax    int64

	kick chan struct{} // committer wake-up (buffered, non-blocking send)
	stop chan struct{}
	wg   sync.WaitGroup

	mu         sync.Mutex
	closed     bool
	onCommit   func(cb CommitBatch) // replication hook; see SetOnCommit
	commitSeq  uint64               // batches committed so far (hook's Seq)
	lastCohort int                  // appenders woken by the previous flush (linger target)
	ackTimer   *time.Timer          // pending deferred-ack kick; see Options.AckLinger
	nextID     uint64
	pending    map[uint64]*entryState
	segs       []*segment
	f          *os.File // active segment, append position at EOF
	cur        *batch
	bufFree    [][]byte
	idsFree    [][]uint64
	iterBuf    []Entry
	compacting bool

	// compactHold, when non-nil, blocks Compact between writing the
	// rewritten segment and swapping it in — a test seam proving Append
	// never waits on a compaction in progress.
	compactHold chan struct{}

	ctr counters
}

// counters holds the ledger's telemetry handles.
type counters struct {
	appends, acks, recovered, compactions *telemetry.Counter
	commits, fsyncs, rotations            *telemetry.Counter
	pending, segments                     *telemetry.Gauge
	appendNs, commitNs                    *telemetry.Histogram
	groupSize                             *telemetry.Histogram
}

// Options configure Open.
type Options struct {
	// Sync makes a commit durable against machine crashes: each committed
	// batch is fsynced before its Append callers return. Without it the
	// ledger still survives process crashes. Group commit coalesces
	// concurrent appends so the cost is per batch, not per message.
	Sync bool
	// SegmentBytes is the rotation threshold for one segment file; the
	// active segment is rolled once it grows past this. <= 0 selects
	// DefaultSegmentBytes.
	SegmentBytes int64
	// Linger bounds the extra wait a commit spends letting a forming group
	// reach the size of the previous one, once contention is proven (the
	// previous batch carried more than one Append). Goroutine wake-up can
	// be slower than a small fsync, so without this the pipeline can
	// degenerate into near-singleton batches. An uncontended Append never
	// waits regardless of the setting. Zero selects DefaultLinger;
	// negative disables lingering entirely.
	Linger time.Duration
	// AckLinger defers the commit kick when the staged batch holds only
	// ack records. Nothing waits on an ack commit and its durability is
	// advisory (a crash that loses recent acks causes re-deliveries that
	// consumers dedup), but under a steady ack trickle an immediate kick
	// buys each ack its own fsync and starves message appends of cohort
	// partners. Deferred acks ride the next message batch, the deferral
	// timer, or Close — they are never dropped while the process lives.
	// Zero selects DefaultAckLinger; negative disables deferral.
	AckLinger time.Duration
	// DisableGroupCommit reverts to a write(+fsync) per record under the
	// ledger lock — the pre-group-commit behaviour, kept as the measured
	// baseline for experiment A10. Leave it false.
	DisableGroupCommit bool
	// Metrics is the telemetry registry the ledger's counters live in
	// (the host shares its registry here); nil creates a private one.
	Metrics *telemetry.Registry
	// Recorder is the process flight recorder; a non-empty recovery at
	// Open is recorded into it so a post-restart dump shows how much
	// undelivered backlog the process came back with. Nil disables it.
	Recorder *telemetry.Recorder
}

// Open opens or creates a ledger, replaying any existing segments. path
// names the ledger; segment files live beside it as "<path>.<seq>.seg" (a
// pre-segmentation monolithic file at exactly path is migrated in place).
// A trailing partial record in the newest segment (from a crash
// mid-commit) is truncated away; corruption anywhere earlier is reported
// as ErrCorrupt.
func Open(path string, opts Options) (*Ledger, error) {
	segMax := opts.SegmentBytes
	if segMax <= 0 {
		segMax = DefaultSegmentBytes
	}
	linger := opts.Linger
	if linger == 0 {
		linger = DefaultLinger
	} else if linger < 0 {
		linger = 0
	}
	ackLinger := opts.AckLinger
	if ackLinger == 0 {
		ackLinger = DefaultAckLinger
	} else if ackLinger < 0 {
		ackLinger = 0
	}
	reg := opts.Metrics
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	l := &Ledger{
		path:      path,
		dir:       filepath.Dir(path),
		sync:      opts.Sync,
		group:     !opts.DisableGroupCommit,
		linger:    linger,
		ackLinger: ackLinger,
		segMax:    segMax,
		kick:      make(chan struct{}, 1),
		stop:      make(chan struct{}),
		pending:   make(map[uint64]*entryState),
	}
	l.ctr = counters{
		appends:     reg.Counter("ledger.appends"),
		acks:        reg.Counter("ledger.acks"),
		recovered:   reg.Counter("ledger.recovered"),
		compactions: reg.Counter("ledger.compactions"),
		commits:     reg.Counter("ledger.commits"),
		fsyncs:      reg.Counter("ledger.fsyncs"),
		rotations:   reg.Counter("ledger.rotations"),
		pending:     reg.Gauge("ledger.pending"),
		segments:    reg.Gauge("ledger.segments"),
		appendNs:    reg.Histogram("ledger.append_ns"),
		commitNs:    reg.Histogram("ledger.commit_ns"),
		groupSize:   reg.Histogram("ledger.group_size"),
	}
	if err := l.openSegments(); err != nil {
		return nil, err
	}
	l.cur = l.newBatchLocked()
	l.ctr.recovered.Add(uint64(len(l.pending)))
	l.ctr.pending.Set(int64(len(l.pending)))
	l.ctr.segments.Set(int64(len(l.segs)))
	if opts.Recorder != nil && len(l.pending) > 0 {
		opts.Recorder.Record(telemetry.EventRecover, "ledger", int64(len(l.pending)), 0)
	}
	if l.group {
		l.wg.Add(1)
		go l.commitLoop()
	}
	return l, nil
}

// Append logs a message before transmission and returns its ledger ID. It
// returns once the record is committed — with Sync, once it is on disk —
// sharing the write and fsync with every other Append staged into the
// same batch.
func (l *Ledger) Append(subject string, payload []byte) (uint64, error) {
	id, _, err := l.AppendTimed(subject, payload)
	return id, err
}

// AppendTimings are the intra-ledger stage timestamps of one append, in
// unix nanoseconds. They become the guaranteed-path trace hops
// (busproto.HopLedgerStage / HopGroupCommit / HopFsync) when the
// publication is sampled for tracing.
type AppendTimings struct {
	StagedAt int64 // record staged into the forming group-commit batch
	CommitAt int64 // batch write completed (0 if the write failed)
	SyncedAt int64 // batch fsync completed (0 without Options.Sync)
}

// AppendTimed is Append plus the stage timestamps of the batch the record
// committed in. The stamps are per batch (one clock read per stage per
// flush), so two appends sharing a batch report identical CommitAt.
func (l *Ledger) AppendTimed(subject string, payload []byte) (uint64, AppendTimings, error) {
	start := time.Now()
	tm := AppendTimings{StagedAt: start.UnixNano()}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return 0, tm, ErrClosed
	}
	id := l.nextID
	l.nextID++
	b := l.cur
	b.buf = appendRecord(b.buf, record{typ: recMessage, id: id, subject: subject, payload: payload})
	b.msgIDs = append(b.msgIDs, id)
	b.recs++
	l.pending[id] = &entryState{e: Entry{ID: id, Subject: subject, Payload: append([]byte(nil), payload...)}}
	l.ctr.appends.Inc()
	l.ctr.pending.Set(int64(len(l.pending)))
	if !l.group {
		err := l.commitBatchLocked(b)
		tm.CommitAt, tm.SyncedAt = b.commitAt, b.syncAt
		l.mu.Unlock()
		l.ctr.appendNs.Observe(time.Since(start))
		return id, tm, err
	}
	l.mu.Unlock()
	l.kickCommitter()
	<-b.done // close(done) orders the committer's stamp writes before these reads
	tm.CommitAt, tm.SyncedAt = b.commitAt, b.syncAt
	l.ctr.appendNs.Observe(time.Since(start))
	return id, tm, b.err
}

// Ack records that the message with the given ID was acknowledged; it
// will not be reported as pending after a restart. The ack record rides
// the commit pipeline asynchronously: Ack never waits for the disk. If a
// crash loses an unflushed ack, the message is retransmitted once more
// after replay and the consumer-side (origin, id) dedup absorbs it.
func (l *Ledger) Ack(id uint64) error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	st, ok := l.pending[id]
	if !ok {
		l.mu.Unlock()
		return nil // duplicate ack: idempotent
	}
	delete(l.pending, id)
	if st.seg != 0 {
		if s := l.segBySeqLocked(st.seg); s != nil {
			s.live--
		}
	}
	b := l.cur
	b.buf = appendRecord(b.buf, record{typ: recAck, id: id})
	b.recs++
	l.ctr.acks.Inc()
	l.ctr.pending.Set(int64(len(l.pending)))
	if !l.group {
		err := l.commitBatchLocked(b)
		l.mu.Unlock()
		return err
	}
	// A batch of nothing but ack records has no waiter: defer its kick so
	// the acks ride a message batch instead of buying their own fsync.
	if l.ackLinger > 0 && len(b.msgIDs) == 0 {
		if l.ackTimer == nil {
			l.ackTimer = time.AfterFunc(l.ackLinger, func() {
				l.mu.Lock()
				l.ackTimer = nil
				l.mu.Unlock()
				l.kickCommitter()
			})
		}
		l.mu.Unlock()
		return nil
	}
	l.mu.Unlock()
	l.kickCommitter()
	return nil
}

// Pending returns every logged-but-unacknowledged message, oldest first.
// The returned payload slices are the ledger's own; callers must not
// mutate them.
func (l *Ledger) Pending() []Entry {
	l.mu.Lock()
	out := make([]Entry, 0, len(l.pending))
	for _, st := range l.pending {
		out = append(out, st.e)
	}
	l.mu.Unlock()
	slices.SortFunc(out, func(a, b Entry) int {
		switch {
		case a.ID < b.ID:
			return -1
		case a.ID > b.ID:
			return 1
		}
		return 0
	})
	return out
}

// ForEachPending calls f for every pending message, oldest first, without
// allocating: the entries are copied into a reused internal buffer under
// the lock, then f runs with no ledger lock held (so it may Ack, Append,
// or publish). f returns false to stop early. The *Entry and its payload
// are only valid during the call; an entry acked concurrently may still
// be visited once (guaranteed delivery is at-least-once).
func (l *Ledger) ForEachPending(f func(e *Entry) bool) {
	l.mu.Lock()
	if len(l.pending) == 0 {
		l.mu.Unlock()
		return
	}
	buf := l.iterBuf[:0]
	for _, st := range l.pending {
		buf = append(buf, st.e)
	}
	l.iterBuf = buf
	l.mu.Unlock()
	slices.SortFunc(buf, func(a, b Entry) int {
		switch {
		case a.ID < b.ID:
			return -1
		case a.ID > b.ID:
			return 1
		}
		return 0
	})
	for i := range buf {
		if !f(&buf[i]) {
			return
		}
	}
}

// Len returns the number of pending (unacknowledged) messages.
func (l *Ledger) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.pending)
}

// Close flushes staged records and releases the active segment.
func (l *Ledger) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	if l.ackTimer != nil {
		l.ackTimer.Stop() // a late firing is harmless; the drain below covers it
		l.ackTimer = nil
	}
	l.mu.Unlock()
	if l.group {
		close(l.stop)
		l.wg.Wait() // the committer drains staged acks before exiting
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.f.Close()
}

func (l *Ledger) segBySeqLocked(seq uint64) *segment {
	for _, s := range l.segs {
		if s.seq == seq {
			return s
		}
	}
	return nil
}
