//go:build race

package ledger

const raceEnabled = true
