package ledger

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

func openTemp(t *testing.T) (*Ledger, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "guaranteed.log")
	l, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = l.Close() })
	return l, path
}

func TestAppendAckPending(t *testing.T) {
	l, _ := openTemp(t)
	id1, err := l.Append("fab5.wip", []byte("lot-42"))
	if err != nil {
		t.Fatal(err)
	}
	id2, err := l.Append("fab5.wip", []byte("lot-43"))
	if err != nil {
		t.Fatal(err)
	}
	if id1 == id2 {
		t.Fatal("ids must be unique")
	}
	if l.Len() != 2 {
		t.Fatalf("Len = %d", l.Len())
	}
	if err := l.Ack(id1); err != nil {
		t.Fatal(err)
	}
	pending := l.Pending()
	if len(pending) != 1 || pending[0].ID != id2 || string(pending[0].Payload) != "lot-43" {
		t.Fatalf("Pending = %+v", pending)
	}
	// Duplicate ack is idempotent.
	if err := l.Ack(id1); err != nil {
		t.Fatal(err)
	}
	if err := l.Ack(99999); err != nil {
		t.Fatal("acking unknown id should be a no-op")
	}
}

func TestReplayAfterRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.log")
	l, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var ids []uint64
	for i := 0; i < 5; i++ {
		id, err := l.Append("s.a", []byte(fmt.Sprintf("m%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if err := l.Ack(ids[1]); err != nil {
		t.Fatal(err)
	}
	if err := l.Ack(ids[3]); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart": reopen and check exactly the unacked set is pending.
	l2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	pending := l2.Pending()
	if len(pending) != 3 {
		t.Fatalf("pending after replay = %+v", pending)
	}
	want := map[uint64]string{ids[0]: "m0", ids[2]: "m2", ids[4]: "m4"}
	for _, e := range pending {
		if want[e.ID] != string(e.Payload) || e.Subject != "s.a" {
			t.Errorf("entry %+v unexpected", e)
		}
	}
	// IDs continue monotonically after restart.
	newID, err := l2.Append("s.a", []byte("post"))
	if err != nil {
		t.Fatal(err)
	}
	if newID <= ids[4] {
		t.Errorf("id %d not monotonic after restart (last was %d)", newID, ids[4])
	}
}

func TestTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.log")
	l, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append("s", []byte("whole")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: write half a record.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	full := encodeRecord(record{typ: recMessage, id: 9, subject: "s", payload: []byte("torn")})
	if _, err := f.Write(full[:len(full)/2]); err != nil {
		t.Fatal(err)
	}
	_ = f.Close()

	l2, err := Open(path, Options{})
	if err != nil {
		t.Fatalf("torn tail should be tolerated: %v", err)
	}
	defer l2.Close()
	pending := l2.Pending()
	if len(pending) != 1 || string(pending[0].Payload) != "whole" {
		t.Fatalf("pending = %+v", pending)
	}
	// The file must have been truncated back to the valid prefix, so
	// appends go to the right place.
	if _, err := l2.Append("s", []byte("after")); err != nil {
		t.Fatal(err)
	}
}

func TestCorruptionDetected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.log")
	l, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append("s", []byte("aaaaaaaaaa")); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append("s", []byte("bbbbbbbbbb")); err != nil {
		t.Fatal(err)
	}
	_ = l.Close()
	// Flip a byte inside the first record's body.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[12] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Errorf("Open of corrupted ledger = %v, want ErrCorrupt", err)
	}
}

func TestCompact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.log")
	l, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var keep uint64
	for i := 0; i < 100; i++ {
		id, err := l.Append("s", make([]byte, 100))
		if err != nil {
			t.Fatal(err)
		}
		if i == 50 {
			keep = id
		} else if err := l.Ack(id); err != nil {
			t.Fatal(err)
		}
	}
	before, _ := os.Stat(path)
	if err := l.Compact(); err != nil {
		t.Fatal(err)
	}
	after, _ := os.Stat(path)
	if after.Size() >= before.Size() {
		t.Errorf("compaction did not shrink file: %d -> %d", before.Size(), after.Size())
	}
	pending := l.Pending()
	if len(pending) != 1 || pending[0].ID != keep {
		t.Fatalf("pending after compact = %+v", pending)
	}
	// Ledger still usable after compaction; state survives reopen.
	if _, err := l.Append("s", []byte("post-compact")); err != nil {
		t.Fatal(err)
	}
	_ = l.Close()
	l2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.Len() != 2 {
		t.Errorf("Len after reopen = %d, want 2", l2.Len())
	}
}

func TestClosedErrors(t *testing.T) {
	l, _ := openTemp(t)
	_ = l.Close()
	if _, err := l.Append("s", nil); !errors.Is(err, ErrClosed) {
		t.Errorf("Append after close = %v", err)
	}
	if err := l.Ack(0); !errors.Is(err, ErrClosed) {
		t.Errorf("Ack after close = %v", err)
	}
	if err := l.Compact(); !errors.Is(err, ErrClosed) {
		t.Errorf("Compact after close = %v", err)
	}
	if err := l.Close(); err != nil {
		t.Errorf("double close = %v", err)
	}
}

func TestSyncOption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.log")
	l, err := Open(path, Options{Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Append("s", []byte("durable")); err != nil {
		t.Fatal(err)
	}
}

// Property: record encode/decode round-trips for arbitrary subjects and
// payloads, and parse never panics on arbitrary byte prefixes.
func TestQuickRecordRoundTrip(t *testing.T) {
	f := func(id uint64, subject string, payload []byte) bool {
		enc := encodeRecord(record{typ: recMessage, id: id, subject: subject, payload: payload})
		rec, n, err := parseRecord(enc)
		if err != nil || n != len(enc) {
			return false
		}
		if rec.id != id || rec.subject != subject || len(rec.payload) != len(payload) {
			return false
		}
		// Any truncation must be reported torn, not panic.
		for cut := 0; cut < len(enc); cut += 7 {
			if _, _, err := parseRecord(enc[:cut]); err == nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
