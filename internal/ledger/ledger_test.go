package ledger

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"infobus/internal/telemetry"
)

func openTemp(t *testing.T) (*Ledger, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "guaranteed.log")
	l, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = l.Close() })
	return l, path
}

// diskSize sums the on-disk size of every segment of the ledger at base.
func diskSize(t *testing.T, base string) int64 {
	t.Helper()
	seqs, err := scanSegments(base)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, seq := range seqs {
		fi, err := os.Stat(segPath(base, seq))
		if err != nil {
			t.Fatal(err)
		}
		total += fi.Size()
	}
	return total
}

func TestAppendAckPending(t *testing.T) {
	l, _ := openTemp(t)
	id1, err := l.Append("fab5.wip", []byte("lot-42"))
	if err != nil {
		t.Fatal(err)
	}
	id2, err := l.Append("fab5.wip", []byte("lot-43"))
	if err != nil {
		t.Fatal(err)
	}
	if id1 == id2 {
		t.Fatal("ids must be unique")
	}
	if l.Len() != 2 {
		t.Fatalf("Len = %d", l.Len())
	}
	if err := l.Ack(id1); err != nil {
		t.Fatal(err)
	}
	pending := l.Pending()
	if len(pending) != 1 || pending[0].ID != id2 || string(pending[0].Payload) != "lot-43" {
		t.Fatalf("Pending = %+v", pending)
	}
	// Duplicate ack is idempotent.
	if err := l.Ack(id1); err != nil {
		t.Fatal(err)
	}
	if err := l.Ack(99999); err != nil {
		t.Fatal("acking unknown id should be a no-op")
	}
}

func TestReplayAfterRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.log")
	l, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var ids []uint64
	for i := 0; i < 5; i++ {
		id, err := l.Append("s.a", []byte(fmt.Sprintf("m%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if err := l.Ack(ids[1]); err != nil {
		t.Fatal(err)
	}
	if err := l.Ack(ids[3]); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart": reopen and check exactly the unacked set is pending —
	// Close must have flushed the asynchronously committed ack records.
	l2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	pending := l2.Pending()
	if len(pending) != 3 {
		t.Fatalf("pending after replay = %+v", pending)
	}
	want := map[uint64]string{ids[0]: "m0", ids[2]: "m2", ids[4]: "m4"}
	for _, e := range pending {
		if want[e.ID] != string(e.Payload) || e.Subject != "s.a" {
			t.Errorf("entry %+v unexpected", e)
		}
	}
	// IDs continue monotonically after restart.
	newID, err := l2.Append("s.a", []byte("post"))
	if err != nil {
		t.Fatal(err)
	}
	if newID <= ids[4] {
		t.Errorf("id %d not monotonic after restart (last was %d)", newID, ids[4])
	}
}

func TestTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.log")
	l, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append("s", []byte("whole")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-commit: write half a record onto the active
	// segment.
	f, err := os.OpenFile(segPath(path, 1), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	full := encodeRecord(record{typ: recMessage, id: 9, subject: "s", payload: []byte("torn")})
	if _, err := f.Write(full[:len(full)/2]); err != nil {
		t.Fatal(err)
	}
	_ = f.Close()

	l2, err := Open(path, Options{})
	if err != nil {
		t.Fatalf("torn tail should be tolerated: %v", err)
	}
	defer l2.Close()
	pending := l2.Pending()
	if len(pending) != 1 || string(pending[0].Payload) != "whole" {
		t.Fatalf("pending = %+v", pending)
	}
	// The segment must have been truncated back to the valid prefix, so
	// appends go to the right place.
	if _, err := l2.Append("s", []byte("after")); err != nil {
		t.Fatal(err)
	}
}

// TestTornGroupBatchReplay cuts the log mid-record inside a
// group-committed batch: replay must recover exactly the durable prefix —
// messages and acks before the tear applied, the torn record gone — and
// the ledger must stay appendable.
func TestTornGroupBatchReplay(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.log")
	// One batch of four records: m0, m1, ack(m0), m2.
	var batch []byte
	batch = appendRecord(batch, record{typ: recMessage, id: 0, subject: "s", payload: []byte("m0")})
	batch = appendRecord(batch, record{typ: recMessage, id: 1, subject: "s", payload: []byte("m1")})
	ackAt := len(batch)
	batch = appendRecord(batch, record{typ: recAck, id: 0})
	lastAt := len(batch)
	batch = appendRecord(batch, record{typ: recMessage, id: 2, subject: "s", payload: []byte("m2")})

	cases := []struct {
		name    string
		cut     int
		pending []uint64
	}{
		{"mid-last-message", lastAt + 5, []uint64{1}},
		{"mid-ack", ackAt + 3, []uint64{0, 1}},
		{"clean-batch", len(batch), []uint64{1, 2}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			base := filepath.Join(t.TempDir(), "g.log")
			if err := os.WriteFile(segPath(base, 1), batch[:tc.cut], 0o644); err != nil {
				t.Fatal(err)
			}
			l, err := Open(base, Options{})
			if err != nil {
				t.Fatalf("open with cut at %d: %v", tc.cut, err)
			}
			defer l.Close()
			pending := l.Pending()
			var ids []uint64
			for _, e := range pending {
				ids = append(ids, e.ID)
			}
			if fmt.Sprint(ids) != fmt.Sprint(tc.pending) {
				t.Fatalf("pending ids = %v, want %v", ids, tc.pending)
			}
			if _, err := l.Append("s", []byte("post-tear")); err != nil {
				t.Fatal(err)
			}
		})
	}
	_ = path
}

func TestCorruptionDetected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.log")
	l, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append("s", []byte("aaaaaaaaaa")); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append("s", []byte("bbbbbbbbbb")); err != nil {
		t.Fatal(err)
	}
	_ = l.Close()
	// Flip a byte inside the first record's body.
	seg := segPath(path, 1)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[12] ^= 0xFF
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Errorf("Open of corrupted ledger = %v, want ErrCorrupt", err)
	}
}

// A torn record in a non-newest segment is not a crash artifact (the log
// rotated past it) — it must be reported as corruption, not silently
// truncated.
func TestTornMiddleSegmentIsCorrupt(t *testing.T) {
	base := filepath.Join(t.TempDir(), "g.log")
	rec := encodeRecord(record{typ: recMessage, id: 0, subject: "s", payload: []byte("x")})
	if err := os.WriteFile(segPath(base, 1), rec[:len(rec)-2], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(segPath(base, 2), rec, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(base, Options{}); err == nil {
		t.Fatal("torn middle segment accepted")
	}
}

func TestCompact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.log")
	l, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var keep uint64
	for i := 0; i < 100; i++ {
		id, err := l.Append("s", make([]byte, 100))
		if err != nil {
			t.Fatal(err)
		}
		if i == 50 {
			keep = id
		} else if err := l.Ack(id); err != nil {
			t.Fatal(err)
		}
	}
	before := diskSize(t, path)
	if err := l.Compact(); err != nil {
		t.Fatal(err)
	}
	after := diskSize(t, path)
	if after >= before {
		t.Errorf("compaction did not shrink the log: %d -> %d", before, after)
	}
	pending := l.Pending()
	if len(pending) != 1 || pending[0].ID != keep {
		t.Fatalf("pending after compact = %+v", pending)
	}
	// Ledger still usable after compaction; state survives reopen.
	if _, err := l.Append("s", []byte("post-compact")); err != nil {
		t.Fatal(err)
	}
	_ = l.Close()
	l2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.Len() != 2 {
		t.Errorf("Len after reopen = %d, want 2", l2.Len())
	}
}

// TestSegmentRotationDropsAcked drives the log across many small
// segments and acks everything: rotation must unlink the fully-acked
// leading segments without any explicit Compact call.
func TestSegmentRotationDropsAcked(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.log")
	reg := telemetry.NewRegistry()
	l, err := Open(path, Options{SegmentBytes: 2048, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 200; i++ {
		id, err := l.Append("s", make([]byte, 128))
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Ack(id); err != nil {
			t.Fatal(err)
		}
	}
	if got := reg.Counter("ledger.rotations").Load(); got == 0 {
		t.Fatal("no rotations at a 2 KiB segment size")
	}
	seqs, err := scanSegments(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) > 3 {
		t.Errorf("%d segments on disk; fully-acked ones should have been dropped", len(seqs))
	}
	// Everything acked: reopen comes back empty.
	_ = l.Close()
	l2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.Len() != 0 {
		t.Errorf("Len after reopen = %d, want 0", l2.Len())
	}
}

// TestLegacyMigration opens a pre-segmentation monolithic ledger file and
// expects it to be adopted as the oldest segment with identical replay.
func TestLegacyMigration(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.log")
	var raw []byte
	raw = appendRecord(raw, record{typ: recMessage, id: 0, subject: "s", payload: []byte("old-0")})
	raw = appendRecord(raw, record{typ: recMessage, id: 1, subject: "s", payload: []byte("old-1")})
	raw = appendRecord(raw, record{typ: recAck, id: 0})
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	pending := l.Pending()
	if len(pending) != 1 || pending[0].ID != 1 || string(pending[0].Payload) != "old-1" {
		t.Fatalf("pending after migration = %+v", pending)
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Error("monolithic file still present after migration")
	}
	if id, err := l.Append("s", []byte("new")); err != nil || id != 2 {
		t.Fatalf("append after migration: id=%d err=%v", id, err)
	}
}

func TestClosedErrors(t *testing.T) {
	l, _ := openTemp(t)
	_ = l.Close()
	if _, err := l.Append("s", nil); !errors.Is(err, ErrClosed) {
		t.Errorf("Append after close = %v", err)
	}
	if err := l.Ack(0); !errors.Is(err, ErrClosed) {
		t.Errorf("Ack after close = %v", err)
	}
	if err := l.Compact(); !errors.Is(err, ErrClosed) {
		t.Errorf("Compact after close = %v", err)
	}
	if err := l.Close(); err != nil {
		t.Errorf("double close = %v", err)
	}
}

func TestSyncOption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.log")
	l, err := Open(path, Options{Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Append("s", []byte("durable")); err != nil {
		t.Fatal(err)
	}
}

// TestDirectModeParity pins the DisableGroupCommit baseline to the same
// semantics as the pipeline: same pending sets, same replay.
func TestDirectModeParity(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.log")
	l, err := Open(path, Options{DisableGroupCommit: true, Sync: true, SegmentBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	var ids []uint64
	for i := 0; i < 20; i++ {
		id, err := l.Append("s", make([]byte, 100))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	for _, id := range ids[:10] {
		if err := l.Ack(id); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Compact(); err != nil {
		t.Fatal(err)
	}
	if l.Len() != 10 {
		t.Fatalf("Len = %d", l.Len())
	}
	_ = l.Close()
	l2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.Len() != 10 {
		t.Fatalf("Len after reopen = %d", l2.Len())
	}
}

// TestConcurrentAppendAck races producers against an acking consumer and
// checks the replayed state matches the in-memory one exactly.
func TestConcurrentAppendAck(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.log")
	l, err := Open(path, Options{SegmentBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	const workers, per = 8, 50
	acked := make(map[uint64]bool)
	var ackedMu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				id, err := l.Append("c.s", []byte(fmt.Sprintf("w%d-%d", w, i)))
				if err != nil {
					t.Error(err)
					return
				}
				if i%2 == 0 {
					if err := l.Ack(id); err != nil {
						t.Error(err)
						return
					}
					ackedMu.Lock()
					acked[id] = true
					ackedMu.Unlock()
				}
			}
		}(w)
	}
	wg.Wait()
	want := workers * per / 2
	if l.Len() != want {
		t.Fatalf("Len = %d, want %d", l.Len(), want)
	}
	live := l.Pending()
	_ = l.Close()
	l2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	replayed := l2.Pending()
	if len(replayed) != len(live) {
		t.Fatalf("replayed %d entries, live had %d", len(replayed), len(live))
	}
	for i := range replayed {
		if replayed[i].ID != live[i].ID || string(replayed[i].Payload) != string(live[i].Payload) {
			t.Fatalf("replayed[%d] = %+v, live = %+v", i, replayed[i], live[i])
		}
		if acked[replayed[i].ID] {
			t.Fatalf("acked id %d replayed as pending", replayed[i].ID)
		}
	}
}

// TestGroupCommitFsyncBudget is the scripts/check.sh gate: with Sync on
// and 8 concurrent publishers, group commit must coalesce flushes so the
// ledger averages well under one fsync per appended message.
func TestGroupCommitFsyncBudget(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.log")
	reg := telemetry.NewRegistry()
	l, err := Open(path, Options{Sync: true, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	const workers, per = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			payload := make([]byte, 256)
			for i := 0; i < per; i++ {
				if _, err := l.Append("gate.s", payload); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	appends := float64(reg.Counter("ledger.appends").Load())
	fsyncs := float64(reg.Counter("ledger.fsyncs").Load())
	ratio := fsyncs / appends
	t.Logf("appends=%v fsyncs=%v fsyncs/msg=%.3f mean-group=%.1f",
		appends, fsyncs, ratio, appends/float64(reg.Counter("ledger.commits").Load()))
	if fsyncs == 0 {
		t.Fatal("Sync on but no fsyncs recorded")
	}
	if ratio > 0.75 {
		t.Fatalf("fsyncs/msg = %.3f; group commit must average well under one fsync per message", ratio)
	}
}

// TestCompactDoesNotBlockAppend holds a compaction at its slowest point
// (via the test seam) and proves Append still completes: the rewrite
// touches only the oldest segment while appends flow to the active one.
func TestCompactDoesNotBlockAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.log")
	l, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var ids []uint64
	for i := 0; i < 50; i++ {
		id, err := l.Append("s", make([]byte, 200))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	for _, id := range ids[:25] {
		if err := l.Ack(id); err != nil {
			t.Fatal(err)
		}
	}
	hold := make(chan struct{})
	l.mu.Lock()
	l.compactHold = hold
	l.mu.Unlock()
	compactDone := make(chan error, 1)
	go func() { compactDone <- l.Compact() }()

	// Appends (and acks) must complete while the compaction is stalled.
	appended := make(chan error, 1)
	go func() {
		for i := 0; i < 10; i++ {
			if _, err := l.Append("s", []byte("during-compact")); err != nil {
				appended <- err
				return
			}
		}
		appended <- nil
	}()
	select {
	case err := <-appended:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Append blocked behind a compaction in progress")
	}
	select {
	case err := <-compactDone:
		t.Fatalf("compaction finished before the hold was released: %v", err)
	default:
	}
	close(hold)
	if err := <-compactDone; err != nil {
		t.Fatal(err)
	}
	if l.Len() != 35 {
		t.Fatalf("Len = %d, want 35", l.Len())
	}
}

func TestForEachPending(t *testing.T) {
	l, _ := openTemp(t)
	// Empty: callback never runs.
	l.ForEachPending(func(e *Entry) bool {
		t.Fatal("callback on empty ledger")
		return true
	})
	var ids []uint64
	for i := 0; i < 10; i++ {
		id, err := l.Append("s", []byte{byte(i)})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if err := l.Ack(ids[4]); err != nil {
		t.Fatal(err)
	}
	var seen []uint64
	l.ForEachPending(func(e *Entry) bool {
		seen = append(seen, e.ID)
		// Re-entrancy: the callback runs lock-free and may Ack.
		if len(seen) == 1 {
			if err := l.Ack(ids[9]); err != nil {
				t.Error(err)
			}
		}
		return true
	})
	// Oldest-first, without the acked entry; ids[9] was acked mid-walk but
	// had already been snapshotted (at-least-once).
	want := []uint64{ids[0], ids[1], ids[2], ids[3], ids[5], ids[6], ids[7], ids[8], ids[9]}
	if fmt.Sprint(seen) != fmt.Sprint(want) {
		t.Fatalf("walk = %v, want %v", seen, want)
	}
	// Early stop.
	n := 0
	l.ForEachPending(func(e *Entry) bool { n++; return n < 3 })
	if n != 3 {
		t.Fatalf("early stop visited %d", n)
	}
}

// TestForEachPendingSteadyStateAllocs pins the retrier's per-tick walk at
// zero allocations once the iteration buffer has warmed.
func TestForEachPendingSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates")
	}
	l, _ := openTemp(t)
	for i := 0; i < 64; i++ {
		if _, err := l.Append("s", []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	walk := func() {
		l.ForEachPending(func(e *Entry) bool { return true })
	}
	walk() // warm iterBuf
	if got := testing.AllocsPerRun(100, walk); got > 0 {
		t.Fatalf("ForEachPending = %.1f allocs/op, want 0", got)
	}
	// And the idle walk (nothing pending) is also free.
	for _, e := range l.Pending() {
		if err := l.Ack(e.ID); err != nil {
			t.Fatal(err)
		}
	}
	if got := testing.AllocsPerRun(100, walk); got > 0 {
		t.Fatalf("idle ForEachPending = %.1f allocs/op, want 0", got)
	}
}

// Property: record encode/decode round-trips for arbitrary subjects and
// payloads, and parse never panics on arbitrary byte prefixes.
func TestQuickRecordRoundTrip(t *testing.T) {
	f := func(id uint64, subject string, payload []byte) bool {
		enc := encodeRecord(record{typ: recMessage, id: id, subject: subject, payload: payload})
		rec, n, err := parseRecord(enc)
		if err != nil || n != len(enc) {
			return false
		}
		if rec.id != id || rec.subject != subject || len(rec.payload) != len(payload) {
			return false
		}
		// Any truncation must be reported torn, not panic.
		for cut := 0; cut < len(enc); cut += 7 {
			if _, _, err := parseRecord(enc[:cut]); err == nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestAckLingerDefersCommit proves the deferred-ack pipeline: a lone ack
// record does not buy its own commit inside the linger window, rides the
// next message batch when one forms, still reaches disk via the deferral
// timer when none does, and is never lost across Close.
func TestAckLingerDefersCommit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.log")
	reg := telemetry.NewRegistry()
	l, err := Open(path, Options{Metrics: reg, AckLinger: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	id, err := l.Append("fab5.wip", []byte("lot-44"))
	if err != nil {
		t.Fatal(err)
	}
	base := reg.Counter("ledger.commits").Load()
	if err := l.Ack(id); err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond) // well inside the linger window
	if got := reg.Counter("ledger.commits").Load(); got != base {
		t.Fatalf("ack committed eagerly: %d commits (was %d)", got, base)
	}
	// A message append sweeps the staged ack along with it.
	if _, err := l.Append("fab5.wip", []byte("lot-45")); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("ledger.commits").Load(); got != base+1 {
		t.Fatalf("message batch did not sweep the ack: %d commits", got)
	}
	// Close drains a deferred ack staged moments earlier; a reopen must
	// not resurrect the acked message.
	id2 := uint64(0)
	if id2, err = l.Append("fab5.wip", []byte("lot-46")); err != nil {
		t.Fatal(err)
	}
	if err := l.Ack(id2); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	for _, e := range l2.Pending() {
		if e.ID == id2 {
			t.Fatal("deferred ack lost across Close: message resurrected")
		}
	}
}

// TestAckLingerTimerFlush proves a deferred ack reaches disk on its own
// once the linger timer expires, without any later append to ride.
func TestAckLingerTimerFlush(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.log")
	reg := telemetry.NewRegistry()
	l, err := Open(path, Options{Metrics: reg, AckLinger: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	id, err := l.Append("fab5.wip", []byte("lot-47"))
	if err != nil {
		t.Fatal(err)
	}
	base := reg.Counter("ledger.commits").Load()
	if err := l.Ack(id); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for reg.Counter("ledger.commits").Load() == base {
		if time.Now().After(deadline) {
			t.Fatal("deferred ack never committed after the linger window")
		}
		time.Sleep(time.Millisecond)
	}
}
