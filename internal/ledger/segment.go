package ledger

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"slices"
	"strconv"
	"strings"
)

// Segment files live beside the configured path as "<path>.<seq>.seg"
// with an 8-digit monotonically increasing sequence number; replay order
// is sequence order. A pre-segmentation ledger (a monolithic file at
// exactly path) is adopted as the oldest segment on first open.
//
// Crash-safety rule: every rename, create, and unlink in this file is
// followed by an fsync of the containing directory. os.Rename alone only
// orders the change in the page cache — without the directory sync a
// crash can resurrect a pre-compaction file or lose a freshly created
// segment, and replay would then double-count or drop pending messages.

func segPath(base string, seq uint64) string {
	return fmt.Sprintf("%s.%08d.seg", base, seq)
}

// fsyncDir makes a directory-entry change (rename/create/unlink) durable.
func fsyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return fmt.Errorf("ledger: syncing directory %s: %w", dir, serr)
	}
	return cerr
}

// scanSegments lists the existing segment sequence numbers for base,
// sorted ascending.
func scanSegments(base string) ([]uint64, error) {
	dir := filepath.Dir(base)
	prefix := filepath.Base(base) + "."
	names, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("ledger: scanning %s: %w", dir, err)
	}
	var seqs []uint64
	for _, de := range names {
		name := de.Name()
		if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, ".seg") {
			continue
		}
		mid := name[len(prefix) : len(name)-len(".seg")]
		if len(mid) != 8 {
			continue
		}
		seq, err := strconv.ParseUint(mid, 10, 64)
		if err != nil || seq == 0 {
			continue
		}
		seqs = append(seqs, seq)
	}
	slices.Sort(seqs)
	return seqs, nil
}

// openSegments discovers (or creates) the segment files, replays them in
// order rebuilding the pending set, truncates a torn tail off the newest
// segment, and leaves l.f open at the append position. Called from Open
// before the committer starts, so no locking.
func (l *Ledger) openSegments() error {
	seqs, err := scanSegments(l.path)
	if err != nil {
		return err
	}
	// Adopt a pre-segmentation monolithic ledger as the oldest segment.
	if fi, err := os.Stat(l.path); err == nil && fi.Mode().IsRegular() {
		if len(seqs) > 0 {
			return fmt.Errorf("ledger: both %s and segment files exist: %w", l.path, ErrCorrupt)
		}
		if err := os.Rename(l.path, segPath(l.path, 1)); err != nil {
			return fmt.Errorf("ledger: migrating %s: %w", l.path, err)
		}
		if err := fsyncDir(l.dir); err != nil {
			return err
		}
		seqs = []uint64{1}
	}
	if len(seqs) == 0 {
		f, err := os.OpenFile(segPath(l.path, 1), os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
		if err != nil {
			return fmt.Errorf("ledger: creating %s: %w", segPath(l.path, 1), err)
		}
		if err := fsyncDir(l.dir); err != nil {
			_ = f.Close()
			return err
		}
		l.f = f
		l.segs = []*segment{{seq: 1, path: segPath(l.path, 1)}}
		return nil
	}
	tornTail := false
	for i, seq := range seqs {
		path := segPath(l.path, seq)
		data, err := os.ReadFile(path)
		if err != nil {
			return fmt.Errorf("ledger: reading %s: %w", path, err)
		}
		validEnd, err := l.replaySegment(seq, data, i == len(seqs)-1)
		if err != nil {
			return fmt.Errorf("ledger: %s: %w", path, err)
		}
		if i == len(seqs)-1 && validEnd < len(data) {
			tornTail = true
		}
		l.segs = append(l.segs, &segment{seq: seq, path: path, size: int64(validEnd)})
	}
	// Live counts: attribute each surviving pending entry to its segment.
	for _, st := range l.pending {
		if s := l.segBySeqLocked(st.seg); s != nil {
			s.live++
		}
	}
	active := l.segs[len(l.segs)-1]
	f, err := os.OpenFile(active.path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("ledger: reopening %s: %w", active.path, err)
	}
	if err := f.Truncate(active.size); err != nil {
		_ = f.Close()
		return fmt.Errorf("ledger: truncating torn tail of %s: %w", active.path, err)
	}
	if tornTail {
		// Removing a torn tail is a recovery-time mutation and must be as
		// durable as the rename/create/unlink paths: fsync the file so the
		// truncation itself survives a crash right after replay, and the
		// directory so the metadata change does too. Without this a second
		// crash could resurrect the torn bytes mid-file once new appends
		// land beyond them, turning a tolerated tear into real corruption.
		if err := f.Sync(); err != nil {
			_ = f.Close()
			return fmt.Errorf("ledger: syncing truncated %s: %w", active.path, err)
		}
		l.ctr.fsyncs.Inc()
		if err := fsyncDir(l.dir); err != nil {
			_ = f.Close()
			return err
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		_ = f.Close()
		return err
	}
	l.f = f
	return nil
}

// replaySegment applies one segment's records to the pending set and
// returns the byte length of the valid prefix. A torn trailing record is
// tolerated only in the newest segment (a crash mid-commit); anywhere
// earlier the log was rotated past it, so the tear is real corruption.
func (l *Ledger) replaySegment(seq uint64, data []byte, newest bool) (int, error) {
	off := 0
	for off < len(data) {
		rec, n, err := parseRecord(data[off:])
		if err != nil {
			if errors.Is(err, errTorn) && newest {
				return off, nil
			}
			return 0, fmt.Errorf("at offset %d: %w", off, err)
		}
		switch rec.typ {
		case recMessage:
			l.pending[rec.id] = &entryState{
				e:   Entry{ID: rec.id, Subject: rec.subject, Payload: rec.payload},
				seg: seq,
			}
		case recAck:
			delete(l.pending, rec.id)
		}
		if rec.id >= l.nextID {
			l.nextID = rec.id + 1
		}
		off += n
	}
	return off, nil
}

// rotateLocked rolls the active segment: fsync it (so a non-newest
// segment is always complete on disk, whatever Options.Sync says), open
// the next sequence number, fsync the directory, and drop any leading
// fully-acked segments that rotation has made removable.
func (l *Ledger) rotateLocked() error {
	old := l.f
	if err := old.Sync(); err != nil {
		return fmt.Errorf("ledger: syncing before rotation: %w", err)
	}
	l.ctr.fsyncs.Inc()
	seq := l.segs[len(l.segs)-1].seq + 1
	path := segPath(l.path, seq)
	nf, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("ledger: creating %s: %w", path, err)
	}
	if err := fsyncDir(l.dir); err != nil {
		_ = nf.Close()
		return err
	}
	_ = old.Close()
	l.f = nf
	l.segs = append(l.segs, &segment{seq: seq, path: path})
	l.ctr.rotations.Inc()
	l.dropAckedLocked()
	l.ctr.segments.Set(int64(len(l.segs)))
	return nil
}

// dropAckedLocked unlinks leading segments with no pending messages left.
// Their ack records can only reference their own (or earlier, already
// dropped) messages, so removing the whole file preserves the replayed
// pending set exactly.
func (l *Ledger) dropAckedLocked() {
	dropped := false
	for len(l.segs) > 1 && l.segs[0].live == 0 {
		s := l.segs[0]
		l.segs = l.segs[1:]
		_ = os.Remove(s.path)
		dropped = true
	}
	if dropped {
		_ = fsyncDir(l.dir)
		l.ctr.segments.Set(int64(len(l.segs)))
	}
}

// Compact runs one incremental compaction pass: rotate the active segment
// (so every record logged so far becomes compactable), unlink leading
// fully-acked segments, and rewrite the oldest partially-acked segment
// keeping only its pending messages. Appends are never blocked for the
// rewrite — they flow to the active segment throughout; only the brief
// metadata swaps take the ledger lock.
func (l *Ledger) Compact() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	if l.compacting {
		l.mu.Unlock()
		return nil // one pass at a time; the running one covers this call
	}
	l.compacting = true
	l.mu.Unlock()
	defer func() {
		l.mu.Lock()
		l.compacting = false
		l.mu.Unlock()
	}()

	if err := l.forceRotate(); err != nil {
		return err
	}

	// Snapshot the oldest segment's pending entries under the lock...
	l.mu.Lock()
	hold := l.compactHold
	var target *segment
	if len(l.segs) > 1 && l.segs[0] != l.segs[len(l.segs)-1] {
		target = l.segs[0]
	}
	var entries []Entry
	if target != nil {
		for _, st := range l.pending {
			if st.seg == target.seq {
				entries = append(entries, st.e)
			}
		}
	}
	l.mu.Unlock()
	if target == nil {
		l.ctr.compactions.Inc()
		return nil
	}
	slices.SortFunc(entries, func(a, b Entry) int {
		switch {
		case a.ID < b.ID:
			return -1
		case a.ID > b.ID:
			return 1
		}
		return 0
	})

	// ...and rewrite it with no ledger lock held. An entry acked during
	// the rewrite is still written as a message here, but its ack record
	// already rides a later segment, so replay nets the pair out.
	tmpPath := target.path + ".compact"
	tmp, err := os.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("ledger: creating %s: %w", tmpPath, err)
	}
	var buf []byte
	for _, e := range entries {
		buf = appendRecord(buf[:0], record{typ: recMessage, id: e.ID, subject: e.Subject, payload: e.Payload})
		if _, err := tmp.Write(buf); err != nil {
			_ = tmp.Close()
			return fmt.Errorf("ledger: rewriting %s: %w", target.path, err)
		}
	}
	if err := tmp.Sync(); err != nil {
		_ = tmp.Close()
		return err
	}
	l.ctr.fsyncs.Inc()
	size, err := tmp.Seek(0, io.SeekEnd)
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	if hold != nil {
		<-hold // test seam: prove appends proceed while compaction stalls
	}
	if err := os.Rename(tmpPath, target.path); err != nil {
		return fmt.Errorf("ledger: swapping compacted segment: %w", err)
	}
	if err := fsyncDir(l.dir); err != nil {
		return err
	}
	l.mu.Lock()
	target.size = size
	l.mu.Unlock()
	l.ctr.compactions.Inc()
	return nil
}

// forceRotate rolls the active segment. With group commit the request
// rides the pipeline as a rotation marker so the committer (the only
// writer of l.f) performs it between batches; in direct mode it happens
// inline.
func (l *Ledger) forceRotate() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	if !l.group {
		defer l.mu.Unlock()
		return l.rotateLocked()
	}
	b := l.cur
	b.rotate = true
	l.mu.Unlock()
	l.kickCommitter()
	<-b.done
	return b.err
}
