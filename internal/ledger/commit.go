package ledger

import (
	"fmt"
	"os"
	"runtime"
	"time"
)

// Group-commit pipeline. Append and Ack stage encoded records into l.cur
// under l.mu and kick the committer; the committer swaps in a fresh batch,
// releases the lock, and flushes the taken batch with one write and (with
// Sync) one fsync. Every caller that staged into the batch becomes
// durable together — the leader/follower pattern with the committer
// goroutine as the permanent leader. While a flush is in progress new
// callers stage into the next batch, so the group size adapts to
// contention by itself: an uncontended Append commits alone with no added
// wait, and N publishers racing a slow disk share one fsync per flush.

// newBatchLocked builds the next staging batch, reusing recycled buffer
// backing arrays. Caller holds l.mu (or is the only ledger reference, in
// Open).
func (l *Ledger) newBatchLocked() *batch {
	b := &batch{done: make(chan struct{})}
	if n := len(l.bufFree); n > 0 {
		b.buf = l.bufFree[n-1]
		l.bufFree = l.bufFree[:n-1]
	}
	if n := len(l.idsFree); n > 0 {
		b.msgIDs = l.idsFree[n-1]
		l.idsFree = l.idsFree[:n-1]
	}
	return b
}

// recycleLocked returns a flushed batch's backing arrays to the free
// lists. The batch struct itself is not reused: late waiters may still be
// reading err after done closes.
func (l *Ledger) recycleLocked(b *batch) {
	if cap(b.buf) > 0 && len(l.bufFree) < 4 {
		l.bufFree = append(l.bufFree, b.buf[:0])
	}
	if cap(b.msgIDs) > 0 && len(l.idsFree) < 4 {
		l.idsFree = append(l.idsFree, b.msgIDs[:0])
	}
	b.buf, b.msgIDs = nil, nil
}

func (l *Ledger) kickCommitter() {
	select {
	case l.kick <- struct{}{}:
	default:
	}
}

func (l *Ledger) commitLoop() {
	defer l.wg.Done()
	for {
		select {
		case <-l.kick:
		case <-l.stop:
			for l.flushOnce() {
			}
			return
		}
		for l.flushOnce() {
		}
	}
}

// flushOnce commits the currently staged batch, if any. It reports
// whether there was one (so the committer drains back-to-back batches
// without waiting for another kick).
func (l *Ledger) flushOnce() bool {
	l.mu.Lock()
	b := l.cur
	if b.recs == 0 && !b.rotate {
		l.mu.Unlock()
		return false
	}
	// Bounded linger: closing the previous batch's done channel woke its
	// cohort of appenders, who are re-staging right now — but goroutine
	// wake-up can be slower than a small fsync, and flushing before the
	// cohort lands degenerates the pipeline into near-singleton batches.
	// So when the previous batch proved contention (cohort > 1), give the
	// forming batch up to l.linger to reach that size again. Uncontended
	// appends (cohort <= 1) never wait.
	if l.linger > 0 && l.lastCohort > 1 && len(b.msgIDs) < l.lastCohort {
		deadline := time.Now().Add(l.linger)
		for len(b.msgIDs) < l.lastCohort {
			l.mu.Unlock()
			runtime.Gosched()
			l.mu.Lock()
			if time.Now().After(deadline) {
				break
			}
		}
	}
	l.lastCohort = len(b.msgIDs)
	l.cur = l.newBatchLocked()
	f := l.f
	seg := l.segs[len(l.segs)-1]
	hook := l.onCommit
	l.mu.Unlock()

	err := l.writeBatch(f, b)
	if err == nil && hook != nil && b.recs > 0 {
		// Replication hook: the batch is durable but its Append callers
		// have not woken yet (done closes below), so a publisher returning
		// from Append can rely on the batch having been mirrored already.
		// Only the committer touches commitSeq in group mode.
		l.commitSeq++
		hook(CommitBatch{Seq: l.commitSeq, Records: b.buf, MsgIDs: b.msgIDs})
	}

	l.mu.Lock()
	l.creditBatchLocked(b, seg)
	needRotate := err == nil && (b.rotate || seg.size >= l.segMax)
	if needRotate {
		if rerr := l.rotateLocked(); rerr != nil {
			err = rerr
		}
	}
	l.recycleLocked(b)
	l.mu.Unlock()

	b.err = err
	close(b.done)
	return true
}

// writeBatch puts one batch on disk: a single write, then a single fsync
// when Sync is on. No ledger lock is held — this is the window in which
// the next group forms.
func (l *Ledger) writeBatch(f *os.File, b *batch) error {
	if len(b.buf) == 0 {
		return nil // rotation-only batch
	}
	start := time.Now()
	var err error
	if _, err = f.Write(b.buf); err != nil {
		err = fmt.Errorf("ledger: appending: %w", err)
	} else {
		b.commitAt = time.Now().UnixNano()
		if l.sync {
			if serr := f.Sync(); serr != nil {
				err = fmt.Errorf("ledger: syncing: %w", serr)
			} else {
				b.syncAt = time.Now().UnixNano()
			}
			l.ctr.fsyncs.Inc()
		}
	}
	l.ctr.commits.Inc()
	l.ctr.commitNs.Observe(time.Since(start))
	l.ctr.groupSize.Observe(time.Duration(b.recs)) // count-valued, see DESIGN.md
	return err
}

// creditBatchLocked accounts a flushed batch to the segment it was
// written into: size growth plus the live count of its message records.
// A message already acked while its batch was in flight stays uncounted —
// its ack record trails in a later batch and replay nets the two out.
func (l *Ledger) creditBatchLocked(b *batch, seg *segment) {
	seg.size += int64(len(b.buf))
	for _, id := range b.msgIDs {
		if st, ok := l.pending[id]; ok && st.seg == 0 {
			st.seg = seg.seq
			seg.live++
		}
	}
}

// commitBatchLocked is the DisableGroupCommit path: flush the staged
// batch synchronously under l.mu — one write+fsync per record, the
// pre-group-commit behaviour kept as the A10 baseline.
func (l *Ledger) commitBatchLocked(b *batch) error {
	l.cur = l.newBatchLocked()
	err := l.writeBatch(l.f, b)
	if err == nil && l.onCommit != nil && b.recs > 0 {
		l.commitSeq++
		l.onCommit(CommitBatch{Seq: l.commitSeq, Records: b.buf, MsgIDs: b.msgIDs})
	}
	seg := l.segs[len(l.segs)-1]
	l.creditBatchLocked(b, seg)
	if err == nil && seg.size >= l.segMax {
		err = l.rotateLocked()
	}
	l.recycleLocked(b)
	b.err = err
	close(b.done)
	return err
}
