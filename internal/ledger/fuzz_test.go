package ledger

import "testing"

// FuzzParseRecord: arbitrary bytes never panic the replay parser.
func FuzzParseRecord(f *testing.F) {
	f.Add(encodeRecord(record{typ: recMessage, id: 7, subject: "a.b", payload: []byte("x")}))
	f.Add(encodeRecord(record{typ: recAck, id: 9}))
	f.Add([]byte{0, 0, 0, 4, 0, 0, 0, 0, 1, 2, 3, 4})
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, n, err := parseRecord(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d", n, len(data))
		}
		re := encodeRecord(rec)
		rec2, _, err := parseRecord(re)
		if err != nil || rec2.id != rec.id || rec2.subject != rec.subject {
			t.Fatalf("round trip: %+v vs %+v (%v)", rec, rec2, err)
		}
	})
}
