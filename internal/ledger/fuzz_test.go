package ledger

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzParseRecord: arbitrary bytes never panic the replay parser.
func FuzzParseRecord(f *testing.F) {
	f.Add(encodeRecord(record{typ: recMessage, id: 7, subject: "a.b", payload: []byte("x")}))
	f.Add(encodeRecord(record{typ: recAck, id: 9}))
	f.Add([]byte{0, 0, 0, 4, 0, 0, 0, 0, 1, 2, 3, 4})
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, n, err := parseRecord(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d", n, len(data))
		}
		re := encodeRecord(rec)
		rec2, _, err := parseRecord(re)
		if err != nil || rec2.id != rec.id || rec2.subject != rec.subject {
			t.Fatalf("round trip: %+v vs %+v (%v)", rec, rec2, err)
		}
	})
}

// FuzzSegmentedReplay: two arbitrary byte strings laid down as segment
// files never panic Open, and when Open accepts them the ledger stays
// usable (append, ack, reopen) — the segmented replay path must be as
// robust against garbage on disk as the record parser is.
func FuzzSegmentedReplay(f *testing.F) {
	var seg1, seg2 []byte
	seg1 = appendRecord(seg1, record{typ: recMessage, id: 0, subject: "a.b", payload: []byte("m0")})
	seg1 = appendRecord(seg1, record{typ: recMessage, id: 1, subject: "a.b", payload: []byte("m1")})
	seg2 = appendRecord(seg2, record{typ: recAck, id: 0})
	seg2 = appendRecord(seg2, record{typ: recMessage, id: 2, subject: "a.c", payload: []byte("m2")})
	f.Add(seg1, seg2)
	f.Add(seg1[:len(seg1)-3], []byte{})         // torn tail in the middle segment
	f.Add([]byte{}, seg2[:len(seg2)-1])         // torn tail in the newest segment
	f.Add([]byte{0, 0, 0, 4, 0, 0, 0, 0}, seg2) // bad crc up front
	f.Fuzz(func(t *testing.T, a, b []byte) {
		base := filepath.Join(t.TempDir(), "g.log")
		if err := os.WriteFile(segPath(base, 1), a, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(segPath(base, 2), b, 0o644); err != nil {
			t.Fatal(err)
		}
		l, err := Open(base, Options{SegmentBytes: 1 << 16})
		if err != nil {
			return // rejected as corrupt: fine, as long as it didn't panic
		}
		before := l.Len()
		id, err := l.Append("f.z", []byte("post"))
		if err != nil {
			t.Fatalf("append after replay: %v", err)
		}
		if err := l.Ack(id); err != nil {
			t.Fatalf("ack after replay: %v", err)
		}
		if err := l.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
		l2, err := Open(base, Options{SegmentBytes: 1 << 16})
		if err != nil {
			t.Fatalf("reopen after clean close: %v", err)
		}
		if l2.Len() != before {
			t.Fatalf("pending drifted across restart: %d -> %d", before, l2.Len())
		}
		_ = l2.Close()
	})
}
