//go:build !race

package ledger

const raceEnabled = false
