package ledger

import "fmt"

// Replication surface. The quorum tier (internal/qledger) mirrors each
// committed batch to peer replicas; this file is everything it needs from
// the ledger: a commit hook exporting the raw batch bytes, record-level
// codec access so frames can reuse the on-disk format (one CRC-protected
// encoding end to end), and AppendBatch, the replica-side write path that
// rides the same group-commit pipeline as local appends — so a replica's
// fsync budget is per mirrored batch, not per message.

// Rec is one parsed ledger record as exposed to replication layers: a
// message entry or (Ack true) an acknowledgement.
type Rec struct {
	ID      uint64
	Subject string
	Payload []byte
	Ack     bool
}

// AppendMessageRecord encodes a message record in the ledger's on-disk
// format onto dst. Replication frames carry record runs in exactly this
// encoding, so the replica validates and stores them with the same parser
// (and the same CRC) that replay uses.
func AppendMessageRecord(dst []byte, id uint64, subject string, payload []byte) []byte {
	return appendRecord(dst, record{typ: recMessage, id: id, subject: subject, payload: payload})
}

// AppendAckRecord encodes an acknowledgement record onto dst.
func AppendAckRecord(dst []byte, id uint64) []byte {
	return appendRecord(dst, record{typ: recAck, id: id})
}

// NextRecord parses one record from the front of data, returning it and
// the bytes consumed. Errors are ErrCorrupt-wrapped (a truncated record
// included: replication frames are never legitimately torn, unlike a
// crashed segment tail).
func NextRecord(data []byte) (Rec, int, error) {
	r, n, err := parseRecord(data)
	if err != nil {
		return Rec{}, 0, fmt.Errorf("%v: %w", err, ErrCorrupt)
	}
	return Rec{ID: r.id, Subject: r.subject, Payload: r.payload, Ack: r.typ == recAck}, n, nil
}

// CommitBatch describes one durably committed batch to the OnCommit hook.
type CommitBatch struct {
	// Seq numbers committed batches 1,2,3,... within this process. It is
	// not persisted: a restart starts over at 1 (and with a new origin
	// identity, so replication seq spaces never collide).
	Seq uint64
	// Records is the batch's raw record bytes, exactly as written to the
	// segment. Valid only during the hook call — the buffer is recycled.
	Records []byte
	// MsgIDs lists the ids of the message records in the batch (ack
	// records are not listed). Valid only during the hook call.
	MsgIDs []uint64
}

// SetOnCommit installs (or, with nil, removes) the commit hook: f runs
// after each non-empty batch is durably written — before any Append staged
// into it returns — so a caller observing Append's return can rely on the
// batch having been offered to the hook already. The hook runs on the
// committer goroutine (under the ledger lock in DisableGroupCommit mode):
// it must not call back into the ledger and must not retain cb's slices.
func (l *Ledger) SetOnCommit(f func(cb CommitBatch)) {
	l.mu.Lock()
	l.onCommit = f
	l.mu.Unlock()
}

// AppendBatch applies a run of records (the payload of a replication
// frame, validated here) to the ledger: message records join the pending
// set, ack records leave it, and the surviving records are staged into the
// current group-commit batch. It returns once the batch is committed —
// with Sync, once it is on disk. Records already applied (a retransmitted
// mirror frame) are skipped, so AppendBatch is idempotent.
func (l *Ledger) AppendBatch(records []byte) error {
	// Validate the whole run before staging anything: a frame from the
	// wire must not poison the log halfway.
	var recs []record
	for off := 0; off < len(records); {
		r, n, err := parseRecord(records[off:])
		if err != nil {
			return fmt.Errorf("ledger: batch record at %d: %v: %w", off, err, ErrCorrupt)
		}
		recs = append(recs, r)
		off += n
	}
	if len(recs) == 0 {
		return nil
	}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	b := l.cur
	staged := 0
	for _, r := range recs {
		switch r.typ {
		case recMessage:
			if _, dup := l.pending[r.id]; dup {
				continue // already applied: retransmitted frame
			}
			b.buf = appendRecord(b.buf, r)
			b.msgIDs = append(b.msgIDs, r.id)
			b.recs++
			staged++
			l.pending[r.id] = &entryState{e: Entry{ID: r.id, Subject: r.subject, Payload: r.payload}}
			l.ctr.appends.Inc()
		case recAck:
			st, ok := l.pending[r.id]
			if !ok {
				continue // already acked (or never seen): idempotent
			}
			delete(l.pending, r.id)
			if st.seg != 0 {
				if s := l.segBySeqLocked(st.seg); s != nil {
					s.live--
				}
			}
			b.buf = appendRecord(b.buf, r)
			b.recs++
			staged++
			l.ctr.acks.Inc()
		}
		if r.id >= l.nextID {
			l.nextID = r.id + 1
		}
	}
	l.ctr.pending.Set(int64(len(l.pending)))
	if staged == 0 {
		l.mu.Unlock()
		return nil // everything was a duplicate; nothing to commit
	}
	if !l.group {
		err := l.commitBatchLocked(b)
		l.mu.Unlock()
		return err
	}
	l.mu.Unlock()
	l.kickCommitter()
	<-b.done
	return b.err
}
