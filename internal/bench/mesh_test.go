package bench

import (
	"testing"

	"infobus/internal/netsim"
)

// TestMeshLocalityGate is the CI-scale A14 check: on a 50-segment ring with
// flow subscribers on only two segments, the mesh must confine the
// publication to the subscriber-bearing end of the ring. The flood baseline
// is not run here — its interest spread is paced by fixed relay ticks and
// takes minutes at test scale — the ≥5× comparison lives in ibbench -fig a14.
func TestMeshLocalityGate(t *testing.T) {
	if testing.Short() {
		t.Skip("mesh locality gate is seconds-long; skipped in -short")
	}
	netCfg := netsim.Config{Speedup: 2000}
	row, err := MeasureMeshLocality(netCfg, 50, 2, 12, true)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("mesh locality: %d/%d segments traversed, %d data frames",
		row.SegmentsTraversed, row.Segments, row.DataFrames)
	if row.SegmentsTraversed == 0 {
		t.Fatal("no data frames observed: flow never delivered")
	}
	// Publisher's segment plus the two subscriber segments, with one
	// segment of slack for the tree path.
	if row.SegmentsTraversed > 4 {
		t.Fatalf("mesh traversed %d segments, want <= 4 (publisher + 2 subscriber segments + slack)",
			row.SegmentsTraversed)
	}
}
