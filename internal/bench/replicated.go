package bench

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"infobus/internal/core"
	"infobus/internal/netsim"
	"infobus/internal/qledger"
	"infobus/internal/reliable"
	"infobus/internal/transport"
)

// A11: replicated guaranteed delivery. End-to-end PublishGuaranteed
// throughput and latency as the replication factor grows: each publish
// must commit to the local ledger (real fsync), mirror over the simulated
// network, and collect a majority of replica acknowledgements (each a
// real fsync on the replica's disk) before it returns. Factor 0 is the
// unmodified single-node path — the baseline the quorum tax is measured
// against. Like A10 this figure runs wall-clock: the fsync is the
// dominant cost and cannot be simulated faster; -speedup only accelerates
// the simulated network in between.

// ReplicatedRow is one (factor, policy) cell of the A11 table.
type ReplicatedRow struct {
	Factor       int
	Policy       string // replica fsync policy: "batch" or "lazy"
	MsgsPerSec   float64
	P50Ms        float64 // median PublishGuaranteed latency
	P99Ms        float64
	FsyncsPerMsg float64 // publisher + all replicas, per message
}

// MeasureReplicated runs one A11 cell: publishers goroutines drive
// PublishGuaranteed through a host with the given replication factor,
// factor replica hosts storing and acking every batch, and one consumer
// acknowledging delivery.
func MeasureReplicated(netCfg netsim.Config, factor, publishers, perPublisher int, policy string) (ReplicatedRow, error) {
	row := ReplicatedRow{Factor: factor, Policy: policy}
	dir, err := os.MkdirTemp("", "ibbench-qledger-*")
	if err != nil {
		return row, err
	}
	defer os.RemoveAll(dir)
	seg := transport.NewSimSegment(netCfg)
	defer seg.Close()

	// Batching on, as in the throughput figures: 64 concurrent publishers
	// of tiny records would otherwise exhaust the modelled receive buffers
	// and the run would measure packet loss, not replication.
	// The retransmit interval must sit above the congested round-trip
	// time: the consumer's guaranteed-delivery acks are unicast, and an
	// aggressive timer re-floods them exactly when the medium is busiest.
	relCfg := reliable.Config{
		Batching:           true,
		BatchDelay:         2 * time.Millisecond,
		NakInterval:        5 * time.Millisecond,
		GapTimeout:         2 * time.Second,
		RetransmitInterval: 100 * time.Millisecond,
		HeartbeatInterval:  25 * time.Millisecond,
	}
	// The guaranteed-delivery retrier gets the same treatment as the
	// quorum retry timer below: nothing is lost on this medium, so a
	// retry interval inside the start-burst ack round trip would only
	// republish messages the consumer already holds.
	pub, err := core.NewHost(seg, "pub", core.HostConfig{
		Reliable:      relCfg,
		LedgerPath:    filepath.Join(dir, "pub.ledger"),
		LedgerSync:    true,
		RetryInterval: 500 * time.Millisecond,
	})
	if err != nil {
		return row, err
	}
	defer pub.Close()
	var replicas []*core.Host
	if factor > 0 {
		// RetryInterval must clear the p99 quorum round trip: chunk
		// retransmission exists for crashed replicas, and on this lossless
		// simulated medium an interval inside the congested RTT re-floods
		// every in-flight chunk precisely when the replicas are behind,
		// which sustains the backlog it is reacting to.
		if _, err := qledger.Attach(pub, qledger.Config{
			Factor:        factor,
			AckTimeout:    10 * time.Second,
			RetryInterval: 500 * time.Millisecond,
			BeatInterval:  50 * time.Millisecond,
		}); err != nil {
			return row, err
		}
		for i := 0; i < factor; i++ {
			r, err := core.NewHost(seg, fmt.Sprintf("r%d", i), core.HostConfig{Reliable: relCfg})
			if err != nil {
				return row, err
			}
			defer r.Close()
			// GatherDelay matches the reliable layer's BatchDelay: one
			// replica fsync then covers the chunk cohort of a whole
			// publisher wave instead of one fsync per chunk.
			if _, err := qledger.Attach(r, qledger.Config{
				Dir:             filepath.Join(dir, fmt.Sprintf("r%d", i)),
				FsyncPolicy:     policy,
				GatherDelay:     2 * time.Millisecond,
				DisableRecovery: true, // steady-state cell: no coordinator churn
				BeatInterval:    50 * time.Millisecond,
			}); err != nil {
				return row, err
			}
			replicas = append(replicas, r)
		}
	}
	cons, err := core.NewHost(seg, "cons", core.HostConfig{Reliable: relCfg})
	if err != nil {
		return row, err
	}
	defer cons.Close()
	cbus, err := cons.NewBus("consumer")
	if err != nil {
		return row, err
	}
	sub, err := cbus.Subscribe("bench.repl")
	if err != nil {
		return row, err
	}
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-sub.C:
			case <-stop:
				return
			}
		}
	}()
	defer close(stop)
	time.Sleep(50 * time.Millisecond) // interest propagation

	pbus, err := pub.NewBus("producer")
	if err != nil {
		return row, err
	}
	payload := string(make([]byte, 256))
	total := publishers * perPublisher
	lats := make([]time.Duration, total)
	errs := make(chan error, publishers)
	startC := make(chan struct{})
	done := make(chan struct{}, publishers)
	for p := 0; p < publishers; p++ {
		go func(p int) {
			<-startC
			for i := 0; i < perPublisher; i++ {
				t0 := time.Now()
				if _, err := pbus.PublishGuaranteed("bench.repl", payload); err != nil {
					errs <- err
					return
				}
				lats[p*perPublisher+i] = time.Since(t0)
			}
			done <- struct{}{}
		}(p)
	}
	start := time.Now()
	close(startC)
	for finished := 0; finished < publishers; finished++ {
		select {
		case err := <-errs:
			return row, err
		case <-done:
		}
	}
	elapsed := time.Since(start)

	fsyncs := pub.Metrics().Counter("ledger.fsyncs").Load()
	for _, r := range replicas {
		fsyncs += r.Metrics().Counter("ledger.fsyncs").Load()
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	row.MsgsPerSec = float64(total) / elapsed.Seconds()
	row.P50Ms = float64(lats[total/2]) / 1e6
	row.P99Ms = float64(lats[total*99/100]) / 1e6
	row.FsyncsPerMsg = float64(fsyncs) / float64(total)
	return row, nil
}

// FigureA11 sweeps replication factors (batch-fsync replicas) plus a
// factor-2 lazy row isolating the replica fsync share of the quorum tax.
func FigureA11(netCfg netsim.Config, publishers, perPublisher int) ([]ReplicatedRow, error) {
	if publishers <= 0 {
		// Group commit amortizes fsyncs across concurrent publishers (A10);
		// the quorum tax is only meaningful at a concurrency where batches
		// actually form on both the publisher and the replicas. Throughput
		// saturates near 32 concurrent publishers — beyond that added
		// concurrency only inflates queueing latency.
		publishers = 32
	}
	if perPublisher <= 0 {
		perPublisher = 60
	}
	var rows []ReplicatedRow
	for _, factor := range []int{0, 1, 2} {
		row, err := MeasureReplicated(netCfg, factor, publishers, perPublisher, "batch")
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	lazy, err := MeasureReplicated(netCfg, 2, publishers, perPublisher, "lazy")
	if err != nil {
		return nil, err
	}
	return append(rows, lazy), nil
}

// PrintFigureA11 renders the replication table with each row's cost
// relative to the factor-0 baseline.
func PrintFigureA11(w io.Writer, rows []ReplicatedRow) {
	fmt.Fprintln(w, "A11: replicated guaranteed delivery (quorum ledger tier, 256 B records,")
	fmt.Fprintln(w, "     real disks + simulated network; factor 0 is the single-node path)")
	fmt.Fprintf(w, "%7s %7s %10s %9s %9s %11s %9s\n",
		"factor", "policy", "msgs/s", "p50", "p99", "fsyncs/msg", "vs f0")
	var base float64
	for _, r := range rows {
		rel := "-"
		if r.Factor == 0 {
			base = r.MsgsPerSec
		} else if base > 0 {
			rel = fmt.Sprintf("%.2fx", base/r.MsgsPerSec)
		}
		fmt.Fprintf(w, "%7d %7s %10.0f %7.2fms %7.2fms %11.3f %9s\n",
			r.Factor, r.Policy, r.MsgsPerSec, r.P50Ms, r.P99Ms, r.FsyncsPerMsg, rel)
	}
}
