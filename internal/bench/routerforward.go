package bench

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"infobus/internal/busproto"
	"infobus/internal/reliable"
	"infobus/internal/router"
	"infobus/internal/subject"
	"infobus/internal/transport"
)

// A15: the router's zero-copy data plane. Unlike the netsim figures, A15
// is a CPU measurement: the question is how many publications per second
// the forwarding engine itself can move — peek, interest match, and
// re-publish onto each egress reliable stream — not how a modelled medium
// paces them. The harness builds a production Router bridging four
// in-process "pipe" segments, propagates interest for the flow over the
// wire exactly as daemons would (one subscriber per egress advertises
// "bench.>", then detaches), and then drives publications through the
// engine with Router.Inject. Egress Publish runs the full reliable send
// path — window copy, retransmit retention, frame encode — into a segment
// with no remaining listeners, so the engine's own cost dominates and the
// slow/fast comparison is not diluted by consumer-side protocol work.
// The slow mode (DisableFastPath) decodes and re-encodes per egress; the
// fast mode copies the frame once and bumps the hops byte.

// RouterForwardRow is one (mode, payload size) point in the A15 table.
type RouterForwardRow struct {
	Mode         string // "slow" (decode/re-encode) or "fast" (zero-copy)
	PayloadBytes int
	Msgs         int // publications injected at the ingress
	Egresses     int // subscriber-bearing segments fanned out to
	Elapsed      time.Duration
	MsgsPerSec   float64 // ingress publications through the engine per second
	FastShare    float64 // fraction of forwards taken by the fast path
}

// pipeSegment is the in-process transport: lossless, per-destination FIFO,
// bounded buffering (a full receiver exerts backpressure instead of
// dropping — loss would put the reliable protocol's NAK machinery, not the
// forwarding engine, under test).
type pipeSegment struct {
	mu  sync.Mutex
	eps map[string]*pipeEndpoint
	n   int
}

type pipeEndpoint struct {
	seg    *pipeSegment
	addr   string
	recv   chan transport.Datagram
	closed atomic.Bool
	// scratch is Broadcast's destination snapshot, reused across calls;
	// safe because a Conn serializes sends on its endpoint.
	scratch []*pipeEndpoint
}

func newPipeSegment() *pipeSegment {
	return &pipeSegment{eps: make(map[string]*pipeEndpoint)}
}

func (s *pipeSegment) NewEndpoint(name string) (transport.Endpoint, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n++
	ep := &pipeEndpoint{
		seg:  s,
		addr: fmt.Sprintf("pipe:%d:%s", s.n, name),
		recv: make(chan transport.Datagram, 4096),
	}
	s.eps[ep.addr] = ep
	return ep, nil
}

func (s *pipeSegment) Close() error {
	s.mu.Lock()
	eps := make([]*pipeEndpoint, 0, len(s.eps))
	for _, ep := range s.eps {
		eps = append(eps, ep)
	}
	s.mu.Unlock()
	for _, ep := range eps {
		_ = ep.Close()
	}
	return nil
}

func (e *pipeEndpoint) Addr() string { return e.addr }

func (e *pipeEndpoint) deliver(from string, payload []byte) {
	if e.closed.Load() {
		return
	}
	// The receiver owns its datagram (transport contract), so each
	// destination gets its own copy — the same per-destination memcpy a
	// kernel socket would perform.
	dg := transport.Datagram{From: from, Payload: append([]byte(nil), payload...)}
	defer func() { recover() }() // send on closed channel during shutdown
	e.recv <- dg
}

func (e *pipeEndpoint) Send(addr string, payload []byte) error {
	e.seg.mu.Lock()
	dst, ok := e.seg.eps[addr]
	e.seg.mu.Unlock()
	if !ok {
		return transport.ErrBadAddr
	}
	dst.deliver(e.addr, payload)
	return nil
}

func (e *pipeEndpoint) Broadcast(payload []byte) error {
	e.seg.mu.Lock()
	dsts := e.scratch[:0]
	for _, dst := range e.seg.eps {
		if dst != e {
			dsts = append(dsts, dst)
		}
	}
	e.scratch = dsts
	e.seg.mu.Unlock()
	for _, dst := range dsts {
		dst.deliver(e.addr, payload)
	}
	return nil
}

func (e *pipeEndpoint) Recv() <-chan transport.Datagram { return e.recv }

func (e *pipeEndpoint) Close() error {
	if e.closed.CompareAndSwap(false, true) {
		e.seg.mu.Lock()
		delete(e.seg.eps, e.addr)
		e.seg.mu.Unlock()
		close(e.recv)
	}
	return nil
}

// seedInterest attaches a short-lived subscriber conn to seg, advertises
// the flow patterns over the wire (so the router's interest table is built
// by the production path: reliable stream, join grace, recordInterest),
// waits until the router wants the flow on that segment, and detaches.
func seedInterest(rt *router.Router, seg *pipeSegment, segName string, relCfg reliable.Config, flow subject.Subject) error {
	ep, err := seg.NewEndpoint("sub-" + segName)
	if err != nil {
		return err
	}
	conn := reliable.New(ep, relCfg)
	defer conn.Close()
	go func() {
		for range conn.Recv() {
		}
	}()
	ad := busproto.Encode(busproto.Envelope{
		Kind: busproto.KindInterest, Patterns: []string{"bench.>"},
	})
	deadline := time.Now().Add(15 * time.Second)
	for !rt.WantsOn(segName, flow) {
		if time.Now().After(deadline) {
			return fmt.Errorf("bench: interest never propagated to %s", segName)
		}
		if err := conn.Publish(ad); err != nil {
			return err
		}
		if err := conn.Flush(); err != nil {
			return err
		}
		time.Sleep(5 * time.Millisecond)
	}
	return nil
}

// MeasureRouterForward runs one A15 mode: build the rig, seed interest
// over the wire, then time msgs publications through the forwarding engine
// to every egress.
func MeasureRouterForward(egresses, payloadBytes, msgs int, disableFast bool) (RouterForwardRow, error) {
	mode := "fast"
	if disableFast {
		mode = "slow"
	}
	row := RouterForwardRow{
		Mode: mode, PayloadBytes: payloadBytes, Msgs: msgs, Egresses: egresses,
	}
	// Lossless FIFO pipes never NAK or gap-skip, so the protocol timers
	// only pace interest propagation (join grace, housekeeping ticks).
	relCfg := reliable.Config{
		NakInterval:        20 * time.Millisecond,
		GapTimeout:         5 * time.Second,
		RetransmitInterval: 50 * time.Millisecond,
		HeartbeatInterval:  time.Second,
		JoinGrace:          2 * time.Millisecond,
	}
	segs := make([]*pipeSegment, egresses+1)
	atts := make([]router.Attachment, egresses+1)
	names := make([]string, egresses+1)
	for i := range segs {
		segs[i] = newPipeSegment()
		names[i] = "ingress"
		if i > 0 {
			names[i] = fmt.Sprintf("egress%d", i)
		}
		atts[i] = router.Attachment{Segment: segs[i], Name: names[i]}
	}
	rt, err := router.New(router.Options{
		Name:            "a15",
		Reliable:        relCfg,
		InterestTTL:     5 * time.Minute,
		RelayInterval:   time.Second,
		DisableFastPath: disableFast,
	}, atts...)
	if err != nil {
		return row, err
	}
	defer rt.Close()
	defer func() {
		for _, s := range segs {
			_ = s.Close()
		}
	}()

	flow := subject.MustParse("bench.forward.flow")
	for i := 1; i <= egresses; i++ {
		if err := seedInterest(rt, segs[i], names[i], relCfg, flow); err != nil {
			return row, err
		}
	}

	frame := busproto.Encode(busproto.Envelope{
		Kind: busproto.KindPublish, Subject: flow.String(),
		Payload: make([]byte, payloadBytes),
	})
	before := rt.Stats()
	const warm = 2000
	for i := 0; i < warm; i++ {
		if err := rt.Inject("ingress", "flowpub", frame); err != nil {
			return row, err
		}
	}
	if got := rt.Stats().Forwarded - before.Forwarded; got != uint64(warm*egresses) {
		return row, fmt.Errorf("bench: warmup forwarded %d, want %d", got, warm*egresses)
	}

	// Best of a few repetitions: the measurement is pure CPU, so scheduler
	// preemption and GC pauses only ever slow a run down — the fastest
	// repetition is the engine's true rate (same reasoning as the alloc
	// budgets' minimum-over-attempts).
	const reps = 3
	for rep := 0; rep < reps; rep++ {
		before = rt.Stats()
		t0 := time.Now()
		for i := 0; i < msgs; i++ {
			if err := rt.Inject("ingress", "flowpub", frame); err != nil {
				return row, err
			}
		}
		elapsed := time.Since(t0)
		st := rt.Stats()
		if got := st.Forwarded - before.Forwarded; got != uint64(msgs*egresses) {
			return row, fmt.Errorf("bench: forwarded %d, want %d", got, msgs*egresses)
		}
		if rep == 0 || elapsed < row.Elapsed {
			row.Elapsed = elapsed
			row.MsgsPerSec = float64(msgs) / elapsed.Seconds()
			row.FastShare = float64(st.FastForwarded-before.FastForwarded) /
				float64(st.Forwarded-before.Forwarded)
		}
	}
	return row, nil
}

// FigureA15 measures the decode/re-encode baseline and the zero-copy fast
// path across payload sizes on the same 4-segment fan-out.
func FigureA15(sizes []int, msgs int) ([]RouterForwardRow, error) {
	if len(sizes) == 0 {
		sizes = []int{64, 512, 4096}
	}
	if msgs <= 0 {
		msgs = 20000
	}
	const egresses = 3
	var rows []RouterForwardRow
	for _, size := range sizes {
		for _, disableFast := range []bool{true, false} {
			row, err := MeasureRouterForward(egresses, size, msgs, disableFast)
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// PrintFigureA15 renders the forwarding-throughput table with the fast
// path's speedup over the decode/re-encode baseline at each payload size.
func PrintFigureA15(w io.Writer, rows []RouterForwardRow) {
	fmt.Fprintln(w, "A15: zero-copy router data plane (4-segment router, ingress -> 3 subscriber")
	fmt.Fprintln(w, "     egresses; engine-driven, CPU-bound — wall time, not modelled network time)")
	fmt.Fprintf(w, "%6s %8s %8s %10s %12s %11s %9s\n",
		"mode", "payload", "msgs", "elapsed", "msgs/s", "fast-share", "vs slow")
	slowBySize := make(map[int]float64)
	for _, r := range rows {
		rel := "-"
		if r.Mode == "slow" {
			slowBySize[r.PayloadBytes] = r.MsgsPerSec
		} else if base := slowBySize[r.PayloadBytes]; base > 0 {
			rel = fmt.Sprintf("%.2fx", r.MsgsPerSec/base)
		}
		fmt.Fprintf(w, "%6s %8d %8d %10s %12.0f %10.0f%% %9s\n",
			r.Mode, r.PayloadBytes, r.Msgs, r.Elapsed.Round(time.Millisecond),
			r.MsgsPerSec, r.FastShare*100, rel)
	}
}
