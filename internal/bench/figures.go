package bench

import (
	"fmt"
	"io"
)

// PaperSizes are the message sizes swept in the appendix figures (bytes),
// 64 B up to 10 KB.
var PaperSizes = []int{64, 128, 256, 512, 1024, 2048, 4096, 5120, 8192, 10240}

// Figure5 sweeps message sizes for the latency experiment.
func Figure5(cfg Config, sizes []int, perSize int) ([]LatencyResult, error) {
	out := make([]LatencyResult, 0, len(sizes))
	for _, size := range sizes {
		r, err := MeasureLatency(cfg, size, perSize)
		if err != nil {
			return nil, fmt.Errorf("bench: figure 5 size %d: %w", size, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// PrintFigure5 renders the latency table in the shape of Figure 5.
func PrintFigure5(w io.Writer, rows []LatencyResult) {
	fmt.Fprintln(w, "FIGURE 5. Latency vs Msg Size — publish/subscribe, batching off")
	fmt.Fprintln(w, "  1 publisher, 14 consumers, 15 nodes, 10 Mb/s Ethernet (simulated)")
	fmt.Fprintf(w, "%10s %10s %12s %12s %14s\n", "size(B)", "samples", "mean(ms)", "std(ms)", "99%CI±(ms)")
	for _, r := range rows {
		fmt.Fprintf(w, "%10d %10d %12.3f %12.3f %14.3f\n",
			r.MsgSize, r.Samples, r.MeanMs, r.StdMs, r.CI99Ms)
	}
}

// Figure67 sweeps message sizes for the throughput experiment; the same
// data yields Figure 6 (msgs/sec) and Figure 7 (bytes/sec).
func Figure67(cfg Config, sizes []int, nMsgs int) ([]ThroughputResult, error) {
	out := make([]ThroughputResult, 0, len(sizes))
	for _, size := range sizes {
		r, err := MeasureThroughput(cfg, size, nMsgs, 1)
		if err != nil {
			return nil, fmt.Errorf("bench: figure 6/7 size %d: %w", size, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// PrintFigure6 renders msgs/sec vs size.
func PrintFigure6(w io.Writer, rows []ThroughputResult) {
	fmt.Fprintln(w, "FIGURE 6. Throughput (Msgs/Sec) vs Msg Size — batching on")
	fmt.Fprintf(w, "%10s %10s %14s\n", "size(B)", "msgs", "msgs/sec")
	for _, r := range rows {
		fmt.Fprintf(w, "%10d %10d %14.1f\n", r.MsgSize, r.Messages, r.MsgsPerSec)
	}
}

// PrintFigure7 renders bytes/sec vs size (same data as Figure 6).
func PrintFigure7(w io.Writer, rows []ThroughputResult) {
	fmt.Fprintln(w, "FIGURE 7. Throughput (Bytes/Sec) vs Msg Size — batching on")
	fmt.Fprintf(w, "%10s %14s %18s\n", "size(B)", "bytes/sec", "cumulative(x14)")
	for _, r := range rows {
		fmt.Fprintf(w, "%10d %14.0f %18.0f\n", r.MsgSize, r.BytesPerSec, r.CumulativeBytesPerSec)
	}
}

// Figure8 repeats the throughput sweep with the publisher cycling over
// many distinct subjects and all consumers subscribed to all of them. The
// appendix used 10 000 subjects; the result must track the single-subject
// curve ("the number of subjects has an insignificant influence").
func Figure8(cfg Config, sizes []int, nMsgs int, subjectCounts []int) (map[int][]ThroughputResult, error) {
	out := make(map[int][]ThroughputResult, len(subjectCounts))
	for _, nSubj := range subjectCounts {
		rows := make([]ThroughputResult, 0, len(sizes))
		for _, size := range sizes {
			r, err := MeasureThroughput(cfg, size, nMsgs, nSubj)
			if err != nil {
				return nil, fmt.Errorf("bench: figure 8 subjects %d size %d: %w", nSubj, size, err)
			}
			rows = append(rows, r)
		}
		out[nSubj] = rows
	}
	return out, nil
}

// PrintFigure8 renders the subject-count comparison.
func PrintFigure8(w io.Writer, results map[int][]ThroughputResult, subjectCounts []int) {
	fmt.Fprintln(w, "FIGURE 8. Throughput (Bytes/Sec) — effect of the number of subjects")
	fmt.Fprintf(w, "%10s", "size(B)")
	for _, n := range subjectCounts {
		fmt.Fprintf(w, " %14s", fmt.Sprintf("%d subj", n))
	}
	fmt.Fprintln(w)
	if len(subjectCounts) == 0 {
		return
	}
	rows := len(results[subjectCounts[0]])
	for i := 0; i < rows; i++ {
		fmt.Fprintf(w, "%10d", results[subjectCounts[0]][i].MsgSize)
		for _, n := range subjectCounts {
			fmt.Fprintf(w, " %14.0f", results[n][i].BytesPerSec)
		}
		fmt.Fprintln(w)
	}
}

// InvariantLatencyVsConsumers measures the appendix claim "the latency is
// independent of the number of consumers".
func InvariantLatencyVsConsumers(cfg Config, consumerCounts []int, msgSize, perCount int) ([]LatencyResult, []int, error) {
	out := make([]LatencyResult, 0, len(consumerCounts))
	for _, n := range consumerCounts {
		c := cfg
		c.Consumers = n
		r, err := MeasureLatency(c, msgSize, perCount)
		if err != nil {
			return nil, nil, fmt.Errorf("bench: invariant I1 consumers %d: %w", n, err)
		}
		out = append(out, r)
	}
	return out, consumerCounts, nil
}

// PrintInvariantI1 renders latency vs consumer count.
func PrintInvariantI1(w io.Writer, rows []LatencyResult, counts []int) {
	fmt.Fprintln(w, "INVARIANT I1. Latency vs number of consumers (should be flat)")
	fmt.Fprintf(w, "%12s %12s %14s\n", "consumers", "mean(ms)", "99%CI±(ms)")
	for i, r := range rows {
		fmt.Fprintf(w, "%12d %12.3f %14.3f\n", counts[i], r.MeanMs, r.CI99Ms)
	}
}

// InvariantThroughputVsSubscribers measures the appendix claim "the
// publication rate is independent of the number of subscribers. Therefore,
// the cumulative throughput over all subscribers is proportional to the
// number of subscribers."
func InvariantThroughputVsSubscribers(cfg Config, consumerCounts []int, msgSize, nMsgs int) ([]ThroughputResult, error) {
	out := make([]ThroughputResult, 0, len(consumerCounts))
	for _, n := range consumerCounts {
		c := cfg
		c.Consumers = n
		r, err := MeasureThroughput(c, msgSize, nMsgs, 1)
		if err != nil {
			return nil, fmt.Errorf("bench: invariant I2 consumers %d: %w", n, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// PrintInvariantI2 renders per-subscriber and cumulative rates vs
// subscriber count.
func PrintInvariantI2(w io.Writer, rows []ThroughputResult) {
	fmt.Fprintln(w, "INVARIANT I2. Publication rate vs number of subscribers")
	fmt.Fprintf(w, "%12s %14s %18s\n", "subscribers", "msgs/sec", "cumulative B/s")
	for _, r := range rows {
		fmt.Fprintf(w, "%12d %14.1f %18.0f\n", r.Consumers, r.MsgsPerSec, r.CumulativeBytesPerSec)
	}
}
