package bench

import (
	"strings"
	"testing"
	"time"
)

// quickConfig runs the harness fast enough for unit tests while keeping
// the modelled network identical.
func quickConfig(consumers int) Config {
	cfg := DefaultConfig()
	cfg.Consumers = consumers
	cfg.Net.Speedup = 10
	cfg.Reliable.NakInterval = 2 * time.Millisecond
	cfg.Reliable.RetransmitInterval = 3 * time.Millisecond
	cfg.Reliable.HeartbeatInterval = 5 * time.Millisecond
	cfg.Reliable.BatchDelay = time.Millisecond
	return cfg
}

func TestMeasureLatencySanity(t *testing.T) {
	cfg := quickConfig(3)
	small, err := MeasureLatency(cfg, 64, 10)
	if err != nil {
		t.Fatal(err)
	}
	if small.Samples != 3*10 {
		t.Errorf("samples = %d, want 30", small.Samples)
	}
	if small.MeanMs <= 0 {
		t.Errorf("mean latency = %v, want positive", small.MeanMs)
	}
	big, err := MeasureLatency(cfg, 8192, 10)
	if err != nil {
		t.Fatal(err)
	}
	// The Figure 5 shape: bigger messages take longer on the wire.
	if big.MeanMs <= small.MeanMs {
		t.Errorf("latency not increasing with size: 64B=%.3fms 8KB=%.3fms", small.MeanMs, big.MeanMs)
	}
	// A 8KB message on 10 Mb/s occupies ~6.6 modelled ms; latency must be
	// at least that.
	if big.MeanMs < 5 {
		t.Errorf("8KB latency = %.3fms, implausibly small for 10 Mb/s", big.MeanMs)
	}
}

func TestMeasureThroughputSanity(t *testing.T) {
	cfg := quickConfig(3)
	small, err := MeasureThroughput(cfg, 64, 150, 1)
	if err != nil {
		t.Fatal(err)
	}
	big, err := MeasureThroughput(cfg, 4096, 60, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Figure 6 shape: msgs/sec falls as size grows.
	if big.MsgsPerSec >= small.MsgsPerSec {
		t.Errorf("msgs/sec not decreasing: 64B=%.0f 4KB=%.0f", small.MsgsPerSec, big.MsgsPerSec)
	}
	// Figure 7 shape: bytes/sec rises as size grows.
	if big.BytesPerSec <= small.BytesPerSec {
		t.Errorf("bytes/sec not increasing: 64B=%.0f 4KB=%.0f", small.BytesPerSec, big.BytesPerSec)
	}
	// The device ceiling: bytes/sec cannot exceed 10 Mb/s = 1.25 MB/s.
	if big.BytesPerSec > 1.25e6*1.1 {
		t.Errorf("bytes/sec = %.0f exceeds the modelled device bandwidth", big.BytesPerSec)
	}
	if small.CumulativeBytesPerSec != small.BytesPerSec*3 {
		t.Errorf("cumulative = %.0f, want 3x per-subscriber", small.CumulativeBytesPerSec)
	}
}

func TestMeasureThroughputManySubjects(t *testing.T) {
	cfg := quickConfig(2)
	one, err := MeasureThroughput(cfg, 512, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	many, err := MeasureThroughput(cfg, 512, 100, 50)
	if err != nil {
		t.Fatal(err)
	}
	// Figure 8: subject count must not collapse throughput. Allow wide
	// tolerance for test speed; the real check is the figure run.
	if many.BytesPerSec < one.BytesPerSec/3 {
		t.Errorf("50 subjects collapsed throughput: %v vs %v", many.BytesPerSec, one.BytesPerSec)
	}
	if many.Subjects != 50 {
		t.Errorf("Subjects = %d", many.Subjects)
	}
}

func TestFigurePrinters(t *testing.T) {
	cfg := quickConfig(2)
	lat, err := Figure5(cfg, []int{64, 1024}, 5)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	PrintFigure5(&b, lat)
	if !strings.Contains(b.String(), "FIGURE 5") || !strings.Contains(b.String(), "1024") {
		t.Errorf("figure 5 output:\n%s", b.String())
	}

	thr, err := Figure67(cfg, []int{64, 1024}, 60)
	if err != nil {
		t.Fatal(err)
	}
	b.Reset()
	PrintFigure6(&b, thr)
	PrintFigure7(&b, thr)
	out := b.String()
	if !strings.Contains(out, "FIGURE 6") || !strings.Contains(out, "FIGURE 7") {
		t.Errorf("figure 6/7 output:\n%s", out)
	}

	f8, err := Figure8(cfg, []int{256}, 60, []int{1, 20})
	if err != nil {
		t.Fatal(err)
	}
	b.Reset()
	PrintFigure8(&b, f8, []int{1, 20})
	if !strings.Contains(b.String(), "20 subj") {
		t.Errorf("figure 8 output:\n%s", b.String())
	}
}

func TestInvariants(t *testing.T) {
	cfg := quickConfig(0)
	lat, counts, err := InvariantLatencyVsConsumers(cfg, []int{1, 4}, 512, 8)
	if err != nil {
		t.Fatal(err)
	}
	// I1: latency does not explode with consumer count. The margin is
	// deliberately loose: at Speedup 500 every microsecond of host noise
	// (race detector included) is amplified 500x into modelled time; the
	// strict flatness check happens at figure scale (cmd/ibbench,
	// Speedup 10).
	if lat[1].MeanMs > lat[0].MeanMs*20+10 {
		t.Errorf("latency grew with consumers: %v", lat)
	}
	var b strings.Builder
	PrintInvariantI1(&b, lat, counts)
	if !strings.Contains(b.String(), "INVARIANT I1") {
		t.Error("I1 printer")
	}

	thr, err := InvariantThroughputVsSubscribers(cfg, []int{1, 4}, 512, 80)
	if err != nil {
		t.Fatal(err)
	}
	// I2: cumulative throughput grows with subscribers.
	if thr[1].CumulativeBytesPerSec <= thr[0].CumulativeBytesPerSec {
		t.Errorf("cumulative throughput did not grow: %v", thr)
	}
	b.Reset()
	PrintInvariantI2(&b, thr)
	if !strings.Contains(b.String(), "INVARIANT I2") {
		t.Error("I2 printer")
	}
}

func TestStatsHelpers(t *testing.T) {
	mean, std := meanStd([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if mean != 5 {
		t.Errorf("mean = %v", mean)
	}
	if std < 2.13 || std > 2.15 { // sample std of that classic set
		t.Errorf("std = %v", std)
	}
	if m, s := meanStd(nil); m != 0 || s != 0 {
		t.Errorf("empty meanStd = %v, %v", m, s)
	}
	if ci99(2.14, 1) != 0 {
		t.Error("ci99 with n=1 should be 0")
	}
	if ci := ci99(2.14, 8); ci < 1.9 || ci > 2.0 {
		t.Errorf("ci99 = %v", ci)
	}
}

func TestPayloadStamp(t *testing.T) {
	now := time.Now()
	p := payload(64, now)
	if len(p) != 64 {
		t.Fatalf("len = %d", len(p))
	}
	got, ok := stampOf(p)
	if !ok || !got.Equal(time.Unix(0, now.UnixNano())) {
		t.Errorf("stamp = %v, %v", got, ok)
	}
	if _, ok := stampOf("not bytes"); ok {
		t.Error("stampOf non-bytes")
	}
	if p := payload(2, now); len(p) != 8 {
		t.Errorf("minimum payload = %d", len(p))
	}
}

func TestMeasureDictCompressionSanity(t *testing.T) {
	rows, err := MeasureDictCompression(200)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(DictShapes()) {
		t.Fatalf("rows = %d, want %d", len(rows), len(DictShapes()))
	}
	for _, r := range rows {
		// Steady state must beat the self-describing format; first contact
		// carries the defs plus fingerprints, so it may exceed legacy by a
		// few bytes but never by much.
		if r.SteadyBytes >= r.LegacyBytes {
			t.Errorf("%s: steady %dB not smaller than legacy %dB", r.Shape, r.SteadyBytes, r.LegacyBytes)
		}
		if r.ReductionPct <= 0 {
			t.Errorf("%s: reduction %.1f%%, want positive", r.Shape, r.ReductionPct)
		}
		if r.LegacyEncNs <= 0 || r.SteadyEncNs <= 0 || r.LegacyDecNs <= 0 || r.SteadyDecNs <= 0 {
			t.Errorf("%s: non-positive timing in %+v", r.Shape, r)
		}
	}
	// The small-message extreme is where the dictionary matters: the
	// acceptance floor of the change is 40% on the ~64-byte shape.
	if rows[0].ReductionPct < 40 {
		t.Errorf("%s: reduction %.1f%%, want >= 40%%", rows[0].Shape, rows[0].ReductionPct)
	}
}

func TestMeasureDictThroughputSanity(t *testing.T) {
	cfg := quickConfig(3)
	row, err := MeasureDictThroughput(cfg, DictShapes()[0], 120)
	if err != nil {
		t.Fatal(err)
	}
	if row.MsgsPerSecOff <= 0 || row.MsgsPerSecOn <= 0 {
		t.Fatalf("non-positive rates: %+v", row)
	}
	if row.WireBytesOn >= row.WireBytesOff {
		t.Errorf("compact steady payload %dB not smaller than legacy %dB", row.WireBytesOn, row.WireBytesOff)
	}
}
