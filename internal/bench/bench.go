// Package bench is the measurement harness that regenerates the paper's
// performance appendix (Figures 5-8) and its two stated invariants, plus
// the ablation experiments DESIGN.md calls out. It is shared by the
// repository-root benchmarks (bench_test.go) and the cmd/ibbench binary.
//
// The modelled testbed matches the appendix: 15 nodes on a lightly loaded
// 10 Mb/s Ethernet, one publisher, fourteen consumers, reliable (not
// guaranteed) delivery. The network is simulated (internal/netsim) in
// scaled real time: all reported figures are converted back to modelled
// network time, so a Speedup of 20 changes how long the benchmark takes to
// run, not the numbers it reports (until host CPU becomes the bottleneck;
// keep Speedup moderate for publication-quality numbers).
package bench

import (
	"encoding/binary"
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"infobus/internal/core"
	"infobus/internal/netsim"
	"infobus/internal/reliable"
	"infobus/internal/transport"
)

// Config describes the measured topology.
type Config struct {
	// Consumers is the number of subscriber hosts (the paper used 14).
	Consumers int
	// Net is the simulated network; zero value = the paper's Ethernet at
	// Speedup 20.
	Net netsim.Config
	// Reliable tunes the protocol stack; Batching is overridden per
	// experiment (off for latency, on for throughput), matching the
	// appendix's use of the batch parameter.
	Reliable reliable.Config
	// Telemetry is applied to every host in the topology
	// (BenchmarkTelemetryOverhead measures its cost; the figure
	// experiments leave it zero).
	Telemetry core.TelemetryConfig
	// Compact enables type-dictionary compression on the publisher host
	// (experiment A9; the figure experiments leave it off).
	Compact bool
}

// DefaultConfig is the paper's topology.
func DefaultConfig() Config {
	net := netsim.DefaultConfig()
	net.Speedup = 20
	return Config{
		Consumers: 14,
		Net:       net,
		Reliable: reliable.Config{
			NakInterval:        5 * time.Millisecond,
			GapTimeout:         2 * time.Second,
			RetransmitInterval: 10 * time.Millisecond,
			HeartbeatInterval:  25 * time.Millisecond,
			BatchDelay:         2 * time.Millisecond,
		},
	}
}

// topology is a running publisher + N consumers on one simulated segment.
type topology struct {
	seg    *transport.SimSegment
	pubBus *core.Bus
	subs   []*core.Subscription
	hosts  []*core.Host
}

func buildTopology(cfg Config, patterns []string) (*topology, error) {
	if cfg.Consumers <= 0 {
		cfg.Consumers = 14
	}
	seg := transport.NewSimSegment(cfg.Net)
	tp := &topology{seg: seg}
	pubHost, err := core.NewHost(seg, "publisher", core.HostConfig{Reliable: cfg.Reliable, Telemetry: cfg.Telemetry, CompactTypes: cfg.Compact})
	if err != nil {
		seg.Close()
		return nil, err
	}
	tp.hosts = append(tp.hosts, pubHost)
	tp.pubBus, err = pubHost.NewBus("bench-pub")
	if err != nil {
		tp.Close()
		return nil, err
	}
	for i := 0; i < cfg.Consumers; i++ {
		h, err := core.NewHost(seg, fmt.Sprintf("consumer%d", i), core.HostConfig{Reliable: cfg.Reliable, Telemetry: cfg.Telemetry})
		if err != nil {
			tp.Close()
			return nil, err
		}
		tp.hosts = append(tp.hosts, h)
		bus, err := h.NewBus("bench-sub")
		if err != nil {
			tp.Close()
			return nil, err
		}
		for _, p := range patterns {
			sub, err := bus.Subscribe(p)
			if err != nil {
				tp.Close()
				return nil, err
			}
			tp.subs = append(tp.subs, sub)
		}
	}
	// Settle before measuring: topology construction (up to 140k
	// subscriptions for Figure 8) leaves allocator and GC debt that would
	// otherwise be charged to the measurement window.
	runtime.GC()
	return tp, nil
}

func (tp *topology) Close() {
	for _, h := range tp.hosts {
		_ = h.Close()
	}
	tp.seg.Close()
}

// payload builds a message body of the given size whose first 8 bytes are
// the send time (shared-clock latency stamping).
func payload(size int, now time.Time) []byte {
	if size < 8 {
		size = 8
	}
	b := make([]byte, size)
	binary.BigEndian.PutUint64(b, uint64(now.UnixNano()))
	return b
}

func stampOf(v any) (time.Time, bool) {
	b, ok := v.([]byte)
	if !ok || len(b) < 8 {
		return time.Time{}, false
	}
	return time.Unix(0, int64(binary.BigEndian.Uint64(b))), true
}

// ---------------------------------------------------------------------------
// Figure 5: latency vs message size (batching off)

// LatencyResult is one row of Figure 5.
type LatencyResult struct {
	MsgSize int
	Samples int
	// Modelled network milliseconds.
	MeanMs, StdMs, CI99Ms float64
}

// MeasureLatency runs the Figure 5 experiment for one message size:
// batching off, one publisher, every consumer timestamping arrivals.
func MeasureLatency(cfg Config, msgSize, nMsgs int) (LatencyResult, error) {
	rcfg := cfg.Reliable
	rcfg.Batching = false // the appendix turns batching off for latency
	runCfg := cfg
	runCfg.Reliable = rcfg

	tp, err := buildTopology(runCfg, []string{"bench.latency"})
	if err != nil {
		return LatencyResult{}, err
	}
	defer tp.Close()

	var mu sync.Mutex
	var samples []float64
	var wg sync.WaitGroup
	warmed := make(chan struct{})
	var warmOnce sync.Once
	var warmCount int
	for _, sub := range tp.subs {
		wg.Add(1)
		go func(sub *core.Subscription) {
			defer wg.Done()
			// The first message is a warm-up: it pays the one-time
			// stream-synchronisation cost of the reliable protocol and is
			// not measured.
			if _, ok := <-sub.C; !ok {
				return
			}
			mu.Lock()
			warmCount++
			if warmCount == len(tp.subs) {
				warmOnce.Do(func() { close(warmed) })
			}
			mu.Unlock()
			for i := 0; i < nMsgs; i++ {
				ev, ok := <-sub.C
				if !ok {
					return
				}
				now := time.Now()
				sent, ok := stampOf(ev.Value)
				if !ok {
					continue
				}
				// Wall latency -> modelled latency (the simulator runs
				// Speedup x faster than the modelled network).
				lat := now.Sub(sent).Seconds() * speedupOf(cfg) * 1000
				mu.Lock()
				samples = append(samples, lat)
				mu.Unlock()
			}
		}(sub)
	}
	if err := tp.pubBus.Publish("bench.latency", payload(msgSize, time.Now())); err != nil {
		return LatencyResult{}, err
	}
	select {
	case <-warmed:
	case <-time.After(30 * time.Second):
		return LatencyResult{}, fmt.Errorf("bench: warm-up message never delivered")
	}
	// Pace publications so each message's latency is measured on a quiet
	// wire, as in the appendix (one publisher, lightly loaded network).
	for i := 0; i < nMsgs; i++ {
		if err := tp.pubBus.Publish("bench.latency", payload(msgSize, time.Now())); err != nil {
			return LatencyResult{}, err
		}
		time.Sleep(scaleDur(cfg, 12*time.Millisecond))
	}
	wg.Wait()
	mean, std := meanStd(samples)
	return LatencyResult{
		MsgSize: msgSize,
		Samples: len(samples),
		MeanMs:  mean,
		StdMs:   std,
		CI99Ms:  ci99(std, len(samples)),
	}, nil
}

// ---------------------------------------------------------------------------
// Figures 6/7/8: throughput (batching on)

// ThroughputResult is one row of Figures 6-8.
type ThroughputResult struct {
	MsgSize  int
	Subjects int
	Messages int
	// Rates at a single subscriber, in modelled network time.
	MsgsPerSec  float64
	BytesPerSec float64
	// CumulativeBytesPerSec is the aggregate over all subscribers (the
	// appendix: "cumulative throughput over all subscribers is
	// proportional to the number of subscribers").
	CumulativeBytesPerSec float64
	Consumers             int
}

// MeasureThroughput runs the Figure 6/7 experiment for one message size,
// publishing nMsgs as fast as the stack accepts with batching on. With
// nSubjects > 1 it becomes the Figure 8 experiment: the publisher cycles
// over that many distinct subjects and every consumer subscribes to all of
// them.
func MeasureThroughput(cfg Config, msgSize, nMsgs, nSubjects int) (ThroughputResult, error) {
	if nSubjects < 1 {
		nSubjects = 1
	}
	rcfg := cfg.Reliable
	rcfg.Batching = true // the appendix turns batching on for throughput
	runCfg := cfg
	runCfg.Reliable = rcfg

	subjects := make([]string, nSubjects)
	for i := range subjects {
		subjects[i] = fmt.Sprintf("bench.s%d.data", i)
	}
	tp, err := buildTopology(runCfg, subjects)
	if err != nil {
		return ThroughputResult{}, err
	}
	defer tp.Close()

	// One counting goroutine per consumer-subscription; each consumer has
	// nSubjects subscriptions, and each message lands on exactly one.
	perConsumer := make([]chan struct{}, 0, cfg.Consumers)
	var counters sync.WaitGroup
	consumers := cfg.Consumers
	if consumers <= 0 {
		consumers = 14
	}
	subsPerConsumer := nSubjects
	for c := 0; c < consumers; c++ {
		done := make(chan struct{})
		perConsumer = append(perConsumer, done)
		counters.Add(1)
		go func(subs []*core.Subscription, done chan struct{}) {
			defer counters.Done()
			var mu sync.Mutex
			got := 0
			var inner sync.WaitGroup
			for _, sub := range subs {
				inner.Add(1)
				go func(sub *core.Subscription) {
					defer inner.Done()
					for range sub.C {
						mu.Lock()
						got++
						complete := got >= nMsgs
						mu.Unlock()
						if complete {
							select {
							case <-done:
							default:
								close(done)
							}
							return
						}
					}
				}(sub)
			}
			<-done
			// Leave the remaining subscription goroutines draining; they
			// exit when the topology closes.
			go inner.Wait()
		}(tp.subs[c*subsPerConsumer:(c+1)*subsPerConsumer], done)
	}

	start := time.Now()
	for i := 0; i < nMsgs; i++ {
		subj := subjects[i%nSubjects]
		if err := tp.pubBus.Publish(subj, payload(msgSize, time.Now())); err != nil {
			return ThroughputResult{}, err
		}
	}
	_ = tp.pubBus.Flush()
	for _, done := range perConsumer {
		<-done
	}
	wall := time.Since(start)
	counters.Wait()

	// The simulator compresses modelled time by Speedup, so wall time
	// expands back into modelled time by the same factor.
	modelSeconds := wall.Seconds() * speedupOf(cfg)
	rate := float64(nMsgs) / modelSeconds
	return ThroughputResult{
		MsgSize:               msgSize,
		Subjects:              nSubjects,
		Messages:              nMsgs,
		MsgsPerSec:            rate,
		BytesPerSec:           rate * float64(msgSize),
		CumulativeBytesPerSec: rate * float64(msgSize) * float64(consumers),
		Consumers:             consumers,
	}, nil
}

func speedupOf(cfg Config) float64 {
	if cfg.Net.Speedup <= 0 {
		return 1
	}
	return cfg.Net.Speedup
}

func scaleDur(cfg Config, d time.Duration) time.Duration {
	return time.Duration(float64(d) / speedupOf(cfg))
}

// ---------------------------------------------------------------------------
// Statistics

func meanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	if len(xs) < 2 {
		return mean, 0
	}
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return mean, math.Sqrt(ss / float64(len(xs)-1))
}

// ci99 is the half-width of the 99% confidence interval of the mean.
func ci99(std float64, n int) float64 {
	if n < 2 {
		return 0
	}
	return 2.576 * std / math.Sqrt(float64(n))
}
