package bench

import (
	"runtime"
	"testing"
)

// TestMeasureFanoutLanesSanity checks the A12 harness itself: every
// broadcast message reaches every subscriber of its subject family,
// whatever the lane count.
func TestMeasureFanoutLanesSanity(t *testing.T) {
	for _, lanes := range []int{1, 4} {
		r, err := MeasureFanoutLanes(quickConfig(0), lanes, 32, 160)
		if err != nil {
			t.Fatal(err)
		}
		// 160 messages over 16 families x 32 subscribers (2 per family):
		// every message fans out to exactly 2 clients.
		if want := 160 * 32 / fanoutGroups; r.Deliveries != want {
			t.Fatalf("lanes=%d: deliveries = %d, want %d", lanes, r.Deliveries, want)
		}
		if r.DeliveriesPerSec <= 0 {
			t.Fatalf("lanes=%d: rate = %v", lanes, r.DeliveriesPerSec)
		}
	}
}

// TestLaneScalingGate is the pre-merge acceptance gate for the sharded
// delivery engine (scripts/check.sh): on a multicore host the lane pool
// must actually buy parallel speedup on the fan-out workload. The issue's
// bar is >= 3x aggregate throughput at 8 lanes vs 1 on 8 cores; below 8
// cores perfect scaling is impossible, so the bar drops to 1.5x, and below
// 4 cores the gate skips — there is no parallelism to measure.
func TestLaneScalingGate(t *testing.T) {
	procs := runtime.GOMAXPROCS(0)
	if procs < 4 {
		t.Skipf("lane scaling needs >= 4 cores; GOMAXPROCS = %d", procs)
	}
	if testing.Short() {
		t.Skip("short mode")
	}
	lanes := 8
	want := 3.0
	if procs < 8 {
		lanes = procs
		want = 1.5
	}
	cfg := DefaultConfig()
	const subscribers, msgs = 256, 4000
	one, err := MeasureFanoutLanes(cfg, 1, subscribers, msgs)
	if err != nil {
		t.Fatal(err)
	}
	many, err := MeasureFanoutLanes(cfg, lanes, subscribers, msgs)
	if err != nil {
		t.Fatal(err)
	}
	ratio := many.DeliveriesPerSec / one.DeliveriesPerSec
	t.Logf("lanes=1: %.0f del/s; lanes=%d: %.0f del/s; ratio %.2fx (gate %.1fx)",
		one.DeliveriesPerSec, lanes, many.DeliveriesPerSec, ratio, want)
	if ratio < want {
		t.Fatalf("lane scaling %.2fx below the %.1fx gate (lanes=%d, GOMAXPROCS=%d)",
			ratio, want, lanes, procs)
	}
}
