// Experiment A12: the sharded delivery engine. One daemon with many local
// subscriber clients receives broadcasts from several independent senders;
// the measurement is the aggregate local delivery rate (subject match +
// per-lane enqueue + client dequeue) as a function of DeliveryLanes.
//
// Unlike the figure experiments this one is CPU-bound by design: the
// simulated wire runs at a very high speedup so the medium never throttles
// the delivery engine, and the reported rates are wall-clock deliveries
// per second, not modelled network time (the lanes-vs-1-lane RATIO is the
// published quantity, and it is speedup-invariant either way). On a
// single-core host the lane pool degenerates gracefully: rates come out
// flat across lane counts, which is itself the correct answer.
package bench

import (
	"fmt"
	"io"
	"time"

	"infobus/internal/daemon"
	"infobus/internal/subject"
	"infobus/internal/transport"
)

// fanoutGroups is how many distinct subject families the publishers cycle
// over. Lane assignment hashes the first two subject elements, so 16
// families spread the load across every lane of any realistic pool size.
const fanoutGroups = 16

// fanoutSenders is how many independent publisher daemons drive the
// receiver. Inbound parallelism is keyed by sender address, so a single
// sender would serialise the receive side regardless of the lane count.
const fanoutSenders = 4

// FanoutLanesResult is one cell of experiment A12.
type FanoutLanesResult struct {
	Lanes       int
	Subscribers int
	Senders     int
	Messages    int // broadcast by the senders, total
	Deliveries  int // consumed by the subscriber clients, total
	// DeliveriesPerSec is the aggregate wall-clock delivery rate across
	// all subscriber clients.
	DeliveriesPerSec float64
}

// MeasureFanoutLanes runs one A12 cell: a receiver daemon with the given
// lane count and subscriber population, fanoutSenders publisher daemons
// broadcasting nMsgs messages round-robin over fanoutGroups subject
// families. Subscriber i subscribes to family i%fanoutGroups, so each
// message fans out to subscribers/fanoutGroups local clients.
func MeasureFanoutLanes(cfg Config, lanes, subscribers, nMsgs int) (FanoutLanesResult, error) {
	if subscribers < fanoutGroups {
		return FanoutLanesResult{}, fmt.Errorf("bench: need at least %d subscribers (one per subject family)", fanoutGroups)
	}
	netCfg := cfg.Net
	if netCfg.Speedup < 2000 {
		netCfg.Speedup = 2000 // keep the wire invisible: this experiment measures CPU
	}
	rcfg := cfg.Reliable
	rcfg.Batching = true
	seg := transport.NewSimSegment(netCfg)
	defer seg.Close()

	recvEP, err := seg.NewEndpoint("fanout-recv")
	if err != nil {
		return FanoutLanesResult{}, err
	}
	recv := daemon.New(recvEP, rcfg, daemon.Options{DeliveryLanes: lanes})
	defer recv.Close()

	subjects := make([]string, fanoutGroups)
	parsed := make([]subject.Subject, fanoutGroups)
	for g := range subjects {
		subjects[g] = fmt.Sprintf("fan.g%d.data", g)
		parsed[g] = subject.MustParse(subjects[g])
	}

	// expected[g] is how many of the nMsgs land in family g.
	expected := make([]int, fanoutGroups)
	for i := 0; i < nMsgs; i++ {
		expected[i%fanoutGroups]++
	}

	clients := make([]*daemon.Client, subscribers)
	for i := range clients {
		c, err := recv.NewClient(fmt.Sprintf("sub%d", i))
		if err != nil {
			return FanoutLanesResult{}, err
		}
		if err := c.Subscribe(subject.MustParsePattern(subjects[i%fanoutGroups])); err != nil {
			return FanoutLanesResult{}, err
		}
		clients[i] = c
	}

	senders := make([]*daemon.Daemon, fanoutSenders)
	for j := range senders {
		ep, err := seg.NewEndpoint(fmt.Sprintf("fanout-send%d", j))
		if err != nil {
			return FanoutLanesResult{}, err
		}
		senders[j] = daemon.New(ep, rcfg, daemon.Options{})
		defer senders[j].Close()
	}

	// Consumers drain concurrently; the run is over when every client has
	// seen its family's full message count.
	stop := make(chan struct{})
	defer close(stop)
	consumed := make(chan int, subscribers)
	for i, c := range clients {
		go func(i int, c *daemon.Client) {
			want := expected[i%fanoutGroups]
			got := 0
			for got < want {
				if _, ok := c.Next(stop); !ok {
					break
				}
				got++
			}
			consumed <- got
		}(i, c)
	}

	payload := make([]byte, 256)
	errs := make(chan error, fanoutSenders)
	start := time.Now()
	for j, d := range senders {
		go func(j int, d *daemon.Daemon) {
			// Sender j owns the global message indices i with
			// i%fanoutSenders == j; each index publishes to family
			// i%fanoutGroups, reproducing the expected[] census exactly.
			for i := j; i < nMsgs; i += fanoutSenders {
				if err := d.Publish(parsed[i%fanoutGroups], payload); err != nil {
					errs <- err
					return
				}
			}
			errs <- d.Flush()
		}(j, d)
	}
	for range senders {
		if err := <-errs; err != nil {
			return FanoutLanesResult{}, err
		}
	}

	deliveries := 0
	deadline := time.After(60 * time.Second)
	for range clients {
		select {
		case got := <-consumed:
			deliveries += got
		case <-deadline:
			return FanoutLanesResult{}, fmt.Errorf("bench: fan-out stalled with %d deliveries consumed", deliveries)
		}
	}
	wall := time.Since(start)

	return FanoutLanesResult{
		Lanes:            lanes,
		Subscribers:      subscribers,
		Senders:          fanoutSenders,
		Messages:         nMsgs,
		Deliveries:       deliveries,
		DeliveriesPerSec: float64(deliveries) / wall.Seconds(),
	}, nil
}

// FigureA12 sweeps lane counts at each subscriber population.
func FigureA12(cfg Config, laneCounts, subscriberCounts []int, nMsgs int) ([]FanoutLanesResult, error) {
	var rows []FanoutLanesResult
	for _, subs := range subscriberCounts {
		for _, lanes := range laneCounts {
			r, err := MeasureFanoutLanes(cfg, lanes, subs, nMsgs)
			if err != nil {
				return nil, err
			}
			rows = append(rows, r)
		}
	}
	return rows, nil
}

// PrintFigureA12 renders the A12 table: one block per subscriber
// population, with each lane count's aggregate rate and its speedup over
// the single-lane engine.
func PrintFigureA12(w io.Writer, rows []FanoutLanesResult) {
	fmt.Fprintln(w, "A12: sharded delivery engine (aggregate local deliveries/sec, wall clock)")
	fmt.Fprintf(w, "%12s %8s %16s %10s\n", "subscribers", "lanes", "deliveries/s", "vs 1 lane")
	base := map[int]float64{}
	for _, r := range rows {
		if r.Lanes == 1 {
			base[r.Subscribers] = r.DeliveriesPerSec
		}
		ratio := "-"
		if b := base[r.Subscribers]; b > 0 {
			ratio = fmt.Sprintf("%.2fx", r.DeliveriesPerSec/b)
		}
		fmt.Fprintf(w, "%12d %8d %16.0f %10s\n", r.Subscribers, r.Lanes, r.DeliveriesPerSec, ratio)
	}
}
