// Experiment A9 — type-dictionary compression for the broadcast path
// (wire/dict.go, HostConfig.CompactTypes). Not in the paper: the paper's
// §6 measurements use opaque payloads, which hide the cost of the
// self-describing format this reproduction implements for P2/P3. A9
// quantifies that cost and how much of it the per-sender class dictionary
// recovers: codec-level wire bytes and CPU (MeasureDictCompression), and
// the Figure-6 workload re-run with structured objects, dictionary off vs
// on (MeasureDictThroughput).

package bench

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"infobus/internal/core"
	"infobus/internal/mop"
	"infobus/internal/wire"
)

// DictShape is one object shape measured by A9.
type DictShape struct {
	Name  string
	Value mop.Value
}

// DictShapes builds the A9 object set: the paper's §5 news story at
// growing body sizes, plus a market tick as the small-message extreme.
// Classes are built fresh per call so repeated runs do not share
// fingerprint or registry state.
func DictShapes() []DictShape {
	tick := mop.MustNewClass("EquityTick", nil, []mop.Attr{
		{Name: "symbol", Type: mop.String},
		{Name: "exchange", Type: mop.String},
		{Name: "price", Type: mop.Float},
		{Name: "size", Type: mop.Int},
		{Name: "at", Type: mop.Time},
	}, nil)
	group := mop.MustNewClass("IndustryGroup", nil, []mop.Attr{
		{Name: "code", Type: mop.String},
		{Name: "weight", Type: mop.Float},
	}, nil)
	story := mop.MustNewClass("Story", nil, []mop.Attr{
		{Name: "headline", Type: mop.String},
		{Name: "body", Type: mop.String},
		{Name: "groups", Type: mop.ListOf(group)},
		{Name: "published", Type: mop.Time},
	}, nil)
	mkStory := func(bodyBytes int) *mop.Object {
		return mop.MustNew(story).
			MustSet("headline", "GM announces record earnings").
			MustSet("body", strings.Repeat("x", bodyBytes)).
			MustSet("groups", mop.List{
				mop.MustNew(group).MustSet("code", "AUTO").MustSet("weight", 0.75),
			}).
			MustSet("published", time.Unix(749571200, 0).UTC())
	}
	return []DictShape{
		{Name: "tick/64B", Value: mop.MustNew(tick).
			MustSet("symbol", "GM").
			MustSet("exchange", "NYSE").
			MustSet("price", 42.125).
			MustSet("size", int64(1200)).
			MustSet("at", time.Unix(749571200, 0).UTC())},
		{Name: "story/256B", Value: mkStory(256)},
		{Name: "story/1KB", Value: mkStory(1024)},
		{Name: "story/4KB", Value: mkStory(4096)},
	}
}

// DictRow is one codec-level row of A9.
type DictRow struct {
	Shape string
	// Wire bytes per message: legacy self-describing, compact with the
	// class definitions inline (first contact), compact steady state.
	LegacyBytes, FirstBytes, SteadyBytes int
	// ReductionPct is the steady-state saving over the legacy format.
	ReductionPct float64
	// Encode/decode CPU per message (host nanoseconds, not modelled time).
	LegacyEncNs, SteadyEncNs float64
	LegacyDecNs, SteadyDecNs float64
}

// MeasureDictCompression measures the codec in isolation: no network, one
// encode and one decode per message, iters messages per shape.
func MeasureDictCompression(iters int) ([]DictRow, error) {
	if iters <= 0 {
		iters = 20000
	}
	rows := make([]DictRow, 0, 4)
	for _, shape := range DictShapes() {
		legacy, err := wire.Marshal(shape.Value)
		if err != nil {
			return nil, err
		}
		dict := wire.NewSendDict(1 << 30) // steady state stays reference-only
		first, err := dict.Marshal(shape.Value)
		if err != nil {
			return nil, err
		}
		steady, err := dict.Marshal(shape.Value)
		if err != nil {
			return nil, err
		}

		buf := make([]byte, 0, 2*len(legacy))
		start := time.Now()
		for i := 0; i < iters; i++ {
			if _, err := wire.AppendMarshal(buf[:0], shape.Value); err != nil {
				return nil, err
			}
		}
		legacyEnc := time.Since(start)
		start = time.Now()
		for i := 0; i < iters; i++ {
			if _, err := dict.AppendMarshal(buf[:0], shape.Value); err != nil {
				return nil, err
			}
		}
		steadyEnc := time.Since(start)

		// Decode against warm state: the legacy path re-parses and
		// re-verifies the type table every message; the compact path hits
		// the fingerprint cache.
		reg := mop.NewRegistry()
		cache := wire.NewTypeCache(0)
		if _, err := wire.UnmarshalWith(first, reg, cache); err != nil {
			return nil, err
		}
		start = time.Now()
		for i := 0; i < iters; i++ {
			if _, err := wire.Unmarshal(legacy, reg); err != nil {
				return nil, err
			}
		}
		legacyDec := time.Since(start)
		start = time.Now()
		for i := 0; i < iters; i++ {
			if _, err := wire.UnmarshalWith(steady, reg, cache); err != nil {
				return nil, err
			}
		}
		steadyDec := time.Since(start)

		rows = append(rows, DictRow{
			Shape:        shape.Name,
			LegacyBytes:  len(legacy),
			FirstBytes:   len(first),
			SteadyBytes:  len(steady),
			ReductionPct: 100 * (1 - float64(len(steady))/float64(len(legacy))),
			LegacyEncNs:  float64(legacyEnc.Nanoseconds()) / float64(iters),
			SteadyEncNs:  float64(steadyEnc.Nanoseconds()) / float64(iters),
			LegacyDecNs:  float64(legacyDec.Nanoseconds()) / float64(iters),
			SteadyDecNs:  float64(steadyDec.Nanoseconds()) / float64(iters),
		})
	}
	return rows, nil
}

// PrintFigureA9 renders the codec-level table.
func PrintFigureA9(w io.Writer, rows []DictRow) {
	fmt.Fprintln(w, "A9: type-dictionary compression (codec level, steady state vs self-describing)")
	fmt.Fprintf(w, "%12s %10s %10s %10s %10s %12s %12s %12s %12s\n",
		"shape", "legacy B", "first B", "steady B", "saved", "enc ns", "enc' ns", "dec ns", "dec' ns")
	for _, r := range rows {
		fmt.Fprintf(w, "%12s %10d %10d %10d %9.1f%% %12.0f %12.0f %12.0f %12.0f\n",
			r.Shape, r.LegacyBytes, r.FirstBytes, r.SteadyBytes, r.ReductionPct,
			r.LegacyEncNs, r.SteadyEncNs, r.LegacyDecNs, r.SteadyDecNs)
	}
}

// DictThroughputRow is one end-to-end row of A9: the Figure 6 workload
// with structured objects instead of opaque payloads.
type DictThroughputRow struct {
	Shape               string
	WireBytesOff        int // steady-state payload bytes, dictionary off
	WireBytesOn         int // steady-state payload bytes, dictionary on
	MsgsPerSecOff       float64
	MsgsPerSecOn        float64
	DeltaPct            float64
	Messages, Consumers int
}

// MeasureDictThroughput re-runs the Figure 6 experiment with a structured
// object per message, dictionary off then on, and reports single-
// subscriber rates in modelled network time.
func MeasureDictThroughput(cfg Config, shape DictShape, nMsgs int) (DictThroughputRow, error) {
	offRate, offBytes, err := measureObjectThroughput(cfg, shape.Value, nMsgs, false)
	if err != nil {
		return DictThroughputRow{}, err
	}
	onRate, onBytes, err := measureObjectThroughput(cfg, shape.Value, nMsgs, true)
	if err != nil {
		return DictThroughputRow{}, err
	}
	consumers := cfg.Consumers
	if consumers <= 0 {
		consumers = 14
	}
	return DictThroughputRow{
		Shape:         shape.Name,
		WireBytesOff:  offBytes,
		WireBytesOn:   onBytes,
		MsgsPerSecOff: offRate,
		MsgsPerSecOn:  onRate,
		DeltaPct:      (onRate - offRate) / offRate * 100,
		Messages:      nMsgs,
		Consumers:     consumers,
	}, nil
}

// measureObjectThroughput publishes nMsgs copies of value as fast as the
// stack accepts (batching on) and returns the single-subscriber message
// rate in modelled time plus the steady-state payload size.
func measureObjectThroughput(cfg Config, value mop.Value, nMsgs int, compact bool) (float64, int, error) {
	rcfg := cfg.Reliable
	rcfg.Batching = true
	runCfg := cfg
	runCfg.Reliable = rcfg
	runCfg.Compact = compact

	tp, err := buildTopology(runCfg, []string{"bench.dict"})
	if err != nil {
		return 0, 0, err
	}
	defer tp.Close()

	var counters sync.WaitGroup
	dones := make([]chan struct{}, 0, len(tp.subs))
	for _, sub := range tp.subs {
		done := make(chan struct{})
		dones = append(dones, done)
		counters.Add(1)
		go func(sub *core.Subscription, done chan struct{}) {
			defer counters.Done()
			got := 0
			for range sub.C {
				if got++; got >= nMsgs {
					close(done)
					return
				}
			}
		}(sub, done)
	}

	start := time.Now()
	for i := 0; i < nMsgs; i++ {
		if err := tp.pubBus.Publish("bench.dict", value); err != nil {
			return 0, 0, err
		}
	}
	_ = tp.pubBus.Flush()
	for _, done := range dones {
		<-done
	}
	wall := time.Since(start)
	counters.Wait()

	// Steady-state payload size for the wire-occupancy column.
	var steady []byte
	if compact {
		d := wire.NewSendDict(1 << 30)
		if _, err := d.Marshal(value); err != nil {
			return 0, 0, err
		}
		steady, err = d.Marshal(value)
	} else {
		steady, err = wire.Marshal(value)
	}
	if err != nil {
		return 0, 0, err
	}
	return float64(nMsgs) / (wall.Seconds() * speedupOf(cfg)), len(steady), nil
}

// PrintFigureA9Throughput renders the end-to-end table.
func PrintFigureA9Throughput(w io.Writer, rows []DictThroughputRow) {
	fmt.Fprintln(w, "A9: Figure 6 workload with structured objects, dictionary off vs on")
	fmt.Fprintf(w, "%12s %10s %10s %14s %14s %9s\n",
		"shape", "off B/msg", "on B/msg", "off msgs/s", "on msgs/s", "delta")
	for _, r := range rows {
		fmt.Fprintf(w, "%12s %10d %10d %14.0f %14.0f %8.1f%%\n",
			r.Shape, r.WireBytesOff, r.WireBytesOn, r.MsgsPerSecOff, r.MsgsPerSecOn, r.DeltaPct)
	}
}
