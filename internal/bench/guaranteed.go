package bench

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"infobus/internal/ledger"
	"infobus/internal/telemetry"
)

// A10: group-commit ledger. Unlike the figure experiments this one runs
// against the real filesystem in real time — the quantity under test is
// the fsync, which the simulated network cannot model. Each row drives N
// concurrent publishers through Append with Sync on, in either commit
// mode, and reports the aggregate append rate, the measured fsyncs per
// message, and the p99 append latency (from the ledger's own histogram).

// GroupCommitRow is one (publishers, mode) cell of the A10 table.
type GroupCommitRow struct {
	Publishers   int
	Mode         string // "per-append" or "group"
	MsgsPerSec   float64
	FsyncsPerMsg float64
	MeanGroup    float64 // messages per committed batch
	P99Us        float64 // p99 Append latency, microseconds
}

// MeasureGroupCommit runs one A10 cell: publishers goroutines each append
// perPublisher 256-byte records to a fresh Sync ledger.
func MeasureGroupCommit(publishers, perPublisher int, group bool) (GroupCommitRow, error) {
	dir, err := os.MkdirTemp("", "ibbench-ledger-*")
	if err != nil {
		return GroupCommitRow{}, err
	}
	defer os.RemoveAll(dir)
	reg := telemetry.NewRegistry()
	led, err := ledger.Open(filepath.Join(dir, "bench.ledger"), ledger.Options{
		Sync:               true,
		DisableGroupCommit: !group,
		Metrics:            reg,
	})
	if err != nil {
		return GroupCommitRow{}, err
	}
	payload := make([]byte, 256)
	var wg sync.WaitGroup
	errs := make(chan error, publishers)
	start := time.Now()
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perPublisher; i++ {
				id, err := led.Append("bench.guaranteed", payload)
				if err != nil {
					errs <- err
					return
				}
				// Ack out of band, as a consumer would; keeps the pending
				// set (and the compaction debt) from growing unboundedly.
				if err := led.Ack(id); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	for err := range errs {
		if err != nil {
			_ = led.Close()
			return GroupCommitRow{}, err
		}
	}
	appends := float64(reg.Counter("ledger.appends").Load())
	fsyncs := float64(reg.Counter("ledger.fsyncs").Load())
	commits := float64(reg.Counter("ledger.commits").Load())
	p99 := reg.Histogram("ledger.append_ns").Summary().P99Ns
	if err := led.Close(); err != nil {
		return GroupCommitRow{}, err
	}
	mode := "per-append"
	if group {
		mode = "group"
	}
	row := GroupCommitRow{
		Publishers:   publishers,
		Mode:         mode,
		MsgsPerSec:   appends / elapsed.Seconds(),
		FsyncsPerMsg: fsyncs / appends,
		P99Us:        p99 / 1e3,
	}
	if commits > 0 {
		row.MeanGroup = appends / commits
	}
	return row, nil
}

// FigureA10 sweeps publisher counts across both commit modes.
func FigureA10(publisherCounts []int, perPublisher int) ([]GroupCommitRow, error) {
	if perPublisher <= 0 {
		perPublisher = 300
	}
	var rows []GroupCommitRow
	for _, n := range publisherCounts {
		for _, group := range []bool{false, true} {
			row, err := MeasureGroupCommit(n, perPublisher, group)
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// PrintFigureA10 renders the group-commit table, pairing each publisher
// count's baseline with its group-commit row and the resulting speedup.
func PrintFigureA10(w io.Writer, rows []GroupCommitRow) {
	fmt.Fprintln(w, "A10: group-commit ledger (Sync appends, real filesystem, 256 B records)")
	fmt.Fprintf(w, "%6s %11s %12s %11s %11s %11s\n",
		"pubs", "mode", "msgs/s", "fsyncs/msg", "mean group", "p99 append")
	base := make(map[int]float64)
	for _, r := range rows {
		fmt.Fprintf(w, "%6d %11s %12.0f %11.3f %11.1f %9.0fµs\n",
			r.Publishers, r.Mode, r.MsgsPerSec, r.FsyncsPerMsg, r.MeanGroup, r.P99Us)
		if r.Mode == "per-append" {
			base[r.Publishers] = r.MsgsPerSec
		} else if b := base[r.Publishers]; b > 0 {
			fmt.Fprintf(w, "%6s %11s %11.1fx\n", "", "speedup", r.MsgsPerSec/b)
		}
	}
}
