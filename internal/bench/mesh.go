package bench

import (
	"bytes"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"infobus/internal/busproto"
	"infobus/internal/mesh"
	"infobus/internal/netsim"
	"infobus/internal/reliable"
	"infobus/internal/router"
	"infobus/internal/transport"
)

// A14: interest locality of the router mesh. A ring of N segments, each
// bridged to the next by one router, with stub subscriber hosts on every
// segment and the measured flow's subscribers on only the two segments
// next to the publisher. Pairwise routers (the pre-mesh baseline) relay
// interest transitively in both directions around the ring, so the
// publication floods to every segment inside the envelope hop budget —
// bounded only by busproto.MaxHops, not by where subscribers are. The mesh
// elects the ring into a spanning tree and propagates aggregated interest
// hop by hop with split horizon, so the same publication traverses only
// the subscriber-bearing segments plus the connecting tree path.
//
// The traversal count is measured on the wire: a raw observer endpoint on
// each segment counts data frames carrying the flow's payload marker. The
// marker lives in the PAYLOAD, not the subject — subject strings also
// appear inside interest advertisements, which would count as phantom
// traversals.

// meshMarker tags the measured flow's payload on the wire.
const meshMarker = "IB-A14-LOCALITY-MARKER"

// MeshLocalityRow is one mode's measurement in the A14 table.
type MeshLocalityRow struct {
	Mode              string // "flood" (pairwise relay) or "mesh"
	Segments          int
	Hosts             int // stub subscriber hosts across all segments
	SubscriberSegs    int // segments holding interest in the measured flow
	SegmentsTraversed int // segments whose medium carried the flow
	DataFrames        uint64
}

// ringObserver counts marker-carrying frames on one segment's medium.
type ringObserver struct {
	ep     transport.Endpoint
	frames atomic.Uint64
}

// meshRing is the running A14 topology.
type meshRing struct {
	segs      []*transport.SimSegment
	routers   []*router.Router
	observers []*ringObserver
	conns     []*reliable.Conn // stubs + subscribers, drained
	pub       *reliable.Conn
	seq       int
	done      chan struct{}
	wg        sync.WaitGroup
}

// adSource is one stub's pre-encoded interest advertisement.
type adSource struct {
	conn *reliable.Conn
	env  []byte
}

func buildMeshRing(netCfg netsim.Config, segments, stubsPerSeg int, meshOn bool) (*meshRing, error) {
	r := &meshRing{done: make(chan struct{})}
	ok := false
	defer func() {
		if !ok {
			r.Close()
		}
	}()

	segName := func(i int) string { return fmt.Sprintf("s%02d", i) }
	for i := 0; i < segments; i++ {
		r.segs = append(r.segs, transport.NewSimSegment(netCfg))
	}

	// Routers first, so their endpoints join quiet segments. Interest heard
	// from stubs stays valid across the measurement window as long as the
	// stubs refresh inside the TTL.
	//
	// Protocol cadence is the scaling limit of this harness, not the
	// modelled medium: a reliable conn's housekeeping ticks at
	// NakInterval/4 and walks every broadcast peer it has heard, and a
	// segment here has ~(stubsPerSeg+2) endpoints hearing each other. At
	// 5 000 hosts the default millisecond-scale timers would cost the host
	// hundreds of millions of peer-loop iterations per second, so the
	// routers tick at tens of milliseconds and the stub population (which
	// only refreshes interest) at hundreds.
	relCfg := reliable.Config{
		NakInterval:        20 * time.Millisecond,
		GapTimeout:         2 * time.Second,
		RetransmitInterval: 50 * time.Millisecond,
		HeartbeatInterval:  time.Second,
	}
	var mcfg *mesh.Config
	if meshOn {
		// Every control frame fans out to every endpoint on its segment,
		// so the host's delivery budget is frames/s × (stubsPerSeg+3) ×
		// segments — the full ring is ~5 150 endpoints. Two-second hellos
		// keep the control plane's global fan-out in the low tens of
		// thousands of deliveries per second; tree convergence does not
		// care, because mesh changes trigger immediate hello rounds and
		// propagate at Debounce speed, not HelloInterval speed.
		mcfg = &mesh.Config{
			HelloInterval:   2 * time.Second,
			Debounce:        100 * time.Millisecond,
			InterestRefresh: 8 * time.Second,
			StatusInterval:  -1,
		}
	}
	for i := 0; i < segments; i++ {
		j := (i + 1) % segments
		rt, err := router.New(router.Options{
			Name:     fmt.Sprintf("r%02d", i),
			Reliable: relCfg,
			// Long TTL + slow relay: the stub population is static, so
			// interest only needs refreshing against expiry, and the
			// baseline's pairwise union frames are ~5 KB each — at 200 ms
			// they alone would oversubscribe the measurement host's
			// delivery budget. The relay pace changes how fast the flood
			// spreads (warmup below waits it out), not where it reaches.
			InterestTTL:   60 * time.Second,
			RelayInterval: time.Second,
			Mesh:          mcfg,
		},
			router.Attachment{Segment: r.segs[i], Name: segName(i)},
			router.Attachment{Segment: r.segs[j], Name: segName(j)},
		)
		if err != nil {
			return nil, err
		}
		r.routers = append(r.routers, rt)
	}

	// One raw observer per segment: it never sends, it only counts frames
	// whose payload carries the flow marker.
	for i := 0; i < segments; i++ {
		ep, err := r.segs[i].NewEndpoint("obs")
		if err != nil {
			return nil, err
		}
		obs := &ringObserver{ep: ep}
		r.observers = append(r.observers, obs)
		r.wg.Add(1)
		go func(obs *ringObserver) {
			defer r.wg.Done()
			for dg := range obs.ep.Recv() {
				if bytes.Contains(dg.Payload, []byte(meshMarker)) {
					obs.frames.Add(1)
				}
			}
		}(obs)
	}

	// Stub hosts: each advertises interest in its own segment-scoped
	// subjects (nobody publishes them — they are the background population
	// whose interest the mesh must aggregate and the relay must carry), at
	// a lazy refresh inside the routers' InterestTTL. The measured flow's
	// subscribers sit on segments 1 and 2, right next to the publisher's
	// segment 0.
	stubCfg := reliable.Config{
		NakInterval:        4 * time.Second,
		GapTimeout:         8 * time.Second,
		RetransmitInterval: 4 * time.Second,
		HeartbeatInterval:  300 * time.Second,
	}
	var ads []adSource
	newStub := func(seg int, name string, patterns []string) error {
		ep, err := r.segs[seg].NewEndpoint(name)
		if err != nil {
			return err
		}
		conn := reliable.New(ep, stubCfg)
		r.conns = append(r.conns, conn)
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			for range conn.Recv() {
			}
		}()
		ads = append(ads, adSource{conn: conn, env: busproto.Encode(busproto.Envelope{
			Kind: busproto.KindInterest, Patterns: patterns,
		})})
		return nil
	}
	for j := 0; j < segments; j++ {
		for i := 0; i < stubsPerSeg; i++ {
			// Eight distinct first-level namespaces per segment: enough
			// diversity to exercise aggregation, bounded enough that the
			// baseline's un-aggregated relay union stays under the datagram
			// cap (its lack of aggregation is part of what A14 indicts).
			pat := fmt.Sprintf("seg%02d.h%d.>", j, i%8)
			if err := newStub(j, fmt.Sprintf("stub%02d-%d", j, i), []string{pat}); err != nil {
				return nil, err
			}
		}
	}
	for _, seg := range []int{1 % segments, 2 % segments} {
		if err := newStub(seg, fmt.Sprintf("flowsub%02d", seg), []string{"bench.>"}); err != nil {
			return nil, err
		}
	}

	// The interest refresher: one goroutine walks every stub, so 5000 hosts
	// cost one timer, not 5000. The walk is paced — a burst of 5 000 ads
	// in one instant stalls every segment's wire for seconds on a small
	// host — and the cadence stays well inside the routers' 60 s
	// InterestTTL even with the walk itself taking several seconds.
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		ticker := time.NewTicker(30 * time.Second)
		defer ticker.Stop()
		send := func() {
			for _, ad := range ads {
				_ = ad.conn.Publish(ad.env)
				_ = ad.conn.Flush()
				select {
				case <-r.done:
					return
				default:
				}
				time.Sleep(time.Millisecond)
			}
		}
		send()
		for {
			select {
			case <-r.done:
				return
			case <-ticker.C:
				send()
			}
		}
	}()

	pubEp, err := r.segs[0].NewEndpoint("flowpub")
	if err != nil {
		return nil, err
	}
	r.pub = reliable.New(pubEp, relCfg)
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		for range r.pub.Recv() {
		}
	}()
	ok = true
	return r, nil
}

func (r *meshRing) Close() {
	select {
	case <-r.done:
	default:
		close(r.done)
	}
	for _, rt := range r.routers {
		_ = rt.Close()
	}
	if r.pub != nil {
		_ = r.pub.Close()
	}
	for _, c := range r.conns {
		_ = c.Close()
	}
	for _, o := range r.observers {
		_ = o.ep.Close()
	}
	for _, s := range r.segs {
		_ = s.Close()
	}
	r.wg.Wait()
}

func (r *meshRing) reset() {
	for _, o := range r.observers {
		o.frames.Store(0)
	}
}

func (r *meshRing) traversed() (segs int, frames uint64) {
	for _, o := range r.observers {
		if n := o.frames.Load(); n > 0 {
			segs++
			frames += n
		}
	}
	return segs, frames
}

// waitQuiet polls the wire footprint until it has not moved for `quiet`
// (or `max` elapses). Fixed post-publish sleeps are not enough: at 5 000
// hosts the host CPU is oversubscribed by the simulation itself and
// delivery can lag publication by whole seconds.
func (r *meshRing) waitQuiet(quiet, max time.Duration) {
	deadline := time.Now().Add(max)
	lastSegs, lastFrames := r.traversed()
	lastChange := time.Now()
	for time.Now().Before(deadline) && time.Since(lastChange) < quiet {
		time.Sleep(100 * time.Millisecond)
		s, f := r.traversed()
		if s != lastSegs || f != lastFrames {
			lastSegs, lastFrames, lastChange = s, f, time.Now()
		}
	}
}

// publish sends n marker-carrying publications on the flow subject, paced
// so the modelled medium is never the variable under test.
func (r *meshRing) publish(n int) error {
	for i := 0; i < n; i++ {
		r.seq++
		payload := fmt.Appendf(nil, "%s-%06d", meshMarker, r.seq)
		env := busproto.Encode(busproto.Envelope{
			Kind: busproto.KindPublish, Subject: "bench.data", Payload: payload,
		})
		if err := r.pub.Publish(env); err != nil {
			return err
		}
		if err := r.pub.Flush(); err != nil {
			return err
		}
		time.Sleep(2 * time.Millisecond)
	}
	return nil
}

// MeasureMeshLocality runs one A14 mode: build the ring, wait until the
// per-probe traversal stabilizes (tree election and interest propagation in
// mesh mode; the hop-by-hop relay spread in flood mode), then measure a
// clean window.
func MeasureMeshLocality(netCfg netsim.Config, segments, stubsPerSeg, msgs int, meshOn bool) (MeshLocalityRow, error) {
	mode := "flood"
	if meshOn {
		mode = "mesh"
	}
	row := MeshLocalityRow{
		Mode:           mode,
		Segments:       segments,
		Hosts:          segments * stubsPerSeg,
		SubscriberSegs: 2,
	}
	// A14's metric is a wire frame count, not wall time, so unlike the
	// latency figures it may run the medium faster than the -speedup
	// convention: netsim spins sub-millisecond occupancy and latency
	// sleeps for precision, and at Speedup 10 a 5 000-endpoint ring
	// demands several cores of spin — the wire backlog then grows without
	// bound on a small host. The footprint itself is speedup-invariant.
	if netCfg.Speedup < 500 {
		netCfg.Speedup = 500
	}
	ring, err := buildMeshRing(netCfg, segments, stubsPerSeg, meshOn)
	if err != nil {
		return row, err
	}
	defer ring.Close()

	// Probe until the traversal footprint stops changing: the flood
	// baseline grows as relay ticks spread interest hop by hop (with a
	// multi-second flat start while the routers' reliable streams sync);
	// the mesh shrinks as the election cuts the ring and interest
	// converges. Each probe itself waits for the wire to go quiet before
	// reading, and the warmup floor must outlast the flood's flat start.
	// The floors cover the paced initial interest walk (~1 ms per stub)
	// plus, for the flood, the hop-by-hop relay spread: one RelayInterval
	// per ring hop, so half the ring at 1 s/hop on top of stream sync.
	warmupFloor := 15 * time.Second
	if !meshOn {
		warmupFloor = 45 * time.Second
	}
	started := time.Now()
	last, stable := -1, 0
	deadline := started.Add(150 * time.Second)
	for (stable < 12 || time.Since(started) < warmupFloor) && time.Now().Before(deadline) {
		ring.reset()
		if err := ring.publish(1); err != nil {
			return row, err
		}
		ring.waitQuiet(700*time.Millisecond, 6*time.Second)
		if n, _ := ring.traversed(); n == last {
			stable++
		} else {
			last, stable = n, 0
		}
	}

	// Quiet period so warmup retransmissions drain, then the clean window.
	time.Sleep(time.Second)
	ring.reset()
	if err := ring.publish(msgs); err != nil {
		return row, err
	}
	ring.waitQuiet(2*time.Second, 30*time.Second)
	row.SegmentsTraversed, row.DataFrames = ring.traversed()
	return row, nil
}

// FigureA14 measures the pairwise-flood baseline and the mesh on the same
// ring and returns both rows.
func FigureA14(netCfg netsim.Config, segments, stubsPerSeg, msgs int) ([]MeshLocalityRow, error) {
	if segments <= 0 {
		segments = 50
	}
	if stubsPerSeg <= 0 {
		stubsPerSeg = 100
	}
	if msgs <= 0 {
		msgs = 40
	}
	var rows []MeshLocalityRow
	for _, meshOn := range []bool{false, true} {
		row, err := MeasureMeshLocality(netCfg, segments, stubsPerSeg, msgs, meshOn)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintFigureA14 renders the locality table with the mesh's reduction
// relative to the flood baseline.
func PrintFigureA14(w io.Writer, rows []MeshLocalityRow) {
	fmt.Fprintln(w, "A14: interest-routed mesh locality (ring of segments, publisher on s00,")
	fmt.Fprintln(w, "     flow subscribers on s01+s02 only; wire-observed data-frame footprint)")
	fmt.Fprintf(w, "%7s %9s %7s %10s %13s %12s %10s\n",
		"mode", "segments", "hosts", "sub-segs", "seg-traversed", "data-frames", "vs flood")
	var baseSegs float64
	for _, r := range rows {
		rel := "-"
		if r.Mode == "flood" {
			baseSegs = float64(r.SegmentsTraversed)
		} else if baseSegs > 0 && r.SegmentsTraversed > 0 {
			rel = fmt.Sprintf("%.2fx", baseSegs/float64(r.SegmentsTraversed))
		}
		fmt.Fprintf(w, "%7s %9d %7d %10d %13d %12d %10s\n",
			r.Mode, r.Segments, r.Hosts, r.SubscriberSegs, r.SegmentsTraversed, r.DataFrames, rel)
	}
}
