package baseline

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"infobus/internal/subject"
	"infobus/internal/transport"
)

// Broker is a Zephyr-style centralized notification service: clients
// register subscriptions with the central server's location database; the
// server computes the recipient set for each publication and unicasts a
// copy to every subscriber ("subscription multicasting"). Contrast with
// the Information Bus, where one Ethernet broadcast reaches every host and
// filtering happens at the edges.
type Broker struct {
	ep transport.Endpoint

	mu     sync.Mutex
	subs   *subject.Trie[string] // pattern -> client addresses
	closed bool
	done   chan struct{}
	wg     sync.WaitGroup

	stats BrokerStats
}

// BrokerStats counts broker-side work.
type BrokerStats struct {
	Publications uint64 // inbound publish requests
	Deliveries   uint64 // unicast copies sent (the fan-out cost)
	Subscribes   uint64
}

// Broker wire format (length-prefixed strings):
//
//	'S' pattern                -- subscribe (client addr from datagram)
//	'P' subject payload        -- publish
//	'D' subject payload        -- delivery to a client
const (
	brokerSub     = 'S'
	brokerPub     = 'P'
	brokerDeliver = 'D'
)

// Baseline errors.
var (
	ErrBrokerClosed = errors.New("baseline: broker closed")
	ErrBadMsg       = errors.New("baseline: malformed broker message")
)

// NewBroker starts the central server on a segment.
func NewBroker(seg transport.Segment) (*Broker, error) {
	ep, err := seg.NewEndpoint("zephyr-broker")
	if err != nil {
		return nil, err
	}
	b := &Broker{ep: ep, subs: subject.NewTrie[string](), done: make(chan struct{})}
	b.wg.Add(1)
	go b.serve()
	return b, nil
}

// Addr returns the broker's address; clients need it (a central service
// must be found out-of-band — exactly the bootstrap the bus avoids).
func (b *Broker) Addr() string { return b.ep.Addr() }

// Stats returns a snapshot of broker counters.
func (b *Broker) Stats() BrokerStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stats
}

// Close stops the broker.
func (b *Broker) Close() error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil
	}
	b.closed = true
	close(b.done)
	b.mu.Unlock()
	err := b.ep.Close()
	b.wg.Wait()
	return err
}

func (b *Broker) serve() {
	defer b.wg.Done()
	for {
		select {
		case <-b.done:
			return
		case dg, ok := <-b.ep.Recv():
			if !ok {
				return
			}
			b.handle(dg)
		}
	}
}

func (b *Broker) handle(dg transport.Datagram) {
	kind, fields, err := decodeBrokerMsg(dg.Payload)
	if err != nil {
		return
	}
	switch kind {
	case brokerSub:
		pat, err := subject.ParsePattern(fields[0])
		if err != nil {
			return
		}
		b.mu.Lock()
		b.subs.Add(pat, dg.From)
		b.stats.Subscribes++
		b.mu.Unlock()
	case brokerPub:
		subj, err := subject.Parse(fields[0])
		if err != nil {
			return
		}
		b.mu.Lock()
		b.stats.Publications++
		dests := b.subs.Match(subj)
		b.mu.Unlock()
		out := encodeBrokerMsg(brokerDeliver, fields[0], fields[1])
		for _, dst := range dests {
			if err := b.ep.Send(dst, out); err != nil {
				continue
			}
			b.mu.Lock()
			b.stats.Deliveries++
			b.mu.Unlock()
		}
	}
}

// BrokerClient is one application talking to the central broker.
type BrokerClient struct {
	ep     transport.Endpoint
	broker string
}

// NewBrokerClient attaches a client to the segment and records the broker
// address.
func NewBrokerClient(seg transport.Segment, brokerAddr string) (*BrokerClient, error) {
	ep, err := seg.NewEndpoint("zephyr-client")
	if err != nil {
		return nil, err
	}
	return &BrokerClient{ep: ep, broker: brokerAddr}, nil
}

// Subscribe registers a pattern in the broker's location database.
func (c *BrokerClient) Subscribe(pattern string) error {
	if _, err := subject.ParsePattern(pattern); err != nil {
		return err
	}
	return c.ep.Send(c.broker, encodeBrokerMsg(brokerSub, pattern, ""))
}

// Publish sends a message to the broker for fan-out.
func (c *BrokerClient) Publish(subj string, payload []byte) error {
	if _, err := subject.Parse(subj); err != nil {
		return err
	}
	return c.ep.Send(c.broker, encodeBrokerMsg(brokerPub, subj, string(payload)))
}

// Recv yields deliveries as (subject, payload) pairs.
func (c *BrokerClient) Recv() (string, []byte, bool) {
	dg, ok := <-c.ep.Recv()
	if !ok {
		return "", nil, false
	}
	kind, fields, err := decodeBrokerMsg(dg.Payload)
	if err != nil || kind != brokerDeliver {
		return c.Recv()
	}
	return fields[0], []byte(fields[1]), true
}

// RecvChan exposes the raw receive channel for select-based consumers.
func (c *BrokerClient) RecvChan() <-chan transport.Datagram { return c.ep.Recv() }

// DecodeDelivery parses a raw datagram from RecvChan.
func DecodeDelivery(dg transport.Datagram) (subj string, payload []byte, err error) {
	kind, fields, err := decodeBrokerMsg(dg.Payload)
	if err != nil {
		return "", nil, err
	}
	if kind != brokerDeliver {
		return "", nil, fmt.Errorf("kind %c: %w", kind, ErrBadMsg)
	}
	return fields[0], []byte(fields[1]), nil
}

// Close detaches the client.
func (c *BrokerClient) Close() error { return c.ep.Close() }

func encodeBrokerMsg(kind byte, a, b string) []byte {
	out := []byte{kind}
	out = binary.AppendUvarint(out, uint64(len(a)))
	out = append(out, a...)
	out = binary.AppendUvarint(out, uint64(len(b)))
	out = append(out, b...)
	return out
}

func decodeBrokerMsg(data []byte) (byte, [2]string, error) {
	var fields [2]string
	if len(data) < 1 {
		return 0, fields, ErrBadMsg
	}
	kind := data[0]
	pos := 1
	for i := 0; i < 2; i++ {
		n, used := binary.Uvarint(data[pos:])
		if used <= 0 || pos+used+int(n) > len(data) {
			return 0, fields, ErrBadMsg
		}
		pos += used
		fields[i] = string(data[pos : pos+int(n)])
		pos += int(n)
	}
	if pos != len(data) {
		return 0, fields, ErrBadMsg
	}
	return kind, fields, nil
}
