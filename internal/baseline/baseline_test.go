package baseline

import (
	"sync"
	"testing"
	"time"

	"infobus/internal/netsim"
	"infobus/internal/transport"
)

func TestTupleSpaceOutRd(t *testing.T) {
	ts := NewTupleSpace()
	defer ts.Close()
	if err := ts.Out(Tuple{"quote", "GMC", int64(101)}); err != nil {
		t.Fatal(err)
	}
	if err := ts.Out(Tuple{"quote", "IBM", int64(88)}); err != nil {
		t.Fatal(err)
	}
	// Exact match.
	got, ok := ts.RdP(Tuple{"quote", "GMC", int64(101)})
	if !ok || got[2] != int64(101) {
		t.Fatalf("RdP exact = %v, %v", got, ok)
	}
	// Formal (wildcard) fields.
	got, ok = ts.RdP(Tuple{"quote", "IBM", Wildcard{Kind: "int"}})
	if !ok || got[2] != int64(88) {
		t.Fatalf("RdP formal = %v, %v", got, ok)
	}
	// Kind mismatch does not match.
	if _, ok := ts.RdP(Tuple{"quote", "IBM", Wildcard{Kind: "string"}}); ok {
		t.Error("wrong-kind wildcard matched")
	}
	// Arity must match.
	if _, ok := ts.RdP(Tuple{"quote", "GMC"}); ok {
		t.Error("shorter template matched")
	}
	if ts.Len() != 2 {
		t.Errorf("Rd must not remove: Len = %d", ts.Len())
	}
}

func TestTupleSpaceInRemoves(t *testing.T) {
	ts := NewTupleSpace()
	defer ts.Close()
	_ = ts.Out(Tuple{"job", int64(1)})
	_ = ts.Out(Tuple{"job", int64(2)})
	got, ok := ts.InP(Tuple{"job", Wildcard{Kind: "int"}})
	if !ok || got[0] != "job" {
		t.Fatalf("InP = %v, %v", got, ok)
	}
	if ts.Len() != 1 {
		t.Errorf("Len after In = %d", ts.Len())
	}
	if _, ok := ts.InP(Tuple{"nosuch"}); ok {
		t.Error("InP matched nothing")
	}
}

func TestTupleSpaceBlockingIn(t *testing.T) {
	ts := NewTupleSpace()
	defer ts.Close()
	done := make(chan Tuple, 1)
	go func() {
		done <- ts.In(Tuple{"result", Wildcard{}})
	}()
	time.Sleep(10 * time.Millisecond)
	if err := ts.Out(Tuple{"result", 3.14}); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-done:
		if got[1] != 3.14 {
			t.Errorf("In = %v", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("blocked In never woke")
	}
	// The tuple was consumed by the waiter, not stored.
	if ts.Len() != 0 {
		t.Errorf("Len = %d", ts.Len())
	}
}

func TestTupleSpaceBlockingRdKeepsTuple(t *testing.T) {
	ts := NewTupleSpace()
	defer ts.Close()
	done := make(chan Tuple, 1)
	go func() { done <- ts.Rd(Tuple{"x", Wildcard{}}) }()
	time.Sleep(10 * time.Millisecond)
	_ = ts.Out(Tuple{"x", int64(1)})
	<-done
	if ts.Len() != 1 {
		t.Errorf("Rd waiter consumed the tuple: Len = %d", ts.Len())
	}
}

func TestTupleSpaceCloseWakesWaiters(t *testing.T) {
	ts := NewTupleSpace()
	done := make(chan Tuple, 1)
	go func() { done <- ts.In(Tuple{"never"}) }()
	time.Sleep(10 * time.Millisecond)
	ts.Close()
	select {
	case got := <-done:
		if got != nil {
			t.Errorf("In after close = %v", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter never woke on close")
	}
	if err := ts.Out(Tuple{"x"}); err != ErrSpaceClosed {
		t.Errorf("Out after close = %v", err)
	}
}

func TestTupleSpaceConcurrent(t *testing.T) {
	ts := NewTupleSpace()
	defer ts.Close()
	var wg sync.WaitGroup
	const n = 50
	for w := 0; w < 4; w++ {
		wg.Add(2)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				_ = ts.Out(Tuple{"work", int64(w), int64(i)})
			}
		}(w)
		go func() {
			defer wg.Done()
			for i := 0; i < n; i++ {
				ts.In(Tuple{"work", Wildcard{Kind: "int"}, Wildcard{Kind: "int"}})
			}
		}()
	}
	wg.Wait()
	if ts.Len() != 0 {
		t.Errorf("Len = %d after balanced produce/consume", ts.Len())
	}
}

func TestBrokerPubSub(t *testing.T) {
	cfg := netsim.DefaultConfig()
	cfg.Speedup = 5000
	seg := transport.NewSimSegment(cfg)
	defer seg.Close()
	broker, err := NewBroker(seg)
	if err != nil {
		t.Fatal(err)
	}
	defer broker.Close()

	var clients []*BrokerClient
	for i := 0; i < 3; i++ {
		c, err := NewBrokerClient(seg, broker.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if err := c.Subscribe("news.>"); err != nil {
			t.Fatal(err)
		}
		clients = append(clients, c)
	}
	pub, err := NewBrokerClient(seg, broker.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()

	// Give the subscriptions time to reach the central database.
	deadline := time.After(5 * time.Second)
	for broker.Stats().Subscribes < 3 {
		select {
		case <-deadline:
			t.Fatalf("subscribes = %d", broker.Stats().Subscribes)
		case <-time.After(2 * time.Millisecond):
		}
	}

	if err := pub.Publish("news.equity.gmc", []byte("story")); err != nil {
		t.Fatal(err)
	}
	for i, c := range clients {
		subj, payload, ok := c.Recv()
		if !ok || subj != "news.equity.gmc" || string(payload) != "story" {
			t.Fatalf("client %d recv = %q %q %v", i, subj, payload, ok)
		}
	}
	st := broker.Stats()
	// The centralized design's cost: one publication, N unicast copies.
	if st.Publications != 1 || st.Deliveries != 3 {
		t.Errorf("stats = %+v", st)
	}
}

func TestBrokerFiltersBySubject(t *testing.T) {
	cfg := netsim.DefaultConfig()
	cfg.Speedup = 5000
	seg := transport.NewSimSegment(cfg)
	defer seg.Close()
	broker, _ := NewBroker(seg)
	defer broker.Close()
	c, _ := NewBrokerClient(seg, broker.Addr())
	defer c.Close()
	_ = c.Subscribe("sports.*")
	deadline := time.After(5 * time.Second)
	for broker.Stats().Subscribes < 1 {
		select {
		case <-deadline:
			t.Fatal("subscribe lost")
		case <-time.After(2 * time.Millisecond):
		}
	}
	pub, _ := NewBrokerClient(seg, broker.Addr())
	defer pub.Close()
	_ = pub.Publish("news.equity.gmc", []byte("x"))
	_ = pub.Publish("sports.hockey", []byte("goal"))
	subj, payload, ok := c.Recv()
	if !ok || subj != "sports.hockey" || string(payload) != "goal" {
		t.Fatalf("recv = %q %q %v", subj, payload, ok)
	}
}

func TestBrokerMsgCodec(t *testing.T) {
	enc := encodeBrokerMsg(brokerPub, "a.b", "payload")
	kind, fields, err := decodeBrokerMsg(enc)
	if err != nil || kind != brokerPub || fields[0] != "a.b" || fields[1] != "payload" {
		t.Fatalf("round trip = %c %v %v", kind, fields, err)
	}
	for i := 0; i < len(enc); i++ {
		if _, _, err := decodeBrokerMsg(enc[:i]); err == nil {
			t.Fatalf("truncated message of %d bytes decoded", i)
		}
	}
	if _, _, err := decodeBrokerMsg(append(enc, 1)); err == nil {
		t.Error("trailing bytes accepted")
	}
}
