// Package baseline implements two comparison systems from the paper's
// related-work section (§6), used by the ablation benchmarks:
//
//   - a Linda-style tuple space (Carriero & Gelernter): generative
//     communication with attribute-qualification matching. The paper
//     argues this "is more general than most applications require ...
//     subject names are quite adequate for our needs, and they are far
//     easier to implement than attribute qualification. We also argue
//     that subject-based addressing scales more easily, and has better
//     performance"; BenchmarkAblationSubjectVsTuple quantifies that.
//
//   - a Zephyr-style centralized notification broker: subscriptions live
//     in a central location database and every publication is unicast
//     from the broker to each subscriber — "this mechanism is inefficient
//     if the number of interested clients is very large";
//     BenchmarkAblationBroadcastVsBroker quantifies that against the
//     bus's single Ethernet broadcast.
package baseline

import (
	"errors"
	"sync"
)

// Tuple is an ordered list of typed fields (Linda tuples "are lists of
// typed data fields").
type Tuple []any

// Wildcard is a formal (typed placeholder) field in a template: it matches
// any value of the given kind.
type Wildcard struct {
	// Kind names the Go dynamic type required: "int", "float", "string",
	// "bool", "bytes". Empty matches anything.
	Kind string
}

// TupleSpace errors.
var (
	ErrSpaceClosed = errors.New("baseline: tuple space closed")
)

// TupleSpace is an in-memory Linda tuple space. Tuples persist until
// explicitly removed with In.
type TupleSpace struct {
	mu      sync.Mutex
	tuples  []Tuple
	waiters []*waiter
	closed  bool
}

type waiter struct {
	template Tuple
	remove   bool
	ch       chan Tuple
}

// NewTupleSpace creates an empty tuple space.
func NewTupleSpace() *TupleSpace {
	return &TupleSpace{}
}

// Out stores a tuple in tuple space ("like one process broadcasting a
// tuple to many other processes").
func (ts *TupleSpace) Out(t Tuple) error {
	cp := append(Tuple(nil), t...)
	ts.mu.Lock()
	if ts.closed {
		ts.mu.Unlock()
		return ErrSpaceClosed
	}
	// A blocked In/Rd may be waiting for exactly this tuple.
	for i, w := range ts.waiters {
		if matches(w.template, cp) {
			ts.waiters = append(ts.waiters[:i], ts.waiters[i+1:]...)
			if !w.remove {
				ts.tuples = append(ts.tuples, cp)
			}
			ts.mu.Unlock()
			w.ch <- cp
			return nil
		}
	}
	ts.tuples = append(ts.tuples, cp)
	ts.mu.Unlock()
	return nil
}

// InP removes and returns a tuple matching the template without blocking.
func (ts *TupleSpace) InP(template Tuple) (Tuple, bool) {
	return ts.take(template, true)
}

// RdP returns (without removing) a matching tuple without blocking.
func (ts *TupleSpace) RdP(template Tuple) (Tuple, bool) {
	return ts.take(template, false)
}

// In removes and returns a matching tuple, blocking until one exists or
// the space closes (nil return).
func (ts *TupleSpace) In(template Tuple) Tuple {
	return ts.block(template, true)
}

// Rd returns a matching tuple without removing it, blocking until one
// exists or the space closes (nil return).
func (ts *TupleSpace) Rd(template Tuple) Tuple {
	return ts.block(template, false)
}

// Len returns the number of stored tuples.
func (ts *TupleSpace) Len() int {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return len(ts.tuples)
}

// Close wakes all blocked operations with nil results.
func (ts *TupleSpace) Close() {
	ts.mu.Lock()
	if ts.closed {
		ts.mu.Unlock()
		return
	}
	ts.closed = true
	waiters := ts.waiters
	ts.waiters = nil
	ts.mu.Unlock()
	for _, w := range waiters {
		close(w.ch)
	}
}

func (ts *TupleSpace) take(template Tuple, remove bool) (Tuple, bool) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	// Attribute qualification: linear scan over the whole space — this is
	// precisely the cost the paper contrasts with subject addressing.
	for i, t := range ts.tuples {
		if matches(template, t) {
			if remove {
				ts.tuples = append(ts.tuples[:i], ts.tuples[i+1:]...)
			}
			return t, true
		}
	}
	return nil, false
}

func (ts *TupleSpace) block(template Tuple, remove bool) Tuple {
	ts.mu.Lock()
	if ts.closed {
		ts.mu.Unlock()
		return nil
	}
	for i, t := range ts.tuples {
		if matches(template, t) {
			if remove {
				ts.tuples = append(ts.tuples[:i], ts.tuples[i+1:]...)
			}
			ts.mu.Unlock()
			return t
		}
	}
	w := &waiter{template: append(Tuple(nil), template...), remove: remove, ch: make(chan Tuple, 1)}
	ts.waiters = append(ts.waiters, w)
	ts.mu.Unlock()
	return <-w.ch
}

// matches implements per-field attribute qualification: actual fields by
// equality, Wildcard formals by dynamic kind.
func matches(template, t Tuple) bool {
	if len(template) != len(t) {
		return false
	}
	for i, f := range template {
		if w, ok := f.(Wildcard); ok {
			if !kindMatches(w.Kind, t[i]) {
				return false
			}
			continue
		}
		if !fieldEqual(f, t[i]) {
			return false
		}
	}
	return true
}

func kindMatches(kind string, v any) bool {
	switch kind {
	case "":
		return true
	case "int":
		_, ok := v.(int64)
		return ok
	case "float":
		_, ok := v.(float64)
		return ok
	case "string":
		_, ok := v.(string)
		return ok
	case "bool":
		_, ok := v.(bool)
		return ok
	case "bytes":
		_, ok := v.([]byte)
		return ok
	default:
		return false
	}
}

func fieldEqual(a, b any) bool {
	if ab, ok := a.([]byte); ok {
		bb, ok := b.([]byte)
		if !ok || len(ab) != len(bb) {
			return false
		}
		for i := range ab {
			if ab[i] != bb[i] {
				return false
			}
		}
		return true
	}
	return a == b
}
