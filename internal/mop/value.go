package mop

import (
	"errors"
	"fmt"
	"time"
)

// Value is the dynamic representation of a data value on the bus. The
// permitted dynamic types are:
//
//	bool                    KindBool
//	int64                   KindInt
//	float64                 KindFloat
//	string                  KindString
//	[]byte                  KindBytes
//	time.Time               KindTime
//	List                    KindList (and values of KindAny slots)
//	*Object                 KindClass
//	nil                     absent class/list/bytes/any value
//
// Values are checked against declared types on every Set, so an Object can
// never hold an attribute value inconsistent with its type descriptor.
type Value = any

// List is the dynamic representation of a list value.
type List []Value

// Errors reported by value checking.
var (
	ErrTypeMismatch = errors.New("mop: value does not conform to type")
	ErrBadValue     = errors.New("mop: unsupported dynamic value")
)

// ValueType returns the most specific Type of a dynamic value. Lists yield
// list<any> unless empty (the declared type carries element information;
// a dynamic list alone cannot). Nil has no type and returns nil.
func ValueType(v Value) *Type {
	switch x := v.(type) {
	case nil:
		return nil
	case bool:
		return Bool
	case int64:
		return Int
	case float64:
		return Float
	case string:
		return String
	case []byte:
		return Bytes
	case time.Time:
		return Time
	case List:
		return ListOf(Any)
	case *Object:
		if x == nil {
			return nil
		}
		return x.Type()
	default:
		return nil
	}
}

// CheckValue verifies that the dynamic value v conforms to the declared
// type t. Class- and list-typed slots (and Any) accept nil.
func CheckValue(t *Type, v Value) error {
	if t == nil {
		return fmt.Errorf("nil type: %w", ErrTypeMismatch)
	}
	switch t.kind {
	case KindAny:
		return checkAny(v)
	case KindBool:
		if _, ok := v.(bool); !ok {
			return mismatch(t, v)
		}
	case KindInt:
		if _, ok := v.(int64); !ok {
			return mismatch(t, v)
		}
	case KindFloat:
		if _, ok := v.(float64); !ok {
			return mismatch(t, v)
		}
	case KindString:
		if _, ok := v.(string); !ok {
			return mismatch(t, v)
		}
	case KindBytes:
		if v == nil {
			return nil
		}
		if _, ok := v.([]byte); !ok {
			return mismatch(t, v)
		}
	case KindTime:
		if _, ok := v.(time.Time); !ok {
			return mismatch(t, v)
		}
	case KindList:
		if v == nil {
			return nil
		}
		l, ok := v.(List)
		if !ok {
			return mismatch(t, v)
		}
		for i, e := range l {
			if err := CheckValue(t.elem, e); err != nil {
				return fmt.Errorf("list element %d: %w", i, err)
			}
		}
	case KindClass:
		if v == nil {
			return nil
		}
		o, ok := v.(*Object)
		if !ok {
			return mismatch(t, v)
		}
		if o == nil {
			return nil
		}
		if !o.Type().IsSubtypeOf(t) {
			return fmt.Errorf("object of class %q is not a subtype of %q: %w",
				o.Type().Name(), t.Name(), ErrTypeMismatch)
		}
	default:
		return fmt.Errorf("type %q has invalid kind: %w", t.Name(), ErrTypeMismatch)
	}
	return nil
}

// checkAny verifies that v is one of the permitted dynamic representations,
// recursively for lists.
func checkAny(v Value) error {
	switch x := v.(type) {
	case nil, bool, int64, float64, string, []byte, time.Time, *Object:
		return nil
	case List:
		for i, e := range x {
			if err := checkAny(e); err != nil {
				return fmt.Errorf("list element %d: %w", i, err)
			}
		}
		return nil
	default:
		return fmt.Errorf("dynamic type %T: %w", v, ErrBadValue)
	}
}

func mismatch(t *Type, v Value) error {
	return fmt.Errorf("value of dynamic type %T does not conform to %q: %w", v, t.Name(), ErrTypeMismatch)
}

// ZeroValue returns the zero value for a declared type: false, 0, 0.0, "",
// the zero time, and nil for bytes, lists, classes, and any.
func ZeroValue(t *Type) Value {
	switch t.kind {
	case KindBool:
		return false
	case KindInt:
		return int64(0)
	case KindFloat:
		return float64(0)
	case KindString:
		return ""
	case KindTime:
		return time.Time{}
	default:
		return nil
	}
}

// EqualValues reports deep equality of two dynamic values. Objects compare
// by type identity and attribute-wise equality; times by time.Time.Equal.
func EqualValues(a, b Value) bool {
	switch x := a.(type) {
	case nil:
		return b == nil
	case bool:
		y, ok := b.(bool)
		return ok && x == y
	case int64:
		y, ok := b.(int64)
		return ok && x == y
	case float64:
		y, ok := b.(float64)
		return ok && x == y
	case string:
		y, ok := b.(string)
		return ok && x == y
	case time.Time:
		y, ok := b.(time.Time)
		return ok && x.Equal(y)
	case []byte:
		y, ok := b.([]byte)
		if !ok || len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	case List:
		y, ok := b.(List)
		if !ok || len(x) != len(y) {
			return false
		}
		for i := range x {
			if !EqualValues(x[i], y[i]) {
				return false
			}
		}
		return true
	case *Object:
		y, ok := b.(*Object)
		if !ok {
			return false
		}
		return x.Equal(y)
	default:
		return false
	}
}

// CloneValue returns a deep copy of a dynamic value. Objects and lists are
// copied recursively; scalars are returned as-is.
func CloneValue(v Value) Value {
	switch x := v.(type) {
	case []byte:
		return append([]byte(nil), x...)
	case List:
		out := make(List, len(x))
		for i, e := range x {
			out[i] = CloneValue(e)
		}
		return out
	case *Object:
		if x == nil {
			return (*Object)(nil)
		}
		return x.Clone()
	default:
		return v
	}
}
