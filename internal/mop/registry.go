package mop

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Registry maps type names to class descriptors. It is the run-time type
// universe of one application or service: TDL definitions, wire decoding,
// and the Object Repository all register and look up classes here.
//
// A Registry is safe for concurrent use. Fundamental type names are
// implicitly present and cannot be redefined.
type Registry struct {
	mu      sync.RWMutex
	classes map[string]*Type
	watch   []chan *Type
}

// Registry errors.
var (
	ErrTypeExists   = errors.New("mop: type already registered")
	ErrTypeUnknown  = errors.New("mop: unknown type")
	ErrReservedName = errors.New("mop: name reserved for a fundamental type")
	ErrNotAClass    = errors.New("mop: only class types can be registered")
)

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{classes: make(map[string]*Type)}
}

// Register adds a class under its name, along with every class it
// references transitively — supertypes, attribute types, and operation
// parameter/result types — so that a registered interface makes its whole
// type closure resolvable. Registering the identical descriptor again is a
// no-op; registering a different class under an existing name fails (types
// are immutable; evolution happens by defining subtypes or new types, not
// mutating old ones).
func (r *Registry) Register(t *Type) error {
	return r.register(t, make(map[*Type]bool))
}

func (r *Registry) register(t *Type, visiting map[*Type]bool) error {
	if t == nil || t.kind != KindClass {
		return ErrNotAClass
	}
	if visiting[t] {
		return nil
	}
	visiting[t] = true
	if isFundamentalName(t.name) {
		return fmt.Errorf("%q: %w", t.name, ErrReservedName)
	}
	r.mu.Lock()
	prev, ok := r.classes[t.name]
	if ok && prev != t {
		r.mu.Unlock()
		return fmt.Errorf("%q: %w", t.name, ErrTypeExists)
	}
	var watchers []chan *Type
	if !ok {
		r.classes[t.name] = t
		watchers = append([]chan *Type(nil), r.watch...)
	}
	r.mu.Unlock()
	for _, ch := range watchers {
		select {
		case ch <- t:
		default: // a slow watcher must not block type registration
		}
	}
	if ok {
		return nil // closure was registered when t first arrived
	}
	// Register the referenced classes.
	for _, s := range t.supers {
		if err := r.register(s, visiting); err != nil {
			return err
		}
	}
	regRef := func(rt *Type) error {
		for rt != nil && rt.kind == KindList {
			rt = rt.elem
		}
		if rt != nil && rt.kind == KindClass {
			return r.register(rt, visiting)
		}
		return nil
	}
	for _, a := range t.own {
		if err := regRef(a.Type); err != nil {
			return err
		}
	}
	for _, op := range t.ops {
		for _, p := range op.Params {
			if err := regRef(p.Type); err != nil {
				return err
			}
		}
		if err := regRef(op.Result); err != nil {
			return err
		}
	}
	return nil
}

// Lookup resolves a type name: fundamental names, list<...> names of
// resolvable element types, and registered classes.
func (r *Registry) Lookup(name string) (*Type, error) {
	if t := fundamentalByName(name); t != nil {
		return t, nil
	}
	if inner, ok := listElemName(name); ok {
		elem, err := r.Lookup(inner)
		if err != nil {
			return nil, err
		}
		return ListOf(elem), nil
	}
	r.mu.RLock()
	t, ok := r.classes[name]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%q: %w", name, ErrTypeUnknown)
	}
	return t, nil
}

// Has reports whether a class name is registered (fundamentals excluded).
func (r *Registry) Has(name string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.classes[name]
	return ok
}

// Classes returns all registered classes sorted by name.
func (r *Registry) Classes() []*Type {
	r.mu.RLock()
	out := make([]*Type, 0, len(r.classes))
	for _, t := range r.classes {
		out = append(out, t)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// Len returns the number of registered classes.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.classes)
}

// SubtypesOf returns every registered class that is a subtype of base
// (including base itself, if registered). The Object Repository uses this
// to answer supertype queries over the type hierarchy (§4).
func (r *Registry) SubtypesOf(base *Type) []*Type {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []*Type
	for _, t := range r.classes {
		if t.IsSubtypeOf(base) {
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// Watch returns a channel receiving every class registered after the call.
// Services that adapt to new types at run time (repository capture servers,
// monitors) subscribe here. The channel is buffered; extremely slow
// consumers may miss notifications and should rescan with Classes.
func (r *Registry) Watch() <-chan *Type {
	ch := make(chan *Type, 64)
	r.mu.Lock()
	r.watch = append(r.watch, ch)
	r.mu.Unlock()
	return ch
}

func isFundamentalName(name string) bool {
	return fundamentalByName(name) != nil
}

func fundamentalByName(name string) *Type {
	for _, t := range Fundamentals() {
		if t.name == name {
			return t
		}
	}
	return nil
}

// listElemName extracts E from "list<E>".
func listElemName(name string) (string, bool) {
	const pre = "list<"
	if len(name) > len(pre)+1 && name[:len(pre)] == pre && name[len(name)-1] == '>' {
		return name[len(pre) : len(name)-1], true
	}
	return "", false
}
