package mop

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Print is the generic print utility from §3 of the paper: it accepts any
// value of any type and produces a text description, using only the
// meta-object protocol. It examines the value to determine its type and
// recursively descends into the components of complex objects. It
// understands only the fundamental kinds, yet prints objects of any type
// composed of them — the canonical demonstration of principle P2.
func Print(w io.Writer, v Value) error {
	p := printer{w: w}
	p.value(v, 0)
	return p.err
}

// Sprint renders a value to a string using Print.
func Sprint(v Value) string {
	var b strings.Builder
	_ = Print(&b, v)
	return b.String()
}

type printer struct {
	w   io.Writer
	err error
}

func (p *printer) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

func (p *printer) value(v Value, depth int) {
	switch x := v.(type) {
	case nil:
		p.printf("nil")
	case bool:
		p.printf("%t", x)
	case int64:
		p.printf("%d", x)
	case float64:
		p.printf("%g", x)
	case string:
		p.printf("%q", x)
	case []byte:
		p.printf("bytes[%d]", len(x))
	case time.Time:
		p.printf("%s", x.UTC().Format(time.RFC3339Nano))
	case List:
		p.printf("[")
		for i, e := range x {
			if i > 0 {
				p.printf(", ")
			}
			p.value(e, depth)
		}
		p.printf("]")
	case *Object:
		p.object(x, depth)
	default:
		p.printf("<unprintable %T>", v)
	}
}

func (p *printer) object(o *Object, depth int) {
	if o == nil {
		p.printf("nil")
		return
	}
	indent := strings.Repeat("  ", depth+1)
	p.printf("%s {\n", o.Type().Name())
	for _, a := range o.Type().Attrs() {
		p.printf("%s%s: ", indent, a.Name)
		p.value(o.MustGet(a.Name), depth+1)
		p.printf("\n")
	}
	p.printf("%s}", strings.Repeat("  ", depth))
}

// Describe renders a type's full interface — name, supertypes, attributes
// with their types, and operation signatures — as the introspection tools
// (class browsers, the Graphical Application Builder) would show it.
func Describe(w io.Writer, t *Type) error {
	if t == nil {
		_, err := io.WriteString(w, "<nil type>\n")
		return err
	}
	var b strings.Builder
	switch t.Kind() {
	case KindClass:
		b.WriteString("class " + t.Name())
		if len(t.Supertypes()) > 0 {
			names := make([]string, len(t.Supertypes()))
			for i, s := range t.Supertypes() {
				names[i] = s.Name()
			}
			b.WriteString(" : " + strings.Join(names, ", "))
		}
		b.WriteString(" {\n")
		for _, a := range t.Attrs() {
			fmt.Fprintf(&b, "  %s %s\n", a.Name, a.Type.Name())
		}
		for _, op := range t.Operations() {
			fmt.Fprintf(&b, "  %s\n", op.Signature())
		}
		b.WriteString("}\n")
	case KindList:
		fmt.Fprintf(&b, "list of %s\n", t.Elem().Name())
	default:
		fmt.Fprintf(&b, "fundamental type %s\n", t.Name())
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// DescribeString is Describe to a string.
func DescribeString(t *Type) string {
	var b strings.Builder
	_ = Describe(&b, t)
	return b.String()
}
