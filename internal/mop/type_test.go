package mop

import (
	"errors"
	"strings"
	"testing"
)

func storyType(t *testing.T) (*Type, *Type) {
	t.Helper()
	story, err := NewClass("Story", nil, []Attr{
		{Name: "headline", Type: String},
		{Name: "body", Type: String},
		{Name: "sources", Type: ListOf(String)},
	}, []Operation{
		{Name: "summary", Result: String},
	})
	if err != nil {
		t.Fatal(err)
	}
	dj, err := NewClass("DowJonesStory", []*Type{story}, []Attr{
		{Name: "djCode", Type: String},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return story, dj
}

func TestNewClassBasics(t *testing.T) {
	story, dj := storyType(t)
	if story.Kind() != KindClass {
		t.Fatalf("Kind = %v", story.Kind())
	}
	if story.NumAttrs() != 3 {
		t.Errorf("Story attrs = %d, want 3", story.NumAttrs())
	}
	if dj.NumAttrs() != 4 {
		t.Errorf("DowJonesStory attrs = %d, want 4 (inherited + own)", dj.NumAttrs())
	}
	// Inherited attributes come first, preserving supertype slot order.
	attrs := dj.Attrs()
	wantOrder := []string{"headline", "body", "sources", "djCode"}
	for i, w := range wantOrder {
		if attrs[i].Name != w {
			t.Errorf("attr[%d] = %q, want %q", i, attrs[i].Name, w)
		}
	}
	if a, ok := dj.Attr("headline"); !ok || !Same(a.Type, String) {
		t.Error("inherited attribute lookup failed")
	}
	if _, ok := dj.Attr("nope"); ok {
		t.Error("Attr should fail for unknown name")
	}
	if op, ok := dj.Operation("summary"); !ok || op.Name != "summary" {
		t.Error("inherited operation lookup failed")
	}
}

func TestNewClassErrors(t *testing.T) {
	story, _ := storyType(t)
	cases := []struct {
		name   string
		supers []*Type
		attrs  []Attr
		want   error
	}{
		{"", nil, nil, ErrBadTypeName},
		{"has space", nil, nil, ErrBadTypeName},
		{"has<angle", nil, nil, ErrBadTypeName},
		{"Dup", nil, []Attr{{Name: "x", Type: Int}, {Name: "x", Type: Int}}, ErrDupAttr},
		{"NilType", nil, []Attr{{Name: "x", Type: nil}}, ErrNilAttrType},
		{"EmptyAttr", nil, []Attr{{Name: "", Type: Int}}, ErrEmptyAttrName},
		{"BadSuper", []*Type{Int}, nil, ErrBadSupertype},
		{"BadSuperNil", []*Type{nil}, nil, ErrBadSupertype},
		{"Conflict", []*Type{story}, []Attr{{Name: "headline", Type: Int}}, ErrAttrConflict},
	}
	for _, c := range cases {
		_, err := NewClass(c.name, c.supers, c.attrs, nil)
		if !errors.Is(err, c.want) {
			t.Errorf("NewClass(%q) error = %v, want %v", c.name, err, c.want)
		}
	}
}

func TestRedeclareInheritedSameType(t *testing.T) {
	story, _ := storyType(t)
	sub, err := NewClass("Sub", []*Type{story}, []Attr{{Name: "headline", Type: String}}, nil)
	if err != nil {
		t.Fatalf("redeclaring with same type should be allowed: %v", err)
	}
	if sub.NumAttrs() != 3 {
		t.Errorf("attrs = %d, want 3 (no duplicate slot)", sub.NumAttrs())
	}
}

func TestMultipleInheritance(t *testing.T) {
	a := MustNewClass("A", nil, []Attr{{Name: "x", Type: Int}}, []Operation{{Name: "f", Result: Int}})
	b := MustNewClass("B", nil, []Attr{{Name: "y", Type: Int}}, []Operation{{Name: "f", Result: String}, {Name: "g"}})
	c, err := NewClass("C", []*Type{a, b}, []Attr{{Name: "z", Type: Int}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumAttrs() != 3 {
		t.Errorf("attrs = %d, want 3", c.NumAttrs())
	}
	// Leftmost supertype's operation shadows, CLOS-style.
	op, ok := c.Operation("f")
	if !ok || !Same(op.Result, Int) {
		t.Errorf("operation f = %+v, want result int from leftmost supertype", op)
	}
	if _, ok := c.Operation("g"); !ok {
		t.Error("operation g should be inherited")
	}
	if !c.IsSubtypeOf(a) || !c.IsSubtypeOf(b) || !c.IsSubtypeOf(c) {
		t.Error("subtype relation broken under multiple inheritance")
	}
	if a.IsSubtypeOf(c) {
		t.Error("supertype must not be a subtype of its subtype")
	}
}

func TestDiamondInheritance(t *testing.T) {
	root := MustNewClass("Root", nil, []Attr{{Name: "id", Type: Int}}, nil)
	l := MustNewClass("L", []*Type{root}, []Attr{{Name: "lv", Type: Int}}, nil)
	r := MustNewClass("R", []*Type{root}, []Attr{{Name: "rv", Type: Int}}, nil)
	d, err := NewClass("D", []*Type{l, r}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// "id" arrives via both paths but must occupy a single slot.
	if d.NumAttrs() != 3 {
		t.Errorf("attrs = %d, want 3 (id, lv, rv)", d.NumAttrs())
	}
	if !d.IsSubtypeOf(root) {
		t.Error("diamond subtype relation broken")
	}
}

func TestSameAndAssignable(t *testing.T) {
	story, dj := storyType(t)
	if !Same(ListOf(String), ListOf(String)) {
		t.Error("structurally identical list types should be Same")
	}
	if Same(ListOf(String), ListOf(Int)) {
		t.Error("lists of different elements are not Same")
	}
	if Same(story, dj) {
		t.Error("distinct classes are not Same")
	}
	other := MustNewClass("Story2", nil, []Attr{{Name: "headline", Type: String}}, nil)
	if Same(story, other) {
		t.Error("classes are nominal: same shape is still a different class")
	}
	if !dj.AssignableTo(story) {
		t.Error("subtype should be assignable to supertype")
	}
	if story.AssignableTo(dj) {
		t.Error("supertype must not be assignable to subtype")
	}
	if !Int.AssignableTo(Any) || !story.AssignableTo(Any) {
		t.Error("everything is assignable to any")
	}
	if Int.AssignableTo(Float) {
		t.Error("int is not assignable to float")
	}
}

func TestOperationSignature(t *testing.T) {
	op := Operation{
		Name:   "lookup",
		Params: []Param{{Name: "key", Type: String}, {Name: "max", Type: Int}},
		Result: ListOf(String),
	}
	want := "lookup(key string, max int) -> list<string>"
	if got := op.Signature(); got != want {
		t.Errorf("Signature = %q, want %q", got, want)
	}
	noResult := Operation{Name: "ping"}
	if got := noResult.Signature(); got != "ping()" {
		t.Errorf("Signature = %q", got)
	}
}

func TestDescribe(t *testing.T) {
	_, dj := storyType(t)
	s := DescribeString(dj)
	for _, want := range []string{"class DowJonesStory : Story", "headline string", "djCode string", "summary() -> string"} {
		if !strings.Contains(s, want) {
			t.Errorf("Describe output missing %q:\n%s", want, s)
		}
	}
	if got := DescribeString(ListOf(Int)); !strings.Contains(got, "list of int") {
		t.Errorf("Describe list = %q", got)
	}
	if got := DescribeString(Int); !strings.Contains(got, "fundamental type int") {
		t.Errorf("Describe fundamental = %q", got)
	}
}
