package mop_test

import (
	"fmt"

	"infobus/internal/mop"
)

// Classes are defined at run time; instances are created, mutated, and
// introspected entirely through the meta-object protocol.
func ExampleNewClass() {
	group, _ := mop.NewClass("IndustryGroup", nil, []mop.Attr{
		{Name: "code", Type: mop.String},
		{Name: "weight", Type: mop.Float},
	}, nil)
	story, _ := mop.NewClass("Story", nil, []mop.Attr{
		{Name: "headline", Type: mop.String},
		{Name: "groups", Type: mop.ListOf(group)},
	}, nil)

	obj := mop.MustNew(story).
		MustSet("headline", "GM announces record earnings").
		MustSet("groups", mop.List{
			mop.MustNew(group).MustSet("code", "AUTO").MustSet("weight", 0.8),
		})

	// The generic print utility needs only the fundamental kinds, yet
	// renders any composed type (P2).
	fmt.Println(mop.Sprint(obj))
	// Output:
	// Story {
	//   headline: "GM announces record earnings"
	//   groups: [IndustryGroup {
	//     code: "AUTO"
	//     weight: 0.8
	//   }]
	// }
}

// Introspection walks a type's full interface: attributes and operation
// signatures.
func ExampleDescribeString() {
	service, _ := mop.NewClass("QuoteService", nil, nil, []mop.Operation{
		{Name: "quote", Params: []mop.Param{{Name: "ticker", Type: mop.String}}, Result: mop.Float},
	})
	fmt.Print(mop.DescribeString(service))
	// Output:
	// class QuoteService {
	//   quote(ticker string) -> float
	// }
}
