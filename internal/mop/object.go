package mop

import (
	"errors"
	"fmt"
)

// Object is a dynamic instance of a class type: the data objects the bus
// disseminates. Attribute values live in slots aligned with the flattened
// attribute order of the class, so Get/Set by name cost one map lookup and
// introspective iteration costs a slice walk.
//
// An Object is not internally synchronised; like the paper's data objects it
// is a value that is copied, marshalled, and transmitted. Share between
// goroutines only after Clone or by convention of ownership transfer.
type Object struct {
	typ   *Type
	slots []Value
}

// Errors reported by object attribute access.
var (
	ErrNotClass = errors.New("mop: type is not a class")
	ErrNoAttr   = errors.New("mop: no such attribute")
)

// New creates an instance of a class with every attribute set to its
// declared zero value.
func New(t *Type) (*Object, error) {
	if t == nil {
		return nil, fmt.Errorf("<nil>: %w", ErrNotClass)
	}
	if t.kind != KindClass {
		return nil, fmt.Errorf("%s: %w", t.Name(), ErrNotClass)
	}
	slots := make([]Value, len(t.all))
	for i, a := range t.all {
		slots[i] = ZeroValue(a.Type)
	}
	return &Object{typ: t, slots: slots}, nil
}

// MustNew is New that panics on error.
func MustNew(t *Type) *Object {
	o, err := New(t)
	if err != nil {
		panic(err)
	}
	return o
}

// Type returns the object's class descriptor (the entry point of the
// meta-object protocol for this instance).
func (o *Object) Type() *Type { return o.typ }

// Get returns the value of the named attribute.
func (o *Object) Get(name string) (Value, error) {
	i := o.typ.AttrIndex(name)
	if i < 0 {
		return nil, fmt.Errorf("class %q attribute %q: %w", o.typ.Name(), name, ErrNoAttr)
	}
	return o.slots[i], nil
}

// MustGet is Get that panics on unknown attribute; for attributes the
// caller just obtained from the type descriptor.
func (o *Object) MustGet(name string) Value {
	v, err := o.Get(name)
	if err != nil {
		panic(err)
	}
	return v
}

// Set stores a value into the named attribute after checking it against the
// attribute's declared type.
func (o *Object) Set(name string, v Value) error {
	i := o.typ.AttrIndex(name)
	if i < 0 {
		return fmt.Errorf("class %q attribute %q: %w", o.typ.Name(), name, ErrNoAttr)
	}
	if err := CheckValue(o.typ.all[i].Type, v); err != nil {
		return fmt.Errorf("class %q attribute %q: %w", o.typ.Name(), name, err)
	}
	o.slots[i] = v
	return nil
}

// MustSet is Set that panics on error; for statically known assignments.
func (o *Object) MustSet(name string, v Value) *Object {
	if err := o.Set(name, v); err != nil {
		panic(err)
	}
	return o
}

// GetAt returns the value in slot i (the order of Type().Attrs()).
func (o *Object) GetAt(i int) Value { return o.slots[i] }

// SetAt stores into slot i with type checking.
func (o *Object) SetAt(i int, v Value) error {
	if i < 0 || i >= len(o.slots) {
		return fmt.Errorf("class %q slot %d: %w", o.typ.Name(), i, ErrNoAttr)
	}
	if err := CheckValue(o.typ.all[i].Type, v); err != nil {
		return fmt.Errorf("class %q attribute %q: %w", o.typ.Name(), o.typ.all[i].Name, err)
	}
	o.slots[i] = v
	return nil
}

// Clone returns a deep copy of the object.
func (o *Object) Clone() *Object {
	if o == nil {
		return nil
	}
	slots := make([]Value, len(o.slots))
	for i, v := range o.slots {
		slots[i] = CloneValue(v)
	}
	return &Object{typ: o.typ, slots: slots}
}

// Equal reports whether two objects have the identical class and equal
// attribute values.
func (o *Object) Equal(p *Object) bool {
	if o == nil || p == nil {
		return o == p
	}
	if o.typ != p.typ {
		return false
	}
	for i := range o.slots {
		if !EqualValues(o.slots[i], p.slots[i]) {
			return false
		}
	}
	return true
}

// String renders a compact single-line description, mainly for logs and
// test failure messages. Use Print for the full recursive rendering.
func (o *Object) String() string {
	if o == nil {
		return "<nil>"
	}
	s := o.typ.Name() + "{"
	for i, a := range o.typ.all {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%s:%v", a.Name, o.slots[i])
	}
	return s + "}"
}
