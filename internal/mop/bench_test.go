package mop

import "testing"

// BenchmarkObjectAccess measures attribute get/set through the meta-object
// protocol.
func BenchmarkObjectAccess(b *testing.B) {
	_, dj := storyType(&testing.T{})
	o := MustNew(dj)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := o.Set("headline", "h"); err != nil {
			b.Fatal(err)
		}
		if o.MustGet("headline") != "h" {
			b.Fatal("mismatch")
		}
	}
}

// BenchmarkPrint measures the generic recursive print utility on a nested
// object.
func BenchmarkPrint(b *testing.B) {
	group := MustNewClass("BG", nil, []Attr{{Name: "code", Type: String}}, nil)
	holder := MustNewClass("BH", nil, []Attr{
		{Name: "name", Type: String},
		{Name: "groups", Type: ListOf(group)},
	}, nil)
	o := MustNew(holder).MustSet("name", "x").MustSet("groups", List{
		MustNew(group).MustSet("code", "A"),
		MustNew(group).MustSet("code", "B"),
	})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if Sprint(o) == "" {
			b.Fatal("empty")
		}
	}
}
