package mop

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestObjectLifecycle(t *testing.T) {
	story, dj := storyType(t)
	o := MustNew(dj)
	if o.Type() != dj {
		t.Fatal("Type mismatch")
	}
	// Zero values per declared types.
	if v := o.MustGet("headline"); v != "" {
		t.Errorf("zero headline = %v", v)
	}
	if v := o.MustGet("sources"); v != nil {
		t.Errorf("zero sources = %v", v)
	}
	if err := o.Set("headline", "GM surges"); err != nil {
		t.Fatal(err)
	}
	if err := o.Set("sources", List{"DJ", "wire"}); err != nil {
		t.Fatal(err)
	}
	if err := o.Set("djCode", "GMC"); err != nil {
		t.Fatal(err)
	}
	if v := o.MustGet("headline"); v != "GM surges" {
		t.Errorf("headline = %v", v)
	}
	// Type errors.
	if err := o.Set("headline", int64(5)); !errors.Is(err, ErrTypeMismatch) {
		t.Errorf("Set wrong type error = %v", err)
	}
	if err := o.Set("sources", List{"ok", int64(1)}); !errors.Is(err, ErrTypeMismatch) {
		t.Errorf("Set heterogeneous list error = %v", err)
	}
	if err := o.Set("nope", "x"); !errors.Is(err, ErrNoAttr) {
		t.Errorf("Set unknown attr error = %v", err)
	}
	if _, err := o.Get("nope"); !errors.Is(err, ErrNoAttr) {
		t.Errorf("Get unknown attr error = %v", err)
	}
	_ = story
}

func TestNewRejectsNonClass(t *testing.T) {
	for _, typ := range []*Type{Int, ListOf(String), nil} {
		if _, err := New(typ); !errors.Is(err, ErrNotClass) {
			t.Errorf("New(%v) error = %v, want ErrNotClass", typ, err)
		}
	}
}

func TestSubtypeAssignment(t *testing.T) {
	story, dj := storyType(t)
	holder := MustNewClass("Holder", nil, []Attr{{Name: "story", Type: story}}, nil)
	h := MustNew(holder)
	inst := MustNew(dj)
	if err := h.Set("story", inst); err != nil {
		t.Fatalf("storing subtype instance in supertype slot: %v", err)
	}
	unrelated := MustNew(MustNewClass("Other", nil, nil, nil))
	if err := h.Set("story", unrelated); !errors.Is(err, ErrTypeMismatch) {
		t.Errorf("storing unrelated class error = %v", err)
	}
	if err := h.Set("story", nil); err != nil {
		t.Errorf("nil should be allowed in class slot: %v", err)
	}
}

func TestAnySlot(t *testing.T) {
	prop := MustNewClass("Property", nil, []Attr{
		{Name: "name", Type: String},
		{Name: "value", Type: Any},
	}, nil)
	p := MustNew(prop)
	for _, v := range []Value{int64(5), "str", true, 3.14, List{"a", int64(1)}, nil, time.Unix(10, 0)} {
		if err := p.Set("value", v); err != nil {
			t.Errorf("Any slot rejected %T: %v", v, err)
		}
	}
	if err := p.Set("value", struct{}{}); !errors.Is(err, ErrBadValue) {
		t.Errorf("Any slot accepted unsupported dynamic type: %v", err)
	}
	if err := p.Set("value", List{struct{}{}}); !errors.Is(err, ErrBadValue) {
		t.Errorf("Any slot accepted list with unsupported element: %v", err)
	}
}

func TestSetAtGetAt(t *testing.T) {
	_, dj := storyType(t)
	o := MustNew(dj)
	idx := dj.AttrIndex("djCode")
	if err := o.SetAt(idx, "X"); err != nil {
		t.Fatal(err)
	}
	if o.GetAt(idx) != "X" {
		t.Error("GetAt after SetAt mismatch")
	}
	if err := o.SetAt(99, "X"); !errors.Is(err, ErrNoAttr) {
		t.Errorf("SetAt out of range error = %v", err)
	}
	if err := o.SetAt(idx, int64(1)); !errors.Is(err, ErrTypeMismatch) {
		t.Errorf("SetAt type error = %v", err)
	}
}

func TestCloneAndEqual(t *testing.T) {
	_, dj := storyType(t)
	a := MustNew(dj).
		MustSet("headline", "h").
		MustSet("sources", List{"s1", "s2"}).
		MustSet("djCode", "GMC")
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatal("clone should equal original")
	}
	// Mutating the clone's list must not affect the original (deep copy).
	lst := b.MustGet("sources").(List)
	lst[0] = "mutated"
	if a.MustGet("sources").(List)[0] != "s1" {
		t.Error("Clone is shallow: list mutation leaked")
	}
	b.MustSet("headline", "other")
	if a.Equal(b) {
		t.Error("Equal should detect attribute difference")
	}
	var nilObj *Object
	if nilObj.Clone() != nil {
		t.Error("nil Clone should be nil")
	}
	if !EqualValues(nilObj, (*Object)(nil)) {
		t.Error("nil objects are equal")
	}
}

func TestEqualValuesMatrix(t *testing.T) {
	cases := []struct {
		a, b Value
		want bool
	}{
		{nil, nil, true},
		{nil, int64(0), false},
		{int64(1), int64(1), true},
		{int64(1), int64(2), false},
		{int64(1), 1.0, false},
		{"a", "a", true},
		{[]byte{1, 2}, []byte{1, 2}, true},
		{[]byte{1, 2}, []byte{1, 3}, false},
		{[]byte{1}, []byte{1, 2}, false},
		{List{int64(1)}, List{int64(1)}, true},
		{List{int64(1)}, List{int64(2)}, false},
		{List{}, List{int64(1)}, false},
		{true, true, true},
		{time.Unix(5, 0), time.Unix(5, 0).UTC(), true},
		{time.Unix(5, 0), time.Unix(6, 0), false},
	}
	for _, c := range cases {
		if got := EqualValues(c.a, c.b); got != c.want {
			t.Errorf("EqualValues(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestValueType(t *testing.T) {
	_, dj := storyType(t)
	cases := []struct {
		v    Value
		want *Type
	}{
		{true, Bool},
		{int64(1), Int},
		{1.5, Float},
		{"s", String},
		{[]byte{1}, Bytes},
		{time.Now(), Time},
		{MustNew(dj), dj},
		{nil, nil},
	}
	for _, c := range cases {
		if got := ValueType(c.v); got != c.want {
			t.Errorf("ValueType(%T) = %v, want %v", c.v, got, c.want)
		}
	}
	if got := ValueType(List{}); got.Kind() != KindList {
		t.Errorf("ValueType(List) kind = %v", got.Kind())
	}
}

// Property: CloneValue of any generated value is EqualValues to the
// original.
func TestQuickCloneEqual(t *testing.T) {
	f := func(i int64, s string, bs []byte, fl float64, b bool) bool {
		v := List{i, s, append([]byte(nil), bs...), fl, b, List{i, s}}
		return EqualValues(v, CloneValue(v))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPrintRecursive(t *testing.T) {
	story, dj := storyType(t)
	group := MustNewClass("IndustryGroup", nil, []Attr{
		{Name: "code", Type: String},
		{Name: "weight", Type: Float},
	}, nil)
	rich := MustNewClass("RichStory", []*Type{story}, []Attr{
		{Name: "groups", Type: ListOf(group)},
		{Name: "when", Type: Time},
	}, nil)
	g := MustNew(group).MustSet("code", "AUTO").MustSet("weight", 0.8)
	o := MustNew(rich).
		MustSet("headline", "GM surges").
		MustSet("sources", List{"DJ"}).
		MustSet("groups", List{g}).
		MustSet("when", time.Unix(749000000, 0))
	out := Sprint(o)
	for _, want := range []string{"RichStory {", `headline: "GM surges"`, "IndustryGroup {", `code: "AUTO"`, "weight: 0.8", "1993-09-25"} {
		if !strings.Contains(out, want) {
			t.Errorf("Print output missing %q:\n%s", want, out)
		}
	}
	_ = dj
	// Print handles every fundamental directly.
	if got := Sprint(int64(42)); got != "42" {
		t.Errorf("Sprint(int) = %q", got)
	}
	if got := Sprint(nil); got != "nil" {
		t.Errorf("Sprint(nil) = %q", got)
	}
	if got := Sprint([]byte{1, 2, 3}); got != "bytes[3]" {
		t.Errorf("Sprint(bytes) = %q", got)
	}
	if got := Sprint(List{int64(1), "a"}); got != `[1, "a"]` {
		t.Errorf("Sprint(list) = %q", got)
	}
	if got := Sprint(struct{}{}); !strings.Contains(got, "unprintable") {
		t.Errorf("Sprint(unsupported) = %q", got)
	}
}
