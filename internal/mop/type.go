// Package mop implements the meta-object protocol of the Information Bus
// (SOSP '93, principle P2: self-describing objects).
//
// Every object on the bus is an instance of a Type. A Type is an abstraction
// whose behaviour is defined by an interface: a set of named, typed
// attributes and a set of operations with signatures. Types are organised in
// a supertype/subtype hierarchy. Applications query objects for their type,
// attribute names, attribute types, and operation signatures at run time,
// which is what lets generic tools (the print utility, the Object
// Repository, the News Monitor) handle types they have never seen before.
//
// Types are immutable once constructed, so they are safe to share between
// goroutines without locking. New types can be defined at any time (P3,
// dynamic classing) and registered in a Registry.
package mop

import (
	"errors"
	"fmt"
	"strings"
)

// Kind enumerates the fundamental categories of types. Generic tools such
// as the print utility only need to understand kinds; they recurse through
// class and list structure to reach fundamentals.
type Kind uint8

const (
	KindInvalid Kind = iota
	KindBool
	KindInt    // 64-bit signed integer
	KindFloat  // 64-bit IEEE float
	KindString // UTF-8 string
	KindBytes  // opaque byte sequence
	KindTime   // nanoseconds since the Unix epoch (int64 on the wire)
	KindList   // homogeneous sequence of an element type
	KindClass  // named attributes + operations, with supertypes
	KindAny    // attribute slot that may hold a value of any type
)

var kindNames = [...]string{
	KindInvalid: "invalid",
	KindBool:    "bool",
	KindInt:     "int",
	KindFloat:   "float",
	KindString:  "string",
	KindBytes:   "bytes",
	KindTime:    "time",
	KindList:    "list",
	KindClass:   "class",
	KindAny:     "any",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Attr describes one named, typed attribute (the paper also calls these
// "instance variables" or "fields") of a class.
type Attr struct {
	Name string
	Type *Type
}

// Param describes one parameter of an operation.
type Param struct {
	Name string
	Type *Type
}

// Operation describes one operation in a type's interface: its name, its
// parameter signature, and its result type (nil for no result). The
// meta-object protocol exposes signatures so that tools like the Graphical
// Application Builder can construct dialogues for a service they have never
// seen (§5.2).
type Operation struct {
	Name   string
	Params []Param
	Result *Type
}

// Signature renders the operation as a human-readable signature string.
func (op Operation) Signature() string {
	var b strings.Builder
	b.WriteString(op.Name)
	b.WriteByte('(')
	for i, p := range op.Params {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %s", p.Name, p.Type.Name())
	}
	b.WriteByte(')')
	if op.Result != nil {
		b.WriteString(" -> ")
		b.WriteString(op.Result.Name())
	}
	return b.String()
}

// Type is an immutable type descriptor. Fundamental types are package
// singletons (Bool, Int, ...); list types are interned via ListOf; class
// types are created with NewClass.
type Type struct {
	name   string
	kind   Kind
	elem   *Type // list element type
	supers []*Type
	own    []Attr // attributes declared by this class
	all    []Attr // flattened: inherited first, then own; slot order
	ops    []Operation
	index  map[string]int // attribute name -> slot index in all
	opIdx  map[string]int
}

// Fundamental type singletons. Their names are reserved in every Registry.
var (
	Bool   = &Type{name: "bool", kind: KindBool}
	Int    = &Type{name: "int", kind: KindInt}
	Float  = &Type{name: "float", kind: KindFloat}
	String = &Type{name: "string", kind: KindString}
	Bytes  = &Type{name: "bytes", kind: KindBytes}
	Time   = &Type{name: "time", kind: KindTime}
	Any    = &Type{name: "any", kind: KindAny}
)

// Fundamentals returns the fundamental type singletons in a stable order.
func Fundamentals() []*Type {
	return []*Type{Bool, Int, Float, String, Bytes, Time, Any}
}

// ListOf returns the list type with the given element type. List types are
// structural: two calls with the same element type return equal descriptors
// (same pointer for fundamentals and interned classes is not guaranteed, so
// compare with Same).
func ListOf(elem *Type) *Type {
	if elem == nil {
		panic("mop: ListOf(nil)")
	}
	return &Type{name: "list<" + elem.name + ">", kind: KindList, elem: elem}
}

// Errors reported by NewClass.
var (
	ErrBadTypeName   = errors.New("mop: invalid type name")
	ErrDupAttr       = errors.New("mop: duplicate attribute name")
	ErrDupOperation  = errors.New("mop: duplicate operation name")
	ErrBadSupertype  = errors.New("mop: supertype is not a class")
	ErrNilAttrType   = errors.New("mop: attribute has nil type")
	ErrAttrConflict  = errors.New("mop: attribute conflicts with inherited attribute of different type")
	ErrEmptyAttrName = errors.New("mop: empty attribute name")
)

// NewClass creates a new class type implementing the named type. A class
// may have any number of supertype classes (CLOS-style multiple
// inheritance); inherited attributes are flattened in supertype order,
// duplicates collapsing to the first occurrence. Redeclaring an inherited
// attribute with the identical type is permitted (and is a no-op);
// redeclaring it with a different type is an error.
func NewClass(name string, supers []*Type, attrs []Attr, ops []Operation) (*Type, error) {
	if !validTypeName(name) {
		return nil, fmt.Errorf("%q: %w", name, ErrBadTypeName)
	}
	t := &Type{
		name:   name,
		kind:   KindClass,
		supers: append([]*Type(nil), supers...),
		own:    append([]Attr(nil), attrs...),
		ops:    append([]Operation(nil), ops...),
		index:  make(map[string]int),
		opIdx:  make(map[string]int),
	}
	for _, s := range supers {
		if s == nil || s.kind != KindClass {
			return nil, fmt.Errorf("class %q: %w", name, ErrBadSupertype)
		}
		for _, a := range s.all {
			if j, ok := t.index[a.Name]; ok {
				if !Same(t.all[j].Type, a.Type) {
					return nil, fmt.Errorf("class %q attribute %q: %w", name, a.Name, ErrAttrConflict)
				}
				continue
			}
			t.index[a.Name] = len(t.all)
			t.all = append(t.all, a)
		}
		for _, op := range s.ops {
			if _, ok := t.opIdx[op.Name]; ok {
				continue // first (leftmost) supertype wins, CLOS-style
			}
			t.opIdx[op.Name] = len(t.ops)
			// Inherited operations come after own ones only if not shadowed.
		}
	}
	// Rebuild the operation table: own operations shadow inherited ones.
	t.ops, t.opIdx = flattenOps(name, supers, ops)

	seenOwn := make(map[string]struct{})
	for _, a := range attrs {
		if a.Name == "" {
			return nil, fmt.Errorf("class %q: %w", name, ErrEmptyAttrName)
		}
		if a.Type == nil {
			return nil, fmt.Errorf("class %q attribute %q: %w", name, a.Name, ErrNilAttrType)
		}
		if _, dup := seenOwn[a.Name]; dup {
			return nil, fmt.Errorf("class %q attribute %q: %w", name, a.Name, ErrDupAttr)
		}
		seenOwn[a.Name] = struct{}{}
		if j, ok := t.index[a.Name]; ok {
			if !Same(t.all[j].Type, a.Type) {
				return nil, fmt.Errorf("class %q attribute %q: %w", name, a.Name, ErrAttrConflict)
			}
			continue
		}
		t.index[a.Name] = len(t.all)
		t.all = append(t.all, a)
	}
	return t, nil
}

func flattenOps(name string, supers []*Type, own []Operation) ([]Operation, map[string]int) {
	var out []Operation
	idx := make(map[string]int)
	add := func(op Operation) {
		if j, ok := idx[op.Name]; ok {
			out[j] = op // later (more specific) definition shadows
			return
		}
		idx[op.Name] = len(out)
		out = append(out, op)
	}
	for i := len(supers) - 1; i >= 0; i-- { // rightmost first, leftmost shadows
		for _, op := range supers[i].ops {
			add(op)
		}
	}
	for _, op := range own {
		add(op)
	}
	return out, idx
}

// MustNewClass is NewClass that panics on error; for statically known types.
func MustNewClass(name string, supers []*Type, attrs []Attr, ops []Operation) *Type {
	t, err := NewClass(name, supers, attrs, ops)
	if err != nil {
		panic(err)
	}
	return t
}

func validTypeName(name string) bool {
	if name == "" || len(name) > 200 {
		return false
	}
	for _, r := range name {
		if r < 0x21 || r == 0x7f || r == '<' || r == '>' {
			return false
		}
	}
	return true
}

// Name returns the type's name ("bool", "list<Story>", "DowJonesStory"...).
func (t *Type) Name() string { return t.name }

// Kind returns the type's fundamental category.
func (t *Type) Kind() Kind { return t.kind }

// Elem returns the element type of a list type and nil otherwise.
func (t *Type) Elem() *Type { return t.elem }

// Supertypes returns the direct supertypes of a class (nil otherwise). The
// slice must not be modified.
func (t *Type) Supertypes() []*Type { return t.supers }

// Attrs returns the full flattened attribute list (inherited first). The
// slice must not be modified.
func (t *Type) Attrs() []Attr {
	return t.all
}

// OwnAttrs returns only the attributes declared directly by this class.
func (t *Type) OwnAttrs() []Attr { return t.own }

// NumAttrs returns the number of flattened attributes.
func (t *Type) NumAttrs() int { return len(t.all) }

// AttrIndex returns the slot index for the named attribute, or -1.
func (t *Type) AttrIndex(name string) int {
	if t.index == nil {
		return -1
	}
	if i, ok := t.index[name]; ok {
		return i
	}
	return -1
}

// Attr returns the descriptor for the named attribute.
func (t *Type) Attr(name string) (Attr, bool) {
	i := t.AttrIndex(name)
	if i < 0 {
		return Attr{}, false
	}
	return t.all[i], true
}

// Operations returns the type's operation table, most-specific definitions
// shadowing inherited ones. The slice must not be modified.
func (t *Type) Operations() []Operation { return t.ops }

// Operation returns the named operation.
func (t *Type) Operation(name string) (Operation, bool) {
	if t.opIdx == nil {
		return Operation{}, false
	}
	if i, ok := t.opIdx[name]; ok {
		return t.ops[i], true
	}
	return Operation{}, false
}

// Same reports structural identity of two types: fundamentals by kind,
// lists by element identity, classes by pointer (a class descriptor is the
// identity of the class).
func Same(a, b *Type) bool {
	if a == b {
		return true
	}
	if a == nil || b == nil {
		return false
	}
	if a.kind != b.kind {
		return false
	}
	switch a.kind {
	case KindList:
		return Same(a.elem, b.elem)
	case KindClass:
		return false // distinct class descriptors are distinct classes
	default:
		return true
	}
}

// IsSubtypeOf reports whether t is b or a (transitive) subtype of b.
func (t *Type) IsSubtypeOf(b *Type) bool {
	if Same(t, b) {
		return true
	}
	if t == nil || b == nil || t.kind != KindClass {
		return false
	}
	for _, s := range t.supers {
		if s.IsSubtypeOf(b) {
			return true
		}
	}
	return false
}

// AssignableTo reports whether a value of type t may be stored in a slot
// declared with type dst: anything is assignable to Any; classes are
// assignable to their supertypes; everything else requires structural
// identity.
func (t *Type) AssignableTo(dst *Type) bool {
	if dst == nil {
		return false
	}
	if dst.kind == KindAny {
		return true
	}
	if t == nil {
		return false
	}
	if t.kind == KindClass && dst.kind == KindClass {
		return t.IsSubtypeOf(dst)
	}
	return Same(t, dst)
}
