package mop

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestRegistryRegisterLookup(t *testing.T) {
	r := NewRegistry()
	story, dj := storyType(t)
	if err := r.Register(story); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(dj); err != nil {
		t.Fatal(err)
	}
	got, err := r.Lookup("Story")
	if err != nil || got != story {
		t.Fatalf("Lookup(Story) = %v, %v", got, err)
	}
	if _, err := r.Lookup("Missing"); !errors.Is(err, ErrTypeUnknown) {
		t.Errorf("Lookup(Missing) error = %v", err)
	}
	if r.Len() != 2 {
		t.Errorf("Len = %d", r.Len())
	}
	if !r.Has("DowJonesStory") || r.Has("int") {
		t.Error("Has misbehaves")
	}
}

func TestRegistryFundamentalsAndLists(t *testing.T) {
	r := NewRegistry()
	for _, f := range Fundamentals() {
		got, err := r.Lookup(f.Name())
		if err != nil || got != f {
			t.Errorf("Lookup(%s) = %v, %v", f.Name(), got, err)
		}
	}
	lt, err := r.Lookup("list<string>")
	if err != nil || lt.Kind() != KindList || !Same(lt.Elem(), String) {
		t.Fatalf("Lookup(list<string>) = %v, %v", lt, err)
	}
	nested, err := r.Lookup("list<list<int>>")
	if err != nil || !Same(nested.Elem().Elem(), Int) {
		t.Fatalf("Lookup(list<list<int>>) = %v, %v", nested, err)
	}
	story, _ := storyType(t)
	if err := r.Register(story); err != nil {
		t.Fatal(err)
	}
	ls, err := r.Lookup("list<Story>")
	if err != nil || ls.Elem() != story {
		t.Fatalf("Lookup(list<Story>) = %v, %v", ls, err)
	}
	if _, err := r.Lookup("list<Nope>"); !errors.Is(err, ErrTypeUnknown) {
		t.Errorf("Lookup(list<Nope>) error = %v", err)
	}
}

func TestRegistryConflicts(t *testing.T) {
	r := NewRegistry()
	story, _ := storyType(t)
	if err := r.Register(story); err != nil {
		t.Fatal(err)
	}
	// Idempotent re-registration of the identical descriptor.
	if err := r.Register(story); err != nil {
		t.Errorf("re-registering same descriptor: %v", err)
	}
	// A different class under the same name is rejected.
	imposter := MustNewClass("Story", nil, nil, nil)
	if err := r.Register(imposter); !errors.Is(err, ErrTypeExists) {
		t.Errorf("conflicting registration error = %v", err)
	}
	if err := r.Register(Int); !errors.Is(err, ErrNotAClass) {
		t.Errorf("registering fundamental error = %v", err)
	}
	bad := MustNewClass("bool2", nil, nil, nil)
	_ = bad
	reserved := MustNewClass("X", nil, nil, nil)
	_ = reserved
	// A class deliberately named like a fundamental is rejected.
	if fake, err := NewClass("int", nil, nil, nil); err == nil {
		if err := r.Register(fake); !errors.Is(err, ErrReservedName) {
			t.Errorf("registering class named 'int' error = %v", err)
		}
	}
}

func TestRegistrySubtypesOf(t *testing.T) {
	r := NewRegistry()
	story, dj := storyType(t)
	reuters := MustNewClass("ReutersStory", []*Type{story}, nil, nil)
	other := MustNewClass("Unrelated", nil, nil, nil)
	for _, c := range []*Type{story, dj, reuters, other} {
		if err := r.Register(c); err != nil {
			t.Fatal(err)
		}
	}
	subs := r.SubtypesOf(story)
	if len(subs) != 3 {
		t.Fatalf("SubtypesOf(Story) = %v", subs)
	}
	names := fmt.Sprint(subs[0].Name(), subs[1].Name(), subs[2].Name())
	if names != "DowJonesStoryReutersStoryStory" {
		t.Errorf("SubtypesOf order = %v", names)
	}
}

func TestRegistryWatch(t *testing.T) {
	r := NewRegistry()
	ch := r.Watch()
	story, _ := storyType(t)
	if err := r.Register(story); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-ch:
		if got != story {
			t.Errorf("watch delivered %v", got)
		}
	case <-time.After(time.Second):
		t.Fatal("watch notification not delivered")
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				c := MustNewClass(fmt.Sprintf("C%d_%d", w, i), nil, nil, nil)
				if err := r.Register(c); err != nil {
					t.Errorf("Register: %v", err)
					return
				}
				if _, err := r.Lookup(c.Name()); err != nil {
					t.Errorf("Lookup: %v", err)
					return
				}
				r.Classes()
			}
		}(w)
	}
	wg.Wait()
	if r.Len() != 800 {
		t.Errorf("Len = %d, want 800", r.Len())
	}
}
