// Package keyword implements the Keyword Generator of §5.2: a service
// introduced into a running system without any changes to existing
// applications. It "subscribes to stories on major subjects and searches
// the text of each story for 'keywords' that have been designated under
// several major 'categories'. For each Story object, a list of keywords is
// constructed as a named Property object of the Story object and published
// under the same subject. It also supports an interactive interface that
// allows clients to browse categories and associated keywords."
//
// Because the News Monitor already understands Property objects, and
// communication is anonymous (P4), the monitor starts enriching its
// display the moment this service comes on-line — "the user's world
// becomes much richer" with no recompilation anywhere.
package keyword

import (
	"sort"
	"strings"
	"sync"

	"infobus/internal/adapter"
	"infobus/internal/core"
	"infobus/internal/mop"
	"infobus/internal/rmi"
	"infobus/internal/transport"
)

// PropertyName is the name of the properties this service publishes.
const PropertyName = "keywords"

// Categories maps a category name to the keywords designated under it.
type Categories map[string][]string

// DefaultCategories is a starter taxonomy for the trading-floor demo.
func DefaultCategories() Categories {
	return Categories{
		"management": {"chief executive", "board", "names new"},
		"results":    {"earnings", "record", "quarter"},
		"risk":       {"recall", "dispute", "settles"},
		"markets":    {"surges", "slips", "volume"},
	}
}

// Generator is the running keyword service.
type Generator struct {
	bus  *core.Bus
	sub  *core.Subscription
	rmiS *rmi.Server

	mu        sync.Mutex
	cats      Categories
	processed uint64
	published uint64
	closed    bool
	done      chan struct{}
	wg        sync.WaitGroup
}

// BrowseInterface is the generator's interactive RMI interface: clients
// can browse categories and their keywords (and extend them at run time).
var BrowseInterface = mop.MustNewClass("KeywordBrowser", nil, nil, []mop.Operation{
	{Name: "categories", Result: mop.ListOf(mop.String)},
	{Name: "keywords", Params: []mop.Param{{Name: "category", Type: mop.String}}, Result: mop.ListOf(mop.String)},
	{Name: "addKeyword", Params: []mop.Param{
		{Name: "category", Type: mop.String}, {Name: "keyword", Type: mop.String},
	}, Result: mop.Bool},
})

// Options configure New.
type Options struct {
	// Subjects are the story subjects to scan. Default "news.>".
	Subjects []string
	// Service is the RMI service subject of the browse interface.
	// Default "svc.keywords". Empty string "" uses the default; set
	// NoBrowse to disable the interface.
	Service  string
	NoBrowse bool
	// RMI tunes the browse server.
	RMI rmi.ServerOptions
}

// New starts a keyword generator on the bus. seg is needed only for the
// browse interface's point-to-point endpoint (pass nil with NoBrowse).
func New(bus *core.Bus, seg transport.Segment, cats Categories, opts Options) (*Generator, error) {
	if len(opts.Subjects) == 0 {
		opts.Subjects = []string{"news.>"}
	}
	if opts.Service == "" {
		opts.Service = "svc.keywords"
	}
	if cats == nil {
		cats = Categories{}
	}
	g := &Generator{bus: bus, cats: cats, done: make(chan struct{})}
	if err := bus.Registry().Register(adapter.PropertyType); err != nil {
		return nil, err
	}
	for _, s := range opts.Subjects {
		sub, err := bus.Subscribe(s)
		if err != nil {
			g.Close()
			return nil, err
		}
		g.wg.Add(1)
		go g.scanLoop(sub)
		g.mu.Lock()
		if g.sub == nil {
			g.sub = sub
		}
		g.mu.Unlock()
	}
	if !opts.NoBrowse {
		srv, err := rmi.NewServer(bus, seg, opts.Service, BrowseInterface, g.browse, opts.RMI)
		if err != nil {
			g.Close()
			return nil, err
		}
		g.rmiS = srv
	}
	return g, nil
}

// Processed returns how many stories have been scanned.
func (g *Generator) Processed() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.processed
}

// Published returns how many keyword properties have been published.
func (g *Generator) Published() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.published
}

// Close stops the service.
func (g *Generator) Close() {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return
	}
	g.closed = true
	g.mu.Unlock()
	close(g.done)
	if g.rmiS != nil {
		_ = g.rmiS.Close()
	}
	g.wg.Wait()
}

func (g *Generator) scanLoop(sub *core.Subscription) {
	defer g.wg.Done()
	defer sub.Cancel()
	for {
		select {
		case <-g.done:
			return
		case ev, ok := <-sub.C:
			if !ok {
				return
			}
			g.handle(ev)
		}
	}
}

func (g *Generator) handle(ev core.Event) {
	story, ok := ev.Value.(*mop.Object)
	if !ok {
		return
	}
	// Only annotate story-like objects: anything with headline and body
	// string attributes. Introspection (P2), not type name matching, so
	// future story types are annotated too.
	headline, err1 := stringAttr(story, "headline")
	body, err2 := stringAttr(story, "body")
	if err1 != nil || err2 != nil {
		return // not a story-shaped object (e.g. our own Property)
	}
	g.mu.Lock()
	g.processed++
	g.mu.Unlock()

	found := g.Scan(headline + " " + body)
	if len(found) == 0 {
		return
	}
	prop := mop.MustNew(adapter.PropertyType).
		MustSet("name", PropertyName).
		MustSet("ref", headline).
		MustSet("value", toList(found))
	if err := g.bus.Publish(ev.Subject.String(), prop); err != nil {
		return
	}
	g.mu.Lock()
	g.published++
	g.mu.Unlock()
}

// Scan returns the keywords found in the text, sorted and deduplicated.
func (g *Generator) Scan(text string) []string {
	lower := strings.ToLower(text)
	set := map[string]struct{}{}
	g.mu.Lock()
	for _, kws := range g.cats {
		for _, kw := range kws {
			if strings.Contains(lower, strings.ToLower(kw)) {
				set[kw] = struct{}{}
			}
		}
	}
	g.mu.Unlock()
	out := make([]string, 0, len(set))
	for kw := range set {
		out = append(out, kw)
	}
	sort.Strings(out)
	return out
}

// browse serves the interactive RMI interface.
func (g *Generator) browse(op string, args []mop.Value) (mop.Value, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	switch op {
	case "categories":
		names := make([]string, 0, len(g.cats))
		for c := range g.cats {
			names = append(names, c)
		}
		sort.Strings(names)
		return toList(names), nil
	case "keywords":
		kws := append([]string(nil), g.cats[args[0].(string)]...)
		sort.Strings(kws)
		return toList(kws), nil
	case "addKeyword":
		cat, kw := args[0].(string), args[1].(string)
		for _, existing := range g.cats[cat] {
			if existing == kw {
				return false, nil
			}
		}
		g.cats[cat] = append(g.cats[cat], kw)
		return true, nil
	default:
		return nil, rmi.ErrBadOp
	}
}

func stringAttr(o *mop.Object, name string) (string, error) {
	v, err := o.Get(name)
	if err != nil {
		return "", err
	}
	s, _ := v.(string)
	return s, nil
}

func toList(ss []string) mop.List {
	out := make(mop.List, len(ss))
	for i, s := range ss {
		out[i] = s
	}
	return out
}
