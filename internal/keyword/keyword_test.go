package keyword

import (
	"fmt"
	"testing"
	"time"

	"infobus/internal/adapter"
	"infobus/internal/core"
	"infobus/internal/mop"
	"infobus/internal/netsim"
	"infobus/internal/reliable"
	"infobus/internal/rmi"
	"infobus/internal/transport"
)

func fastSeg() *transport.SimSegment {
	cfg := netsim.DefaultConfig()
	cfg.Speedup = 5000
	return transport.NewSimSegment(cfg)
}

func fastReliable() reliable.Config {
	return reliable.Config{
		NakInterval:        2 * time.Millisecond,
		GapTimeout:         300 * time.Millisecond,
		RetransmitInterval: 3 * time.Millisecond,
		HeartbeatInterval:  5 * time.Millisecond,
	}
}

func newBus(t *testing.T, seg transport.Segment, host string) *core.Bus {
	t.Helper()
	h, err := core.NewHost(seg, host, core.HostConfig{Reliable: fastReliable()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = h.Close() })
	b, err := h.NewBus("app")
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestScan(t *testing.T) {
	g := &Generator{cats: DefaultCategories()}
	cases := []struct {
		text string
		want []string
	}{
		{"GMC announces record earnings", []string{"earnings", "record"}},
		{"the BOARD met", []string{"board"}}, // case-insensitive
		{"nothing relevant here", nil},
		{"recall and dispute and recall", []string{"dispute", "recall"}}, // dedup + sorted
	}
	for _, c := range cases {
		got := g.Scan(c.text)
		if fmt.Sprint(got) != fmt.Sprint(c.want) {
			t.Errorf("Scan(%q) = %v, want %v", c.text, got, c.want)
		}
	}
}

func TestPropertyPublishedOnSameSubject(t *testing.T) {
	seg := fastSeg()
	defer seg.Close()
	pubBus := newBus(t, seg, "pub")
	kwBus := newBus(t, seg, "kw")
	obsBus := newBus(t, seg, "observer")
	types, err := adapter.DefineNewsTypes(pubBus.Registry())
	if err != nil {
		t.Fatal(err)
	}
	kw, err := New(kwBus, seg, DefaultCategories(), Options{NoBrowse: true})
	if err != nil {
		t.Fatal(err)
	}
	defer kw.Close()

	sub, err := obsBus.Subscribe("news.equity.gmc")
	if err != nil {
		t.Fatal(err)
	}
	story := mop.MustNew(types.DJ).
		MustSet("headline", "GMC announces record earnings").
		MustSet("body", "volume was heavy").
		MustSet("category", "equity").
		MustSet("ticker", "GMC")
	if err := pubBus.Publish("news.equity.gmc", story); err != nil {
		t.Fatal(err)
	}
	// The observer sees the story then the property on the SAME subject.
	var sawStory, sawProp bool
	deadline := time.After(15 * time.Second)
	for !sawStory || !sawProp {
		select {
		case ev := <-sub.C:
			obj := ev.Value.(*mop.Object)
			switch obj.Type().Name() {
			case "DowJonesStory":
				sawStory = true
			case "Property":
				sawProp = true
				if obj.MustGet("name") != PropertyName {
					t.Errorf("property name = %v", obj.MustGet("name"))
				}
				if obj.MustGet("ref") != "GMC announces record earnings" {
					t.Errorf("property ref = %v", obj.MustGet("ref"))
				}
				kws := obj.MustGet("value").(mop.List)
				if len(kws) == 0 {
					t.Error("empty keyword list")
				}
			}
		case <-deadline:
			t.Fatalf("story=%v property=%v", sawStory, sawProp)
		}
	}
	// A story with no keywords produces no property.
	dull := mop.MustNew(types.DJ).
		MustSet("headline", "GMC exists").
		MustSet("body", "nothing notable").
		MustSet("category", "equity").
		MustSet("ticker", "GMC")
	if err := pubBus.Publish("news.equity.gmc", dull); err != nil {
		t.Fatal(err)
	}
	deadline2 := time.After(5 * time.Second)
	for kw.Processed() < 2 {
		select {
		case <-deadline2:
			t.Fatal("second story never processed")
		case <-time.After(2 * time.Millisecond):
		}
	}
	if kw.Published() != 1 {
		t.Errorf("Published = %d, want 1 (dull story has no keywords)", kw.Published())
	}
	// The generator must not annotate its own Property publications
	// (processed counts only story-shaped objects).
	if kw.Processed() != 2 {
		t.Errorf("Processed = %d, want 2", kw.Processed())
	}
}

func TestBrowseInterface(t *testing.T) {
	seg := fastSeg()
	defer seg.Close()
	kwBus := newBus(t, seg, "kw")
	clientBus := newBus(t, seg, "client")
	kw, err := New(kwBus, seg, DefaultCategories(), Options{
		Service: "svc.kw.test",
		RMI:     rmi.ServerOptions{Reliable: fastReliable()},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer kw.Close()

	c, err := rmi.Dial(clientBus, seg, "svc.kw.test", rmi.DialOptions{
		DiscoveryWindow: 200 * time.Millisecond,
		Timeout:         300 * time.Millisecond,
		Retries:         3,
		Reliable:        fastReliable(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	cats, err := c.Invoke("categories")
	if err != nil {
		t.Fatal(err)
	}
	if len(cats.(mop.List)) != 4 {
		t.Errorf("categories = %v", cats)
	}
	kws, err := c.Invoke("keywords", "results")
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(kws) != "[earnings quarter record]" {
		t.Errorf("keywords = %v", kws)
	}
	// Extend the taxonomy at run time through the service interface.
	added, err := c.Invoke("addKeyword", "results", "dividend")
	if err != nil || added != true {
		t.Fatalf("addKeyword = %v, %v", added, err)
	}
	added, err = c.Invoke("addKeyword", "results", "dividend")
	if err != nil || added != false {
		t.Fatalf("duplicate addKeyword = %v, %v", added, err)
	}
	kws, err = c.Invoke("keywords", "results")
	if err != nil || len(kws.(mop.List)) != 4 {
		t.Fatalf("keywords after add = %v, %v", kws, err)
	}
	// Introspection: the browse interface describes itself (P2).
	iface := c.Interface()
	if op, ok := iface.Operation("addKeyword"); !ok ||
		op.Signature() != "addKeyword(category string, keyword string) -> bool" {
		t.Errorf("remote signature = %+v", op)
	}
}
