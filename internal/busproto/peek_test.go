package busproto

import (
	"bytes"
	"testing"
)

// peekCases covers every kind, traced and compact variants included.
func peekCases() []Envelope {
	return []Envelope{
		{Kind: KindPublish, Hops: 3, Subject: "a.b", Payload: []byte("data")},
		{Kind: KindPublish, Subject: "x", Payload: nil},
		{Kind: KindPublishCompact, Hops: 1, Subject: "c.d", Payload: []byte{'I', 'B', 2}},
		{Kind: KindGuaranteed, Hops: 2, ID: 42, Origin: "sim:0#abc", Subject: "g.s", Payload: []byte{1, 2}},
		{Kind: KindGuaranteedCompact, ID: 9, Origin: "o", Subject: "g", Payload: []byte{7}},
		{Kind: KindPublishTraced, Hops: 1, Subject: "t.u", Payload: []byte("p"), TraceID: 5,
			Trace: []TraceHop{{Node: "sim:0", At: 123}, {Node: "router:r:a", Kind: HopLanePop, At: -4}}},
		{Kind: KindGuaranteedTraced, ID: 7, Origin: "org", Subject: "g.t", TraceID: 8,
			Trace: []TraceHop{{Node: "n", Kind: HopGroupCommit, At: 99}}},
		{Kind: KindPublishCompactTraced, Subject: "ct", TraceID: 2, Payload: []byte{3}},
		{Kind: KindGuaranteedCompactTraced, ID: 1, Origin: "o2", Subject: "s.s.s", TraceID: 3,
			Trace: []TraceHop{{Node: "a", At: 1}, {Node: "b", At: 2}}},
		{Kind: KindGuarAck, ID: 11, Origin: "sim:9#def"},
		{Kind: KindInterest, Patterns: []string{"a.>", "b.*", "c"}},
		{Kind: KindInterest},
	}
}

// TestPeekAgreesWithDecode pins the header fields Peek exposes against a
// full Decode for every envelope kind.
func TestPeekAgreesWithDecode(t *testing.T) {
	for _, e := range peekCases() {
		enc := Encode(e)
		h, err := Peek(enc)
		if err != nil {
			t.Fatalf("peek(%+v): %v", e, err)
		}
		d, err := Decode(enc)
		if err != nil {
			t.Fatalf("decode(%+v): %v", e, err)
		}
		if h.Kind != d.Kind || h.Hops != d.Hops || h.ID != d.ID ||
			string(h.Origin) != d.Origin || string(h.Subject) != d.Subject ||
			!bytes.Equal(h.Payload, d.Payload) {
			t.Errorf("peek %+v disagrees with decode %+v", h, d)
		}
		if h.Base() != d.Base() || h.Traced() != d.Traced() || h.Compact() != d.Compact() {
			t.Errorf("kind %d: helper disagreement peek(%d,%t,%t) decode(%d,%t,%t)",
				e.Kind, h.Base(), h.Traced(), h.Compact(), d.Base(), d.Traced(), d.Compact())
		}
		// The views must alias the frame, not copies of it (zero-copy is
		// the point). Subject/Payload only exist on data kinds.
		if len(h.Subject) > 0 && !sameBacking(enc, h.Subject) {
			t.Errorf("kind %d: Subject does not alias the frame", e.Kind)
		}
		if len(h.Payload) > 0 && !sameBacking(enc, h.Payload) {
			t.Errorf("kind %d: Payload does not alias the frame", e.Kind)
		}
	}
}

// sameBacking reports whether view points into frame's backing array.
func sameBacking(frame, view []byte) bool {
	if len(view) == 0 {
		return true
	}
	for i := range frame {
		if &frame[i] == &view[0] {
			return true
		}
	}
	return false
}

// TestPeekRejectsWhatDecodeRejects spot-checks malformed frames: both
// parsers must reject (the fuzzer generalizes this).
func TestPeekRejectsWhatDecodeRejects(t *testing.T) {
	bad := [][]byte{
		nil,
		{},
		{77},
		{KindPublishTraced, 0, 1, MaxTraceHops + 1, 1, 'n', 2},
		{KindPublishTraced, 0, 1, 5, 1, 'n', 2},
		{KindGuaranteedTraced, 0, 9, 1, 'o', 1, 1, 0xff, 0xff, 0x03},
		append(Encode(Envelope{Kind: KindGuarAck, ID: 9, Origin: "o"}), 1),
	}
	for _, data := range bad {
		if _, err := Peek(data); err == nil {
			t.Errorf("peek accepted % x", data)
		}
		if _, err := Decode(data); err == nil {
			t.Errorf("decode accepted % x", data)
		}
	}
	// Truncations of a traced guaranteed envelope: Peek and Decode must
	// agree byte-for-byte on where the header stops being parseable.
	full := Encode(Envelope{Kind: KindGuaranteedCompactTraced, ID: 3, Origin: "orig", Subject: "s.t",
		TraceID: 8, Payload: []byte{1, 2, 3}, Trace: []TraceHop{{Node: "a", At: 100}, {Node: "b", At: -200}}})
	for i := 0; i < len(full); i++ {
		_, perr := Peek(full[:i])
		_, derr := Decode(full[:i])
		if (perr == nil) != (derr == nil) {
			t.Fatalf("truncation at %d: peek err=%v decode err=%v", i, perr, derr)
		}
	}
}

// TestPeekZeroAlloc pins the fast path's foundation: peeking a data
// envelope allocates nothing.
func TestPeekZeroAlloc(t *testing.T) {
	frames := [][]byte{
		Encode(Envelope{Kind: KindPublish, Hops: 1, Subject: "a.b.c", Payload: make([]byte, 256)}),
		Encode(Envelope{Kind: KindGuaranteed, Hops: 1, ID: 99, Origin: "sim:0#x", Subject: "g.s", Payload: make([]byte, 64)}),
		Encode(Envelope{Kind: KindPublishTraced, Subject: "t", TraceID: 4,
			Trace: []TraceHop{{Node: "n", At: 1}, {Node: "m", At: 2}}, Payload: []byte{1}}),
	}
	allocs := testing.AllocsPerRun(1000, func() {
		for _, f := range frames {
			if _, err := Peek(f); err != nil {
				t.Fatal(err)
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("Peek allocates %.1f per run of %d frames, want 0", allocs, len(frames))
	}
}

// TestFastForwardGolden is the byte-golden equivalence at the protocol
// level: for every untraced data kind (compact and guaranteed included),
// the router fast path's output — the inbound frame with only the hops
// byte rewritten — must equal the slow path's decode → Hops++ → re-encode
// output bit for bit.
func TestFastForwardGolden(t *testing.T) {
	for _, e := range peekCases() {
		switch e.Kind {
		case KindPublish, KindPublishCompact, KindGuaranteed, KindGuaranteedCompact:
		default:
			continue // traced kinds take the slow path; ack/interest never forward
		}
		in := Encode(e)

		// Fast path: copy, bump hops in place.
		h, err := Peek(in)
		if err != nil {
			t.Fatal(err)
		}
		fast := append([]byte(nil), in...)
		SetHops(fast, h.Hops+1)

		// Slow path: full decode, increment, re-encode.
		env, err := Decode(in)
		if err != nil {
			t.Fatal(err)
		}
		env.Hops++
		env.AppendHop("router:r:egress", 12345) // no-op on untraced kinds
		slow := Encode(env)

		if !bytes.Equal(fast, slow) {
			t.Errorf("kind %d: fast % x != slow % x", e.Kind, fast, slow)
		}
	}
}

// TestAppendStageHopAllocAndAlias pins the copy-on-append contract: one
// allocation per appended hop, and fan-out copies sharing a decoded trace
// must not alias each other's appends.
func TestAppendStageHopAllocAndAlias(t *testing.T) {
	base := Envelope{Kind: KindPublishTraced, TraceID: 1,
		Trace: []TraceHop{{Node: "origin", At: 1}}}
	allocs := testing.AllocsPerRun(1000, func() {
		e := base
		e.AppendStageHop(HopNode, "router:r:a", 2)
	})
	if allocs > 1 {
		t.Fatalf("AppendStageHop = %.1f allocs, want 1", allocs)
	}
	// Shared-trace fan-out: two egress copies append independently.
	shared := Envelope{Kind: KindPublishTraced, Trace: make([]TraceHop, 2, 8)}
	shared.Trace[0] = TraceHop{Node: "pub", At: 1}
	shared.Trace[1] = TraceHop{Node: "hop", At: 2}
	a, b := shared, shared
	a.AppendStageHop(HopNode, "egress-a", 3)
	b.AppendStageHop(HopNode, "egress-b", 4)
	if a.Trace[2].Node != "egress-a" || b.Trace[2].Node != "egress-b" {
		t.Fatalf("fan-out copies aliased: a=%+v b=%+v", a.Trace, b.Trace)
	}
	if shared.Trace[0].Node != "pub" || shared.Trace[1].Node != "hop" || len(shared.Trace) != 2 {
		t.Fatalf("shared prefix mutated: %+v", shared.Trace)
	}
}
