// Package busproto defines the bus-level envelope format shared by host
// daemons (internal/daemon) and information routers (internal/router): a
// subject, an opaque payload (the wire-marshalled data object), and the
// metadata the distributed machinery needs — hop counts for forwarding-loop
// prevention, origin tokens for routing guaranteed-delivery
// acknowledgements back across bridged segments, aggregate interest
// advertisements that routers use to forward only wanted traffic (§3.1),
// and optional per-hop traces (trace id + hop timestamps) for the
// telemetry subsystem — carried by dedicated envelope kinds so untraced
// traffic pays zero extra wire bytes.
package busproto

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Envelope kinds carried inside reliable messages.
const (
	KindPublish    = 1 // ordinary reliable publication
	KindGuaranteed = 2 // guaranteed publication (expects acknowledgement)
	KindGuarAck    = 3 // guaranteed-delivery acknowledgement
	KindInterest   = 4 // aggregate subscription advertisement (for routers)
	// Traced variants of the two data kinds: identical semantics plus a
	// trace id and per-hop timestamp list for the telemetry subsystem.
	// Untraced publications keep the legacy kinds byte-for-byte, so
	// tracing disabled costs zero wire bytes.
	KindPublishTraced    = 5
	KindGuaranteedTraced = 6
	// Compact variants: the payload is a wire.VersionCompact dictionary
	// message (fingerprint type table) rather than a fully self-describing
	// one. Envelope layout is byte-identical to the corresponding plain
	// kind — only the kind byte differs — so legacy encodings stay golden
	// and routers forward both without caring. Receivers that cannot
	// resolve a fingerprint NAK on _sys.class.req (see internal/core).
	KindPublishCompact          = 7
	KindGuaranteedCompact       = 8
	KindPublishCompactTraced    = 9
	KindGuaranteedCompactTraced = 10
)

// DataKind returns the publication kind byte for the given combination of
// delivery guarantee, payload compaction, and tracing.
func DataKind(guaranteed, compact, traced bool) byte {
	switch {
	case guaranteed && compact && traced:
		return KindGuaranteedCompactTraced
	case guaranteed && compact:
		return KindGuaranteedCompact
	case guaranteed && traced:
		return KindGuaranteedTraced
	case guaranteed:
		return KindGuaranteed
	case compact && traced:
		return KindPublishCompactTraced
	case compact:
		return KindPublishCompact
	case traced:
		return KindPublishTraced
	default:
		return KindPublish
	}
}

// MaxHops bounds how many routers a publication may cross.
const MaxHops = 8

// MaxTraceHops bounds the per-hop trace list: publisher daemon + the
// guaranteed-path stage hops (lane/ledger/quorum) + up to MaxHops routers +
// consumer daemon, with slack for future hop kinds. A traced envelope whose
// list is full is forwarded without appending.
const MaxTraceHops = 24

// Trace hop kinds. HopNode is the original network hop (a daemon or router
// touched the message); the rest are intra-node stages of the guaranteed
// path, stamped by internal/daemon, internal/ledger and internal/qledger so
// the trace assembler can render a publish→commit→quorum→deliver timeline.
const (
	HopNode           = 0 // publisher/router/consumer network hop
	HopLaneEnqueue    = 1 // delivery lane accepted the message (daemon routeLocal)
	HopLanePop        = 2 // client queue popped the delivery (daemon)
	HopLedgerStage    = 3 // record staged into the group-commit batch (ledger Append)
	HopGroupCommit    = 4 // batch write completed (ledger committer)
	HopFsync          = 5 // batch fsync completed (ledger committer, Sync mode)
	HopReplicaChunk   = 6 // committed batch mirrored as replication chunk (qledger)
	HopQuorumAck      = 7 // write quorum of replica acks reached (qledger)
	HopRecoveryReplay = 8 // entry re-published by the recovery coordinator (qledger)
)

// HopKindName renders a hop kind for monitors; unknown kinds print as node
// hops so newer producers stay readable on older monitors.
func HopKindName(k byte) string {
	switch k {
	case HopLaneEnqueue:
		return "lane-enq"
	case HopLanePop:
		return "lane-pop"
	case HopLedgerStage:
		return "ledger-stage"
	case HopGroupCommit:
		return "group-commit"
	case HopFsync:
		return "fsync"
	case HopReplicaChunk:
		return "repl-chunk"
	case HopQuorumAck:
		return "quorum-ack"
	case HopRecoveryReplay:
		return "recovery-replay"
	default:
		return "node"
	}
}

// TraceHop is one recorded hop of a traced publication: which node touched
// the message, what stage it was (a Hop* kind), and when (unix nanoseconds
// of that node's clock; on the simulated network all nodes share the host
// clock, so per-hop deltas are directly meaningful).
type TraceHop struct {
	Node string
	Kind byte
	At   int64
}

// Envelope is the bus-level message format: a subject plus an opaque
// payload (the wire-marshalled data object).
type Envelope struct {
	Kind     byte
	Hops     uint8  // KindPublish, KindGuaranteed
	ID       uint64 // KindGuaranteed, KindGuarAck: ledger id at the origin
	Origin   string // KindGuaranteed, KindGuarAck: origin daemon identity
	Subject  string
	Payload  []byte
	Patterns []string // KindInterest
	// Tracing (KindPublishTraced, KindGuaranteedTraced only).
	TraceID uint64
	Trace   []TraceHop
}

// Base returns the untraced kind corresponding to e.Kind: traced data
// kinds map to their plain counterpart, every other kind maps to itself.
// Dispatch on Base so tracing stays invisible to delivery semantics.
func (e Envelope) Base() byte {
	switch e.Kind {
	case KindPublishTraced, KindPublishCompact, KindPublishCompactTraced:
		return KindPublish
	case KindGuaranteedTraced, KindGuaranteedCompact, KindGuaranteedCompactTraced:
		return KindGuaranteed
	default:
		return e.Kind
	}
}

// Traced reports whether the envelope carries a hop trace.
func (e Envelope) Traced() bool {
	switch e.Kind {
	case KindPublishTraced, KindGuaranteedTraced,
		KindPublishCompactTraced, KindGuaranteedCompactTraced:
		return true
	}
	return false
}

// Compact reports whether the envelope's payload uses the compact
// dictionary wire format.
func (e Envelope) Compact() bool {
	switch e.Kind {
	case KindPublishCompact, KindGuaranteedCompact,
		KindPublishCompactTraced, KindGuaranteedCompactTraced:
		return true
	}
	return false
}

// AppendHop records a network hop on a traced envelope, dropping the
// record (not the message) when the trace list is already at MaxTraceHops.
func (e *Envelope) AppendHop(node string, at int64) {
	e.AppendStageHop(HopNode, node, at)
}

// AppendStageHop records a hop of an explicit kind (a guaranteed-path
// stage or a network hop) under the same cap-and-drop discipline.
func (e *Envelope) AppendStageHop(kind byte, node string, at int64) {
	if !e.Traced() || len(e.Trace) >= MaxTraceHops {
		return
	}
	// Copy-on-append: traced envelopes fan out through routers, and the
	// decoded Trace slice may be shared. One allocation: the copy is made
	// at its final length and the new hop written in place.
	n := len(e.Trace)
	trace := make([]TraceHop, n+1)
	copy(trace, e.Trace)
	trace[n] = TraceHop{Node: node, Kind: kind, At: at}
	e.Trace = trace
}

// Envelope errors.
var (
	ErrEnvelopeCorrupt = errors.New("busproto: corrupt envelope")
)

const (
	maxSubjectLen  = 1 << 10
	maxOriginLen   = 256
	maxPatternsLen = 1 << 16
	maxNodeLen     = 256
)

// Encode renders an envelope into a fresh buffer.
func Encode(e Envelope) []byte { return AppendEncode(nil, e) }

// AppendEncode appends the envelope's encoding to b and returns the
// extended slice. Hot-path callers (daemon publish, router forward) pass a
// pooled buffer so steady-state encoding allocates nothing; the result is
// byte-identical to Encode.
func AppendEncode(b []byte, e Envelope) []byte {
	b = append(b, e.Kind)
	switch e.Kind {
	case KindPublish, KindPublishCompact:
		b = append(b, e.Hops)
		b = appendString(b, e.Subject)
		b = append(b, e.Payload...)
	case KindPublishTraced, KindPublishCompactTraced:
		b = append(b, e.Hops)
		b = appendTrace(b, e)
		b = appendString(b, e.Subject)
		b = append(b, e.Payload...)
	case KindGuaranteed, KindGuaranteedCompact:
		b = append(b, e.Hops)
		b = binary.AppendUvarint(b, e.ID)
		b = appendString(b, e.Origin)
		b = appendString(b, e.Subject)
		b = append(b, e.Payload...)
	case KindGuaranteedTraced, KindGuaranteedCompactTraced:
		b = append(b, e.Hops)
		b = binary.AppendUvarint(b, e.ID)
		b = appendString(b, e.Origin)
		b = appendTrace(b, e)
		b = appendString(b, e.Subject)
		b = append(b, e.Payload...)
	case KindGuarAck:
		b = binary.AppendUvarint(b, e.ID)
		b = appendString(b, e.Origin)
	case KindInterest:
		b = binary.AppendUvarint(b, uint64(len(e.Patterns)))
		for _, p := range e.Patterns {
			b = appendString(b, p)
		}
	}
	return b
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendTrace(b []byte, e Envelope) []byte {
	b = binary.AppendUvarint(b, e.TraceID)
	trace := e.Trace
	if len(trace) > MaxTraceHops {
		trace = trace[:MaxTraceHops]
	}
	b = binary.AppendUvarint(b, uint64(len(trace)))
	for _, h := range trace {
		b = append(b, h.Kind)
		b = appendString(b, h.Node)
		b = binary.AppendVarint(b, h.At)
	}
	return b
}

type envReader struct {
	data []byte
	pos  int
}

func (r *envReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.data[r.pos:])
	if n <= 0 {
		return 0, ErrEnvelopeCorrupt
	}
	r.pos += n
	return v, nil
}

func (r *envReader) varint() (int64, error) {
	v, n := binary.Varint(r.data[r.pos:])
	if n <= 0 {
		return 0, ErrEnvelopeCorrupt
	}
	r.pos += n
	return v, nil
}

// trace reads a trace id plus a capped hop list.
func (r *envReader) trace(e *Envelope) error {
	var err error
	if e.TraceID, err = r.uvarint(); err != nil {
		return err
	}
	count, err := r.uvarint()
	if err != nil {
		return err
	}
	if count > MaxTraceHops {
		return ErrEnvelopeCorrupt
	}
	for i := uint64(0); i < count; i++ {
		var h TraceHop
		if h.Kind, err = r.byteVal(); err != nil {
			return err
		}
		if h.Node, err = r.str(maxNodeLen); err != nil {
			return err
		}
		if h.At, err = r.varint(); err != nil {
			return err
		}
		e.Trace = append(e.Trace, h)
	}
	return nil
}

func (r *envReader) str(maxLen int) (string, error) {
	b, err := r.view(maxLen)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// view reads a length-prefixed byte string as a slice aliasing the frame:
// the zero-copy counterpart of str, with identical validation.
func (r *envReader) view(maxLen int) ([]byte, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(maxLen) || r.pos+int(n) > len(r.data) {
		return nil, ErrEnvelopeCorrupt
	}
	b := r.data[r.pos : r.pos+int(n)]
	r.pos += int(n)
	return b, nil
}

// skipTrace walks a trace id plus hop list without materializing it,
// applying exactly the caps and truncation checks trace applies.
func (r *envReader) skipTrace() error {
	if _, err := r.uvarint(); err != nil {
		return err
	}
	count, err := r.uvarint()
	if err != nil {
		return err
	}
	if count > MaxTraceHops {
		return ErrEnvelopeCorrupt
	}
	for i := uint64(0); i < count; i++ {
		if _, err := r.byteVal(); err != nil {
			return err
		}
		if _, err := r.view(maxNodeLen); err != nil {
			return err
		}
		if _, err := r.varint(); err != nil {
			return err
		}
	}
	return nil
}

func (r *envReader) byteVal() (byte, error) {
	if r.pos >= len(r.data) {
		return 0, ErrEnvelopeCorrupt
	}
	c := r.data[r.pos]
	r.pos++
	return c, nil
}

func Decode(data []byte) (Envelope, error) {
	if len(data) == 0 {
		return Envelope{}, ErrEnvelopeCorrupt
	}
	e := Envelope{Kind: data[0]}
	r := &envReader{data: data, pos: 1}
	var err error
	switch e.Kind {
	case KindPublish, KindPublishTraced, KindPublishCompact, KindPublishCompactTraced:
		if e.Hops, err = r.byteVal(); err != nil {
			return Envelope{}, err
		}
		if e.Traced() {
			if err = r.trace(&e); err != nil {
				return Envelope{}, err
			}
		}
		if e.Subject, err = r.str(maxSubjectLen); err != nil {
			return Envelope{}, err
		}
		e.Payload = data[r.pos:]
	case KindGuaranteed, KindGuaranteedTraced, KindGuaranteedCompact, KindGuaranteedCompactTraced:
		if e.Hops, err = r.byteVal(); err != nil {
			return Envelope{}, err
		}
		if e.ID, err = r.uvarint(); err != nil {
			return Envelope{}, err
		}
		if e.Origin, err = r.str(maxOriginLen); err != nil {
			return Envelope{}, err
		}
		if e.Traced() {
			if err = r.trace(&e); err != nil {
				return Envelope{}, err
			}
		}
		if e.Subject, err = r.str(maxSubjectLen); err != nil {
			return Envelope{}, err
		}
		e.Payload = data[r.pos:]
	case KindGuarAck:
		if e.ID, err = r.uvarint(); err != nil {
			return Envelope{}, err
		}
		if e.Origin, err = r.str(maxOriginLen); err != nil {
			return Envelope{}, err
		}
		if r.pos != len(data) {
			return Envelope{}, ErrEnvelopeCorrupt
		}
	case KindInterest:
		count, err := r.uvarint()
		if err != nil {
			return Envelope{}, err
		}
		if count > maxPatternsLen {
			return Envelope{}, ErrEnvelopeCorrupt
		}
		for i := uint64(0); i < count; i++ {
			p, err := r.str(maxSubjectLen)
			if err != nil {
				return Envelope{}, err
			}
			e.Patterns = append(e.Patterns, p)
		}
		if r.pos != len(data) {
			return Envelope{}, ErrEnvelopeCorrupt
		}
	default:
		return Envelope{}, fmt.Errorf("kind %d: %w", e.Kind, ErrEnvelopeCorrupt)
	}
	return e, nil
}

// Header is a lazy, zero-copy view of an envelope: the fields a forwarding
// engine dispatches on (kind, hops, origin/id, subject) plus the payload
// tail, all as slices aliasing the encoded frame. Peek validates exactly
// what Decode validates — same caps, same truncation checks, including a
// full walk of the trace list and interest patterns — but materializes
// nothing: no trace slice, no pattern slice, no string copies. The views
// are valid only while the frame's backing array is; callers that retain
// a field beyond the frame's lifetime must copy it.
type Header struct {
	Kind    byte
	Hops    uint8  // data kinds only
	ID      uint64 // guaranteed kinds and KindGuarAck
	Origin  []byte // guaranteed kinds and KindGuarAck; aliases the frame
	Subject []byte // data kinds only; aliases the frame
	Payload []byte // data kinds only; aliases the frame
}

// Base is Envelope.Base for a peeked header.
func (h Header) Base() byte {
	switch h.Kind {
	case KindPublishTraced, KindPublishCompact, KindPublishCompactTraced:
		return KindPublish
	case KindGuaranteedTraced, KindGuaranteedCompact, KindGuaranteedCompactTraced:
		return KindGuaranteed
	default:
		return h.Kind
	}
}

// Traced is Envelope.Traced for a peeked header.
func (h Header) Traced() bool {
	switch h.Kind {
	case KindPublishTraced, KindGuaranteedTraced,
		KindPublishCompactTraced, KindGuaranteedCompactTraced:
		return true
	}
	return false
}

// Compact is Envelope.Compact for a peeked header.
func (h Header) Compact() bool {
	switch h.Kind {
	case KindPublishCompact, KindGuaranteedCompact,
		KindPublishCompactTraced, KindGuaranteedCompactTraced:
		return true
	}
	return false
}

// hopsOffset is the position of the hops byte in every encoded data
// envelope: the kind byte is first, hops second, for all eight data kinds
// (see AppendEncode). SetHops relies on this layout invariant.
const hopsOffset = 1

// SetHops overwrites the hops byte of an encoded DATA envelope in place.
// The caller must own the frame (routers call it on their pooled copy,
// never on the inbound buffer, which the transport may share between
// receivers) and must have validated it as a data kind via Peek — the two
// non-data kinds (KindGuarAck, KindInterest) carry no hops byte.
func SetHops(frame []byte, hops uint8) {
	frame[hopsOffset] = hops
}

// Peek parses the envelope header without materializing anything. It
// accepts exactly the frames Decode accepts and rejects exactly the frames
// Decode rejects (FuzzEnvelopePeek pins the agreement); on success the
// returned Header's view fields alias data.
func Peek(data []byte) (Header, error) {
	if len(data) == 0 {
		return Header{}, ErrEnvelopeCorrupt
	}
	h := Header{Kind: data[0]}
	r := &envReader{data: data, pos: 1}
	var err error
	switch h.Kind {
	case KindPublish, KindPublishTraced, KindPublishCompact, KindPublishCompactTraced:
		if h.Hops, err = r.byteVal(); err != nil {
			return Header{}, err
		}
		if h.Traced() {
			if err = r.skipTrace(); err != nil {
				return Header{}, err
			}
		}
		if h.Subject, err = r.view(maxSubjectLen); err != nil {
			return Header{}, err
		}
		h.Payload = data[r.pos:]
	case KindGuaranteed, KindGuaranteedTraced, KindGuaranteedCompact, KindGuaranteedCompactTraced:
		if h.Hops, err = r.byteVal(); err != nil {
			return Header{}, err
		}
		if h.ID, err = r.uvarint(); err != nil {
			return Header{}, err
		}
		if h.Origin, err = r.view(maxOriginLen); err != nil {
			return Header{}, err
		}
		if h.Traced() {
			if err = r.skipTrace(); err != nil {
				return Header{}, err
			}
		}
		if h.Subject, err = r.view(maxSubjectLen); err != nil {
			return Header{}, err
		}
		h.Payload = data[r.pos:]
	case KindGuarAck:
		if h.ID, err = r.uvarint(); err != nil {
			return Header{}, err
		}
		if h.Origin, err = r.view(maxOriginLen); err != nil {
			return Header{}, err
		}
		if r.pos != len(data) {
			return Header{}, ErrEnvelopeCorrupt
		}
	case KindInterest:
		count, err := r.uvarint()
		if err != nil {
			return Header{}, err
		}
		if count > maxPatternsLen {
			return Header{}, ErrEnvelopeCorrupt
		}
		for i := uint64(0); i < count; i++ {
			if _, err := r.view(maxSubjectLen); err != nil {
				return Header{}, err
			}
		}
		if r.pos != len(data) {
			return Header{}, ErrEnvelopeCorrupt
		}
	default:
		return Header{}, fmt.Errorf("kind %d: %w", h.Kind, ErrEnvelopeCorrupt)
	}
	return h, nil
}
