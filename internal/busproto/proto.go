// Package busproto defines the bus-level envelope format shared by host
// daemons (internal/daemon) and information routers (internal/router): a
// subject, an opaque payload (the wire-marshalled data object), and the
// metadata the distributed machinery needs — hop counts for forwarding-loop
// prevention, origin tokens for routing guaranteed-delivery
// acknowledgements back across bridged segments, and aggregate interest
// advertisements that routers use to forward only wanted traffic (§3.1).
package busproto

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Envelope kinds carried inside reliable messages.
const (
	KindPublish    = 1 // ordinary reliable publication
	KindGuaranteed = 2 // guaranteed publication (expects acknowledgement)
	KindGuarAck    = 3 // guaranteed-delivery acknowledgement
	KindInterest   = 4 // aggregate subscription advertisement (for routers)
)

// MaxHops bounds how many routers a publication may cross.
const MaxHops = 8

// Envelope is the bus-level message format: a subject plus an opaque
// payload (the wire-marshalled data object).
type Envelope struct {
	Kind     byte
	Hops     uint8  // KindPublish, KindGuaranteed
	ID       uint64 // KindGuaranteed, KindGuarAck: ledger id at the origin
	Origin   string // KindGuaranteed, KindGuarAck: origin daemon identity
	Subject  string
	Payload  []byte
	Patterns []string // KindInterest
}

// Envelope errors.
var (
	ErrEnvelopeCorrupt = errors.New("busproto: corrupt envelope")
)

const (
	maxSubjectLen  = 1 << 10
	maxOriginLen   = 256
	maxPatternsLen = 1 << 16
)

func Encode(e Envelope) []byte {
	b := []byte{e.Kind}
	switch e.Kind {
	case KindPublish:
		b = append(b, e.Hops)
		b = appendString(b, e.Subject)
		b = append(b, e.Payload...)
	case KindGuaranteed:
		b = append(b, e.Hops)
		b = binary.AppendUvarint(b, e.ID)
		b = appendString(b, e.Origin)
		b = appendString(b, e.Subject)
		b = append(b, e.Payload...)
	case KindGuarAck:
		b = binary.AppendUvarint(b, e.ID)
		b = appendString(b, e.Origin)
	case KindInterest:
		b = binary.AppendUvarint(b, uint64(len(e.Patterns)))
		for _, p := range e.Patterns {
			b = appendString(b, p)
		}
	}
	return b
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

type envReader struct {
	data []byte
	pos  int
}

func (r *envReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.data[r.pos:])
	if n <= 0 {
		return 0, ErrEnvelopeCorrupt
	}
	r.pos += n
	return v, nil
}

func (r *envReader) str(maxLen int) (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(maxLen) || r.pos+int(n) > len(r.data) {
		return "", ErrEnvelopeCorrupt
	}
	s := string(r.data[r.pos : r.pos+int(n)])
	r.pos += int(n)
	return s, nil
}

func (r *envReader) byteVal() (byte, error) {
	if r.pos >= len(r.data) {
		return 0, ErrEnvelopeCorrupt
	}
	c := r.data[r.pos]
	r.pos++
	return c, nil
}

func Decode(data []byte) (Envelope, error) {
	if len(data) == 0 {
		return Envelope{}, ErrEnvelopeCorrupt
	}
	e := Envelope{Kind: data[0]}
	r := &envReader{data: data, pos: 1}
	var err error
	switch e.Kind {
	case KindPublish:
		if e.Hops, err = r.byteVal(); err != nil {
			return Envelope{}, err
		}
		if e.Subject, err = r.str(maxSubjectLen); err != nil {
			return Envelope{}, err
		}
		e.Payload = data[r.pos:]
	case KindGuaranteed:
		if e.Hops, err = r.byteVal(); err != nil {
			return Envelope{}, err
		}
		if e.ID, err = r.uvarint(); err != nil {
			return Envelope{}, err
		}
		if e.Origin, err = r.str(maxOriginLen); err != nil {
			return Envelope{}, err
		}
		if e.Subject, err = r.str(maxSubjectLen); err != nil {
			return Envelope{}, err
		}
		e.Payload = data[r.pos:]
	case KindGuarAck:
		if e.ID, err = r.uvarint(); err != nil {
			return Envelope{}, err
		}
		if e.Origin, err = r.str(maxOriginLen); err != nil {
			return Envelope{}, err
		}
		if r.pos != len(data) {
			return Envelope{}, ErrEnvelopeCorrupt
		}
	case KindInterest:
		count, err := r.uvarint()
		if err != nil {
			return Envelope{}, err
		}
		if count > maxPatternsLen {
			return Envelope{}, ErrEnvelopeCorrupt
		}
		for i := uint64(0); i < count; i++ {
			p, err := r.str(maxSubjectLen)
			if err != nil {
				return Envelope{}, err
			}
			e.Patterns = append(e.Patterns, p)
		}
		if r.pos != len(data) {
			return Envelope{}, ErrEnvelopeCorrupt
		}
	default:
		return Envelope{}, fmt.Errorf("kind %d: %w", e.Kind, ErrEnvelopeCorrupt)
	}
	return e, nil
}
