package busproto

import "testing"

// FuzzDecode: arbitrary bytes never panic; decodable envelopes round-trip.
func FuzzDecode(f *testing.F) {
	f.Add(Encode(Envelope{Kind: KindPublish, Subject: "a.b", Payload: []byte("x")}))
	f.Add(Encode(Envelope{Kind: KindGuaranteed, ID: 9, Origin: "o", Subject: "s", Payload: nil}))
	f.Add(Encode(Envelope{Kind: KindGuarAck, ID: 1, Origin: "o"}))
	f.Add(Encode(Envelope{Kind: KindInterest, Patterns: []string{"a.>", "*"}}))
	f.Add([]byte{})
	addCompactSeeds(f)
	// Traced envelopes: empty trace, populated trace, negative timestamps.
	f.Add(Encode(Envelope{Kind: KindPublishTraced, Subject: "a.b", Payload: []byte("x"), TraceID: 7}))
	f.Add(Encode(Envelope{Kind: KindPublishTraced, Hops: 2, Subject: "t", TraceID: 1,
		Trace: []TraceHop{{Node: "sim:0", At: 123456789}, {Node: "router:r:a", At: -1}}}))
	f.Add(Encode(Envelope{Kind: KindGuaranteedTraced, ID: 4, Origin: "o", Subject: "g",
		TraceID: 99, Trace: []TraceHop{{Node: "n", At: 1690000000000000000}}}))
	// Malformed hop lists: count exceeding MaxTraceHops, count promising
	// more hops than the data holds, and an oversized node name length.
	f.Add([]byte{KindPublishTraced, 0, 1, MaxTraceHops + 1, 1, 'n', 2})
	f.Add([]byte{KindPublishTraced, 0, 1, 5, 1, 'n', 2})
	f.Add([]byte{KindGuaranteedTraced, 0, 9, 1, 'o', 1, 1, 0xff, 0xff, 0x03})
	f.Fuzz(func(t *testing.T, data []byte) {
		e, err := Decode(data)
		if err != nil {
			return
		}
		got, err := Decode(Encode(e))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if got.Kind != e.Kind || got.Subject != e.Subject || got.ID != e.ID || got.Origin != e.Origin {
			t.Fatalf("round trip mismatch: %+v vs %+v", e, got)
		}
		if got.TraceID != e.TraceID || len(got.Trace) != len(e.Trace) {
			t.Fatalf("trace round trip mismatch: %+v vs %+v", e, got)
		}
		for i := range e.Trace {
			if got.Trace[i] != e.Trace[i] {
				t.Fatalf("hop %d mismatch: %+v vs %+v", i, got.Trace[i], e.Trace[i])
			}
		}
	})
}

// FuzzEnvelopePeek: Peek must agree with Decode on arbitrary bytes — both
// accept (with identical header fields) or both reject. The router's fast
// path trusts Peek's validation in place of a full Decode, so any frame
// the two parsers disagree on is a forwarding bug.
func FuzzEnvelopePeek(f *testing.F) {
	f.Add(Encode(Envelope{Kind: KindPublish, Hops: 2, Subject: "a.b", Payload: []byte("x")}))
	f.Add(Encode(Envelope{Kind: KindGuaranteed, ID: 9, Origin: "o", Subject: "s", Payload: nil}))
	f.Add(Encode(Envelope{Kind: KindGuarAck, ID: 1, Origin: "o"}))
	f.Add(Encode(Envelope{Kind: KindInterest, Patterns: []string{"a.>", "*"}}))
	f.Add([]byte{})
	addCompactSeeds(f)
	f.Add(Encode(Envelope{Kind: KindPublishTraced, Hops: 2, Subject: "t", TraceID: 1,
		Trace: []TraceHop{{Node: "sim:0", At: 123456789}, {Node: "router:r:a", At: -1}}}))
	f.Add(Encode(Envelope{Kind: KindGuaranteedTraced, ID: 4, Origin: "o", Subject: "g",
		TraceID: 99, Trace: []TraceHop{{Node: "n", At: 1690000000000000000}}}))
	f.Add([]byte{KindPublishTraced, 0, 1, MaxTraceHops + 1, 1, 'n', 2})
	f.Add([]byte{KindPublishTraced, 0, 1, 5, 1, 'n', 2})
	f.Add([]byte{KindGuaranteedTraced, 0, 9, 1, 'o', 1, 1, 0xff, 0xff, 0x03})
	f.Fuzz(func(t *testing.T, data []byte) {
		h, perr := Peek(data)
		e, derr := Decode(data)
		if (perr == nil) != (derr == nil) {
			t.Fatalf("peek err=%v decode err=%v on % x", perr, derr, data)
		}
		if perr != nil {
			return
		}
		if h.Kind != e.Kind || h.Hops != e.Hops || h.ID != e.ID ||
			string(h.Origin) != e.Origin || string(h.Subject) != e.Subject ||
			string(h.Payload) != string(e.Payload) {
			t.Fatalf("peek %+v disagrees with decode %+v on % x", h, e, data)
		}
	})
}

// Compact-kind seeds exercise the shared layout paths under the new kind
// bytes (added with the dictionary compression of the broadcast path).
func addCompactSeeds(f *testing.F) {
	f.Add(Encode(Envelope{Kind: KindPublishCompact, Hops: 1, Subject: "c.d", Payload: []byte{'I', 'B', 2, 0, 0, 0}}))
	f.Add(Encode(Envelope{Kind: KindGuaranteedCompact, ID: 3, Origin: "o", Subject: "g", Payload: []byte{1}}))
	f.Add(Encode(Envelope{Kind: KindPublishCompactTraced, Subject: "t", TraceID: 5,
		Trace: []TraceHop{{Node: "n", At: 1}}}))
	f.Add(Encode(Envelope{Kind: KindGuaranteedCompactTraced, ID: 8, Origin: "o", Subject: "s", TraceID: 2}))
}
