package busproto

import "testing"

// FuzzDecode: arbitrary bytes never panic; decodable envelopes round-trip.
func FuzzDecode(f *testing.F) {
	f.Add(Encode(Envelope{Kind: KindPublish, Subject: "a.b", Payload: []byte("x")}))
	f.Add(Encode(Envelope{Kind: KindGuaranteed, ID: 9, Origin: "o", Subject: "s", Payload: nil}))
	f.Add(Encode(Envelope{Kind: KindGuarAck, ID: 1, Origin: "o"}))
	f.Add(Encode(Envelope{Kind: KindInterest, Patterns: []string{"a.>", "*"}}))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		e, err := Decode(data)
		if err != nil {
			return
		}
		got, err := Decode(Encode(e))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if got.Kind != e.Kind || got.Subject != e.Subject || got.ID != e.ID || got.Origin != e.Origin {
			t.Fatalf("round trip mismatch: %+v vs %+v", e, got)
		}
	})
}
