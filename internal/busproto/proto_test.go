package busproto

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestEnvelopeRoundTrip(t *testing.T) {
	cases := []Envelope{
		{Kind: KindPublish, Subject: "a.b", Payload: []byte("data")},
		{Kind: KindPublish, Hops: 3, Subject: "x", Payload: nil},
		{Kind: KindGuaranteed, Hops: 1, ID: 42, Origin: "sim:0#abc", Subject: "g.s", Payload: []byte{1, 2}},
		{Kind: KindGuarAck, ID: 7, Origin: "sim:9#def"},
		{Kind: KindInterest, Patterns: []string{"a.>", "b.*", "c"}},
		{Kind: KindInterest, Patterns: nil},
	}
	for _, e := range cases {
		enc := Encode(e)
		got, err := Decode(enc)
		if err != nil {
			t.Fatalf("decode(%+v): %v", e, err)
		}
		if got.Kind != e.Kind || got.ID != e.ID || got.Subject != e.Subject ||
			got.Origin != e.Origin || got.Hops != e.Hops ||
			string(got.Payload) != string(e.Payload) || len(got.Patterns) != len(e.Patterns) {
			t.Errorf("round trip %+v -> %+v", e, got)
		}
		for i := range e.Patterns {
			if got.Patterns[i] != e.Patterns[i] {
				t.Errorf("pattern %d: %q vs %q", i, got.Patterns[i], e.Patterns[i])
			}
		}
	}
}

func TestEnvelopeCorrupt(t *testing.T) {
	if _, err := Decode(nil); !errors.Is(err, ErrEnvelopeCorrupt) {
		t.Errorf("nil error = %v", err)
	}
	if _, err := Decode([]byte{77}); !errors.Is(err, ErrEnvelopeCorrupt) {
		t.Errorf("unknown kind error = %v", err)
	}
	good := Encode(Envelope{Kind: KindGuarAck, ID: 9, Origin: "o"})
	for i := 1; i < len(good); i++ {
		if _, err := Decode(good[:i]); err == nil {
			t.Errorf("truncated ack envelope of %d bytes decoded", i)
		}
	}
	// Trailing garbage on fixed-layout kinds is rejected.
	if _, err := Decode(append(good, 1)); !errors.Is(err, ErrEnvelopeCorrupt) {
		t.Errorf("trailing bytes error = %v", err)
	}
}

// Property: Decode never panics on arbitrary input, and Encode/Decode
// round-trips arbitrary publish envelopes.
func TestQuickEnvelopeRobust(t *testing.T) {
	if err := quick.Check(func(data []byte) bool {
		_, _ = Decode(data)
		return true
	}, nil); err != nil {
		t.Error(err)
	}
	if err := quick.Check(func(payload []byte, hops uint8) bool {
		e := Envelope{Kind: KindPublish, Hops: hops, Subject: "q.t", Payload: payload}
		got, err := Decode(Encode(e))
		return err == nil && got.Hops == hops && string(got.Payload) == string(payload)
	}, nil); err != nil {
		t.Error(err)
	}
}
