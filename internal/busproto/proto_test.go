package busproto

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestEnvelopeRoundTrip(t *testing.T) {
	cases := []Envelope{
		{Kind: KindPublish, Subject: "a.b", Payload: []byte("data")},
		{Kind: KindPublish, Hops: 3, Subject: "x", Payload: nil},
		{Kind: KindGuaranteed, Hops: 1, ID: 42, Origin: "sim:0#abc", Subject: "g.s", Payload: []byte{1, 2}},
		{Kind: KindGuarAck, ID: 7, Origin: "sim:9#def"},
		{Kind: KindInterest, Patterns: []string{"a.>", "b.*", "c"}},
		{Kind: KindInterest, Patterns: nil},
	}
	for _, e := range cases {
		enc := Encode(e)
		got, err := Decode(enc)
		if err != nil {
			t.Fatalf("decode(%+v): %v", e, err)
		}
		if got.Kind != e.Kind || got.ID != e.ID || got.Subject != e.Subject ||
			got.Origin != e.Origin || got.Hops != e.Hops ||
			string(got.Payload) != string(e.Payload) || len(got.Patterns) != len(e.Patterns) {
			t.Errorf("round trip %+v -> %+v", e, got)
		}
		for i := range e.Patterns {
			if got.Patterns[i] != e.Patterns[i] {
				t.Errorf("pattern %d: %q vs %q", i, got.Patterns[i], e.Patterns[i])
			}
		}
	}
}

func TestTracedEnvelopeRoundTrip(t *testing.T) {
	cases := []Envelope{
		{Kind: KindPublishTraced, Subject: "a.b", Payload: []byte("data"), TraceID: 77},
		{Kind: KindPublishTraced, Hops: 2, Subject: "x", TraceID: 1,
			Trace: []TraceHop{{Node: "sim:0", At: 123}, {Node: "router:r:east", At: -4}}},
		{Kind: KindGuaranteedTraced, Hops: 1, ID: 42, Origin: "sim:0#abc", Subject: "g.s",
			Payload: []byte{1, 2}, TraceID: 9,
			Trace: []TraceHop{{Node: "sim:0", At: 1690000000000000000}}},
		{Kind: KindGuaranteedTraced, ID: 7, Origin: "o", Subject: "g.k", TraceID: 11,
			Trace: []TraceHop{
				{Node: "sim:0", Kind: HopNode, At: 10},
				{Node: "sim:0", Kind: HopLedgerStage, At: 11},
				{Node: "sim:0", Kind: HopGroupCommit, At: 15},
				{Node: "sim:0", Kind: HopFsync, At: 17},
				{Node: "sim:0", Kind: HopReplicaChunk, At: 18},
				{Node: "sim:0", Kind: HopQuorumAck, At: 30},
				{Node: "sim:1", Kind: HopLaneEnqueue, At: 31},
				{Node: "sim:1", Kind: HopLanePop, At: 32},
				{Node: "sim:1", Kind: HopRecoveryReplay, At: 33},
				{Node: "sim:1", Kind: 200, At: 34}, // unknown kinds survive the wire
			}},
	}
	for _, e := range cases {
		got, err := Decode(Encode(e))
		if err != nil {
			t.Fatalf("decode(%+v): %v", e, err)
		}
		if got.Kind != e.Kind || got.ID != e.ID || got.Subject != e.Subject ||
			got.Origin != e.Origin || got.Hops != e.Hops || got.TraceID != e.TraceID ||
			string(got.Payload) != string(e.Payload) || len(got.Trace) != len(e.Trace) {
			t.Errorf("round trip %+v -> %+v", e, got)
		}
		for i := range e.Trace {
			if got.Trace[i] != e.Trace[i] {
				t.Errorf("hop %d: %+v vs %+v", i, got.Trace[i], e.Trace[i])
			}
		}
	}
}

func TestTracedHelpers(t *testing.T) {
	e := Envelope{Kind: KindPublishTraced, Subject: "s"}
	if e.Base() != KindPublish || !e.Traced() {
		t.Fatalf("Base/Traced on traced publish: %d %t", e.Base(), e.Traced())
	}
	g := Envelope{Kind: KindGuaranteedTraced}
	if g.Base() != KindGuaranteed {
		t.Fatalf("Base on traced guaranteed: %d", g.Base())
	}
	p := Envelope{Kind: KindPublish}
	if p.Base() != KindPublish || p.Traced() {
		t.Fatal("plain publish must be its own base and untraced")
	}
	p.AppendHop("n", 1)
	if p.Trace != nil {
		t.Fatal("AppendHop on untraced envelope must be a no-op")
	}
	for i := 0; i < MaxTraceHops+5; i++ {
		e.AppendHop("n", int64(i))
	}
	if len(e.Trace) != MaxTraceHops {
		t.Fatalf("trace grew to %d, cap is %d", len(e.Trace), MaxTraceHops)
	}
	// AppendHop is the HopNode special case of AppendStageHop.
	s := Envelope{Kind: KindGuaranteedTraced}
	s.AppendStageHop(HopGroupCommit, "n", 5)
	s.AppendHop("m", 6)
	if s.Trace[0].Kind != HopGroupCommit || s.Trace[1].Kind != HopNode {
		t.Fatalf("stage hop kinds: %+v", s.Trace)
	}
	for _, k := range []byte{HopLaneEnqueue, HopLanePop, HopLedgerStage, HopGroupCommit,
		HopFsync, HopReplicaChunk, HopQuorumAck, HopRecoveryReplay} {
		if HopKindName(k) == "node" {
			t.Errorf("HopKindName(%d) fell through to node", k)
		}
	}
	if HopKindName(HopNode) != "node" || HopKindName(99) != "node" {
		t.Error("HopKindName default must be node")
	}
	// AppendHop must not alias a shared slice (router fan-out).
	shared := Envelope{Kind: KindPublishTraced, Trace: make([]TraceHop, 1, 8)}
	a, b := shared, shared
	a.AppendHop("a", 1)
	b.AppendHop("b", 2)
	if a.Trace[1].Node != "a" || b.Trace[1].Node != "b" {
		t.Fatalf("AppendHop aliased the shared trace: %+v vs %+v", a.Trace, b.Trace)
	}
}

// TestUntracedLayoutFrozen pins the legacy byte layout of the untraced
// data kinds: with tracing disabled the daemon emits these envelopes, so
// any growth here would violate the zero-extra-wire-bytes guarantee.
func TestUntracedLayoutFrozen(t *testing.T) {
	got := Encode(Envelope{Kind: KindPublish, Hops: 3, Subject: "a.b", Payload: []byte{9, 8}})
	want := []byte{KindPublish, 3, 3, 'a', '.', 'b', 9, 8}
	if string(got) != string(want) {
		t.Fatalf("publish layout changed: % x, want % x", got, want)
	}
	got = Encode(Envelope{Kind: KindGuaranteed, Hops: 1, ID: 5, Origin: "o", Subject: "s", Payload: []byte{7}})
	want = []byte{KindGuaranteed, 1, 5, 1, 'o', 1, 's', 7}
	if string(got) != string(want) {
		t.Fatalf("guaranteed layout changed: % x, want % x", got, want)
	}
}

func TestTraceCaps(t *testing.T) {
	// A hop list longer than MaxTraceHops is rejected at decode.
	e := Envelope{Kind: KindPublishTraced, Subject: "s", TraceID: 1}
	for i := 0; i < MaxTraceHops; i++ {
		e.Trace = append(e.Trace, TraceHop{Node: "n", At: int64(i)})
	}
	enc := Encode(e)
	if _, err := Decode(enc); err != nil {
		t.Fatalf("full trace must decode: %v", err)
	}
	// Patch the hop count (bytes: kind, hops, traceID=1 byte, count).
	enc[3] = MaxTraceHops + 1
	if _, err := Decode(enc); !errors.Is(err, ErrEnvelopeCorrupt) {
		t.Errorf("oversized hop count error = %v", err)
	}
	// A node name above maxNodeLen is rejected.
	long := Envelope{Kind: KindPublishTraced, Subject: "s",
		Trace: []TraceHop{{Node: string(make([]byte, 300)), At: 1}}}
	if _, err := Decode(Encode(long)); !errors.Is(err, ErrEnvelopeCorrupt) {
		t.Errorf("oversized node name error = %v", err)
	}
	// Truncations anywhere in a traced envelope are rejected, not panics.
	full := Encode(Envelope{Kind: KindGuaranteedTraced, ID: 3, Origin: "o", Subject: "s",
		TraceID: 8, Trace: []TraceHop{{Node: "a", At: 100}, {Node: "b", At: 200}}})
	for i := 1; i < len(full)-1; i++ {
		if _, err := Decode(full[:i]); err == nil {
			// The payload tail is legitimately variable-length; only the
			// header region must reject truncation. Find where the subject
			// ends: everything before it is header.
			dec, _ := Decode(full[:i])
			if dec.Subject != "s" {
				t.Errorf("truncated traced envelope of %d bytes decoded: %+v", i, dec)
			}
		}
	}
}

func TestEnvelopeCorrupt(t *testing.T) {
	if _, err := Decode(nil); !errors.Is(err, ErrEnvelopeCorrupt) {
		t.Errorf("nil error = %v", err)
	}
	if _, err := Decode([]byte{77}); !errors.Is(err, ErrEnvelopeCorrupt) {
		t.Errorf("unknown kind error = %v", err)
	}
	good := Encode(Envelope{Kind: KindGuarAck, ID: 9, Origin: "o"})
	for i := 1; i < len(good); i++ {
		if _, err := Decode(good[:i]); err == nil {
			t.Errorf("truncated ack envelope of %d bytes decoded", i)
		}
	}
	// Trailing garbage on fixed-layout kinds is rejected.
	if _, err := Decode(append(good, 1)); !errors.Is(err, ErrEnvelopeCorrupt) {
		t.Errorf("trailing bytes error = %v", err)
	}
}

// Property: Decode never panics on arbitrary input, and Encode/Decode
// round-trips arbitrary publish envelopes.
func TestQuickEnvelopeRobust(t *testing.T) {
	if err := quick.Check(func(data []byte) bool {
		_, _ = Decode(data)
		return true
	}, nil); err != nil {
		t.Error(err)
	}
	if err := quick.Check(func(payload []byte, hops uint8) bool {
		e := Envelope{Kind: KindPublish, Hops: hops, Subject: "q.t", Payload: payload}
		got, err := Decode(Encode(e))
		return err == nil && got.Hops == hops && string(got.Payload) == string(payload)
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestCompactEnvelopeRoundTrip(t *testing.T) {
	cases := []Envelope{
		{Kind: KindPublishCompact, Hops: 2, Subject: "a.b", Payload: []byte("data")},
		{Kind: KindGuaranteedCompact, Hops: 1, ID: 42, Origin: "sim:0#abc", Subject: "g.s", Payload: []byte{1, 2}},
		{Kind: KindPublishCompactTraced, Subject: "x", TraceID: 7,
			Trace: []TraceHop{{Node: "sim:0", At: 123}}},
		{Kind: KindGuaranteedCompactTraced, ID: 9, Origin: "o", Subject: "s", TraceID: 3,
			Payload: []byte{5}, Trace: []TraceHop{{Node: "n", At: -1}}},
	}
	for _, e := range cases {
		got, err := Decode(Encode(e))
		if err != nil {
			t.Fatalf("decode(%+v): %v", e, err)
		}
		if got.Kind != e.Kind || got.ID != e.ID || got.Subject != e.Subject ||
			got.Origin != e.Origin || got.Hops != e.Hops || got.TraceID != e.TraceID ||
			string(got.Payload) != string(e.Payload) || len(got.Trace) != len(e.Trace) {
			t.Errorf("round trip %+v -> %+v", e, got)
		}
	}
}

func TestCompactHelpers(t *testing.T) {
	kinds := []struct {
		kind                       byte
		base                       byte
		guaranteed, compact, trace bool
	}{
		{KindPublish, KindPublish, false, false, false},
		{KindGuaranteed, KindGuaranteed, true, false, false},
		{KindPublishTraced, KindPublish, false, false, true},
		{KindGuaranteedTraced, KindGuaranteed, true, false, true},
		{KindPublishCompact, KindPublish, false, true, false},
		{KindGuaranteedCompact, KindGuaranteed, true, true, false},
		{KindPublishCompactTraced, KindPublish, false, true, true},
		{KindGuaranteedCompactTraced, KindGuaranteed, true, true, true},
	}
	for _, k := range kinds {
		e := Envelope{Kind: k.kind}
		if e.Base() != k.base {
			t.Errorf("kind %d: Base = %d, want %d", k.kind, e.Base(), k.base)
		}
		if e.Compact() != k.compact {
			t.Errorf("kind %d: Compact = %t", k.kind, e.Compact())
		}
		if e.Traced() != k.trace {
			t.Errorf("kind %d: Traced = %t", k.kind, e.Traced())
		}
		if got := DataKind(k.guaranteed, k.compact, k.trace); got != k.kind {
			t.Errorf("DataKind(%t,%t,%t) = %d, want %d", k.guaranteed, k.compact, k.trace, got, k.kind)
		}
	}
	// Compact layout matches the plain layout except for the kind byte, so
	// routers and the retransmit machinery treat both identically.
	plain := Encode(Envelope{Kind: KindPublish, Hops: 3, Subject: "a.b", Payload: []byte{9}})
	compact := Encode(Envelope{Kind: KindPublishCompact, Hops: 3, Subject: "a.b", Payload: []byte{9}})
	if plain[0] != KindPublish || compact[0] != KindPublishCompact ||
		string(plain[1:]) != string(compact[1:]) {
		t.Fatalf("compact layout diverged: % x vs % x", plain, compact)
	}
}
