package repository

import (
	"testing"

	"infobus/internal/mop"
	"infobus/internal/relstore"
)

// BenchmarkStore measures the meta-data-driven decomposition of a nested
// Story object into relations.
func BenchmarkStore(b *testing.B) {
	repo := New(relstore.NewDB(), mop.NewRegistry())
	story, _, group := newsHierarchy()
	obj := sampleStory(story, group, "bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := repo.Store(obj); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLoad measures the reconstruction of the same object.
func BenchmarkLoad(b *testing.B) {
	repo := New(relstore.NewDB(), mop.NewRegistry())
	story, _, group := newsHierarchy()
	oid, err := repo.Store(sampleStory(story, group, "bench"))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := repo.Load("Story", oid); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHierarchyQuery measures the subtype-spanning query over a
// populated repository.
func BenchmarkHierarchyQuery(b *testing.B) {
	repo := New(relstore.NewDB(), mop.NewRegistry())
	story, dj, group := newsHierarchy()
	for i := 0; i < 50; i++ {
		if _, err := repo.Store(sampleStory(story, group, "s")); err != nil {
			b.Fatal(err)
		}
		d := sampleStory(dj, group, "d")
		d.MustSet("djCode", "X")
		if _, err := repo.Store(d); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		objs, err := repo.QueryByType(story)
		if err != nil || len(objs) != 100 {
			b.Fatalf("%d, %v", len(objs), err)
		}
	}
}
