// Package repository implements the Object Repository (§4): "a
// sophisticated adapter that integrates a commercially available
// relational database system into the Information Bus architecture. The
// Object Repository maps Information Bus objects into database relations
// for storage or retrieval. This mapping is driven by the meta-data of
// each object."
//
// The mapping decomposes a complex object into one or more tables and
// reconstructs it on the way out:
//
//   - each class gets a table "obj_<Class>" keyed by an object id, with
//     one column per scalar attribute;
//   - a class-typed attribute becomes (oid, class) reference columns, the
//     child object living in its own class table;
//   - a list-typed attribute becomes a child table
//     "obj_<Class>__<attr>" of (oid, idx, value...) rows;
//   - an any-typed attribute (and nested lists) falls back to the
//     self-describing wire encoding in a bytes column.
//
// The conversion "respects the type hierarchy, enabling queries to return
// all objects that satisfy a constraint, including objects that are
// instances of a subtype. Old queries will still work even as new
// subtypes are introduced" (R2): QueryByType(Story) scans the table of
// every registered subtype of Story. "When the repository needs to store
// an instance of a previously unknown type, it is capable of generating
// one or more new database tables to represent the new type" — Store
// creates missing tables on the fly from the class meta-data alone.
package repository

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"infobus/internal/mop"
	"infobus/internal/relstore"
	"infobus/internal/wire"
)

// Column-name suffixes for non-scalar attributes.
const (
	sufOID   = "__oid"
	sufClass = "__class"
	sufWire  = "__wire"
)

// Repository errors.
var (
	ErrNilObject = errors.New("repository: nil object")
	ErrNoSuchOID = errors.New("repository: no object with that id")
	ErrNotStored = errors.New("repository: class has no table yet")
	ErrBadAttr   = errors.New("repository: attribute unusable in a query")
	ErrNotAClass = errors.New("repository: type is not a class")
	ErrCycle     = errors.New("repository: object graph contains a cycle")
)

// Repository maps objects to relations inside a relstore.DB.
type Repository struct {
	db  *relstore.DB
	reg *mop.Registry

	mu      sync.Mutex
	nextOID int64
	// stored tracks which classes the repository has (or had) instances
	// of, so hierarchy queries know which tables to visit.
	stored map[string]*mop.Type
}

// New creates a repository over a database and a type registry. The
// registry supplies the meta-data that drives every conversion.
func New(db *relstore.DB, reg *mop.Registry) *Repository {
	return &Repository{db: db, reg: reg, stored: make(map[string]*mop.Type)}
}

// DB exposes the underlying relational store (for inspection and tests).
func (r *Repository) DB() *relstore.DB { return r.db }

func tableName(class string) string { return "obj_" + class }

func listTableName(class, attr string) string { return "obj_" + class + "__" + attr }

// ---------------------------------------------------------------------------
// Schema generation

// ensureSchema creates (if missing) the tables representing a class,
// recursively for referenced classes. Driven purely by type meta-data (P2).
func (r *Repository) ensureSchema(t *mop.Type) error {
	if t == nil || t.Kind() != mop.KindClass {
		return ErrNotAClass
	}
	if err := r.reg.Register(t); err != nil {
		return err
	}
	if r.db.Has(tableName(t.Name())) {
		r.mu.Lock()
		r.stored[t.Name()] = t
		r.mu.Unlock()
		return nil
	}
	cols := []relstore.Column{{Name: "oid", Type: relstore.ColInt}}
	for _, a := range t.Attrs() {
		switch a.Type.Kind() {
		case mop.KindBool:
			cols = append(cols, relstore.Column{Name: a.Name, Type: relstore.ColBool})
		case mop.KindInt:
			cols = append(cols, relstore.Column{Name: a.Name, Type: relstore.ColInt})
		case mop.KindFloat:
			cols = append(cols, relstore.Column{Name: a.Name, Type: relstore.ColFloat})
		case mop.KindString:
			cols = append(cols, relstore.Column{Name: a.Name, Type: relstore.ColString})
		case mop.KindBytes:
			cols = append(cols, relstore.Column{Name: a.Name, Type: relstore.ColBytes})
		case mop.KindTime:
			cols = append(cols, relstore.Column{Name: a.Name, Type: relstore.ColTime})
		case mop.KindClass:
			cols = append(cols,
				relstore.Column{Name: a.Name + sufOID, Type: relstore.ColInt},
				relstore.Column{Name: a.Name + sufClass, Type: relstore.ColString})
			if err := r.ensureSchema(a.Type); err != nil {
				return err
			}
		case mop.KindAny:
			cols = append(cols, relstore.Column{Name: a.Name + sufWire, Type: relstore.ColBytes})
		case mop.KindList:
			if err := r.ensureListTable(t, a); err != nil {
				return err
			}
		}
	}
	tbl, err := r.db.CreateTable(relstore.Schema{Name: tableName(t.Name()), Columns: cols})
	if err != nil {
		if errors.Is(err, relstore.ErrTableExists) {
			// A concurrent Store created it; fine.
			r.mu.Lock()
			r.stored[t.Name()] = t
			r.mu.Unlock()
			return nil
		}
		return err
	}
	if err := tbl.CreateIndex("oid"); err != nil && !errors.Is(err, relstore.ErrIndexExists) {
		return err
	}
	r.mu.Lock()
	r.stored[t.Name()] = t
	r.mu.Unlock()
	return nil
}

// ensureListTable creates the (oid, idx, value) child table for one
// list-typed attribute.
func (r *Repository) ensureListTable(owner *mop.Type, a mop.Attr) error {
	name := listTableName(owner.Name(), a.Name)
	if r.db.Has(name) {
		return nil
	}
	cols := []relstore.Column{
		{Name: "oid", Type: relstore.ColInt},
		{Name: "idx", Type: relstore.ColInt},
	}
	elem := a.Type.Elem()
	switch elem.Kind() {
	case mop.KindBool:
		cols = append(cols, relstore.Column{Name: "value", Type: relstore.ColBool})
	case mop.KindInt:
		cols = append(cols, relstore.Column{Name: "value", Type: relstore.ColInt})
	case mop.KindFloat:
		cols = append(cols, relstore.Column{Name: "value", Type: relstore.ColFloat})
	case mop.KindString:
		cols = append(cols, relstore.Column{Name: "value", Type: relstore.ColString})
	case mop.KindBytes:
		cols = append(cols, relstore.Column{Name: "value", Type: relstore.ColBytes})
	case mop.KindTime:
		cols = append(cols, relstore.Column{Name: "value", Type: relstore.ColTime})
	case mop.KindClass:
		cols = append(cols,
			relstore.Column{Name: "value" + sufOID, Type: relstore.ColInt},
			relstore.Column{Name: "value" + sufClass, Type: relstore.ColString})
		if err := r.ensureSchema(elem); err != nil {
			return err
		}
	default: // nested lists, any: wire-encoded
		cols = append(cols, relstore.Column{Name: "value" + sufWire, Type: relstore.ColBytes})
	}
	tbl, err := r.db.CreateTable(relstore.Schema{Name: name, Columns: cols})
	if err != nil {
		if errors.Is(err, relstore.ErrTableExists) {
			return nil
		}
		return err
	}
	if err := tbl.CreateIndex("oid"); err != nil && !errors.Is(err, relstore.ErrIndexExists) {
		return err
	}
	return nil
}

// ---------------------------------------------------------------------------
// Store

// Store decomposes an object into rows (creating any missing tables) and
// returns the object id of the root.
func (r *Repository) Store(obj *mop.Object) (int64, error) {
	if obj == nil {
		return 0, ErrNilObject
	}
	return r.store(obj, make(map[*mop.Object]bool))
}

func (r *Repository) store(obj *mop.Object, inProgress map[*mop.Object]bool) (int64, error) {
	if inProgress[obj] {
		return 0, ErrCycle
	}
	inProgress[obj] = true
	defer delete(inProgress, obj)

	t := obj.Type()
	if err := r.ensureSchema(t); err != nil {
		return 0, err
	}
	r.mu.Lock()
	r.nextOID++
	oid := r.nextOID
	r.mu.Unlock()

	vals := map[string]any{"oid": oid}
	for i, a := range t.Attrs() {
		v := obj.GetAt(i)
		switch a.Type.Kind() {
		case mop.KindBool, mop.KindInt, mop.KindFloat, mop.KindString, mop.KindTime:
			vals[a.Name] = v
		case mop.KindBytes:
			if v != nil {
				vals[a.Name] = v
			}
		case mop.KindClass:
			child, _ := v.(*mop.Object)
			if child == nil {
				continue // NULL reference
			}
			childOID, err := r.store(child, inProgress)
			if err != nil {
				return 0, err
			}
			vals[a.Name+sufOID] = childOID
			vals[a.Name+sufClass] = child.Type().Name()
		case mop.KindAny:
			if v == nil {
				continue
			}
			enc, err := wire.Marshal(v)
			if err != nil {
				return 0, fmt.Errorf("repository: attribute %q: %w", a.Name, err)
			}
			vals[a.Name+sufWire] = enc
		case mop.KindList:
			list, _ := v.(mop.List)
			if err := r.storeList(t, a, oid, list, inProgress); err != nil {
				return 0, err
			}
		}
	}
	tbl, err := r.db.Table(tableName(t.Name()))
	if err != nil {
		return 0, err
	}
	if _, err := tbl.InsertMap(vals); err != nil {
		return 0, err
	}
	return oid, nil
}

func (r *Repository) storeList(owner *mop.Type, a mop.Attr, oid int64, list mop.List, inProgress map[*mop.Object]bool) error {
	if len(list) == 0 {
		return nil
	}
	tbl, err := r.db.Table(listTableName(owner.Name(), a.Name))
	if err != nil {
		return err
	}
	elem := a.Type.Elem()
	for i, v := range list {
		vals := map[string]any{"oid": oid, "idx": int64(i)}
		switch elem.Kind() {
		case mop.KindBool, mop.KindInt, mop.KindFloat, mop.KindString, mop.KindBytes, mop.KindTime:
			if v != nil {
				vals["value"] = v
			}
		case mop.KindClass:
			child, _ := v.(*mop.Object)
			if child != nil {
				childOID, err := r.store(child, inProgress)
				if err != nil {
					return err
				}
				vals["value"+sufOID] = childOID
				vals["value"+sufClass] = child.Type().Name()
			}
		default:
			if v != nil {
				enc, err := wire.Marshal(v)
				if err != nil {
					return fmt.Errorf("repository: list attribute %q: %w", a.Name, err)
				}
				vals["value"+sufWire] = enc
			}
		}
		if _, err := tbl.InsertMap(vals); err != nil {
			return err
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Load / reconstruct

// Load reconstructs the object with the given class and object id.
func (r *Repository) Load(class string, oid int64) (*mop.Object, error) {
	t, err := r.reg.Lookup(class)
	if err != nil {
		return nil, err
	}
	if t.Kind() != mop.KindClass {
		return nil, fmt.Errorf("%q: %w", class, ErrNotAClass)
	}
	tbl, err := r.db.Table(tableName(class))
	if err != nil {
		return nil, fmt.Errorf("%q: %w", class, ErrNotStored)
	}
	_, rows, err := tbl.Select(relstore.Eq("oid", oid))
	if err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("%s #%d: %w", class, oid, ErrNoSuchOID)
	}
	return r.reconstruct(t, tbl, rows[0], oid)
}

func (r *Repository) reconstruct(t *mop.Type, tbl *relstore.Table, row relstore.Row, oid int64) (*mop.Object, error) {
	obj, err := mop.New(t)
	if err != nil {
		return nil, err
	}
	for i, a := range t.Attrs() {
		switch a.Type.Kind() {
		case mop.KindBool, mop.KindInt, mop.KindFloat, mop.KindString, mop.KindBytes, mop.KindTime:
			ci, err := tbl.ColIndex(a.Name)
			if err != nil {
				return nil, err
			}
			v := row[ci]
			if v == nil {
				continue // zero value already in place
			}
			if err := obj.SetAt(i, v); err != nil {
				return nil, err
			}
		case mop.KindClass:
			co, err := tbl.ColIndex(a.Name + sufOID)
			if err != nil {
				return nil, err
			}
			cc, err := tbl.ColIndex(a.Name + sufClass)
			if err != nil {
				return nil, err
			}
			if row[co] == nil || row[cc] == nil {
				continue
			}
			child, err := r.Load(row[cc].(string), row[co].(int64))
			if err != nil {
				return nil, err
			}
			if err := obj.SetAt(i, child); err != nil {
				return nil, err
			}
		case mop.KindAny:
			ci, err := tbl.ColIndex(a.Name + sufWire)
			if err != nil {
				return nil, err
			}
			if row[ci] == nil {
				continue
			}
			v, err := wire.Unmarshal(row[ci].([]byte), r.reg)
			if err != nil {
				return nil, err
			}
			if err := obj.SetAt(i, v); err != nil {
				return nil, err
			}
		case mop.KindList:
			list, err := r.loadList(t, a, oid)
			if err != nil {
				return nil, err
			}
			if list != nil {
				if err := obj.SetAt(i, list); err != nil {
					return nil, err
				}
			}
		}
	}
	return obj, nil
}

func (r *Repository) loadList(owner *mop.Type, a mop.Attr, oid int64) (mop.List, error) {
	tbl, err := r.db.Table(listTableName(owner.Name(), a.Name))
	if err != nil {
		return nil, nil // table never created: empty list
	}
	_, rows, err := tbl.Select(relstore.Eq("oid", oid))
	if err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return nil, nil
	}
	idxCol, _ := tbl.ColIndex("idx")
	sort.Slice(rows, func(i, j int) bool {
		return rows[i][idxCol].(int64) < rows[j][idxCol].(int64)
	})
	elem := a.Type.Elem()
	out := make(mop.List, 0, len(rows))
	for _, row := range rows {
		switch elem.Kind() {
		case mop.KindBool, mop.KindInt, mop.KindFloat, mop.KindString, mop.KindBytes, mop.KindTime:
			ci, err := tbl.ColIndex("value")
			if err != nil {
				return nil, err
			}
			out = append(out, row[ci])
		case mop.KindClass:
			co, _ := tbl.ColIndex("value" + sufOID)
			cc, _ := tbl.ColIndex("value" + sufClass)
			if row[co] == nil {
				out = append(out, nil)
				continue
			}
			child, err := r.Load(row[cc].(string), row[co].(int64))
			if err != nil {
				return nil, err
			}
			out = append(out, child)
		default:
			ci, _ := tbl.ColIndex("value" + sufWire)
			if row[ci] == nil {
				out = append(out, nil)
				continue
			}
			v, err := wire.Unmarshal(row[ci].([]byte), r.reg)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		}
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Queries

// storedSubtypes returns the classes with tables that are subtypes of base.
func (r *Repository) storedSubtypes(base *mop.Type) []*mop.Type {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []*mop.Type
	for _, t := range r.stored {
		if t.IsSubtypeOf(base) {
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}

// QueryByType reconstructs every stored instance of base or any of its
// subtypes — the hierarchy-respecting query of §4. Old queries keep
// working as new subtypes appear, because the subtype table set is
// computed at query time.
func (r *Repository) QueryByType(base *mop.Type) ([]*mop.Object, error) {
	return r.queryWhere(base, nil)
}

// QueryEq returns stored instances of base (or subtypes) whose scalar
// attribute equals val.
func (r *Repository) QueryEq(base *mop.Type, attr string, val mop.Value) ([]*mop.Object, error) {
	a, ok := base.Attr(attr)
	if !ok {
		return nil, fmt.Errorf("%s.%s: %w", base.Name(), attr, mop.ErrNoAttr)
	}
	switch a.Type.Kind() {
	case mop.KindBool, mop.KindInt, mop.KindFloat, mop.KindString, mop.KindBytes, mop.KindTime:
	default:
		return nil, fmt.Errorf("%s.%s is %s: %w", base.Name(), attr, a.Type.Name(), ErrBadAttr)
	}
	return r.queryWhere(base, relstore.Eq(attr, val))
}

func (r *Repository) queryWhere(base *mop.Type, p relstore.Predicate) ([]*mop.Object, error) {
	if base == nil || base.Kind() != mop.KindClass {
		return nil, ErrNotAClass
	}
	var out []*mop.Object
	for _, t := range r.storedSubtypes(base) {
		tbl, err := r.db.Table(tableName(t.Name()))
		if err != nil {
			continue
		}
		var pred relstore.Predicate = relstore.All()
		if p != nil {
			pred = p
		}
		_, rows, err := tbl.Select(pred)
		if err != nil {
			return nil, err
		}
		oidCol, _ := tbl.ColIndex("oid")
		for _, row := range rows {
			obj, err := r.reconstruct(t, tbl, row, row[oidCol].(int64))
			if err != nil {
				return nil, err
			}
			out = append(out, obj)
		}
	}
	return out, nil
}

// Count returns the number of stored instances of base or its subtypes.
func (r *Repository) Count(base *mop.Type) (int, error) {
	if base == nil || base.Kind() != mop.KindClass {
		return 0, ErrNotAClass
	}
	total := 0
	for _, t := range r.storedSubtypes(base) {
		tbl, err := r.db.Table(tableName(t.Name()))
		if err != nil {
			continue
		}
		total += tbl.Len()
	}
	return total, nil
}

// Delete removes the object with the given class and object id, including
// its list rows. Child objects referenced through class-typed attributes
// are NOT deleted (they may be shared); a repository vacuum is the place
// for reference-counted reclamation.
func (r *Repository) Delete(class string, oid int64) error {
	t, err := r.reg.Lookup(class)
	if err != nil {
		return err
	}
	if t.Kind() != mop.KindClass {
		return fmt.Errorf("%q: %w", class, ErrNotAClass)
	}
	tbl, err := r.db.Table(tableName(class))
	if err != nil {
		return fmt.Errorf("%q: %w", class, ErrNotStored)
	}
	n, err := tbl.Delete(relstore.Eq("oid", oid))
	if err != nil {
		return err
	}
	if n == 0 {
		return fmt.Errorf("%s #%d: %w", class, oid, ErrNoSuchOID)
	}
	for _, a := range t.Attrs() {
		if a.Type.Kind() != mop.KindList {
			continue
		}
		lt, err := r.db.Table(listTableName(class, a.Name))
		if err != nil {
			continue
		}
		if _, err := lt.Delete(relstore.Eq("oid", oid)); err != nil {
			return err
		}
	}
	return nil
}
