package repository

import (
	"fmt"
	"sync"

	"infobus/internal/core"
	"infobus/internal/mop"
	"infobus/internal/rmi"
	"infobus/internal/transport"
)

// CaptureServer is the repository "configured as a capture server that
// captures all objects for a given set of subjects and inserts those
// objects automatically into the repository" (§4).
type CaptureServer struct {
	repo *Repository

	mu       sync.Mutex
	subs     []*core.Subscription
	captured uint64
	errs     uint64
	done     chan struct{}
	wg       sync.WaitGroup
	closed   bool
}

// NewCaptureServer subscribes the repository to the given subject patterns
// on the bus and stores every arriving object.
func NewCaptureServer(repo *Repository, bus *core.Bus, patterns ...string) (*CaptureServer, error) {
	cs := &CaptureServer{repo: repo, done: make(chan struct{})}
	for _, p := range patterns {
		sub, err := bus.Subscribe(p)
		if err != nil {
			cs.Close()
			return nil, fmt.Errorf("repository: capture subscription %q: %w", p, err)
		}
		cs.subs = append(cs.subs, sub)
		cs.wg.Add(1)
		go cs.capture(sub)
	}
	return cs, nil
}

// Captured returns how many objects have been stored.
func (cs *CaptureServer) Captured() uint64 {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return cs.captured
}

// Errors returns how many arriving values could not be stored (non-object
// publications on captured subjects are counted here, not fatal).
func (cs *CaptureServer) Errors() uint64 {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return cs.errs
}

// Close stops capturing.
func (cs *CaptureServer) Close() {
	cs.mu.Lock()
	if cs.closed {
		cs.mu.Unlock()
		return
	}
	cs.closed = true
	cs.mu.Unlock()
	close(cs.done)
	for _, s := range cs.subs {
		s.Cancel()
	}
	cs.wg.Wait()
}

func (cs *CaptureServer) capture(sub *core.Subscription) {
	defer cs.wg.Done()
	for {
		select {
		case <-cs.done:
			return
		case ev, ok := <-sub.C:
			if !ok {
				return
			}
			obj, isObj := ev.Value.(*mop.Object)
			if !isObj {
				cs.mu.Lock()
				cs.errs++
				cs.mu.Unlock()
				continue
			}
			if _, err := cs.repo.Store(obj); err != nil {
				cs.mu.Lock()
				cs.errs++
				cs.mu.Unlock()
				continue
			}
			cs.mu.Lock()
			cs.captured++
			cs.mu.Unlock()
		}
	}
}

// QueryInterface is the RMI interface class of a repository query server
// (§4: "configured as a query server to receive requests from clients and
// return replies").
var QueryInterface = mop.MustNewClass("ObjectRepository", nil, nil, []mop.Operation{
	{Name: "store", Params: []mop.Param{{Name: "object", Type: mop.Any}}, Result: mop.Int},
	{Name: "load", Params: []mop.Param{
		{Name: "class", Type: mop.String}, {Name: "oid", Type: mop.Int},
	}, Result: mop.Any},
	{Name: "queryByType", Params: []mop.Param{{Name: "class", Type: mop.String}}, Result: mop.ListOf(mop.Any)},
	{Name: "queryEq", Params: []mop.Param{
		{Name: "class", Type: mop.String}, {Name: "attr", Type: mop.String}, {Name: "value", Type: mop.Any},
	}, Result: mop.ListOf(mop.Any)},
	{Name: "count", Params: []mop.Param{{Name: "class", Type: mop.String}}, Result: mop.Int},
})

// NewQueryServer exposes the repository over RMI on the given service
// subject.
func NewQueryServer(repo *Repository, bus *core.Bus, seg transport.Segment, service string, opts rmi.ServerOptions) (*rmi.Server, error) {
	handler := func(op string, args []mop.Value) (mop.Value, error) {
		switch op {
		case "store":
			obj, ok := args[0].(*mop.Object)
			if !ok {
				return nil, fmt.Errorf("store wants an object, got %T", args[0])
			}
			oid, err := repo.Store(obj)
			return oid, err
		case "load":
			return repo.Load(args[0].(string), args[1].(int64))
		case "queryByType":
			t, err := repo.reg.Lookup(args[0].(string))
			if err != nil {
				return nil, err
			}
			objs, err := repo.QueryByType(t)
			return objectList(objs), err
		case "queryEq":
			t, err := repo.reg.Lookup(args[0].(string))
			if err != nil {
				return nil, err
			}
			objs, err := repo.QueryEq(t, args[1].(string), args[2])
			return objectList(objs), err
		case "count":
			t, err := repo.reg.Lookup(args[0].(string))
			if err != nil {
				return nil, err
			}
			n, err := repo.Count(t)
			return int64(n), err
		default:
			return nil, rmi.ErrBadOp
		}
	}
	return rmi.NewServer(bus, seg, service, QueryInterface, handler, opts)
}

func objectList(objs []*mop.Object) mop.List {
	out := make(mop.List, len(objs))
	for i, o := range objs {
		out[i] = o
	}
	return out
}
