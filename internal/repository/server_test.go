package repository

import (
	"testing"
	"time"

	"infobus/internal/core"
	"infobus/internal/mop"
	"infobus/internal/netsim"
	"infobus/internal/reliable"
	"infobus/internal/relstore"
	"infobus/internal/rmi"
	"infobus/internal/transport"
)

func fastReliable() reliable.Config {
	return reliable.Config{
		NakInterval:        2 * time.Millisecond,
		GapTimeout:         300 * time.Millisecond,
		RetransmitInterval: 3 * time.Millisecond,
		HeartbeatInterval:  5 * time.Millisecond,
	}
}

func newBusOnSeg(t *testing.T, seg transport.Segment, host string) *core.Bus {
	t.Helper()
	h, err := core.NewHost(seg, host, core.HostConfig{Reliable: fastReliable()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = h.Close() })
	b, err := h.NewBus("app")
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestQueryServerOverRMI(t *testing.T) {
	cfg := netsim.DefaultConfig()
	cfg.Speedup = 5000
	seg := transport.NewSimSegment(cfg)
	defer seg.Close()

	repoBus := newBusOnSeg(t, seg, "repo-host")
	repo := New(relstore.NewDB(), repoBus.Registry())
	srv, err := NewQueryServer(repo, repoBus, seg, "svc.repository", rmi.ServerOptions{Reliable: fastReliable()})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	clientBus := newBusOnSeg(t, seg, "client-host")
	c, err := rmi.Dial(clientBus, seg, "svc.repository", rmi.DialOptions{
		DiscoveryWindow: 200 * time.Millisecond,
		Timeout:         500 * time.Millisecond,
		Retries:         3,
		Reliable:        fastReliable(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// The client stores an object of a class the repository host has
	// never seen: class travels on the wire, schema is generated there.
	story, _, group := newsHierarchy()
	obj := sampleStory(story, group, "remote-store")
	oidV, err := c.Invoke("store", obj)
	if err != nil {
		t.Fatal(err)
	}
	oid := oidV.(int64)

	// count / queryByType / queryEq over the wire.
	n, err := c.Invoke("count", "Story")
	if err != nil || n != int64(1) {
		t.Fatalf("count = %v, %v", n, err)
	}
	objs, err := c.Invoke("queryByType", "Story")
	if err != nil || len(objs.(mop.List)) != 1 {
		t.Fatalf("queryByType = %v, %v", objs, err)
	}
	objs, err = c.Invoke("queryEq", "Story", "headline", "remote-store")
	if err != nil || len(objs.(mop.List)) != 1 {
		t.Fatalf("queryEq = %v, %v", objs, err)
	}
	got, err := c.Invoke("load", "Story", oid)
	if err != nil {
		t.Fatal(err)
	}
	loaded := got.(*mop.Object)
	if loaded.MustGet("headline") != "remote-store" {
		t.Errorf("loaded = %s", mop.Sprint(loaded))
	}
	groups := loaded.MustGet("groups").(mop.List)
	if len(groups) != 2 {
		t.Errorf("nested groups = %v", groups)
	}
	// Remote introspection of the repository service itself.
	if op, ok := c.Interface().Operation("queryEq"); !ok || len(op.Params) != 3 {
		t.Errorf("remote interface queryEq = %+v", op)
	}
	// Errors propagate.
	if _, err := c.Invoke("load", "Story", int64(9999)); err == nil {
		t.Error("load of absent oid should fail remotely")
	}
	if _, err := c.Invoke("queryByType", "NoSuchClass"); err == nil {
		t.Error("query of unknown class should fail remotely")
	}
}

func TestCaptureServerCountsNonObjects(t *testing.T) {
	cfg := netsim.DefaultConfig()
	cfg.Speedup = 5000
	seg := transport.NewSimSegment(cfg)
	defer seg.Close()
	repoBus := newBusOnSeg(t, seg, "repo-host")
	repo := New(relstore.NewDB(), repoBus.Registry())
	cs, err := NewCaptureServer(repo, repoBus, "cap.>")
	if err != nil {
		t.Fatal(err)
	}
	defer cs.Close()

	pubBus := newBusOnSeg(t, seg, "pub-host")
	// A scalar publication on a captured subject is counted as an error,
	// not stored, and does not wedge the server.
	if err := pubBus.Publish("cap.scalar", int64(5)); err != nil {
		t.Fatal(err)
	}
	story, _, group := newsHierarchy()
	if err := pubBus.Publish("cap.story", sampleStory(story, group, "ok")); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(10 * time.Second)
	for cs.Captured() < 1 || cs.Errors() < 1 {
		select {
		case <-deadline:
			t.Fatalf("captured=%d errors=%d", cs.Captured(), cs.Errors())
		case <-time.After(2 * time.Millisecond):
		}
	}
	// Bad capture pattern is rejected at construction.
	if _, err := NewCaptureServer(repo, repoBus, "bad..pattern"); err == nil {
		t.Error("invalid pattern accepted")
	}
}
