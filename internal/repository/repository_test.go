package repository

import (
	"errors"
	"strings"
	"testing"
	"time"

	"infobus/internal/mop"
	"infobus/internal/relstore"
)

// newsHierarchy builds Story with nested IndustryGroup objects, the
// structure §5 describes ("a story is a highly structured object
// containing other objects such as lists of industry groups, sources, and
// country codes").
func newsHierarchy() (story, dj, group *mop.Type) {
	group = mop.MustNewClass("IndustryGroup", nil, []mop.Attr{
		{Name: "code", Type: mop.String},
		{Name: "weight", Type: mop.Float},
	}, nil)
	story = mop.MustNewClass("Story", nil, []mop.Attr{
		{Name: "headline", Type: mop.String},
		{Name: "body", Type: mop.String},
		{Name: "sources", Type: mop.ListOf(mop.String)},
		{Name: "countryCodes", Type: mop.ListOf(mop.String)},
		{Name: "groups", Type: mop.ListOf(group)},
		{Name: "published", Type: mop.Time},
		{Name: "urgent", Type: mop.Bool},
	}, nil)
	dj = mop.MustNewClass("DowJonesStory", []*mop.Type{story}, []mop.Attr{
		{Name: "djCode", Type: mop.String},
	}, nil)
	return
}

func sampleStory(t *mop.Type, group *mop.Type, headline string) *mop.Object {
	g1 := mop.MustNew(group).MustSet("code", "AUTO").MustSet("weight", 0.7)
	g2 := mop.MustNew(group).MustSet("code", "FIN").MustSet("weight", 0.3)
	o := mop.MustNew(t).
		MustSet("headline", headline).
		MustSet("body", "body of "+headline).
		MustSet("sources", mop.List{"DJ", "wire-1"}).
		MustSet("countryCodes", mop.List{"US", "DE"}).
		MustSet("groups", mop.List{g1, g2}).
		MustSet("published", time.Unix(749571200, 0).UTC()).
		MustSet("urgent", true)
	return o
}

func newRepo() (*Repository, *mop.Registry) {
	reg := mop.NewRegistry()
	return New(relstore.NewDB(), reg), reg
}

func TestStoreGeneratesSchema(t *testing.T) {
	repo, _ := newRepo()
	story, _, group := newsHierarchy()
	obj := sampleStory(story, group, "h1")
	oid, err := repo.Store(obj)
	if err != nil {
		t.Fatal(err)
	}
	if oid == 0 {
		t.Fatal("zero oid")
	}
	// Decomposition: main table, list child tables, nested class table.
	wantTables := []string{
		"obj_IndustryGroup",
		"obj_Story",
		"obj_Story__countryCodes",
		"obj_Story__groups",
		"obj_Story__sources",
	}
	got := repo.DB().Tables()
	for _, w := range wantTables {
		found := false
		for _, g := range got {
			if g == w {
				found = true
			}
		}
		if !found {
			t.Errorf("missing generated table %q in %v", w, got)
		}
	}
}

func TestStoreLoadRoundTrip(t *testing.T) {
	repo, _ := newRepo()
	story, _, group := newsHierarchy()
	orig := sampleStory(story, group, "round-trip")
	oid, err := repo.Store(orig)
	if err != nil {
		t.Fatal(err)
	}
	got, err := repo.Load("Story", oid)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(orig) {
		t.Fatalf("round trip mismatch:\norig: %s\ngot:  %s", mop.Sprint(orig), mop.Sprint(got))
	}
}

func TestLoadErrors(t *testing.T) {
	repo, _ := newRepo()
	story, _, group := newsHierarchy()
	if _, err := repo.Load("Story", 1); !errors.Is(err, mop.ErrTypeUnknown) {
		t.Errorf("load unknown class = %v", err)
	}
	oid, err := repo.Store(sampleStory(story, group, "x"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := repo.Load("Story", oid+999); !errors.Is(err, ErrNoSuchOID) {
		t.Errorf("load bad oid = %v", err)
	}
	if _, err := repo.Store(nil); !errors.Is(err, ErrNilObject) {
		t.Errorf("store nil = %v", err)
	}
}

func TestHierarchyQuery(t *testing.T) {
	repo, _ := newRepo()
	story, dj, group := newsHierarchy()
	if _, err := repo.Store(sampleStory(story, group, "plain-1")); err != nil {
		t.Fatal(err)
	}
	djObj := sampleStory(dj, group, "dj-1")
	djObj.MustSet("djCode", "GMC")
	if _, err := repo.Store(djObj); err != nil {
		t.Fatal(err)
	}
	// Query for the supertype returns both, including the subtype
	// instance stored in its own table.
	objs, err := repo.QueryByType(story)
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 2 {
		t.Fatalf("QueryByType(Story) = %d objects", len(objs))
	}
	names := map[string]bool{}
	for _, o := range objs {
		names[o.Type().Name()] = true
	}
	if !names["Story"] || !names["DowJonesStory"] {
		t.Errorf("classes returned: %v", names)
	}
	// Query for the subtype returns only it.
	objs, err = repo.QueryByType(dj)
	if err != nil || len(objs) != 1 {
		t.Fatalf("QueryByType(DowJonesStory) = %d, %v", len(objs), err)
	}
	if objs[0].MustGet("djCode") != "GMC" {
		t.Errorf("subtype attr = %v", objs[0].MustGet("djCode"))
	}
	n, err := repo.Count(story)
	if err != nil || n != 2 {
		t.Errorf("Count = %d, %v", n, err)
	}
}

func TestOldQuerySeesNewSubtype(t *testing.T) {
	// R2: a subtype defined AFTER the query pattern was established still
	// satisfies supertype queries.
	repo, _ := newRepo()
	story, _, group := newsHierarchy()
	if _, err := repo.Store(sampleStory(story, group, "old")); err != nil {
		t.Fatal(err)
	}
	before, _ := repo.QueryByType(story)
	if len(before) != 1 {
		t.Fatalf("before = %d", len(before))
	}
	// New subtype appears at run time (P3) — e.g. defined in TDL.
	reuters := mop.MustNewClass("ReutersStory", []*mop.Type{story}, []mop.Attr{
		{Name: "priority", Type: mop.Int},
	}, nil)
	rObj := sampleStory(reuters, group, "fresh")
	rObj.MustSet("priority", int64(1))
	if _, err := repo.Store(rObj); err != nil {
		t.Fatal(err)
	}
	after, err := repo.QueryByType(story)
	if err != nil || len(after) != 2 {
		t.Fatalf("after = %d, %v", len(after), err)
	}
}

func TestQueryEq(t *testing.T) {
	repo, _ := newRepo()
	story, dj, group := newsHierarchy()
	for _, h := range []string{"alpha", "beta", "alpha"} {
		if _, err := repo.Store(sampleStory(story, group, h)); err != nil {
			t.Fatal(err)
		}
	}
	djObj := sampleStory(dj, group, "alpha")
	djObj.MustSet("djCode", "X")
	if _, err := repo.Store(djObj); err != nil {
		t.Fatal(err)
	}
	objs, err := repo.QueryEq(story, "headline", "alpha")
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 3 { // two Stories + one DowJonesStory, across tables
		t.Fatalf("QueryEq = %d objects", len(objs))
	}
	// Bool attribute.
	objs, err = repo.QueryEq(story, "urgent", true)
	if err != nil || len(objs) != 4 {
		t.Fatalf("QueryEq urgent = %d, %v", len(objs), err)
	}
	// Errors.
	if _, err := repo.QueryEq(story, "ghost", 1); !errors.Is(err, mop.ErrNoAttr) {
		t.Errorf("unknown attr = %v", err)
	}
	if _, err := repo.QueryEq(story, "groups", 1); !errors.Is(err, ErrBadAttr) {
		t.Errorf("list attr query = %v", err)
	}
}

func TestNullAndEmptyHandling(t *testing.T) {
	repo, _ := newRepo()
	story, _, _ := newsHierarchy()
	// Bare object: nil lists, zero scalars.
	obj := mop.MustNew(story)
	oid, err := repo.Store(obj)
	if err != nil {
		t.Fatal(err)
	}
	got, err := repo.Load("Story", oid)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(obj) {
		t.Fatalf("bare object round trip mismatch:\n%s\n%s", mop.Sprint(obj), mop.Sprint(got))
	}
}

func TestAnyAttributeViaWire(t *testing.T) {
	repo, _ := newRepo()
	prop := mop.MustNewClass("Property", nil, []mop.Attr{
		{Name: "name", Type: mop.String},
		{Name: "value", Type: mop.Any},
	}, nil)
	p := mop.MustNew(prop).
		MustSet("name", "keywords").
		MustSet("value", mop.List{"gm", "earnings", int64(3)})
	oid, err := repo.Store(p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := repo.Load("Property", oid)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(p) {
		t.Fatalf("any round trip mismatch: %s vs %s", mop.Sprint(p), mop.Sprint(got))
	}
}

func TestNestedListFallsBackToWire(t *testing.T) {
	repo, _ := newRepo()
	matrix := mop.MustNewClass("Matrix", nil, []mop.Attr{
		{Name: "rows", Type: mop.ListOf(mop.ListOf(mop.Int))},
	}, nil)
	m := mop.MustNew(matrix).MustSet("rows", mop.List{
		mop.List{int64(1), int64(2)},
		mop.List{int64(3)},
	})
	oid, err := repo.Store(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := repo.Load("Matrix", oid)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(m) {
		t.Fatalf("nested list mismatch: %s vs %s", mop.Sprint(m), mop.Sprint(got))
	}
}

func TestCycleDetection(t *testing.T) {
	repo, _ := newRepo()
	node := mop.MustNewClass("Node", nil, nil, nil)
	// Build the cyclic class after, since attrs need the type; use Any.
	holder := mop.MustNewClass("Holder", nil, []mop.Attr{
		{Name: "next", Type: mop.Any},
	}, nil)
	_ = node
	a := mop.MustNew(holder)
	b := mop.MustNew(holder)
	a.MustSet("next", b)
	b.MustSet("next", a)
	// A cycle through Any attributes hits the wire encoder, which would
	// recurse forever — the repository must not hang. Wire marshalling of
	// the cyclic Any attr happens inside Store; the cycle guard protects
	// direct class references, and Any cycles exhaust the marshal depth.
	// We only test the direct-reference guard here.
	ref := mop.MustNewClass("Ref", nil, nil, nil)
	_ = ref
	done := make(chan error, 1)
	go func() {
		_, err := repo.Store(mop.MustNew(holder).MustSet("next", int64(1)))
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("store hung")
	}
}

func TestSchemaTableNaming(t *testing.T) {
	if tableName("Story") != "obj_Story" {
		t.Error("tableName")
	}
	if listTableName("Story", "sources") != "obj_Story__sources" {
		t.Error("listTableName")
	}
}

func TestStoreRejectsNonClassQueries(t *testing.T) {
	repo, _ := newRepo()
	if _, err := repo.QueryByType(mop.Int); !errors.Is(err, ErrNotAClass) {
		t.Errorf("QueryByType(int) = %v", err)
	}
	if _, err := repo.Count(mop.ListOf(mop.Int)); !errors.Is(err, ErrNotAClass) {
		t.Errorf("Count(list) = %v", err)
	}
}

func TestRepositoryRegistersTypes(t *testing.T) {
	repo, reg := newRepo()
	story, _, group := newsHierarchy()
	if _, err := repo.Store(sampleStory(story, group, "x")); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"Story", "IndustryGroup"} {
		if !reg.Has(name) {
			t.Errorf("registry missing %q after store", name)
		}
	}
}

func TestDescribeGeneratedSchema(t *testing.T) {
	repo, _ := newRepo()
	story, _, group := newsHierarchy()
	if _, err := repo.Store(sampleStory(story, group, "x")); err != nil {
		t.Fatal(err)
	}
	tbl, err := repo.DB().Table("obj_Story")
	if err != nil {
		t.Fatal(err)
	}
	var colNames []string
	for _, c := range tbl.Schema().Columns {
		colNames = append(colNames, c.Name)
	}
	joined := strings.Join(colNames, ",")
	for _, want := range []string{"oid", "headline", "body", "published", "urgent"} {
		if !strings.Contains(joined, want) {
			t.Errorf("columns %v missing %q", colNames, want)
		}
	}
	// List attributes must NOT be columns of the main table.
	if strings.Contains(joined, "sources") || strings.Contains(joined, "groups") {
		t.Errorf("list attributes leaked into main table: %v", colNames)
	}
}

func TestDelete(t *testing.T) {
	repo, _ := newRepo()
	story, _, group := newsHierarchy()
	oid1, err := repo.Store(sampleStory(story, group, "keep"))
	if err != nil {
		t.Fatal(err)
	}
	oid2, err := repo.Store(sampleStory(story, group, "remove"))
	if err != nil {
		t.Fatal(err)
	}
	if err := repo.Delete("Story", oid2); err != nil {
		t.Fatal(err)
	}
	if _, err := repo.Load("Story", oid2); !errors.Is(err, ErrNoSuchOID) {
		t.Errorf("load after delete = %v", err)
	}
	// The other object is untouched, including its list rows.
	kept, err := repo.Load("Story", oid1)
	if err != nil {
		t.Fatal(err)
	}
	if len(kept.MustGet("sources").(mop.List)) != 2 {
		t.Errorf("kept sources = %v", kept.MustGet("sources"))
	}
	// List child rows of the deleted object are gone.
	lt, err := repo.DB().Table("obj_Story__sources")
	if err != nil {
		t.Fatal(err)
	}
	_, rows, err := lt.Select(relstore.Eq("oid", oid2))
	if err != nil || len(rows) != 0 {
		t.Errorf("orphaned list rows: %v, %v", rows, err)
	}
	// Errors.
	if err := repo.Delete("Story", oid2); !errors.Is(err, ErrNoSuchOID) {
		t.Errorf("double delete = %v", err)
	}
	if err := repo.Delete("NoSuchClass", 1); !errors.Is(err, mop.ErrTypeUnknown) {
		t.Errorf("delete unknown class = %v", err)
	}
}

func TestClassReferenceAttribute(t *testing.T) {
	// A non-list class-typed attribute becomes (oid, class) reference
	// columns; the child lives in its own table and reconstructs.
	repo, _ := newRepo()
	author := mop.MustNewClass("Author", nil, []mop.Attr{
		{Name: "name", Type: mop.String},
	}, nil)
	post := mop.MustNewClass("Post", nil, []mop.Attr{
		{Name: "title", Type: mop.String},
		{Name: "author", Type: author},
	}, nil)
	a := mop.MustNew(author).MustSet("name", "oki")
	p := mop.MustNew(post).MustSet("title", "sosp93").MustSet("author", a)
	oid, err := repo.Store(p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := repo.Load("Post", oid)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(p) {
		t.Fatalf("reference round trip: %s vs %s", mop.Sprint(p), mop.Sprint(got))
	}
	// Subtype stored through a supertype-typed attribute keeps its class.
	fancy := mop.MustNewClass("FancyAuthor", []*mop.Type{author}, []mop.Attr{
		{Name: "title", Type: mop.String},
	}, nil)
	fa := mop.MustNew(fancy).MustSet("name", "skeen").MustSet("title", "dr")
	p2 := mop.MustNew(post).MustSet("title", "x").MustSet("author", fa)
	oid2, err := repo.Store(p2)
	if err != nil {
		t.Fatal(err)
	}
	got2, err := repo.Load("Post", oid2)
	if err != nil {
		t.Fatal(err)
	}
	child := got2.MustGet("author").(*mop.Object)
	if child.Type().Name() != "FancyAuthor" || child.MustGet("title") != "dr" {
		t.Errorf("polymorphic reference lost: %s", mop.Sprint(child))
	}
}

func TestScalarListVariants(t *testing.T) {
	repo, _ := newRepo()
	c := mop.MustNewClass("Sample", nil, []mop.Attr{
		{Name: "times", Type: mop.ListOf(mop.Time)},
		{Name: "blobs", Type: mop.ListOf(mop.Bytes)},
		{Name: "flags", Type: mop.ListOf(mop.Bool)},
		{Name: "nums", Type: mop.ListOf(mop.Float)},
	}, nil)
	o := mop.MustNew(c).
		MustSet("times", mop.List{time.Unix(1, 0).UTC(), time.Unix(2, 0).UTC()}).
		MustSet("blobs", mop.List{[]byte{1, 2}, []byte{3}}).
		MustSet("flags", mop.List{true, false, true}).
		MustSet("nums", mop.List{1.5, -2.5})
	oid, err := repo.Store(o)
	if err != nil {
		t.Fatal(err)
	}
	got, err := repo.Load("Sample", oid)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(o) {
		t.Fatalf("scalar list variants: %s vs %s", mop.Sprint(o), mop.Sprint(got))
	}
}

func TestListWithNilClassElement(t *testing.T) {
	repo, _ := newRepo()
	item := mop.MustNewClass("Item", nil, []mop.Attr{{Name: "n", Type: mop.Int}}, nil)
	box := mop.MustNewClass("Box", nil, []mop.Attr{
		{Name: "items", Type: mop.ListOf(item)},
	}, nil)
	o := mop.MustNew(box).MustSet("items", mop.List{
		mop.MustNew(item).MustSet("n", int64(1)),
		nil,
		mop.MustNew(item).MustSet("n", int64(3)),
	})
	oid, err := repo.Store(o)
	if err != nil {
		t.Fatal(err)
	}
	got, err := repo.Load("Box", oid)
	if err != nil {
		t.Fatal(err)
	}
	items := got.MustGet("items").(mop.List)
	if len(items) != 3 || items[1] != nil {
		t.Fatalf("items = %v", items)
	}
	if items[2].(*mop.Object).MustGet("n") != int64(3) {
		t.Errorf("item 2 = %s", mop.Sprint(items[2]))
	}
}
