package core

import (
	"errors"
	"testing"
	"time"

	"infobus/internal/mop"
	"infobus/internal/telemetry"
)

// TestSysSubjectReserved pins the anti-spoofing rule: applications cannot
// publish into "_sys.>", so a monitor subscribed there can trust that stats
// objects really came from bus machinery. The single carve-out is the
// "_sys.ping" probe subject, and even that is Publish-only.
func TestSysSubjectReserved(t *testing.T) {
	seg := fastSeg()
	defer seg.Close()
	h := newHost(t, seg, "spoofer", HostConfig{})
	bus, err := h.NewBus("app")
	if err != nil {
		t.Fatal(err)
	}

	for _, subj := range []string{"_sys.stats.spoofer", "_sys.pong.spoofer", "_sys.bogus"} {
		if err := bus.Publish(subj, int64(1)); !errors.Is(err, ErrReservedSubject) {
			t.Errorf("Publish(%q) = %v, want ErrReservedSubject", subj, err)
		}
	}
	// Guaranteed delivery has no ping exception: probes are fire-and-forget.
	for _, subj := range []string{"_sys.stats.spoofer", "_sys.ping"} {
		if _, err := bus.PublishGuaranteed(subj, int64(1)); !errors.Is(err, ErrReservedSubject) {
			t.Errorf("PublishGuaranteed(%q) = %v, want ErrReservedSubject", subj, err)
		}
	}
	if err := bus.Publish(telemetry.PingSubject, int64(42)); err != nil {
		t.Errorf("Publish(_sys.ping) = %v, want nil", err)
	}
}

// TestSysStatsExport runs a host with the stats exporter on and checks that
// an anonymous monitor on another host receives a self-describing SysStats
// object — without ever linking or registering the telemetry classes (P2).
func TestSysStatsExport(t *testing.T) {
	seg := fastSeg()
	defer seg.Close()
	exp := newHost(t, seg, "fab-gauge", HostConfig{
		Telemetry: TelemetryConfig{StatsInterval: 20 * time.Millisecond},
	})
	mon := newHost(t, seg, "fab-mon", HostConfig{})
	monBus, err := mon.NewBus("monitor")
	if err != nil {
		t.Fatal(err)
	}
	sub, err := monBus.Subscribe("_sys.stats.>")
	if err != nil {
		t.Fatal(err)
	}

	// Generate a little traffic so the snapshot has nonzero counters.
	expBus, err := exp.NewBus("app")
	if err != nil {
		t.Fatal(err)
	}
	if err := expBus.Publish("fab5.cc.temp", int64(7)); err != nil {
		t.Fatal(err)
	}

	deadline := time.After(10 * time.Second)
	for {
		var ev Event
		select {
		case ev = <-sub.C:
		case <-deadline:
			t.Fatal("no stats publication received")
		}
		obj, ok := ev.Value.(*mop.Object)
		if !ok {
			t.Fatalf("stats value = %T", ev.Value)
		}
		if obj.Type().Name() != "SysStats" {
			t.Fatalf("stats type = %q", obj.Type().Name())
		}
		if got := obj.MustGet("node"); got != "fab-gauge" {
			t.Fatalf("node = %v", got)
		}
		metrics, ok := obj.MustGet("metrics").(mop.List)
		if !ok || len(metrics) == 0 {
			t.Fatalf("metrics list = %v", obj.MustGet("metrics"))
		}
		// Find the host's publish counter; it may take a later snapshot to
		// reflect the publication above.
		for _, m := range metrics {
			mo := m.(*mop.Object)
			if mo.MustGet("name") == "bus.published" && mo.MustGet("value").(int64) >= 1 {
				return
			}
		}
	}
}

// TestSysPingPong probes the bus: an application publishes a nonce on
// "_sys.ping" (the one permitted system publish) and every exporting node
// answers on "_sys.pong.<node>", echoing the nonce.
func TestSysPingPong(t *testing.T) {
	seg := fastSeg()
	defer seg.Close()
	newHost(t, seg, "fab-gauge", HostConfig{
		Telemetry: TelemetryConfig{StatsInterval: time.Minute}, // exporter on, ticker idle
	})
	prober := newHost(t, seg, "fab-probe", HostConfig{})
	bus, err := prober.NewBus("probe")
	if err != nil {
		t.Fatal(err)
	}
	sub, err := bus.Subscribe("_sys.pong.>")
	if err != nil {
		t.Fatal(err)
	}

	// Re-probe until answered: the exporter's ping subscription propagates
	// asynchronously, so the first probes may fall on deaf ears.
	deadline := time.After(10 * time.Second)
	for {
		if err := bus.Publish(telemetry.PingSubject, int64(99)); err != nil {
			t.Fatal(err)
		}
		select {
		case ev := <-sub.C:
			obj, ok := ev.Value.(*mop.Object)
			if !ok || obj.Type().Name() != "SysPong" {
				t.Fatalf("pong value = %v", ev.Value)
			}
			if obj.MustGet("node") != "fab-gauge" || obj.MustGet("nonce") != int64(99) {
				t.Fatalf("pong = node %v nonce %v", obj.MustGet("node"), obj.MustGet("nonce"))
			}
			return
		case <-deadline:
			t.Fatal("no pong received")
		case <-time.After(20 * time.Millisecond):
		}
	}
}
