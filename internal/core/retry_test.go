package core

import (
	"path/filepath"
	"testing"
	"time"

	"infobus/internal/ledger"
	"infobus/internal/telemetry"
)

// TestGuaranteedRetransmitBackoff: a guaranteed publication nobody ever
// acknowledges must back off exponentially to the cap instead of
// re-occupying the medium on every retry tick — and a late subscriber is
// still served off the backed-off schedule.
func TestGuaranteedRetransmitBackoff(t *testing.T) {
	seg := fastSeg()
	defer seg.Close()
	pub := newHost(t, seg, "backoff-pub", HostConfig{
		LedgerPath:      filepath.Join(t.TempDir(), "pub.ledger"),
		RetryInterval:   5 * time.Millisecond,
		RetryBackoffCap: 50 * time.Millisecond,
	})
	pubBus, err := pub.NewBus("producer")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pubBus.PublishGuaranteed("g.backoff", "unheard"); err != nil {
		t.Fatal(err)
	}

	// No consumer exists. Over this window a per-tick retrier would
	// retransmit ~120 times; the backoff schedule (5, 10, 20, 40, then
	// 50ms at the cap) allows ~13.
	time.Sleep(600 * time.Millisecond)
	n := pub.Metrics().Counter("bus.guar_retransmits").Load()
	if n < 2 {
		t.Fatalf("only %d retransmissions; the retrier looks stalled", n)
	}
	if n > 40 {
		t.Fatalf("%d retransmissions in 600ms; backoff to the cap should allow ~13", n)
	}

	// A subscriber arriving long after the publication still gets it from
	// the retransmission schedule.
	sub := newHost(t, seg, "backoff-sub", HostConfig{})
	subBus, err := sub.NewBus("consumer")
	if err != nil {
		t.Fatal(err)
	}
	late, err := subBus.Subscribe("g.backoff")
	if err != nil {
		t.Fatal(err)
	}
	ev := recvEvent(t, late, 10*time.Second)
	if ev.Value != "unheard" {
		t.Fatalf("late subscriber got %v", ev.Value)
	}
}

// TestRetransmitStormAlarmStillFires: backoff must not blind the
// retransmit-storm alarm — with the cap forced down to the base interval
// (no effective backoff) a never-acked publication is a real storm, and
// the health tier must raise on it. The alarm is fed by the sum of the
// reliable stream's and the guaranteed retrier's retransmit counters.
func TestRetransmitStormAlarmStillFires(t *testing.T) {
	seg := fastSeg()
	defer seg.Close()
	h := newHost(t, seg, "stormhost", HostConfig{
		LedgerPath:      filepath.Join(t.TempDir(), "pub.ledger"),
		RetryInterval:   time.Millisecond,
		RetryBackoffCap: time.Millisecond, // cap == base: retransmit every tick
		Telemetry: TelemetryConfig{Health: telemetry.HealthConfig{
			Interval:            2 * time.Millisecond,
			RetransmitStormRate: 100, // ~1000/s storm sails past this
		}},
	})
	b, err := h.NewBus("producer")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.PublishGuaranteed("g.storm", "again and again"); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(10 * time.Second)
	for {
		for _, ev := range h.ActiveAlarms() {
			if ev.Kind == "retransmit-storm" {
				if !ev.Raised || ev.Value < 100 {
					t.Fatalf("storm alarm edge = %+v", ev)
				}
				return
			}
		}
		select {
		case <-deadline:
			t.Fatalf("retransmit-storm never raised (retransmits=%d, active=%+v)",
				h.Metrics().Counter("bus.guar_retransmits").Load(), h.ActiveAlarms())
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// TestIdleRetrierNoAllocs pins the retrier's steady state: a tick where
// nothing is due — pending entries merely waiting out their backoff, or
// an empty ledger — allocates nothing.
func TestIdleRetrierNoAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates")
	}
	led, err := ledger.Open(filepath.Join(t.TempDir(), "g.log"), ledger.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer led.Close()
	// Build the retrier without its loop (and without a daemon): a tick
	// with nothing due never touches either.
	r := &guaranteeRetrier{
		led:         led,
		interval:    time.Hour,
		cap:         time.Hour,
		retransmits: telemetry.NewRegistry().Counter("bus.guar_retransmits"),
		state:       make(map[uint64]retryState),
	}
	r.visit = r.visitPending

	for i := 0; i < 32; i++ {
		if _, err := led.Append("idle.s", []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	now := time.Now()
	r.tick(now) // first sight: populates retry state (allocates)
	if got := testing.AllocsPerRun(200, func() { r.tick(now) }); got > 0 {
		t.Fatalf("pending-but-not-due tick = %.1f allocs/op, want 0", got)
	}

	for _, e := range led.Pending() {
		if err := led.Ack(e.ID); err != nil {
			t.Fatal(err)
		}
	}
	r.tick(now) // sweep the acked entries' state
	if len(r.state) != 0 {
		t.Fatalf("%d stale retry states survived the sweep", len(r.state))
	}
	if got := testing.AllocsPerRun(200, func() { r.tick(now) }); got > 0 {
		t.Fatalf("empty-ledger tick = %.1f allocs/op, want 0", got)
	}
}

// TestRetrierStatePrunedAfterAck: the per-entry backoff state must not
// leak once entries are acknowledged (mark-sweep by tick generation).
func TestRetrierStatePruned(t *testing.T) {
	led, err := ledger.Open(filepath.Join(t.TempDir(), "g.log"), ledger.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer led.Close()
	r := &guaranteeRetrier{
		led:         led,
		interval:    time.Hour,
		cap:         time.Hour,
		retransmits: telemetry.NewRegistry().Counter("bus.guar_retransmits"),
		state:       make(map[uint64]retryState),
	}
	r.visit = r.visitPending
	var ids []uint64
	for i := 0; i < 10; i++ {
		id, err := led.Append("p.s", []byte("x"))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	r.tick(time.Now())
	if len(r.state) != 10 {
		t.Fatalf("state = %d entries, want 10", len(r.state))
	}
	for _, id := range ids[:7] {
		if err := led.Ack(id); err != nil {
			t.Fatal(err)
		}
	}
	r.tick(time.Now())
	if len(r.state) != 3 {
		t.Fatalf("state = %d entries after acking 7 of 10, want 3", len(r.state))
	}
}
