package core

import (
	"sync"
	"time"

	"infobus/internal/daemon"
	"infobus/internal/mop"
	"infobus/internal/subject"
	"infobus/internal/telemetry"
	"infobus/internal/wire"
)

// classSync is the host's class-definition synchronization agent for the
// compact dictionary format (wire/dict.go). It plays both sides of the
// NAK protocol:
//
//   - requester: when a bus on this host stashes a compact delivery it
//     cannot decode (unknown fingerprints), the agent publishes the
//     fingerprint list on "_sys.class.req", re-publishing on a timer
//     until the definitions arrive — the request or the reply may be
//     lost, or cross a router that has not yet learned our interest;
//   - holder: requests from other hosts are answered on "_sys.class.def"
//     with a wire.MarshalDefs blob when this host holds any requested
//     definition, either as the origin (send dictionary) or because the
//     definition passed through its fingerprint cache.
//
// Replies are broadcast: fingerprints are content-addressed, so every
// host harvests every reply it sees, whoever asked.
//
// The agent is started eagerly on compact publishers (they must answer
// NAKs) and lazily on the first fingerprint miss everywhere else, so
// hosts on legacy topologies advertise no extra interest patterns.
type classSync struct {
	h        *Host
	client   *daemon.Client
	interval time.Duration
	reqSubj  subject.Subject
	defSubj  subject.Subject

	mu   sync.Mutex
	want map[uint64]bool // outstanding fingerprints

	kick chan struct{}
	done chan struct{}
	wg   sync.WaitGroup
}

// maxWantedFPs bounds the outstanding-request set; beyond it new misses
// rely on the publisher's inline fallback alone.
const maxWantedFPs = 1024

// ensureClassSync returns the host's class-sync agent, starting it on
// first use.
func (h *Host) ensureClassSync() (*classSync, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil, ErrClosed
	}
	if h.csync != nil {
		return h.csync, nil
	}
	cs, err := startClassSync(h)
	if err != nil {
		return nil, err
	}
	h.csync = cs
	return cs, nil
}

// requestClasses records missing fingerprints and triggers a NAK. Called
// from bus dispatch on a fingerprint miss.
func (h *Host) requestClasses(fps []uint64) {
	cs, err := h.ensureClassSync()
	if err != nil {
		return
	}
	cs.request(fps)
}

// retryPendingDecodes re-dispatches every bus's stashed deliveries after
// new definitions were installed into the host's fingerprint cache.
func (h *Host) retryPendingDecodes() {
	h.mu.Lock()
	buses := append([]*Bus(nil), h.buses...)
	h.mu.Unlock()
	for _, b := range buses {
		b.retryPending()
	}
}

func startClassSync(h *Host) (*classSync, error) {
	client, err := h.daemon.NewClient("_sys-classsync")
	if err != nil {
		return nil, err
	}
	for _, p := range []string{telemetry.ClassReqSubject, telemetry.ClassDefSubject} {
		if err := client.Subscribe(subject.MustParsePattern(p)); err != nil {
			_ = client.Close()
			return nil, err
		}
	}
	interval := h.nakInterval
	if interval <= 0 {
		interval = 50 * time.Millisecond
	}
	cs := &classSync{
		h:        h,
		client:   client,
		interval: interval,
		reqSubj:  subject.MustParse(telemetry.ClassReqSubject),
		defSubj:  subject.MustParse(telemetry.ClassDefSubject),
		want:     make(map[uint64]bool),
		kick:     make(chan struct{}, 1),
		done:     make(chan struct{}),
	}
	cs.wg.Add(2)
	go cs.recvLoop()
	go cs.requestLoop()
	return cs, nil
}

func (cs *classSync) stop() {
	close(cs.done)
	_ = cs.client.Close()
	cs.wg.Wait()
}

// request queues fingerprints for NAKing and kicks the request loop.
func (cs *classSync) request(fps []uint64) {
	cs.mu.Lock()
	added := false
	for _, fp := range fps {
		if len(cs.want) >= maxWantedFPs {
			break
		}
		if !cs.want[fp] {
			cs.want[fp] = true
			added = true
		}
	}
	cs.mu.Unlock()
	if added {
		select {
		case cs.kick <- struct{}{}:
		default:
		}
	}
}

// requestLoop publishes the outstanding fingerprint list — immediately on
// a kick, then on a timer while anything stays unresolved (the request or
// its reply may be lost, or a router may still be learning our interest
// in "_sys.class.def").
func (cs *classSync) requestLoop() {
	defer cs.wg.Done()
	ticker := time.NewTicker(cs.interval)
	defer ticker.Stop()
	for {
		select {
		case <-cs.done:
			return
		case <-cs.kick:
		case <-ticker.C:
		}
		cs.publishRequest()
	}
}

func (cs *classSync) publishRequest() {
	cs.mu.Lock()
	fps := make([]uint64, 0, len(cs.want))
	for fp := range cs.want {
		fps = append(fps, fp)
	}
	cs.mu.Unlock()
	if len(fps) == 0 {
		return
	}
	payload, err := wire.Marshal(wire.FPsValue(fps))
	if err != nil {
		return
	}
	cs.h.ctr.classNakSent.Inc()
	_ = cs.h.daemon.Publish(cs.reqSubj, payload)
	_ = cs.h.daemon.Flush()
}

func (cs *classSync) recvLoop() {
	defer cs.wg.Done()
	for {
		dv, ok := cs.client.Next(cs.done)
		if !ok {
			return
		}
		switch dv.Subject.String() {
		case telemetry.ClassReqSubject:
			cs.serveRequest(dv)
		case telemetry.ClassDefSubject:
			cs.harvestReply(dv)
		}
	}
}

// serveRequest answers a fingerprint request with every definition this
// host holds — as origin (send dictionary) or receiver (fingerprint
// cache).
func (cs *classSync) serveRequest(dv daemon.Delivery) {
	v, err := wire.UnmarshalWith(dv.Payload, cs.h.reg, cs.h.typeCache)
	if err != nil {
		return
	}
	var held []*mop.Type
	for _, fp := range wire.RequestedFPs(v) {
		if cs.h.sendDict != nil {
			if t, ok := cs.h.sendDict.LookupFP(fp); ok {
				held = append(held, t)
				continue
			}
		}
		if t, ok := cs.h.typeCache.Lookup(fp); ok {
			held = append(held, t)
		}
	}
	if len(held) == 0 {
		return
	}
	payload, err := wire.MarshalDefs(held)
	if err != nil {
		return
	}
	cs.h.ctr.classNakServed.Inc()
	_ = cs.h.daemon.PublishCompact(cs.defSubj, payload)
	_ = cs.h.daemon.Flush()
}

// harvestReply installs the definitions a reply carries and, if any
// outstanding fingerprint resolved, retries the buses' stashed
// deliveries.
func (cs *classSync) harvestReply(dv daemon.Delivery) {
	if err := wire.HarvestDefs(dv.Payload, cs.h.reg, cs.h.typeCache); err != nil {
		return
	}
	cs.h.ctr.classDefsHarvested.Inc()
	cs.mu.Lock()
	resolved := false
	for fp := range cs.want {
		if _, ok := cs.h.typeCache.Lookup(fp); ok {
			delete(cs.want, fp)
			resolved = true
		}
	}
	cs.mu.Unlock()
	if resolved {
		cs.h.retryPendingDecodes()
	}
}
