package core

import (
	"testing"
	"time"

	"infobus/internal/mop"
	"infobus/internal/telemetry"
)

// TestHistoryProbeAndAlarmEdge is the flight-data acceptance path: a host
// running the history tier samples its rates into the ring; when a stalled
// subscriber trips the slow-consumer alarm, the raise edge lands in the
// same ring; and an anonymous monitor that publishes "_sys.history" gets
// the whole self-describing window back on "_sys.history.<node>" —
// series, samples, subject families, and the alarm edge included.
func TestHistoryProbeAndAlarmEdge(t *testing.T) {
	seg := fastSeg()
	defer seg.Close()
	slow := newHost(t, seg, "slowhost", HostConfig{
		Telemetry: TelemetryConfig{
			Health: telemetry.HealthConfig{
				Interval:          2 * time.Millisecond,
				SlowConsumerDepth: 64,
			},
			HistoryInterval:    2 * time.Millisecond,
			HistoryDigestTicks: -1, // probe answers only: keeps the test deterministic
		},
	})
	mon := newHost(t, seg, "monhost", HostConfig{})
	monBus, err := mon.NewBus("monitor")
	if err != nil {
		t.Fatal(err)
	}
	alarms, err := monBus.Subscribe("_sys.alarm.>")
	if err != nil {
		t.Fatal(err)
	}
	answers, err := monBus.Subscribe("_sys.history.slowhost")
	if err != nil {
		t.Fatal(err)
	}

	slowBus, err := slow.NewBus("lagging")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := slowBus.Subscribe("load.>"); err != nil {
		t.Fatal(err)
	}

	// Stall the subscriber until the slow-consumer alarm raises (same
	// inducement as TestSlowConsumerAlarmE2E).
	pubBus, err := mon.NewBus("generator")
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.After(15 * time.Second)
	var published int
publishing:
	for {
		for i := 0; i < 20; i++ {
			if err := pubBus.Publish("load.burst", int64(published)); err != nil {
				t.Fatal(err)
			}
			published++
		}
		_ = pubBus.Flush()
		select {
		case <-alarms.C:
			break publishing
		case <-deadline:
			t.Fatalf("no slow-consumer alarm after %d publications", published)
		case <-time.After(5 * time.Millisecond):
		}
	}

	// Give the sampler a few more ticks past the alarm, then probe. The
	// probe subject is the third user-publishable "_sys.>" name.
	time.Sleep(20 * time.Millisecond)
	var digest telemetry.HistoryDigest
	probeDeadline := time.After(15 * time.Second)
	for {
		if err := monBus.Publish(telemetry.HistorySubject, int64(1)); err != nil {
			t.Fatal(err)
		}
		_ = monBus.Flush()
		var got bool
		select {
		case ev := <-answers.C:
			obj, ok := ev.Value.(*mop.Object)
			if !ok || obj.Type().Name() != "SysHistory" {
				t.Fatalf("history answer = %v", ev.Value)
			}
			digest, got = telemetry.ParseHistoryObject(obj)
			if !got {
				t.Fatalf("unparseable SysHistory %v", obj)
			}
		case <-probeDeadline:
			t.Fatal("no history answer")
		case <-time.After(20 * time.Millisecond):
		}
		if got {
			break
		}
	}

	if digest.Node != "slowhost" {
		t.Fatalf("digest node = %q", digest.Node)
	}
	if digest.Snapshot.IntervalNs != (2 * time.Millisecond).Nanoseconds() {
		t.Fatalf("interval_ns = %d", digest.Snapshot.IntervalNs)
	}
	series := map[string]telemetry.SeriesSnapshot{}
	for _, s := range digest.Snapshot.Series {
		series[s.Name] = s
	}
	// The standing series are present, and the inbound/delivery rates saw
	// the burst: at least one sample is nonzero.
	for _, name := range []string{"bus.published", "daemon.inbound",
		"daemon.delivered_local", "daemon.lane_depth"} {
		if _, ok := series[name]; !ok {
			t.Fatalf("series %q missing (have %v)", name, digest.Snapshot.Series)
		}
	}
	nonzero := false
	for _, smp := range series["daemon.inbound"].Samples {
		if smp.V > 0 {
			nonzero = true
		}
	}
	if !nonzero {
		t.Fatalf("daemon.inbound samples all zero: %+v", series["daemon.inbound"].Samples)
	}
	if len(series["daemon.inbound"].Samples) < 4 {
		t.Fatalf("full-window answer has %d samples, want the whole ring so far",
			len(series["daemon.inbound"].Samples))
	}

	// The alarm raise edge rode along.
	sawRaise := false
	for _, e := range digest.Snapshot.Alarms {
		if e.Kind == "slow-consumer" && e.Raised {
			sawRaise = true
		}
	}
	if !sawRaise || digest.Snapshot.AlarmTotal == 0 {
		t.Fatalf("history window missing the slow-consumer raise: %+v", digest.Snapshot.Alarms)
	}

	// Per-subject-family accounting: the burst subject's two-element family
	// dominates the merged top-K table.
	famSeen := false
	for _, f := range digest.Families {
		if f.Family == "load.burst" && f.Msgs > 0 {
			famSeen = true
		}
	}
	if !famSeen {
		t.Fatalf("families missing load.burst: %+v", digest.Families)
	}
}

// TestHistoryDisabledByDefault pins that the zero config allocates no
// sampler and answers no probes.
func TestHistoryDisabledByDefault(t *testing.T) {
	seg := fastSeg()
	defer seg.Close()
	h := newHost(t, seg, "plain", HostConfig{})
	if h.History() != nil {
		t.Fatal("history sampler allocated with the tier disabled")
	}
}

// TestHistoryDefaultWindow pins the paper-facing sizing claim: the default
// interval and slot count give a window of at least 60 seconds.
func TestHistoryDefaultWindow(t *testing.T) {
	h := telemetry.NewHistory(telemetry.HistoryConfig{})
	defer h.Stop()
	if window := time.Duration(h.Slots()) * h.Interval(); window < 60*time.Second {
		t.Fatalf("default window = %v, want >= 60s", window)
	}
}
