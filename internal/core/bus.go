// Package core implements the Information Bus itself — the paper's primary
// contribution. A Bus gives an application:
//
//   - Publish: label a self-describing data object with a subject and
//     disseminate it (reliable delivery; P1, P4);
//   - PublishGuaranteed: the stronger quality of service that logs to
//     non-volatile storage first and retransmits until acknowledged;
//   - Subscribe: receive objects by subject pattern, anonymously — no
//     knowledge of who produces them (P4);
//   - Registry: the host's type universe, automatically extended by
//     incoming self-describing objects (P2, P3).
//
// The architecture below a Bus mirrors the paper: every simulated host
// runs one daemon (internal/daemon) over the reliable protocol
// (internal/reliable) over broadcast datagrams (internal/transport,
// internal/netsim). Applications on a host attach to the daemon through
// Host.NewBus.
package core

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"infobus/internal/busproto"
	"infobus/internal/daemon"
	"infobus/internal/ledger"
	"infobus/internal/mop"
	"infobus/internal/reliable"
	"infobus/internal/subject"
	"infobus/internal/telemetry"
	"infobus/internal/transport"
	"infobus/internal/wire"
)

// Host is one workstation on the bus: a transport endpoint, its daemon,
// and the process-wide type registry shared by the applications on it.
type Host struct {
	name    string
	daemon  *daemon.Daemon
	reg     *mop.Registry
	metrics *telemetry.Registry
	ctr     busCounters

	// Type-dictionary compression (wire/dict.go). typeCache is always
	// live — any host may receive compact publications; sendDict is set
	// only when HostConfig.CompactTypes enables compact publishing.
	typeCache   *wire.TypeCache
	sendDict    *wire.SendDict
	nakInterval time.Duration

	mu      sync.Mutex
	ledger  *ledger.Ledger
	retry   *guaranteeRetrier
	sys     *sysExporter
	health  *healthAgent
	history *historyAgent
	csync   *classSync
	buses   []*Bus
	closed  bool
	// guarGate, when set, blocks PublishGuaranteed returns until the
	// replication tier confirms quorum durability (internal/qledger). Nil —
	// the default — costs one pointer load under the mutex already taken.
	// The returned stamp is when the write quorum was reached (unix ns, 0
	// unknown); it becomes the traced publication's quorum-ack hop.
	guarGate func(id uint64) (int64, error)
	// tracing mirrors Telemetry.TraceSampling > 0: the guaranteed path
	// only assembles stage-hop slices when some publication could carry
	// them (the untraced path must stay allocation-flat).
	tracing bool
	// closeHooks run first in Close, in reverse registration order, so
	// layers stacked above the host (replication agents) detach before the
	// daemon and ledger go away underneath them.
	closeHooks []func()

	// Health tier (nil unless Telemetry.Health.Interval > 0).
	recorder *telemetry.Recorder
	engine   *telemetry.Engine
}

// busCounters are the host's bus-layer telemetry handles.
type busCounters struct {
	published, publishedGuaranteed *telemetry.Counter
	events, undecodableDropped     *telemetry.Counter
	// guarRetransmits counts guaranteed-delivery retransmissions; together
	// with the reliable stream's retransmit counter it feeds the
	// retransmit-storm alarm.
	guarRetransmits *telemetry.Counter
	// Type-dictionary compression: compact publications sent, compact
	// events decoded, deliveries deferred on a fingerprint miss, NAK
	// requests sent/served, and definitions harvested from replies.
	compactPublished, compactEvents *telemetry.Counter
	decodeDeferred                  *telemetry.Counter
	classNakSent, classNakServed    *telemetry.Counter
	classDefsHarvested              *telemetry.Counter
}

// TelemetryConfig tunes the host's self-observation (internal/telemetry).
type TelemetryConfig struct {
	// Registry is the host's metrics registry, shared by the daemon, the
	// reliable protocol, the ledger, and the bus layer. Nil creates one;
	// retrieve it with Host.Metrics.
	Registry *telemetry.Registry
	// TraceSampling is the fraction of publications carrying a per-hop
	// trace (trace id + a timestamp per daemon/router crossed). 0 disables
	// tracing — untraced publications are byte-identical on the wire to a
	// host with tracing never configured. 1 traces everything. Intermediate
	// rates sample deterministically (every ⌈1/rate⌉-th publication).
	TraceSampling float64
	// StatsInterval enables self-hosted export: the host periodically
	// publishes its metrics snapshot as a self-describing SysStats object
	// on "_sys.stats.<node>" and answers "_sys.ping" probes with a SysPong
	// plus a fresh snapshot. 0 disables.
	StatsInterval time.Duration
	// Health enables the alarm engine and flight recorder: slow-consumer,
	// retransmit-storm, dedup-pressure, and ledger-backlog alarms are
	// published on "_sys.alarm.<node>.<kind>", and "_sys.dump" probes are
	// answered with the flight recorder's recent-event ring. Zero (its
	// Interval in particular) disables the tier entirely.
	Health telemetry.HealthConfig
	// HistoryInterval enables the flight-data tier: a sampler snapshots the
	// host's key rates, queue depths, and latency percentiles into
	// fixed-window rings every interval (telemetry.History), answers
	// "_sys.history" probes with the full window as a SysHistory object on
	// "_sys.history.<node>", and publishes short digests of the same series
	// there unprompted. 0 disables the tier.
	HistoryInterval time.Duration
	// HistorySlots is the per-series ring length; 0 selects the telemetry
	// default (256 slots ≈ 64 s at the default 250 ms interval).
	HistorySlots int
	// HistoryDigestTicks is how many sampler ticks between unsolicited
	// digests; 0 selects the default (8 — every 2 s at the default
	// interval), negative disables digests (probe-only).
	HistoryDigestTicks int
}

// tracePeriod converts a sampling fraction to the daemon's every-Nth
// counter period.
func (tc TelemetryConfig) tracePeriod() uint64 {
	switch {
	case tc.TraceSampling <= 0:
		return 0
	case tc.TraceSampling >= 1:
		return 1
	default:
		return uint64(math.Round(1 / tc.TraceSampling))
	}
}

// HostConfig tunes a host.
type HostConfig struct {
	// Reliable tunes the reliable-delivery protocol (batching included).
	Reliable reliable.Config
	// LedgerPath enables guaranteed delivery: the write-ahead log file for
	// publications awaiting acknowledgement. Empty disables
	// PublishGuaranteed on this host.
	LedgerPath string
	// LedgerSync makes guaranteed publications durable against machine
	// crashes: each committed ledger batch is fsynced before
	// PublishGuaranteed returns. Concurrent publications share one fsync
	// per group-committed batch.
	LedgerSync bool
	// LedgerSegmentBytes is the ledger's segment rotation threshold;
	// <= 0 selects ledger.DefaultSegmentBytes.
	LedgerSegmentBytes int64
	// LedgerDisableGroupCommit reverts the ledger to a write(+fsync) per
	// record — the measured baseline for experiment A10. Leave it false.
	LedgerDisableGroupCommit bool
	// RetryInterval is the base delay before an unacknowledged guaranteed
	// publication is first retransmitted; further retransmissions back off
	// exponentially from it. Default 100ms.
	RetryInterval time.Duration
	// RetryBackoffCap bounds the exponential backoff between
	// retransmissions of one unacknowledged publication. Default 5s (and
	// never below RetryInterval).
	RetryBackoffCap time.Duration
	// Registry lets several hosts share one type universe (common in
	// tests). Nil creates a fresh registry.
	Registry *mop.Registry
	// Telemetry tunes metrics, tracing, and the "_sys.>" stats export.
	Telemetry TelemetryConfig
	// CompactTypes enables type-dictionary compression for this host's
	// publications: class descriptors cross the medium once (wire.SendDict)
	// and thereafter travel as 8-byte fingerprints, cutting the
	// self-describing overhead out of steady-state messages. Receivers
	// need no configuration — the compact envelope kinds are understood
	// by every daemon, which resolves fingerprints through its cache and
	// NAKs unknown ones on "_sys.class.req".
	CompactTypes bool
	// CompactResendEvery is the inline fallback period: a class whose
	// definition has ridden as a fingerprint for this many consecutive
	// publications gets its full definition re-sent, so progress never
	// depends on the NAK path. <= 0 selects wire.DefaultResendEvery.
	CompactResendEvery int
	// CompactNakInterval is how often outstanding class-definition
	// requests are re-published while undecoded compact deliveries are
	// pending. Default 50ms.
	CompactNakInterval time.Duration
	// ReplicationFactor enables the quorum ledger tier (internal/qledger,
	// wired by infobus.NewHost): each committed ledger batch is mirrored to
	// this many peer replicas and PublishGuaranteed returns only once a
	// majority of the replication group is durable. 0 — the default — keeps
	// the single-node guaranteed path byte-for-byte unchanged. The core
	// package itself only carries the value; it never reads it.
	ReplicationFactor int
	// ReplicaAckTimeout bounds how long a guaranteed publication waits for
	// quorum acknowledgement before failing with qledger.ErrQuorumTimeout.
	// 0 selects the qledger default.
	ReplicaAckTimeout time.Duration
	// ReplFsyncPolicy selects replica-side durability: "batch" (default —
	// fsync each applied batch, the paper-faithful quorum) or "lazy" (write
	// without fsync; quorum means process-crash durability only).
	ReplFsyncPolicy string
	// ReplicaDir is where this host stores mirrored peers' replica logs.
	// Non-empty enrolls the host as a replica even with ReplicationFactor 0.
	ReplicaDir string
	// DeliveryLanes shards the daemon's subscription matching and client
	// delivery queues across this many lanes keyed by subject-prefix hash
	// (see internal/daemon). 0 — the default — selects min(GOMAXPROCS, 8);
	// 1 disables sharding (the single-lane path is behaviorally identical
	// to the pre-lane daemon).
	DeliveryLanes int
}

// Bus errors.
var (
	ErrClosed          = errors.New("core: closed")
	ErrNoLedger        = errors.New("core: guaranteed delivery requires a ledger (set HostConfig.LedgerPath)")
	ErrNotDataObject   = errors.New("core: value cannot travel on the bus")
	ErrReservedSubject = errors.New("core: the _sys subject space is reserved for bus telemetry")
)

// NewHost attaches a workstation to a network segment.
func NewHost(seg transport.Segment, name string, cfg HostConfig) (*Host, error) {
	ep, err := seg.NewEndpoint(name)
	if err != nil {
		return nil, err
	}
	reg := cfg.Registry
	if reg == nil {
		reg = mop.NewRegistry()
	}
	metrics := cfg.Telemetry.Registry
	if metrics == nil {
		metrics = telemetry.NewRegistry()
	}
	rcfg := cfg.Reliable
	if rcfg.Metrics == nil {
		rcfg.Metrics = metrics
	}
	hcfg := cfg.Telemetry.Health
	var engine *telemetry.Engine
	var rec *telemetry.Recorder
	if hcfg.Enabled() {
		hcfg = hcfg.WithDefaults()
		rec = telemetry.NewRecorder(hcfg.RecorderSize)
		engine = telemetry.NewEngine(name, metrics, rec)
		if rcfg.Recorder == nil {
			rcfg.Recorder = rec
		}
	}
	h := &Host{
		name: name,
		daemon: daemon.New(ep, rcfg, daemon.Options{
			Metrics:           metrics,
			TracePeriod:       cfg.Telemetry.tracePeriod(),
			Node:              name,
			Health:            engine,
			Recorder:          rec,
			SlowConsumerDepth: hcfg.SlowConsumerDepth,
			DeliveryLanes:     cfg.DeliveryLanes,
		}),
		reg:      reg,
		metrics:  metrics,
		recorder: rec,
		engine:   engine,
		ctr: busCounters{
			published:           metrics.Counter("bus.published"),
			publishedGuaranteed: metrics.Counter("bus.published_guaranteed"),
			guarRetransmits:     metrics.Counter("bus.guar_retransmits"),
			events:              metrics.Counter("bus.events"),
			undecodableDropped:  metrics.Counter("bus.undecodable_dropped"),
			compactPublished:    metrics.Counter("bus.compact_published"),
			compactEvents:       metrics.Counter("bus.compact_events"),
			decodeDeferred:      metrics.Counter("bus.decode_deferred"),
			classNakSent:        metrics.Counter("bus.class_nak_sent"),
			classNakServed:      metrics.Counter("bus.class_nak_served"),
			classDefsHarvested:  metrics.Counter("bus.class_defs_harvested"),
		},
		typeCache:   wire.NewTypeCache(0),
		nakInterval: cfg.CompactNakInterval,
		tracing:     cfg.Telemetry.tracePeriod() > 0,
	}
	if cfg.CompactTypes {
		h.sendDict = wire.NewSendDict(cfg.CompactResendEvery)
	}
	if cfg.LedgerPath != "" {
		led, err := ledger.Open(cfg.LedgerPath, ledger.Options{
			Sync:               cfg.LedgerSync,
			SegmentBytes:       cfg.LedgerSegmentBytes,
			DisableGroupCommit: cfg.LedgerDisableGroupCommit,
			Metrics:            metrics,
			Recorder:           rec,
		})
		if err != nil {
			_ = h.daemon.Close()
			return nil, err
		}
		h.ledger = led
		h.retry = newGuaranteeRetrier(h.daemon, led, cfg.RetryInterval, cfg.RetryBackoffCap, h.ctr.guarRetransmits)
	}
	if cfg.Telemetry.StatsInterval > 0 {
		sys, err := startSysExporter(h, cfg.Telemetry.StatsInterval)
		if err != nil {
			_ = h.Close()
			return nil, err
		}
		h.sys = sys
	}
	if cfg.CompactTypes {
		// A compact publisher must answer _sys.class.req NAKs from the
		// start; pure receivers start the agent lazily on the first
		// fingerprint miss instead, so legacy topologies advertise no
		// extra interest.
		if _, err := h.ensureClassSync(); err != nil {
			_ = h.Close()
			return nil, err
		}
	}
	prefix := rcfg.MetricsPrefix
	if prefix == "" {
		prefix = "reliable"
	}
	if cfg.Telemetry.HistoryInterval > 0 {
		// Before the health agent: its alarm sink feeds edges into the
		// history ring it finds installed here.
		replicated := cfg.ReplicationFactor > 0 || cfg.ReplicaDir != ""
		hist, err := startHistoryAgent(h, cfg.Telemetry, replicated, prefix)
		if err != nil {
			_ = h.Close()
			return nil, err
		}
		h.history = hist
	}
	if engine != nil {
		agent, err := startHealthAgent(h, engine, rec, hcfg, prefix)
		if err != nil {
			_ = h.Close()
			return nil, err
		}
		h.health = agent
	}
	return h, nil
}

// Name returns the host name.
func (h *Host) Name() string { return h.name }

// Addr returns the host daemon's transport address.
func (h *Host) Addr() string { return h.daemon.Addr() }

// Registry returns the host's type registry.
func (h *Host) Registry() *mop.Registry { return h.reg }

// Metrics returns the host's telemetry registry: bus, daemon, reliable
// protocol, and ledger counters, one shared namespace per host.
func (h *Host) Metrics() *telemetry.Registry { return h.metrics }

// Daemon exposes the host daemon, mainly for statistics.
func (h *Host) Daemon() *daemon.Daemon { return h.daemon }

// Token draws the next value from the host's seeded random-token stream
// (HostConfig.Reliable.Seed). Components layered on the bus — discovery
// round tokens, election tokens, random server picks — draw here instead
// of the global math/rand source, so a seeded netsim run is deterministic
// end to end.
func (h *Host) Token() uint64 { return h.daemon.Token() }

// Recorder returns the host's flight recorder, or nil when the health
// tier is disabled (TelemetryConfig.Health).
func (h *Host) Recorder() *telemetry.Recorder { return h.recorder }

// ActiveAlarms returns the currently raised health alarms (nil when the
// health tier is disabled, or when nothing is raised).
func (h *Host) ActiveAlarms() []telemetry.AlarmEvent {
	if h.engine == nil {
		return nil
	}
	return h.engine.Active()
}

// HealthDump returns the active alarms plus the flight-recorder ring as
// text — the same answer a "_sys.dump" probe gets — or "" when the health
// tier is disabled.
func (h *Host) HealthDump() string {
	if h.engine == nil {
		return ""
	}
	return h.engine.DumpText()
}

// Ledger exposes the host's write-ahead ledger (nil without LedgerPath).
// The replication tier hooks its commit stream; applications use the Bus
// API instead.
func (h *Host) Ledger() *ledger.Ledger {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.ledger
}

// HealthEngine returns the host's alarm engine, or nil when the health
// tier is disabled (TelemetryConfig.Health).
func (h *Host) HealthEngine() *telemetry.Engine { return h.engine }

// History returns the host's flight-data recorder, or nil when the tier
// is disabled (TelemetryConfig.HistoryInterval). Layers above the host
// may register extra series on it before traffic starts.
func (h *Host) History() *telemetry.History {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.history == nil {
		return nil
	}
	return h.history.hist
}

// SetGuaranteeGate installs (or, with nil, removes) the quorum gate:
// PublishGuaranteed calls it with the ledger id after local durability and
// dissemination, and propagates its error. The entry stays pending on
// error, so the retrier and crash recovery still cover it. On success the
// gate reports when the write quorum was reached (unix ns, 0 when
// unknown); a traced publication publishes that stamp as a quorum-ack
// sidecar hop on "_sys.trace.<node>".
func (h *Host) SetGuaranteeGate(gate func(id uint64) (int64, error)) {
	h.mu.Lock()
	h.guarGate = gate
	h.mu.Unlock()
}

// AddCloseHook registers f to run at the start of Close, before the buses,
// daemon, and ledger shut down. Hooks run in reverse registration order,
// once, on the closing goroutine.
func (h *Host) AddCloseHook(f func()) {
	h.mu.Lock()
	h.closeHooks = append(h.closeHooks, f)
	h.mu.Unlock()
}

// PendingGuaranteed returns the guaranteed publications not yet
// acknowledged (from the ledger), including entries recovered after a
// restart.
func (h *Host) PendingGuaranteed() []ledger.Entry {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.ledger == nil {
		return nil
	}
	return h.ledger.Pending()
}

// Close shuts down the host: its buses, daemon, retrier, and ledger.
func (h *Host) Close() error {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return nil
	}
	h.closed = true
	buses := append([]*Bus(nil), h.buses...)
	sys := h.sys
	h.sys = nil
	health := h.health
	h.health = nil
	history := h.history
	h.history = nil
	csync := h.csync
	h.csync = nil
	hooks := h.closeHooks
	h.closeHooks = nil
	h.mu.Unlock()
	for i := len(hooks) - 1; i >= 0; i-- {
		hooks[i]()
	}
	if health != nil {
		health.stop()
	}
	if history != nil {
		history.stop()
	}
	if sys != nil {
		sys.stop()
	}
	if csync != nil {
		csync.stop()
	}
	for _, b := range buses {
		_ = b.Close()
	}
	if h.retry != nil {
		h.retry.stop()
	}
	err := h.daemon.Close()
	if h.ledger != nil {
		if cerr := h.ledger.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// NewBus attaches an application to the host's daemon. appName labels the
// application in monitoring output.
func (h *Host) NewBus(appName string) (*Bus, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil, ErrClosed
	}
	client, err := h.daemon.NewClient(appName)
	if err != nil {
		return nil, err
	}
	b := &Bus{
		host:   h,
		client: client,
		done:   make(chan struct{}),
		subs:   subject.NewTrie[*Subscription](),
	}
	go b.dispatchLoop()
	h.buses = append(h.buses, b)
	return b, nil
}

// ---------------------------------------------------------------------------
// Bus

// Bus is one application's handle on the Information Bus.
type Bus struct {
	host   *Host
	client *daemon.Client
	done   chan struct{}

	mu     sync.Mutex
	subs   *subject.Trie[*Subscription]
	all    []*Subscription
	closed bool

	// pending holds compact deliveries whose class fingerprints are not
	// resolved yet; they are retried when _sys.class.def replies land
	// (classSync). Bounded: beyond maxPendingDecodes the oldest entry is
	// dropped — the guaranteed-delivery retrier or the publisher's inline
	// fallback will carry the data again.
	pendingMu sync.Mutex
	pending   []daemon.Delivery
}

// maxPendingDecodes bounds the per-bus stash of undecodable compact
// deliveries awaiting class definitions.
const maxPendingDecodes = 64

// Event is one received publication, decoded back into a self-describing
// object.
type Event struct {
	// Subject the object was published under.
	Subject subject.Subject
	// Value is the decoded data object (any mop.Value).
	Value mop.Value
	// From is the transport address of the publishing host's daemon; note
	// that applications normally ignore it (P4: anonymous communication).
	From string
	// Guaranteed marks guaranteed-delivery publications.
	Guaranteed bool
	// TraceID and Trace carry the per-hop telemetry trace when this
	// publication was sampled (TelemetryConfig.TraceSampling): one
	// timestamped hop per daemon and router it crossed. Trace is empty for
	// unsampled publications.
	TraceID uint64
	Trace   []busproto.TraceHop
}

// Subscription is a live subject subscription. Events arrive on C. Cancel
// to stop; C closes when the subscription or the bus closes.
type Subscription struct {
	// C delivers matching publications in per-publisher FIFO order.
	C <-chan Event

	pattern subject.Pattern
	bus     *Bus
	ch      chan Event
	done    chan struct{}
	sendMu  sync.Mutex // held around sends so close never races a sender
	once    sync.Once
}

// deliver hands an event to the subscription, giving up if the
// subscription or the bus shuts down while the buffer is full.
func (s *Subscription) deliver(ev Event, busDone <-chan struct{}) {
	s.sendMu.Lock()
	defer s.sendMu.Unlock()
	select {
	case <-s.done:
		return
	default:
	}
	select {
	case s.ch <- ev:
	case <-s.done:
	case <-busDone:
	}
}

// shutdown closes the subscription exactly once, after any in-flight
// delivery has drained.
func (s *Subscription) shutdown() {
	s.once.Do(func() {
		close(s.done)
		s.sendMu.Lock()
		close(s.ch)
		s.sendMu.Unlock()
	})
}

// Pattern returns the subscription's subject pattern.
func (s *Subscription) Pattern() subject.Pattern { return s.pattern }

// Cancel stops the subscription and closes C.
func (s *Subscription) Cancel() {
	s.bus.removeSub(s)
}

// Host returns the host this bus is attached to.
func (b *Bus) Host() *Host { return b.host }

// Registry returns the host's type registry.
func (b *Bus) Registry() *mop.Registry { return b.host.reg }

// Publish labels a data object with a subject and disseminates it with
// reliable delivery.
//
// The "_sys.>" subject space is reserved: only the bus machinery publishes
// there (so subscribers can trust "_sys.stats.<node>" objects), with three
// exceptions — any application may publish on "_sys.ping" to probe the
// exporting nodes, on "_sys.dump" to request flight-recorder dumps, and on
// "_sys.history" to request flight-data windows.
func (b *Bus) Publish(subj string, value mop.Value) error {
	b.mu.Lock()
	closed := b.closed
	b.mu.Unlock()
	if closed {
		return ErrClosed
	}
	s, err := subject.Parse(subj)
	if err != nil {
		return err
	}
	if subject.IsSys(s) {
		if str := s.String(); str != telemetry.PingSubject && str != telemetry.DumpSubject &&
			str != telemetry.HistorySubject {
			return fmt.Errorf("%q: %w", subj, ErrReservedSubject)
		}
	}
	payload, compact, err := b.host.marshal(value)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrNotDataObject, err)
	}
	b.host.ctr.published.Inc()
	if compact {
		b.host.ctr.compactPublished.Inc()
		return b.host.daemon.PublishCompact(s, payload)
	}
	return b.host.daemon.Publish(s, payload)
}

// marshal encodes a value for the wire: through the host's send
// dictionary when compact publishing is enabled, self-contained otherwise.
func (h *Host) marshal(value mop.Value) (payload []byte, compact bool, err error) {
	if h.sendDict != nil {
		p, err := h.sendDict.Marshal(value)
		return p, true, err
	}
	p, err := wire.Marshal(value)
	return p, false, err
}

// PublishGuaranteed logs the object to the host ledger, then disseminates
// it, retransmitting until some consumer acknowledges. It returns the
// ledger id, which leaves the pending set once acknowledged.
func (b *Bus) PublishGuaranteed(subj string, value mop.Value) (uint64, error) {
	b.mu.Lock()
	closed := b.closed
	b.mu.Unlock()
	if closed {
		return 0, ErrClosed
	}
	s, err := subject.Parse(subj)
	if err != nil {
		return 0, err
	}
	if subject.IsSys(s) {
		// No ping exception here: system probes are fire-and-forget.
		return 0, fmt.Errorf("%q: %w", subj, ErrReservedSubject)
	}
	b.host.mu.Lock()
	led, retry, gate := b.host.ledger, b.host.retry, b.host.guarGate
	b.host.mu.Unlock()
	if led == nil {
		return 0, ErrNoLedger
	}
	payload, compact, err := b.host.marshal(value)
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrNotDataObject, err)
	}
	// Log before sending (§3.1). The ledger stores the payload as
	// encoded; the retrier re-detects the compact format by its header.
	id, tm, err := led.AppendTimed(s.String(), payload)
	if err != nil {
		return 0, err
	}
	b.host.ctr.publishedGuaranteed.Inc()
	// Guaranteed-path stage hops: only assembled when tracing is enabled
	// at all; the daemon transmits them only on sampled publications.
	var pre []busproto.TraceHop
	if b.host.tracing {
		pre = make([]busproto.TraceHop, 0, 4)
		pre = append(pre, busproto.TraceHop{Kind: busproto.HopLedgerStage, Node: b.host.name, At: tm.StagedAt})
		if tm.CommitAt != 0 {
			pre = append(pre, busproto.TraceHop{Kind: busproto.HopGroupCommit, Node: b.host.name, At: tm.CommitAt})
		}
		if tm.SyncedAt != 0 {
			pre = append(pre, busproto.TraceHop{Kind: busproto.HopFsync, Node: b.host.name, At: tm.SyncedAt})
		}
		if gate != nil {
			// The ledger's commit hook mirrored the batch as a replication
			// chunk before AppendTimed returned (the qledger ordering
			// contract), so now is an upper bound on the chunk broadcast.
			pre = append(pre, busproto.TraceHop{Kind: busproto.HopReplicaChunk, Node: b.host.name, At: time.Now().UnixNano()})
		}
	}
	if compact {
		b.host.ctr.compactPublished.Inc()
	}
	traceID, err := b.host.daemon.PublishGuaranteedTraced(s, payload, id, compact, pre)
	if err != nil {
		return id, err
	}
	_ = retry // the retrier re-publishes on its timer until the ack lands
	if gate != nil {
		// Replicated mode: hold the publisher until a majority of replicas
		// acknowledged the commit batch carrying this id. On error the entry
		// is already pending locally and disseminated, so nothing is lost —
		// the caller just lacks the quorum guarantee.
		quorumAt, gerr := gate(id)
		if gerr != nil {
			return id, gerr
		}
		if traceID != 0 && quorumAt != 0 {
			// The quorum ack landed after the envelope left: publish it as
			// a sidecar trace monitors merge by trace id.
			b.host.publishTraceSidecar(traceID, quorumAt)
		}
	}
	return id, nil
}

// publishTraceSidecar emits the late stage of a sampled guaranteed
// publication — the quorum-ack hop, known only after the envelope has
// been disseminated — as a SysTrace object on "_sys.trace.<node>". Trace
// assemblers (ibmon) merge it into the delivery trace by trace id.
func (h *Host) publishTraceSidecar(traceID uint64, quorumAt int64) {
	types, err := telemetry.DefineSysTypes(h.reg)
	if err != nil {
		return
	}
	node := telemetry.SanitizeNode(h.name)
	obj := types.TraceObject(node, traceID,
		[]busproto.TraceHop{{Kind: busproto.HopQuorumAck, Node: h.name, At: quorumAt}})
	payload, err := wire.Marshal(obj)
	if err != nil {
		return
	}
	s, err := subject.Parse(telemetry.TraceSubject(node))
	if err != nil {
		return
	}
	_ = h.daemon.Publish(s, payload)
	_ = h.daemon.Flush()
}

// Subscribe registers interest in a subject pattern ("news.equity.*",
// "fab5.>", ...). The returned subscription's channel receives every
// matching publication from any producer, current or future.
func (b *Bus) Subscribe(pattern string) (*Subscription, error) {
	pat, err := subject.ParsePattern(pattern)
	if err != nil {
		return nil, err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil, ErrClosed
	}
	// A modest buffer decouples the dispatcher from a briefly busy
	// subscriber without making large subscription populations (Figure 8
	// subscribes to 10 000 subjects per consumer) expensive to keep live.
	ch := make(chan Event, 32)
	sub := &Subscription{pattern: pat, bus: b, ch: ch, done: make(chan struct{})}
	sub.C = ch
	if err := b.client.Subscribe(pat); err != nil {
		return nil, err
	}
	b.subs.Add(pat, sub)
	b.all = append(b.all, sub)
	return sub, nil
}

func (b *Bus) removeSub(s *Subscription) {
	b.mu.Lock()
	removed := b.subs.Remove(s.pattern, s)
	if removed {
		for i, x := range b.all {
			if x == s {
				b.all = append(b.all[:i], b.all[i+1:]...)
				break
			}
		}
		// Drop the daemon-side subscription only if no other subscription
		// of this bus uses the same pattern.
		samePattern := false
		for _, x := range b.all {
			if x.pattern.String() == s.pattern.String() {
				samePattern = true
				break
			}
		}
		if !samePattern && !b.closed {
			_ = b.client.Unsubscribe(s.pattern)
		}
	}
	b.mu.Unlock()
	if removed {
		s.shutdown()
	}
}

// Flush pushes batched publications onto the wire immediately.
func (b *Bus) Flush() error { return b.host.daemon.Flush() }

// Close detaches the application from the bus and closes all of its
// subscriptions.
func (b *Bus) Close() error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil
	}
	b.closed = true
	subs := append([]*Subscription(nil), b.all...)
	b.all = nil
	b.mu.Unlock()
	close(b.done)
	err := b.client.Close()
	for _, s := range subs {
		s.shutdown()
	}
	return err
}

// dispatchLoop decodes daemon deliveries and fans them out to matching
// subscriptions.
func (b *Bus) dispatchLoop() {
	for {
		dv, ok := b.client.Next(b.done)
		if !ok {
			return
		}
		b.dispatch(dv)
	}
}

// dispatch decodes one delivery and fans it out. A compact delivery whose
// class fingerprints are not cached yet is stashed and NAKed instead of
// dropped; classSync retries it once the definitions arrive.
func (b *Bus) dispatch(dv daemon.Delivery) {
	compact := wire.IsCompact(dv.Payload)
	value, err := wire.UnmarshalWith(dv.Payload, b.host.reg, b.host.typeCache)
	if err != nil {
		var missing *wire.MissingFingerprintsError
		if errors.As(err, &missing) {
			b.host.ctr.decodeDeferred.Inc()
			b.stashPending(dv)
			b.host.requestClasses(missing.FPs)
			return
		}
		b.host.ctr.undecodableDropped.Inc()
		return // undecodable object: drop (foreign/corrupt payload)
	}
	b.host.ctr.events.Inc()
	if compact {
		b.host.ctr.compactEvents.Inc()
	}
	ev := Event{
		Subject:    dv.Subject,
		Value:      value,
		From:       dv.From,
		Guaranteed: dv.Guaranteed,
		TraceID:    dv.TraceID,
		Trace:      dv.Trace,
	}
	b.mu.Lock()
	targets := b.subs.Match(dv.Subject)
	b.mu.Unlock()
	for _, sub := range targets {
		sub.deliver(ev, b.done)
	}
}

func (b *Bus) stashPending(dv daemon.Delivery) {
	b.pendingMu.Lock()
	if len(b.pending) >= maxPendingDecodes {
		b.host.ctr.undecodableDropped.Inc()
		copy(b.pending, b.pending[1:])
		b.pending = b.pending[:len(b.pending)-1]
	}
	b.pending = append(b.pending, dv)
	b.pendingMu.Unlock()
}

// retryPending re-dispatches stashed deliveries after new class
// definitions were installed; still-unresolved ones re-stash themselves.
func (b *Bus) retryPending() {
	b.pendingMu.Lock()
	stash := b.pending
	b.pending = nil
	b.pendingMu.Unlock()
	for _, dv := range stash {
		b.dispatch(dv)
	}
}

// The guaranteed-delivery retrier lives in retry.go.
