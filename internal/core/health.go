package core

import (
	"sync"
	"time"

	"infobus/internal/daemon"
	"infobus/internal/subject"
	"infobus/internal/telemetry"
	"infobus/internal/wire"
)

// healthAgent is the host's alarm publisher: it owns the alarm engine's
// tick loop, turns raise/clear edges into self-describing SysAlarm
// publications on "_sys.alarm.<node>.<kind>", and answers "_sys.dump"
// probes with the process flight recorder's text dump. Like sysExporter,
// it publishes through the daemon directly — the internal path — so the
// "_sys.>" reservation enforced on Bus.Publish does not apply to it.
//
// Watch topology: the daemon registers its own watches (per-client queue
// depth, dedup-ring pressure) because it owns those signals; the agent
// registers the host-level ones — the retransmission rate of the host's
// reliable stream and the guaranteed-delivery ledger backlog — because
// those layers only expose gauges and counters, not policy.
type healthAgent struct {
	h      *Host
	engine *telemetry.Engine
	rec    *telemetry.Recorder
	types  telemetry.SysTypes
	client *daemon.Client
	node   string

	done chan struct{}
	wg   sync.WaitGroup
}

func startHealthAgent(h *Host, engine *telemetry.Engine, rec *telemetry.Recorder,
	hcfg telemetry.HealthConfig, metricsPrefix string) (*healthAgent, error) {
	types, err := telemetry.DefineSysTypes(h.reg)
	if err != nil {
		return nil, err
	}
	client, err := h.daemon.NewClient("_sys-health")
	if err != nil {
		return nil, err
	}
	if err := client.Subscribe(subject.MustParsePattern(telemetry.DumpSubject)); err != nil {
		_ = client.Close()
		return nil, err
	}
	a := &healthAgent{
		h:      h,
		engine: engine,
		rec:    rec,
		types:  types,
		client: client,
		node:   engine.Node(),
		done:   make(chan struct{}),
	}
	// Retransmit storm: the per-second rate of the host's retransmissions —
	// the reliable stream's plus the guaranteed-delivery retrier's, since
	// both re-occupy the medium. A lossy segment, a receiver NAK-looping,
	// or a guaranteed publication with no live consumer drives this;
	// sustained storms starve the shared medium (the appendix's throughput
	// figures assume a lightly loaded Ethernet).
	relRetrans := h.metrics.Counter(metricsPrefix + ".retransmits")
	guarRetrans := h.ctr.guarRetransmits
	engine.WatchRateFunc(telemetry.WatchConfig{
		Kind:  "retransmit-storm",
		Raise: hcfg.RetransmitStormRate,
	}, func() int64 { return int64(relRetrans.Load() + guarRetrans.Load()) })
	if h.ledger != nil {
		// Ledger backlog: guaranteed publications no consumer has
		// acknowledged. Growth means the retrier is spinning on a
		// publication nobody subscribes to, or consumers are gone.
		engine.Watch(telemetry.WatchConfig{
			Kind:  "ledger-backlog",
			Raise: hcfg.LedgerBacklog,
		}, h.metrics.Gauge("ledger.pending").Load)
	}
	engine.SetSink(a.publishAlarm)
	a.wg.Add(1)
	go a.dumpLoop()
	engine.Start(hcfg.Interval)
	return a, nil
}

func (a *healthAgent) stop() {
	a.engine.Stop()
	close(a.done)
	_ = a.client.Close()
	a.wg.Wait()
}

// publishAlarm is the engine sink: one SysAlarm publication per edge,
// flushed immediately — an alarm must not sit in a batch buffer. The edge
// is also noted into the flight-data ring (when the history tier runs),
// so "_sys.history" windows show it aligned with the metric samples that
// tripped it.
func (a *healthAgent) publishAlarm(ev telemetry.AlarmEvent) {
	if hist := a.h.History(); hist != nil {
		hist.NoteAlarm(ev)
	}
	subj, err := subject.Parse(telemetry.AlarmSubject(ev.Node, ev.Kind))
	if err != nil {
		return
	}
	payload, err := wire.Marshal(a.types.AlarmObject(ev))
	if err != nil {
		return
	}
	_ = a.h.daemon.Publish(subj, payload)
	_ = a.h.daemon.Flush()
}

// dumpLoop answers "_sys.dump" probes with the flight-recorder text.
func (a *healthAgent) dumpLoop() {
	defer a.wg.Done()
	for {
		_, ok := a.client.Next(a.done)
		if !ok {
			return
		}
		a.publishDump()
	}
}

func (a *healthAgent) publishDump() {
	subj, err := subject.Parse(telemetry.DumpedSubject(a.node))
	if err != nil {
		return
	}
	now := time.Now()
	obj := a.types.DumpObject(a.node, now, int64(a.rec.Total()), a.engine.DumpText())
	payload, err := wire.Marshal(obj)
	if err != nil {
		return
	}
	a.rec.Record(telemetry.EventDump, a.node, 0, 0)
	_ = a.h.daemon.Publish(subj, payload)
	_ = a.h.daemon.Flush()
}
