package core

import (
	"path/filepath"
	"testing"
	"time"

	"infobus/internal/mop"
)

// compactCfg is the host configuration for compact publishers in these
// tests: millisecond NAK timers to match the netsim speedup (see
// fastReliable).
func compactCfg() HostConfig {
	return HostConfig{CompactTypes: true, CompactNakInterval: 3 * time.Millisecond}
}

func TestCompactPublishSubscribe(t *testing.T) {
	seg := fastSeg()
	defer seg.Close()
	pubHost := newHost(t, seg, "fab-pub", compactCfg())
	subHost := newHost(t, seg, "fab-sub", HostConfig{}) // receivers need no config

	pubBus, err := pubHost.NewBus("sensor")
	if err != nil {
		t.Fatal(err)
	}
	subBus, err := subHost.NewBus("monitor")
	if err != nil {
		t.Fatal(err)
	}
	sub, err := subBus.Subscribe("fab5.cc.litho8.thick")
	if err != nil {
		t.Fatal(err)
	}

	wt := thicknessType()
	// Several publications so the second and later ones exercise the
	// steady-state reference-only path through the receiver's cache.
	for i := 0; i < 3; i++ {
		obj := mop.MustNew(wt).MustSet("station", "litho8").MustSet("microns", 12.5+float64(i))
		if err := pubBus.Publish("fab5.cc.litho8.thick", obj); err != nil {
			t.Fatal(err)
		}
		ev := recvEvent(t, sub, 5*time.Second)
		got := ev.Value.(*mop.Object)
		if got.Type().Name() != "WaferThickness" {
			t.Fatalf("type = %q", got.Type().Name())
		}
		if got.MustGet("microns") != 12.5+float64(i) {
			t.Fatalf("publication %d: microns = %v", i, got.MustGet("microns"))
		}
	}
	if !subHost.Registry().Has("WaferThickness") {
		t.Error("type not registered on subscriber host")
	}
	if n := pubHost.Metrics().Counter("bus.compact_published").Load(); n != 3 {
		t.Errorf("bus.compact_published = %d, want 3", n)
	}
	if n := subHost.Metrics().Counter("bus.compact_events").Load(); n != 3 {
		t.Errorf("bus.compact_events = %d, want 3", n)
	}
	// Same-segment, subscribed-from-the-start receivers never miss a
	// fingerprint: the first message carried the defs.
	if n := subHost.Metrics().Counter("bus.decode_deferred").Load(); n != 0 {
		t.Errorf("bus.decode_deferred = %d, want 0", n)
	}
}

// TestCompactLateSubscriberNak is the tentpole's recovery path on one
// segment: a host that joins after the class definitions crossed the
// medium receives a reference-only message, NAKs the unknown fingerprints
// on _sys.class.req, and decodes once the origin answers on
// _sys.class.def. The inline fallback is pushed out of reach so the test
// can only pass through the NAK protocol.
func TestCompactLateSubscriberNak(t *testing.T) {
	seg := fastSeg()
	defer seg.Close()
	cfg := compactCfg()
	cfg.CompactResendEvery = 1 << 30 // never fall back inline
	pubHost := newHost(t, seg, "fab-pub", cfg)
	pubBus, err := pubHost.NewBus("sensor")
	if err != nil {
		t.Fatal(err)
	}

	// Warm the send dictionary before the subscriber exists: this defs-
	// carrying publication reaches nobody.
	wt := thicknessType()
	if err := pubBus.Publish("fab5.cc.litho8.thick",
		mop.MustNew(wt).MustSet("station", "litho8").MustSet("microns", 1.0)); err != nil {
		t.Fatal(err)
	}
	// The frame must leave the medium before the late host attaches —
	// otherwise it is not late, it just receives the defs directly.
	_ = pubBus.Flush()
	time.Sleep(30 * time.Millisecond)

	subHost := newHost(t, seg, "fab-late", HostConfig{})
	subBus, err := subHost.NewBus("monitor")
	if err != nil {
		t.Fatal(err)
	}
	sub, err := subBus.Subscribe("fab5.cc.litho8.thick")
	if err != nil {
		t.Fatal(err)
	}
	// Let the subscriber's interest reach the publisher's daemon.
	time.Sleep(50 * time.Millisecond)

	if err := pubBus.Publish("fab5.cc.litho8.thick",
		mop.MustNew(wt).MustSet("station", "litho8").MustSet("microns", 2.0)); err != nil {
		t.Fatal(err)
	}

	ev := recvEvent(t, sub, 5*time.Second)
	got := ev.Value.(*mop.Object)
	if got.Type().Name() != "WaferThickness" || got.MustGet("microns") != 2.0 {
		t.Fatalf("late subscriber decoded %v", ev.Value)
	}
	if n := subHost.Metrics().Counter("bus.decode_deferred").Load(); n == 0 {
		t.Error("expected the reference-only delivery to be deferred")
	}
	if n := subHost.Metrics().Counter("bus.class_nak_sent").Load(); n == 0 {
		t.Error("expected the late subscriber to NAK on _sys.class.req")
	}
	if n := pubHost.Metrics().Counter("bus.class_nak_served").Load(); n == 0 {
		t.Error("expected the origin to serve the NAK on _sys.class.def")
	}
	if n := subHost.Metrics().Counter("bus.class_defs_harvested").Load(); n == 0 {
		t.Error("expected the late subscriber to harvest the reply")
	}
}

// TestCompactInlineFallback proves progress without the NAK path: with a
// small resend period, a late joiner decodes as soon as the next inline
// re-send of the definitions comes around, even though its earlier
// deliveries were deferred.
func TestCompactInlineFallback(t *testing.T) {
	seg := fastSeg()
	defer seg.Close()
	cfg := compactCfg()
	cfg.CompactResendEvery = 2
	cfg.CompactNakInterval = time.Hour // NAKs effectively disabled
	pubHost := newHost(t, seg, "fab-pub", cfg)
	pubBus, err := pubHost.NewBus("sensor")
	if err != nil {
		t.Fatal(err)
	}
	wt := thicknessType()
	if err := pubBus.Publish("fab5.cc.litho8.thick",
		mop.MustNew(wt).MustSet("station", "litho8").MustSet("microns", 1.0)); err != nil {
		t.Fatal(err)
	}
	_ = pubBus.Flush()
	time.Sleep(30 * time.Millisecond)

	subHost := newHost(t, seg, "fab-late", HostConfig{})
	subBus, err := subHost.NewBus("monitor")
	if err != nil {
		t.Fatal(err)
	}
	sub, err := subBus.Subscribe("fab5.cc.litho8.thick")
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)

	// seq 2 is reference-only (deferred at the subscriber); seq 3 hits the
	// fallback period and carries the defs again, which also unlocks the
	// stashed seq-2 delivery.
	for i := 2; i <= 3; i++ {
		if err := pubBus.Publish("fab5.cc.litho8.thick",
			mop.MustNew(wt).MustSet("station", "litho8").MustSet("microns", float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	first := recvEvent(t, sub, 5*time.Second)
	second := recvEvent(t, sub, 5*time.Second)
	mics := []any{first.Value.(*mop.Object).MustGet("microns"), second.Value.(*mop.Object).MustGet("microns")}
	// The defs-carrying seq-3 message dispatches first; the stashed seq-2
	// delivery is retried right after.
	if !((mics[0] == 2.0 && mics[1] == 3.0) || (mics[0] == 3.0 && mics[1] == 2.0)) {
		t.Fatalf("fallback delivered %v, want {2, 3} in some order", mics)
	}
	if n := subHost.Metrics().Counter("bus.decode_deferred").Load(); n == 0 {
		t.Error("expected the reference-only delivery to be deferred")
	}
}

func TestCompactGuaranteedDelivery(t *testing.T) {
	seg := fastSeg()
	defer seg.Close()
	cfg := compactCfg()
	cfg.LedgerPath = filepath.Join(t.TempDir(), "pub.ledger")
	cfg.RetryInterval = 5 * time.Millisecond
	pubHost := newHost(t, seg, "fab-pub", cfg)
	subHost := newHost(t, seg, "fab-sub", HostConfig{})

	pubBus, err := pubHost.NewBus("sensor")
	if err != nil {
		t.Fatal(err)
	}
	subBus, err := subHost.NewBus("monitor")
	if err != nil {
		t.Fatal(err)
	}
	sub, err := subBus.Subscribe("fab5.cc.litho8.thick")
	if err != nil {
		t.Fatal(err)
	}

	wt := thicknessType()
	for i := 0; i < 2; i++ {
		obj := mop.MustNew(wt).MustSet("station", "litho8").MustSet("microns", float64(i))
		if _, err := pubBus.PublishGuaranteed("fab5.cc.litho8.thick", obj); err != nil {
			t.Fatal(err)
		}
		ev := recvEvent(t, sub, 5*time.Second)
		if !ev.Guaranteed {
			t.Fatal("event not marked guaranteed")
		}
		if got := ev.Value.(*mop.Object).MustGet("microns"); got != float64(i) {
			t.Fatalf("publication %d: microns = %v", i, got)
		}
	}

	// The acks must drain the ledger even though the payloads travelled in
	// the compact format (the retrier re-detects it by header).
	deadline := time.Now().Add(5 * time.Second)
	for len(pubHost.PendingGuaranteed()) > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("%d guaranteed publications never acknowledged", len(pubHost.PendingGuaranteed()))
		}
		time.Sleep(5 * time.Millisecond)
	}
}
