package core

import (
	"sync"
	"time"

	"infobus/internal/daemon"
	"infobus/internal/subject"
	"infobus/internal/telemetry"
	"infobus/internal/wire"
)

// historyAgent is the host's flight-data recorder: it owns the telemetry
// history sampler (fixed-window rings over the host's key rates, depths,
// and latency percentiles), answers "_sys.history" probes with the full
// window as a self-describing SysHistory object on "_sys.history.<node>",
// and publishes a short digest of the same series on the same subject
// unprompted. Like sysExporter it publishes through the daemon directly —
// the internal path — so the "_sys.>" reservation on Bus.Publish does not
// apply to it.
type historyAgent struct {
	h      *Host
	types  telemetry.SysTypes
	client *daemon.Client
	hist   *telemetry.History
	node   string

	digestTicks int

	done chan struct{}
	wg   sync.WaitGroup
}

// historyFamilies bounds the subject-family table published with each
// SysHistory object (merged across the daemon's per-lane tables).
const historyFamilies = 16

// digestSamples is how many trailing ticks a periodic digest carries per
// series — enough for a monitor's rate/percentile columns without
// re-shipping the whole window every time.
const digestSamples = 8

func startHistoryAgent(h *Host, cfg TelemetryConfig, replicated bool, relPrefix string) (*historyAgent, error) {
	types, err := telemetry.DefineSysTypes(h.reg)
	if err != nil {
		return nil, err
	}
	client, err := h.daemon.NewClient("_sys-history")
	if err != nil {
		return nil, err
	}
	if err := client.Subscribe(subject.MustParsePattern(telemetry.HistorySubject)); err != nil {
		_ = client.Close()
		return nil, err
	}
	hist := telemetry.NewHistory(telemetry.HistoryConfig{
		Interval: cfg.HistoryInterval,
		Slots:    cfg.HistorySlots,
	})
	a := &historyAgent{
		h:           h,
		types:       types,
		client:      client,
		hist:        hist,
		node:        telemetry.SanitizeNode(h.name),
		digestTicks: cfg.HistoryDigestTicks,
		done:        make(chan struct{}),
	}
	if a.digestTicks == 0 {
		a.digestTicks = digestSamples
	}
	a.trackDefaults(replicated, relPrefix)
	hist.Start()
	a.wg.Add(1)
	go a.probeLoop()
	if a.digestTicks > 0 {
		a.wg.Add(1)
		go a.digestLoop()
	}
	return a, nil
}

// trackDefaults registers the host's standing series. Instruments are
// fetched by name from the shared metrics registry, so layers that attach
// later (the qledger replication agent) feed the same rings.
func (a *historyAgent) trackDefaults(replicated bool, relPrefix string) {
	m := a.h.metrics
	hist := a.hist
	hist.TrackRate("bus.published", m.Counter("bus.published"))
	hist.TrackRate("bus.events", m.Counter("bus.events"))
	hist.TrackRate("bus.published_guaranteed", m.Counter("bus.published_guaranteed"))
	hist.TrackRate("daemon.inbound", m.Counter("daemon.inbound"))
	hist.TrackRate("daemon.delivered_local", m.Counter("daemon.delivered_local"))
	hist.TrackRate(relPrefix+".retransmits", m.Counter(relPrefix+".retransmits"))
	// Aggregate delivery backlog across the daemon's lanes: where a slow
	// consumer's queue actually sits.
	hist.TrackLevelFunc("daemon.lane_depth", func() int64 {
		var sum int64
		for _, d := range a.h.daemon.LaneDepths() {
			sum += d
		}
		return sum
	})
	if a.h.ledger != nil {
		hist.TrackRate("ledger.commits", m.Counter("ledger.commits"))
		hist.TrackRate("ledger.fsyncs", m.Counter("ledger.fsyncs"))
		hist.TrackLevel("ledger.pending", m.Gauge("ledger.pending"))
		hist.TrackHist("ledger.commit_ns", m.Histogram("ledger.commit_ns"))
	}
	if replicated {
		// Registered before the qledger agent attaches; the registry hands
		// the agent the same instruments by name.
		hist.TrackRate("qledger.acks_recv", m.Counter("qledger.acks_recv"))
		hist.TrackLevel("qledger.repl_lag", m.Gauge("qledger.repl_lag"))
		hist.TrackHist("qledger.quorum_wait_ns", m.Histogram("qledger.quorum_wait_ns"))
	}
	if a.h.tracing {
		hist.TrackHist("daemon.trace_e2e_ns", m.Histogram("daemon.trace_e2e_ns"))
	}
}

func (a *historyAgent) stop() {
	close(a.done)
	a.hist.Stop()
	_ = a.client.Close()
	a.wg.Wait()
}

// probeLoop answers "_sys.history" probes with the full readable window.
func (a *historyAgent) probeLoop() {
	defer a.wg.Done()
	for {
		_, ok := a.client.Next(a.done)
		if !ok {
			return
		}
		a.publishHistory(0)
	}
}

// digestLoop publishes a short unsolicited digest every digestTicks
// sampler intervals.
func (a *historyAgent) digestLoop() {
	defer a.wg.Done()
	ticker := time.NewTicker(time.Duration(a.digestTicks) * a.hist.Interval())
	defer ticker.Stop()
	for {
		select {
		case <-a.done:
			return
		case <-ticker.C:
			a.publishHistory(digestSamples)
		}
	}
}

// publishHistory renders the flight-data window (maxSamples 0 = full) plus
// the merged subject-family table and publishes it on "_sys.history.<node>".
func (a *historyAgent) publishHistory(maxSamples int) {
	snap := a.hist.Snapshot(maxSamples)
	fams := a.h.daemon.TopSubjects(historyFamilies)
	obj := a.types.HistoryObject(a.node, time.Now(), snap, fams)
	payload, err := wire.Marshal(obj)
	if err != nil {
		return
	}
	s, err := subject.Parse(telemetry.HistoryNodeSubject(a.node))
	if err != nil {
		return
	}
	// Best-effort: a closing daemon returns ErrClosed, which is fine.
	_ = a.h.daemon.Publish(s, payload)
	_ = a.h.daemon.Flush()
}
