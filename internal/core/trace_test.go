package core

import (
	"bytes"
	"testing"
	"time"

	"infobus/internal/busproto"
	"infobus/internal/reliable"
)

// TestTraceSampledLocalDelivery turns sampling all the way up and checks
// that a locally delivered event carries the publisher-daemon hop.
func TestTraceSampledLocalDelivery(t *testing.T) {
	seg := fastSeg()
	defer seg.Close()
	h := newHost(t, seg, "solo", HostConfig{
		Telemetry: TelemetryConfig{TraceSampling: 1},
	})
	pub, _ := h.NewBus("producer")
	con, _ := h.NewBus("consumer")
	sub, err := con.Subscribe("fab5.>")
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish("fab5.cc.temp", int64(7)); err != nil {
		t.Fatal(err)
	}
	ev := recvEvent(t, sub, 5*time.Second)
	if ev.TraceID == 0 {
		t.Error("sampled event has zero trace id")
	}
	// Publisher hop plus the delivery-lane stage hops (enqueue, pop).
	wantKinds := []byte{busproto.HopNode, busproto.HopLaneEnqueue, busproto.HopLanePop}
	if len(ev.Trace) != len(wantKinds) {
		t.Fatalf("local trace = %v, want publisher + lane hops", ev.Trace)
	}
	for i, h := range ev.Trace {
		if h.Kind != wantKinds[i] {
			t.Errorf("hop %d kind = %s, want %s", i,
				busproto.HopKindName(h.Kind), busproto.HopKindName(wantKinds[i]))
		}
		if h.Node == "" || h.At == 0 {
			t.Errorf("hop %d = %+v", i, h)
		}
		if i > 0 && h.At < ev.Trace[i-1].At {
			t.Errorf("hop %d timestamp precedes hop %d", i, i-1)
		}
	}
}

// TestTraceDisabledZeroWireBytes taps the raw segment with a bare
// reliable.Conn and checks the acceptance criterion directly: with
// sampling off, data publications travel in the legacy envelope encoding,
// byte for byte — no trace id, no hop list, no flag byte.
func TestTraceDisabledZeroWireBytes(t *testing.T) {
	seg := fastSeg()
	defer seg.Close()
	tapEp, err := seg.NewEndpoint("tap")
	if err != nil {
		t.Fatal(err)
	}
	tap := reliable.New(tapEp, fastReliable())
	defer tap.Close()

	pubHost := newHost(t, seg, "pubhost", HostConfig{}) // sampling defaults to off
	conHost := newHost(t, seg, "conhost", HostConfig{})
	pub, _ := pubHost.NewBus("producer")
	con, _ := conHost.NewBus("consumer")
	sub, err := con.Subscribe("fab5.>")
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish("fab5.cc.temp", int64(7)); err != nil {
		t.Fatal(err)
	}
	if ev := recvEvent(t, sub, 5*time.Second); len(ev.Trace) != 0 || ev.TraceID != 0 {
		t.Fatalf("unsampled event carries trace %v", ev.Trace)
	}

	deadline := time.After(5 * time.Second)
	for {
		select {
		case m, ok := <-tap.Recv():
			if !ok {
				t.Fatal("tap closed")
			}
			env, err := busproto.Decode(m.Payload)
			if err != nil || env.Base() != busproto.KindPublish || env.Subject != "fab5.cc.temp" {
				continue // interest adverts, heartbeats, ...
			}
			if env.Kind != busproto.KindPublish {
				t.Fatalf("wire kind = %d, want legacy KindPublish", env.Kind)
			}
			// Round-trip: the bytes on the wire are exactly the legacy
			// encoding of the decoded envelope.
			if !bytes.Equal(busproto.Encode(env), m.Payload) {
				t.Fatalf("wire bytes differ from legacy encoding: % x", m.Payload)
			}
			return
		case <-deadline:
			t.Fatal("tap never saw the publication")
		}
	}
}
