package core

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"infobus/internal/mop"
	"infobus/internal/subject"
	"infobus/internal/telemetry"
)

// TestSlowConsumerAlarmE2E is the tentpole acceptance path: a subscriber
// that stops reading lets its daemon-side queue grow past the watermark,
// the host raises "_sys.alarm.<node>.slow-consumer" on the wire, an
// anonymous monitor on another host sees the self-describing SysAlarm;
// draining the subscriber clears the alarm with hysteresis; and the flight
// recorder retains both edges.
func TestSlowConsumerAlarmE2E(t *testing.T) {
	seg := fastSeg()
	defer seg.Close()
	slow := newHost(t, seg, "slowhost", HostConfig{
		Telemetry: TelemetryConfig{Health: telemetry.HealthConfig{
			Interval:          2 * time.Millisecond,
			SlowConsumerDepth: 64,
		}},
	})
	mon := newHost(t, seg, "monhost", HostConfig{})
	monBus, err := mon.NewBus("monitor")
	if err != nil {
		t.Fatal(err)
	}
	alarms, err := monBus.Subscribe("_sys.alarm.>")
	if err != nil {
		t.Fatal(err)
	}

	slowBus, err := slow.NewBus("lagging")
	if err != nil {
		t.Fatal(err)
	}
	stalled, err := slowBus.Subscribe("load.>")
	if err != nil {
		t.Fatal(err)
	}

	// Publish from the monitor host and never read on the stalled
	// subscription: the bus dispatcher blocks once the subscription buffer
	// fills, and the daemon-side client queue grows past the watermark.
	pubBus, err := mon.NewBus("generator")
	if err != nil {
		t.Fatal(err)
	}
	var raise Event
	deadline := time.After(15 * time.Second)
	var published int
publishing:
	for {
		for i := 0; i < 20; i++ {
			if err := pubBus.Publish("load.burst", int64(published)); err != nil {
				t.Fatal(err)
			}
			published++
		}
		_ = pubBus.Flush()
		select {
		case raise = <-alarms.C:
			break publishing
		case <-deadline:
			t.Fatalf("no slow-consumer alarm after %d publications (active: %+v)",
				published, slow.ActiveAlarms())
		case <-time.After(5 * time.Millisecond):
		}
	}
	if got := raise.Subject.String(); got != "_sys.alarm.slowhost.slow-consumer" {
		t.Fatalf("alarm subject = %q", got)
	}
	obj, ok := raise.Value.(*mop.Object)
	if !ok || obj.Type().Name() != "SysAlarm" {
		t.Fatalf("alarm value = %v", raise.Value)
	}
	if obj.MustGet("node") != "slowhost" || obj.MustGet("kind") != "slow-consumer" ||
		obj.MustGet("target") != "lagging" || obj.MustGet("raised") != true {
		t.Fatalf("alarm object = %v", obj)
	}
	if obj.MustGet("value").(int64) < 64 {
		t.Fatalf("alarm value %v below watermark", obj.MustGet("value"))
	}
	if got := slow.ActiveAlarms(); len(got) != 1 || got[0].Kind != "slow-consumer" {
		t.Fatalf("ActiveAlarms = %+v", got)
	}

	// Drain the stalled subscription; the queue depth falls below the clear
	// threshold and the alarm clears after the hysteresis hold.
	go func() {
		for range stalled.C {
		}
	}()
	var clear Event
	select {
	case clear = <-alarms.C:
	case <-time.After(15 * time.Second):
		t.Fatalf("alarm never cleared (active: %+v)", slow.ActiveAlarms())
	}
	cobj := clear.Value.(*mop.Object)
	if cobj.MustGet("raised") != false || cobj.MustGet("kind") != "slow-consumer" {
		t.Fatalf("clear edge = %v", cobj)
	}
	if got := slow.ActiveAlarms(); len(got) != 0 {
		t.Fatalf("ActiveAlarms after clear = %+v", got)
	}

	// Both edges are in the flight recorder.
	dump := slow.HealthDump()
	if !strings.Contains(dump, "alarm-raise") || !strings.Contains(dump, "alarm-clear") ||
		!strings.Contains(dump, "slow-consumer:lagging") {
		t.Fatalf("flight recorder missing the edges:\n%s", dump)
	}
	if !strings.Contains(dump, "active alarms: none") {
		t.Fatalf("dump header wrong:\n%s", dump)
	}
}

// TestSlowConsumerAlarmAcrossLanes is the sharded-engine regression for
// the health tier: with several delivery lanes, a stalled client's backlog
// spreads over per-lane queue columns, and the slow-consumer watch must
// trip on the cross-lane AGGREGATE — publishing round-robin over subjects
// on distinct lanes keeps every single lane's share well below the
// watermark, so only correct aggregation raises "_sys.alarm.>" here.
func TestSlowConsumerAlarmAcrossLanes(t *testing.T) {
	seg := fastSeg()
	defer seg.Close()
	slow := newHost(t, seg, "slowhost", HostConfig{
		DeliveryLanes: 4,
		Telemetry: TelemetryConfig{Health: telemetry.HealthConfig{
			Interval:          2 * time.Millisecond,
			SlowConsumerDepth: 64,
		}},
	})
	if got := slow.Daemon().Lanes(); got != 4 {
		t.Fatalf("lanes = %d, want 4", got)
	}
	mon := newHost(t, seg, "monhost", HostConfig{})
	monBus, err := mon.NewBus("monitor")
	if err != nil {
		t.Fatal(err)
	}
	alarms, err := monBus.Subscribe("_sys.alarm.>")
	if err != nil {
		t.Fatal(err)
	}
	slowBus, err := slow.NewBus("lagging")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := slowBus.Subscribe("load.>"); err != nil {
		t.Fatal(err)
	}

	// Subjects on three distinct lanes of the four-lane receiver.
	var subjects []string
	used := make(map[int]bool)
	for i := 0; len(subjects) < 3 && i < 10000; i++ {
		raw := fmt.Sprintf("load.g%d.burst", i)
		if idx := subject.MustParse(raw).LaneIndex(4); !used[idx] {
			used[idx] = true
			subjects = append(subjects, raw)
		}
	}

	pubBus, err := mon.NewBus("generator")
	if err != nil {
		t.Fatal(err)
	}
	var raise Event
	deadline := time.After(15 * time.Second)
	var published int
publishing:
	for {
		for i := 0; i < 21; i++ {
			if err := pubBus.Publish(subjects[published%len(subjects)], int64(published)); err != nil {
				t.Fatal(err)
			}
			published++
		}
		_ = pubBus.Flush()
		select {
		case raise = <-alarms.C:
			break publishing
		case <-deadline:
			t.Fatalf("no slow-consumer alarm after %d publications across lanes (active: %+v, lane depths: %v)",
				published, slow.ActiveAlarms(), slow.Daemon().LaneDepths())
		case <-time.After(5 * time.Millisecond):
		}
	}
	if got := raise.Subject.String(); got != "_sys.alarm.slowhost.slow-consumer" {
		t.Fatalf("alarm subject = %q", got)
	}
	obj, ok := raise.Value.(*mop.Object)
	if !ok || obj.MustGet("target") != "lagging" || obj.MustGet("raised") != true {
		t.Fatalf("alarm object = %v", raise.Value)
	}
	// The backlog really was sharded: more than one lane holds a share,
	// and no single lane reached the watermark on its own at raise time
	// (the gauge cut may trail the raise slightly, so only assert spread).
	depths := slow.Daemon().LaneDepths()
	nonzero := 0
	for _, d := range depths {
		if d > 0 {
			nonzero++
		}
	}
	if nonzero < 2 {
		t.Fatalf("backlog not spread across lanes at raise: %v", depths)
	}
}

// TestSysDumpProbe publishes on "_sys.dump" (the second user-publishable
// system subject) and expects the health-enabled host to answer with a
// SysDump object carrying its flight-recorder text.
func TestSysDumpProbe(t *testing.T) {
	seg := fastSeg()
	defer seg.Close()
	newHost(t, seg, "dumphost", HostConfig{
		Telemetry: TelemetryConfig{Health: telemetry.HealthConfig{Interval: 5 * time.Millisecond}},
	})
	prober := newHost(t, seg, "prober", HostConfig{})
	bus, err := prober.NewBus("probe")
	if err != nil {
		t.Fatal(err)
	}
	sub, err := bus.Subscribe("_sys.dumped.>")
	if err != nil {
		t.Fatal(err)
	}

	deadline := time.After(10 * time.Second)
	for {
		if err := bus.Publish(telemetry.DumpSubject, int64(1)); err != nil {
			t.Fatal(err)
		}
		select {
		case ev := <-sub.C:
			obj, ok := ev.Value.(*mop.Object)
			if !ok || obj.Type().Name() != "SysDump" {
				t.Fatalf("dump value = %v", ev.Value)
			}
			if obj.MustGet("node") != "dumphost" {
				t.Fatalf("dump node = %v", obj.MustGet("node"))
			}
			text, _ := obj.MustGet("text").(string)
			if !strings.Contains(text, "flight recorder:") {
				t.Fatalf("dump text = %q", text)
			}
			return
		case <-deadline:
			t.Fatal("no dump received")
		case <-time.After(20 * time.Millisecond):
		}
	}
}

// TestHealthDisabledByDefault pins that the zero config keeps the tier
// completely off: no recorder, no alarms, no dump answer machinery.
func TestHealthDisabledByDefault(t *testing.T) {
	seg := fastSeg()
	defer seg.Close()
	h := newHost(t, seg, "plain", HostConfig{})
	if h.Recorder() != nil {
		t.Error("recorder allocated with health disabled")
	}
	if got := h.ActiveAlarms(); got != nil {
		t.Errorf("ActiveAlarms = %+v", got)
	}
	if got := h.HealthDump(); got != "" {
		t.Errorf("HealthDump = %q", got)
	}
}
