package core

import (
	"sync"
	"time"

	"infobus/internal/daemon"
	"infobus/internal/mop"
	"infobus/internal/subject"
	"infobus/internal/telemetry"
	"infobus/internal/wire"
)

// sysExporter is the host's self-hosted observability agent: on a timer it
// publishes the host's metrics snapshot as a self-describing SysStats
// object on "_sys.stats.<node>", and it answers "_sys.ping" probes with a
// SysPong plus a fresh snapshot. It publishes through the daemon directly —
// the internal path — which is why applications going through Bus.Publish
// can be denied the "_sys.>" space without breaking the export.
type sysExporter struct {
	h        *Host
	types    telemetry.SysTypes
	client   *daemon.Client
	interval time.Duration
	node     string
	start    time.Time

	done chan struct{}
	wg   sync.WaitGroup
}

func startSysExporter(h *Host, interval time.Duration) (*sysExporter, error) {
	types, err := telemetry.DefineSysTypes(h.reg)
	if err != nil {
		return nil, err
	}
	client, err := h.daemon.NewClient("_sys-exporter")
	if err != nil {
		return nil, err
	}
	if err := client.Subscribe(subject.MustParsePattern(telemetry.PingSubject)); err != nil {
		_ = client.Close()
		return nil, err
	}
	e := &sysExporter{
		h:        h,
		types:    types,
		client:   client,
		interval: interval,
		node:     telemetry.SanitizeNode(h.name),
		start:    time.Now(),
		done:     make(chan struct{}),
	}
	e.wg.Add(2)
	go e.exportLoop()
	go e.pingLoop()
	return e, nil
}

func (e *sysExporter) stop() {
	close(e.done)
	_ = e.client.Close()
	e.wg.Wait()
}

func (e *sysExporter) exportLoop() {
	defer e.wg.Done()
	ticker := time.NewTicker(e.interval)
	defer ticker.Stop()
	for {
		select {
		case <-e.done:
			return
		case <-ticker.C:
			e.publishStats()
		}
	}
}

// pingLoop answers "_sys.ping" probes. The probe payload may carry a nonce
// (any integer value, or an object with an integer "nonce" attribute); the
// pong echoes it so a prober can match answers to its own probe.
func (e *sysExporter) pingLoop() {
	defer e.wg.Done()
	for {
		dv, ok := e.client.Next(e.done)
		if !ok {
			return
		}
		var nonce int64
		if v, err := wire.UnmarshalWith(dv.Payload, e.h.reg, e.h.typeCache); err == nil {
			switch x := v.(type) {
			case int64:
				nonce = x
			case *mop.Object:
				if n, err := x.Get("nonce"); err == nil {
					if i, ok := n.(int64); ok {
						nonce = i
					}
				}
			}
		}
		e.publishPong(nonce)
		e.publishStats()
	}
}

func (e *sysExporter) publishStats() {
	now := time.Now()
	obj := e.types.StatsObject(e.node, now, now.Sub(e.start), e.h.metrics.Snapshot())
	e.publish(telemetry.StatsSubject(e.node), obj)
}

func (e *sysExporter) publishPong(nonce int64) {
	e.publish(telemetry.PongSubject(e.node), e.types.PongObject(e.node, time.Now(), nonce))
}

func (e *sysExporter) publish(subj string, obj *mop.Object) {
	s, err := subject.Parse(subj)
	if err != nil {
		return
	}
	payload, err := wire.Marshal(obj)
	if err != nil {
		return
	}
	// Best-effort: a closing daemon returns ErrClosed, which is fine.
	_ = e.h.daemon.Publish(s, payload)
	_ = e.h.daemon.Flush()
}
