package core

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"infobus/internal/netsim"
	"infobus/internal/transport"
)

// TestStressLossyChurn soaks the full stack: several publisher hosts
// stream sequenced messages over a lossy, duplicating, reordering network
// while subscribers come and go. Invariants checked at every subscriber,
// per publisher stream:
//
//   - no duplicates (values strictly increase);
//   - FIFO order (never a smaller value after a larger one);
//   - subscribers that existed for the whole run receive a prefix-free
//     complete suffix (no interior gaps once the stream started, because
//     nothing here exceeds the retransmission window).
func TestStressLossyChurn(t *testing.T) {
	netCfg := netsim.DefaultConfig()
	netCfg.Speedup = 5000
	netCfg.LossProb = 0.15
	netCfg.DupProb = 0.05
	netCfg.ReorderProb = 0.1
	netCfg.Seed = 1234
	seg := transport.NewSimSegment(netCfg)
	defer seg.Close()

	const (
		nPublishers = 3
		nStable     = 3 // subscribers present for the whole run
		nMsgs       = 120
	)
	reliableCfg := fastReliable()

	// Stable subscribers first, so they see streams from the start.
	type tracker struct {
		mu   sync.Mutex
		last map[string]int64 // publisher addr -> last value seen
		gaps int
	}
	var trackers []*tracker
	for i := 0; i < nStable; i++ {
		h, err := NewHost(seg, fmt.Sprintf("stable%d", i), HostConfig{Reliable: reliableCfg})
		if err != nil {
			t.Fatal(err)
		}
		defer h.Close()
		bus, _ := h.NewBus("stable")
		sub, err := bus.Subscribe("stress.>")
		if err != nil {
			t.Fatal(err)
		}
		tr := &tracker{last: make(map[string]int64)}
		trackers = append(trackers, tr)
		go func(sub *Subscription, tr *tracker) {
			for ev := range sub.C {
				b, ok := ev.Value.([]byte)
				if !ok || len(b) < 8 {
					continue
				}
				v := int64(binary.BigEndian.Uint64(b))
				tr.mu.Lock()
				last, seen := tr.last[ev.From]
				switch {
				case !seen:
					tr.last[ev.From] = v
				case v <= last:
					t.Errorf("stream %s: value %d after %d (dup or reorder)", ev.From, v, last)
					tr.mu.Unlock()
					return
				default:
					if v != last+1 {
						tr.gaps += int(v - last - 1)
					}
					tr.last[ev.From] = v
				}
				tr.mu.Unlock()
			}
		}(sub, tr)
	}

	// Churning subscribers: appear mid-run, consume a little, vanish.
	stopChurn := make(chan struct{})
	var churnWG sync.WaitGroup
	churnWG.Add(1)
	go func() {
		defer churnWG.Done()
		rng := rand.New(rand.NewSource(7))
		n := 0
		for {
			select {
			case <-stopChurn:
				return
			case <-time.After(time.Duration(2+rng.Intn(5)) * time.Millisecond):
			}
			n++
			h, err := NewHost(seg, fmt.Sprintf("churn%d", n), HostConfig{Reliable: reliableCfg})
			if err != nil {
				return
			}
			bus, _ := h.NewBus("churner")
			sub, err := bus.Subscribe("stress.>")
			if err != nil {
				_ = h.Close()
				continue
			}
			go func() {
				for range sub.C {
				}
			}()
			time.Sleep(time.Duration(2+rng.Intn(6)) * time.Millisecond)
			_ = h.Close()
		}
	}()

	// Publishers stream concurrently.
	var pubWG sync.WaitGroup
	for p := 0; p < nPublishers; p++ {
		h, err := NewHost(seg, fmt.Sprintf("pub%d", p), HostConfig{Reliable: reliableCfg})
		if err != nil {
			t.Fatal(err)
		}
		defer h.Close()
		bus, _ := h.NewBus("pub")
		pubWG.Add(1)
		go func(p int, bus *Bus) {
			defer pubWG.Done()
			for i := 1; i <= nMsgs; i++ {
				b := make([]byte, 8)
				binary.BigEndian.PutUint64(b, uint64(i))
				if err := bus.Publish(fmt.Sprintf("stress.p%d", p), b); err != nil {
					t.Errorf("publish: %v", err)
					return
				}
				time.Sleep(200 * time.Microsecond)
			}
		}(p, bus)
	}
	pubWG.Wait()
	close(stopChurn)
	churnWG.Wait()

	// Every stable subscriber eventually converges to the final value on
	// every publisher stream.
	deadline := time.After(30 * time.Second)
	for _, tr := range trackers {
		for {
			tr.mu.Lock()
			doneStreams := 0
			for _, last := range tr.last {
				if last == nMsgs {
					doneStreams++
				}
			}
			gaps := tr.gaps
			total := len(tr.last)
			tr.mu.Unlock()
			if total == nPublishers && doneStreams == nPublishers {
				if gaps != 0 {
					t.Errorf("stable subscriber saw %d interior gaps", gaps)
				}
				break
			}
			select {
			case <-deadline:
				t.Fatalf("streams never converged: %d/%d complete", doneStreams, nPublishers)
			case <-time.After(5 * time.Millisecond):
			}
		}
	}
	// Reader goroutines (tracked by wg) exit when their hosts close during
	// test cleanup; wg is not waited here because cleanup runs afterwards.
}
