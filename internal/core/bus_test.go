package core

import (
	"errors"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"infobus/internal/mop"
	"infobus/internal/netsim"
	"infobus/internal/reliable"
	"infobus/internal/transport"
)

func fastSeg() *transport.SimSegment {
	cfg := netsim.DefaultConfig()
	cfg.Speedup = 5000
	return transport.NewSimSegment(cfg)
}

func fastReliable() reliable.Config {
	return reliable.Config{
		NakInterval:        2 * time.Millisecond,
		GapTimeout:         300 * time.Millisecond,
		RetransmitInterval: 3 * time.Millisecond,
		HeartbeatInterval:  5 * time.Millisecond,
	}
}

func newHost(t *testing.T, seg transport.Segment, name string, cfg HostConfig) *Host {
	t.Helper()
	if cfg.Reliable.NakInterval == 0 {
		cfg.Reliable = fastReliable()
	}
	h, err := NewHost(seg, name, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = h.Close() })
	return h
}

func recvEvent(t *testing.T, sub *Subscription, within time.Duration) Event {
	t.Helper()
	select {
	case ev, ok := <-sub.C:
		if !ok {
			t.Fatal("subscription closed")
		}
		return ev
	case <-time.After(within):
		t.Fatal("timed out waiting for event")
		return Event{}
	}
}

// thicknessType builds a small fab-telemetry class.
func thicknessType() *mop.Type {
	return mop.MustNewClass("WaferThickness", nil, []mop.Attr{
		{Name: "station", Type: mop.String},
		{Name: "microns", Type: mop.Float},
	}, nil)
}

func TestPublishSubscribeAcrossHosts(t *testing.T) {
	seg := fastSeg()
	defer seg.Close()
	pubHost := newHost(t, seg, "fab-pub", HostConfig{})
	subHost := newHost(t, seg, "fab-sub", HostConfig{})

	pubBus, err := pubHost.NewBus("sensor")
	if err != nil {
		t.Fatal(err)
	}
	subBus, err := subHost.NewBus("monitor")
	if err != nil {
		t.Fatal(err)
	}
	sub, err := subBus.Subscribe("fab5.cc.litho8.thick")
	if err != nil {
		t.Fatal(err)
	}

	wt := thicknessType()
	obj := mop.MustNew(wt).MustSet("station", "litho8").MustSet("microns", 12.5)
	if err := pubBus.Publish("fab5.cc.litho8.thick", obj); err != nil {
		t.Fatal(err)
	}

	ev := recvEvent(t, sub, 5*time.Second)
	got := ev.Value.(*mop.Object)
	// The subscriber host had never seen WaferThickness: the type arrived
	// self-describing (P2) and was registered (P3).
	if got.Type().Name() != "WaferThickness" {
		t.Fatalf("type = %q", got.Type().Name())
	}
	if !subHost.Registry().Has("WaferThickness") {
		t.Error("type not registered on subscriber host")
	}
	if got.MustGet("microns") != 12.5 {
		t.Errorf("microns = %v", got.MustGet("microns"))
	}
	if ev.Subject.String() != "fab5.cc.litho8.thick" {
		t.Errorf("subject = %v", ev.Subject)
	}
}

func TestWildcardSubscriptionsAndLocalLoopback(t *testing.T) {
	seg := fastSeg()
	defer seg.Close()
	h := newHost(t, seg, "solo", HostConfig{})
	pub, _ := h.NewBus("producer")
	con, _ := h.NewBus("consumer")

	star, err := con.Subscribe("news.equity.*")
	if err != nil {
		t.Fatal(err)
	}
	rest, err := con.Subscribe("news.>")
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish("news.equity.gmc", "story-1"); err != nil {
		t.Fatal(err)
	}
	// Local consumer on the same host receives via daemon loopback.
	if ev := recvEvent(t, star, 5*time.Second); ev.Value != "story-1" {
		t.Errorf("star event = %v", ev.Value)
	}
	if ev := recvEvent(t, rest, 5*time.Second); ev.Value != "story-1" {
		t.Errorf("rest event = %v", ev.Value)
	}
	// Non-matching subject.
	if err := pub.Publish("sports.scores", "nope"); err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-star.C:
		t.Errorf("star received non-matching %v", ev.Value)
	case <-time.After(30 * time.Millisecond):
	}
}

func TestAnonymousProducerReplacement(t *testing.T) {
	// R1/P4: a subscriber keeps working, oblivious, while the producer is
	// replaced by a new implementation on a different host.
	seg := fastSeg()
	defer seg.Close()
	subHost := newHost(t, seg, "sub", HostConfig{})
	subBus, _ := subHost.NewBus("app")
	sub, _ := subBus.Subscribe("quotes.ibm")

	oldHost := newHost(t, seg, "serverV1", HostConfig{})
	oldBus, _ := oldHost.NewBus("v1")
	if err := oldBus.Publish("quotes.ibm", int64(101)); err != nil {
		t.Fatal(err)
	}
	if ev := recvEvent(t, sub, 5*time.Second); ev.Value != int64(101) {
		t.Fatalf("v1 event = %v", ev.Value)
	}
	// Old server goes away; new one takes over the subject.
	_ = oldHost.Close()
	newHostV2 := newHost(t, seg, "serverV2", HostConfig{})
	newBus, _ := newHostV2.NewBus("v2")
	if err := newBus.Publish("quotes.ibm", int64(202)); err != nil {
		t.Fatal(err)
	}
	if ev := recvEvent(t, sub, 5*time.Second); ev.Value != int64(202) {
		t.Fatalf("v2 event = %v", ev.Value)
	}
}

func TestSubscriptionCancel(t *testing.T) {
	seg := fastSeg()
	defer seg.Close()
	h := newHost(t, seg, "h", HostConfig{})
	pub, _ := h.NewBus("p")
	con, _ := h.NewBus("c")
	sub, _ := con.Subscribe("a.b")
	if err := pub.Publish("a.b", int64(1)); err != nil {
		t.Fatal(err)
	}
	recvEvent(t, sub, 5*time.Second)
	sub.Cancel()
	if _, ok := <-sub.C; ok {
		t.Error("channel should be closed after Cancel")
	}
	if err := pub.Publish("a.b", int64(2)); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	// A second cancel is harmless.
	sub.Cancel()
}

func TestGuaranteedDeliveryAckAndLedgerDrain(t *testing.T) {
	seg := fastSeg()
	defer seg.Close()
	dir := t.TempDir()
	pubHost := newHost(t, seg, "pub", HostConfig{
		LedgerPath:    filepath.Join(dir, "pub.ledger"),
		RetryInterval: 10 * time.Millisecond,
	})
	subHost := newHost(t, seg, "sub", HostConfig{})
	pubBus, _ := pubHost.NewBus("wip")
	subBus, _ := subHost.NewBus("db")
	sub, _ := subBus.Subscribe("fab5.wip.>")

	id, err := pubBus.PublishGuaranteed("fab5.wip.lot42", "move-to-litho")
	if err != nil {
		t.Fatal(err)
	}
	ev := recvEvent(t, sub, 5*time.Second)
	if !ev.Guaranteed || ev.Value != "move-to-litho" {
		t.Fatalf("event = %+v", ev)
	}
	// The consumer's ack must drain the publisher's ledger.
	deadline := time.After(5 * time.Second)
	for len(pubHost.PendingGuaranteed()) > 0 {
		select {
		case <-deadline:
			t.Fatalf("ledger never drained; pending=%v id=%d", pubHost.PendingGuaranteed(), id)
		case <-time.After(5 * time.Millisecond):
		}
	}
}

func TestGuaranteedDeliveryRetriesAcrossPartition(t *testing.T) {
	seg := fastSeg()
	defer seg.Close()
	dir := t.TempDir()
	pubHost := newHost(t, seg, "pub", HostConfig{
		LedgerPath:    filepath.Join(dir, "pub.ledger"),
		RetryInterval: 10 * time.Millisecond,
	})
	subHost := newHost(t, seg, "sub", HostConfig{})
	pubBus, _ := pubHost.NewBus("wip")
	subBus, _ := subHost.NewBus("db")
	sub, _ := subBus.Subscribe("g.data")

	// Cut the subscriber off BEFORE publishing.
	var subID netsim.NodeID
	if _, err := fmt.Sscanf(subHost.Addr(), "sim:%d", &subID); err != nil {
		t.Fatal(err)
	}
	seg.Network().Partition(subID)
	if _, err := pubBus.PublishGuaranteed("g.data", int64(7)); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if len(pubHost.PendingGuaranteed()) != 1 {
		t.Fatalf("message should still be pending during partition")
	}
	// Heal: the retrier must push it through without any new Publish call.
	seg.Network().Heal()
	ev := recvEvent(t, sub, 10*time.Second)
	if ev.Value != int64(7) || !ev.Guaranteed {
		t.Fatalf("event = %+v", ev)
	}
	deadline := time.After(5 * time.Second)
	for len(pubHost.PendingGuaranteed()) > 0 {
		select {
		case <-deadline:
			t.Fatal("ledger never drained after heal")
		case <-time.After(5 * time.Millisecond):
		}
	}
}

func TestGuaranteedSurvivesPublisherRestart(t *testing.T) {
	seg := fastSeg()
	defer seg.Close()
	path := filepath.Join(t.TempDir(), "host.ledger")

	// First life: publish with nobody subscribed, then crash.
	h1, err := NewHost(seg, "pub", HostConfig{
		Reliable: fastReliable(), LedgerPath: path, RetryInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := h1.NewBus("app")
	if _, err := b1.PublishGuaranteed("g.restart", "survives"); err != nil {
		t.Fatal(err)
	}
	_ = h1.Close() // crash

	// Consumer appears.
	subHost := newHost(t, seg, "sub", HostConfig{})
	subBus, _ := subHost.NewBus("db")
	sub, _ := subBus.Subscribe("g.restart")

	// Second life: the ledger replays and the retrier delivers.
	h2 := newHost(t, seg, "pub-reborn", HostConfig{
		LedgerPath: path, RetryInterval: 10 * time.Millisecond,
	})
	if len(h2.PendingGuaranteed()) != 1 {
		t.Fatalf("pending after restart = %v", h2.PendingGuaranteed())
	}
	ev := recvEvent(t, sub, 10*time.Second)
	if ev.Value != "survives" {
		t.Fatalf("event = %+v", ev)
	}
}

func TestGuaranteedWithoutLedgerFails(t *testing.T) {
	seg := fastSeg()
	defer seg.Close()
	h := newHost(t, seg, "h", HostConfig{})
	b, _ := h.NewBus("app")
	if _, err := b.PublishGuaranteed("a.b", "x"); !errors.Is(err, ErrNoLedger) {
		t.Errorf("error = %v, want ErrNoLedger", err)
	}
}

func TestPublishErrors(t *testing.T) {
	seg := fastSeg()
	defer seg.Close()
	h := newHost(t, seg, "h", HostConfig{})
	b, _ := h.NewBus("app")
	if err := b.Publish("bad subject!", "x"); err == nil {
		t.Error("invalid subject accepted")
	}
	if err := b.Publish("a.*", "x"); err == nil {
		t.Error("wildcard in publish subject accepted")
	}
	if err := b.Publish("a.b", struct{}{}); !errors.Is(err, ErrNotDataObject) {
		t.Errorf("unmarshalable value error = %v", err)
	}
	if _, err := b.Subscribe("bad..pattern"); err == nil {
		t.Error("invalid pattern accepted")
	}
	_ = b.Close()
	if err := b.Publish("a.b", "x"); err == nil {
		t.Error("publish on closed bus accepted")
	}
	if _, err := b.Subscribe("a.b"); !errors.Is(err, ErrClosed) {
		t.Errorf("subscribe on closed bus error = %v", err)
	}
}

func TestManySubscribersFanout(t *testing.T) {
	seg := fastSeg()
	defer seg.Close()
	pubHost := newHost(t, seg, "pub", HostConfig{})
	pubBus, _ := pubHost.NewBus("p")

	const nSubs = 14 // the paper's topology
	var subs []*Subscription
	for i := 0; i < nSubs; i++ {
		h := newHost(t, seg, fmt.Sprintf("sub%d", i), HostConfig{})
		b, _ := h.NewBus("c")
		s, err := b.Subscribe("bench.data")
		if err != nil {
			t.Fatal(err)
		}
		subs = append(subs, s)
	}
	const nMsgs = 20
	for i := 0; i < nMsgs; i++ {
		if err := pubBus.Publish("bench.data", int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	for si, s := range subs {
		for i := 0; i < nMsgs; i++ {
			ev := recvEvent(t, s, 10*time.Second)
			if ev.Value != int64(i) {
				t.Fatalf("subscriber %d message %d = %v (order broken)", si, i, ev.Value)
			}
		}
	}
}

func TestTDLTypeTravelsOnBus(t *testing.T) {
	// P3 end to end: a type defined at run time in TDL on one host is
	// instantiated, published, and reconstructed on another host.
	seg := fastSeg()
	defer seg.Close()
	pubHost := newHost(t, seg, "pub", HostConfig{})
	subHost := newHost(t, seg, "sub", HostConfig{})
	pubBus, _ := pubHost.NewBus("p")
	subBus, _ := subHost.NewBus("c")
	sub, _ := subBus.Subscribe("dyn.>")

	// Define the class dynamically on the publisher side only.
	alert := mop.MustNewClass("EquipAlert", nil, []mop.Attr{
		{Name: "station", Type: mop.String},
		{Name: "severity", Type: mop.Int},
	}, nil)
	if err := pubHost.Registry().Register(alert); err != nil {
		t.Fatal(err)
	}
	obj := mop.MustNew(alert).MustSet("station", "litho8").MustSet("severity", int64(3))
	if err := pubBus.Publish("dyn.alert", obj); err != nil {
		t.Fatal(err)
	}
	ev := recvEvent(t, sub, 5*time.Second)
	got := ev.Value.(*mop.Object)
	if got.Type().Name() != "EquipAlert" || got.MustGet("severity") != int64(3) {
		t.Fatalf("event = %s", mop.Sprint(got))
	}
}
