package core

import (
	"sync"
	"time"

	"infobus/internal/daemon"
	"infobus/internal/ledger"
	"infobus/internal/subject"
	"infobus/internal/telemetry"
	"infobus/internal/wire"
)

// guaranteeRetrier re-publishes ledger entries that no consumer has
// acknowledged yet — including entries recovered from the ledger after a
// crash ("regardless of failures", §3.1).
//
// Each pending entry carries its own next-retry deadline with exponential
// backoff: the first retransmission happens one RetryInterval after the
// entry is first seen (an age filter — the daemon already sent it once at
// publish time), and every further one doubles the wait up to the cap. A
// publication nobody subscribes to therefore settles at one transmission
// per cap period instead of re-occupying the medium on every tick, while
// the common case (ack arrives before the first deadline) costs nothing.
//
// The per-tick walk is allocation-free: the ledger's ForEachPending
// iterator reuses its snapshot buffer, the visit callback is prebound at
// construction, and per-entry retry state lives in a map owned by the
// retrier goroutine (no locking). State for acked entries is swept by
// generation stamping: every visit marks the entry with the current tick
// generation, and whatever the walk did not touch is deleted afterwards.
type guaranteeRetrier struct {
	d           *daemon.Daemon
	led         *ledger.Ledger
	interval    time.Duration
	cap         time.Duration
	retransmits *telemetry.Counter
	done        chan struct{}
	wg          sync.WaitGroup

	// Retrier-goroutine state; tick() is never called concurrently.
	state map[uint64]retryState
	gen   uint64
	now   time.Time
	visit func(e *ledger.Entry) bool // prebound: no per-tick closure
}

// retryState is one pending entry's schedule.
type retryState struct {
	due     time.Time     // next retransmission deadline
	backoff time.Duration // wait to apply after the next retransmission
	gen     uint64        // last tick generation that saw the entry pending
}

// DefaultRetryBackoffCap bounds the exponential backoff between
// retransmissions of one unacknowledged publication.
const DefaultRetryBackoffCap = 5 * time.Second

func newGuaranteeRetrier(d *daemon.Daemon, led *ledger.Ledger, interval, backoffCap time.Duration,
	retransmits *telemetry.Counter) *guaranteeRetrier {
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	if backoffCap < interval {
		backoffCap = DefaultRetryBackoffCap
		if backoffCap < interval {
			backoffCap = interval
		}
	}
	r := &guaranteeRetrier{
		d:           d,
		led:         led,
		interval:    interval,
		cap:         backoffCap,
		retransmits: retransmits,
		done:        make(chan struct{}),
		state:       make(map[uint64]retryState),
	}
	r.visit = r.visitPending
	d.OnGuaranteeAck(func(id uint64, _ string) { _ = led.Ack(id) })
	r.wg.Add(1)
	go r.loop()
	return r
}

func (r *guaranteeRetrier) stop() {
	close(r.done)
	r.wg.Wait()
}

func (r *guaranteeRetrier) loop() {
	defer r.wg.Done()
	ticker := time.NewTicker(r.interval)
	defer ticker.Stop()
	for {
		select {
		case <-r.done:
			return
		case now := <-ticker.C:
			r.tick(now)
		}
	}
}

// tick runs one scan: visit every pending entry (retransmitting the due
// ones), then sweep retry state whose entry is no longer pending. An idle
// tick — nothing pending, or nothing due — allocates nothing.
func (r *guaranteeRetrier) tick(now time.Time) {
	r.gen++
	r.now = now
	r.led.ForEachPending(r.visit)
	if len(r.state) > 0 {
		for id, st := range r.state {
			if st.gen != r.gen {
				delete(r.state, id)
			}
		}
	}
}

// visitPending handles one pending entry during a tick. Returning false
// aborts the walk (daemon closed or backpressured; the next tick retries).
func (r *guaranteeRetrier) visitPending(e *ledger.Entry) bool {
	st, ok := r.state[e.ID]
	if !ok {
		// First sight: schedule the first retransmission one interval out.
		// The publish path (or the post-restart recovery below) already put
		// the message on the wire... except after a crash, where recovered
		// entries were never re-sent. Treat recovery like a publish: the
		// entry is due after one interval either way, which keeps restart
		// traffic from bursting the medium all at once.
		r.state[e.ID] = retryState{due: r.now.Add(r.interval), backoff: r.interval, gen: r.gen}
		return true
	}
	if r.now.Before(st.due) {
		st.gen = r.gen
		r.state[e.ID] = st
		return true
	}
	subj, err := subject.Parse(e.Subject)
	if err != nil {
		// Unparseable subjects cannot come from PublishGuaranteed; skip but
		// keep the entry marked so its state is not resurrected every tick.
		st.gen = r.gen
		r.state[e.ID] = st
		return true
	}
	// The ledger stores payloads as encoded; a compact payload must go
	// back out under a compact envelope kind so receivers route it through
	// their fingerprint cache.
	if wire.IsCompact(e.Payload) {
		err = r.d.PublishGuaranteedCompact(subj, e.Payload, e.ID)
	} else {
		err = r.d.PublishGuaranteed(subj, e.Payload, e.ID)
	}
	if err != nil {
		return false
	}
	r.retransmits.Inc()
	st.backoff *= 2
	if st.backoff > r.cap {
		st.backoff = r.cap
	}
	st.due = r.now.Add(st.backoff)
	st.gen = r.gen
	r.state[e.ID] = st
	return true
}
