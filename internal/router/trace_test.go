package router

import (
	"strings"
	"testing"

	"infobus/internal/core"
)

// TestTracePropagationAcrossRouter publishes with sampling turned all the
// way up on one segment and consumes on another, then inspects the trace
// that rode along: publisher daemon → router egress → consumer daemon,
// with non-decreasing hop timestamps.
func TestTracePropagationAcrossRouter(t *testing.T) {
	segA, segB := fastSeg(), fastSeg()
	defer segA.Close()
	defer segB.Close()
	newRouter(t, Options{Name: "r1"},
		Attachment{Segment: segA, Name: "A"},
		Attachment{Segment: segB, Name: "B"},
	)
	pub := newBus(t, segA, "pubhost", core.HostConfig{
		Telemetry: core.TelemetryConfig{TraceSampling: 1},
	})
	con := newBus(t, segB, "conhost", core.HostConfig{})
	sub, err := con.Subscribe("fab5.>")
	if err != nil {
		t.Fatal(err)
	}

	ev := publishUntil(t, pub, "fab5.cc.thick", int64(7), sub)
	if ev.TraceID == 0 {
		t.Error("sampled event has zero trace id")
	}
	if len(ev.Trace) < 3 {
		t.Fatalf("trace = %v, want publisher + router + consumer hops", ev.Trace)
	}
	var sawRouter bool
	for i, hop := range ev.Trace {
		if hop.Node == "" {
			t.Errorf("hop %d has empty node", i)
		}
		if strings.HasPrefix(hop.Node, "router:r1:") {
			sawRouter = true
		}
		if i > 0 && hop.At < ev.Trace[i-1].At {
			t.Errorf("hop %d timestamp %d precedes hop %d timestamp %d",
				i, hop.At, i-1, ev.Trace[i-1].At)
		}
	}
	if !sawRouter {
		t.Errorf("no router hop in trace %v", ev.Trace)
	}
	first, last := ev.Trace[0].Node, ev.Trace[len(ev.Trace)-1].Node
	if first == last {
		t.Errorf("publisher and consumer daemon hops are both %q", first)
	}
}
