package router

import (
	"testing"
	"time"

	"infobus/internal/core"
	"infobus/internal/mop"
)

// TestCompactAcrossRouter drives the dictionary format over a segment
// boundary: the publisher's class definitions may never cross the router
// inline (the fallback period is pushed out of reach), so consumers on the
// far segment can only decode through the _sys.class.req NAK protocol.
// The router harvests every defs-carrying compact payload it forwards, so
// once the first reply has crossed, the router itself answers later NAKs
// from its own cache.
func TestCompactAcrossRouter(t *testing.T) {
	segA, segB := fastSeg(), fastSeg()
	defer segA.Close()
	defer segB.Close()
	r := newRouter(t, Options{Name: "r1"},
		Attachment{Segment: segA, Name: "A"},
		Attachment{Segment: segB, Name: "B"},
	)
	pub := newBus(t, segA, "pubhost", core.HostConfig{
		CompactTypes:       true,
		CompactResendEvery: 1 << 30, // decoding must go through the NAK path
		CompactNakInterval: 3 * time.Millisecond,
	})
	con := newBus(t, segB, "conhost", core.HostConfig{CompactNakInterval: 3 * time.Millisecond})
	sub, err := con.Subscribe("fab5.>")
	if err != nil {
		t.Fatal(err)
	}

	wt := mop.MustNewClass("WaferThickness", nil, []mop.Attr{
		{Name: "station", Type: mop.String},
		{Name: "microns", Type: mop.Float},
	}, nil)
	obj := mop.MustNew(wt).MustSet("station", "litho8").MustSet("microns", 12.5)
	ev := publishUntil(t, pub, "fab5.cc.litho8.thick", obj, sub)
	got, ok := ev.Value.(*mop.Object)
	if !ok || got.Type().Name() != "WaferThickness" || got.MustGet("microns") != 12.5 {
		t.Fatalf("event across router = %v", ev.Value)
	}
	conHost := con.Host()
	if n := conHost.Metrics().Counter("bus.class_defs_harvested").Load(); n == 0 {
		t.Error("consumer never harvested a _sys.class.def reply")
	}
	// The reply crossed the router as a defs-carrying compact payload, so
	// the router's own fingerprint cache is warm now.
	if n := r.Metrics().Counter("router.class_defs_harvested").Load(); n == 0 {
		t.Error("router never harvested the forwarded definitions")
	}

	// A second late consumer on segment B: its NAK is answered on the
	// arriving segment by the router (it holds the definitions), not only
	// by the origin across the boundary.
	con2 := newBus(t, segB, "conhost2", core.HostConfig{CompactNakInterval: 3 * time.Millisecond})
	sub2, err := con2.Subscribe("fab5.>")
	if err != nil {
		t.Fatal(err)
	}
	obj2 := mop.MustNew(wt).MustSet("station", "litho8").MustSet("microns", 13.5)
	ev2 := publishUntil(t, pub, "fab5.cc.litho8.thick", obj2, sub2)
	if got := ev2.Value.(*mop.Object).MustGet("microns"); got != 13.5 {
		t.Fatalf("late consumer decoded %v", ev2.Value)
	}
	if n := r.Metrics().Counter("router.class_naks_served").Load(); n == 0 {
		t.Error("router never served a _sys.class.req from its cache")
	}
}
