package router

import (
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"infobus/internal/core"
	"infobus/internal/netsim"
	"infobus/internal/reliable"
	"infobus/internal/subject"
	"infobus/internal/transport"
)

func fastReliable() reliable.Config {
	return reliable.Config{
		NakInterval:        2 * time.Millisecond,
		GapTimeout:         300 * time.Millisecond,
		RetransmitInterval: 3 * time.Millisecond,
		HeartbeatInterval:  5 * time.Millisecond,
	}
}

func fastSeg() *transport.SimSegment {
	cfg := netsim.DefaultConfig()
	cfg.Speedup = 5000
	return transport.NewSimSegment(cfg)
}

func newBus(t *testing.T, seg transport.Segment, host string, cfg core.HostConfig) *core.Bus {
	t.Helper()
	cfg.Reliable = fastReliable()
	h, err := core.NewHost(seg, host, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = h.Close() })
	b, err := h.NewBus("app")
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func newRouter(t *testing.T, opts Options, atts ...Attachment) *Router {
	t.Helper()
	opts.Reliable = fastReliable()
	if opts.InterestTTL == 0 {
		opts.InterestTTL = 2 * time.Second
	}
	r, err := New(opts, atts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = r.Close() })
	return r
}

func recvEvent(t *testing.T, sub *core.Subscription, within time.Duration) core.Event {
	t.Helper()
	select {
	case ev, ok := <-sub.C:
		if !ok {
			t.Fatal("subscription closed")
		}
		return ev
	case <-time.After(within):
		t.Fatal("timed out waiting for event")
		return core.Event{}
	}
}

// publishUntil keeps publishing a value until the subscription yields it or
// the deadline passes. Router interest tables converge asynchronously (the
// paper's routers likewise forward only after hearing a subscription), so
// the first publications may be suppressed.
func publishUntil(t *testing.T, bus *core.Bus, subj string, value any, sub *core.Subscription) core.Event {
	t.Helper()
	deadline := time.After(15 * time.Second)
	for {
		if err := bus.Publish(subj, value); err != nil {
			t.Fatal(err)
		}
		select {
		case ev, ok := <-sub.C:
			if !ok {
				t.Fatal("subscription closed")
			}
			return ev
		case <-deadline:
			t.Fatal("event never crossed the router")
		case <-time.After(20 * time.Millisecond):
		}
	}
}

func TestForwardAcrossSegments(t *testing.T) {
	segA, segB := fastSeg(), fastSeg()
	defer segA.Close()
	defer segB.Close()
	newRouter(t, Options{Name: "r1"},
		Attachment{Segment: segA, Name: "A"},
		Attachment{Segment: segB, Name: "B"},
	)
	pub := newBus(t, segA, "pubhost", core.HostConfig{})
	con := newBus(t, segB, "conhost", core.HostConfig{})
	sub, err := con.Subscribe("fab5.>")
	if err != nil {
		t.Fatal(err)
	}
	ev := publishUntil(t, pub, "fab5.cc.temp", int64(42), sub)
	if ev.Value != int64(42) || ev.Subject.String() != "fab5.cc.temp" {
		t.Fatalf("event = %+v", ev)
	}
}

func TestNoForwardWithoutRemoteInterest(t *testing.T) {
	segA, segB := fastSeg(), fastSeg()
	defer segA.Close()
	defer segB.Close()
	r := newRouter(t, Options{Name: "r1"},
		Attachment{Segment: segA, Name: "A"},
		Attachment{Segment: segB, Name: "B"},
	)
	pub := newBus(t, segA, "pubhost", core.HostConfig{})
	// Subscriber on B interested in a DIFFERENT subject.
	con := newBus(t, segB, "conhost", core.HostConfig{})
	if _, err := con.Subscribe("other.stuff"); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond) // let interest propagate
	before := segB.Network().Stats().Sent
	for i := 0; i < 10; i++ {
		if err := pub.Publish("fab5.cc.temp", int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(100 * time.Millisecond)
	st := r.Stats()
	if st.Forwarded != 0 {
		t.Errorf("router forwarded %d messages with no remote interest", st.Forwarded)
	}
	if st.Suppressed == 0 {
		t.Error("expected suppressed publications in stats")
	}
	// No data envelopes should have been re-published on B beyond
	// interest/heartbeat chatter; the strong check is Forwarded == 0 above.
	_ = before
}

func TestSubjectTransformation(t *testing.T) {
	segA, segB := fastSeg(), fastSeg()
	defer segA.Close()
	defer segB.Close()
	newRouter(t, Options{Name: "r1"},
		Attachment{Segment: segA, Name: "A"},
		Attachment{Segment: segB, Name: "B", Rules: []Rule{{
			Match:      subject.MustParsePattern("fab5.>"),
			FromPrefix: "fab5",
			ToPrefix:   "plants.east.fab5",
		}}},
	)
	pub := newBus(t, segA, "pubhost", core.HostConfig{})
	con := newBus(t, segB, "conhost", core.HostConfig{})
	sub, err := con.Subscribe("plants.east.fab5.>")
	if err != nil {
		t.Fatal(err)
	}
	ev := publishUntil(t, pub, "fab5.cc.temp", "hot", sub)
	if ev.Subject.String() != "plants.east.fab5.cc.temp" {
		t.Fatalf("transformed subject = %s", ev.Subject)
	}
}

func TestChainedRoutersTransitiveInterest(t *testing.T) {
	// A -- r1 -- B -- r2 -- C: interest on C must propagate to A.
	segA, segB, segC := fastSeg(), fastSeg(), fastSeg()
	defer segA.Close()
	defer segB.Close()
	defer segC.Close()
	newRouter(t, Options{Name: "r1"},
		Attachment{Segment: segA, Name: "A"},
		Attachment{Segment: segB, Name: "B"},
	)
	newRouter(t, Options{Name: "r2"},
		Attachment{Segment: segB, Name: "B"},
		Attachment{Segment: segC, Name: "C"},
	)
	pub := newBus(t, segA, "pubhost", core.HostConfig{})
	con := newBus(t, segC, "conhost", core.HostConfig{})
	sub, err := con.Subscribe("wan.news")
	if err != nil {
		t.Fatal(err)
	}
	ev := publishUntil(t, pub, "wan.news", "hello-across-two-hops", sub)
	if ev.Value != "hello-across-two-hops" {
		t.Fatalf("event = %+v", ev)
	}
}

func TestGuaranteedAcrossRouter(t *testing.T) {
	segA, segB := fastSeg(), fastSeg()
	defer segA.Close()
	defer segB.Close()
	r := newRouter(t, Options{Name: "r1"},
		Attachment{Segment: segA, Name: "A"},
		Attachment{Segment: segB, Name: "B"},
	)
	dir := t.TempDir()
	pubBus := newBus(t, segA, "pubhost", core.HostConfig{
		LedgerPath:    filepath.Join(dir, "pub.ledger"),
		RetryInterval: 20 * time.Millisecond,
	})
	con := newBus(t, segB, "conhost", core.HostConfig{})
	sub, err := con.Subscribe("g.wan")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pubBus.PublishGuaranteed("g.wan", "durable"); err != nil {
		t.Fatal(err)
	}
	// The retrier re-publishes until interest has propagated and the
	// consumer acks across the router.
	deadline := time.After(15 * time.Second)
	got := false
	for !got {
		select {
		case ev := <-sub.C:
			if ev.Value == "durable" && ev.Guaranteed {
				got = true
			}
		case <-deadline:
			t.Fatal("guaranteed message never crossed router")
		}
	}
	for len(pubBus.Host().PendingGuaranteed()) > 0 {
		select {
		case <-deadline:
			t.Fatalf("ledger never drained; router stats %+v", r.Stats())
		case <-time.After(10 * time.Millisecond):
		}
	}
	if r.Stats().AcksForwarded == 0 {
		t.Errorf("router stats = %+v, expected forwarded acks", r.Stats())
	}
}

func TestRouterLogging(t *testing.T) {
	segA, segB := fastSeg(), fastSeg()
	defer segA.Close()
	defer segB.Close()
	var mu sync.Mutex
	var sb strings.Builder
	syncW := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return sb.Write(p)
	})
	newRouter(t, Options{Name: "logr", Log: syncW},
		Attachment{Segment: segA, Name: "A"},
		Attachment{Segment: segB, Name: "B"},
	)
	pub := newBus(t, segA, "pubhost", core.HostConfig{})
	con := newBus(t, segB, "conhost", core.HostConfig{})
	sub, _ := con.Subscribe("logged.subject")
	publishUntil(t, pub, "logged.subject", int64(1), sub)
	mu.Lock()
	out := sb.String()
	mu.Unlock()
	if !strings.Contains(out, "logged.subject") || !strings.Contains(out, "A -> B") {
		t.Errorf("log = %q", out)
	}
}

func TestNewRouterValidation(t *testing.T) {
	seg := fastSeg()
	defer seg.Close()
	if _, err := New(Options{}, Attachment{Segment: seg, Name: "only"}); err != ErrFewSegments {
		t.Errorf("error = %v, want ErrFewSegments", err)
	}
}

type writerFunc func([]byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

func TestParallelRoutersBoundedByHopLimit(t *testing.T) {
	// Two routers bridging the same pair of segments form a forwarding
	// loop. The hop count must bound the ping-pong: the subscriber sees a
	// bounded number of copies and the routers report loop drops instead
	// of spinning forever.
	segA, segB := fastSeg(), fastSeg()
	defer segA.Close()
	defer segB.Close()
	r1 := newRouter(t, Options{Name: "r1"},
		Attachment{Segment: segA, Name: "A"},
		Attachment{Segment: segB, Name: "B"},
	)
	r2 := newRouter(t, Options{Name: "r2"},
		Attachment{Segment: segA, Name: "A"},
		Attachment{Segment: segB, Name: "B"},
	)
	pub := newBus(t, segA, "pubhost", core.HostConfig{})
	con := newBus(t, segB, "conhost", core.HostConfig{})
	sub, err := con.Subscribe("loop.test")
	if err != nil {
		t.Fatal(err)
	}
	// Interest on BOTH segments defeats the interest filter's natural
	// loop suppression, so only the hop count bounds the ping-pong.
	conA := newBus(t, segA, "conhostA", core.HostConfig{})
	if _, err := conA.Subscribe("loop.test"); err != nil {
		t.Fatal(err)
	}
	publishUntil(t, pub, "loop.test", int64(1), sub)
	copies := 1
	drainDeadline := time.After(500 * time.Millisecond)
drain:
	for {
		select {
		case <-sub.C:
			copies++
			if copies > 100 {
				t.Fatal("unbounded forwarding loop")
			}
		case <-drainDeadline:
			break drain
		}
	}
	st1, st2 := r1.Stats(), r2.Stats()
	if st1.LoopDropped+st2.LoopDropped == 0 {
		t.Errorf("no loop drops recorded: r1=%+v r2=%+v (copies=%d)", st1, st2, copies)
	}
	t.Logf("copies=%d r1=%+v r2=%+v", copies, st1, st2)
}

func TestWantsOnReportsInterest(t *testing.T) {
	segA, segB := fastSeg(), fastSeg()
	defer segA.Close()
	defer segB.Close()
	r := newRouter(t, Options{Name: "r"},
		Attachment{Segment: segA, Name: "A"},
		Attachment{Segment: segB, Name: "B"},
	)
	subj := subject.MustParse("w.x")
	if r.WantsOn("B", subj) {
		t.Error("interest reported before any subscription")
	}
	con := newBus(t, segB, "conhost", core.HostConfig{})
	if _, err := con.Subscribe("w.>"); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(5 * time.Second)
	for !r.WantsOn("B", subj) {
		select {
		case <-deadline:
			t.Fatal("interest never propagated to the router")
		case <-time.After(5 * time.Millisecond):
		}
	}
	if r.WantsOn("nonexistent", subj) {
		t.Error("unknown attachment reported interest")
	}
}
