package router

import (
	"strings"
	"testing"
	"time"

	"infobus/internal/core"
	"infobus/internal/mop"
	"infobus/internal/telemetry"
)

// TestTraceAssemblyAcrossRouter is the monitor-side acceptance path: feed
// the sampled hop traces a consumer sees into the assembler (exactly what
// ibmon -sys does) and reconstruct the publisher → router → consumer route
// with monotone, non-negative per-hop latencies.
func TestTraceAssemblyAcrossRouter(t *testing.T) {
	segA, segB := fastSeg(), fastSeg()
	defer segA.Close()
	defer segB.Close()
	newRouter(t, Options{Name: "r1"},
		Attachment{Segment: segA, Name: "A"},
		Attachment{Segment: segB, Name: "B"},
	)
	pub := newBus(t, segA, "pubhost", core.HostConfig{
		Telemetry: core.TelemetryConfig{TraceSampling: 1},
	})
	con := newBus(t, segB, "conhost", core.HostConfig{})
	sub, err := con.Subscribe("fab5.>")
	if err != nil {
		t.Fatal(err)
	}

	asm := telemetry.NewTraceAssembler()
	ev := publishUntil(t, pub, "fab5.cc.thick", int64(7), sub)
	asm.Add(ev.Trace)
	// A few more samples so the histograms have a distribution.
	for i := 0; i < 5; i++ {
		ev := publishUntil(t, pub, "fab5.cc.thick", int64(i), sub)
		asm.Add(ev.Trace)
	}

	routes := asm.Routes()
	if len(routes) != 1 {
		t.Fatalf("routes = %d, want 1 (%+v)", len(routes), routes)
	}
	r := routes[0]
	if r.Count < 6 {
		t.Fatalf("route count = %d, want >= 6", r.Count)
	}
	if len(r.Path) < 3 {
		t.Fatalf("path = %v, want publisher + router + consumer", r.Path)
	}
	// The route ends at the consumer daemon's delivery-lane stage hops.
	if r.Path[0] != "pubhost" || r.Path[len(r.Path)-1] != "conhost/lane-pop" {
		t.Fatalf("path endpoints = %v", r.Path)
	}
	sawRouter := false
	for _, node := range r.Path {
		if strings.HasPrefix(node, "router:r1:") {
			sawRouter = true
		}
	}
	if !sawRouter {
		t.Fatalf("no router hop in path %v", r.Path)
	}
	// Per-hop latencies are non-negative and sum consistently: each hop's
	// mean is bounded by the end-to-end mean (monotone decomposition).
	var hopSum float64
	for i, h := range r.Hops {
		if h.MeanNs < 0 {
			t.Errorf("hop %d mean = %v", i, h.MeanNs)
		}
		if h.MeanNs > r.E2E.MeanNs {
			t.Errorf("hop %d mean %.0fns exceeds end-to-end %.0fns", i, h.MeanNs, r.E2E.MeanNs)
		}
		hopSum += h.MeanNs
	}
	if r.E2E.MeanNs <= 0 {
		t.Fatalf("end-to-end mean = %v", r.E2E.MeanNs)
	}
	// The hop means decompose the route: their sum equals the e2e mean up
	// to float rounding (same samples, telescoping deltas).
	if diff := hopSum - r.E2E.MeanNs; diff > 1 || diff < -1 {
		t.Errorf("hop means sum %.0fns != e2e mean %.0fns", hopSum, r.E2E.MeanNs)
	}
	render := asm.Render()
	if !strings.Contains(render, "pubhost") || !strings.Contains(render, "end-to-end") {
		t.Fatalf("render = %q", render)
	}
}

// TestRouterAnswersDumpProbe: a "_sys.dump" probe published by any
// application reaches the router, which answers with its own SysDump on
// "_sys.dumped.router-<name>" on every attached segment — and still
// forwards the probe.
func TestRouterAnswersDumpProbe(t *testing.T) {
	segA, segB := fastSeg(), fastSeg()
	defer segA.Close()
	defer segB.Close()
	newRouter(t, Options{Name: "r1", Health: telemetry.HealthConfig{Interval: 5 * time.Millisecond}},
		Attachment{Segment: segA, Name: "A"},
		Attachment{Segment: segB, Name: "B"},
	)
	prober := newBus(t, segA, "prober", core.HostConfig{})
	sub, err := prober.Subscribe("_sys.dumped.>")
	if err != nil {
		t.Fatal(err)
	}

	deadline := time.After(10 * time.Second)
	for {
		if err := prober.Publish(telemetry.DumpSubject, int64(1)); err != nil {
			t.Fatal(err)
		}
		_ = prober.Flush()
		select {
		case ev := <-sub.C:
			if got := ev.Subject.String(); got != "_sys.dumped.router-r1" {
				t.Fatalf("dump subject = %q", got)
			}
			obj, ok := ev.Value.(*mop.Object)
			if !ok || obj.Type().Name() != "SysDump" {
				t.Fatalf("dump value = %v", ev.Value)
			}
			text, _ := obj.MustGet("text").(string)
			if !strings.Contains(text, "flight recorder:") {
				t.Fatalf("dump text = %q", text)
			}
			return
		case <-deadline:
			t.Fatal("router never answered the dump probe")
		case <-time.After(20 * time.Millisecond):
		}
	}
}

// TestRouterHealthDisabled pins that a router without Options.Health runs
// no engine and never publishes on "_sys.alarm.>" or "_sys.dumped.>".
func TestRouterHealthDisabled(t *testing.T) {
	segA, segB := fastSeg(), fastSeg()
	defer segA.Close()
	defer segB.Close()
	r := newRouter(t, Options{Name: "r0"},
		Attachment{Segment: segA, Name: "A"},
		Attachment{Segment: segB, Name: "B"},
	)
	if r.engine != nil || r.rec != nil {
		t.Fatal("health tier allocated without Options.Health")
	}
}
