package router

import (
	"sync"
	"testing"
	"time"

	"infobus/internal/busproto"
	"infobus/internal/reliable"
	"infobus/internal/subject"
	"infobus/internal/transport"
)

// nullSegment is a transport.Segment whose endpoints swallow every
// datagram: the alloc budget and throughput benchmarks below measure the
// router's forwarding engine itself, not a network model's bookkeeping.
type nullSegment struct {
	mu  sync.Mutex
	eps []*nullEndpoint
}

type nullEndpoint struct {
	addr string
	recv chan transport.Datagram
	once sync.Once
}

func (s *nullSegment) NewEndpoint(name string) (transport.Endpoint, error) {
	ep := &nullEndpoint{addr: name, recv: make(chan transport.Datagram)}
	s.mu.Lock()
	s.eps = append(s.eps, ep)
	s.mu.Unlock()
	return ep, nil
}

func (s *nullSegment) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, ep := range s.eps {
		_ = ep.Close()
	}
	return nil
}

func (e *nullEndpoint) Addr() string                    { return e.addr }
func (e *nullEndpoint) Send(string, []byte) error       { return nil }
func (e *nullEndpoint) Broadcast([]byte) error          { return nil }
func (e *nullEndpoint) Recv() <-chan transport.Datagram { return e.recv }
func (e *nullEndpoint) Close() error                    { e.once.Do(func() { close(e.recv) }); return nil }

// quietReliable keeps every protocol timer out of the measured window.
func quietReliable() reliable.Config {
	return reliable.Config{
		NakInterval:        time.Hour,
		GapTimeout:         time.Hour,
		RetransmitInterval: time.Hour,
		HeartbeatInterval:  time.Hour,
		JoinGrace:          time.Millisecond,
	}
}

// newFastpathRouter builds a 4-attachment router over null segments with
// interest in "bench.>" seeded on every attachment but the ingress, so a
// forwarded publication fans out to three egresses.
func newFastpathRouter(t testing.TB, opts Options) *Router {
	t.Helper()
	opts.Reliable = quietReliable()
	opts.InterestTTL = time.Hour
	opts.RelayInterval = time.Hour
	atts := make([]Attachment, 4)
	for i, name := range []string{"ingress", "a", "b", "c"} {
		atts[i] = Attachment{Segment: &nullSegment{}, Name: name}
	}
	r, err := New(opts, atts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = r.Close() })
	expiry := time.Now().Add(time.Hour)
	for _, att := range r.atts[1:] {
		att.recordInterest([]string{"bench.>"}, expiry)
	}
	return r
}

// TestRouterForwardAllocBudget pins the fast path at ZERO allocations per
// forwarded publication in steady state: peek, interner hit, wants-memo
// hit, one pooled frame copy, three egress publishes into pooled
// retransmit windows. scripts/check.sh runs this as a gate; if it fails,
// the zero-copy data plane gained per-message garbage.
func TestRouterForwardAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; the budget is pinned by the non-race run in scripts/check.sh")
	}
	r := newFastpathRouter(t, Options{Name: "alloc"})
	frame := busproto.Encode(busproto.Envelope{
		Kind: busproto.KindPublish, Subject: "bench.alloc.data", Payload: make([]byte, 256),
	})
	forward := func() {
		r.handle(r.atts[0], reliable.Message{From: "pub", Payload: frame})
	}
	// Warm lazily-allocated state (interner entry, wants memo, pooled
	// buffers, retransmit-window maps) before measuring.
	for i := 0; i < 1000; i++ {
		forward()
	}
	if got := r.Stats(); got.FastForwarded == 0 || got.FastForwarded != got.Forwarded {
		t.Fatalf("fast path not engaged: %+v", got)
	}
	// Minimum over attempts: contention (go test ./...) only ever adds
	// allocations, so the minimum is the true per-op cost.
	best := testing.AllocsPerRun(100000, forward)
	for attempt := 0; attempt < 4 && best > 0.05; attempt++ {
		if a := testing.AllocsPerRun(100000, forward); a < best {
			best = a
		}
	}
	if best > 0.05 {
		t.Fatalf("fast-path forward = %.3f allocs/op, budget 0", best)
	}
	// The guaranteed variant shares the path (plus the guar-path read
	// probe) and must stay at zero too.
	gframe := busproto.Encode(busproto.Envelope{
		Kind: busproto.KindGuaranteed, ID: 7, Origin: "sim:0#orig",
		Subject: "bench.alloc.guar", Payload: make([]byte, 256),
	})
	gforward := func() {
		r.handle(r.atts[0], reliable.Message{From: "pub", Payload: gframe})
	}
	for i := 0; i < 1000; i++ {
		gforward()
	}
	best = testing.AllocsPerRun(100000, gforward)
	for attempt := 0; attempt < 4 && best > 0.05; attempt++ {
		if a := testing.AllocsPerRun(100000, gforward); a < best {
			best = a
		}
	}
	if best > 0.05 {
		t.Fatalf("guaranteed fast-path forward = %.3f allocs/op, budget 0", best)
	}
}

// TestRouterForwardFastSlowCounters checks the dispatch decision: plain
// traffic takes the fast path, traced traffic and DisableFastPath fall
// back to the slow path, and both report through the same Forwarded total.
func TestRouterForwardFastSlowCounters(t *testing.T) {
	r := newFastpathRouter(t, Options{Name: "dispatch"})
	plain := busproto.Encode(busproto.Envelope{
		Kind: busproto.KindPublish, Subject: "bench.dispatch", Payload: []byte("x"),
	})
	traced := busproto.Encode(busproto.Envelope{
		Kind: busproto.KindPublishTraced, Subject: "bench.dispatch", TraceID: 3,
		Trace: []busproto.TraceHop{{Node: "pub", At: 1}}, Payload: []byte("x"),
	})
	r.handle(r.atts[0], reliable.Message{From: "pub", Payload: plain})
	r.handle(r.atts[0], reliable.Message{From: "pub", Payload: traced})
	got := r.Stats()
	if got.Forwarded != 6 || got.FastForwarded != 3 {
		t.Fatalf("want 6 forwarded / 3 fast, got %+v", got)
	}

	slow := newFastpathRouter(t, Options{Name: "noslow", DisableFastPath: true})
	slow.handle(slow.atts[0], reliable.Message{From: "pub", Payload: plain})
	if got := slow.Stats(); got.Forwarded != 3 || got.FastForwarded != 0 {
		t.Fatalf("DisableFastPath: want 3 forwarded / 0 fast, got %+v", got)
	}
}

// TestRouterFastSlowBytesIdentical is the router-level byte-golden check:
// the frame a subscriber receives across the bridge must be identical
// whether the router took the zero-copy path or the decode/re-encode path.
func TestRouterFastSlowBytesIdentical(t *testing.T) {
	envs := []busproto.Envelope{
		{Kind: busproto.KindPublish, Subject: "golden.plain", Payload: []byte("payload-bytes")},
		{Kind: busproto.KindPublishCompact, Subject: "golden.compact", Payload: []byte{'I', 'B', 2, 1, 1}},
		{Kind: busproto.KindGuaranteed, ID: 41, Origin: "sim:0#tok", Subject: "golden.guar", Payload: []byte("g")},
		{Kind: busproto.KindGuaranteedCompact, ID: 42, Origin: "sim:0#tok", Subject: "golden.gc", Payload: []byte{9}},
	}
	run := func(disable bool) [][]byte {
		seg := &captureSegment{}
		opts := Options{Name: "golden", DisableFastPath: disable,
			Reliable: quietReliable(), InterestTTL: time.Hour, RelayInterval: time.Hour}
		r, err := New(opts,
			Attachment{Segment: &nullSegment{}, Name: "in"},
			Attachment{Segment: seg, Name: "out"})
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		r.atts[1].recordInterest([]string{"golden.>"}, time.Now().Add(time.Hour))
		for _, e := range envs {
			r.handle(r.atts[0], reliable.Message{From: "pub", Payload: busproto.Encode(e)})
		}
		return seg.payloads()
	}
	fast, slow := run(false), run(true)
	if len(fast) != len(envs) || len(slow) != len(envs) {
		t.Fatalf("captured %d fast / %d slow frames, want %d", len(fast), len(slow), len(envs))
	}
	for i := range fast {
		if string(fast[i]) != string(slow[i]) {
			t.Errorf("envelope %d: fast egress % x != slow egress % x", i, fast[i], slow[i])
		}
		// And both must equal the ingress frame with hops bumped.
		want := busproto.Encode(envs[i])
		busproto.SetHops(want, envs[i].Hops+1)
		if string(fast[i]) != string(want) {
			t.Errorf("envelope %d: egress % x != ingress-with-hops-bump % x", i, fast[i], want)
		}
	}
}

// captureSegment records the reliable-stream payloads published out of an
// attachment by decoding the broadcast data frames it would put on the wire.
type captureSegment struct {
	nullSegment
	mu     sync.Mutex
	frames [][]byte
}

func (s *captureSegment) NewEndpoint(name string) (transport.Endpoint, error) {
	ep, err := s.nullSegment.NewEndpoint(name)
	if err != nil {
		return nil, err
	}
	return &captureEndpoint{nullEndpoint: ep.(*nullEndpoint), seg: s}, nil
}

type captureEndpoint struct {
	*nullEndpoint
	seg *captureSegment
}

func (e *captureEndpoint) Broadcast(p []byte) error {
	e.seg.mu.Lock()
	e.seg.frames = append(e.seg.frames, append([]byte(nil), p...))
	e.seg.mu.Unlock()
	return nil
}

// payloads extracts the published envelope bytes from the captured
// reliable-protocol data frames, in order.
func (s *captureSegment) payloads() [][]byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out [][]byte
	for _, f := range s.frames {
		for _, p := range reliable.DecodeDataPayloads(f) {
			out = append(out, p)
		}
	}
	return out
}

// BenchmarkRouterForward measures the forwarding engine CPU-side: one
// ingress publication fanning out to three interested egresses, fast path
// vs the decode/re-encode slow path. scripts/check.sh runs a short smoke
// of this benchmark.
func BenchmarkRouterForward(b *testing.B) {
	for _, bc := range []struct {
		name    string
		disable bool
	}{{"fast", false}, {"slow", true}} {
		b.Run(bc.name, func(b *testing.B) {
			r := newFastpathRouter(b, Options{Name: "bench", DisableFastPath: bc.disable})
			frame := busproto.Encode(busproto.Envelope{
				Kind: busproto.KindPublish, Subject: "bench.fanout.data", Payload: make([]byte, 512),
			})
			m := reliable.Message{From: "pub", Payload: frame}
			for i := 0; i < 100; i++ {
				r.handle(r.atts[0], m)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r.handle(r.atts[0], m)
			}
		})
	}
}

// TestWantsOnStillHonoursTransforms guards the fastOK gate: a router with
// rewrite rules must never take the fast path (the egress subject differs
// from the ingress bytes).
func TestFastPathDisabledByRules(t *testing.T) {
	opts := Options{Name: "ruled", Reliable: quietReliable(),
		InterestTTL: time.Hour, RelayInterval: time.Hour}
	r, err := New(opts,
		Attachment{Segment: &nullSegment{}, Name: "in"},
		Attachment{Segment: &nullSegment{}, Name: "out", Rules: []Rule{{
			Match:      subject.MustParsePattern("bench.>"),
			FromPrefix: "bench", ToPrefix: "west.bench",
		}}})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	r.atts[1].recordInterest([]string{"west.bench.>"}, time.Now().Add(time.Hour))
	frame := busproto.Encode(busproto.Envelope{
		Kind: busproto.KindPublish, Subject: "bench.x", Payload: []byte("x"),
	})
	r.handle(r.atts[0], reliable.Message{From: "pub", Payload: frame})
	got := r.Stats()
	if got.Forwarded != 1 || got.FastForwarded != 0 || got.Transformed != 1 {
		t.Fatalf("rules must force the slow path: %+v", got)
	}
}
