//go:build race

package router

const raceEnabled = true
