package router

import (
	"strings"
	"sync"
	"time"

	"infobus/internal/bufpool"
	"infobus/internal/busproto"
	"infobus/internal/discovery"
	"infobus/internal/mesh"
	"infobus/internal/mop"
	"infobus/internal/telemetry"
	"infobus/internal/wire"
)

// This file is the router's half of the self-organizing mesh
// (internal/mesh): it puts the mesh advertisements on the wire, feeds
// received ones into the state machine, bootstraps neighbor discovery over
// "_sys.mesh.>" with internal/discovery, and exports the mesh-flap health
// watch plus a flight-data history ring for the churn series.

// meshAgent drives one Router's mesh.Mesh.
type meshAgent struct {
	r     *Router
	m     *mesh.Mesh
	types mesh.Types
	node  string // sanitised node name for status subjects

	// Telemetry mirrors of the mesh's internal counters (monotone; the
	// loop adds deltas each tick so WatchRate and the history ring see
	// ordinary counters).
	readverts   *telemetry.Counter
	topoChanges *telemetry.Counter
	helloSent   *telemetry.Counter
	adsDropped  *telemetry.Counter
	lastReadv   uint64
	lastTopo    uint64

	// Link-local pub/sub dispatch for the discovery bootstrap
	// ("_sys.mesh.q.link" / "_sys.mesh.r.link" on one attachment).
	mu   sync.Mutex
	subs map[*attachment][]*meshSub

	announcers []*discovery.Announcer
}

type meshSub struct {
	prefix string // exact subject the subscriber asked for
	ch     chan discovery.Event
}

// meshLinkLocal reports whether a subject is part of the link-local mesh
// conversation: hellos, interest ads, and the discovery bootstrap define
// ADJACENCY, so forwarding them across segments would wreck the election.
// Status snapshots ("_sys.mesh.status.<node>") are ordinary publications
// and cross routers like anything else a monitor subscribes to.
func meshLinkLocal(subj string) bool {
	if subj == mesh.HelloSubject || subj == mesh.InterestSubject {
		return true
	}
	return strings.HasPrefix(subj, mesh.SubjectPrefix+".q.") ||
		strings.HasPrefix(subj, mesh.SubjectPrefix+".r.")
}

func newMeshAgent(r *Router, cfg mesh.Config) *meshAgent {
	names := make([]string, len(r.atts))
	for i, att := range r.atts {
		names[i] = att.name
	}
	a := &meshAgent{
		r:           r,
		m:           mesh.New(r.opts.Name, names, cfg),
		types:       mesh.MustTypes(),
		node:        telemetry.SanitizeNode("router-" + r.opts.Name),
		readverts:   r.metrics.Counter("mesh.readvertisements"),
		topoChanges: r.metrics.Counter("mesh.topology_changes"),
		helloSent:   r.metrics.Counter("mesh.hellos_sent"),
		adsDropped:  r.metrics.Counter("mesh.ads_dropped"),
		subs:        make(map[*attachment][]*meshSub),
	}
	return a
}

// start launches the protocol loop and the discovery bootstrap.
func (a *meshAgent) start() {
	r := a.r
	for _, att := range r.atts {
		ps := &attPubSub{agent: a, att: att}
		ann, err := discovery.AnnounceOn(ps, mesh.SubjectPrefix, mesh.DiscService, func() mop.Value {
			ad := a.m.Hello()
			obj := mop.MustNew(a.types.Hello).
				MustSet("router", ad.Router).
				MustSet("root", ad.Root).
				MustSet("cost", ad.Cost).
				MustSet("parent", ad.Parent).
				MustSet("seq", ad.Seq).
				MustSet("links", mop.List{})
			return obj
		})
		if err == nil {
			a.announcers = append(a.announcers, ann)
		}
	}
	r.wg.Add(1)
	go a.loop()
	// One discovery round per attachment seeds the hello tables in a
	// round trip, so a joining router does not wait out a hello interval
	// before electing. Best-effort: the periodic hellos converge anyway.
	for _, att := range r.atts {
		r.wg.Add(1)
		go func(att *attachment) {
			defer r.wg.Done()
			ps := &attPubSub{agent: a, att: att}
			found, err := discovery.DiscoverOn(ps, mesh.DiscService, discovery.Options{
				Prefix: mesh.SubjectPrefix,
				Window: a.m.TickInterval() * 4,
			})
			if err != nil {
				return
			}
			now := time.Now()
			for _, f := range found {
				if o, ok := f.Info.(*mop.Object); ok {
					if ad, ok := mesh.ParseHelloObject(o); ok {
						a.m.HandleHello(att.index, ad, now)
					}
				}
			}
		}(att)
	}
}

func (a *meshAgent) stop() {
	for _, ann := range a.announcers {
		ann.Close()
	}
}

// loop is the protocol clock: it gathers host interest, advances the state
// machine, and broadcasts whatever came due.
func (a *meshAgent) loop() {
	r := a.r
	defer r.wg.Done()
	ticker := time.NewTicker(a.m.TickInterval())
	defer ticker.Stop()
	hostPatterns := make([][]string, len(r.atts))
	for {
		select {
		case <-r.done:
			return
		case now := <-ticker.C:
			// Host interest snapshot BEFORE entering the mesh lock: the
			// mesh never takes attachment locks, attachments never hold
			// theirs while asking the mesh, so the order cannot deadlock.
			for i, att := range r.atts {
				hostPatterns[i] = att.patterns()
			}
			acts := a.m.Actions(now, hostPatterns)
			for _, h := range acts.Hellos {
				if payload, err := mesh.MarshalHello(a.types, h.Ad); err == nil {
					a.broadcast(h.Link, mesh.HelloSubject, payload)
					a.helloSent.Inc()
				}
			}
			for _, i := range acts.Interests {
				if payload, err := mesh.MarshalInterest(a.types, i.Ad); err == nil {
					a.broadcast(i.Link, mesh.InterestSubject, payload)
				}
			}
			if acts.Status != nil {
				st := *acts.Status
				st.Node = a.node
				if payload, err := mesh.MarshalStatus(a.types, st); err == nil {
					for li := range r.atts {
						a.broadcast(li, mesh.StatusSubject(a.node), payload)
					}
				}
			}
			// Mirror the mesh's counters into the telemetry registry for
			// the mesh-flap watch and the history ring.
			if v := a.m.Readverts(); v > a.lastReadv {
				a.readverts.Add(v - a.lastReadv)
				a.lastReadv = v
			}
			if v := a.m.TopoChanges(); v > a.lastTopo {
				a.topoChanges.Add(v - a.lastTopo)
				a.lastTopo = v
				if r.rec != nil {
					r.rec.Record(telemetry.EventMesh, "mesh-topology", int64(v), 0)
				}
			}
		}
	}
}

func (a *meshAgent) broadcast(li int, subj string, payload []byte) {
	att := a.r.atts[li]
	buf := bufpool.Get(len(subj) + len(payload) + 48)
	*buf = busproto.AppendEncode((*buf)[:0], busproto.Envelope{
		Kind: busproto.KindPublish, Subject: subj, Payload: payload,
	})
	err := att.conn.Publish(*buf)
	bufpool.Put(buf)
	if err != nil {
		a.adsDropped.Inc()
		return
	}
	_ = att.conn.Flush()
}

// handle consumes one link-local mesh publication received on an
// attachment, off the peeked subject and payload views (the caller never
// fully decodes these). Returns without forwarding side effects: the
// caller already knows these subjects never cross segments.
func (a *meshAgent) handle(att *attachment, from string, subj string, payload []byte) {
	switch subj {
	case mesh.HelloSubject:
		if v, err := mesh.ParseAd(payload); err == nil {
			if ad, ok := v.(mesh.HelloAd); ok {
				a.m.HandleHello(att.index, ad, time.Now())
			}
		}
	case mesh.InterestSubject:
		if v, err := mesh.ParseAd(payload); err == nil {
			if ad, ok := v.(mesh.InterestAd); ok {
				a.m.HandleInterest(att.index, ad, time.Now())
			}
		}
	default:
		// Discovery bootstrap traffic: deliver to the attachment's
		// link-local subscribers (drop on a full channel — discovery
		// re-asks, and the periodic hellos make the round redundant).
		a.mu.Lock()
		subs := a.subs[att]
		var targets []*meshSub
		for _, s := range subs {
			if s.prefix == subj {
				targets = append(targets, s)
			}
		}
		a.mu.Unlock()
		if len(targets) == 0 {
			return
		}
		v, err := wire.Unmarshal(payload, mop.NewRegistry())
		if err != nil {
			return
		}
		for _, s := range targets {
			select {
			case s.ch <- discovery.Event{Value: v, From: from}:
			default:
			}
		}
	}
}

// attPubSub adapts one router attachment to discovery.PubSub: raw
// envelopes on the segment, no daemon, no bus.
type attPubSub struct {
	agent *meshAgent
	att   *attachment
}

func (p *attPubSub) Identity() string {
	return "router:" + p.agent.r.opts.Name + ":" + p.att.name
}

func (p *attPubSub) Publish(subj string, v mop.Value) error {
	payload, err := wire.Marshal(v)
	if err != nil {
		return err
	}
	return p.att.conn.Publish(busproto.Encode(busproto.Envelope{
		Kind: busproto.KindPublish, Subject: subj, Payload: payload,
	}))
}

func (p *attPubSub) Flush() error { return p.att.conn.Flush() }

func (p *attPubSub) Subscribe(pattern string) (<-chan discovery.Event, func(), error) {
	a := p.agent
	s := &meshSub{prefix: pattern, ch: make(chan discovery.Event, 64)}
	a.mu.Lock()
	a.subs[p.att] = append(a.subs[p.att], s)
	a.mu.Unlock()
	var once sync.Once
	cancel := func() {
		once.Do(func() {
			a.mu.Lock()
			list := a.subs[p.att]
			for i, have := range list {
				if have == s {
					a.subs[p.att] = append(list[:i:i], list[i+1:]...)
					break
				}
			}
			a.mu.Unlock()
			// The channel is left open (collected with the subscription):
			// a dispatch that snapshotted it concurrently may still be
			// sending, and the discovery loops exit on their own deadline
			// or done channel rather than on close.
		})
	}
	return s.ch, cancel, nil
}
