// Package router implements information routers (§3.1): "application-level
// 'information routers' ... To the Information Bus, these routers look
// like ordinary applications, but they actually integrate multiple
// instances of the bus. Messages are received by one router using a
// subscription, transmitted to another router, and then re-published on
// another bus. The router is intelligent about which messages are sent to
// which routers: messages are only re-published on buses for which there
// exists a subscription on that subject; the router can also perform
// other functions, such as transforming subjects or logging messages to
// non-volatile storage. Thus, the overall effect is to create the
// illusion of a single, large bus."
//
// A Router attaches to two or more network segments. On each attachment
// it listens to everything, builds an interest table from the daemons'
// subscription advertisements, and forwards a publication to another
// segment only when that segment (or a segment behind it) holds a
// matching subscription. Hop counts in the envelope prevent forwarding
// loops; the router re-advertises remote interest on each segment so that
// chains of routers compose. Guaranteed publications are forwarded with
// their origin token, and their acknowledgements retrace the path back.
package router

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"infobus/internal/bufpool"
	"infobus/internal/busproto"
	"infobus/internal/mesh"
	"infobus/internal/mop"
	"infobus/internal/reliable"
	"infobus/internal/subject"
	"infobus/internal/telemetry"
	"infobus/internal/transport"
	"infobus/internal/wire"
)

// Options tune a router.
type Options struct {
	// Name labels the router in logs.
	Name string
	// Reliable tunes each attachment's reliable connection.
	Reliable reliable.Config
	// InterestTTL is how long a heard interest advertisement stays valid
	// without refresh. Default 4x daemon.InterestInterval (1s).
	InterestTTL time.Duration
	// RelayInterval is the period of the pairwise interest reflection
	// (the union re-advertisement that propagates interest transitively
	// through router chains when no mesh is active) and of expired-entry
	// pruning. Default 200ms. It paces how fast interest spreads, not
	// which segments end up carrying traffic.
	RelayInterval time.Duration
	// Log, if non-nil, receives a line per forwarded message.
	Log io.Writer
	// Metrics is the telemetry registry the router's counters live in
	// (each attachment's reliable-protocol counters are folded in under
	// "reliable.<attachment>."). Nil creates a private registry.
	Metrics *telemetry.Registry
	// StatsInterval enables self-hosted export: the router periodically
	// publishes its metrics snapshot as a self-describing SysStats object
	// on "_sys.stats.router-<name>", on every attached segment. 0 disables.
	StatsInterval time.Duration
	// Health enables the router's alarm engine and flight recorder:
	// per-attachment retransmit-storm alarms are published on
	// "_sys.alarm.router-<name>.<kind>" on every attached segment, and
	// "_sys.dump" probes are answered with the recorder's text dump. Zero
	// disables the tier.
	Health telemetry.HealthConfig
	// DisableFastPath forces every forwarded publication through the full
	// decode/re-encode slow path. Diagnostic and benchmarking escape
	// hatch only (the A15 baseline measures against it); the fast path is
	// byte-for-byte equivalent on the traffic it accepts, so production
	// routers never need this.
	DisableFastPath bool
	// Mesh, when non-nil, makes the router self-organizing: it discovers
	// peer routers over "_sys.mesh.>", elects into a loop-free spanning
	// tree (redundant links block instead of duplicating traffic), and
	// propagates aggregated interest hop by hop so publications traverse
	// only subscriber-bearing segments plus the connecting tree path.
	// Options.Name doubles as the mesh router id and MUST be unique
	// across the mesh (lowest name becomes the tree root). The zero
	// mesh.Config takes protocol defaults. When enabled, the legacy
	// pairwise interest reflection (interestRelayLoop) is off and the
	// envelope hop budget is Mesh.MaxHops instead of busproto.MaxHops.
	Mesh *mesh.Config
}

// Rule rewrites subjects crossing from one segment to another ("the router
// can also perform other functions, such as transforming subjects").
type Rule struct {
	// Match selects the subjects the rule applies to.
	Match subject.Pattern
	// RewritePrefix: the matched subject's first len(From) elements are
	// replaced with To. Empty strings leave the subject unchanged.
	FromPrefix, ToPrefix string
}

// Router errors.
var (
	ErrFewSegments = errors.New("router: need at least two attachments")
)

// Attachment names one segment the router bridges, with optional subject
// transformation rules applied to traffic forwarded OUT onto it.
type Attachment struct {
	Segment transport.Segment
	Name    string
	Rules   []Rule
}

type attachment struct {
	name  string
	index int // position in Router.atts == mesh link index
	conn  *reliable.Conn
	rules []Rule

	// fwdBuf is the fast path's egress frame scratch, owned by this
	// attachment's single receive goroutine (attachmentLoop): the frame is
	// built here, handed to each egress Publish (which copies before
	// returning), and reused for the next message — no pool round trip.
	fwdBuf []byte

	mu       sync.Mutex
	interest map[string]interestEntry // pattern -> entry
	// wantsCache memoizes wants() by subject: the linear scan over the
	// interest table runs per forwarded message, but interest changes only
	// on advertisement arrival or expiry. Cleared whenever the interest SET
	// changes (a refresh of an existing pattern does not). With the mesh
	// active the memo covers the combined host+mesh answer, and meshGen
	// pins the mesh generation it was computed against: any topology or
	// remote-interest change bumps the generation and invalidates the memo
	// wholesale — a stale entry would otherwise keep forwarding into a
	// dead subtree (or keep suppressing toward a new one).
	wantsCache map[string]bool
	meshGen    uint64
}

// maxWantsCache bounds each attachment's wants memo; when full, further
// subjects just re-scan the interest table (same skip-on-full policy as
// the subject trie's match cache).
const maxWantsCache = 4096

type interestEntry struct {
	pat     subject.Pattern
	expires time.Time
}

// Router bridges segments.
type Router struct {
	opts Options

	metrics *telemetry.Registry
	ctr     counters
	// interner caches subject parses on the forwarding path (subjects
	// repeat far more often than they vary).
	interner *subject.Interner

	// fastOK gates the zero-copy forwarding fast path at router level:
	// computed once in New, true when no attachment carries rewrite rules
	// and per-message logging is off (both would make egress frames differ
	// from the ingress bytes, or need decoded fields per message). The
	// remaining per-message conditions — untraced, non-_sys — are checked
	// in forward off the peeked header.
	fastOK bool

	// typeCache holds class definitions harvested from def-carrying
	// compact publications crossing the router, keyed by fingerprint.
	// Definitions resolve structurally (no registry): the router never
	// decodes application values, it only answers "_sys.class.req" NAKs
	// on behalf of publishers on other segments — a late subscriber's
	// request is served at its own segment boundary instead of waiting a
	// round trip to the origin.
	typeCache *wire.TypeCache

	// mu guards guar and closed. Readers dominate: every guaranteed
	// publication checks its origin's path and every ack looks one up, but
	// the path only changes when a publisher moves or a topology shifts,
	// so forward takes the read lock and upgrades only on change.
	mu     sync.RWMutex
	atts   []*attachment
	guar   map[string]guarPath // origin token -> where it entered
	closed bool
	done   chan struct{}
	wg     sync.WaitGroup

	// Health tier (nil/zero unless Options.Health is enabled).
	engine   *telemetry.Engine
	rec      *telemetry.Recorder
	sysTypes telemetry.SysTypes
	sysNode  string

	// Mesh tier (nil unless Options.Mesh is set).
	agent *meshAgent
	// hist is the mesh flight-data ring (health + mesh both on): the
	// re-advertisement and topology-change rates, with alarm edges noted
	// in-window, answered on "_sys.history" probes like a host's tier.
	hist *telemetry.History
}

type guarPath struct {
	att  *attachment
	from string
}

// Stats counts router events.
type Stats struct {
	Forwarded     uint64 // publications re-published on another segment
	FastForwarded uint64 // subset of Forwarded taken by the zero-copy fast path
	Suppressed    uint64 // publications with no remote interest
	LoopDropped   uint64 // publications dropped at the hop limit
	AcksForwarded uint64
	Transformed   uint64 // subjects rewritten by rules
}

// counters holds the router's telemetry handles.
type counters struct {
	forwarded, fastForwarded, suppressed *telemetry.Counter
	loopDropped                          *telemetry.Counter
	acksForwarded, transformed           *telemetry.Counter
	classDefsHarvested, classNaksServed  *telemetry.Counter
}

// New creates a router bridging the given attachments.
func New(opts Options, atts ...Attachment) (*Router, error) {
	if len(atts) < 2 {
		return nil, ErrFewSegments
	}
	if opts.InterestTTL <= 0 {
		opts.InterestTTL = time.Second
	}
	metrics := opts.Metrics
	if metrics == nil {
		metrics = telemetry.NewRegistry()
	}
	r := &Router{
		opts:      opts,
		metrics:   metrics,
		interner:  subject.NewInterner(0),
		guar:      make(map[string]guarPath),
		typeCache: wire.NewTypeCache(0),
		done:      make(chan struct{}),
	}
	hcfg := opts.Health
	if hcfg.Enabled() {
		hcfg = hcfg.WithDefaults()
		r.rec = telemetry.NewRecorder(hcfg.RecorderSize)
		r.engine = telemetry.NewEngine("router-"+opts.Name, metrics, r.rec)
		r.sysNode = r.engine.Node()
		types, err := telemetry.DefineSysTypes(mop.NewRegistry())
		if err != nil {
			return nil, err
		}
		r.sysTypes = types
	}
	r.ctr = counters{
		forwarded:          metrics.Counter("router.forwarded"),
		fastForwarded:      metrics.Counter("router.fastpath_forwarded"),
		suppressed:         metrics.Counter("router.suppressed"),
		loopDropped:        metrics.Counter("router.loop_dropped"),
		acksForwarded:      metrics.Counter("router.acks_forwarded"),
		transformed:        metrics.Counter("router.transformed"),
		classDefsHarvested: metrics.Counter("router.class_defs_harvested"),
		classNaksServed:    metrics.Counter("router.class_naks_served"),
	}
	for _, a := range atts {
		ep, err := a.Segment.NewEndpoint("router:" + opts.Name + ":" + a.Name)
		if err != nil {
			r.closeAttachments()
			return nil, err
		}
		rcfg := opts.Reliable
		if rcfg.Metrics == nil {
			rcfg.Metrics = metrics
			rcfg.MetricsPrefix = "reliable." + a.Name
		}
		if r.rec != nil && rcfg.Recorder == nil {
			rcfg.Recorder = r.rec
		}
		att := &attachment{
			name:     a.Name,
			index:    len(r.atts),
			conn:     reliable.New(ep, rcfg),
			rules:    a.Rules,
			interest: make(map[string]interestEntry),
		}
		r.atts = append(r.atts, att)
		if r.engine != nil {
			// Per-attachment retransmit storms: each attachment's stream has
			// its own counter prefix, so storms are attributed to a segment.
			prefix := rcfg.MetricsPrefix
			if prefix == "" {
				prefix = "reliable"
			}
			r.engine.WatchRate(telemetry.WatchConfig{
				Kind:   "retransmit-storm",
				Target: a.Name,
				Raise:  hcfg.RetransmitStormRate,
			}, rcfg.Metrics.Counter(prefix+".retransmits"))
		}
	}
	r.fastOK = !opts.DisableFastPath && opts.Log == nil
	for _, att := range r.atts {
		if len(att.rules) > 0 {
			r.fastOK = false
		}
	}
	if opts.Mesh != nil {
		r.agent = newMeshAgent(r, *opts.Mesh)
		if r.engine != nil {
			// Mesh churn watch: a flapping link re-elects and re-advertises
			// in a tight loop; the readvertisement rate is the symptom every
			// segment pays for (Figure-8 medium occupancy), so it is the
			// alarmed signal.
			r.engine.WatchRate(telemetry.WatchConfig{
				Kind:   "mesh-flap",
				Target: "mesh",
				Raise:  hcfg.MeshFlapRate,
			}, r.agent.readverts)
			// Flight-data ring for the mesh churn series: answered on
			// "_sys.history" probes so a monitor can see a flap window after
			// the fact, aligned with the alarm edges that fired in it.
			r.hist = telemetry.NewHistory(telemetry.HistoryConfig{})
			r.hist.TrackRate("mesh.readvertisements", r.agent.readverts)
			r.hist.TrackRate("mesh.topology_changes", r.agent.topoChanges)
			r.hist.TrackRate("router.forwarded", r.ctr.forwarded)
			r.hist.TrackRate("router.suppressed", r.ctr.suppressed)
			r.hist.Start()
		}
	}
	for _, att := range r.atts {
		r.wg.Add(1)
		go r.attachmentLoop(att)
	}
	if r.agent != nil {
		r.agent.start()
	}
	r.wg.Add(1)
	go r.interestRelayLoop()
	if opts.StatsInterval > 0 {
		r.wg.Add(1)
		go r.statsLoop()
	}
	if r.engine != nil {
		r.engine.SetSink(r.publishAlarm)
		r.engine.Start(hcfg.Interval)
	}
	return r, nil
}

// Metrics returns the router's telemetry registry.
func (r *Router) Metrics() *telemetry.Registry { return r.metrics }

// Stats returns a snapshot of the router counters (monotone atomics read
// in one pass: a consistent cut, see daemon.Stats).
func (r *Router) Stats() Stats {
	return Stats{
		Forwarded:     r.ctr.forwarded.Load(),
		FastForwarded: r.ctr.fastForwarded.Load(),
		Suppressed:    r.ctr.suppressed.Load(),
		LoopDropped:   r.ctr.loopDropped.Load(),
		AcksForwarded: r.ctr.acksForwarded.Load(),
		Transformed:   r.ctr.transformed.Load(),
	}
}

// Close detaches the router from all segments.
func (r *Router) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	close(r.done)
	r.mu.Unlock()
	if r.engine != nil {
		r.engine.Stop()
	}
	if r.agent != nil {
		r.agent.stop()
	}
	if r.hist != nil {
		r.hist.Stop()
	}
	r.closeAttachments()
	r.wg.Wait()
	return nil
}

func (r *Router) closeAttachments() {
	for _, att := range r.atts {
		_ = att.conn.Close()
	}
}

func (r *Router) attachmentLoop(att *attachment) {
	defer r.wg.Done()
	for {
		select {
		case <-r.done:
			return
		case m, ok := <-att.conn.Recv():
			if !ok {
				return
			}
			r.handle(att, m)
		}
	}
}

// handle dispatches one inbound message off a lazy header peek. The
// common case — a data envelope crossing segments — never fully decodes:
// every slow-path side handler (mesh link-local, "_sys.dump"/"_sys.history"
// probes, compact class-def harvest, class requests) keys off the peeked
// kind/subject/payload views, and only the handlers that genuinely need
// decoded fields (interest pattern lists, acks) decode.
func (r *Router) handle(att *attachment, m reliable.Message) {
	hdr, err := busproto.Peek(m.Payload)
	if err != nil {
		return
	}
	switch hdr.Base() {
	case busproto.KindInterest:
		env, err := busproto.Decode(m.Payload)
		if err != nil {
			return
		}
		if att.recordInterest(env.Patterns, time.Now().Add(r.opts.InterestTTL)) && r.agent != nil {
			r.agent.m.HostInterestChanged(att.index)
		}
	case busproto.KindPublish, busproto.KindGuaranteed:
		// System traffic: every check below compares the subject view
		// against a constant ([]byte==const string compiles to an
		// allocation-free comparison), so plain application traffic pays
		// one leading-byte test.
		if len(hdr.Subject) > 0 && hdr.Subject[0] == '_' {
			if r.agent != nil && meshLinkLocal(string(hdr.Subject)) {
				// Hello/interest/discovery traffic defines this link's
				// adjacency; it never crosses to another segment.
				if hdr.Base() == busproto.KindPublish {
					r.agent.handle(att, m.From, string(hdr.Subject), hdr.Payload)
				}
				return
			}
			if r.engine != nil && hdr.Base() == busproto.KindPublish && string(hdr.Subject) == telemetry.DumpSubject {
				// A "_sys.dump" probe: answer with this router's flight
				// recorder on every segment, then forward the probe so hosts
				// behind other attachments answer too.
				r.publishDump()
			}
			if r.hist != nil && hdr.Base() == busproto.KindPublish && string(hdr.Subject) == telemetry.HistorySubject {
				// A "_sys.history" probe: answer with the mesh flight-data
				// window, then forward so hosts answer too.
				r.publishHistory()
			}
			if string(hdr.Subject) == telemetry.ClassReqSubject {
				// Answer on the requester's segment with whatever definitions
				// this router holds, then forward the request — the origin or
				// holders on other segments fill in the rest.
				r.serveClassReq(att, hdr.Payload)
			}
		}
		if hdr.Compact() && wire.CompactCarriesDefs(hdr.Payload) {
			// Class definitions are crossing this segment: harvest them so
			// this router can answer "_sys.class.req" locally. Resolution
			// is structural (nil registry) — the router keeps every
			// fingerprint it sees, including superseded TDL definitions
			// still referenced by old publications.
			if err := wire.HarvestDefs(hdr.Payload, nil, r.typeCache); err == nil {
				r.ctr.classDefsHarvested.Inc()
			}
		}
		r.forward(att, m.From, hdr, m.Payload)
	case busproto.KindGuarAck:
		env, err := busproto.Decode(m.Payload)
		if err != nil {
			return
		}
		r.forwardAck(att, env)
	}
}

// forward re-publishes a data envelope on every other segment with a
// matching subscription. The common case — untraced envelope, no rewrite
// rules, ordinary (non-_sys) subject — takes the zero-copy fast path: the
// egress frame is the ingress bytes with only the hops byte changed, and
// the same value for every egress, so the router copies the frame ONCE
// into a pooled buffer and hands that single buffer to every matching
// attachment (safe: Publish copies into the retransmit window before
// returning). Traced, transformed, logged, and _sys traffic falls back to
// the full decode/re-encode path, which stays byte-golden with the fast
// path on the traffic both could carry.
func (r *Router) forward(src *attachment, from string, hdr busproto.Header, frame []byte) {
	var m *mesh.Mesh
	maxHops := uint8(busproto.MaxHops)
	if r.agent != nil {
		// Mesh mode: the spanning tree is loop-free by construction, so the
		// hop budget only bounds pathology and can cover the tree diameter
		// (the flat default would truncate long chains of segments).
		m = r.agent.m
		maxHops = uint8(m.MaxHops())
		if !m.Forwarding(src.index) {
			// A blocked port receives (hellos keep the tree alive) but never
			// forwards: the redundant link's traffic travels the tree path.
			r.ctr.suppressed.Inc()
			return
		}
	}
	if hdr.Hops >= maxHops {
		r.ctr.loopDropped.Inc()
		return
	}
	subj, err := r.interner.ParseBytes(hdr.Subject)
	if err != nil {
		return
	}
	if hdr.Base() == busproto.KindGuaranteed && len(hdr.Origin) > 0 {
		r.noteGuarPath(hdr.Origin, src, from)
	}
	if r.fastOK && !hdr.Traced() && !subject.IsSys(subj) {
		r.forwardFast(src, hdr, frame, subj, m)
		return
	}
	env, err := busproto.Decode(frame)
	if err != nil {
		return
	}
	r.forwardSlow(src, env, subj, m)
}

// forwardFast is the zero-copy fan-out: one copy of the inbound frame with
// the hops byte bumped, built in the ingress attachment's scratch buffer
// and published on every wanting egress. The copy is made lazily — a
// publication nobody wants touches no buffer at all.
func (r *Router) forwardFast(src *attachment, hdr busproto.Header, frame []byte, subj subject.Subject, m *mesh.Mesh) {
	copied := false
	var forwarded uint64
	for _, dst := range r.atts {
		if dst == src {
			continue
		}
		if m != nil && !m.Forwarding(dst.index) {
			continue
		}
		if !dst.wants(subj, m) {
			continue
		}
		if !copied {
			// The inbound frame may share its backing array with other
			// receivers on the segment (the transport broadcasts one copy),
			// so the hops bump happens on the router's own copy — in the
			// ingress attachment's scratch, which only its receive goroutine
			// (the caller) touches.
			src.fwdBuf = append(src.fwdBuf[:0], frame...)
			busproto.SetHops(src.fwdBuf, hdr.Hops+1)
			copied = true
		}
		// Publish copies into the retransmit window before returning, so
		// the single buffer is safely handed to every egress in turn.
		if err := dst.conn.Publish(src.fwdBuf); err != nil {
			continue
		}
		forwarded++
	}
	if forwarded > 0 {
		r.ctr.forwarded.Add(forwarded)
		r.ctr.fastForwarded.Add(forwarded)
	} else {
		r.ctr.suppressed.Inc()
	}
}

// forwardSlow is the full decode/re-encode path: per-egress subject
// transforms, per-egress trace hops, and per-message logging all need
// decoded fields and a fresh encode per attachment.
func (r *Router) forwardSlow(src *attachment, env busproto.Envelope, subj subject.Subject, m *mesh.Mesh) {
	forwardedAnywhere := false
	for _, dst := range r.atts {
		if dst == src {
			continue
		}
		if m != nil && !m.Forwarding(dst.index) {
			continue
		}
		outSubj, transformed := dst.transform(subj)
		if !dst.wants(outSubj, m) {
			continue
		}
		out := env
		out.Hops++
		out.Subject = outSubj.String()
		// Traced publications record the router crossing per egress
		// attachment (AppendHop copies, so fan-out copies do not alias).
		out.AppendHop("router:"+r.opts.Name+":"+dst.name, time.Now().UnixNano())
		// Pooled encode: Publish copies into the retransmit window before
		// returning, so the buffer goes straight back to the pool.
		buf := bufpool.Get(len(out.Subject) + len(out.Payload) + 48)
		*buf = busproto.AppendEncode((*buf)[:0], out)
		err := dst.conn.Publish(*buf)
		bufpool.Put(buf)
		if err != nil {
			continue
		}
		forwardedAnywhere = true
		if transformed {
			r.ctr.transformed.Inc()
		}
		r.ctr.forwarded.Inc()
		if r.opts.Log != nil {
			fmt.Fprintf(r.opts.Log, "router %s: %s -> %s subject %s (hops %d)\n",
				r.opts.Name, src.name, dst.name, out.Subject, out.Hops)
		}
	}
	if !forwardedAnywhere {
		r.ctr.suppressed.Inc()
	}
}

// noteGuarPath records where a guaranteed publication entered so its acks
// can retrace the path. The steady state — same origin keeps arriving via
// the same attachment and sender — is a read-lock map probe with a
// zero-copy []byte key; only an actual path change (publisher moved,
// topology shifted, first sighting) takes the write lock and materializes
// the key string.
func (r *Router) noteGuarPath(origin []byte, src *attachment, from string) {
	r.mu.RLock()
	p, ok := r.guar[string(origin)]
	r.mu.RUnlock()
	if ok && p.att == src && p.from == from {
		return
	}
	r.mu.Lock()
	r.guar[string(origin)] = guarPath{att: src, from: from}
	r.mu.Unlock()
}

// serveClassReq answers a "_sys.class.req" fingerprint request with the
// definitions this router has harvested, published on "_sys.class.def" on
// the segment the request arrived from.
func (r *Router) serveClassReq(att *attachment, payload []byte) {
	v, err := wire.UnmarshalWith(payload, nil, r.typeCache)
	if err != nil {
		return
	}
	var held []*mop.Type
	for _, fp := range wire.RequestedFPs(v) {
		if t, ok := r.typeCache.Lookup(fp); ok {
			held = append(held, t)
		}
	}
	if len(held) == 0 {
		return
	}
	defs, err := wire.MarshalDefs(held)
	if err != nil {
		return
	}
	out := busproto.Encode(busproto.Envelope{
		Kind: busproto.KindPublishCompact, Subject: telemetry.ClassDefSubject, Payload: defs,
	})
	if err := att.conn.Publish(out); err == nil {
		r.ctr.classNaksServed.Inc()
		_ = att.conn.Flush()
	}
}

// forwardAck sends a guaranteed-delivery acknowledgement back toward the
// segment the publication entered from.
func (r *Router) forwardAck(src *attachment, env busproto.Envelope) {
	r.mu.RLock()
	path, ok := r.guar[env.Origin]
	r.mu.RUnlock()
	if !ok || path.att == src {
		return
	}
	if err := path.att.conn.SendTo(path.from, busproto.Encode(env)); err != nil {
		return
	}
	r.ctr.acksForwarded.Inc()
}

// interestRelayLoop periodically re-advertises, on each segment, the union
// of interest heard on all OTHER segments, so that chains of routers
// propagate interest transitively; it also prunes expired entries.
//
// With the mesh active the pairwise union reflection is OFF: the mesh
// propagates aggregated interest hop by hop along the spanning tree with
// split horizon (internal/mesh), and reflecting raw host patterns here
// would re-introduce the pairwise flood the tree exists to remove. The
// loop still prunes expired host interest, notifying the mesh on change.
func (r *Router) interestRelayLoop() {
	defer r.wg.Done()
	interval := r.opts.RelayInterval
	if interval <= 0 {
		interval = 200 * time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-r.done:
			return
		case now := <-ticker.C:
			for _, att := range r.atts {
				if att.prune(now) && r.agent != nil {
					r.agent.m.HostInterestChanged(att.index)
				}
			}
			if r.agent != nil {
				continue
			}
			for _, dst := range r.atts {
				union := make(map[string]struct{})
				for _, src := range r.atts {
					if src == dst {
						continue
					}
					for _, p := range src.patterns() {
						// Remote interest crosses back out through dst; its
						// subjects will be transformed on the way in, so
						// advertise the un-transformed remote patterns.
						union[p] = struct{}{}
					}
				}
				if len(union) == 0 {
					continue
				}
				patterns := make([]string, 0, len(union))
				for p := range union {
					patterns = append(patterns, p)
				}
				env := busproto.Encode(busproto.Envelope{Kind: busproto.KindInterest, Patterns: patterns})
				_ = dst.conn.Publish(env)
				_ = dst.conn.Flush()
			}
		}
	}
}

// ---------------------------------------------------------------------------
// attachment helpers

func (a *attachment) recordInterest(patterns []string, expires time.Time) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	changed := false
	for _, ps := range patterns {
		if e, ok := a.interest[ps]; ok {
			// Refresh only: the pattern set (hence wants answers) is
			// unchanged, so the memo survives.
			e.expires = expires
			a.interest[ps] = e
			continue
		}
		pat, err := subject.ParsePattern(ps)
		if err != nil {
			continue
		}
		a.interest[ps] = interestEntry{pat: pat, expires: expires}
		changed = true
	}
	if changed {
		clear(a.wantsCache)
	}
	return changed
}

func (a *attachment) prune(now time.Time) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	changed := false
	for k, e := range a.interest {
		if now.After(e.expires) {
			delete(a.interest, k)
			changed = true
		}
	}
	if changed {
		clear(a.wantsCache)
	}
	return changed
}

// wants reports whether the subject should be forwarded onto this
// attachment's segment: a live host interest matches, or (mesh mode, m
// non-nil) a remote router behind this link advertised matching interest.
// The answer is memoized per subject; the memo is cleared when the local
// interest set changes, and — because the mesh half of the answer lives
// outside the attachment — whenever the mesh generation moves (topology or
// remote-interest change). The steady-state hit path is one mutex hold,
// one atomic load, and a map probe: no allocation.
func (a *attachment) wants(s subject.Subject, m *mesh.Mesh) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	if m != nil {
		if gen := m.Gen(); gen != a.meshGen {
			clear(a.wantsCache)
			a.meshGen = gen
		}
	}
	raw := s.String()
	if w, ok := a.wantsCache[raw]; ok {
		return w
	}
	w := false
	for _, e := range a.interest {
		if e.pat.Matches(s) {
			w = true
			break
		}
	}
	if !w && m != nil {
		w = m.WantsRemote(a.index, s)
	}
	if len(a.wantsCache) < maxWantsCache {
		if a.wantsCache == nil {
			a.wantsCache = make(map[string]bool)
		}
		a.wantsCache[raw] = w
	}
	return w
}

func (a *attachment) patterns() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]string, 0, len(a.interest))
	for p := range a.interest {
		out = append(out, p)
	}
	return out
}

// transform applies the attachment's first matching rewrite rule.
func (a *attachment) transform(s subject.Subject) (subject.Subject, bool) {
	for _, rule := range a.rules {
		if !rule.Match.IsZero() && !rule.Match.Matches(s) {
			continue
		}
		if rule.FromPrefix == "" || rule.ToPrefix == "" {
			return s, false
		}
		fromPat, err := subject.Parse(rule.FromPrefix)
		if err != nil || !s.HasPrefix(fromPat) {
			continue
		}
		rest := s.Elements()[fromPat.Depth():]
		out := rule.ToPrefix
		for _, e := range rest {
			out += "." + e
		}
		ns, err := subject.Parse(out)
		if err != nil {
			continue
		}
		return ns, true
	}
	return s, false
}

// statsLoop is the router's self-hosted stats export: like a host daemon,
// the router periodically publishes its metrics snapshot as a
// self-describing SysStats object — on every attached segment, so a
// monitor anywhere on the bridged bus can observe it. The object's types
// travel with it (P2); no subscriber needs to link against this package.
func (r *Router) statsLoop() {
	defer r.wg.Done()
	reg := mop.NewRegistry()
	types, err := telemetry.DefineSysTypes(reg)
	if err != nil {
		return
	}
	node := telemetry.SanitizeNode("router-" + r.opts.Name)
	start := time.Now()
	ticker := time.NewTicker(r.opts.StatsInterval)
	defer ticker.Stop()
	for {
		select {
		case <-r.done:
			return
		case now := <-ticker.C:
			obj := types.StatsObject(node, now, now.Sub(start), r.metrics.Snapshot())
			payload, err := wire.Marshal(obj)
			if err != nil {
				return
			}
			env := busproto.Encode(busproto.Envelope{
				Kind: busproto.KindPublish, Subject: telemetry.StatsSubject(node), Payload: payload,
			})
			for _, att := range r.atts {
				_ = att.conn.Publish(env)
				_ = att.conn.Flush()
			}
		}
	}
}

// publishAlarm is the router engine's sink: one SysAlarm publication per
// raise/clear edge, broadcast on every attached segment so a monitor
// anywhere on the bridged bus sees the router's health.
func (r *Router) publishAlarm(ev telemetry.AlarmEvent) {
	if r.hist != nil {
		// Note the edge into the flight-data ring so a "_sys.history" window
		// shows it aligned with the churn samples that tripped it.
		r.hist.NoteAlarm(ev)
	}
	payload, err := wire.Marshal(r.sysTypes.AlarmObject(ev))
	if err != nil {
		return
	}
	env := busproto.Encode(busproto.Envelope{
		Kind: busproto.KindPublish, Subject: telemetry.AlarmSubject(ev.Node, ev.Kind), Payload: payload,
	})
	r.broadcastSys(env)
}

// publishDump answers a "_sys.dump" probe with the router's active alarms
// and flight-recorder ring.
func (r *Router) publishDump() {
	now := time.Now()
	obj := r.sysTypes.DumpObject(r.sysNode, now, int64(r.rec.Total()), r.engine.DumpText())
	payload, err := wire.Marshal(obj)
	if err != nil {
		return
	}
	r.rec.Record(telemetry.EventDump, r.sysNode, 0, 0)
	env := busproto.Encode(busproto.Envelope{
		Kind: busproto.KindPublish, Subject: telemetry.DumpedSubject(r.sysNode), Payload: payload,
	})
	r.broadcastSys(env)
}

// publishHistory answers a "_sys.history" probe with the router's mesh
// flight-data window (churn series plus in-window alarm edges), on every
// attached segment, like a flight-data host answers for itself.
func (r *Router) publishHistory() {
	now := time.Now()
	obj := r.sysTypes.HistoryObject(r.sysNode, now, r.hist.Snapshot(0), nil)
	payload, err := wire.Marshal(obj)
	if err != nil {
		return
	}
	env := busproto.Encode(busproto.Envelope{
		Kind:    busproto.KindPublish,
		Subject: telemetry.HistoryNodeSubject(r.sysNode),
		Payload: payload,
	})
	r.broadcastSys(env)
}

func (r *Router) broadcastSys(env []byte) {
	for _, att := range r.atts {
		_ = att.conn.Publish(env)
		_ = att.conn.Flush()
	}
}

// Inject processes one encoded envelope as if it had been reliably
// received on the named attachment's segment from sender `from` — the
// forwarding engine runs exactly as for wire traffic (peek, interest
// match, fan-out, counters). Replay tooling and the A15 benchmark drive
// the data plane directly with it. Concurrent Injects on the SAME
// attachment (or an Inject racing live traffic on that attachment) are
// not allowed: the fast path uses a per-attachment scratch buffer owned
// by whichever goroutine is delivering for it.
func (r *Router) Inject(segment, from string, frame []byte) error {
	for _, att := range r.atts {
		if att.name == segment {
			r.handle(att, reliable.Message{From: from, Payload: frame})
			return nil
		}
	}
	return fmt.Errorf("router: no attachment %q", segment)
}

// MeshStatus returns a snapshot of the router's spanning-tree state and
// true when the mesh tier (Options.Mesh) is active. Tests and operational
// tooling use it to observe elections and port roles without decoding
// status publications.
func (r *Router) MeshStatus() (mesh.Status, bool) {
	if r.agent == nil {
		return mesh.Status{}, false
	}
	return r.agent.m.Snapshot(), true
}

// WantsOn reports whether the named attachment's segment currently holds a
// subscription matching the subject (after that attachment's transforms).
// Operational tooling and examples use it to wait for interest propagation
// before relying on cross-segment forwarding of unretried publications.
func (r *Router) WantsOn(segmentName string, s subject.Subject) bool {
	for _, att := range r.atts {
		if att.name != segmentName {
			continue
		}
		var m *mesh.Mesh
		if r.agent != nil {
			m = r.agent.m
			if !m.Forwarding(att.index) {
				return false
			}
		}
		out, _ := att.transform(s)
		return att.wants(out, m)
	}
	return false
}
