package router

import (
	"testing"
	"time"

	"infobus/internal/core"
	"infobus/internal/mop"
	"infobus/internal/telemetry"
)

// TestHistoryProbeAcrossRouter: the "_sys.history" probe and its
// SysHistory answer are ordinary subject-addressed publications, so they
// cross routers like any other traffic — a monitor on segment B probes a
// flight-data host on segment A and reads the window back through the
// router, decoding it with nothing but the self-describing object.
func TestHistoryProbeAcrossRouter(t *testing.T) {
	segA, segB := fastSeg(), fastSeg()
	defer segA.Close()
	defer segB.Close()
	newRouter(t, Options{Name: "r1"},
		Attachment{Segment: segA, Name: "A"},
		Attachment{Segment: segB, Name: "B"},
	)
	flight := newBus(t, segA, "flighthost", core.HostConfig{
		Telemetry: core.TelemetryConfig{
			HistoryInterval:    5 * time.Millisecond,
			HistoryDigestTicks: -1,
		},
	})
	prober := newBus(t, segB, "prober", core.HostConfig{})
	answers, err := prober.Subscribe("_sys.history.>")
	if err != nil {
		t.Fatal(err)
	}
	// Some cross-router traffic so the sampled rates are nonzero.
	back, err := flight.Subscribe("fab5.>")
	if err != nil {
		t.Fatal(err)
	}
	publishUntil(t, prober, "fab5.cc.temp", int64(451), back)

	deadline := time.After(15 * time.Second)
	for {
		if err := prober.Publish(telemetry.HistorySubject, int64(1)); err != nil {
			t.Fatal(err)
		}
		_ = prober.Flush()
		select {
		case ev := <-answers.C:
			if got := ev.Subject.String(); got != "_sys.history.flighthost" {
				t.Fatalf("answer subject = %q", got)
			}
			obj, ok := ev.Value.(*mop.Object)
			if !ok || obj.Type().Name() != "SysHistory" {
				t.Fatalf("answer value = %v", ev.Value)
			}
			digest, ok := telemetry.ParseHistoryObject(obj)
			if !ok {
				t.Fatalf("unparseable SysHistory %v", obj)
			}
			if digest.Node != "flighthost" {
				t.Fatalf("digest node = %q", digest.Node)
			}
			if digest.Snapshot.IntervalNs != (5 * time.Millisecond).Nanoseconds() {
				t.Fatalf("interval_ns = %d", digest.Snapshot.IntervalNs)
			}
			if len(digest.Snapshot.Series) == 0 {
				t.Fatal("no series in the round-tripped window")
			}
			names := map[string]bool{}
			for _, s := range digest.Snapshot.Series {
				names[s.Name] = true
			}
			if !names["daemon.inbound"] || !names["bus.published"] {
				t.Fatalf("series round-trip lost names: %v", names)
			}
			return
		case <-deadline:
			t.Fatal("history answer never crossed the router")
		case <-time.After(20 * time.Millisecond):
		}
	}
}
