package router

import (
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"infobus/internal/core"
	"infobus/internal/mesh"
	"infobus/internal/mop"
	"infobus/internal/netsim"
	"infobus/internal/subject"
	"infobus/internal/telemetry"
	"infobus/internal/transport"
)

// fastMesh scales the mesh protocol timers down to the simulated network's
// pace, like fastReliable does for the stream protocol: detection within
// tens of milliseconds, interest expiry within a few hundred.
func fastMesh() mesh.Config {
	return mesh.Config{
		HelloInterval:   10 * time.Millisecond,
		Debounce:        4 * time.Millisecond,
		InterestRefresh: 60 * time.Millisecond,
		StatusInterval:  -1,
	}
}

// triangle builds the canonical redundant topology: three segments in a
// physical ring, each bridged to the next by one mesh router.
//
//	S1 --ra-- S2 --rb-- S3 --rc-- S1
func triangle(t *testing.T, cfg mesh.Config) (s1, s2, s3 *transport.SimSegment, ra, rb, rc *Router) {
	t.Helper()
	s1, s2, s3 = fastSeg(), fastSeg(), fastSeg()
	t.Cleanup(func() { s1.Close(); s2.Close(); s3.Close() })
	ra = newRouter(t, Options{Name: "ra", Mesh: &cfg},
		Attachment{Segment: s1, Name: "S1"},
		Attachment{Segment: s2, Name: "S2"},
	)
	rb = newRouter(t, Options{Name: "rb", Mesh: &cfg},
		Attachment{Segment: s2, Name: "S2"},
		Attachment{Segment: s3, Name: "S3"},
	)
	rc = newRouter(t, Options{Name: "rc", Mesh: &cfg},
		Attachment{Segment: s3, Name: "S3"},
		Attachment{Segment: s1, Name: "S1"},
	)
	return
}

// blockedPorts counts blocked ports across the given routers' snapshots.
func blockedPorts(routers ...*Router) int {
	n := 0
	for _, r := range routers {
		st, ok := r.MeshStatus()
		if !ok {
			continue
		}
		for _, l := range st.Links {
			if l.State != "forwarding" {
				n++
			}
		}
	}
	return n
}

// waitBlockedPorts polls until the mesh settles with exactly want blocked
// ports across the routers.
func waitBlockedPorts(t *testing.T, want int, routers ...*Router) {
	t.Helper()
	deadline := time.After(15 * time.Second)
	for {
		if blockedPorts(routers...) == want {
			return
		}
		select {
		case <-deadline:
			for _, r := range routers {
				st, _ := r.MeshStatus()
				t.Logf("mesh status: %+v", st)
			}
			t.Fatalf("mesh never settled at %d blocked ports", want)
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// TestMeshTriangleDeliversExactlyOnce: a physical ring of segments is a
// forwarding loop for pairwise routers (TestParallelRoutersBoundedByHopLimit
// shows the hop limit merely bounds the copies). With the mesh on, the
// election cuts the ring into a tree: the subscriber sees exactly ONE copy
// per publication, and exactly one port in the mesh is blocked.
func TestMeshTriangleDeliversExactlyOnce(t *testing.T) {
	s1, _, s3, ra, rb, rc := triangle(t, fastMesh())
	waitBlockedPorts(t, 1, ra, rb, rc)

	pub := newBus(t, s1, "pubhost", core.HostConfig{})
	con := newBus(t, s3, "conhost", core.HostConfig{})
	sub, err := con.Subscribe("tri.>")
	if err != nil {
		t.Fatal(err)
	}
	publishUntil(t, pub, "tri.warm", int64(0), sub)

	// One unique publication after convergence: exactly one copy may arrive.
	if err := pub.Publish("tri.unique", int64(777)); err != nil {
		t.Fatal(err)
	}
	copies := 0
	drain := time.After(400 * time.Millisecond)
	for done := false; !done; {
		select {
		case ev := <-sub.C:
			if ev.Subject.String() == "tri.unique" {
				copies++
			}
		case <-drain:
			done = true
		}
	}
	if copies != 1 {
		t.Fatalf("subscriber saw %d copies across the ring, want exactly 1", copies)
	}
	if lost := ra.Stats().LoopDropped + rb.Stats().LoopDropped + rc.Stats().LoopDropped; lost != 0 {
		t.Errorf("hop limit fired %d times on a loop-free tree", lost)
	}
}

// TestMeshGuaranteedSurvivesRouterDeath is the healing half of the tentpole:
// kill the router carrying the active path and the tree re-elects around it
// — the blocked redundant link takes over, interest re-advertises, and the
// publisher's retrier converges every guaranteed message with no loss.
func TestMeshGuaranteedSurvivesRouterDeath(t *testing.T) {
	s1, _, s3, ra, rb, rc := triangle(t, fastMesh())
	waitBlockedPorts(t, 1, ra, rb, rc)

	pub := newBus(t, s1, "pubhost", core.HostConfig{
		LedgerPath:    filepath.Join(t.TempDir(), "pub.ledger"),
		RetryInterval: 20 * time.Millisecond,
	})
	con := newBus(t, s3, "conhost", core.HostConfig{})
	sub, err := con.Subscribe("g.mesh")
	if err != nil {
		t.Fatal(err)
	}

	got := make(map[string]bool)
	recvInto := func(within time.Duration) {
		deadline := time.After(within)
		for {
			select {
			case ev := <-sub.C:
				if s, ok := ev.Value.(string); ok {
					got[s] = true
				}
			case <-deadline:
				return
			}
		}
	}

	if _, err := pub.PublishGuaranteed("g.mesh", "before-death"); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(15 * time.Second)
	for !got["before-death"] {
		recvInto(20 * time.Millisecond)
		select {
		case <-deadline:
			t.Fatal("guaranteed message never crossed the converged mesh")
		default:
		}
	}

	// Kill the router on the S1->S3 tree path, then publish more. The
	// messages sit in the ledger until the survivors re-elect.
	_ = rb.Close()
	if _, err := pub.PublishGuaranteed("g.mesh", "during-outage"); err != nil {
		t.Fatal(err)
	}
	if _, err := pub.PublishGuaranteed("g.mesh", "after-reelection"); err != nil {
		t.Fatal(err)
	}
	for !got["during-outage"] || !got["after-reelection"] {
		recvInto(20 * time.Millisecond)
		select {
		case <-deadline:
			st, _ := rc.MeshStatus()
			t.Fatalf("guaranteed loss across re-election: got %v, rc mesh %+v", got, st)
		default:
		}
	}
	// The ledger drains: acks retrace the healed path back to the origin.
	for len(pub.Host().PendingGuaranteed()) > 0 {
		select {
		case <-deadline:
			t.Fatalf("ledger never drained after re-election; pending %d",
				len(pub.Host().PendingGuaranteed()))
		case <-time.After(10 * time.Millisecond):
		}
	}
	// The survivors' tree is a 2-node line: every port forwarding.
	waitBlockedPorts(t, 0, ra, rc)
}

// TestMeshPartitionHeal drives the netsim partition model: isolating rb's
// S2 endpoint severs the tree path without killing the router, the mesh
// re-elects around the cut, and healing the partition re-converges back to
// a single blocked port with publications still delivered exactly once.
func TestMeshPartitionHeal(t *testing.T) {
	s1, s2, s3, ra, rb, rc := triangle(t, fastMesh())
	waitBlockedPorts(t, 1, ra, rb, rc)

	pub := newBus(t, s1, "pubhost", core.HostConfig{})
	con := newBus(t, s3, "conhost", core.HostConfig{})
	sub, err := con.Subscribe("ph.>")
	if err != nil {
		t.Fatal(err)
	}
	publishUntil(t, pub, "ph.warm", int64(0), sub)

	// Partition rb away from S2: hellos stop crossing, ra and rb declare
	// each other dead on that link, and rc's blocked port must take over.
	var rbS2 int
	for _, att := range rb.atts {
		if att.name == "S2" {
			id, err := strconv.Atoi(strings.TrimPrefix(att.conn.Addr(), "sim:"))
			if err != nil {
				t.Fatal(err)
			}
			rbS2 = id
		}
	}
	s2.Network().Partition(netsim.NodeID(rbS2))
	waitBlockedPorts(t, 0, ra, rb, rc)
	ev := publishUntil(t, pub, "ph.cut", int64(1), sub)
	if ev.Subject.String() != "ph.cut" {
		t.Fatalf("event = %+v", ev)
	}

	// Heal: the redundant link comes back, the election must re-block it,
	// and a post-heal publication still arrives exactly once.
	s2.Network().Heal()
	waitBlockedPorts(t, 1, ra, rb, rc)
	if err := pub.Publish("ph.healed", int64(2)); err != nil {
		t.Fatal(err)
	}
	copies := 0
	drain := time.After(400 * time.Millisecond)
	for done := false; !done; {
		select {
		case ev := <-sub.C:
			if ev.Subject.String() == "ph.healed" {
				copies++
			}
		case <-drain:
			done = true
		}
	}
	if copies != 1 {
		t.Fatalf("post-heal publication arrived %d times, want exactly 1", copies)
	}
}

// TestMeshWantsCacheInvalidatedOnTopologyChange is the PR 9 regression fix:
// an attachment's wants memo caches "forward into S2" because a subscriber
// lives BEHIND that link (mesh remote interest, not local interest). When
// that subtree dies, nothing on the attachment itself changes — only the
// mesh generation moves. The stale cache entry must not keep answering yes.
func TestMeshWantsCacheInvalidatedOnTopologyChange(t *testing.T) {
	cfg := fastMesh()
	s1, s2, s3 := fastSeg(), fastSeg(), fastSeg()
	defer s1.Close()
	defer s2.Close()
	defer s3.Close()
	// A line: S1 --ra-- S2 --rb-- S3, subscriber on the far end.
	ra := newRouter(t, Options{Name: "ra", Mesh: &cfg},
		Attachment{Segment: s1, Name: "S1"},
		Attachment{Segment: s2, Name: "S2"},
	)
	rb := newRouter(t, Options{Name: "rb", Mesh: &cfg},
		Attachment{Segment: s2, Name: "S2"},
		Attachment{Segment: s3, Name: "S3"},
	)
	con := newBus(t, s3, "conhost", core.HostConfig{})
	if _, err := con.Subscribe("inv.leaf"); err != nil {
		t.Fatal(err)
	}
	subj := subject.MustParse("inv.leaf")
	deadline := time.After(15 * time.Second)
	// The answer comes from rb's hop-propagated interest ad, lands in ra's
	// mesh state, and gets memoized in the S2 attachment's wants cache.
	for !ra.WantsOn("S2", subj) {
		select {
		case <-deadline:
			t.Fatal("remote interest never propagated through the mesh")
		case <-time.After(5 * time.Millisecond):
		}
	}
	// Kill the subtree. ra's S2 attachment sees no local interest change
	// ever (no hosts live on S2) — only the mesh generation moves when rb's
	// hello and interest expire. The memoized true must flip.
	_ = rb.Close()
	for ra.WantsOn("S2", subj) {
		select {
		case <-deadline:
			t.Fatal("wants cache kept forwarding into a dead subtree")
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// TestMeshForwardDecisionZeroAlloc pins the steady-state forward decision —
// port-state check plus wants-cache hit — at zero allocations. Pure state
// machine, no live network: exactly what runs per forwarded publication
// between envelope decode and encode.
func TestMeshForwardDecisionZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates")
	}
	m := mesh.New("za", []string{"A", "B"}, mesh.Config{})
	now := time.Unix(1000, 0)
	m.HandleInterest(1, mesh.InterestAd{Router: "zb", Seq: 1, Patterns: []string{"za.>"}}, now)
	att := &attachment{name: "B", index: 1, interest: map[string]interestEntry{}}
	subj := subject.MustParse("za.data")
	if !m.Forwarding(1) || !att.wants(subj, m) {
		t.Fatal("precondition: remote interest should match")
	}
	allocs := testing.AllocsPerRun(10000, func() {
		if !m.Forwarding(1) || !att.wants(subj, m) {
			t.Fatal("forward decision flipped mid-run")
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state forward decision = %v allocs/op, want 0", allocs)
	}
}

// TestMeshStatusAdObservable: status snapshots are ordinary self-describing
// publications, so a monitor host ANYWHERE on the bridged bus (ibmon -mesh)
// can render every router's tree state without linking against the router.
func TestMeshStatusAdObservable(t *testing.T) {
	cfg := fastMesh()
	cfg.StatusInterval = 20 * time.Millisecond
	_, _, s3, _, _, _ := triangle(t, cfg)
	mon := newBus(t, s3, "monhost", core.HostConfig{})
	sub, err := mon.Subscribe(mesh.StatusSubjectPrefix + ".>")
	if err != nil {
		t.Fatal(err)
	}
	// Collect until a status ad from ra — two mesh hops away from the
	// monitor's segment — arrives and parses.
	deadline := time.After(15 * time.Second)
	for {
		select {
		case ev := <-sub.C:
			obj, ok := ev.Value.(*mop.Object)
			if !ok {
				t.Fatalf("status ad decoded to %T, want *mop.Object", ev.Value)
			}
			st, ok := mesh.ParseStatusObject(obj)
			if !ok {
				t.Fatalf("unparseable status ad %v", obj)
			}
			if st.Router != "ra" {
				continue
			}
			if st.Root != "ra" {
				t.Fatalf("status ad root = %q, want ra", st.Root)
			}
			if st.Node != telemetry.SanitizeNode("router-ra") {
				t.Fatalf("status ad node = %q", st.Node)
			}
			if len(st.Links) != 2 {
				t.Fatalf("status ad links = %+v", st.Links)
			}
			return
		case <-deadline:
			t.Fatal("no status ad from the far router reached the monitor")
		}
	}
}

// TestMeshFlapAlarm: a flapping neighbor drives re-advertisement churn; the
// router's health tier must raise the "mesh-flap" alarm and the churn series
// must be visible in the "_sys.history" flight-data window.
func TestMeshFlapAlarm(t *testing.T) {
	cfg := fastMesh()
	s1, s2 := fastSeg(), fastSeg()
	defer s1.Close()
	defer s2.Close()
	r := newRouter(t, Options{
		Name: "rh",
		Mesh: &cfg,
		Health: telemetry.HealthConfig{
			Interval:     5 * time.Millisecond,
			MeshFlapRate: 5, // readvertisements/s; flap churn far exceeds it
		},
	},
		Attachment{Segment: s1, Name: "S1"},
		Attachment{Segment: s2, Name: "S2"},
	)
	mon := newBus(t, s1, "monhost", core.HostConfig{})
	alarms, err := mon.Subscribe("_sys.alarm.>")
	if err != nil {
		t.Fatal(err)
	}
	// Synthesize a flapping peer: alternate two interest sets into the mesh
	// faster than the debounce can fully coalesce. Driving the state
	// machine directly keeps the churn source deterministic.
	if _, ok := r.MeshStatus(); !ok {
		t.Fatal("mesh tier inactive")
	}
	go func() {
		pats := [][]string{{"flap.a"}, {"flap.b"}}
		for i := 0; i < 400; i++ {
			r.agent.m.HandleInterest(0, mesh.InterestAd{
				Router: "zz-flapper", Seq: int64(i), Patterns: pats[i%2],
			}, time.Now())
			time.Sleep(2 * time.Millisecond)
		}
	}()
	deadline := time.After(15 * time.Second)
	for {
		select {
		case ev := <-alarms.C:
			if !strings.Contains(ev.Subject.String(), "mesh-flap") {
				continue
			}
			// The churn series must be visible in the flight-data ring once
			// the sampler has ticked (its period is coarser than the alarm's).
			for r.hist.Snapshot(0).Ticks == 0 {
				select {
				case <-deadline:
					t.Fatal("history sampler never ticked")
				case <-time.After(10 * time.Millisecond):
				}
			}
			return
		case <-deadline:
			t.Fatalf("mesh-flap alarm never raised; readverts=%d",
				r.agent.readverts.Load())
		}
	}
}
