package tdl

import "testing"

// BenchmarkMethodDispatch measures a generic-function call with class
// dispatch and slot access — the TDL hot path for interpreter-driven
// applications.
func BenchmarkMethodDispatch(b *testing.B) {
	in := New(nil, nil)
	if _, err := in.EvalString(newsProgram + `
	  (define s (make-instance 'DowJonesStory 'headline "GM" 'djCode "GMC"))`); err != nil {
		b.Fatal(err)
	}
	obj, err := in.EvalString("s")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := in.Call("summary", obj); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvalArith measures raw interpreter overhead.
func BenchmarkEvalArith(b *testing.B) {
	in := New(nil, nil)
	if _, err := in.EvalString("(define (f n) (+ (* n n) (- n 1)))"); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := in.Call("f", int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}
