package tdl_test

import (
	"fmt"
	"os"

	"infobus/internal/mop"
	"infobus/internal/tdl"
)

// TDL defines classes and methods at run time (P3); instances are ordinary
// mop objects that can travel on the bus.
func Example() {
	reg := mop.NewRegistry()
	interp := tdl.New(reg, os.Stdout)
	result, err := interp.EvalString(`
	  (defclass Story ()
	    ((headline string)
	     (urgent bool)))

	  (defmethod banner ((s Story))
	    (if (slot-value s 'urgent)
	        (concat "*** " (upcase (slot-value s 'headline)) " ***")
	        (slot-value s 'headline)))

	  (banner (make-instance 'Story 'headline "GM surges" 'urgent #t))`)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(result)
	fmt.Println("registered:", reg.Has("Story"))
	// Output:
	// *** GM SURGES ***
	// registered: true
}
