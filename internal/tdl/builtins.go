package tdl

import (
	"fmt"
	"strings"
	"time"

	"infobus/internal/mop"
)

func (in *Interp) installBuiltins() {
	add := func(name string, arity int, fn func(*Interp, []mop.Value) (mop.Value, error)) {
		in.global.vars[Symbol(name)] = &builtin{name: name, arity: arity, fn: fn}
	}

	// Arithmetic. Integer arguments stay integral; any float argument
	// promotes the result.
	add("+", -1, func(_ *Interp, args []mop.Value) (mop.Value, error) {
		return fold(args, "+", func(a, b int64) (int64, error) { return a + b, nil },
			func(a, b float64) (float64, error) { return a + b, nil })
	})
	add("-", -1, func(_ *Interp, args []mop.Value) (mop.Value, error) {
		if len(args) == 1 {
			args = []mop.Value{int64(0), args[0]}
		}
		return fold(args, "-", func(a, b int64) (int64, error) { return a - b, nil },
			func(a, b float64) (float64, error) { return a - b, nil })
	})
	add("*", -1, func(_ *Interp, args []mop.Value) (mop.Value, error) {
		return fold(args, "*", func(a, b int64) (int64, error) { return a * b, nil },
			func(a, b float64) (float64, error) { return a * b, nil })
	})
	add("/", -1, func(_ *Interp, args []mop.Value) (mop.Value, error) {
		return fold(args, "/", func(a, b int64) (int64, error) {
			if b == 0 {
				return 0, fmt.Errorf("division by zero: %w", ErrType)
			}
			return a / b, nil
		}, func(a, b float64) (float64, error) { return a / b, nil })
	})
	add("mod", 2, func(_ *Interp, args []mop.Value) (mop.Value, error) {
		a, ok1 := args[0].(int64)
		b, ok2 := args[1].(int64)
		if !ok1 || !ok2 || b == 0 {
			return nil, fmt.Errorf("mod wants nonzero integers: %w", ErrType)
		}
		return a % b, nil
	})

	// Comparison and equality.
	add("=", 2, cmpBuiltin(func(c int) bool { return c == 0 }))
	add("<", 2, cmpBuiltin(func(c int) bool { return c < 0 }))
	add(">", 2, cmpBuiltin(func(c int) bool { return c > 0 }))
	add("<=", 2, cmpBuiltin(func(c int) bool { return c <= 0 }))
	add(">=", 2, cmpBuiltin(func(c int) bool { return c >= 0 }))
	add("eq?", 2, func(_ *Interp, args []mop.Value) (mop.Value, error) {
		return mop.EqualValues(args[0], args[1]), nil
	})
	add("not", 1, func(_ *Interp, args []mop.Value) (mop.Value, error) {
		return !truthy(args[0]), nil
	})

	// Strings.
	add("concat", -1, func(_ *Interp, args []mop.Value) (mop.Value, error) {
		var b strings.Builder
		for _, a := range args {
			switch x := a.(type) {
			case string:
				b.WriteString(x)
			default:
				b.WriteString(FormatValue(a))
			}
		}
		return b.String(), nil
	})
	add("string-length", 1, func(_ *Interp, args []mop.Value) (mop.Value, error) {
		s, ok := args[0].(string)
		if !ok {
			return nil, fmt.Errorf("string-length wants a string: %w", ErrType)
		}
		return int64(len(s)), nil
	})
	add("substring", 3, func(_ *Interp, args []mop.Value) (mop.Value, error) {
		s, ok := args[0].(string)
		from, ok1 := args[1].(int64)
		to, ok2 := args[2].(int64)
		if !ok || !ok1 || !ok2 {
			return nil, fmt.Errorf("substring wants (string int int): %w", ErrType)
		}
		if from < 0 || to < from || to > int64(len(s)) {
			return nil, fmt.Errorf("substring bounds [%d,%d) of %d: %w", from, to, len(s), ErrType)
		}
		return s[from:to], nil
	})
	add("contains?", 2, func(_ *Interp, args []mop.Value) (mop.Value, error) {
		s, ok1 := args[0].(string)
		sub, ok2 := args[1].(string)
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("contains? wants strings: %w", ErrType)
		}
		return strings.Contains(s, sub), nil
	})
	add("upcase", 1, func(_ *Interp, args []mop.Value) (mop.Value, error) {
		s, ok := args[0].(string)
		if !ok {
			return nil, fmt.Errorf("upcase wants a string: %w", ErrType)
		}
		return strings.ToUpper(s), nil
	})

	// Lists.
	add("list", -1, func(_ *Interp, args []mop.Value) (mop.Value, error) {
		return mop.List(append([]mop.Value(nil), args...)), nil
	})
	add("length", 1, func(_ *Interp, args []mop.Value) (mop.Value, error) {
		switch x := args[0].(type) {
		case mop.List:
			return int64(len(x)), nil
		case nil:
			return int64(0), nil
		default:
			return nil, fmt.Errorf("length wants a list: %w", ErrType)
		}
	})
	add("nth", 2, func(_ *Interp, args []mop.Value) (mop.Value, error) {
		l, ok1 := args[0].(mop.List)
		i, ok2 := args[1].(int64)
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("nth wants (list int): %w", ErrType)
		}
		if i < 0 || i >= int64(len(l)) {
			return nil, fmt.Errorf("nth index %d of %d: %w", i, len(l), ErrType)
		}
		return l[i], nil
	})
	add("append", -1, func(_ *Interp, args []mop.Value) (mop.Value, error) {
		var out mop.List
		for _, a := range args {
			switch x := a.(type) {
			case mop.List:
				out = append(out, x...)
			case nil:
			default:
				out = append(out, x)
			}
		}
		return out, nil
	})
	add("map", 2, func(in *Interp, args []mop.Value) (mop.Value, error) {
		l, ok := args[1].(mop.List)
		if !ok {
			return nil, fmt.Errorf("map wants (fn list): %w", ErrType)
		}
		out := make(mop.List, len(l))
		for i, e := range l {
			v, err := in.apply(args[0], []mop.Value{e})
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	})
	add("reduce", 3, func(in *Interp, args []mop.Value) (mop.Value, error) {
		l, ok := args[2].(mop.List)
		if !ok {
			return nil, fmt.Errorf("reduce wants (fn init list): %w", ErrType)
		}
		acc := args[1]
		for _, e := range l {
			v, err := in.apply(args[0], []mop.Value{acc, e})
			if err != nil {
				return nil, err
			}
			acc = v
		}
		return acc, nil
	})
	add("reverse", 1, func(_ *Interp, args []mop.Value) (mop.Value, error) {
		l, ok := args[0].(mop.List)
		if !ok {
			return nil, fmt.Errorf("reverse wants a list: %w", ErrType)
		}
		out := make(mop.List, len(l))
		for i, e := range l {
			out[len(l)-1-i] = e
		}
		return out, nil
	})
	add("filter", 2, func(in *Interp, args []mop.Value) (mop.Value, error) {
		l, ok := args[1].(mop.List)
		if !ok {
			return nil, fmt.Errorf("filter wants (fn list): %w", ErrType)
		}
		var out mop.List
		for _, e := range l {
			v, err := in.apply(args[0], []mop.Value{e})
			if err != nil {
				return nil, err
			}
			if truthy(v) {
				out = append(out, e)
			}
		}
		return out, nil
	})

	// Objects and the meta-object protocol.
	add("make-instance", -1, builtinMakeInstance)
	add("slot-value", 2, func(_ *Interp, args []mop.Value) (mop.Value, error) {
		o, name, err := objAndSlot("slot-value", args)
		if err != nil {
			return nil, err
		}
		return o.Get(name)
	})
	add("set-slot!", 3, func(_ *Interp, args []mop.Value) (mop.Value, error) {
		o, name, err := objAndSlot("set-slot!", args)
		if err != nil {
			return nil, err
		}
		if err := o.Set(name, args[2]); err != nil {
			return nil, err
		}
		return args[2], nil
	})
	add("type-of", 1, func(_ *Interp, args []mop.Value) (mop.Value, error) {
		t := mop.ValueType(args[0])
		if t == nil {
			return "nil", nil
		}
		return t.Name(), nil
	})
	add("instance-of?", 2, func(in *Interp, args []mop.Value) (mop.Value, error) {
		o, ok := args[0].(*mop.Object)
		name, ok2 := args[1].(string)
		if !ok || !ok2 {
			return nil, fmt.Errorf("instance-of? wants (object 'Class): %w", ErrType)
		}
		t, err := in.reg.Lookup(name)
		if err != nil {
			return nil, err
		}
		return o.Type().IsSubtypeOf(t), nil
	})
	add("attribute-names", 1, func(in *Interp, args []mop.Value) (mop.Value, error) {
		t, err := typeArg(in, args[0])
		if err != nil {
			return nil, err
		}
		out := make(mop.List, 0, t.NumAttrs())
		for _, a := range t.Attrs() {
			out = append(out, a.Name)
		}
		return out, nil
	})
	add("attribute-type", 2, func(in *Interp, args []mop.Value) (mop.Value, error) {
		t, err := typeArg(in, args[0])
		if err != nil {
			return nil, err
		}
		name, ok := args[1].(string)
		if !ok {
			return nil, fmt.Errorf("attribute-type wants a name: %w", ErrType)
		}
		a, found := t.Attr(name)
		if !found {
			return nil, fmt.Errorf("attribute %q: %w", name, mop.ErrNoAttr)
		}
		return a.Type.Name(), nil
	})
	add("describe", 1, func(in *Interp, args []mop.Value) (mop.Value, error) {
		t, err := typeArg(in, args[0])
		if err != nil {
			return nil, err
		}
		return mop.DescribeString(t), nil
	})
	add("class-exists?", 1, func(in *Interp, args []mop.Value) (mop.Value, error) {
		name, ok := args[0].(string)
		if !ok {
			return nil, fmt.Errorf("class-exists? wants a name: %w", ErrType)
		}
		return in.reg.Has(name), nil
	})
	add("clone", 1, func(_ *Interp, args []mop.Value) (mop.Value, error) {
		return mop.CloneValue(args[0]), nil
	})

	// I/O and misc.
	add("print", -1, func(in *Interp, args []mop.Value) (mop.Value, error) {
		parts := make([]string, len(args))
		for i, a := range args {
			parts[i] = FormatValue(a)
		}
		fmt.Fprintln(in.out, strings.Join(parts, " "))
		return nil, nil
	})
	add("now", 0, func(_ *Interp, _ []mop.Value) (mop.Value, error) {
		return time.Now().UTC(), nil
	})
}

func builtinMakeInstance(in *Interp, args []mop.Value) (mop.Value, error) {
	if len(args) == 0 || len(args)%2 != 1 {
		return nil, fmt.Errorf("make-instance wants ('Class 'slot value ...): %w", ErrArity)
	}
	name, ok := args[0].(string)
	if !ok {
		return nil, fmt.Errorf("make-instance: class name expected, got %s: %w", FormatValue(args[0]), ErrType)
	}
	t, err := in.reg.Lookup(name)
	if err != nil {
		return nil, err
	}
	o, err := mop.New(t)
	if err != nil {
		return nil, err
	}
	for i := 1; i < len(args); i += 2 {
		slot, ok := args[i].(string)
		if !ok {
			return nil, fmt.Errorf("make-instance: slot name expected at arg %d: %w", i, ErrType)
		}
		if err := o.Set(slot, args[i+1]); err != nil {
			return nil, err
		}
	}
	return o, nil
}

func objAndSlot(who string, args []mop.Value) (*mop.Object, string, error) {
	o, ok := args[0].(*mop.Object)
	if !ok {
		return nil, "", fmt.Errorf("%s wants an object, got %s: %w", who, FormatValue(args[0]), ErrType)
	}
	name, ok := args[1].(string)
	if !ok {
		return nil, "", fmt.Errorf("%s wants a slot name: %w", who, ErrType)
	}
	return o, name, nil
}

// typeArg accepts either an object (whose class is used) or a type name.
func typeArg(in *Interp, v mop.Value) (*mop.Type, error) {
	switch x := v.(type) {
	case *mop.Object:
		return x.Type(), nil
	case string:
		return in.reg.Lookup(x)
	default:
		return nil, fmt.Errorf("expected an object or type name, got %s: %w", FormatValue(v), ErrType)
	}
}

// fold applies a binary numeric op left-to-right with int/float promotion.
func fold(args []mop.Value, name string,
	fi func(a, b int64) (int64, error),
	ff func(a, b float64) (float64, error)) (mop.Value, error) {
	if len(args) < 2 {
		return nil, fmt.Errorf("%s wants at least 2 args: %w", name, ErrArity)
	}
	acc := args[0]
	for _, next := range args[1:] {
		ai, aIsInt := acc.(int64)
		bi, bIsInt := next.(int64)
		if aIsInt && bIsInt {
			v, err := fi(ai, bi)
			if err != nil {
				return nil, err
			}
			acc = v
			continue
		}
		af, errA := toFloat(acc)
		bf, errB := toFloat(next)
		if errA != nil || errB != nil {
			return nil, fmt.Errorf("%s wants numbers: %w", name, ErrType)
		}
		v, err := ff(af, bf)
		if err != nil {
			return nil, err
		}
		acc = v
	}
	return acc, nil
}

func toFloat(v mop.Value) (float64, error) {
	switch x := v.(type) {
	case int64:
		return float64(x), nil
	case float64:
		return x, nil
	default:
		return 0, ErrType
	}
}

func cmpBuiltin(pred func(int) bool) func(*Interp, []mop.Value) (mop.Value, error) {
	return func(_ *Interp, args []mop.Value) (mop.Value, error) {
		c, err := compare(args[0], args[1])
		if err != nil {
			return nil, err
		}
		return pred(c), nil
	}
}

func compare(a, b mop.Value) (int, error) {
	if as, ok := a.(string); ok {
		if bs, ok := b.(string); ok {
			return strings.Compare(as, bs), nil
		}
		return 0, fmt.Errorf("cannot compare string with %T: %w", b, ErrType)
	}
	af, errA := toFloat(a)
	bf, errB := toFloat(b)
	if errA != nil || errB != nil {
		return 0, fmt.Errorf("cannot compare %T with %T: %w", a, b, ErrType)
	}
	switch {
	case af < bf:
		return -1, nil
	case af > bf:
		return 1, nil
	default:
		return 0, nil
	}
}
