// Package tdl implements TDL, the small interpreted language "based on
// CLOS" that the Information Bus uses for dynamic classing (P3). TDL
// programs define classes (which register mop types at run time), define
// methods with class-based dispatch, and create and manipulate instances.
//
// The surface syntax is a Lisp s-expression subset:
//
//	(defclass Story ()
//	  ((headline string)
//	   (sources (list string))))
//
//	(defclass DowJonesStory (Story)
//	  ((djCode string)))
//
//	(defmethod summary ((s Story))
//	  (concat (slot-value s 'headline) "..."))
//
//	(define gm (make-instance 'DowJonesStory 'headline "GM up" 'djCode "GMC"))
//	(summary gm)        ; dispatches on the class of gm
//
// Classes defined in TDL are ordinary mop classes: they are registered in
// the interpreter's mop.Registry, marshal on the bus with the
// self-describing wire format, and are introspectable by every generic tool
// (P2). This is how a running system gains new types without recompilation.
package tdl

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Syntax node kinds. A parsed expression is one of:
//
//	Symbol        identifier
//	string        literal
//	int64/float64 literal
//	bool          literal (#t / #f)
//	Quoted        'expr
//	[]Sexp        list
type Sexp = any

// Symbol is a TDL identifier.
type Symbol string

// Quoted wraps a quoted expression: 'x parses as Quoted{Symbol("x")}.
type Quoted struct {
	X Sexp
}

// Parse errors.
var (
	ErrUnexpectedEOF   = errors.New("tdl: unexpected end of input")
	ErrUnbalancedParen = errors.New("tdl: unbalanced parenthesis")
	ErrBadToken        = errors.New("tdl: bad token")
	ErrUnterminated    = errors.New("tdl: unterminated string literal")
	ErrTooNested       = errors.New("tdl: expression nested too deeply")
)

// maxParseDepth bounds expression nesting so pathological input cannot
// overflow the parser's stack.
const maxParseDepth = 2000

// ParseAll parses a program into its top-level expressions.
func ParseAll(src string) ([]Sexp, error) {
	p := &parser{src: src}
	var out []Sexp
	for {
		p.skipSpace()
		if p.eof() {
			return out, nil
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
}

// ParseOne parses exactly one expression and rejects trailing content.
func ParseOne(src string) (Sexp, error) {
	all, err := ParseAll(src)
	if err != nil {
		return nil, err
	}
	if len(all) != 1 {
		return nil, fmt.Errorf("tdl: expected one expression, got %d", len(all))
	}
	return all[0], nil
}

type parser struct {
	src   string
	pos   int
	line  int
	depth int
}

func (p *parser) eof() bool { return p.pos >= len(p.src) }

func (p *parser) peek() byte { return p.src[p.pos] }

func (p *parser) skipSpace() {
	for !p.eof() {
		c := p.peek()
		switch {
		case c == ';': // comment to end of line
			for !p.eof() && p.peek() != '\n' {
				p.pos++
			}
		case c == '\n':
			p.line++
			p.pos++
		case c == ' ' || c == '\t' || c == '\r':
			p.pos++
		default:
			return
		}
	}
}

func (p *parser) errf(err error, format string, args ...any) error {
	return fmt.Errorf("line %d: %s: %w", p.line+1, fmt.Sprintf(format, args...), err)
}

func (p *parser) expr() (Sexp, error) {
	p.depth++
	defer func() { p.depth-- }()
	if p.depth > maxParseDepth {
		return nil, p.errf(ErrTooNested, "depth %d", p.depth)
	}
	p.skipSpace()
	if p.eof() {
		return nil, p.errf(ErrUnexpectedEOF, "expression expected")
	}
	switch c := p.peek(); {
	case c == '(':
		p.pos++
		var list []Sexp
		for {
			p.skipSpace()
			if p.eof() {
				return nil, p.errf(ErrUnexpectedEOF, "inside list")
			}
			if p.peek() == ')' {
				p.pos++
				return list, nil
			}
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
		}
	case c == ')':
		return nil, p.errf(ErrUnbalancedParen, "unexpected ')'")
	case c == '\'':
		p.pos++
		inner, err := p.expr()
		if err != nil {
			return nil, err
		}
		return Quoted{X: inner}, nil
	case c == '"':
		return p.stringLit()
	default:
		return p.atom()
	}
}

func (p *parser) stringLit() (Sexp, error) {
	p.pos++ // opening quote
	var b strings.Builder
	for {
		if p.eof() {
			return nil, p.errf(ErrUnterminated, "string literal")
		}
		c := p.peek()
		p.pos++
		switch c {
		case '"':
			return b.String(), nil
		case '\\':
			if p.eof() {
				return nil, p.errf(ErrUnterminated, "escape at end of input")
			}
			e := p.peek()
			p.pos++
			switch e {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case '"':
				b.WriteByte('"')
			case '\\':
				b.WriteByte('\\')
			default:
				return nil, p.errf(ErrBadToken, "unknown escape \\%c", e)
			}
		case '\n':
			return nil, p.errf(ErrUnterminated, "newline in string literal")
		default:
			b.WriteByte(c)
		}
	}
}

func isSymbolChar(c byte) bool {
	if c >= 0x80 {
		return true
	}
	r := rune(c)
	return unicode.IsLetter(r) || unicode.IsDigit(r) ||
		strings.ContainsRune("+-*/<>=!?._%&:#", r)
}

func (p *parser) atom() (Sexp, error) {
	start := p.pos
	for !p.eof() && isSymbolChar(p.peek()) {
		p.pos++
	}
	tok := p.src[start:p.pos]
	if tok == "" {
		return nil, p.errf(ErrBadToken, "character %q", p.peek())
	}
	switch tok {
	case "#t", "true":
		return true, nil
	case "#f", "false":
		return false, nil
	case "nil":
		return Quoted{X: nil}, nil // evaluates to nil
	}
	if i, err := strconv.ParseInt(tok, 10, 64); err == nil {
		return i, nil
	}
	if f, err := strconv.ParseFloat(tok, 64); err == nil && looksNumeric(tok) {
		return f, nil
	}
	return Symbol(tok), nil
}

func looksNumeric(tok string) bool {
	c := tok[0]
	return c == '-' || c == '+' || c == '.' || (c >= '0' && c <= '9')
}

// FormatSexp renders a parsed expression back to source-ish text, mainly
// for error messages and the REPL.
func FormatSexp(e Sexp) string {
	switch x := e.(type) {
	case nil:
		return "nil"
	case Symbol:
		return string(x)
	case string:
		return strconv.Quote(x)
	case int64:
		return strconv.FormatInt(x, 10)
	case float64:
		return strconv.FormatFloat(x, 'g', -1, 64)
	case bool:
		if x {
			return "#t"
		}
		return "#f"
	case Quoted:
		return "'" + FormatSexp(x.X)
	case []Sexp:
		parts := make([]string, len(x))
		for i, e := range x {
			parts[i] = FormatSexp(e)
		}
		return "(" + strings.Join(parts, " ") + ")"
	default:
		return fmt.Sprintf("%v", e)
	}
}
